// Tests for the multiplier-less conversion primitive: the square LUT must be
// lossless over its whole operand range (the paper's core claim for the
// conversion is exactness).

#include <gtest/gtest.h>

#include "drim/square_lut.hpp"

namespace drim {
namespace {

TEST(SquareLut, LosslessOverFullRange) {
  const SquareLut lut(510);
  for (std::int32_t x = -510; x <= 510; ++x) {
    EXPECT_EQ(lut.square(x), static_cast<std::uint32_t>(x * x)) << "x=" << x;
  }
}

TEST(SquareLut, SizeMatchesRange) {
  const SquareLut lut(100);
  EXPECT_EQ(lut.max_abs(), 100);
  EXPECT_EQ(lut.raw().size(), 101u);
  EXPECT_EQ(lut.size_bytes(), 101 * sizeof(std::uint32_t));
}

TEST(SquareLut, RawTableIsIndexedByAbsoluteValue) {
  const SquareLut lut(16);
  for (std::size_t i = 0; i <= 16; ++i) {
    EXPECT_EQ(lut.raw()[i], i * i);
  }
}

TEST(SquareLut, DefaultCoversUint8DifferenceDomain) {
  // uint8 residual minus int16-quantized codeword: |diff| <= 510 for the
  // paper's datasets.
  const SquareLut lut;
  EXPECT_GE(lut.max_abs(), 510);
  EXPECT_EQ(lut.square(510), 510u * 510u);
}

TEST(SquareLut, ZeroRangeStillValid) {
  const SquareLut lut(0);
  EXPECT_EQ(lut.square(0), 0u);
}

class SquareLutRange : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(SquareLutRange, EdgeValuesExact) {
  const std::int32_t r = GetParam();
  const SquareLut lut(r);
  EXPECT_EQ(lut.square(r), static_cast<std::uint32_t>(r) * static_cast<std::uint32_t>(r));
  EXPECT_EQ(lut.square(-r), lut.square(r));
  EXPECT_EQ(lut.square(0), 0u);
}

INSTANTIATE_TEST_SUITE_P(Ranges, SquareLutRange,
                         ::testing::Values(1, 127, 255, 510, 1024, 4096, 8192));

}  // namespace
}  // namespace drim
