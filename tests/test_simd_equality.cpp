// Bit-equality contract of the SIMD kernel seam (core/distances.hpp): every
// DistanceKernels entry must produce EXACTLY the same bits from the scalar
// reference and the AVX2 implementation, on random inputs and on the
// adversarial shapes where equality usually dies — tail-remainder sizes
// (n % 8 != 0), denormal operands, and wide (uint16) PQ codes. The scalar
// adc_* entries are additionally pinned to the seed per-point loops so the
// seam cannot drift from pq::adc_distance / compute_adc_lut semantics.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/distances.hpp"

namespace drim {
namespace {

std::vector<float> random_floats(std::mt19937& rng, std::size_t n,
                                 float lo = -10.0f, float hi = 10.0f) {
  std::uniform_real_distribution<float> dist(lo, hi);
  std::vector<float> v(n);
  for (float& x : v) x = dist(rng);
  return v;
}

bool same_bits(float a, float b) {
  std::uint32_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, 4);
  std::memcpy(&ub, &b, 4);
  return ua == ub;
}

#define REQUIRE_AVX2()                                              \
  if (avx2_kernels() == nullptr) {                                  \
    GTEST_SKIP() << "AVX2 kernels unavailable on this build/CPU";   \
  }

TEST(SimdEquality, AdcLutRowMatchesBitExact) {
  REQUIRE_AVX2();
  const DistanceKernels& sc = scalar_kernels();
  const DistanceKernels& vx = *avx2_kernels();
  std::mt19937 rng(7);
  for (const std::size_t dsub : {1u, 3u, 6u, 8u, 16u}) {
    for (const std::size_t cb : {1u, 7u, 8u, 16u, 100u, 256u}) {
      const auto sv = random_floats(rng, dsub);
      const auto codebook = random_floats(rng, cb * dsub);
      std::vector<float> row_sc(cb), row_vx(cb);
      sc.adc_lut_row(sv.data(), codebook.data(), dsub, cb, row_sc.data());
      vx.adc_lut_row(sv.data(), codebook.data(), dsub, cb, row_vx.data());
      for (std::size_t e = 0; e < cb; ++e) {
        ASSERT_TRUE(same_bits(row_sc[e], row_vx[e]))
            << "dsub=" << dsub << " cb=" << cb << " e=" << e;
      }
    }
  }
}

TEST(SimdEquality, AdcLutRowMatchesSeedScalarLoop) {
  // The scalar kernel must round exactly like the seed per-codeword l2_sq.
  const DistanceKernels& sc = scalar_kernels();
  std::mt19937 rng(11);
  const std::size_t dsub = 6, cb = 64;
  const auto sv = random_floats(rng, dsub);
  const auto codebook = random_floats(rng, cb * dsub);
  std::vector<float> row(cb);
  sc.adc_lut_row(sv.data(), codebook.data(), dsub, cb, row.data());
  for (std::size_t e = 0; e < cb; ++e) {
    const float ref = l2_sq({sv.data(), dsub}, {codebook.data() + e * dsub, dsub});
    ASSERT_TRUE(same_bits(row[e], ref)) << "e=" << e;
  }
}

TEST(SimdEquality, AdcScanF32MatchesBitExact) {
  REQUIRE_AVX2();
  const DistanceKernels& sc = scalar_kernels();
  const DistanceKernels& vx = *avx2_kernels();
  std::mt19937 rng(13);
  for (const bool wide : {false, true}) {
    const std::size_t cb = wide ? 512 : 256;
    for (const std::size_t m : {1u, 8u, 16u}) {
      const std::size_t stride = m * (wide ? 2 : 1);
      const auto lut = random_floats(rng, m * cb, 0.0f, 100.0f);
      for (const std::size_t n : {1u, 7u, 8u, 9u, 64u, 100u}) {
        std::vector<std::uint8_t> codes(n * stride);
        if (wide) {
          std::uniform_int_distribution<std::uint32_t> cd(0, cb - 1);
          for (std::size_t i = 0; i < n * m; ++i) {
            const auto v = static_cast<std::uint16_t>(cd(rng));
            std::memcpy(codes.data() + i * 2, &v, 2);
          }
        } else {
          std::uniform_int_distribution<std::uint32_t> cd(0, 255);
          for (auto& c : codes) c = static_cast<std::uint8_t>(cd(rng));
        }
        std::vector<float> out_sc(n), out_vx(n);
        sc.adc_scan_f32(lut.data(), cb, m, codes.data(), stride, wide, n,
                        out_sc.data());
        vx.adc_scan_f32(lut.data(), cb, m, codes.data(), stride, wide, n,
                        out_vx.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_TRUE(same_bits(out_sc[i], out_vx[i]))
              << "wide=" << wide << " m=" << m << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdEquality, AdcScanU32MatchesExactIncludingWraparound) {
  REQUIRE_AVX2();
  const DistanceKernels& sc = scalar_kernels();
  const DistanceKernels& vx = *avx2_kernels();
  std::mt19937 rng(17);
  const std::size_t m = 16, cb = 256, stride = m;
  // Values big enough that sums wrap uint32 — wraparound must agree too.
  std::vector<std::uint32_t> lut(m * cb);
  std::uniform_int_distribution<std::uint32_t> ld(0, 0x7FFFFFFFu);
  for (auto& v : lut) v = ld(rng);
  for (const std::size_t n : {1u, 7u, 8u, 9u, 200u}) {
    std::vector<std::uint8_t> codes(n * stride);
    std::uniform_int_distribution<std::uint32_t> cd(0, 255);
    for (auto& c : codes) c = static_cast<std::uint8_t>(cd(rng));
    std::vector<std::uint32_t> out_sc(n), out_vx(n);
    sc.adc_scan_u32(lut.data(), cb, m, codes.data(), stride, false, n,
                    out_sc.data());
    vx.adc_scan_u32(lut.data(), cb, m, codes.data(), stride, false, n,
                    out_vx.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out_sc[i], out_vx[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdEquality, L2KernelsMatchOnRandomAndTailSizes) {
  REQUIRE_AVX2();
  const DistanceKernels& sc = scalar_kernels();
  const DistanceKernels& vx = *avx2_kernels();
  std::mt19937 rng(19);
  for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 31u, 96u, 100u, 128u}) {
    const auto a = random_floats(rng, n);
    const auto b = random_floats(rng, n);
    ASSERT_TRUE(same_bits(sc.l2_sq_f32(a.data(), b.data(), n),
                          vx.l2_sq_f32(a.data(), b.data(), n)))
        << "f32 n=" << n;
    std::vector<std::uint8_t> u(n);
    std::uniform_int_distribution<std::uint32_t> ud(0, 255);
    for (auto& x : u) x = static_cast<std::uint8_t>(ud(rng));
    ASSERT_TRUE(same_bits(sc.l2_sq_u8(a.data(), u.data(), n),
                          vx.l2_sq_u8(a.data(), u.data(), n)))
        << "u8 n=" << n;
  }
}

TEST(SimdEquality, L2KernelsMatchOnDenormals) {
  REQUIRE_AVX2();
  const DistanceKernels& sc = scalar_kernels();
  const DistanceKernels& vx = *avx2_kernels();
  const std::size_t n = 37;  // tail remainder on purpose
  std::vector<float> a(n), b(n);
  const float dmin = std::numeric_limits<float>::denorm_min();
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = dmin * static_cast<float>(i * 3 + 1);
    b[i] = dmin * static_cast<float>((n - i) * 5);
  }
  ASSERT_TRUE(same_bits(sc.l2_sq_f32(a.data(), b.data(), n),
                        vx.l2_sq_f32(a.data(), b.data(), n)));
  // A mix of denormal and normal magnitudes (catches flush-to-zero builds).
  for (std::size_t i = 0; i < n; i += 2) a[i] = 1.0f + a[i];
  ASSERT_TRUE(same_bits(sc.l2_sq_f32(a.data(), b.data(), n),
                        vx.l2_sq_f32(a.data(), b.data(), n)));
}

TEST(SimdEquality, LutRowHandlesDenormalOperands) {
  REQUIRE_AVX2();
  const DistanceKernels& sc = scalar_kernels();
  const DistanceKernels& vx = *avx2_kernels();
  const std::size_t dsub = 5, cb = 13;  // both tail-remainder shapes
  const float dmin = std::numeric_limits<float>::denorm_min();
  std::vector<float> sv(dsub), codebook(cb * dsub);
  for (std::size_t d = 0; d < dsub; ++d) sv[d] = dmin * static_cast<float>(d + 1);
  for (std::size_t i = 0; i < codebook.size(); ++i) {
    codebook[i] = dmin * static_cast<float>(7 * i % 23);
  }
  std::vector<float> row_sc(cb), row_vx(cb);
  sc.adc_lut_row(sv.data(), codebook.data(), dsub, cb, row_sc.data());
  vx.adc_lut_row(sv.data(), codebook.data(), dsub, cb, row_vx.data());
  for (std::size_t e = 0; e < cb; ++e) {
    ASSERT_TRUE(same_bits(row_sc[e], row_vx[e])) << "e=" << e;
  }
}

TEST(SimdEquality, SetSimdLevelSwitchesTables) {
  const SimdLevel initial = simd_level();
  EXPECT_EQ(set_simd_level(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_STREQ(kernels().name, "scalar");
  if (avx2_available()) {
    EXPECT_EQ(set_simd_level(SimdLevel::kAvx2), SimdLevel::kAvx2);
    EXPECT_STREQ(kernels().name, "avx2");
  } else {
    EXPECT_EQ(set_simd_level(SimdLevel::kAvx2), SimdLevel::kScalar);
  }
  set_simd_level(initial);
}

}  // namespace
}  // namespace drim
