// Tests for offline data-layout generation: partition coverage, duplication
// replica structure, heat-greedy allocation quality, and the trivial
// baseline used in the Fig. 11 comparisons.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/stats.hpp"
#include "data/synthetic.hpp"
#include "drim/layout.hpp"

namespace drim {
namespace {

/// Small trained index shared by all layout tests.
class LayoutTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 6000;
    spec.num_queries = 100;
    spec.num_learn = 2000;
    spec.num_components = 48;
    spec.query_skew = 1.1;  // pronounced hot-cluster skew
    data_ = new SyntheticData(make_sift_like(spec));

    IvfPqParams p;
    p.nlist = 48;
    p.pq.m = 16;
    p.pq.cb_entries = 32;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);
    pim_data_ = new PimIndexData(*index_);
    heat_ = new std::vector<double>(estimate_heat(*index_, data_->queries, 8));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete index_;
    delete pim_data_;
    delete heat_;
  }

  static SyntheticData* data_;
  static IvfPqIndex* index_;
  static PimIndexData* pim_data_;
  static std::vector<double>* heat_;
};

SyntheticData* LayoutTest::data_ = nullptr;
IvfPqIndex* LayoutTest::index_ = nullptr;
PimIndexData* LayoutTest::pim_data_ = nullptr;
std::vector<double>* LayoutTest::heat_ = nullptr;

TEST_F(LayoutTest, HeatCoversAllClusters) {
  ASSERT_EQ(heat_->size(), index_->nlist());
  for (double h : *heat_) EXPECT_GT(h, 0.0);  // Laplace smoothing
  // Skewed queries: max heat well above median.
  std::vector<double> sorted = *heat_;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(sorted.back(), 2.0 * sorted[sorted.size() / 2]);
}

TEST_F(LayoutTest, PrimarySlicesPartitionEveryCluster) {
  LayoutParams params;
  params.split_threshold = 64;
  const DataLayout layout(*pim_data_, 16, *heat_, params);

  for (std::uint32_t c = 0; c < pim_data_->nlist(); ++c) {
    const std::size_t size = pim_data_->cluster_size(c);
    const auto& groups = layout.slice_groups(c);
    std::vector<bool> covered(size, false);
    for (const auto& group : groups) {
      ASSERT_FALSE(group.empty());
      // Replica 0 of each slice covers a distinct range.
      const Shard& sh = layout.shard(group.front());
      for (std::uint32_t i = sh.begin; i < sh.end; ++i) {
        EXPECT_FALSE(covered[i]) << "overlap in cluster " << c;
        covered[i] = true;
      }
      EXPECT_LE(sh.size(), params.split_threshold);
    }
    for (std::size_t i = 0; i < size; ++i) EXPECT_TRUE(covered[i]);
  }
}

TEST_F(LayoutTest, ReplicasOfSliceNeverShareDpu) {
  LayoutParams params;
  params.split_threshold = 64;
  params.dup_copies = 2;
  params.dup_fraction = 0.3;
  const DataLayout layout(*pim_data_, 16, *heat_, params);

  for (std::uint32_t c = 0; c < pim_data_->nlist(); ++c) {
    for (const auto& group : layout.slice_groups(c)) {
      std::set<std::uint32_t> dpus;
      for (std::uint32_t sid : group) dpus.insert(layout.shard(sid).dpu);
      EXPECT_EQ(dpus.size(), group.size()) << "replicas co-located";
    }
  }
}

TEST_F(LayoutTest, DuplicationTargetsHottestClusters) {
  LayoutParams params;
  params.dup_copies = 1;
  params.dup_fraction = 0.2;
  const DataLayout layout(*pim_data_, 16, *heat_, params);

  // Hot clusters (top 20% by heat) must have > 1 replica per slice.
  std::vector<std::uint32_t> by_heat(pim_data_->nlist());
  for (std::uint32_t i = 0; i < by_heat.size(); ++i) by_heat[i] = i;
  std::sort(by_heat.begin(), by_heat.end(),
            [&](std::uint32_t a, std::uint32_t b) { return (*heat_)[a] > (*heat_)[b]; });
  const std::size_t num_hot = by_heat.size() / 5;
  for (std::size_t i = 0; i < num_hot; ++i) {
    for (const auto& group : layout.slice_groups(by_heat[i])) {
      EXPECT_EQ(group.size(), 2u) << "hot cluster " << by_heat[i] << " not duplicated";
    }
  }
  // The coldest cluster should not be duplicated.
  for (const auto& group : layout.slice_groups(by_heat.back())) {
    EXPECT_EQ(group.size(), 1u);
  }
}

TEST_F(LayoutTest, NoSplitKeepsWholeClusters) {
  LayoutParams params;
  params.enable_split = false;
  params.enable_duplicate = false;
  const DataLayout layout(*pim_data_, 16, *heat_, params);
  for (std::uint32_t c = 0; c < pim_data_->nlist(); ++c) {
    if (pim_data_->cluster_size(c) == 0) continue;
    ASSERT_EQ(layout.slice_groups(c).size(), 1u);
    const Shard& sh = layout.shard(layout.slice_groups(c)[0][0]);
    EXPECT_EQ(sh.size(), pim_data_->cluster_size(c));
  }
}

TEST_F(LayoutTest, HeatAllocationBalancesBetterThanIdOrder) {
  LayoutParams balanced;
  balanced.split_threshold = 64;
  balanced.dup_copies = 0;
  balanced.enable_duplicate = false;
  LayoutParams trivial = balanced;
  trivial.heat_allocation = false;

  const DataLayout a(*pim_data_, 16, *heat_, balanced);
  const DataLayout b(*pim_data_, 16, *heat_, trivial);
  EXPECT_LT(imbalance_factor(a.dpu_heat()), imbalance_factor(b.dpu_heat()));
}

TEST_F(LayoutTest, DuplicationMemoryCostReported) {
  LayoutParams params;
  params.dup_copies = 1;
  params.dup_fraction = 0.2;
  const DataLayout dup(*pim_data_, 16, *heat_, params);
  EXPECT_GT(dup.duplication_bytes_per_dpu(*pim_data_), 0.0);

  LayoutParams no_dup = params;
  no_dup.enable_duplicate = false;
  const DataLayout plain(*pim_data_, 16, *heat_, no_dup);
  EXPECT_DOUBLE_EQ(plain.duplication_bytes_per_dpu(*pim_data_), 0.0);
}

TEST_F(LayoutTest, EveryShardAppearsInItsDpuList) {
  LayoutParams params;
  params.split_threshold = 128;
  const DataLayout layout(*pim_data_, 8, *heat_, params);
  for (const Shard& sh : layout.shards()) {
    const auto& list = layout.dpu_shards(sh.dpu);
    EXPECT_NE(std::find(list.begin(), list.end(), sh.id), list.end());
  }
}

// Property sweep over split thresholds: partition invariants hold for all.
class SplitThresholdTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SplitThresholdTest, ShardSizesRespectThreshold) {
  SyntheticSpec spec;
  spec.num_base = 3000;
  spec.num_queries = 40;
  spec.num_learn = 1000;
  spec.num_components = 24;
  const SyntheticData data = make_sift_like(spec);
  IvfPqParams p;
  p.nlist = 24;
  p.pq.m = 8;
  p.pq.cb_entries = 16;
  IvfPqIndex index;
  index.train(data.learn, p);
  index.add(data.base);
  const PimIndexData pim_data(index);
  const auto heat = estimate_heat(index, data.queries, 4);

  LayoutParams params;
  params.split_threshold = GetParam();
  const DataLayout layout(pim_data, 8, heat, params);
  std::size_t total_primary = 0;
  for (const Shard& sh : layout.shards()) {
    EXPECT_LE(sh.size(), GetParam());
    if (sh.replica == 0) total_primary += sh.size();
  }
  EXPECT_EQ(total_primary, 3000u);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SplitThresholdTest,
                         ::testing::Values(16, 64, 256, 1024, 100000));

}  // namespace
}  // namespace drim
