// Tests for index serialization round-trips and exact re-ranking.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "baseline/cpu_ivfpq.hpp"
#include "core/flat_search.hpp"
#include "core/rerank.hpp"
#include "core/serialize.hpp"
#include "data/recall.hpp"
#include "data/synthetic.hpp"

namespace drim {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 3000;
    spec.num_queries = 30;
    spec.num_learn = 1200;
    spec.num_components = 16;
    data_ = new SyntheticData(make_sift_like(spec));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  void TearDown() override {
    for (const auto& p : files_) std::remove(p.c_str());
  }
  std::string temp_path(const char* name) {
    auto p = (std::filesystem::temp_directory_path() / name).string();
    files_.push_back(p);
    return p;
  }

  static IvfPqIndex make_index(PQVariant variant) {
    IvfPqParams p;
    p.nlist = 16;
    p.pq.m = 16;
    p.pq.cb_entries = 32;
    p.variant = variant;
    p.opq_iters = 3;
    IvfPqIndex index;
    index.train(data_->learn, p);
    index.add(data_->base);
    return index;
  }

  static void expect_same_results(const IvfPqIndex& a, const IvfPqIndex& b) {
    for (std::size_t q = 0; q < data_->queries.count(); ++q) {
      const auto ra = a.search(data_->queries.row(q), 10, 8);
      const auto rb = b.search(data_->queries.row(q), 10, 8);
      ASSERT_EQ(ra.size(), rb.size());
      for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].id, rb[i].id);
        EXPECT_FLOAT_EQ(ra[i].dist, rb[i].dist);
      }
    }
  }

  static SyntheticData* data_;
  std::vector<std::string> files_;
};

SyntheticData* SerializeTest::data_ = nullptr;

TEST_F(SerializeTest, PqIndexRoundTrips) {
  const IvfPqIndex index = make_index(PQVariant::kPQ);
  const std::string path = temp_path("drim_pq.idx");
  save_index(index, path);
  const IvfPqIndex loaded = load_index(path);

  EXPECT_EQ(loaded.nlist(), index.nlist());
  EXPECT_EQ(loaded.ntotal(), index.ntotal());
  EXPECT_EQ(loaded.code_size(), index.code_size());
  EXPECT_EQ(loaded.variant(), PQVariant::kPQ);
  expect_same_results(index, loaded);
}

TEST_F(SerializeTest, OpqIndexRoundTripsWithRotation) {
  const IvfPqIndex index = make_index(PQVariant::kOPQ);
  const std::string path = temp_path("drim_opq.idx");
  save_index(index, path);
  const IvfPqIndex loaded = load_index(path);

  ASSERT_NE(loaded.opq(), nullptr);
  EXPECT_LT(loaded.opq()->rotation().frobenius_distance(index.opq()->rotation()), 1e-12);
  expect_same_results(index, loaded);
}

TEST_F(SerializeTest, DpqIndexRoundTrips) {
  const IvfPqIndex index = make_index(PQVariant::kDPQ);
  const std::string path = temp_path("drim_dpq.idx");
  save_index(index, path);
  expect_same_results(index, load_index(path));
}

TEST_F(SerializeTest, UntrainedIndexRefusesToSave) {
  IvfPqIndex index;
  EXPECT_THROW(save_index(index, temp_path("drim_untrained.idx")), std::runtime_error);
}

TEST_F(SerializeTest, BadMagicRejected) {
  const std::string path = temp_path("drim_bad.idx");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOPE-not-an-index", f);
  std::fclose(f);
  EXPECT_THROW(load_index(path), std::runtime_error);
}

TEST_F(SerializeTest, MissingFileRejected) {
  EXPECT_THROW(load_index("/nonexistent/nothing.idx"), std::runtime_error);
}

TEST_F(SerializeTest, TruncatedFileRejected) {
  const IvfPqIndex index = make_index(PQVariant::kPQ);
  const std::string path = temp_path("drim_trunc.idx");
  save_index(index, path);
  // Truncate to the first 100 bytes.
  std::filesystem::resize_file(path, 100);
  EXPECT_THROW(load_index(path), std::runtime_error);
}

TEST_F(SerializeTest, RerankImprovesRecall) {
  const IvfPqIndex index = make_index(PQVariant::kPQ);
  CpuIvfPq cpu(index);
  const std::size_t k = 10;
  const auto gt = flat_search_all(data_->base, data_->queries, k);

  // ADC top-10 directly vs ADC top-50 re-ranked exactly to 10.
  const auto adc10 = cpu.search_batch(data_->queries, k, 8);
  const auto adc50 = cpu.search_batch(data_->queries, 50, 8);
  const auto refined = rerank_exact_all(data_->base, data_->queries, adc50, k);

  const double base_recall = mean_recall_at_k(adc10, gt, k);
  const double refined_recall = mean_recall_at_k(refined, gt, k);
  EXPECT_GE(refined_recall, base_recall);
  EXPECT_GT(refined_recall, base_recall + 0.01)
      << "re-ranking 5x candidates should visibly lift recall";
}

TEST_F(SerializeTest, RerankReturnsExactDistances) {
  const IvfPqIndex index = make_index(PQVariant::kPQ);
  const auto cands = index.search(data_->queries.row(0), 20, 8);
  const auto refined = rerank_exact(data_->base, data_->queries.row(0), cands, 5);
  ASSERT_LE(refined.size(), 5u);
  for (const Neighbor& n : refined) {
    std::vector<float> v(data_->base.dim());
    data_->base.row_as_float(n.id, v);
    float exact = 0.0f;
    for (std::size_t d = 0; d < v.size(); ++d) {
      const float diff = data_->queries.row(0)[d] - v[d];
      exact += diff * diff;
    }
    EXPECT_FLOAT_EQ(n.dist, exact);
  }
}

TEST_F(SerializeTest, RerankHandlesFewerCandidatesThanK) {
  const IvfPqIndex index = make_index(PQVariant::kPQ);
  const auto cands = index.search(data_->queries.row(0), 3, 4);
  const auto refined = rerank_exact(data_->base, data_->queries.row(0), cands, 10);
  EXPECT_EQ(refined.size(), cands.size());
}

}  // namespace
}  // namespace drim
