// Unit + property tests for the top-k tracker (the TS phase primitive).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/topk.hpp"

namespace drim {
namespace {

TEST(TopK, KeepsSmallest) {
  TopK t(3);
  t.push(5.0f, 1);
  t.push(1.0f, 2);
  t.push(3.0f, 3);
  t.push(4.0f, 4);
  t.push(0.5f, 5);
  const auto r = t.take_sorted();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].id, 5u);
  EXPECT_EQ(r[1].id, 2u);
  EXPECT_EQ(r[2].id, 3u);
}

TEST(TopK, ThresholdInfiniteUntilFull) {
  TopK t(2);
  EXPECT_TRUE(std::isinf(t.threshold()));
  t.push(1.0f, 1);
  EXPECT_TRUE(std::isinf(t.threshold()));
  t.push(2.0f, 2);
  EXPECT_EQ(t.threshold(), 2.0f);
  t.push(0.5f, 3);
  EXPECT_EQ(t.threshold(), 1.0f);
}

TEST(TopK, PushReportsAdmission) {
  TopK t(1);
  EXPECT_TRUE(t.push(2.0f, 1));
  EXPECT_FALSE(t.push(3.0f, 2));
  EXPECT_TRUE(t.push(1.0f, 3));
}

TEST(TopK, TieBrokenById) {
  TopK t(2);
  t.push(1.0f, 9);
  t.push(1.0f, 3);
  t.push(1.0f, 7);  // rejected: same dist, higher id than kept {3, 7}? -> kept {3,7}
  const auto r = t.take_sorted();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].id, 3u);
  EXPECT_EQ(r[1].id, 7u);
}

TEST(TopK, MergeEquivalentToCombinedStream) {
  Rng rng(5);
  TopK a(8), b(8), combined(8);
  for (int i = 0; i < 200; ++i) {
    const float d = rng.uniform(0, 100);
    const auto id = static_cast<std::uint32_t>(i);
    combined.push(d, id);
    (i % 2 == 0 ? a : b).push(d, id);
  }
  a.merge(b);
  const auto lhs = a.take_sorted();
  const auto rhs = combined.take_sorted();
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].id, rhs[i].id);
    EXPECT_EQ(lhs[i].dist, rhs[i].dist);
  }
}

// Property: TopK must agree with full sort for any k and stream size.
class TopKProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TopKProperty, MatchesSortedPrefix) {
  const auto [k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(k * 1000 + n));
  TopK t(static_cast<std::size_t>(k));
  std::vector<Neighbor> all;
  for (int i = 0; i < n; ++i) {
    const float d = rng.uniform(0, 50);  // dense range forces ties
    t.push(d, static_cast<std::uint32_t>(i));
    all.push_back({d, static_cast<std::uint32_t>(i)});
  }
  std::sort(all.begin(), all.end());
  const auto got = t.take_sorted();
  const std::size_t expect_n = std::min<std::size_t>(k, all.size());
  ASSERT_EQ(got.size(), expect_n);
  for (std::size_t i = 0; i < expect_n; ++i) {
    EXPECT_EQ(got[i].id, all[i].id) << "at rank " << i;
    EXPECT_EQ(got[i].dist, all[i].dist);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKProperty,
    ::testing::Combine(::testing::Values(1, 2, 10, 100),
                       ::testing::Values(0, 1, 10, 100, 5000)));

}  // namespace
}  // namespace drim
