// Cross-platform equivalence tests for the PimPlatform seam: the analytic
// platform must return bit-identical neighbors (the host-exact replay runs
// the same uint32 ADC arithmetic over the same scheduled task list as the
// functional kernels) and report exactly equal per-phase counters — the
// functional and charge kernels share the same deterministic
// instruction-charging helpers and issue the same DMA sequence (see
// kernels.hpp), so instruction cycles, DMA cycles, byte tallies, and the
// per-batch times derived from them are all exactly equal. The tracing
// layer (src/obs) relies on this: either platform's counters are ground
// truth for the Fig. 8 breakdown.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/flat_search.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"
#include "pim/pim_platform.hpp"

namespace drim {
namespace {

class PlatformTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 6000;
    spec.num_queries = 48;
    spec.num_learn = 2500;
    spec.num_components = 48;
    data_ = new SyntheticData(make_sift_like(spec));

    IvfPqParams p;
    p.nlist = 48;
    p.pq.m = 16;
    p.pq.cb_entries = 32;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete index_;
  }

  static DrimEngineOptions options(PimPlatformKind platform) {
    DrimEngineOptions o;
    o.pim.num_dpus = 16;
    o.layout.split_threshold = 128;
    o.heat_nprobe = 8;
    o.batch_size = 16;  // several batches per search, so per-batch times exist
    o.platform = platform;
    return o;
  }

  static void expect_identical(const std::vector<std::vector<Neighbor>>& a,
                               const std::vector<std::vector<Neighbor>>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
      ASSERT_EQ(a[q].size(), b[q].size()) << "query " << q;
      for (std::size_t i = 0; i < a[q].size(); ++i) {
        EXPECT_EQ(a[q][i].id, b[q][i].id) << "query " << q << " rank " << i;
        EXPECT_EQ(a[q][i].dist, b[q][i].dist) << "query " << q << " rank " << i;
      }
    }
  }

  static inline SyntheticData* data_ = nullptr;
  static inline IvfPqIndex* index_ = nullptr;
};

TEST_F(PlatformTest, AnalyticReturnsBitIdenticalNeighbors) {
  DrimAnnEngine sim(*index_, data_->learn, options(PimPlatformKind::kSim));
  DrimAnnEngine analytic(*index_, data_->learn, options(PimPlatformKind::kAnalytic));
  expect_identical(sim.search(data_->queries, 10, 8),
                   analytic.search(data_->queries, 10, 8));
}

TEST_F(PlatformTest, AnalyticMatchesSimUnderClOnPim) {
  DrimEngineOptions so = options(PimPlatformKind::kSim);
  so.cl_on_pim = true;
  DrimEngineOptions ao = options(PimPlatformKind::kAnalytic);
  ao.cl_on_pim = true;
  DrimAnnEngine sim(*index_, data_->learn, so);
  DrimAnnEngine analytic(*index_, data_->learn, ao);
  expect_identical(sim.search(data_->queries, 10, 8),
                   analytic.search(data_->queries, 10, 8));
}

TEST_F(PlatformTest, PerPhaseCountersAreExactlyEqual) {
  DrimAnnEngine sim(*index_, data_->learn, options(PimPlatformKind::kSim));
  DrimAnnEngine analytic(*index_, data_->learn, options(PimPlatformKind::kAnalytic));
  DrimSearchStats ss, as;
  sim.search(data_->queries, 10, 8, &ss);
  analytic.search(data_->queries, 10, 8, &as);
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    SCOPED_TRACE(phase_name(static_cast<Phase>(p)));
    EXPECT_EQ(ss.counters.phases[p].instr_cycles, as.counters.phases[p].instr_cycles);
    EXPECT_DOUBLE_EQ(ss.counters.phases[p].dma_cycles, as.counters.phases[p].dma_cycles);
    EXPECT_EQ(ss.counters.phases[p].mram_bytes_read,
              as.counters.phases[p].mram_bytes_read);
    EXPECT_EQ(ss.counters.phases[p].mram_bytes_written,
              as.counters.phases[p].mram_bytes_written);
    EXPECT_EQ(ss.counters.phases[p].mul_count, as.counters.phases[p].mul_count);
    EXPECT_DOUBLE_EQ(ss.phase_dpu_seconds[p], as.phase_dpu_seconds[p]);
  }
  EXPECT_DOUBLE_EQ(ss.transfer_in_seconds, as.transfer_in_seconds);
  EXPECT_DOUBLE_EQ(ss.transfer_out_seconds, as.transfer_out_seconds);
  EXPECT_EQ(ss.tasks, as.tasks);
  EXPECT_EQ(ss.batches, as.batches);
}

TEST_F(PlatformTest, PerPhaseCountersAreExactlyEqualUnderClOnPim) {
  DrimEngineOptions so = options(PimPlatformKind::kSim);
  so.cl_on_pim = true;
  DrimEngineOptions ao = options(PimPlatformKind::kAnalytic);
  ao.cl_on_pim = true;
  DrimAnnEngine sim(*index_, data_->learn, so);
  DrimAnnEngine analytic(*index_, data_->learn, ao);
  DrimSearchStats ss, as;
  sim.search(data_->queries, 10, 8, &ss);
  analytic.search(data_->queries, 10, 8, &as);
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    SCOPED_TRACE(phase_name(static_cast<Phase>(p)));
    EXPECT_EQ(ss.counters.phases[p].instr_cycles, as.counters.phases[p].instr_cycles);
    EXPECT_DOUBLE_EQ(ss.counters.phases[p].dma_cycles, as.counters.phases[p].dma_cycles);
    EXPECT_EQ(ss.counters.phases[p].mram_bytes_read,
              as.counters.phases[p].mram_bytes_read);
  }
  EXPECT_GT(ss.counters.at(Phase::CL).instr_cycles, 0u);
}

TEST_F(PlatformTest, BatchTimesAreExactlyEqual) {
  DrimAnnEngine sim(*index_, data_->learn, options(PimPlatformKind::kSim));
  DrimAnnEngine analytic(*index_, data_->learn, options(PimPlatformKind::kAnalytic));
  DrimSearchStats ss, as;
  sim.search(data_->queries, 10, 8, &ss);
  analytic.search(data_->queries, 10, 8, &as);
  ASSERT_EQ(ss.batch_seconds.size(), as.batch_seconds.size());
  ASSERT_GT(ss.batch_seconds.size(), 1u);
  // Both platforms derive batch times from the same shared charging policy,
  // so modeled times collapse to exact equality (was a 15% band before the
  // charge streams were unified).
  for (std::size_t b = 0; b < ss.batch_seconds.size(); ++b) {
    ASSERT_GT(ss.batch_seconds[b], 0.0);
    EXPECT_DOUBLE_EQ(as.batch_seconds[b], ss.batch_seconds[b]) << "batch " << b;
  }
  EXPECT_DOUBLE_EQ(as.total_seconds, ss.total_seconds);
}

// Precision-ladder contract, full rung: merely enabling the q4 tables must
// not perturb the precise path. Same neighbors bit for bit, same modeled
// time to the last ulp, and a zero rerank tail — on both platforms.
TEST_F(PlatformTest, EnablingQ4LeavesFullRungBitIdentical) {
  for (const PimPlatformKind kind :
       {PimPlatformKind::kSim, PimPlatformKind::kAnalytic}) {
    SCOPED_TRACE(pim_platform_name(kind));
    DrimEngineOptions off = options(kind);
    DrimEngineOptions on = options(kind);
    on.enable_q4 = true;
    DrimAnnEngine plain(*index_, data_->learn, off);
    DrimAnnEngine ladder(*index_, data_->learn, on);
    ASSERT_TRUE(ladder.q4_ready());
    DrimSearchStats ps, ls;
    const auto plain_res = plain.search(data_->queries, 10, 8, &ps);
    const auto ladder_res = ladder.search(data_->queries, 10, 8, &ls);
    expect_identical(plain_res, ladder_res);
    EXPECT_DOUBLE_EQ(ls.total_seconds, ps.total_seconds);
    EXPECT_EQ(ls.host_rerank_seconds, 0.0);
  }
}

// Precision-ladder contract, q4 rung: the charge twin holds on the coarse
// rung too. Sim and analytic return bit-identical neighbors (host-exact
// replay of the same packed-nibble ADC + rerank tail) and exactly equal
// modeled times, and the rerank tail is actually billed.
TEST_F(PlatformTest, Q4RungPlatformsAreChargeTwins) {
  DrimEngineOptions so = options(PimPlatformKind::kSim);
  so.enable_q4 = true;
  DrimEngineOptions ao = options(PimPlatformKind::kAnalytic);
  ao.enable_q4 = true;
  DrimAnnEngine sim(*index_, data_->learn, so);
  DrimAnnEngine analytic(*index_, data_->learn, ao);
  DrimSearchStats ss, as;
  const auto sim_res =
      sim.search(data_->queries, 10, 8, &ss, Precision::kQ4);
  const auto analytic_res =
      analytic.search(data_->queries, 10, 8, &as, Precision::kQ4);
  expect_identical(sim_res, analytic_res);
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    SCOPED_TRACE(phase_name(static_cast<Phase>(p)));
    EXPECT_EQ(ss.counters.phases[p].instr_cycles, as.counters.phases[p].instr_cycles);
    EXPECT_DOUBLE_EQ(ss.counters.phases[p].dma_cycles, as.counters.phases[p].dma_cycles);
    EXPECT_EQ(ss.counters.phases[p].mram_bytes_read,
              as.counters.phases[p].mram_bytes_read);
  }
  EXPECT_DOUBLE_EQ(as.total_seconds, ss.total_seconds);
  EXPECT_DOUBLE_EQ(as.host_rerank_seconds, ss.host_rerank_seconds);
  EXPECT_GT(ss.host_rerank_seconds, 0.0);

  // The coarse rung must actually be coarser: same task count, fewer MRAM
  // code bytes per distance than the full rung would read.
  DrimSearchStats fs;
  sim.search(data_->queries, 10, 8, &fs, Precision::kFull);
  EXPECT_EQ(ss.tasks, fs.tasks);
  EXPECT_LT(ss.counters.at(Phase::DC).mram_bytes_read,
            fs.counters.at(Phase::DC).mram_bytes_read);
}

TEST_F(PlatformTest, FactoryAndNamesRoundTrip) {
  EXPECT_EQ(pim_platform_name(PimPlatformKind::kSim), "sim");
  EXPECT_EQ(pim_platform_name(PimPlatformKind::kAnalytic), "analytic");
  EXPECT_EQ(parse_pim_platform("sim"), PimPlatformKind::kSim);
  EXPECT_EQ(parse_pim_platform("analytic"), PimPlatformKind::kAnalytic);
  EXPECT_THROW(parse_pim_platform("gpu"), std::invalid_argument);

  PimConfig cfg;
  cfg.num_dpus = 4;
  const auto sim = make_pim_platform(PimPlatformKind::kSim, cfg);
  const auto analytic = make_pim_platform(PimPlatformKind::kAnalytic, cfg);
  EXPECT_TRUE(sim->functional());
  EXPECT_FALSE(analytic->functional());
  EXPECT_EQ(sim->name(), "sim");
  EXPECT_EQ(analytic->name(), "analytic");
  EXPECT_EQ(sim->num_dpus(), 4u);
  EXPECT_EQ(analytic->num_dpus(), 4u);
}

TEST_F(PlatformTest, AnalyticPullLeavesBufferUntouched) {
  PimConfig cfg;
  cfg.num_dpus = 2;
  const auto analytic = make_pim_platform(PimPlatformKind::kAnalytic, cfg);
  const std::size_t off = analytic->alloc_symmetric(64);
  std::vector<std::uint8_t> payload(64, 0xAB);
  analytic->push(0, off, payload);
  std::vector<std::uint8_t> out(64, 0x5C);
  analytic->pull(0, off, out);
  for (std::uint8_t b : out) EXPECT_EQ(b, 0x5C);
}

}  // namespace
}  // namespace drim
