// Tests for incremental add() and the scheduler's round-robin ablation
// policy.

#include <gtest/gtest.h>

#include <numeric>

#include "common/stats.hpp"
#include "data/synthetic.hpp"
#include "drim/scheduler.hpp"

namespace drim {
namespace {

SyntheticData tiny() {
  SyntheticSpec spec;
  spec.num_base = 2400;
  spec.num_queries = 30;
  spec.num_learn = 800;
  spec.num_components = 16;
  return make_sift_like(spec);
}

IvfPqParams tiny_params() {
  IvfPqParams p;
  p.nlist = 16;
  p.pq.m = 16;
  p.pq.cb_entries = 32;
  return p;
}

TEST(IncrementalAdd, TwoBatchesEqualOneBatch) {
  const SyntheticData data = tiny();

  IvfPqIndex whole;
  whole.train(data.learn, tiny_params());
  whole.add(data.base);

  // Split the corpus into two halves and add them separately.
  const std::size_t half = data.base.count() / 2;
  ByteDataset first(half, data.base.dim());
  ByteDataset second(data.base.count() - half, data.base.dim());
  std::copy_n(data.base.data(), half * data.base.dim(), first.data());
  std::copy_n(data.base.data() + half * data.base.dim(),
              (data.base.count() - half) * data.base.dim(), second.data());

  IvfPqIndex incremental;
  incremental.train(data.learn, tiny_params());
  incremental.add(first);
  EXPECT_EQ(incremental.ntotal(), half);
  incremental.add(second);
  EXPECT_EQ(incremental.ntotal(), data.base.count());

  // Same total list contents (same training -> same assignment and codes;
  // ids in the second batch continue from half).
  for (std::size_t c = 0; c < whole.nlist(); ++c) {
    ASSERT_EQ(incremental.list(c).size(), whole.list(c).size()) << "cluster " << c;
  }

  // Same search results.
  for (std::size_t q = 0; q < data.queries.count(); ++q) {
    const auto a = whole.search(data.queries.row(q), 10, 8);
    const auto b = incremental.search(data.queries.row(q), 10, 8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_FLOAT_EQ(a[i].dist, b[i].dist);
    }
  }
}

TEST(IncrementalAdd, IdsContinueAcrossBatches) {
  const SyntheticData data = tiny();
  IvfPqIndex index;
  index.train(data.learn, tiny_params());
  index.add(data.base);
  index.add(data.base);  // duplicate corpus: ids 2400..4799
  EXPECT_EQ(index.ntotal(), 2 * data.base.count());

  std::vector<int> seen(2 * data.base.count(), 0);
  for (std::size_t c = 0; c < index.nlist(); ++c) {
    for (std::uint32_t id : index.list(c).ids) ++seen[id];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(RoundRobinPolicy, CoversAllTasks) {
  const SyntheticData data = tiny();
  IvfPqIndex index;
  index.train(data.learn, tiny_params());
  index.add(data.base);
  const PimIndexData pim_data(index);
  const auto heat = estimate_heat(index, data.queries, 4);

  LayoutParams lp;
  lp.split_threshold = 64;
  lp.dup_copies = 1;
  lp.dup_fraction = 0.3;
  const DataLayout layout(pim_data, 8, heat, lp);

  std::vector<std::vector<std::uint32_t>> probes(data.queries.count());
  for (std::size_t q = 0; q < probes.size(); ++q) {
    probes[q] = index.locate_clusters(data.queries.row(q), 4);
  }

  SchedulerParams greedy_params;
  SchedulerParams rr_params;
  rr_params.policy = SchedulePolicy::kRoundRobin;
  const RuntimeScheduler greedy(layout, greedy_params);
  const RuntimeScheduler rr(layout, rr_params);

  const Assignment ga = greedy.schedule(probes, {}, true);
  const Assignment ra = rr.schedule(probes, {}, true);
  std::size_t g_total = 0, r_total = 0;
  for (const auto& t : ga.per_dpu) g_total += t.size();
  for (const auto& t : ra.per_dpu) r_total += t.size();
  EXPECT_EQ(g_total, r_total) << "both policies must schedule every task";
}

TEST(RoundRobinPolicy, GreedyWinsUnderHeterogeneousCosts) {
  // The Eq. 15 predictor matters when task costs differ: with unsplit
  // clusters the shard sizes (and thus costs) vary widely, and count-based
  // rotation balances counts, not cycles. (With homogeneous costs the two
  // policies tie — that case is covered by CoversAllTasks.)
  const SyntheticData data = tiny();
  IvfPqIndex index;
  index.train(data.learn, tiny_params());
  index.add(data.base);
  const PimIndexData pim_data(index);
  const auto heat = estimate_heat(index, data.queries, 4);

  LayoutParams lp;
  lp.enable_split = false;  // keep raw, uneven cluster sizes
  lp.dup_copies = 3;
  lp.dup_fraction = 1.0;    // every slice has 4 placement choices
  const DataLayout layout(pim_data, 8, heat, lp);

  std::vector<std::vector<std::uint32_t>> probes(data.queries.count());
  for (std::size_t q = 0; q < probes.size(); ++q) {
    probes[q] = index.locate_clusters(data.queries.row(q), 4);
  }

  SchedulerParams rr_params;
  rr_params.policy = SchedulePolicy::kRoundRobin;
  const RuntimeScheduler greedy(layout, SchedulerParams{});
  const RuntimeScheduler rr(layout, rr_params);
  const auto g_load = greedy.schedule(probes, {}, true).predicted_load;
  const auto r_load = rr.schedule(probes, {}, true).predicted_load;
  const double g_max = *std::max_element(g_load.begin(), g_load.end());
  const double r_max = *std::max_element(r_load.begin(), r_load.end());
  EXPECT_LE(g_max, r_max * 1.001)
      << "greedy's predicted makespan must not lose to count rotation";
}

}  // namespace
}  // namespace drim
