// Unit tests for the statistics helpers used in load-balance analyses.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/stats.hpp"

namespace drim {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, GeomeanBasics) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Stats, GeomeanMatchesPaperStyleSpeedups) {
  // Paper-style usage: geomean of per-config speedups.
  EXPECT_NEAR(geomean({2.35, 3.65}), std::sqrt(2.35 * 3.65), 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositiveInputsInEveryBuildMode) {
  // These used to be asserts, which NDEBUG compiles out — a release build
  // silently returned NaN (log of a negative) or 0 (exp of -inf). The
  // explicit guard must fire regardless of build mode.
  EXPECT_THROW(geomean({1.0, 0.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(geomean({-1.0}), std::invalid_argument);
}

TEST(Stats, StddevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(stddev({5.0, 5.0, 5.0}), 0.0);
}

TEST(Stats, StddevKnownValue) {
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.0, 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Stats, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3, 2, 4}, 50), 3.0);
}

TEST(Stats, PercentileSingleElementIsThatElement) {
  for (double p : {0.0, 37.5, 50.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile({42.0}, p), 42.0);
  }
}

TEST(Stats, PercentileClampsOutOfRangeP) {
  std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, -10), 1.0);   // clamped to p=0
  EXPECT_DOUBLE_EQ(percentile(v, 250), 3.0);   // clamped to p=100
}

TEST(Stats, PercentileWithDuplicates) {
  std::vector<double> v{1, 2, 2, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 2.0);
  // Interpolation between the last duplicate and the max: rank 3.6.
  EXPECT_DOUBLE_EQ(percentile(v, 90), 2.6);
}

TEST(Stats, PercentileInterpolationIsExactAtFractionalRanks) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Stats, TailSummaryMatchesPercentileExactly) {
  // tail_summary sorts the sample once and derives every percentile from the
  // sorted copy; the results must stay bit-identical to calling percentile()
  // three times (the old, 3x-sort implementation).
  std::vector<double> v;
  double x = 0.371;
  for (int i = 0; i < 997; ++i) {
    x = x * 1103.5153 - static_cast<double>(static_cast<long>(x * 1103.5153));
    v.push_back(x * 25.0);
  }
  const TailSummary t = tail_summary(v);
  EXPECT_DOUBLE_EQ(t.p50, percentile(v, 50));
  EXPECT_DOUBLE_EQ(t.p95, percentile(v, 95));
  EXPECT_DOUBLE_EQ(t.p99, percentile(v, 99));
  EXPECT_DOUBLE_EQ(t.mean, mean(v));
  EXPECT_DOUBLE_EQ(t.max, *std::max_element(v.begin(), v.end()));
}

TEST(Stats, TailSummaryEmptyAndSingle) {
  const TailSummary e = tail_summary({});
  EXPECT_DOUBLE_EQ(e.p50, 0.0);
  EXPECT_DOUBLE_EQ(e.p99, 0.0);
  EXPECT_DOUBLE_EQ(e.max, 0.0);
  const TailSummary s = tail_summary({7.0});
  EXPECT_DOUBLE_EQ(s.p50, 7.0);
  EXPECT_DOUBLE_EQ(s.p95, 7.0);
  EXPECT_DOUBLE_EQ(s.p99, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(Stats, ImbalanceFactorUniformIsOne) {
  EXPECT_DOUBLE_EQ(imbalance_factor({3, 3, 3, 3}), 1.0);
}

TEST(Stats, ImbalanceFactorSkewed) {
  // mean = 2, max = 5 -> 2.5
  EXPECT_DOUBLE_EQ(imbalance_factor({1, 1, 1, 5}), 2.5);
}

TEST(Stats, MaxMinRatio) {
  // The paper's "slowest DPU up to 5x the fastest" metric.
  EXPECT_DOUBLE_EQ(max_min_ratio({1, 2, 5}), 5.0);
  EXPECT_DOUBLE_EQ(max_min_ratio({2, 2}), 1.0);
  EXPECT_DOUBLE_EQ(max_min_ratio({0, 2}), 0.0);  // guarded
}

TEST(Stats, HistogramCountsAndClamps) {
  const auto h = histogram({0.5, 1.5, 2.5, -1.0, 10.0}, 0.0, 3.0, 3);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], 2u);  // 0.5 and clamped -1.0
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 2u);  // 2.5 and clamped 10.0
}

TEST(Stats, HistogramRejectsDegenerateShapesInEveryBuildMode) {
  // Formerly asserts: under NDEBUG a zero bin count or empty range divided
  // by zero (bin width 0) and the NaN-to-integer cast was UB.
  EXPECT_THROW(histogram({1.0}, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(histogram({1.0}, 1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(histogram({1.0}, 2.0, 1.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace drim
