// Round-trip tests for the TEXMEX .fvecs/.bvecs/.ivecs readers and writers.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/io.hpp"
#include "common/rng.hpp"

namespace drim {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }
  void TearDown() override {
    for (const auto& p : created_) std::remove(p.c_str());
  }
  std::string track(std::string p) {
    created_.push_back(p);
    return p;
  }
  std::vector<std::string> created_;
};

TEST_F(IoTest, FvecsRoundTrip) {
  VecFile<float> v;
  v.count = 5;
  v.dim = 7;
  Rng rng(1);
  for (std::size_t i = 0; i < v.count * v.dim; ++i) v.data.push_back(rng.uniform(-10, 10));

  const std::string p = track(path("drim_test.fvecs"));
  write_fvecs(p, v);
  const auto r = read_fvecs(p);
  ASSERT_EQ(r.count, v.count);
  ASSERT_EQ(r.dim, v.dim);
  EXPECT_EQ(r.data, v.data);
}

TEST_F(IoTest, BvecsRoundTrip) {
  VecFile<std::uint8_t> v;
  v.count = 3;
  v.dim = 128;
  Rng rng(2);
  for (std::size_t i = 0; i < v.count * v.dim; ++i) {
    v.data.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  }
  const std::string p = track(path("drim_test.bvecs"));
  write_bvecs(p, v);
  const auto r = read_bvecs(p);
  ASSERT_EQ(r.count, v.count);
  ASSERT_EQ(r.dim, v.dim);
  EXPECT_EQ(r.data, v.data);
}

TEST_F(IoTest, IvecsRoundTrip) {
  VecFile<std::int32_t> v;
  v.count = 4;
  v.dim = 10;
  for (std::size_t i = 0; i < v.count * v.dim; ++i) v.data.push_back(static_cast<int>(i) - 20);
  const std::string p = track(path("drim_test.ivecs"));
  write_ivecs(p, v);
  const auto r = read_ivecs(p);
  ASSERT_EQ(r.count, v.count);
  EXPECT_EQ(r.data, v.data);
}

TEST_F(IoTest, MaxCountTruncates) {
  VecFile<float> v;
  v.count = 10;
  v.dim = 4;
  v.data.assign(40, 1.5f);
  const std::string p = track(path("drim_trunc.fvecs"));
  write_fvecs(p, v);
  const auto r = read_fvecs(p, 3);
  EXPECT_EQ(r.count, 3u);
  EXPECT_EQ(r.data.size(), 12u);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_fvecs("/nonexistent/nowhere.fvecs"), std::runtime_error);
}

TEST_F(IoTest, RowAccessor) {
  VecFile<float> v;
  v.count = 2;
  v.dim = 3;
  v.data = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(v.row(1)[0], 4.0f);
  EXPECT_EQ(v.row(1)[2], 6.0f);
}

}  // namespace
}  // namespace drim
