// Tests for the scalar distance kernels.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/distances.hpp"

namespace drim {
namespace {

TEST(Distances, L2SqKnownValues) {
  const float a[3] = {1, 2, 3};
  const float b[3] = {4, 6, 3};
  EXPECT_FLOAT_EQ(l2_sq(a, b), 9.0f + 16.0f);
}

TEST(Distances, L2SqZeroForIdentical) {
  const float a[4] = {1.5f, -2.5f, 0, 100};
  EXPECT_FLOAT_EQ(l2_sq(a, a), 0.0f);
}

TEST(Distances, L2SqU8MatchesFloatPath) {
  Rng rng(1);
  std::vector<float> q(64);
  std::vector<std::uint8_t> p(64);
  std::vector<float> pf(64);
  for (std::size_t i = 0; i < 64; ++i) {
    q[i] = rng.uniform(0, 255);
    p[i] = static_cast<std::uint8_t>(rng.next_below(256));
    pf[i] = static_cast<float>(p[i]);
  }
  EXPECT_FLOAT_EQ(l2_sq_u8(q, p), l2_sq(q, pf));
}

TEST(Distances, L2SqU8U8ExactInteger) {
  std::vector<std::uint8_t> a{0, 255, 100};
  std::vector<std::uint8_t> b{255, 0, 100};
  EXPECT_EQ(l2_sq_u8u8(a, b), 2 * 255ll * 255ll);
}

TEST(Distances, L2SqU8U8Symmetric) {
  Rng rng(2);
  std::vector<std::uint8_t> a(128), b(128);
  for (std::size_t i = 0; i < 128; ++i) {
    a[i] = static_cast<std::uint8_t>(rng.next_below(256));
    b[i] = static_cast<std::uint8_t>(rng.next_below(256));
  }
  EXPECT_EQ(l2_sq_u8u8(a, b), l2_sq_u8u8(b, a));
}

TEST(Distances, DotKnownValue) {
  const float a[3] = {1, 2, 3};
  const float b[3] = {4, 5, 6};
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
}

TEST(Distances, L2ExpandsAsDotIdentity) {
  // ||a-b||^2 == ||a||^2 + ||b||^2 - 2 a.b (within float tolerance).
  Rng rng(3);
  std::vector<float> a(32), b(32);
  for (std::size_t i = 0; i < 32; ++i) {
    a[i] = rng.uniform(-5, 5);
    b[i] = rng.uniform(-5, 5);
  }
  const float lhs = l2_sq(a, b);
  const float rhs = dot(a, a) + dot(b, b) - 2.0f * dot(a, b);
  EXPECT_NEAR(lhs, rhs, 1e-3f);
}

}  // namespace
}  // namespace drim
