// Tests for the dense linear algebra backing OPQ (Jacobi eigen, SVD,
// Procrustes rotation).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/matrix.hpp"

namespace drim {
namespace {

Matrix random_matrix(std::size_t n, Rng& rng, double scale = 1.0) {
  Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) m.at(r, c) = rng.gaussian() * scale;
  }
  return m;
}

TEST(Matrix, IdentityAndMatmul) {
  Rng rng(1);
  const Matrix a = random_matrix(5, rng);
  const Matrix i = Matrix::identity(5);
  const Matrix ai = matmul(a, i);
  EXPECT_NEAR(a.frobenius_distance(ai), 0.0, 1e-12);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(2);
  const Matrix a = random_matrix(6, rng);
  EXPECT_NEAR(a.frobenius_distance(a.transposed().transposed()), 0.0, 1e-12);
}

TEST(Matrix, MatmulKnownValue) {
  Matrix a(2, 2), b(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
  b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(JacobiEigen, DiagonalMatrix) {
  Matrix a(3, 3);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = 5.0;
  a.at(2, 2) = 3.0;
  const EigenResult e = jacobi_eigen(a);
  EXPECT_NEAR(e.values[0], 5.0, 1e-10);
  EXPECT_NEAR(e.values[1], 3.0, 1e-10);
  EXPECT_NEAR(e.values[2], 1.0, 1e-10);
}

TEST(JacobiEigen, ReconstructsSymmetricMatrix) {
  Rng rng(3);
  const std::size_t n = 8;
  Matrix g = random_matrix(n, rng);
  const Matrix a = matmul(g.transposed(), g);  // symmetric PSD
  const EigenResult e = jacobi_eigen(a);

  // Rebuild V diag(w) V^T and compare.
  Matrix vd(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) vd.at(r, c) = e.vectors.at(r, c) * e.values[c];
  }
  const Matrix rebuilt = matmul(vd, e.vectors.transposed());
  EXPECT_LT(a.frobenius_distance(rebuilt), 1e-8);
}

TEST(JacobiEigen, EigenvectorsOrthonormal) {
  Rng rng(4);
  Matrix g = random_matrix(10, rng);
  const Matrix a = matmul(g.transposed(), g);
  const EigenResult e = jacobi_eigen(a);
  EXPECT_LT(e.vectors.orthogonality_error(), 1e-9);
}

TEST(Svd, SingularValuesOfOrthogonalAreOnes) {
  const Matrix i = Matrix::identity(4);
  const SvdResult s = svd_square(i);
  for (double v : s.s) EXPECT_NEAR(v, 1.0, 1e-10);
}

TEST(Svd, ReconstructsInput) {
  Rng rng(5);
  const std::size_t n = 6;
  const Matrix a = random_matrix(n, rng, 2.0);
  const SvdResult s = svd_square(a);
  Matrix us(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) us.at(r, c) = s.u.at(r, c) * s.s[c];
  }
  const Matrix rebuilt = matmul(us, s.v.transposed());
  EXPECT_LT(a.frobenius_distance(rebuilt), 1e-7);
}

TEST(Svd, HandlesRankDeficiency) {
  // Rank-1 matrix: one nonzero singular value; U must still be orthogonal
  // enough to rebuild the input.
  const std::size_t n = 4;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a.at(r, c) = (r + 1.0) * (c + 1.0);
  }
  const SvdResult s = svd_square(a);
  EXPECT_GT(s.s[0], 1.0);
  for (std::size_t i = 1; i < n; ++i) EXPECT_NEAR(s.s[i], 0.0, 1e-6);
  Matrix us(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) us.at(r, c) = s.u.at(r, c) * s.s[c];
  }
  EXPECT_LT(a.frobenius_distance(matmul(us, s.v.transposed())), 1e-6);
}

TEST(Procrustes, ReturnsOrthogonalMatrix) {
  Rng rng(6);
  const Matrix a = random_matrix(12, rng);
  const Matrix r = procrustes_rotation(a);
  EXPECT_LT(r.orthogonality_error(), 1e-8);
}

TEST(Procrustes, RecoversKnownRotation) {
  // If A is itself orthogonal, the polar factor is A.
  Rng rng(7);
  const Matrix q = procrustes_rotation(random_matrix(8, rng));
  const Matrix r = procrustes_rotation(q);
  EXPECT_LT(q.frobenius_distance(r), 1e-7);
}

}  // namespace
}  // namespace drim
