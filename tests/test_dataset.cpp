// Tests for dataset containers, quantization, and the synthetic generators.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.hpp"
#include "data/synthetic.hpp"

namespace drim {
namespace {

TEST(FloatMatrix, PushBackFixesDim) {
  FloatMatrix m;
  const float a[3] = {1, 2, 3};
  m.push_back(a);
  m.push_back(a);
  EXPECT_EQ(m.count(), 2u);
  EXPECT_EQ(m.dim(), 3u);
  EXPECT_EQ(m.row(1)[2], 3.0f);
}

TEST(ByteDataset, RowAsFloatWidens) {
  ByteDataset d(1, 4);
  auto r = d.row(0);
  r[0] = 0;
  r[1] = 128;
  r[2] = 255;
  r[3] = 7;
  std::vector<float> f(4);
  d.row_as_float(0, f);
  EXPECT_EQ(f[0], 0.0f);
  EXPECT_EQ(f[1], 128.0f);
  EXPECT_EQ(f[2], 255.0f);
  EXPECT_EQ(f[3], 7.0f);
}

TEST(ByteDataset, ToFloatSubset) {
  ByteDataset d(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    d.row(i)[0] = static_cast<std::uint8_t>(i * 10);
    d.row(i)[1] = static_cast<std::uint8_t>(i * 10 + 1);
  }
  const std::uint32_t rows[2] = {2, 0};
  const FloatMatrix f = d.to_float(rows);
  ASSERT_EQ(f.count(), 2u);
  EXPECT_EQ(f.row(0)[0], 20.0f);
  EXPECT_EQ(f.row(1)[1], 1.0f);
}

TEST(Quantize, AffineMapEndpoints) {
  FloatMatrix m(1, 3);
  m.row(0)[0] = -1.0f;
  m.row(0)[1] = 0.0f;
  m.row(0)[2] = 1.0f;
  const ByteDataset q = quantize_to_u8(m, -1.0f, 1.0f);
  EXPECT_EQ(q.row(0)[0], 0);
  EXPECT_EQ(q.row(0)[1], 128);  // round(0.5 * 255)
  EXPECT_EQ(q.row(0)[2], 255);
}

TEST(Quantize, ClampsOutliers) {
  FloatMatrix m(1, 2);
  m.row(0)[0] = -5.0f;
  m.row(0)[1] = 5.0f;
  const ByteDataset q = quantize_to_u8(m, -1.0f, 1.0f);
  EXPECT_EQ(q.row(0)[0], 0);
  EXPECT_EQ(q.row(0)[1], 255);
}

TEST(Synthetic, SiftLikeShapesAndDeterminism) {
  SyntheticSpec spec;
  spec.num_base = 2000;
  spec.num_queries = 50;
  spec.num_learn = 500;
  spec.num_components = 32;
  const SyntheticData a = make_sift_like(spec);
  EXPECT_EQ(a.base.count(), 2000u);
  EXPECT_EQ(a.base.dim(), 128u);
  EXPECT_EQ(a.queries.count(), 50u);
  EXPECT_EQ(a.learn.count(), 500u);

  const SyntheticData b = make_sift_like(spec);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.base.row(i % 2000)[i % 128], b.base.row(i % 2000)[i % 128]);
  }
}

TEST(Synthetic, DeepLikeDefaultsTo96Dims) {
  SyntheticSpec spec;
  spec.num_base = 500;
  spec.num_queries = 10;
  spec.num_learn = 200;
  spec.num_components = 16;
  const SyntheticData d = make_deep_like(spec);
  EXPECT_EQ(d.base.dim(), 96u);
  EXPECT_EQ(d.queries.dim(), 96u);
}

TEST(Synthetic, QueriesInsideDataDomain) {
  SyntheticSpec spec;
  spec.num_base = 100;
  spec.num_queries = 100;
  spec.num_learn = 100;
  spec.num_components = 8;
  const SyntheticData d = make_sift_like(spec);
  for (std::size_t q = 0; q < d.queries.count(); ++q) {
    for (float v : d.queries.row(q)) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 255.0f);
    }
  }
}

TEST(Synthetic, ClusterStructureExists) {
  // Points sampled from the same mixture should produce many distinct values
  // but a clustered overall structure: verify base vectors are not constant
  // and seed changes the data.
  SyntheticSpec spec;
  spec.num_base = 200;
  spec.num_queries = 5;
  spec.num_learn = 50;
  spec.num_components = 4;
  const SyntheticData a = make_sift_like(spec);
  spec.seed = 43;
  const SyntheticData b = make_sift_like(spec);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < a.base.count(); ++i) {
    if (!std::equal(a.base.row(i).begin(), a.base.row(i).end(), b.base.row(i).begin())) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 150u);
}

}  // namespace
}  // namespace drim
