// TraceRecorder unit tests plus a structural check of the Chrome-trace JSON
// exporter: a minimal recursive-descent JSON parser (no dependency, strict
// enough for the subset the exporter emits) parses the whole output and the
// tests assert the schema contract --- displayTimeUnit, the traceEvents
// array, per-lane metadata, and the X / i / C event shapes the CLI smoke
// test also validates end to end.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "core/flat_search.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"
#include "obs/trace.hpp"

namespace drim {
namespace {

// ---- minimal JSON model + parser (test-only) ----

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> v;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const JsonObject& obj() const { return std::get<JsonObject>(v); }
  const JsonArray& arr() const { return std::get<JsonArray>(v); }
  double num() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
  bool has(const std::string& key) const {
    return is_object() && obj().count(key) > 0;
  }
  const JsonValue& at(const std::string& key) const { return obj().at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json parse error at " + std::to_string(pos_) +
                             ": " + what);
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't': literal("true"); return JsonValue{true};
      case 'f': literal("false"); return JsonValue{false};
      case 'n': literal("null"); return JsonValue{nullptr};
      default: return JsonValue{number()};
    }
  }

  void literal(const char* lit) {
    for (const char* p = lit; *p; ++p) expect(*p);
  }

  JsonValue object() {
    expect('{');
    JsonObject out;
    skip_ws();
    if (peek() == '}') { ++pos_; return JsonValue{out}; }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out[key] = value();
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return JsonValue{out};
    }
  }

  JsonValue array() {
    expect('[');
    JsonArray out;
    skip_ws();
    if (peek() == ']') { ++pos_; return JsonValue{out}; }
    while (true) {
      out.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return JsonValue{out};
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) fail("raw control char");
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u digit");
          }
          // The exporter only emits \u00XX for control chars; keep it simple.
          out.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  double number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return std::stod(s_.substr(start, pos_ - start));
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

JsonValue export_and_parse(const obs::TraceRecorder& tr) {
  std::ostringstream out;
  tr.write_chrome_trace(out);
  return JsonParser(out.str()).parse();
}

// ---- recorder semantics ----

TEST(TraceRecorder, CursorSetAdvanceNow) {
  obs::TraceRecorder tr;
  EXPECT_DOUBLE_EQ(tr.now(), 0.0);
  tr.set_now(1.5);
  tr.advance(0.25);
  EXPECT_DOUBLE_EQ(tr.now(), 1.75);
}

TEST(TraceRecorder, LanesAreGetOrCreateInRegistrationOrder) {
  obs::TraceRecorder tr;
  const std::uint32_t a = tr.lane("host/transfer");
  const std::uint32_t b = tr.lane("dpu 0");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(tr.lane("host/transfer"), a);  // second lookup: same lane
  EXPECT_EQ(tr.num_lanes(), 2u);
}

TEST(TraceRecorder, EmptyRecorderExportsValidEnvelope) {
  obs::TraceRecorder tr;
  EXPECT_TRUE(tr.empty());
  const JsonValue doc = export_and_parse(tr);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").str(), "ms");
  ASSERT_TRUE(doc.at("traceEvents").is_array());
  // Even with no events the process_name metadata record is present.
  ASSERT_FALSE(doc.at("traceEvents").arr().empty());
  EXPECT_EQ(doc.at("traceEvents").arr()[0].at("ph").str(), "M");
}

// ---- exported event schema ----

TEST(TraceRecorder, ExportsSpanInstantAndCounterEvents) {
  obs::TraceRecorder tr;
  const std::uint32_t lane = tr.lane("serve/batch");
  tr.span(lane, "step", "serve", 0.001, 0.0005, {{"tasks", 12.0}});
  tr.instant(lane, "shed", "serve", 0.0015, {{"id", 3.0}});
  tr.counter("serve/queue", 0.002, {{"depth", 4.0}});
  EXPECT_EQ(tr.num_events(), 3u);

  const JsonValue doc = export_and_parse(tr);
  const JsonArray& ev = doc.at("traceEvents").arr();

  const JsonValue* span = nullptr;
  const JsonValue* instant = nullptr;
  const JsonValue* counter = nullptr;
  for (const JsonValue& e : ev) {
    const std::string ph = e.at("ph").str();
    if (ph == "X") span = &e;
    if (ph == "i") instant = &e;
    if (ph == "C") counter = &e;
  }
  ASSERT_NE(span, nullptr);
  ASSERT_NE(instant, nullptr);
  ASSERT_NE(counter, nullptr);

  // Span: microsecond timestamps, duration, lane tid, args carried through.
  EXPECT_EQ(span->at("name").str(), "step");
  EXPECT_EQ(span->at("cat").str(), "serve");
  EXPECT_DOUBLE_EQ(span->at("ts").num(), 1000.0);
  EXPECT_DOUBLE_EQ(span->at("dur").num(), 500.0);
  EXPECT_DOUBLE_EQ(span->at("tid").num(), 0.0);
  EXPECT_DOUBLE_EQ(span->at("args").at("tasks").num(), 12.0);

  // Instant: thread-scoped, no duration.
  EXPECT_EQ(instant->at("s").str(), "t");
  EXPECT_FALSE(instant->has("dur"));
  EXPECT_DOUBLE_EQ(instant->at("ts").num(), 1500.0);

  // Counter: series live in args.
  EXPECT_EQ(counter->at("name").str(), "serve/queue");
  EXPECT_DOUBLE_EQ(counter->at("args").at("depth").num(), 4.0);
}

TEST(TraceRecorder, MetadataNamesEveryLaneWithSortIndex) {
  obs::TraceRecorder tr;
  tr.lane("host/transfer");
  tr.lane("dpu 0");
  tr.span(0, "x", "c", 0.0, 1.0);

  const JsonValue doc = export_and_parse(tr);
  std::map<double, std::string> names;      // tid -> thread_name
  std::map<double, double> sort_indices;    // tid -> thread_sort_index
  for (const JsonValue& e : doc.at("traceEvents").arr()) {
    if (e.at("ph").str() != "M") continue;
    if (e.at("name").str() == "thread_name") {
      names[e.at("tid").num()] = e.at("args").at("name").str();
    }
    if (e.at("name").str() == "thread_sort_index") {
      sort_indices[e.at("tid").num()] = e.at("args").at("sort_index").num();
    }
  }
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0.0], "host/transfer");
  EXPECT_EQ(names[1.0], "dpu 0");
  EXPECT_DOUBLE_EQ(sort_indices[0.0], 0.0);
  EXPECT_DOUBLE_EQ(sort_indices[1.0], 1.0);
}

TEST(TraceRecorder, EscapesNamesAndRejectsNonFiniteNumbers) {
  obs::TraceRecorder tr;
  const std::uint32_t lane = tr.lane("weird \"lane\"\n\tname");
  tr.span(lane, "quote\"back\\slash", "c\nat", 0.0, 1.0,
          {{"nan", std::nan("")}, {"inf", INFINITY}});

  const JsonValue doc = export_and_parse(tr);  // must still parse cleanly
  const JsonValue* span = nullptr;
  for (const JsonValue& e : doc.at("traceEvents").arr()) {
    if (e.at("ph").str() == "X") span = &e;
  }
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->at("name").str(), "quote\"back\\slash");
  EXPECT_EQ(span->at("cat").str(), "c\nat");
  // Non-finite arg values are clamped to 0 so the JSON stays standard.
  EXPECT_DOUBLE_EQ(span->at("args").at("nan").num(), 0.0);
  EXPECT_DOUBLE_EQ(span->at("args").at("inf").num(), 0.0);
}

TEST(TraceRecorder, FileExportThrowsOnUnwritablePath) {
  obs::TraceRecorder tr;
  EXPECT_THROW(tr.write_chrome_trace_file("/nonexistent-dir/trace.json"),
               std::runtime_error);
}

// ---- engine integration: a traced search emits the documented lanes ----

TEST(TraceIntegration, EngineSearchEmitsHostAndDpuLanes) {
  SyntheticSpec spec;
  spec.num_base = 2000;
  spec.num_queries = 12;
  spec.num_learn = 1200;
  spec.num_components = 24;
  SyntheticData data = make_sift_like(spec);

  IvfPqParams p;
  p.nlist = 16;
  p.pq.m = 8;
  p.pq.cb_entries = 16;
  IvfPqIndex index;
  index.train(data.learn, p);
  index.add(data.base);

  DrimEngineOptions o;
  o.pim.num_dpus = 4;
  o.heat_nprobe = 4;
  DrimAnnEngine engine(index, data.learn, o);

  obs::TraceRecorder tr;
  engine.set_trace(&tr);
  engine.search(data.queries, 5, 4);
  ASSERT_FALSE(tr.empty());
  // The cursor advanced across the batch and the export parses.
  EXPECT_GT(tr.now(), 0.0);
  const JsonValue doc = export_and_parse(tr);

  bool saw_dpu_span = false;
  bool saw_phase_span = false;
  bool saw_transfer = false;
  for (const JsonValue& e : doc.at("traceEvents").arr()) {
    if (e.at("ph").str() != "X") continue;
    if (e.at("cat").str() == "phase") saw_phase_span = true;
    if (e.at("name").str() == "search") saw_dpu_span = true;
    if (e.at("name").str() == "transfer-in") saw_transfer = true;
  }
  EXPECT_TRUE(saw_dpu_span);
  EXPECT_TRUE(saw_phase_span);
  EXPECT_TRUE(saw_transfer);
}

}  // namespace
}  // namespace drim
