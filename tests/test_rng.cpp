// Unit + property tests for the deterministic RNG and the Zipf sampler the
// workload generators depend on.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"

namespace drim {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(42);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatelyCentered) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(0.0f, 10.0f);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng(42);
  double sum = 0.0, sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, SampleWithoutReplacementDistinctAndSorted) {
  Rng rng(9);
  const auto s = rng.sample_without_replacement(1000, 100);
  ASSERT_EQ(s.size(), 100u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  std::set<std::uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 100u);
  for (auto v : s) EXPECT_LT(v, 1000u);
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(9);
  const auto s = rng.sample_without_replacement(10, 10);
  ASSERT_EQ(s.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(Zipf, UniformWhenExponentZero) {
  Rng rng(3);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Zipf, SkewConcentratesOnSmallIds) {
  Rng rng(3);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

// Property: Zipf probabilities should follow rank^-s within sampling noise.
class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, HeadProbabilityMatchesAnalytic) {
  const double s = GetParam();
  const std::uint32_t n = 50;
  ZipfSampler zipf(n, s);
  Rng rng(11);
  std::vector<int> counts(n, 0);
  const int draws = 200'000;
  for (int i = 0; i < draws; ++i) ++counts[zipf(rng)];

  double z = 0.0;
  for (std::uint32_t i = 1; i <= n; ++i) z += 1.0 / std::pow(i, s);
  const double p0 = 1.0 / z;
  EXPECT_NEAR(static_cast<double>(counts[0]) / draws, p0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.5));

}  // namespace
}  // namespace drim
