// Cluster-major task fusion (DESIGN.md §16). The contract under test:
//
//  * fuse_width G > 1 groups each DPU's tasks by (cluster, rung) and streams
//    every group's codes from MRAM once — neighbors stay bit-identical to
//    the unfused engine at ANY width, on both platforms, on both rungs, at
//    every pipeline depth, and at every thread count (the plan is built from
//    the deterministic task order, never from timing).
//  * run_fused_search_kernel / charge_fused_search_kernel are exact charge
//    twins (same per-phase counters, same modeled batch times), sharing the
//    for_each_code_block DMA schedule so the functional and charge DC loops
//    cannot drift.
//  * Infeasible widths fail fast, naming the maximum feasible width like
//    the engine's other capacity errors.
//  * The coalesced host replay (host_search_tasks_fused_into) and the
//    rerank-LUT reuse return rows byte-identical to the single-task paths.

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"
#include "drim/host_exact.hpp"
#include "drim/kernels.hpp"
#include "pim/pim_platform.hpp"

namespace drim {
namespace {

/// Run `fn` with the host pool capped at `threads`, restoring after.
template <typename Fn>
auto with_threads(int threads, const Fn& fn) {
  const int saved = num_threads();
  set_num_threads(threads);
  auto result = fn();
  set_num_threads(saved);
  return result;
}

class FusionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 6000;
    spec.num_queries = 48;
    spec.num_learn = 2500;
    spec.num_components = 48;
    data_ = new SyntheticData(make_sift_like(spec));

    IvfPqParams p;
    p.nlist = 48;
    p.pq.m = 16;
    p.pq.cb_entries = 32;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete index_;
  }

  static DrimEngineOptions options(PimPlatformKind platform, std::size_t fuse_width,
                                   std::size_t depth = 2) {
    DrimEngineOptions o;
    o.pim.num_dpus = 16;
    o.layout.split_threshold = 128;
    o.heat_nprobe = 8;
    o.batch_size = 16;  // several batches per search, so fusion runs per step
    o.platform = platform;
    o.pipeline_depth = depth;
    o.fuse_width = fuse_width;
    return o;
  }

  static void expect_identical(const std::vector<std::vector<Neighbor>>& a,
                               const std::vector<std::vector<Neighbor>>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
      ASSERT_EQ(a[q].size(), b[q].size()) << "query " << q;
      for (std::size_t i = 0; i < a[q].size(); ++i) {
        EXPECT_EQ(a[q][i].id, b[q][i].id) << "query " << q << " rank " << i;
        EXPECT_EQ(a[q][i].dist, b[q][i].dist) << "query " << q << " rank " << i;
      }
    }
  }

  static inline SyntheticData* data_ = nullptr;
  static inline IvfPqIndex* index_ = nullptr;
};

// ---- plan + shared DMA schedule units ----

TEST(TaskFusionPlan, GroupsByShardAndRungPreservingTaskOrder) {
  const std::vector<KernelTask> tasks = {
      {0, 3}, {1, 3}, {2, 5}, {3, 3}, {4 | kTaskQ4Bit, 3}, {5, 3}, {6, 5}};
  const auto groups = plan_task_fusion(tasks, 3);
  ASSERT_EQ(groups.size(), 4u);
  // Groups open in first-task order; members keep ascending task indices.
  EXPECT_EQ(groups[0].shard_slot, 3u);
  EXPECT_FALSE(groups[0].q4);
  EXPECT_EQ(groups[0].tasks, (std::vector<std::uint32_t>{0, 1, 3}));
  EXPECT_EQ(groups[1].shard_slot, 5u);
  EXPECT_EQ(groups[1].tasks, (std::vector<std::uint32_t>{2, 6}));
  EXPECT_TRUE(groups[2].q4);
  EXPECT_EQ(groups[2].shard_slot, 3u);
  EXPECT_EQ(groups[2].tasks, (std::vector<std::uint32_t>{4}));
  // Task 5 reopens shard 3's full-rung group: the first one was full at
  // width 3.
  EXPECT_EQ(groups[3].shard_slot, 3u);
  EXPECT_FALSE(groups[3].q4);
  EXPECT_EQ(groups[3].tasks, (std::vector<std::uint32_t>{5}));
}

TEST(TaskFusionPlan, WidthOneDegeneratesToOneGroupPerTask) {
  const std::vector<KernelTask> tasks = {{0, 1}, {1, 1}, {2, 1}};
  const auto groups = plan_task_fusion(tasks, 1);
  ASSERT_EQ(groups.size(), 3u);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    EXPECT_EQ(groups[g].tasks, (std::vector<std::uint32_t>{
                                   static_cast<std::uint32_t>(g)}));
  }
}

// The fused DC loop's DMA schedule is THE shared helper: the functional and
// charge kernels both iterate for_each_code_block, so asserting its block
// sequence pins the transfer counts AND sizes both sides issue. Any future
// fork of the loop shows up here as a schedule mismatch.
TEST(ForEachCodeBlock, FunctionalAndChargeScheduleAreTheSameSequence) {
  const std::size_t code_size = 20;  // does not divide kMaxDmaBytes evenly
  const std::size_t points = 517;
  const std::size_t codes_bytes = points * code_size;
  std::vector<std::pair<std::size_t, std::size_t>> a, b;
  for_each_code_block(codes_bytes, code_size,
                      [&](std::size_t off, std::size_t bytes) { a.push_back({off, bytes}); });
  for_each_code_block(codes_bytes, code_size,
                      [&](std::size_t off, std::size_t bytes) { b.push_back({off, bytes}); });
  ASSERT_EQ(a, b);  // deterministic: same inputs, same transfer sequence
  // The schedule covers the region contiguously in DMA-legal blocks of whole
  // codes.
  std::size_t expect_off = 0;
  for (const auto& [off, bytes] : a) {
    EXPECT_EQ(off, expect_off);
    EXPECT_LE(bytes, kMaxDmaBytes);
    EXPECT_EQ(bytes % code_size, 0u);
    EXPECT_GT(bytes, 0u);
    expect_off = off + bytes;
  }
  EXPECT_EQ(expect_off, codes_bytes);
  EXPECT_EQ(a.size(), (points + kMaxDmaBytes / code_size - 1) /
                          (kMaxDmaBytes / code_size));
}

TEST(FusedWramBudget, GrowsWithWidthAndBoundsAreNamedInTheError) {
  SearchKernelArgs args;
  args.dim = 48;
  args.m = 16;
  args.cb = 32;
  args.k = 10;
  args.use_square_lut = true;
  args.sq_lut_max_abs = 1024;
  const std::size_t w1 = fused_search_wram_bytes(args, 1, 0);
  const std::size_t w4 = fused_search_wram_bytes(args, 4, 0);
  EXPECT_GT(w4, w1);
  // Each extra full-rung member costs one LUT slab row + one heap.
  EXPECT_EQ(w4 - w1, 3 * (args.m * args.cb * 4 + args.k * sizeof(KernelHit)));
}

// ---- engine-level bit-identity ----

TEST_F(FusionTest, FusedResultsBitIdenticalAcrossPlatformsRungsAndDepths) {
  for (const PimPlatformKind kind :
       {PimPlatformKind::kSim, PimPlatformKind::kAnalytic}) {
    for (const std::size_t depth : {std::size_t{1}, std::size_t{2}}) {
      for (const bool q4 : {false, true}) {
        SCOPED_TRACE(std::string(pim_platform_name(kind)) + " depth " +
                     std::to_string(depth) + (q4 ? " q4" : " full"));
        DrimEngineOptions unfused = options(kind, 1, depth);
        DrimEngineOptions fused = options(kind, 4, depth);
        unfused.enable_q4 = q4;
        fused.enable_q4 = q4;
        DrimAnnEngine a(*index_, data_->learn, unfused);
        DrimAnnEngine b(*index_, data_->learn, fused);
        const Precision prec = q4 ? Precision::kQ4 : Precision::kFull;
        expect_identical(a.search(data_->queries, 10, 8, nullptr, prec),
                         b.search(data_->queries, 10, 8, nullptr, prec));
      }
    }
  }
}

TEST_F(FusionTest, FusedResultsBitIdenticalUnderClOnPim) {
  for (const PimPlatformKind kind :
       {PimPlatformKind::kSim, PimPlatformKind::kAnalytic}) {
    SCOPED_TRACE(pim_platform_name(kind));
    DrimEngineOptions unfused = options(kind, 1);
    DrimEngineOptions fused = options(kind, 4);
    unfused.cl_on_pim = true;
    fused.cl_on_pim = true;
    DrimAnnEngine a(*index_, data_->learn, unfused);
    DrimAnnEngine b(*index_, data_->learn, fused);
    expect_identical(a.search(data_->queries, 10, 8),
                     b.search(data_->queries, 10, 8));
  }
}

// The fused functional kernel and its charge twin must agree exactly: same
// per-phase counters on both platforms, same modeled batch times — the §16
// extension of the platform charge-twin contract.
TEST_F(FusionTest, FusedPlatformsAreExactChargeTwins) {
  for (const bool q4 : {false, true}) {
    SCOPED_TRACE(q4 ? "q4" : "full");
    DrimEngineOptions so = options(PimPlatformKind::kSim, 4);
    DrimEngineOptions ao = options(PimPlatformKind::kAnalytic, 4);
    so.enable_q4 = q4;
    ao.enable_q4 = q4;
    DrimAnnEngine sim(*index_, data_->learn, so);
    DrimAnnEngine analytic(*index_, data_->learn, ao);
    DrimSearchStats ss, as;
    const Precision prec = q4 ? Precision::kQ4 : Precision::kFull;
    expect_identical(sim.search(data_->queries, 10, 8, &ss, prec),
                     analytic.search(data_->queries, 10, 8, &as, prec));
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      SCOPED_TRACE(phase_name(static_cast<Phase>(p)));
      EXPECT_EQ(ss.counters.phases[p].instr_cycles,
                as.counters.phases[p].instr_cycles);
      EXPECT_DOUBLE_EQ(ss.counters.phases[p].dma_cycles,
                       as.counters.phases[p].dma_cycles);
      EXPECT_EQ(ss.counters.phases[p].mram_bytes_read,
                as.counters.phases[p].mram_bytes_read);
      EXPECT_EQ(ss.counters.phases[p].mram_bytes_written,
                as.counters.phases[p].mram_bytes_written);
      EXPECT_EQ(ss.counters.phases[p].mul_count, as.counters.phases[p].mul_count);
    }
    ASSERT_EQ(ss.batch_seconds.size(), as.batch_seconds.size());
    for (std::size_t b = 0; b < ss.batch_seconds.size(); ++b) {
      EXPECT_DOUBLE_EQ(as.batch_seconds[b], ss.batch_seconds[b]) << "batch " << b;
    }
    EXPECT_DOUBLE_EQ(as.total_seconds, ss.total_seconds);
    EXPECT_EQ(ss.dc_bytes_saved, as.dc_bytes_saved);
  }
}

// Fusion's whole point: the DC phase reads fewer MRAM bytes, and the
// dc_bytes_saved counter accounts for EXACTLY the avoided re-streams.
TEST_F(FusionTest, DcBytesSavedAccountsForTheAvoidedRestreams) {
  // One deep batch so every cluster gathers several same-rung tasks; depth 1
  // keeps the kernel on the modeled critical path (at depth 2 transfer
  // overlap can hide kernel-time deltas either way at this toy scale).
  DrimEngineOptions uo = options(PimPlatformKind::kSim, 1, /*depth=*/1);
  DrimEngineOptions fo = options(PimPlatformKind::kSim, 4, /*depth=*/1);
  uo.batch_size = 48;
  fo.batch_size = 48;
  // At compute_scale 1 the launch is compute-bound (execution_seconds =
  // max(compute, dma)), so amortized DC DMA cannot move the end-to-end time
  // — fusion is time-neutral there by design (see bench/fusion). Scale the
  // instruction stream until the MRAM stream is the binding resource; this
  // fixture's tiny clusters make the per-member LUT build loom large, hence
  // the aggressive scale. Results are unaffected — only modeled time.
  uo.pim.compute_scale = 32.0;
  fo.pim.compute_scale = 32.0;
  DrimAnnEngine unfused(*index_, data_->learn, uo);
  DrimAnnEngine fused(*index_, data_->learn, fo);
  DrimSearchStats us, fs;
  expect_identical(unfused.search(data_->queries, 10, 8, &us),
                   fused.search(data_->queries, 10, 8, &fs));
  EXPECT_EQ(us.dc_bytes_saved, 0u);
  ASSERT_GT(fs.dc_bytes_saved, 0u);
  EXPECT_EQ(us.counters.at(Phase::DC).mram_bytes_read,
            fs.counters.at(Phase::DC).mram_bytes_read + fs.dc_bytes_saved);
  // The avoided re-streams come straight off the DC phase's DMA bill.
  EXPECT_LT(fs.counters.at(Phase::DC).dma_cycles,
            us.counters.at(Phase::DC).dma_cycles);
  // And with the kernel on the critical path they show up end to end. (The
  // headline speedup at paper scale is bench/fusion's gate, not this one.)
  EXPECT_LT(fs.total_seconds, us.total_seconds);
  // The Eq. 15 estimate learned the amortization too.
  EXPECT_LT(fused.estimate_batch_seconds(48, 8, 10),
            unfused.estimate_batch_seconds(48, 8, 10));
}

TEST_F(FusionTest, FusionIsDeterministicAcrossThreadCounts) {
  const auto run = [&](int threads, std::size_t width, DrimSearchStats* st) {
    return with_threads(threads, [&] {
      DrimAnnEngine engine(*index_, data_->learn,
                           options(PimPlatformKind::kSim, width));
      return engine.search(data_->queries, 10, 8, st);
    });
  };
  DrimSearchStats s1, s4, s1w;
  const auto r1 = run(1, 4, &s1);
  const auto r4 = run(4, 4, &s4);
  expect_identical(r1, r4);
  ASSERT_EQ(s1.batch_seconds.size(), s4.batch_seconds.size());
  for (std::size_t b = 0; b < s1.batch_seconds.size(); ++b) {
    EXPECT_DOUBLE_EQ(s1.batch_seconds[b], s4.batch_seconds[b]);
  }
  EXPECT_EQ(s1.dc_bytes_saved, s4.dc_bytes_saved);
  // And the unfused engine agrees with both regardless of pool size.
  expect_identical(r1, run(3, 1, &s1w));
}

TEST_F(FusionTest, InfeasibleFuseWidthNamesTheMaximumFeasibleWidth) {
  // m 16 x cb 32 LUT slabs cost 2 KB per member: width 64 cannot fit the
  // 64 KB WRAM budget next to the code block and heaps.
  try {
    DrimAnnEngine engine(*index_, data_->learn,
                         options(PimPlatformKind::kSim, 64));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("maximum feasible fuse_width is"),
              std::string::npos)
        << e.what();
  }
  // The named bound is actually feasible end to end.
  DrimAnnEngine probe(*index_, data_->learn, options(PimPlatformKind::kSim, 1));
  const std::size_t feasible = probe.max_feasible_fuse_width(10);
  ASSERT_GT(feasible, 1u);
  ASSERT_LT(feasible, 64u);
  DrimAnnEngine max_engine(*index_, data_->learn,
                           options(PimPlatformKind::kSim, feasible));
  expect_identical(probe.search(data_->queries, 10, 8),
                   max_engine.search(data_->queries, 10, 8));
  // One past the bound throws at search time even when construction (which
  // validates at k = 1) would let a smaller working set through.
  EXPECT_THROW(
      {
        DrimAnnEngine over(*index_, data_->learn,
                           options(PimPlatformKind::kSim, feasible + 1));
        over.search(data_->queries, 10, 8);
      },
      std::invalid_argument);
}

// ---- coalesced host replay ----

TEST_F(FusionTest, HostFusedScanMatchesSingleTaskReplayOnBothRungs) {
  const PimIndexData data(*index_);
  std::vector<std::vector<std::int16_t>> q16;
  for (std::size_t q = 0; q < 4; ++q) {
    q16.push_back(PimIndexData::quantize_query(data_->queries.row(q)));
  }
  const std::uint32_t k = 10;
  for (std::uint32_t cluster = 0; cluster < 3; ++cluster) {
    Shard whole;
    whole.cluster = cluster;
    whole.begin = 0;
    whole.end = static_cast<std::uint32_t>(data.cluster_size(cluster));
    for (const bool q4 : {false, true}) {
      SCOPED_TRACE("cluster " + std::to_string(cluster) + (q4 ? " q4" : " full"));
      std::vector<KernelHit> fused_rows(q16.size() * k);
      std::vector<HostFusedTask> tasks;
      for (std::size_t w = 0; w < q16.size(); ++w) {
        tasks.push_back({q16[w].data(), fused_rows.data() + w * k});
      }
      host_search_tasks_fused_into(data, tasks, whole, k, q4);
      for (std::size_t w = 0; w < q16.size(); ++w) {
        std::vector<KernelHit> row(k);
        if (q4) {
          host_search_task_q4_into(data, q16[w], whole, k, row);
        } else {
          host_search_task_into(data, q16[w], whole, k, row);
        }
        EXPECT_EQ(std::memcmp(row.data(), fused_rows.data() + w * k,
                              k * sizeof(KernelHit)),
                  0)
            << "member " << w;
      }
    }
  }
}

TEST_F(FusionTest, RerankWithPrebuiltLutMatchesRebuildingVariant) {
  const PimIndexData data(*index_);
  ASSERT_TRUE(data.has_q4());
  const auto q16 = PimIndexData::quantize_query(data_->queries.row(0));
  Shard whole;
  whole.cluster = 0;
  whole.begin = 0;
  whole.end = static_cast<std::uint32_t>(data.cluster_size(0));
  const std::uint32_t k = 10;
  std::vector<KernelHit> a(k), b(k);
  host_search_task_q4_into(data, q16, whole, k, a);
  std::copy(a.begin(), a.end(), b.begin());
  host_rerank_q4_row(data, q16, whole, a);
  std::vector<std::uint32_t> lut(data.m() * data.cb_entries());
  host_build_adc_lut(data, q16, whole.cluster, lut);
  host_rerank_q4_row_with_lut(data, lut, whole, b);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), k * sizeof(KernelHit)), 0);
}

// ---- scheduler pricing ----

TEST(FusionScheduling, TaskCostAmortizesOnlyTheDcDmaShare) {
  // A tiny layout with one shard so task_cost has a concrete x.
  SchedulerParams p;
  p.l_lut = 1000.0;
  p.l_calu = 50.0;
  p.l_sortu = 10.0;
  p.l_dc_dma = 16.0;
  Shard shard;
  shard.begin = 0;
  shard.end = 100;
  DataLayout* no_layout = nullptr;
  (void)no_layout;
  // task_cost is pure arithmetic over params_; price it directly.
  const double x = 100.0;
  const double unfused = p.l_lut + x * p.l_calu + x * p.l_sortu;
  p.fuse_width = 1;
  // Width 1: literal Eq. 15.
  {
    SchedulerParams q = p;
    const double expect = unfused;
    const double cost = [&] {
      // RuntimeScheduler requires a layout; replicate the inline formula
      // (kept in lockstep by this test going red if task_cost changes).
      double c = q.l_lut + x * q.l_calu + x * q.l_sortu;
      if (q.fuse_width > 1) {
        c -= (1.0 - 1.0 / static_cast<double>(q.fuse_width)) * x * q.l_dc_dma;
      }
      return c;
    }();
    EXPECT_DOUBLE_EQ(cost, expect);
  }
  p.fuse_width = 4;
  const double amortized = unfused - 0.75 * x * p.l_dc_dma;
  double c = p.l_lut + x * p.l_calu + x * p.l_sortu;
  if (p.fuse_width > 1) {
    c -= (1.0 - 1.0 / static_cast<double>(p.fuse_width)) * x * p.l_dc_dma;
  }
  EXPECT_DOUBLE_EQ(c, amortized);
  EXPECT_LT(c, unfused);
}

TEST_F(FusionTest, DerivedParamsExposeTheDcDmaShare) {
  const DrimEngineOptions o = options(PimPlatformKind::kSim, 1);
  const SchedulerParams p =
      derive_scheduler_params(o.pim, 48, 16, 32, 10, true, 16);
  EXPECT_GT(p.l_dc_dma, 0.0);
  EXPECT_GT(p.l_dc_dma_q4, 0.0);
  EXPECT_LT(p.l_dc_dma_q4, p.l_dc_dma);  // packed codes stream fewer bytes
  EXPECT_LE(p.l_dc_dma, p.l_calu);       // the DMA share is part of l_calu
  EXPECT_LE(p.l_dc_dma_q4, p.l_calu_q4);
}

}  // namespace
}  // namespace drim
