// Mutable-index tests (DESIGN.md §14): the IndexWriter's streaming insert /
// tombstone delete / online split, the versioned snapshots it publishes, and
// the acceptance contract that pins the whole design — search over a
// published snapshot is bit-identical (ids AND distances) to search over a
// cold offline rebuild of the same logical state, on both PIM platforms.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/mutable_index.hpp"
#include "core/serialize.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"

namespace drim {
namespace {

class MutableIndexTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 4000;
    spec.num_queries = 32;
    spec.num_learn = 2000;
    spec.num_components = 32;
    data_ = new SyntheticData(make_sift_like(spec));
    base_float_ = new FloatMatrix(data_->base.to_float());

    IvfPqParams p;
    p.nlist = 32;
    p.pq.m = 16;
    p.pq.cb_entries = 32;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete base_float_;
    delete index_;
  }

  static DrimEngineOptions options(PimPlatformKind kind = PimPlatformKind::kSim) {
    DrimEngineOptions o;
    o.pim.num_dpus = 8;
    o.layout.split_threshold = 128;
    o.heat_nprobe = 8;
    o.batch_size = 16;
    o.platform = kind;
    return o;
  }

  static void expect_identical(const std::vector<std::vector<Neighbor>>& a,
                               const std::vector<std::vector<Neighbor>>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
      ASSERT_EQ(a[q].size(), b[q].size()) << "query " << q;
      for (std::size_t i = 0; i < a[q].size(); ++i) {
        EXPECT_EQ(a[q][i].id, b[q][i].id) << "query " << q << " rank " << i;
        EXPECT_EQ(a[q][i].dist, b[q][i].dist) << "query " << q << " rank " << i;
      }
    }
  }

  /// The acceptance contract: search over the writer's published snapshot
  /// equals search over a cold rebuild of the same live set, bit for bit,
  /// on the given platform.
  static void expect_matches_cold_rebuild(IndexWriter& writer,
                                          PimPlatformKind kind) {
    const IndexSnapshot snap = writer.publish();
    const IvfPqIndex cold = writer.compacted_index();
    DrimAnnEngine live(snap, data_->learn, options(kind));
    DrimAnnEngine rebuilt(cold, data_->learn, options(kind));
    expect_identical(live.search(data_->queries, 10, 8),
                     rebuilt.search(data_->queries, 10, 8));
  }

  static inline SyntheticData* data_ = nullptr;
  static inline FloatMatrix* base_float_ = nullptr;
  static inline IvfPqIndex* index_ = nullptr;
};

TEST_F(MutableIndexTest, InsertAssignsSequentialIdsAndEraseTombstones) {
  IndexWriter writer(*index_);
  EXPECT_EQ(writer.live_count(), index_->ntotal());
  EXPECT_FALSE(writer.dirty());

  const auto id0 = writer.insert(base_float_->row(0));
  const auto id1 = writer.insert(base_float_->row(1));
  EXPECT_EQ(id0, static_cast<std::uint32_t>(index_->ntotal()));
  EXPECT_EQ(id1, id0 + 1);
  EXPECT_TRUE(writer.alive(id0));
  EXPECT_EQ(writer.live_count(), index_->ntotal() + 2);
  EXPECT_TRUE(writer.dirty());

  EXPECT_TRUE(writer.erase(7));
  EXPECT_FALSE(writer.alive(7));
  EXPECT_FALSE(writer.erase(7)) << "double delete is a no-op";
  EXPECT_FALSE(writer.erase(id1 + 1000)) << "unknown id is a no-op";
  EXPECT_EQ(writer.live_count(), index_->ntotal() + 1);

  PublishDelta delta;
  const IndexSnapshot snap = writer.publish(&delta);
  EXPECT_EQ(snap.version, 1u);
  EXPECT_EQ(delta.inserts, 2u);
  EXPECT_EQ(delta.deletes, 1u);
  EXPECT_GT(delta.appended_bytes, 0u);
  EXPECT_FALSE(writer.dirty());
  // The snapshot carries the tombstone for the erased id's cluster.
  EXPECT_TRUE(snap.tombstones != nullptr);
}

TEST_F(MutableIndexTest, TombstonedIdsNeverSurfaceOnEitherPlatform) {
  // Erase ids the read-only engine actually returns, so surfacing would be
  // caught, then check both platforms agree and never show them.
  DrimAnnEngine readonly(*index_, data_->learn, options());
  const auto before = readonly.search(data_->queries, 10, 8);
  std::unordered_set<std::uint32_t> erased;
  for (std::size_t q = 0; q < 8; ++q) {
    erased.insert(before[q][0].id);  // each query's current top hit
  }

  IndexWriter writer(*index_);
  for (const std::uint32_t id : erased) ASSERT_TRUE(writer.erase(id));
  const IndexSnapshot snap = writer.publish();

  DrimAnnEngine sim(snap, data_->learn, options(PimPlatformKind::kSim));
  DrimAnnEngine analytic(snap, data_->learn, options(PimPlatformKind::kAnalytic));
  DrimSearchStats sim_stats, analytic_stats;
  const auto sim_res = sim.search(data_->queries, 10, 8, &sim_stats);
  const auto ana_res = analytic.search(data_->queries, 10, 8, &analytic_stats);

  for (const auto& per_query : sim_res) {
    for (const Neighbor& n : per_query) {
      EXPECT_EQ(erased.count(n.id), 0u) << "tombstoned id surfaced";
    }
  }
  // The analytic platform replays the same host-exact scan (tombstones
  // included) and charges identically.
  expect_identical(sim_res, ana_res);
  EXPECT_EQ(sim_stats.total_seconds, analytic_stats.total_seconds);
}

TEST_F(MutableIndexTest, InsertedVectorIsFindable) {
  // Insert an exact copy of a query payload: with every cluster probed it
  // must land in that query's top-k (it PQ-encodes like its nearest base
  // twins, and ties break toward it only if ids allow — so assert
  // membership, not rank).
  IndexWriter writer(*index_);
  const auto id = writer.insert(data_->queries.row(3));
  const IndexSnapshot snap = writer.publish();

  DrimAnnEngine engine(snap, data_->learn, options());
  const auto res = engine.search(data_->queries, 10, index_->params().nlist);
  const bool found = std::any_of(res[3].begin(), res[3].end(),
                                 [&](const Neighbor& n) { return n.id == id; });
  EXPECT_TRUE(found) << "inserted duplicate of query 3 not in its top-10";
}

TEST_F(MutableIndexTest, MutatedSnapshotMatchesColdRebuildOnBothPlatforms) {
  IndexWriter writer(*index_);
  // A churn mix: appends into several clusters plus scattered tombstones.
  for (std::size_t i = 0; i < 64; ++i) {
    writer.insert(base_float_->row(i * 7 % base_float_->count()));
  }
  for (std::uint32_t id = 0; id < 400; id += 13) writer.erase(id);

  expect_matches_cold_rebuild(writer, PimPlatformKind::kSim);
  expect_matches_cold_rebuild(writer, PimPlatformKind::kAnalytic);
}

TEST_F(MutableIndexTest, OnlineSplitGrowsNlistDeterministicallyAndPreservesRecall) {
  WriterParams wp;
  wp.split_threshold = 160;  // base lists average 125; appends trip it
  IndexWriter writer(*index_, wp);
  const std::size_t nlist_before = writer.nlist();

  // Hammer inserts until at least one split fires (deterministic: the same
  // insert sequence always splits the same clusters at the same ops).
  std::vector<std::uint32_t> inserted;
  for (std::size_t i = 0; i < 1500 && writer.nlist() == nlist_before; ++i) {
    inserted.push_back(writer.insert(base_float_->row(i % base_float_->count())));
  }
  ASSERT_GT(writer.nlist(), nlist_before) << "no split triggered";

  PublishDelta delta;
  const IndexSnapshot snap = writer.publish(&delta);
  ASSERT_FALSE(delta.splits.empty());
  EXPECT_EQ(delta.splits.front().child, static_cast<std::uint32_t>(nlist_before));
  EXPECT_GT(delta.splits.front().child_fraction, 0.0);
  EXPECT_LT(delta.splits.front().child_fraction, 1.0);
  EXPECT_GT(delta.moved_bytes, 0u) << "splits rewrite the parent's slot";
  EXPECT_EQ(snap.index->params().nlist, writer.nlist());

  // Rerunning the same sequence reproduces the same splits (seeded 2-means).
  IndexWriter rerun(*index_, wp);
  for (std::size_t i = 0; i < inserted.size(); ++i) {
    rerun.insert(base_float_->row(i % base_float_->count()));
  }
  PublishDelta delta2;
  rerun.publish(&delta2);
  ASSERT_EQ(delta2.splits.size(), delta.splits.size());
  for (std::size_t s = 0; s < delta.splits.size(); ++s) {
    EXPECT_EQ(delta2.splits[s].parent, delta.splits[s].parent);
    EXPECT_EQ(delta2.splits[s].child, delta.splits[s].child);
    EXPECT_EQ(delta2.splits[s].child_fraction, delta.splits[s].child_fraction);
  }

  // Post-split search still finds the split clusters' members: every
  // inserted duplicate of base row r must keep r-neighborhood recall. Spot
  // check via the duplicate of query payloads' nearest clusters by searching
  // for a handful of inserted copies directly.
  DrimAnnEngine engine(snap, data_->learn, options());
  FloatMatrix probes;
  for (std::size_t i = 0; i < 8; ++i) probes.push_back(base_float_->row(i));
  const auto res = engine.search(probes, 10, writer.nlist());
  for (std::size_t i = 0; i < probes.count(); ++i) {
    // Row i exists twice (base id i + the inserted duplicate); at full
    // nprobe at least one copy must be in the top-10.
    const bool found = std::any_of(res[i].begin(), res[i].end(), [&](const Neighbor& n) {
      return n.id == static_cast<std::uint32_t>(i) || n.id == inserted[i];
    });
    EXPECT_TRUE(found) << "post-split probe " << i << " lost its own vector";
  }
}

TEST_F(MutableIndexTest, SplitSnapshotMatchesColdRebuild) {
  WriterParams wp;
  wp.split_threshold = 160;
  IndexWriter writer(*index_, wp);
  for (std::size_t i = 0; i < 800; ++i) {
    writer.insert(base_float_->row(i % base_float_->count()));
  }
  for (std::uint32_t id = 0; id < 300; id += 11) writer.erase(id);
  ASSERT_GT(writer.nlist(), index_->params().nlist);

  expect_matches_cold_rebuild(writer, PimPlatformKind::kSim);
  expect_matches_cold_rebuild(writer, PimPlatformKind::kAnalytic);
}

TEST_F(MutableIndexTest, EmptyPublishIsFreeAndChangesNothing) {
  IndexWriter writer(*index_);
  PublishDelta delta;
  const IndexSnapshot snap = writer.publish(&delta);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.total_bytes(), 0u);

  DrimAnnEngine readonly(*index_, data_->learn, options());
  DrimAnnEngine published(snap, data_->learn, options());
  DrimSearchStats a, b;
  expect_identical(readonly.search(data_->queries, 10, 8, &a),
                   published.search(data_->queries, 10, 8, &b));
  EXPECT_EQ(a.total_seconds, b.total_seconds);
}

TEST_F(MutableIndexTest, SerializedMutatedIndexEqualsOfflineRebuild) {
  // Round-trip the compacted (cold-rebuild) form of a mutated index through
  // the on-disk format; the reloaded index must search identically to the
  // writer's published snapshot — the serialization layer sees a mutated
  // index as just another offline build.
  WriterParams wp;
  wp.split_threshold = 160;
  IndexWriter writer(*index_, wp);
  for (std::size_t i = 0; i < 500; ++i) {
    writer.insert(base_float_->row((i * 3) % base_float_->count()));
  }
  for (std::uint32_t id = 100; id < 600; id += 17) writer.erase(id);

  const IndexSnapshot snap = writer.publish();
  const IvfPqIndex cold = writer.compacted_index();
  const std::string path = ::testing::TempDir() + "drim_mutated_index.bin";
  save_index(cold, path);
  const IvfPqIndex reloaded = load_index(path);
  std::remove(path.c_str());
  // ntotal is the id-space high-water mark (ids are never reused), so it
  // survives the round trip; the stored rows are exactly the live set.
  EXPECT_EQ(reloaded.ntotal(), snap.index->ntotal());
  std::size_t rows = 0;
  for (std::size_t c = 0; c < reloaded.params().nlist; ++c) {
    rows += reloaded.list(c).size();
  }
  EXPECT_EQ(rows, writer.live_count());

  DrimAnnEngine live(snap, data_->learn, options());
  DrimAnnEngine from_disk(reloaded, data_->learn, options());
  expect_identical(live.search(data_->queries, 10, 8),
                   from_disk.search(data_->queries, 10, 8));
}

TEST_F(MutableIndexTest, CompactSnapshotKeepsIdSpaceHighWaterMark) {
  IndexWriter writer(*index_);
  writer.erase(0);
  const auto id = writer.insert(base_float_->row(5));
  const IndexSnapshot snap = writer.publish();

  // compact_snapshot drops dead rows but must NOT shrink the id space: a
  // later insert would otherwise reuse a live id.
  const IvfPqIndex compacted = compact_snapshot(snap);
  EXPECT_EQ(compacted.ntotal(), snap.index->ntotal());
  EXPECT_EQ(snap.index->ntotal(), static_cast<std::size_t>(id) + 1);
  std::size_t rows = 0;
  for (std::size_t c = 0; c < compacted.params().nlist; ++c) {
    rows += compacted.list(c).size();
  }
  EXPECT_EQ(rows, writer.live_count());
}

}  // namespace
}  // namespace drim
