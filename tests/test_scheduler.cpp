// Tests for the runtime scheduler: task completeness (every (q, slice)
// scheduled exactly once), replica choice, load prediction, and the
// inter-batch filter.

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "common/stats.hpp"
#include "data/synthetic.hpp"
#include "drim/scheduler.hpp"

namespace drim {
namespace {

struct SchedulerWorld {
  SyntheticData data;
  IvfPqIndex index;
  std::unique_ptr<PimIndexData> pim_data;
  std::vector<double> heat;
  std::unique_ptr<DataLayout> layout;

  explicit SchedulerWorld(const LayoutParams& params, std::size_t num_dpus = 12) {
    SyntheticSpec spec;
    spec.num_base = 4000;
    spec.num_queries = 80;
    spec.num_learn = 1500;
    spec.num_components = 32;
    spec.query_skew = 1.0;
    data = make_sift_like(spec);

    IvfPqParams p;
    p.nlist = 32;
    p.pq.m = 8;
    p.pq.cb_entries = 16;
    index.train(data.learn, p);
    index.add(data.base);
    pim_data = std::make_unique<PimIndexData>(index);
    heat = estimate_heat(index, data.queries, 8);
    layout = std::make_unique<DataLayout>(*pim_data, num_dpus, heat, params);
  }

  std::vector<std::vector<std::uint32_t>> probes(std::size_t nprobe) const {
    std::vector<std::vector<std::uint32_t>> out(data.queries.count());
    for (std::size_t q = 0; q < data.queries.count(); ++q) {
      out[q] = index.locate_clusters(data.queries.row(q), nprobe);
    }
    return out;
  }
};

LayoutParams default_params() {
  LayoutParams p;
  p.split_threshold = 128;
  p.dup_copies = 1;
  p.dup_fraction = 0.2;
  return p;
}

TEST(Scheduler, EveryQuerySliceScheduledExactlyOnce) {
  SchedulerWorld world(default_params());
  RuntimeScheduler sched(*world.layout, SchedulerParams{});
  const auto probes = world.probes(8);
  const Assignment a = sched.schedule(probes, {}, /*final_batch=*/true);

  // Expected task multiset: for each query, one task per (cluster, slice).
  std::map<std::pair<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>>, int> expected;
  for (std::size_t q = 0; q < probes.size(); ++q) {
    for (std::uint32_t c : probes[q]) {
      const auto& groups = world.layout->slice_groups(c);
      for (std::size_t s = 0; s < groups.size(); ++s) {
        if (!groups[s].empty()) {
          ++expected[{static_cast<std::uint32_t>(q),
                      {c, static_cast<std::uint32_t>(s)}}];
        }
      }
    }
  }

  std::map<std::pair<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>>, int> got;
  for (const auto& dpu_tasks : a.per_dpu) {
    for (const Task& t : dpu_tasks) {
      const Shard& sh = world.layout->shard(t.shard);
      // Slice index = position of this shard's range within the cluster.
      const auto& groups = world.layout->slice_groups(sh.cluster);
      std::uint32_t slice = 0;
      for (std::size_t s = 0; s < groups.size(); ++s) {
        const Shard& rep = world.layout->shard(groups[s].front());
        if (rep.begin == sh.begin && rep.end == sh.end) {
          slice = static_cast<std::uint32_t>(s);
          break;
        }
      }
      ++got[{t.query, {sh.cluster, slice}}];
    }
  }
  EXPECT_TRUE(a.deferred.empty());
  EXPECT_EQ(got, expected);
}

TEST(Scheduler, TasksLandOnDpusHoldingTheShard) {
  SchedulerWorld world(default_params());
  RuntimeScheduler sched(*world.layout, SchedulerParams{});
  const Assignment a = sched.schedule(world.probes(8), {}, true);
  for (std::size_t d = 0; d < a.per_dpu.size(); ++d) {
    for (const Task& t : a.per_dpu[d]) {
      EXPECT_EQ(world.layout->shard(t.shard).dpu, d);
    }
  }
}

TEST(Scheduler, PredictedLoadMatchesTaskCosts) {
  SchedulerWorld world(default_params());
  RuntimeScheduler sched(*world.layout, SchedulerParams{});
  const Assignment a = sched.schedule(world.probes(4), {}, true);
  for (std::size_t d = 0; d < a.per_dpu.size(); ++d) {
    double sum = 0.0;
    for (const Task& t : a.per_dpu[d]) {
      sum += sched.task_cost(world.layout->shard(t.shard));
    }
    EXPECT_NEAR(a.predicted_load[d], sum, 1e-6 * std::max(1.0, sum));
  }
}

TEST(Scheduler, Eq15LatencyLinearInShardSize) {
  SchedulerWorld world(default_params());
  SchedulerParams p;
  p.l_lut = 100.0;
  p.l_calu = 2.0;
  p.l_sortu = 1.0;
  RuntimeScheduler sched(*world.layout, p);
  Shard small;
  small.begin = 0;
  small.end = 10;
  Shard big;
  big.begin = 0;
  big.end = 100;
  EXPECT_DOUBLE_EQ(sched.task_cost(small), 100.0 + 10 * 3.0);
  EXPECT_DOUBLE_EQ(sched.task_cost(big), 100.0 + 100 * 3.0);
}

TEST(Scheduler, FilterDefersWorkFromOverloadedDpus) {
  SchedulerWorld world(default_params());
  SchedulerParams p;
  p.enable_filter = true;
  p.filter_slack = 0.0;  // aggressive: anything above mean defers
  RuntimeScheduler sched(*world.layout, p);
  const Assignment a = sched.schedule(world.probes(8), {}, /*final_batch=*/false);
  EXPECT_GT(a.deferred.size(), 0u);

  // Conservation: deferred + scheduled == total demand.
  std::size_t scheduled = 0;
  for (const auto& tasks : a.per_dpu) scheduled += tasks.size();
  const Assignment all = sched.schedule(world.probes(8), {}, true);
  std::size_t total = 0;
  for (const auto& tasks : all.per_dpu) total += tasks.size();
  EXPECT_EQ(scheduled + a.deferred.size(), total);
}

TEST(Scheduler, FinalBatchNeverDefers) {
  SchedulerWorld world(default_params());
  SchedulerParams p;
  p.enable_filter = true;
  p.filter_slack = 0.0;
  RuntimeScheduler sched(*world.layout, p);
  const Assignment a = sched.schedule(world.probes(8), {}, /*final_batch=*/true);
  EXPECT_TRUE(a.deferred.empty());
}

TEST(Scheduler, CarriedTasksAreRescheduled) {
  SchedulerWorld world(default_params());
  RuntimeScheduler sched(*world.layout, SchedulerParams{});
  const auto probes = world.probes(4);
  const Assignment first = sched.schedule(probes, {}, true);

  // Take a few tasks and carry them into an empty batch.
  std::vector<Task> carried;
  for (const auto& tasks : first.per_dpu) {
    for (const Task& t : tasks) {
      carried.push_back(t);
      if (carried.size() >= 5) break;
    }
    if (carried.size() >= 5) break;
  }
  std::vector<std::vector<std::uint32_t>> empty_probes(probes.size());
  const Assignment second = sched.schedule(empty_probes, carried, true);
  std::size_t scheduled = 0;
  for (const auto& tasks : second.per_dpu) scheduled += tasks.size();
  EXPECT_EQ(scheduled, carried.size());
}

TEST(Scheduler, DuplicationSpreadsContendedCluster) {
  // Observation 2 in its pure form: every query in the batch probes the SAME
  // cluster. Without replicas all tasks serialize on the cluster's one DPU;
  // with replicas the scheduler fans them out.
  LayoutParams no_dup = default_params();
  no_dup.enable_duplicate = false;
  no_dup.enable_split = false;
  LayoutParams with_dup = no_dup;
  with_dup.enable_duplicate = true;
  with_dup.dup_copies = 3;
  with_dup.dup_fraction = 1.0;  // duplicate everything so the target is covered

  SchedulerWorld a(no_dup), b(with_dup);

  // All 40 queries hit cluster 0 only.
  std::vector<std::vector<std::uint32_t>> probes(40, std::vector<std::uint32_t>{0});

  RuntimeScheduler sa(*a.layout, SchedulerParams{});
  RuntimeScheduler sb(*b.layout, SchedulerParams{});
  const auto pa = sa.schedule(probes, {}, true).predicted_load;
  const auto pb = sb.schedule(probes, {}, true).predicted_load;

  // Without duplication one DPU carries everything.
  std::size_t loaded_a = 0, loaded_b = 0;
  for (double l : pa) loaded_a += (l > 0.0);
  for (double l : pb) loaded_b += (l > 0.0);
  EXPECT_EQ(loaded_a, 1u);
  EXPECT_EQ(loaded_b, 4u);  // primary + 3 replicas
  EXPECT_LT(imbalance_factor(pb), imbalance_factor(pa));
}

}  // namespace
}  // namespace drim
