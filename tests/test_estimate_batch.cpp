// estimate_batch_seconds() accuracy: the Eq. 15 open-loop estimate assumes a
// perfectly balanced schedule with no staging conflicts, while measured batch
// times include layout skew, the inter-batch filter, and transfer chunking.
// The serving layer's admission controller only needs the estimate to land
// in the right order of magnitude before the EWMA takes over, so the test
// pins a ratio band rather than a tight error — across nprobe/k/batch-size
// and on both platforms.

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"

namespace drim {
namespace {

class EstimateBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 6000;
    spec.num_queries = 64;  // divisible by every swept batch size
    spec.num_learn = 2500;
    spec.num_components = 48;
    data_ = new SyntheticData(make_sift_like(spec));

    IvfPqParams p;
    p.nlist = 48;
    p.pq.m = 16;
    p.pq.cb_entries = 32;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete index_;
  }

  static inline SyntheticData* data_ = nullptr;
  static inline IvfPqIndex* index_ = nullptr;
};

struct Sweep {
  std::size_t nprobe;
  std::size_t k;
  std::size_t batch;
};

TEST_F(EstimateBatchTest, EstimateWithinBandOfMeasuredOnBothPlatforms) {
  const Sweep sweeps[] = {{4, 10, 16}, {8, 10, 32}, {8, 20, 16}, {16, 10, 64}};
  const PimPlatformKind platforms[] = {PimPlatformKind::kSim,
                                       PimPlatformKind::kAnalytic};
  for (PimPlatformKind platform : platforms) {
    for (const Sweep& s : sweeps) {
      SCOPED_TRACE(std::string(pim_platform_name(platform)) +
                   " nprobe=" + std::to_string(s.nprobe) +
                   " k=" + std::to_string(s.k) +
                   " batch=" + std::to_string(s.batch));
      DrimEngineOptions o;
      o.pim.num_dpus = 16;
      o.layout.split_threshold = 128;
      o.heat_nprobe = s.nprobe;
      o.batch_size = s.batch;
      o.platform = platform;
      DrimAnnEngine engine(*index_, data_->learn, o);

      DrimSearchStats stats;
      engine.search(data_->queries, s.k, s.nprobe, &stats);
      ASSERT_EQ(stats.batch_seconds.size(),
                data_->queries.count() / s.batch);  // nq divisible by batch
      const double measured = mean(stats.batch_seconds);
      ASSERT_GT(measured, 0.0);

      const double est = engine.estimate_batch_seconds(s.batch, s.nprobe, s.k);
      ASSERT_GT(est, 0.0);
      const double ratio = est / measured;
      // Band: the estimate ignores skew (under-predicts on imbalanced
      // layouts) and staging effects, but must stay within 4x either way
      // for the admission seed to be useful.
      EXPECT_GT(ratio, 0.25);
      EXPECT_LT(ratio, 4.0);
    }
  }
}

TEST_F(EstimateBatchTest, EstimateScalesWithBatchAndNprobe) {
  DrimEngineOptions o;
  o.pim.num_dpus = 16;
  o.layout.split_threshold = 128;
  o.heat_nprobe = 8;
  DrimAnnEngine engine(*index_, data_->learn, o);
  // More queries or more probes mean more tasks; the open-loop estimate must
  // be monotone in both.
  EXPECT_GT(engine.estimate_batch_seconds(64, 8, 10),
            engine.estimate_batch_seconds(16, 8, 10));
  EXPECT_GT(engine.estimate_batch_seconds(32, 16, 10),
            engine.estimate_batch_seconds(32, 4, 10));
  EXPECT_EQ(engine.estimate_batch_seconds(0, 8, 10), 0.0);
}

}  // namespace
}  // namespace drim
