// Tests for the CL-on-PIM placement alternative (Section III-B): result
// quality must match host-side CL while the modeled cost shows why DRIM-ANN
// keeps CL on the host.

#include <gtest/gtest.h>

#include "core/flat_search.hpp"
#include "data/recall.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"

namespace drim {
namespace {

class ClOnPimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 4000;
    spec.num_queries = 32;
    spec.num_learn = 1500;
    spec.num_components = 32;
    data_ = new SyntheticData(make_sift_like(spec));

    IvfPqParams p;
    p.nlist = 32;
    p.pq.m = 16;
    p.pq.cb_entries = 64;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);
    gt_ = new std::vector<std::vector<Neighbor>>(
        flat_search_all(data_->base, data_->queries, 10));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete index_;
    delete gt_;
  }

  static DrimEngineOptions options(bool cl_on_pim) {
    DrimEngineOptions o;
    o.pim.num_dpus = 8;
    o.heat_nprobe = 8;
    o.cl_on_pim = cl_on_pim;
    return o;
  }

  static SyntheticData* data_;
  static IvfPqIndex* index_;
  static std::vector<std::vector<Neighbor>>* gt_;
};

SyntheticData* ClOnPimTest::data_ = nullptr;
IvfPqIndex* ClOnPimTest::index_ = nullptr;
std::vector<std::vector<Neighbor>>* ClOnPimTest::gt_ = nullptr;

TEST_F(ClOnPimTest, RecallMatchesHostCl) {
  DrimAnnEngine host_cl(*index_, data_->learn, options(false));
  DrimAnnEngine pim_cl(*index_, data_->learn, options(true));
  const auto a = host_cl.search(data_->queries, 10, 8);
  const auto b = pim_cl.search(data_->queries, 10, 8);
  // PIM CL uses int16-quantized centroids; probe sets may differ at ties.
  EXPECT_NEAR(mean_recall_at_k(a, *gt_, 10), mean_recall_at_k(b, *gt_, 10), 0.05);
}

TEST_F(ClOnPimTest, ChargesClPhaseOnDpus) {
  DrimAnnEngine engine(*index_, data_->learn, options(true));
  DrimSearchStats st;
  engine.search(data_->queries, 10, 8, &st);
  EXPECT_GT(st.phase_dpu_seconds[static_cast<int>(Phase::CL)], 0.0);
  EXPECT_GT(st.counters.at(Phase::CL).instr_cycles, 0u);
  EXPECT_DOUBLE_EQ(st.host_cl_seconds, 0.0);
}

TEST_F(ClOnPimTest, HostClKeepsDpusFreeOfClWork) {
  DrimAnnEngine engine(*index_, data_->learn, options(false));
  DrimSearchStats st;
  engine.search(data_->queries, 10, 8, &st);
  EXPECT_DOUBLE_EQ(st.phase_dpu_seconds[static_cast<int>(Phase::CL)], 0.0);
  EXPECT_GT(st.host_cl_seconds, 0.0);
}

TEST_F(ClOnPimTest, PimClCostsAnExtraSerializedLaunch) {
  DrimSearchStats host_st, pim_st;
  DrimAnnEngine host_cl(*index_, data_->learn, options(false));
  DrimAnnEngine pim_cl(*index_, data_->learn, options(true));
  host_cl.search(data_->queries, 10, 8, &host_st);
  pim_cl.search(data_->queries, 10, 8, &pim_st);
  // The placement lesson: with CL on the PIM the end-to-end time cannot hide
  // the locate step behind the search launch.
  EXPECT_GT(pim_st.total_seconds, host_st.total_seconds);
}

TEST_F(ClOnPimTest, WorksAcrossBatches) {
  DrimEngineOptions o = options(true);
  o.batch_size = 8;
  DrimAnnEngine engine(*index_, data_->learn, o);
  DrimSearchStats st;
  const auto results = engine.search(data_->queries, 10, 8, &st);
  EXPECT_GE(st.batches, 4u);
  EXPECT_GT(mean_recall_at_k(results, *gt_, 10), 0.4);
}

}  // namespace
}  // namespace drim
