// Tests for recall metrics and the flat-search ground-truth oracle.

#include <gtest/gtest.h>

#include "core/flat_search.hpp"
#include "data/recall.hpp"
#include "data/synthetic.hpp"

namespace drim {
namespace {

std::vector<Neighbor> neighbors(std::initializer_list<std::uint32_t> ids) {
  std::vector<Neighbor> out;
  float d = 0.0f;
  for (std::uint32_t id : ids) out.push_back({d += 1.0f, id});
  return out;
}

TEST(Recall, PerfectMatch) {
  EXPECT_DOUBLE_EQ(recall_at_k(neighbors({1, 2, 3}), neighbors({1, 2, 3}), 3), 1.0);
}

TEST(Recall, OrderIrrelevantWithinK) {
  EXPECT_DOUBLE_EQ(recall_at_k(neighbors({3, 1, 2}), neighbors({1, 2, 3}), 3), 1.0);
}

TEST(Recall, PartialOverlap) {
  EXPECT_DOUBLE_EQ(recall_at_k(neighbors({1, 9, 8}), neighbors({1, 2, 3}), 3), 1.0 / 3.0);
}

TEST(Recall, RespectsKPrefix) {
  // Only the first k entries of each list count.
  EXPECT_DOUBLE_EQ(recall_at_k(neighbors({9, 1}), neighbors({1, 2}), 1), 0.0);
}

TEST(Recall, ShortResultList) {
  EXPECT_DOUBLE_EQ(recall_at_k(neighbors({1}), neighbors({1, 2, 3}), 3), 1.0 / 3.0);
}

TEST(Recall, MeanAcrossQueries) {
  std::vector<std::vector<Neighbor>> results = {neighbors({1, 2}), neighbors({9, 9})};
  std::vector<std::vector<Neighbor>> gt = {neighbors({1, 2}), neighbors({1, 2})};
  EXPECT_DOUBLE_EQ(mean_recall_at_k(results, gt, 2), 0.5);
}

TEST(FlatSearch, FindsExactNeighbors) {
  // Construct points at known distances from the query.
  ByteDataset base(4, 2);
  base.row(0)[0] = 10; base.row(0)[1] = 10;  // d^2 = 0
  base.row(1)[0] = 11; base.row(1)[1] = 10;  // d^2 = 1
  base.row(2)[0] = 20; base.row(2)[1] = 20;  // d^2 = 200
  base.row(3)[0] = 10; base.row(3)[1] = 12;  // d^2 = 4
  const float q[2] = {10.0f, 10.0f};
  const auto r = flat_search(base, q, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].id, 0u);
  EXPECT_EQ(r[1].id, 1u);
  EXPECT_EQ(r[2].id, 3u);
  EXPECT_FLOAT_EQ(r[0].dist, 0.0f);
  EXPECT_FLOAT_EQ(r[2].dist, 4.0f);
}

TEST(FlatSearch, BatchMatchesSingle) {
  SyntheticSpec spec;
  spec.num_base = 500;
  spec.num_queries = 10;
  spec.num_learn = 100;
  spec.num_components = 8;
  const SyntheticData data = make_sift_like(spec);
  const auto batch = flat_search_all(data.base, data.queries, 5);
  for (std::size_t q = 0; q < 10; ++q) {
    const auto single = flat_search(data.base, data.queries.row(q), 5);
    ASSERT_EQ(batch[q].size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batch[q][i].id, single[i].id);
    }
  }
}

TEST(FlatSearch, SelfQueryReturnsSelfFirst) {
  SyntheticSpec spec;
  spec.num_base = 300;
  spec.num_queries = 1;
  spec.num_learn = 100;
  spec.num_components = 4;
  const SyntheticData data = make_sift_like(spec);
  std::vector<float> q(data.base.dim());
  data.base.row_as_float(42, q);
  const auto r = flat_search(data.base, q, 1);
  EXPECT_FLOAT_EQ(r[0].dist, 0.0f);
}

}  // namespace
}  // namespace drim
