// Router correctness tests for the multi-shard cluster tier: the 1-shard
// cluster backend is a strict passthrough (bit-identical results AND modeled
// times to the plain backend on both platforms), multi-shard routing moves
// work without changing answers, hedged replica traffic dedups away, the
// merge is deterministic across host thread counts, and the factory rejects
// infeasible configurations with errors naming the constraint.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "backend/drim_backend.hpp"
#include "cluster/cluster_backend.hpp"
#include "common/parallel.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"

namespace drim::cluster {
namespace {

class ClusterRouterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 6000;
    spec.num_queries = 48;
    spec.num_learn = 2500;
    spec.num_components = 48;
    data_ = new SyntheticData(make_sift_like(spec));

    IvfPqParams p;
    p.nlist = 48;
    p.pq.m = 16;
    p.pq.cb_entries = 32;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete index_;
  }

  static DrimEngineOptions options(PimPlatformKind platform) {
    DrimEngineOptions o;
    o.pim.num_dpus = 8;  // per shard
    o.layout.split_threshold = 128;
    o.heat_nprobe = 8;
    o.batch_size = 16;
    o.platform = platform;
    return o;
  }

  static std::unique_ptr<AnnBackend> make_cluster(PimPlatformKind platform,
                                                  ClusterOptions copts) {
    return make_cluster_backend(BackendKind::kDrim, *index_, data_->learn,
                                options(platform), copts);
  }

  static void expect_identical(const std::vector<std::vector<Neighbor>>& a,
                               const std::vector<std::vector<Neighbor>>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
      ASSERT_EQ(a[q].size(), b[q].size()) << "query " << q;
      for (std::size_t i = 0; i < a[q].size(); ++i) {
        EXPECT_EQ(a[q][i].id, b[q][i].id) << "query " << q << " rank " << i;
        EXPECT_EQ(a[q][i].dist, b[q][i].dist) << "query " << q << " rank " << i;
      }
    }
  }

  static inline SyntheticData* data_ = nullptr;
  static inline IvfPqIndex* index_ = nullptr;
};

TEST_F(ClusterRouterTest, SingleShardIsBitIdenticalPassthroughOnBothPlatforms) {
  for (PimPlatformKind platform :
       {PimPlatformKind::kSim, PimPlatformKind::kAnalytic}) {
    SCOPED_TRACE(pim_platform_name(platform));
    DrimBackend plain(*index_, data_->learn, options(platform));
    ClusterOptions copts;
    copts.num_shards = 1;
    const auto cluster = make_cluster(platform, copts);

    expect_identical(cluster->search(data_->queries, 10, 8),
                     plain.search(data_->queries, 10, 8));

    // Not just the answers: every modeled time matches, step for step.
    const BackendStats cs = cluster->stats();
    const BackendStats ps = plain.stats();
    EXPECT_EQ(cs.total_seconds, ps.total_seconds);
    ASSERT_EQ(cs.batch_seconds.size(), ps.batch_seconds.size());
    for (std::size_t b = 0; b < cs.batch_seconds.size(); ++b) {
      EXPECT_EQ(cs.batch_seconds[b], ps.batch_seconds[b]) << "batch " << b;
    }
    EXPECT_EQ(cluster->pipeline_depth(), plain.pipeline_depth());
    EXPECT_TRUE(cluster->shard_health().empty());
  }
}

TEST_F(ClusterRouterTest, MultiShardResultsIdenticalOnBothPlatforms) {
  for (PimPlatformKind platform :
       {PimPlatformKind::kSim, PimPlatformKind::kAnalytic}) {
    SCOPED_TRACE(pim_platform_name(platform));
    DrimBackend plain(*index_, data_->learn, options(platform));
    const auto baseline = plain.search(data_->queries, 10, 8);
    for (std::size_t S : {std::size_t{2}, std::size_t{3}}) {
      SCOPED_TRACE("shards=" + std::to_string(S));
      ClusterOptions copts;
      copts.num_shards = S;
      copts.replication_fraction = 0.25;
      const auto cluster = make_cluster(platform, copts);
      // Sharding moves work across nodes, never changes answers.
      expect_identical(cluster->search(data_->queries, 10, 8), baseline);
    }
  }
}

TEST_F(ClusterRouterTest, HedgedReplicaTrafficDedupsToIdenticalResults) {
  DrimBackend plain(*index_, data_->learn, options(PimPlatformKind::kSim));
  ClusterOptions copts;
  copts.num_shards = 3;
  copts.replication_fraction = 0.5;  // plenty of replicated clusters
  copts.replica_copies = 2;
  copts.hedge_replicas = true;
  const auto cluster = make_cluster(PimPlatformKind::kSim, copts);

  // Sanity: the plan actually replicated something, so hedging produces
  // genuine duplicate hits for the merge to collapse.
  auto* cb = dynamic_cast<ClusterBackend*>(cluster.get());
  ASSERT_NE(cb, nullptr);
  bool any_replicated = false;
  for (std::uint32_t c = 0; c < cb->plan().nlist(); ++c) {
    any_replicated = any_replicated || cb->plan().replicated(c);
  }
  ASSERT_TRUE(any_replicated);

  expect_identical(cluster->search(data_->queries, 10, 8),
                   plain.search(data_->queries, 10, 8));
}

TEST_F(ClusterRouterTest, MergeIsDeterministicAcrossThreadCounts) {
  ClusterOptions copts;
  copts.num_shards = 3;
  copts.replication_fraction = 0.25;
  const int restore = num_threads();

  set_num_threads(1);
  const auto serial =
      make_cluster(PimPlatformKind::kSim, copts)->search(data_->queries, 10, 8);
  set_num_threads(4);
  const auto threaded =
      make_cluster(PimPlatformKind::kSim, copts)->search(data_->queries, 10, 8);
  set_num_threads(restore);

  expect_identical(serial, threaded);
}

TEST_F(ClusterRouterTest, StreamingStepApiMatchesSearch) {
  ClusterOptions copts;
  copts.num_shards = 2;
  copts.replication_fraction = 0.25;
  const auto cluster = make_cluster(PimPlatformKind::kSim, copts);
  const auto batch = cluster->search(data_->queries, 10, 8);

  cluster->reset_stream();
  std::vector<std::uint32_t> handles;
  for (std::size_t q = 0; q < data_->queries.count(); ++q) {
    handles.push_back(cluster->enqueue(data_->queries.row(q), 10, 8));
  }
  std::size_t stepped = 0;
  while (stepped < handles.size()) {
    cluster->step(7, /*flush=*/false);  // ragged steps vs search()'s chunks
    stepped += 7;
  }
  while (cluster->has_deferred()) cluster->step(0, /*flush=*/true);
  std::vector<std::vector<Neighbor>> streamed;
  for (std::uint32_t h : handles) {
    EXPECT_TRUE(cluster->finished(h));
    streamed.push_back(cluster->take_results(h));
  }
  expect_identical(streamed, batch);
}

TEST_F(ClusterRouterTest, ShardHealthIsPopulatedAfterSearch) {
  ClusterOptions copts;
  copts.num_shards = 2;
  copts.replication_fraction = 0.25;
  const auto cluster = make_cluster(PimPlatformKind::kSim, copts);
  cluster->search(data_->queries, 10, 8);

  const std::vector<ShardHealth> health = cluster->shard_health();
  ASSERT_EQ(health.size(), 2u);
  std::size_t total_tasks = 0;
  for (std::uint32_t s = 0; s < health.size(); ++s) {
    EXPECT_EQ(health[s].shard, s);
    EXPECT_FALSE(health[s].draining);
    EXPECT_GT(health[s].dispatched_queries, 0u) << "shard " << s;
    EXPECT_GT(health[s].busy_seconds, 0.0) << "shard " << s;
    EXPECT_EQ(health[s].fallback_tasks, 0u) << "shard " << s;
    total_tasks += health[s].dispatched_tasks;
  }
  // Every probed cluster was dispatched somewhere.
  EXPECT_GE(total_tasks, data_->queries.count() * 8);
}

TEST_F(ClusterRouterTest, FactoryRejectsCpuBackendWithMultipleShards) {
  ClusterOptions copts;
  copts.num_shards = 2;
  try {
    make_cluster_backend(BackendKind::kCpu, *index_, data_->learn,
                         options(PimPlatformKind::kSim), copts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cpu baseline"), std::string::npos)
        << e.what();
  }
}

TEST_F(ClusterRouterTest, FactoryRejectsClOnPimWithMultipleShards) {
  DrimEngineOptions o = options(PimPlatformKind::kSim);
  o.cl_on_pim = true;
  ClusterOptions copts;
  copts.num_shards = 2;
  EXPECT_THROW(
      make_cluster_backend(BackendKind::kDrim, *index_, data_->learn, o, copts),
      std::invalid_argument);
}

TEST_F(ClusterRouterTest, FactoryErrorNamesMaxFeasibleShardCount) {
  ClusterOptions copts;
  copts.num_shards = 49;  // nlist is 48
  try {
    make_cluster(PimPlatformKind::kSim, copts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("maximum feasible shard count"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("48"), std::string::npos) << e.what();
  }
}

TEST_F(ClusterRouterTest, DrainingTheOnlyShardOfAPassthroughThrows) {
  ClusterOptions copts;
  copts.num_shards = 1;
  const auto cluster = make_cluster(PimPlatformKind::kSim, copts);
  auto* cb = dynamic_cast<ClusterBackend*>(cluster.get());
  ASSERT_NE(cb, nullptr);
  EXPECT_THROW(cb->set_shard_drained(0, true), std::logic_error);
}

}  // namespace
}  // namespace drim::cluster
