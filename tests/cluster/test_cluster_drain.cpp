// Degradation tests for the cluster tier's drain path: a draining shard
// accepts no new dispatches but finishes carried work, clusters with no live
// owner degrade to the host-side exact fallback with answers unchanged, the
// drain is visible in shard health and serving metrics, and no query is ever
// dropped.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "backend/drim_backend.hpp"
#include "cluster/cluster_backend.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"
#include "serve/runtime.hpp"

namespace drim::cluster {
namespace {

class ClusterDrainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 6000;
    spec.num_queries = 48;
    spec.num_learn = 2500;
    spec.num_components = 48;
    data_ = new SyntheticData(make_sift_like(spec));

    IvfPqParams p;
    p.nlist = 48;
    p.pq.m = 16;
    p.pq.cb_entries = 32;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete index_;
  }

  static DrimEngineOptions options() {
    DrimEngineOptions o;
    o.pim.num_dpus = 8;  // per shard
    o.layout.split_threshold = 128;
    o.heat_nprobe = 8;
    o.batch_size = 16;
    o.platform = PimPlatformKind::kSim;
    return o;
  }

  /// A 2-shard cluster backend, returned as the concrete type so tests can
  /// reach the drain control plane.
  static std::unique_ptr<ClusterBackend> make_two_shards(double replication,
                                                         std::size_t copies = 1) {
    ClusterOptions copts;
    copts.num_shards = 2;
    copts.replication_fraction = replication;
    copts.replica_copies = copies;
    auto backend = make_cluster_backend(BackendKind::kDrim, *index_, data_->learn,
                                        options(), copts);
    auto* cb = dynamic_cast<ClusterBackend*>(backend.release());
    return std::unique_ptr<ClusterBackend>(cb);
  }

  static void expect_identical(const std::vector<std::vector<Neighbor>>& a,
                               const std::vector<std::vector<Neighbor>>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
      ASSERT_EQ(a[q].size(), b[q].size()) << "query " << q;
      for (std::size_t i = 0; i < a[q].size(); ++i) {
        EXPECT_EQ(a[q][i].id, b[q][i].id) << "query " << q << " rank " << i;
        EXPECT_EQ(a[q][i].dist, b[q][i].dist) << "query " << q << " rank " << i;
      }
    }
  }

  static inline SyntheticData* data_ = nullptr;
  static inline IvfPqIndex* index_ = nullptr;
};

TEST_F(ClusterDrainTest, DrainMidStreamDropsNothingAndKeepsAnswers) {
  DrimBackend plain(*index_, data_->learn, options());
  const auto baseline = plain.search(data_->queries, 10, 8);

  const auto cluster = make_two_shards(/*replication=*/0.25);
  cluster->reset_stream();
  std::vector<std::uint32_t> handles;
  for (std::size_t q = 0; q < data_->queries.count(); ++q) {
    handles.push_back(cluster->enqueue(data_->queries.row(q), 10, 8));
  }

  // First half of the stream dispatches normally; then shard 1 drains
  // mid-stream, and the rest must route around it (surviving owners for
  // replicated clusters, the host-exact fallback for shard 1's exclusive
  // ones). Drained shards still step so carried work completes.
  const std::size_t half = handles.size() / 2;
  cluster->step(half, /*flush=*/false);
  cluster->set_shard_drained(1, true);
  cluster->step(0, /*flush=*/false);
  while (cluster->has_deferred()) cluster->step(0, /*flush=*/true);

  // Zero dropped queries: every handle finishes with a full result list...
  std::vector<std::vector<Neighbor>> results;
  for (std::uint32_t h : handles) {
    ASSERT_TRUE(cluster->finished(h));
    results.push_back(cluster->take_results(h));
    EXPECT_EQ(results.back().size(), 10u);
  }
  // ...and the answers match the undrained single-backend run exactly — the
  // fallback runs the same ADC arithmetic as the shard kernels.
  expect_identical(results, baseline);

  // The degradation is visible: shard 1 reports draining, and with only 25%
  // of clusters replicated its exclusive clusters went through the fallback.
  const std::vector<ShardHealth> health = cluster->shard_health();
  ASSERT_EQ(health.size(), 2u);
  EXPECT_FALSE(health[0].draining);
  EXPECT_TRUE(health[1].draining);
  EXPECT_GT(health[1].fallback_tasks, 0u);
  EXPECT_GT(health[0].dispatched_queries, 0u);
}

TEST_F(ClusterDrainTest, FullyReplicatedIndexSurvivesDrainWithoutFallback) {
  DrimBackend plain(*index_, data_->learn, options());
  const auto baseline = plain.search(data_->queries, 10, 8);

  // replication 1.0 with one extra copy on 2 shards: every cluster owned by
  // both, so draining one shard leaves a live owner for everything.
  const auto cluster = make_two_shards(/*replication=*/1.0);
  cluster->set_shard_drained(0, true);
  expect_identical(cluster->search(data_->queries, 10, 8), baseline);

  const std::vector<ShardHealth> health = cluster->shard_health();
  ASSERT_EQ(health.size(), 2u);
  EXPECT_TRUE(health[0].draining);
  EXPECT_EQ(health[0].dispatched_queries, 0u);  // drained: no new dispatches
  EXPECT_EQ(health[0].fallback_tasks, 0u);      // replica took the traffic
  EXPECT_EQ(health[1].fallback_tasks, 0u);
  EXPECT_GT(health[1].dispatched_queries, 0u);
}

TEST_F(ClusterDrainTest, DrainFlagsSurviveResetAndUndrainRestoresDispatch) {
  const auto cluster = make_two_shards(/*replication=*/0.25);
  cluster->set_shard_drained(1, true);

  // Drain flags model node state: they survive the stream reset search()
  // performs, so this whole search routes around shard 1.
  cluster->search(data_->queries, 10, 8);
  auto health = cluster->shard_health();
  EXPECT_TRUE(cluster->shard_drained(1));
  EXPECT_TRUE(health[1].draining);
  EXPECT_EQ(health[1].dispatched_queries, 0u);

  // Undrain: the next search dispatches to both shards again, no fallbacks.
  cluster->set_shard_drained(1, false);
  cluster->search(data_->queries, 10, 8);
  health = cluster->shard_health();
  EXPECT_FALSE(health[1].draining);
  EXPECT_GT(health[1].dispatched_queries, 0u);
  EXPECT_EQ(health[0].fallback_tasks, 0u);
  EXPECT_EQ(health[1].fallback_tasks, 0u);
}

TEST_F(ClusterDrainTest, DrainRejectsOutOfRangeShard) {
  const auto cluster = make_two_shards(/*replication=*/0.25);
  EXPECT_THROW(cluster->set_shard_drained(2, true), std::invalid_argument);
}

TEST_F(ClusterDrainTest, ServingRuntimeSnapshotsExposeDrainedShardHealth) {
  const auto cluster = make_two_shards(/*replication=*/0.25);
  cluster->set_shard_drained(1, true);

  serve::ServeParams sp;
  sp.admission.enabled = false;  // nothing shed: every request must complete
  sp.snapshot_period_s = 1e-4;
  serve::ServingRuntime runtime(*cluster, data_->queries, sp);

  serve::WorkloadParams wp;
  wp.num_requests = 96;
  wp.offered_qps = 5000.0;
  wp.k_choices = {10};
  wp.nprobe_choices = {8};
  const auto trace = serve::generate_workload(data_->queries.count(), wp);
  const serve::ServeResult result = runtime.run(trace);

  // Zero dropped queries end to end: everything offered was served with a
  // full result list, drained shard notwithstanding.
  EXPECT_EQ(result.report.offered, trace.size());
  EXPECT_EQ(result.report.served, trace.size());
  EXPECT_EQ(result.report.shed, 0u);
  for (const serve::RequestRecord& r : result.records) {
    EXPECT_FALSE(r.shed);
    EXPECT_EQ(r.results, 10u);
  }

  // Snapshots carry the per-shard rows, with the drain visible on shard 1.
  ASSERT_FALSE(result.snapshots.empty());
  for (const serve::MetricsSnapshot& snap : result.snapshots) {
    ASSERT_EQ(snap.shards.size(), 2u);
    EXPECT_EQ(snap.shards[0].shard, 0u);
    EXPECT_FALSE(snap.shards[0].draining);
    EXPECT_TRUE(snap.shards[1].draining);
  }
  const serve::MetricsSnapshot& last = result.snapshots.back();
  EXPECT_GT(last.shards[0].dispatched_queries, 0u);
  EXPECT_GT(last.shards[1].fallback_tasks, 0u);
}

}  // namespace
}  // namespace drim::cluster
