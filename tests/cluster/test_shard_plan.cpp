// ShardPlan unit tests: constructor validation (errors name the max feasible
// shard count, matching the batch-size-validation style), coverage (every
// cluster owned, every shard non-empty), replication (hot clusters get extra
// owners, never two replicas on one shard), and determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "cluster/shard_plan.hpp"

namespace drim::cluster {
namespace {

std::vector<std::size_t> uniform_sizes(std::size_t nlist, std::size_t size) {
  return std::vector<std::size_t>(nlist, size);
}

std::vector<double> smooth_heat(std::vector<double> heat) {
  for (double& h : heat) h += 0.5;  // estimate_heat's Laplace smoothing
  return heat;
}

TEST(ShardPlan, RejectsZeroShards) {
  ShardPlanParams p;
  p.num_shards = 0;
  EXPECT_THROW(ShardPlan(uniform_sizes(8, 100), smooth_heat(std::vector<double>(8, 0.0)), p),
               std::invalid_argument);
}

TEST(ShardPlan, TooManyShardsErrorNamesMaxFeasibleCount) {
  ShardPlanParams p;
  p.num_shards = 9;
  try {
    ShardPlan plan(uniform_sizes(8, 100), smooth_heat(std::vector<double>(8, 0.0)), p);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error must name the max feasible shard count for this nlist.
    EXPECT_NE(std::string(e.what()).find("maximum feasible shard count"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("8"), std::string::npos) << e.what();
  }
}

TEST(ShardPlan, RejectsBadReplicationFraction) {
  ShardPlanParams p;
  p.num_shards = 2;
  p.replication_fraction = 1.5;
  EXPECT_THROW(ShardPlan(uniform_sizes(8, 100), smooth_heat(std::vector<double>(8, 0.0)), p),
               std::invalid_argument);
  p.replication_fraction = -0.1;
  EXPECT_THROW(ShardPlan(uniform_sizes(8, 100), smooth_heat(std::vector<double>(8, 0.0)), p),
               std::invalid_argument);
}

TEST(ShardPlan, RejectsHeatSizeMismatch) {
  ShardPlanParams p;
  p.num_shards = 2;
  EXPECT_THROW(ShardPlan(uniform_sizes(8, 100), smooth_heat(std::vector<double>(7, 0.0)), p),
               std::invalid_argument);
}

TEST(ShardPlan, EveryClusterOwnedEveryShardNonEmpty) {
  ShardPlanParams p;
  p.num_shards = 4;
  p.replication_fraction = 0.0;
  const std::size_t nlist = 16;
  std::vector<double> heat(nlist, 0.0);
  for (std::size_t c = 0; c < nlist; ++c) heat[c] = static_cast<double>(c);
  ShardPlan plan(uniform_sizes(nlist, 200), smooth_heat(heat), p);

  std::size_t covered = 0;
  for (std::uint32_t c = 0; c < nlist; ++c) {
    ASSERT_EQ(plan.owners(c).size(), 1u) << "cluster " << c;
    ++covered;
  }
  EXPECT_EQ(covered, nlist);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_FALSE(plan.shard_clusters(s).empty()) << "shard " << s;
    // owned_mask agrees with shard_clusters.
    const auto mask = plan.owned_mask(s);
    std::size_t set = 0;
    for (std::uint32_t c = 0; c < nlist; ++c) {
      if (mask[c]) {
        ++set;
        EXPECT_TRUE(std::binary_search(plan.shard_clusters(s).begin(),
                                       plan.shard_clusters(s).end(), c));
      }
    }
    EXPECT_EQ(set, plan.shard_clusters(s).size());
  }
}

TEST(ShardPlan, HotClustersReplicatedAcrossDistinctShards) {
  ShardPlanParams p;
  p.num_shards = 4;
  p.replication_fraction = 0.25;  // hottest 4 of 16
  p.replica_copies = 2;
  const std::size_t nlist = 16;
  std::vector<double> heat(nlist, 0.0);
  // Clusters 12..15 are the hottest by a wide margin.
  for (std::size_t c = 12; c < nlist; ++c) heat[c] = 100.0 + static_cast<double>(c);
  ShardPlan plan(uniform_sizes(nlist, 200), smooth_heat(heat), p);

  std::size_t replicated = 0;
  for (std::uint32_t c = 0; c < nlist; ++c) {
    const auto& owners = plan.owners(c);
    // Owners are distinct shards (sorted + unique).
    for (std::size_t i = 1; i < owners.size(); ++i) {
      EXPECT_LT(owners[i - 1], owners[i]);
    }
    if (c >= 12) {
      EXPECT_EQ(owners.size(), 3u) << "hot cluster " << c;  // 1 + 2 copies
      EXPECT_TRUE(plan.replicated(c));
      ++replicated;
    } else {
      EXPECT_EQ(owners.size(), 1u) << "cold cluster " << c;
    }
  }
  EXPECT_EQ(replicated, 4u);
}

TEST(ShardPlan, ReplicaCopiesClampedToShardCount) {
  ShardPlanParams p;
  p.num_shards = 2;
  p.replication_fraction = 0.5;
  p.replica_copies = 7;  // clamped to num_shards - 1 = 1
  ShardPlan plan(uniform_sizes(8, 100), smooth_heat(std::vector<double>(8, 1.0)), p);
  for (std::uint32_t c = 0; c < 8; ++c) {
    EXPECT_LE(plan.owners(c).size(), 2u) << "cluster " << c;
  }
}

TEST(ShardPlan, DeterministicAcrossRuns) {
  ShardPlanParams p;
  p.num_shards = 3;
  p.replication_fraction = 0.2;
  const std::size_t nlist = 24;
  std::vector<double> heat(nlist);
  for (std::size_t c = 0; c < nlist; ++c) {
    heat[c] = static_cast<double>((c * 37) % 11);
  }
  std::vector<std::size_t> sizes(nlist);
  for (std::size_t c = 0; c < nlist; ++c) sizes[c] = 50 + (c * 101) % 400;

  ShardPlan a(sizes, smooth_heat(heat), p);
  ShardPlan b(sizes, smooth_heat(heat), p);
  for (std::uint32_t c = 0; c < nlist; ++c) {
    EXPECT_EQ(a.owners(c), b.owners(c)) << "cluster " << c;
  }
  EXPECT_EQ(a.planned_load(), b.planned_load());
}

TEST(ShardPlan, BalancesLoadBetterThanWorstCase) {
  // With heavily skewed heat, the greedy allocator should keep the max
  // shard load well below "everything hot on one shard".
  ShardPlanParams p;
  p.num_shards = 4;
  p.replication_fraction = 0.0;
  const std::size_t nlist = 32;
  std::vector<double> heat(nlist, 0.1);
  heat[0] = heat[1] = heat[2] = heat[3] = 50.0;  // four hot clusters
  ShardPlan plan(uniform_sizes(nlist, 100), smooth_heat(heat), p);
  // Each hot cluster should land on its own shard.
  std::vector<std::uint32_t> hot_shards;
  for (std::uint32_t c = 0; c < 4; ++c) hot_shards.push_back(plan.owners(c)[0]);
  std::sort(hot_shards.begin(), hot_shards.end());
  EXPECT_EQ(std::unique(hot_shards.begin(), hot_shards.end()), hot_shards.end());
}

}  // namespace
}  // namespace drim::cluster
