// Cluster-tier failure recovery and snapshot propagation tests: a drained
// shard's exclusive clusters are re-replicated onto live survivors (closing
// the host-exact fallback path — its counters return to zero), nothing in
// flight is dropped across the rebuild, and a writer-published snapshot
// staged on the router reaches every shard with answers identical to an
// unsharded backend on the same version.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "backend/drim_backend.hpp"
#include "cluster/cluster_backend.hpp"
#include "core/mutable_index.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"

namespace drim::cluster {
namespace {

class ClusterRecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 6000;
    spec.num_queries = 48;
    spec.num_learn = 2500;
    spec.num_components = 48;
    data_ = new SyntheticData(make_sift_like(spec));
    base_float_ = new FloatMatrix(data_->base.to_float());

    IvfPqParams p;
    p.nlist = 48;
    p.pq.m = 16;
    p.pq.cb_entries = 32;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete base_float_;
    delete index_;
  }

  static DrimEngineOptions options() {
    DrimEngineOptions o;
    o.pim.num_dpus = 8;  // per shard
    o.layout.split_threshold = 128;
    o.heat_nprobe = 8;
    o.batch_size = 16;
    o.platform = PimPlatformKind::kSim;
    return o;
  }

  static std::unique_ptr<ClusterBackend> make_shards(std::size_t n,
                                                     double replication = 0.25) {
    ClusterOptions copts;
    copts.num_shards = n;
    copts.replication_fraction = replication;
    auto backend = make_cluster_backend(BackendKind::kDrim, *index_, data_->learn,
                                        options(), copts);
    auto* cb = dynamic_cast<ClusterBackend*>(backend.release());
    return std::unique_ptr<ClusterBackend>(cb);
  }

  static void expect_identical(const std::vector<std::vector<Neighbor>>& a,
                               const std::vector<std::vector<Neighbor>>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
      ASSERT_EQ(a[q].size(), b[q].size()) << "query " << q;
      for (std::size_t i = 0; i < a[q].size(); ++i) {
        EXPECT_EQ(a[q][i].id, b[q][i].id) << "query " << q << " rank " << i;
        EXPECT_EQ(a[q][i].dist, b[q][i].dist) << "query " << q << " rank " << i;
      }
    }
  }

  static inline SyntheticData* data_ = nullptr;
  static inline FloatMatrix* base_float_ = nullptr;
  static inline IvfPqIndex* index_ = nullptr;
};

TEST_F(ClusterRecoveryTest, RecoveryRehomesClustersAndClosesTheFallbackPath) {
  DrimBackend plain(*index_, data_->learn, options());
  const auto baseline = plain.search(data_->queries, 10, 8);

  const auto cluster = make_shards(2);
  cluster->set_shard_drained(1, true);

  // Degraded: shard 1's exclusive clusters go through the host-exact
  // fallback (answers still correct).
  expect_identical(cluster->search(data_->queries, 10, 8), baseline);
  auto health = cluster->shard_health();
  ASSERT_EQ(health.size(), 2u);
  EXPECT_GT(health[1].fallback_tasks, 0u);

  // Recover: every orphaned cluster is re-homed onto the survivor, the
  // survivor is rebuilt with the wider mask, and the fallback counters are
  // zeroed — the degraded path is closed.
  const auto report = cluster->recover_shard(1);
  EXPECT_GT(report.clusters_rehomed, 0u);
  EXPECT_EQ(report.rebuilt_shards, 1u);
  EXPECT_GT(report.moved_bytes, 0u);
  EXPECT_GT(report.seconds, 0.0);
  health = cluster->shard_health();
  EXPECT_EQ(health[0].fallback_tasks, 0u);
  EXPECT_EQ(health[1].fallback_tasks, 0u);

  // Post-recovery: answers unchanged and NO new fallbacks — everything has
  // a live owner again even though shard 1 stays drained.
  expect_identical(cluster->search(data_->queries, 10, 8), baseline);
  health = cluster->shard_health();
  EXPECT_EQ(health[0].fallback_tasks, 0u);
  EXPECT_EQ(health[1].fallback_tasks, 0u);
  EXPECT_GT(health[0].dispatched_queries, 0u);
  EXPECT_TRUE(health[1].draining);
}

TEST_F(ClusterRecoveryTest, RecoveryMidStreamDropsNothing) {
  DrimBackend plain(*index_, data_->learn, options());
  const auto baseline = plain.search(data_->queries, 10, 8);

  const auto cluster = make_shards(3);
  cluster->reset_stream();
  std::vector<std::uint32_t> handles;
  for (std::size_t q = 0; q < data_->queries.count(); ++q) {
    handles.push_back(cluster->enqueue(data_->queries.row(q), 10, 8));
  }
  // Half the stream runs, then shard 2 fails (drain) and is recovered while
  // the rest is still queued; the recovery flushes in-flight work and
  // stashes finished partials before the survivor rebuild.
  cluster->step(handles.size() / 2, /*flush=*/false);
  cluster->set_shard_drained(2, true);
  const auto report = cluster->recover_shard(2);
  EXPECT_GE(report.clusters_rehomed, 1u);
  while (!std::all_of(handles.begin(), handles.end(),
                      [&](std::uint32_t h) { return cluster->finished(h); })) {
    cluster->step(0, /*flush=*/true);
  }

  std::vector<std::vector<Neighbor>> results;
  for (std::uint32_t h : handles) results.push_back(cluster->take_results(h));
  expect_identical(results, baseline);
  for (const ShardHealth& h : cluster->shard_health()) {
    EXPECT_EQ(h.fallback_tasks, 0u);
  }
}

TEST_F(ClusterRecoveryTest, RecoveryValidatesItsPreconditions) {
  const auto single = make_shards(1);
  EXPECT_THROW(single->recover_shard(0), std::logic_error);

  const auto cluster = make_shards(2);
  EXPECT_THROW(cluster->recover_shard(5), std::invalid_argument);
  EXPECT_THROW(cluster->recover_shard(1), std::logic_error)
      << "recovery requires the shard to be drained first";
  cluster->set_shard_drained(0, true);
  cluster->set_shard_drained(1, true);
  EXPECT_THROW(cluster->recover_shard(1), std::logic_error)
      << "no live survivor to recover onto";
}

TEST_F(ClusterRecoveryTest, StagedSnapshotReachesEveryShard) {
  const auto cluster = make_shards(2);
  ASSERT_TRUE(cluster->supports_updates());
  EXPECT_EQ(cluster->snapshot_version(), 0u);

  // Mutate: tombstone current top hits (so surfacing would be caught) and
  // insert duplicates of a few query payloads.
  const auto before = cluster->search(data_->queries, 10, 8);
  IndexWriter writer(*index_);
  std::unordered_set<std::uint32_t> erased;
  for (std::size_t q = 0; q < 8; ++q) erased.insert(before[q][0].id);
  for (const std::uint32_t id : erased) ASSERT_TRUE(writer.erase(id));
  std::vector<std::uint32_t> inserted;
  for (std::size_t q = 0; q < 4; ++q) {
    inserted.push_back(writer.insert(data_->queries.row(q)));
  }

  PublishDelta delta;
  const IndexSnapshot snap = writer.publish(&delta);
  const double cost = cluster->stage_snapshot(snap, delta);
  EXPECT_GT(cost, 0.0);
  EXPECT_EQ(cluster->snapshot_version(), 1u);

  // The routed cluster on the new version answers exactly like an unsharded
  // backend on the same snapshot; tombstones never surface.
  DrimBackend plain(snap, data_->learn, options());
  const auto routed = cluster->search(data_->queries, 10, 8);
  expect_identical(routed, plain.search(data_->queries, 10, 8));
  for (const auto& per_query : routed) {
    for (const Neighbor& n : per_query) EXPECT_EQ(erased.count(n.id), 0u);
  }
  const auto full = cluster->search(data_->queries, 10, index_->params().nlist);
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_TRUE(std::any_of(full[q].begin(), full[q].end(), [&](const Neighbor& n) {
      return n.id == inserted[q];
    })) << "inserted duplicate of query " << q << " not visible after staging";
  }
}

TEST_F(ClusterRecoveryTest, StagedSplitExtendsThePlanAndKeepsAnswers) {
  const auto cluster = make_shards(2);

  WriterParams wp;
  wp.split_threshold = 200;  // base lists average 125; appends trip it
  IndexWriter writer(*index_, wp);
  for (std::size_t i = 0; i < 1200 && writer.nlist() == index_->params().nlist;
       ++i) {
    writer.insert(base_float_->row(i % base_float_->count()));
  }
  ASSERT_GT(writer.nlist(), index_->params().nlist) << "no split triggered";

  PublishDelta delta;
  const IndexSnapshot snap = writer.publish(&delta);
  ASSERT_FALSE(delta.splits.empty());
  cluster->stage_snapshot(snap, delta);

  // The plan grew to cover the split children and the routed answers match
  // an unsharded backend on the same snapshot — including probes into the
  // new clusters (full probe depth).
  DrimBackend plain(snap, data_->learn, options());
  expect_identical(cluster->search(data_->queries, 10, 8),
                   plain.search(data_->queries, 10, 8));
  expect_identical(cluster->search(data_->queries, 10, writer.nlist()),
                   plain.search(data_->queries, 10, writer.nlist()));
}

TEST_F(ClusterRecoveryTest, RecoveryAfterStagingServesTheLatestVersion) {
  const auto cluster = make_shards(2, /*replication=*/0.1);

  IndexWriter writer(*index_);
  for (std::uint32_t id = 0; id < 200; id += 7) writer.erase(id);
  PublishDelta delta;
  const IndexSnapshot snap = writer.publish(&delta);
  cluster->stage_snapshot(snap, delta);

  // Fail shard 0 after the publish: the survivors must be rebuilt from the
  // CURRENT snapshot, not the construction-time index, so the tombstones
  // stay in force on the re-homed clusters.
  cluster->set_shard_drained(0, true);
  const auto report = cluster->recover_shard(0);
  EXPECT_GT(report.clusters_rehomed, 0u);

  DrimBackend plain(snap, data_->learn, options());
  const auto results = cluster->search(data_->queries, 10, 8);
  expect_identical(results, plain.search(data_->queries, 10, 8));
  for (const auto& per_query : results) {
    for (const Neighbor& n : per_query) EXPECT_TRUE(writer.alive(n.id));
  }
  for (const ShardHealth& h : cluster->shard_health()) {
    EXPECT_EQ(h.fallback_tasks, 0u);
  }
}

}  // namespace
}  // namespace drim::cluster
