// Combined-scenario test: IndexWriter publishes landing on a cluster whose
// shard engines run pipelined (pipeline_depth >= 2) while one shard is
// drained. The three mechanisms compose without weakening each other's
// contracts: every search is served in full (no query dropped), every update
// op is consumed, publishes install between batches, and the final published
// state answers bit-identically to a cold offline rebuild of the same
// logical index — through the drained cluster's fallback path included.

#include <gtest/gtest.h>

#include <memory>

#include "backend/drim_backend.hpp"
#include "cluster/cluster_backend.hpp"
#include "core/mutable_index.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"
#include "serve/runtime.hpp"
#include "serve/update_workload.hpp"

namespace drim::cluster {
namespace {

class DrainPublishPipelinedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 6000;
    spec.num_queries = 48;
    spec.num_learn = 2500;
    spec.num_components = 48;
    data_ = new SyntheticData(make_sift_like(spec));

    IvfPqParams p;
    p.nlist = 48;
    p.pq.m = 16;
    p.pq.cb_entries = 32;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete index_;
  }

  /// Shard engines pipelined: the cluster event loop stays serial (its
  /// pipeline_depth() is 1 for >1 shards), but each shard's engine runs
  /// double-buffered steps internally, which is what the publish must
  /// quiesce through stage_snapshot's flush_all().
  static DrimEngineOptions options() {
    DrimEngineOptions o;
    o.pim.num_dpus = 8;  // per shard
    o.layout.split_threshold = 128;
    o.heat_nprobe = 8;
    o.batch_size = 16;
    o.pipeline_depth = 2;
    o.platform = PimPlatformKind::kSim;
    return o;
  }

  static std::unique_ptr<ClusterBackend> make_two_shards() {
    ClusterOptions copts;
    copts.num_shards = 2;
    copts.replication_fraction = 0.25;
    auto backend = make_cluster_backend(BackendKind::kDrim, *index_,
                                        data_->learn, options(), copts);
    auto* cb = dynamic_cast<ClusterBackend*>(backend.release());
    return std::unique_ptr<ClusterBackend>(cb);
  }

  static void expect_identical(const std::vector<std::vector<Neighbor>>& a,
                               const std::vector<std::vector<Neighbor>>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
      ASSERT_EQ(a[q].size(), b[q].size()) << "query " << q;
      for (std::size_t i = 0; i < a[q].size(); ++i) {
        EXPECT_EQ(a[q][i].id, b[q][i].id) << "query " << q << " rank " << i;
        EXPECT_EQ(a[q][i].dist, b[q][i].dist) << "query " << q << " rank " << i;
      }
    }
  }

  static inline SyntheticData* data_ = nullptr;
  static inline IvfPqIndex* index_ = nullptr;
};

TEST_F(DrainPublishPipelinedTest, PublishUnderDrainServesEverythingAndMatchesColdRebuild) {
  ASSERT_GE(options().pipeline_depth, 2u);
  const auto cluster = make_two_shards();
  ASSERT_TRUE(cluster->supports_updates());
  cluster->set_shard_drained(1, true);

  serve::ServeParams sp;
  sp.admission.enabled = false;  // nothing shed: every request must complete
  sp.batcher.max_batch = 16;
  sp.flush_every = 2;
  serve::ServingRuntime runtime(*cluster, data_->queries, sp);

  serve::WorkloadParams wp;
  wp.num_requests = 128;
  wp.offered_qps = 2000.0;
  wp.k_choices = {10};
  wp.nprobe_choices = {8};
  const auto searches = serve::generate_workload(data_->queries.count(), wp);

  const FloatMatrix pool = data_->base.to_float();
  serve::UpdateWorkloadParams up;
  up.update_rate = 0.15;
  up.insert_fraction = 0.5;
  up.delete_skew = 0.8;
  const auto trace =
      serve::generate_update_trace(searches, pool, index_->ntotal(), up);
  ASSERT_FALSE(trace.ops.empty());

  IndexWriter writer(*index_);
  serve::UpdateStream updates;
  updates.trace = &trace;
  updates.writer = &writer;
  updates.publish_every_batches = 2;
  runtime.set_update_stream(&updates);
  const serve::ServeResult res = runtime.run(searches);

  // No query dropped: everything offered was served with a full result list,
  // drained shard and mid-stream publishes notwithstanding.
  EXPECT_EQ(res.report.offered, searches.size());
  EXPECT_EQ(res.report.served, searches.size());
  EXPECT_EQ(res.report.shed, 0u);
  for (const serve::RequestRecord& r : res.records) {
    EXPECT_FALSE(r.shed);
    EXPECT_EQ(r.results, 10u);
  }

  // Every op consumed; publishes actually landed on the drained cluster and
  // were billed onto the timeline.
  EXPECT_EQ(updates.applied, trace.ops.size());
  EXPECT_GE(updates.publishes, 1u);
  EXPECT_GT(updates.publish_seconds, 0.0);
  EXPECT_EQ(cluster->snapshot_version(), writer.version());

  // The drain stayed in effect through every publish: shard 1 reports
  // draining and its exclusive clusters went through the fallback, while
  // shard 0 kept dispatching.
  const std::vector<ShardHealth> health = cluster->shard_health();
  ASSERT_EQ(health.size(), 2u);
  EXPECT_FALSE(health[0].draining);
  EXPECT_TRUE(health[1].draining);
  EXPECT_GT(health[0].dispatched_queries, 0u);
  EXPECT_EQ(health[1].dispatched_queries, 0u);

  // Fold post-last-publish stragglers in, then pin the acceptance contract:
  // the drained, pipelined, repeatedly-published cluster answers exactly as
  // a cold offline rebuild of the same logical state.
  PublishDelta delta;
  const IndexSnapshot snap = writer.publish(&delta);
  cluster->stage_snapshot(snap, delta);
  EXPECT_EQ(cluster->snapshot_version(), writer.version());
  const IvfPqIndex cold = writer.compacted_index();
  DrimBackend rebuilt(cold, data_->learn, options());
  expect_identical(cluster->search(data_->queries, 10, 8),
                   rebuilt.search(data_->queries, 10, 8));
}

}  // namespace
}  // namespace drim::cluster
