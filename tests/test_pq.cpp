// Tests for the product quantizer: encode/decode identity, ADC/SDC
// semantics, code widths, and accuracy monotonicity properties.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/distances.hpp"
#include "core/pq.hpp"

namespace drim {
namespace {

FloatMatrix random_points(std::size_t n, std::size_t dim, Rng& rng, float lo = -20,
                          float hi = 20) {
  FloatMatrix m(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& x : m.row(i)) x = rng.uniform(lo, hi);
  }
  return m;
}

ProductQuantizer train_pq(const FloatMatrix& pts, std::size_t m, std::size_t cb) {
  PQParams p;
  p.m = m;
  p.cb_entries = cb;
  p.train_iters = 8;
  ProductQuantizer pq;
  pq.train(pts, p);
  return pq;
}

TEST(PQ, GeometryAccessors) {
  Rng rng(1);
  const FloatMatrix pts = random_points(300, 32, rng);
  const ProductQuantizer pq = train_pq(pts, 8, 16);
  EXPECT_EQ(pq.dim(), 32u);
  EXPECT_EQ(pq.m(), 8u);
  EXPECT_EQ(pq.dsub(), 4u);
  EXPECT_EQ(pq.cb_entries(), 16u);
  EXPECT_EQ(pq.code_size(), 8u);
  EXPECT_FALSE(pq.wide_codes());
}

TEST(PQ, WideCodesWhenCbExceeds256) {
  Rng rng(2);
  const FloatMatrix pts = random_points(600, 16, rng);
  const ProductQuantizer pq = train_pq(pts, 4, 300);
  EXPECT_TRUE(pq.wide_codes());
  EXPECT_EQ(pq.code_size(), 8u);  // 4 subs * 2 bytes
}

TEST(PQ, EncodePicksNearestCodeword) {
  Rng rng(3);
  const FloatMatrix pts = random_points(400, 16, rng);
  const ProductQuantizer pq = train_pq(pts, 4, 32);
  std::vector<std::uint8_t> code(pq.code_size());
  for (std::size_t i = 0; i < 20; ++i) {
    pq.encode(pts.row(i), code);
    for (std::size_t sub = 0; sub < pq.m(); ++sub) {
      const auto sv = pts.row(i).subspan(sub * pq.dsub(), pq.dsub());
      const std::uint32_t chosen = pq.code_at(code, sub);
      const float chosen_d = l2_sq(sv, pq.codeword(sub, chosen));
      for (std::size_t e = 0; e < pq.cb_entries(); ++e) {
        EXPECT_LE(chosen_d, l2_sq(sv, pq.codeword(sub, e)) + 1e-4f);
      }
    }
  }
}

TEST(PQ, DecodeIsSelectedCodewords) {
  Rng rng(4);
  const FloatMatrix pts = random_points(300, 8, rng);
  const ProductQuantizer pq = train_pq(pts, 2, 16);
  std::vector<std::uint8_t> code(pq.code_size());
  std::vector<float> recon(8);
  pq.encode(pts.row(0), code);
  pq.decode(code, recon);
  for (std::size_t sub = 0; sub < 2; ++sub) {
    const auto cw = pq.codeword(sub, pq.code_at(code, sub));
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_FLOAT_EQ(recon[sub * 4 + d], cw[d]);
    }
  }
}

TEST(PQ, AdcEqualsDistanceToReconstruction) {
  // The defining ADC identity: adc(q, code) == ||q - decode(code)||^2.
  Rng rng(5);
  const FloatMatrix pts = random_points(500, 32, rng);
  const ProductQuantizer pq = train_pq(pts, 8, 32);
  std::vector<float> lut(pq.m() * pq.cb_entries());
  std::vector<std::uint8_t> code(pq.code_size());
  std::vector<float> recon(32);

  for (int trial = 0; trial < 10; ++trial) {
    const FloatMatrix q = random_points(1, 32, rng);
    pq.compute_adc_lut(q.row(0), lut);
    pq.encode(pts.row(static_cast<std::size_t>(trial)), code);
    pq.decode(code, recon);
    const float adc = pq.adc_distance(lut, code);
    const float direct = l2_sq(q.row(0), std::span<const float>(recon));
    EXPECT_NEAR(adc, direct, 1e-2f * std::max(1.0f, direct));
  }
}

TEST(PQ, SdcEqualsDistanceBetweenReconstructions) {
  Rng rng(6);
  const FloatMatrix pts = random_points(400, 16, rng);
  const ProductQuantizer pq = train_pq(pts, 4, 16);
  std::vector<std::uint8_t> ca(pq.code_size()), cb(pq.code_size());
  std::vector<float> ra(16), rb(16);
  pq.encode(pts.row(0), ca);
  pq.encode(pts.row(1), cb);
  pq.decode(ca, ra);
  pq.decode(cb, rb);
  EXPECT_NEAR(pq.sdc_distance(ca, cb),
              l2_sq(std::span<const float>(ra), std::span<const float>(rb)), 1e-2f);
}

TEST(PQ, ReconstructionErrorDropsWithMoreCodewords) {
  Rng rng(7);
  const FloatMatrix pts = random_points(1000, 16, rng);
  const double mse_small = train_pq(pts, 4, 8).reconstruction_error(pts);
  const double mse_large = train_pq(pts, 4, 64).reconstruction_error(pts);
  EXPECT_LT(mse_large, mse_small);
}

TEST(PQ, ReconstructionErrorDropsWithMoreSubquantizers) {
  Rng rng(8);
  const FloatMatrix pts = random_points(1000, 16, rng);
  const double mse_coarse = train_pq(pts, 2, 16).reconstruction_error(pts);
  const double mse_fine = train_pq(pts, 8, 16).reconstruction_error(pts);
  EXPECT_LT(mse_fine, mse_coarse);
}

TEST(PQ, WideCodeRoundTrip) {
  Rng rng(9);
  const FloatMatrix pts = random_points(800, 8, rng);
  const ProductQuantizer pq = train_pq(pts, 2, 400);
  std::vector<std::uint8_t> code(pq.code_size());
  pq.encode(pts.row(5), code);
  for (std::size_t sub = 0; sub < 2; ++sub) {
    EXPECT_LT(pq.code_at(code, sub), 400u);
  }
  std::vector<float> recon(8);
  pq.decode(code, recon);  // must not crash; values come from codebooks
  const double before = l2_sq(pts.row(5), std::span<const float>(recon));
  EXPECT_GE(before, 0.0);
}

// Property sweep: ADC LUT row sums must match brute-force subspace distances.
class PqLutProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PqLutProperty, LutEntriesAreSubspaceDistances) {
  const auto [m, cb] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 100 + cb));
  const std::size_t dim = 16;
  const FloatMatrix pts = random_points(600, dim, rng);
  const ProductQuantizer pq = train_pq(pts, static_cast<std::size_t>(m),
                                       static_cast<std::size_t>(cb));
  const FloatMatrix q = random_points(1, dim, rng);
  std::vector<float> lut(pq.m() * pq.cb_entries());
  pq.compute_adc_lut(q.row(0), lut);
  for (std::size_t sub = 0; sub < pq.m(); ++sub) {
    const auto sv = q.row(0).subspan(sub * pq.dsub(), pq.dsub());
    for (std::size_t e = 0; e < pq.cb_entries(); ++e) {
      EXPECT_FLOAT_EQ(lut[sub * pq.cb_entries() + e], l2_sq(sv, pq.codeword(sub, e)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PqLutProperty,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(8, 32)));

}  // namespace
}  // namespace drim
