# CTest driver for the drim CLI: exercises the full gen -> build -> info ->
# gt -> search pipeline and asserts a sane recall is reported.

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_step)
  execute_process(COMMAND ${ARGV}
                  WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(STEP_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

# Expect the command to FAIL with exit code 2 and an error message matching
# `pattern` (the parse-time numeric-knob validation contract).
function(run_step_expect_usage_error pattern)
  execute_process(COMMAND ${ARGN}
                  WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "expected exit 2, got ${rc}: ${ARGN}\n${out}\n${err}")
  endif()
  if(NOT err MATCHES "${pattern}")
    message(FATAL_ERROR "error output missing '${pattern}': ${err}")
  endif()
endfunction()

run_step(${DRIM_BIN} gen --out-base base.bvecs --out-queries q.fvecs
         --out-learn learn.fvecs --n 6000 --queries 40 --components 16)
run_step(${DRIM_BIN} build --base base.bvecs --learn learn.fvecs
         --out test.idx --nlist 32 --m 16 --cb 64)
run_step(${DRIM_BIN} info --index test.idx)
if(NOT STEP_OUTPUT MATCHES "nlist      : 32")
  message(FATAL_ERROR "info output missing nlist: ${STEP_OUTPUT}")
endif()

run_step(${DRIM_BIN} gt --base base.bvecs --queries q.fvecs --out gt.ivecs --k 10)

# CPU search with ground truth.
run_step(${DRIM_BIN} search --index test.idx --queries q.fvecs
         --k 10 --nprobe 8 --gt gt.ivecs)
string(REGEX MATCH "recall@10 = ([0-9.]+)" _ "${STEP_OUTPUT}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 LESS 0.4)
  message(FATAL_ERROR "CPU recall too low or missing: ${STEP_OUTPUT}")
endif()

# Simulated-PIM search with re-ranking (legacy --pim alias for --backend drim).
run_step(${DRIM_BIN} search --index test.idx --queries q.fvecs --base base.bvecs
         --k 10 --nprobe 8 --gt gt.ivecs --pim --dpus 8 --rerank 50)
string(REGEX MATCH "recall@10 = ([0-9.]+)" _ "${STEP_OUTPUT}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 LESS 0.5)
  message(FATAL_ERROR "PIM+rerank recall too low or missing: ${STEP_OUTPUT}")
endif()
set(pim_recall ${CMAKE_MATCH_1})

# Analytic platform must report the same recall as the simulator.
run_step(${DRIM_BIN} search --index test.idx --queries q.fvecs --base base.bvecs
         --k 10 --nprobe 8 --gt gt.ivecs --backend drim --platform analytic
         --dpus 8 --rerank 50)
string(REGEX MATCH "recall@10 = ([0-9.]+)" _ "${STEP_OUTPUT}")
if(NOT CMAKE_MATCH_1 STREQUAL pim_recall)
  message(FATAL_ERROR "analytic recall ${CMAKE_MATCH_1} != sim recall ${pim_recall}")
endif()

# Serve smoke on both backends.
run_step(${DRIM_BIN} serve --index test.idx --queries q.fvecs --qps 500
         --requests 64 --dpus 8 --platform analytic)
if(NOT STEP_OUTPUT MATCHES "backend drim-analytic")
  message(FATAL_ERROR "serve did not report the analytic backend: ${STEP_OUTPUT}")
endif()
run_step(${DRIM_BIN} serve --index test.idx --queries q.fvecs --qps 500
         --requests 64 --backend cpu)
if(NOT STEP_OUTPUT MATCHES "backend cpu")
  message(FATAL_ERROR "serve did not report the cpu backend: ${STEP_OUTPUT}")
endif()

# Numeric-knob validation: 0/negative/garbage values must fail at parse time
# (exit 2) with an error naming the flag and the legal range, not deep inside
# the engine.
run_step_expect_usage_error("invalid --pipeline-depth value '0'.*\\[1, 64\\]"
    ${DRIM_BIN} search --index test.idx --queries q.fvecs --backend drim
    --dpus 8 --pipeline-depth 0)
run_step_expect_usage_error("invalid --shards value '-2'"
    ${DRIM_BIN} serve --index test.idx --queries q.fvecs --requests 8
    --dpus 8 --shards -2)
run_step_expect_usage_error("invalid --batch-size value 'lots'"
    ${DRIM_BIN} search --index test.idx --queries q.fvecs --backend drim
    --dpus 8 --batch-size lots)
run_step_expect_usage_error("invalid --shard-replication value '1.5'.*\\[0, 1\\]"
    ${DRIM_BIN} serve --index test.idx --queries q.fvecs --requests 8
    --dpus 8 --shards 2 --shard-replication 1.5)

# --trace must emit a Chrome-trace JSON that actually parses and carries the
# documented schema (displayTimeUnit, traceEvents with ph/pid/tid/ts).
# string(JSON) needs CMake >= 3.19; older CMakes still check the file exists
# and is non-trivial.
function(check_chrome_trace path)
  if(NOT EXISTS ${WORK_DIR}/${path})
    message(FATAL_ERROR "--trace did not write ${path}")
  endif()
  file(READ ${WORK_DIR}/${path} trace_json)
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    string(JSON unit ERROR_VARIABLE json_err GET "${trace_json}" displayTimeUnit)
    if(json_err)
      message(FATAL_ERROR "${path} is not valid JSON: ${json_err}")
    endif()
    if(NOT unit STREQUAL "ms")
      message(FATAL_ERROR "${path} displayTimeUnit is '${unit}', want 'ms'")
    endif()
    string(JSON n_events ERROR_VARIABLE json_err LENGTH "${trace_json}" traceEvents)
    if(json_err OR n_events LESS 2)
      message(FATAL_ERROR "${path} traceEvents missing or empty: ${json_err}")
    endif()
    # Every event carries the Chrome-trace required keys; spot-check the
    # first (a metadata record, no timestamp) and last (a timed event).
    math(EXPR last "${n_events} - 1")
    foreach(idx 0 ${last})
      string(JSON ph ERROR_VARIABLE json_err GET "${trace_json}" traceEvents ${idx} ph)
      if(json_err)
        message(FATAL_ERROR "${path} event ${idx} missing 'ph': ${json_err}")
      endif()
      set(keys pid tid)
      if(NOT ph STREQUAL "M")
        list(APPEND keys ts)
      endif()
      foreach(key ${keys})
        string(JSON v ERROR_VARIABLE json_err GET "${trace_json}" traceEvents ${idx} ${key})
        if(json_err)
          message(FATAL_ERROR "${path} event ${idx} missing '${key}': ${json_err}")
        endif()
      endforeach()
    endforeach()
  elseif(NOT trace_json MATCHES "traceEvents")
    message(FATAL_ERROR "${path} does not look like a Chrome trace")
  endif()
endfunction()

run_step(${DRIM_BIN} search --index test.idx --queries q.fvecs
         --k 10 --nprobe 8 --backend drim --dpus 8 --trace search_trace.json)
if(NOT STEP_OUTPUT MATCHES "wrote [0-9]+ trace events")
  message(FATAL_ERROR "search --trace did not report events: ${STEP_OUTPUT}")
endif()
check_chrome_trace(search_trace.json)

run_step(${DRIM_BIN} serve --index test.idx --queries q.fvecs --qps 500
         --requests 64 --dpus 8 --platform analytic
         --trace serve_trace.json --metrics serve_metrics.csv)
check_chrome_trace(serve_trace.json)
if(NOT EXISTS ${WORK_DIR}/serve_metrics.csv)
  message(FATAL_ERROR "--metrics did not write serve_metrics.csv")
endif()
file(READ ${WORK_DIR}/serve_metrics.csv metrics_csv)
if(NOT metrics_csv MATCHES "t_s,queue_depth,inflight,deferred_tasks")
  message(FATAL_ERROR "metrics CSV missing header: ${metrics_csv}")
endif()

message(STATUS "cli smoke ok")
