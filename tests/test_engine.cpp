// End-to-end tests for the DRIM-ANN engine on the simulated UPMEM platform:
// result correctness against the host reference, recall parity, the
// multiplier-less toggle, load-balance timing effects, and compute scaling.

#include <gtest/gtest.h>

#include <numeric>

#include "common/stats.hpp"
#include "core/flat_search.hpp"
#include "data/recall.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"

namespace drim {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 6000;
    spec.num_queries = 60;
    spec.num_learn = 2500;
    spec.num_components = 48;
    data_ = new SyntheticData(make_sift_like(spec));

    IvfPqParams p;
    p.nlist = 48;
    p.pq.m = 16;
    p.pq.cb_entries = 32;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);

    gt_ = new std::vector<std::vector<Neighbor>>(
        flat_search_all(data_->base, data_->queries, 10));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete index_;
    delete gt_;
  }

  static DrimEngineOptions default_options(std::size_t dpus = 16) {
    DrimEngineOptions o;
    o.pim.num_dpus = dpus;
    o.layout.split_threshold = 128;
    o.heat_nprobe = 8;
    return o;
  }

  static SyntheticData* data_;
  static IvfPqIndex* index_;
  static std::vector<std::vector<Neighbor>>* gt_;
};

SyntheticData* EngineTest::data_ = nullptr;
IvfPqIndex* EngineTest::index_ = nullptr;
std::vector<std::vector<Neighbor>>* EngineTest::gt_ = nullptr;

TEST_F(EngineTest, RecallMatchesHostReference) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  const auto drim = engine.search(data_->queries, 10, 8);

  std::vector<std::vector<Neighbor>> host;
  for (std::size_t q = 0; q < data_->queries.count(); ++q) {
    host.push_back(index_->search(data_->queries.row(q), 10, 8));
  }
  const double drim_recall = mean_recall_at_k(drim, *gt_, 10);
  const double host_recall = mean_recall_at_k(host, *gt_, 10);
  // Quantized PIM domain may differ slightly from the float host path.
  EXPECT_NEAR(drim_recall, host_recall, 0.03);
}

TEST_F(EngineTest, ResultIdsLargelyAgreeWithHost) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  const auto drim = engine.search(data_->queries, 10, 8);
  std::size_t agree = 0, total = 0;
  for (std::size_t q = 0; q < data_->queries.count(); ++q) {
    const auto host = index_->search(data_->queries.row(q), 10, 8);
    for (const Neighbor& h : host) {
      ++total;
      for (const Neighbor& d : drim[q]) {
        if (d.id == h.id) {
          ++agree;
          break;
        }
      }
    }
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.9);
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  DrimAnnEngine e1(*index_, data_->learn, default_options());
  DrimAnnEngine e2(*index_, data_->learn, default_options());
  const auto r1 = e1.search(data_->queries, 10, 8);
  const auto r2 = e2.search(data_->queries, 10, 8);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t q = 0; q < r1.size(); ++q) {
    ASSERT_EQ(r1[q].size(), r2[q].size());
    for (std::size_t i = 0; i < r1[q].size(); ++i) {
      EXPECT_EQ(r1[q][i].id, r2[q][i].id);
    }
  }
}

TEST_F(EngineTest, SquareLutToggleKeepsResultsIdentical) {
  // The conversion is lossless: distances must be bit-identical, only the
  // modeled time changes.
  DrimEngineOptions with_lut = default_options();
  DrimEngineOptions without_lut = default_options();
  without_lut.use_square_lut = false;

  DrimAnnEngine e1(*index_, data_->learn, with_lut);
  DrimAnnEngine e2(*index_, data_->learn, without_lut);
  DrimSearchStats s1, s2;
  const auto r1 = e1.search(data_->queries, 10, 8, &s1);
  const auto r2 = e2.search(data_->queries, 10, 8, &s2);

  for (std::size_t q = 0; q < r1.size(); ++q) {
    ASSERT_EQ(r1[q].size(), r2[q].size());
    for (std::size_t i = 0; i < r1[q].size(); ++i) {
      EXPECT_EQ(r1[q][i].id, r2[q][i].id);
      EXPECT_EQ(r1[q][i].dist, r2[q][i].dist);
    }
  }
  // Multiplier-less conversion must speed up the (compute-bound) kernels.
  EXPECT_LT(s1.dpu_busy_seconds, s2.dpu_busy_seconds);
  // No multiplies in LC with the LUT on (all operands covered by the table).
  EXPECT_EQ(s1.counters.at(Phase::LC).mul_count, 0u);
  EXPECT_GT(s2.counters.at(Phase::LC).mul_count, 0u);
}

TEST_F(EngineTest, LoadBalancingReducesBatchTime) {
  DrimEngineOptions balanced = default_options();
  DrimEngineOptions trivial = default_options();
  trivial.layout.enable_split = false;
  trivial.layout.enable_duplicate = false;
  trivial.layout.heat_allocation = false;
  trivial.scheduler.enable_filter = false;

  DrimAnnEngine e_bal(*index_, data_->learn, balanced);
  DrimAnnEngine e_tri(*index_, data_->learn, trivial);
  DrimSearchStats s_bal, s_tri;
  e_bal.search(data_->queries, 10, 8, &s_bal);
  e_tri.search(data_->queries, 10, 8, &s_tri);

  EXPECT_LT(s_bal.dpu_busy_seconds, s_tri.dpu_busy_seconds);
  EXPECT_LT(imbalance_factor(s_bal.per_dpu_seconds),
            imbalance_factor(s_tri.per_dpu_seconds));
}

TEST_F(EngineTest, ComputeScaleSpeedsUpComputeBoundSearch) {
  DrimEngineOptions base = default_options();
  DrimEngineOptions fast = default_options();
  fast.pim.compute_scale = 5.0;

  DrimAnnEngine e1(*index_, data_->learn, base);
  DrimAnnEngine e2(*index_, data_->learn, fast);
  DrimSearchStats s1, s2;
  e1.search(data_->queries, 10, 8, &s1);
  e2.search(data_->queries, 10, 8, &s2);
  EXPECT_LT(s2.dpu_busy_seconds, s1.dpu_busy_seconds);
}

TEST_F(EngineTest, StatsAreInternallyConsistent) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  DrimSearchStats st;
  engine.search(data_->queries, 10, 8, &st);

  EXPECT_EQ(st.queries, data_->queries.count());
  EXPECT_GE(st.batches, 1u);
  EXPECT_GT(st.tasks, 0u);
  EXPECT_GT(st.total_seconds, 0.0);
  EXPECT_GE(st.total_seconds, st.dpu_busy_seconds);
  EXPECT_GT(st.energy_joules, 0.0);
  // Phase seconds should be dominated by LC + DC (the paper's finding).
  const double lc = st.phase_dpu_seconds[static_cast<int>(Phase::LC)];
  const double dc = st.phase_dpu_seconds[static_cast<int>(Phase::DC)];
  const double rc = st.phase_dpu_seconds[static_cast<int>(Phase::RC)];
  EXPECT_GT(lc + dc, rc);
  // Max per-DPU time equals the busy time for a single batch.
  if (st.batches == 1) {
    EXPECT_NEAR(*std::max_element(st.per_dpu_seconds.begin(), st.per_dpu_seconds.end()),
                st.dpu_busy_seconds, 1e-12);
  }
}

TEST_F(EngineTest, MultiBatchProcessesAllQueries) {
  DrimEngineOptions o = default_options();
  o.batch_size = 16;  // forces several batches + filter carry-over
  DrimAnnEngine engine(*index_, data_->learn, o);
  DrimSearchStats st;
  const auto results = engine.search(data_->queries, 10, 8, &st);
  EXPECT_GE(st.batches, 4u);
  const double recall = mean_recall_at_k(results, *gt_, 10);

  DrimAnnEngine single(*index_, data_->learn, default_options());
  const auto single_results = single.search(data_->queries, 10, 8);
  EXPECT_NEAR(recall, mean_recall_at_k(single_results, *gt_, 10), 1e-9)
      << "batching must not change results";
}

TEST_F(EngineTest, WorksWithOpqVariantIndex) {
  IvfPqParams p;
  p.nlist = 32;
  p.pq.m = 16;
  p.pq.cb_entries = 32;
  p.variant = PQVariant::kOPQ;
  p.opq_iters = 3;
  IvfPqIndex opq_index;
  opq_index.train(data_->learn, p);
  opq_index.add(data_->base);

  DrimAnnEngine engine(opq_index, data_->learn, default_options());
  const auto results = engine.search(data_->queries, 10, 8);

  std::vector<std::vector<Neighbor>> host;
  for (std::size_t q = 0; q < data_->queries.count(); ++q) {
    host.push_back(opq_index.search(data_->queries.row(q), 10, 8));
  }
  EXPECT_NEAR(mean_recall_at_k(results, *gt_, 10), mean_recall_at_k(host, *gt_, 10),
              0.05);
}

TEST_F(EngineTest, TransferTimeAccounted) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  DrimSearchStats st;
  engine.search(data_->queries, 10, 8, &st);
  EXPECT_GT(st.transfer_in_seconds, 0.0);   // queries staged per batch
  EXPECT_GT(st.transfer_out_seconds, 0.0);  // hits pulled per task
}

}  // namespace
}  // namespace drim
