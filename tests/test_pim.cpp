// Tests for the UPMEM simulator substrate: MRAM allocation/access, DMA cost
// accounting, the pipeline/DMA overlap timing model, host-link transfer
// billing, and barrier-batch semantics.

#include <gtest/gtest.h>

#include "pim/dpu.hpp"
#include "pim/energy_model.hpp"
#include "pim/pim_system.hpp"

namespace drim {
namespace {

PimConfig small_config(std::size_t dpus = 4) {
  PimConfig cfg;
  cfg.num_dpus = dpus;
  cfg.mram_bytes = 1 << 20;  // 1 MB keeps tests light
  return cfg;
}

TEST(Mram, AllocAlignsTo8) {
  Mram m(1024);
  EXPECT_EQ(m.alloc(3), 0u);
  EXPECT_EQ(m.alloc(5), 8u);
  EXPECT_EQ(m.used(), 16u);
}

TEST(Mram, AllocThrowsWhenExhausted) {
  Mram m(64);
  m.alloc(60);
  EXPECT_THROW(m.alloc(16), std::runtime_error);
}

TEST(Mram, WriteReadRoundTrip) {
  Mram m(1024);
  const std::uint8_t src[4] = {1, 2, 3, 4};
  m.write(100, src);
  std::uint8_t dst[4] = {};
  m.read(100, dst);
  EXPECT_EQ(dst[0], 1);
  EXPECT_EQ(dst[3], 4);
}

TEST(Mram, UntouchedReadsAsZero) {
  Mram m(1 << 20);
  std::uint8_t dst[8] = {9, 9, 9, 9, 9, 9, 9, 9};
  m.read((1 << 20) - 8, dst);  // never written, backing never grown
  for (std::uint8_t b : dst) EXPECT_EQ(b, 0);
}

TEST(Mram, OutOfRangeThrows) {
  Mram m(64);
  std::uint8_t buf[16] = {};
  EXPECT_THROW(m.write(60, buf), std::runtime_error);
  EXPECT_THROW(m.read(60, {buf, 16}), std::runtime_error);
}

TEST(PimConfig, EffectiveIpcSaturatesAtPipelineDepth) {
  PimConfig cfg;
  cfg.pipeline_depth = 11;
  cfg.tasklets = 11;
  EXPECT_DOUBLE_EQ(cfg.effective_ipc(), 1.0);
  cfg.tasklets = 22;
  EXPECT_DOUBLE_EQ(cfg.effective_ipc(), 1.0);
  cfg.tasklets = 1;
  EXPECT_NEAR(cfg.effective_ipc(), 1.0 / 11.0, 1e-12);
}

TEST(PimConfig, MramStreamBandwidthNearMeasured) {
  // The DMA model should land near the published ~630 MB/s achievable rate.
  const PimConfig cfg;
  EXPECT_NEAR(cfg.mram_stream_bandwidth(), 633e6, 30e6);
}

TEST(DpuContext, ChargesInstructionCosts) {
  const PimConfig cfg = small_config();
  Dpu dpu(cfg);
  DpuContext ctx = dpu.context();
  ctx.set_phase(Phase::LC);
  ctx.charge_adds(10);
  ctx.charge_muls(2);
  ctx.charge_lut_lookups(5);
  const PhaseCounters& c = dpu.counters().at(Phase::LC);
  EXPECT_EQ(c.instr_cycles, 10u * 1 + 2u * 32 + 5u * 2);
  EXPECT_EQ(c.mul_count, 2u);
}

TEST(DpuContext, DmaCostAffineInSize) {
  const PimConfig cfg = small_config();
  Dpu dpu(cfg);
  DpuContext ctx = dpu.context();
  ctx.set_phase(Phase::DC);
  std::vector<std::uint8_t> buf(1000);
  ctx.mram_read(0, buf);
  const PhaseCounters& c = dpu.counters().at(Phase::DC);
  EXPECT_DOUBLE_EQ(c.dma_cycles, cfg.dma_fixed_cycles + 1000 * cfg.dma_cycles_per_byte);
  EXPECT_EQ(c.mram_bytes_read, 1000u);
}

TEST(Dpu, ExecutionTimeIsMaxOfComputeAndDma) {
  const PimConfig cfg = small_config();
  Dpu dpu(cfg);
  {
    DpuContext ctx = dpu.context();
    ctx.set_phase(Phase::DC);
    ctx.charge_adds(450);  // 450 compute cycles
  }
  const double compute_only = dpu.execution_seconds();
  EXPECT_NEAR(compute_only, 450.0 / cfg.effective_ipc() / 450e6, 1e-12);

  {
    DpuContext ctx = dpu.context();
    ctx.set_phase(Phase::DC);
    std::vector<std::uint8_t> big(2048);
    for (int i = 0; i < 1000; ++i) ctx.mram_read(0, big);  // DMA-dominated
  }
  const double with_dma = dpu.execution_seconds();
  EXPECT_GT(with_dma, compute_only * 100);
}

TEST(Dpu, ComputeScaleAcceleratesInstructionStreamOnly) {
  PimConfig fast = small_config();
  fast.compute_scale = 2.0;
  PimConfig base = small_config();

  Dpu d1(base), d2(fast);
  for (Dpu* d : {&d1, &d2}) {
    DpuContext ctx = d->context();
    ctx.set_phase(Phase::LC);
    ctx.charge_muls(1000);  // compute-bound
  }
  EXPECT_NEAR(d1.execution_seconds() / d2.execution_seconds(), 2.0, 1e-9);

  Dpu d3(base), d4(fast);
  for (Dpu* d : {&d3, &d4}) {
    DpuContext ctx = d->context();
    ctx.set_phase(Phase::DC);
    std::vector<std::uint8_t> buf(2048);
    for (int i = 0; i < 100; ++i) ctx.mram_read(0, buf);  // DMA-bound
  }
  EXPECT_NEAR(d3.execution_seconds() / d4.execution_seconds(), 1.0, 1e-9);
}

TEST(WramBudget, ThrowsWhenExceeded) {
  const PimConfig cfg;
  EXPECT_NO_THROW(check_wram_budget(cfg, 64 << 10));
  EXPECT_THROW(check_wram_budget(cfg, (64 << 10) + 1), std::runtime_error);
}

TEST(PimSystem, SymmetricAllocStaysAligned) {
  PimSystem sys(small_config(4));
  const std::size_t a = sys.alloc_symmetric(100);
  const std::size_t b = sys.alloc_symmetric(100);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 104u);
}

TEST(PimSystem, BroadcastReachesAllDpus) {
  PimSystem sys(small_config(4));
  const std::size_t off = sys.alloc_symmetric(4);
  const std::uint8_t payload[4] = {7, 8, 9, 10};
  sys.broadcast(off, payload);
  for (std::size_t d = 0; d < 4; ++d) {
    std::uint8_t got[4] = {};
    sys.pull(d, off, got);
    EXPECT_EQ(got[2], 9);
  }
}

TEST(PimSystem, BatchTimeIsSlowestDpu) {
  PimSystem sys(small_config(3));
  const BatchResult r = sys.run_batch([](std::size_t d, DpuContext& ctx) {
    ctx.set_phase(Phase::DC);
    ctx.charge_adds((d + 1) * 1000);  // DPU 2 is slowest
  });
  EXPECT_DOUBLE_EQ(r.dpu_seconds, r.per_dpu_seconds[2]);
  EXPECT_GT(r.per_dpu_seconds[2], r.per_dpu_seconds[0]);
}

TEST(PimSystem, TransferBytesBilledAtHostLink) {
  PimConfig cfg = small_config(2);
  cfg.host_link_bytes_per_sec = 1000.0;  // 1 KB/s for easy math
  PimSystem sys(cfg);
  const std::size_t off = sys.alloc_symmetric(512);
  std::vector<std::uint8_t> data(500);
  sys.push(0, off, data);
  const BatchResult r = sys.run_batch([](std::size_t, DpuContext&) {});
  EXPECT_NEAR(r.transfer_in_seconds, 0.5, 1e-9);

  // Second batch has nothing pending.
  const BatchResult r2 = sys.run_batch([](std::size_t, DpuContext&) {});
  EXPECT_DOUBLE_EQ(r2.transfer_in_seconds, 0.0);
}

TEST(PimSystem, CollectBillsTransferOut) {
  PimConfig cfg = small_config(2);
  cfg.host_link_bytes_per_sec = 1000.0;
  PimSystem sys(cfg);
  sys.alloc_symmetric(256);
  std::vector<std::uint8_t> out(250);
  const BatchResult r = sys.run_batch([](std::size_t, DpuContext&) {},
                                      [&]() { sys.pull(0, 0, out); });
  EXPECT_NEAR(r.transfer_out_seconds, 0.25, 1e-9);
}

TEST(PimSystem, CountersResetBetweenBatches) {
  PimSystem sys(small_config(1));
  sys.run_batch([](std::size_t, DpuContext& ctx) {
    ctx.set_phase(Phase::LC);
    ctx.charge_adds(100);
  });
  sys.run_batch([](std::size_t, DpuContext& ctx) {
    ctx.set_phase(Phase::LC);
    ctx.charge_adds(1);
  });
  EXPECT_EQ(sys.dpu(0).counters().at(Phase::LC).instr_cycles, 1u);
}

TEST(EnergyModel, DimmCountRoundsUp) {
  EnergyModel e;
  PimConfig cfg;
  cfg.num_dpus = 129;
  cfg.dpus_per_dimm = 128;
  EXPECT_EQ(e.dimms(cfg), 2u);
}

TEST(EnergyModel, EnergyScalesWithTime) {
  EnergyModel e;
  const PimConfig cfg;  // 64 DPUs -> 1 DIMM
  EXPECT_NEAR(e.pim_energy_joules(cfg, 2.0), 2.0 * (13.92 + 100.0), 1e-9);
  EXPECT_NEAR(e.cpu_energy_joules(2.0), 250.0, 1e-9);
}

}  // namespace
}  // namespace drim
