// Workload generator tests: arrival-process statistics, determinism, and
// per-request parameter draws.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "serve/workload.hpp"

namespace drim::serve {
namespace {

WorkloadParams base_params() {
  WorkloadParams p;
  p.offered_qps = 1000.0;
  p.num_requests = 4096;
  return p;
}

TEST(Workload, PoissonMeanRateMatchesOffered) {
  const auto trace = generate_workload(64, base_params());
  ASSERT_EQ(trace.size(), 4096u);
  const double span = trace.back().arrival_s - trace.front().arrival_s;
  const double rate = static_cast<double>(trace.size() - 1) / span;
  // 4096 exponential gaps: the empirical rate is within a few percent w.h.p.
  EXPECT_NEAR(rate, 1000.0, 100.0);
}

TEST(Workload, ArrivalsSortedAndIdsDense) {
  const auto trace = generate_workload(64, base_params());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, i);
    if (i > 0) EXPECT_GE(trace[i].arrival_s, trace[i - 1].arrival_s);
    EXPECT_LT(trace[i].query, 64u);
  }
}

TEST(Workload, DeterministicPerSeed) {
  const auto a = generate_workload(64, base_params());
  const auto b = generate_workload(64, base_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].query, b[i].query);
  }
  WorkloadParams other = base_params();
  other.seed = 7;
  const auto c = generate_workload(64, other);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].arrival_s != c[i].arrival_s;
  }
  EXPECT_TRUE(any_diff) << "different seeds must give different traces";
}

TEST(Workload, OnOffIsBurstierThanPoisson) {
  WorkloadParams p = base_params();
  const auto poisson = generate_workload(64, p);
  p.arrivals = ArrivalProcess::kOnOff;
  p.burst_period_s = 0.05;
  p.burst_on_fraction = 0.2;
  const auto onoff = generate_workload(64, p);

  // Burstiness metric: fraction of inter-arrival gaps under half the mean
  // gap. The ON-OFF process packs arrivals into ON windows, so far more of
  // its gaps are short.
  auto short_gap_fraction = [](const std::vector<Request>& t) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < t.size(); ++i) {
      gaps.push_back(t[i].arrival_s - t[i - 1].arrival_s);
    }
    double mean_gap = 0.0;
    for (double g : gaps) mean_gap += g;
    mean_gap /= static_cast<double>(gaps.size());
    std::size_t short_gaps = 0;
    for (double g : gaps) {
      if (g < 0.5 * mean_gap) ++short_gaps;
    }
    return static_cast<double>(short_gaps) / static_cast<double>(gaps.size());
  };
  EXPECT_GT(short_gap_fraction(onoff), short_gap_fraction(poisson) + 0.1);

  // Both processes still offer the same long-run rate.
  const double span = onoff.back().arrival_s - onoff.front().arrival_s;
  EXPECT_NEAR(static_cast<double>(onoff.size() - 1) / span, 1000.0, 150.0);
}

TEST(Workload, ZipfSkewConcentratesQueryDraws) {
  WorkloadParams p = base_params();
  const auto uniform = generate_workload(64, p);
  p.query_skew = 1.2;
  const auto skewed = generate_workload(64, p);

  auto top_share = [](const std::vector<Request>& t) {
    std::vector<std::size_t> counts(64, 0);
    for (const Request& r : t) ++counts[r.query];
    std::sort(counts.rbegin(), counts.rend());
    std::size_t top = 0;
    for (std::size_t i = 0; i < 4; ++i) top += counts[i];
    return static_cast<double>(top) / static_cast<double>(t.size());
  };
  EXPECT_GT(top_share(skewed), top_share(uniform) + 0.15);
}

TEST(Workload, PerRequestParameterChoices) {
  WorkloadParams p = base_params();
  p.num_requests = 512;
  p.k_choices = {5, 20};
  p.nprobe_choices = {4, 8, 16};
  const auto trace = generate_workload(64, p);
  std::set<std::uint32_t> ks, nprobes;
  for (const Request& r : trace) {
    ks.insert(r.k);
    nprobes.insert(r.nprobe);
  }
  EXPECT_EQ(ks, (std::set<std::uint32_t>{5, 20}));
  EXPECT_EQ(nprobes, (std::set<std::uint32_t>{4, 8, 16}));
}

TEST(Workload, RejectsInvalidParams) {
  WorkloadParams p = base_params();
  p.offered_qps = 0.0;
  EXPECT_THROW(generate_workload(64, p), std::invalid_argument);
  p = base_params();
  p.k_choices.clear();
  EXPECT_THROW(generate_workload(64, p), std::invalid_argument);
  p = base_params();
  EXPECT_THROW(generate_workload(0, p), std::invalid_argument);
}

}  // namespace
}  // namespace drim::serve
