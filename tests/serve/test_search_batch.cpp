// Streaming step-API tests: search() must be a thin loop over search_batch()
// (bit-identical results AND modeled times), deferred tasks must survive
// step boundaries and drain on flush, and infeasible staging configurations
// must be rejected up front with an actionable message.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "serve_test_data.hpp"

namespace drim::serve {
namespace {

using SearchBatchTest = ServeTest;

TEST_F(SearchBatchTest, ManualStepLoopReproducesSearchExactly) {
  DrimEngineOptions o = default_options();
  o.batch_size = 16;  // several steps with filter carry-over between them
  DrimAnnEngine engine(*index_, data_->learn, o);

  DrimSearchStats closed;
  const auto expected = engine.search(data_->queries, 10, 8, &closed);

  // Re-run through the public step API with search()'s own schedule: fixed
  // chunks, flush once the final fresh chunk is consumed.
  const std::size_t nq = data_->queries.count();
  SearchBatchState state;
  engine.enqueue_queries(state, data_->queries, 10, 8);
  DrimSearchStats streamed;
  while (state.next_query < nq || state.has_deferred()) {
    const bool flush = state.next_query + o.batch_size >= nq;
    engine.search_batch(state, o.batch_size, flush, &streamed);
  }

  ASSERT_EQ(closed.batches, streamed.batches);
  EXPECT_EQ(closed.tasks, streamed.tasks);
  EXPECT_EQ(closed.queries, streamed.queries);
  // Same steps in the same order: the modeled times must be bit-identical.
  EXPECT_EQ(closed.total_seconds, streamed.total_seconds);
  EXPECT_EQ(closed.dpu_busy_seconds, streamed.dpu_busy_seconds);
  EXPECT_EQ(closed.transfer_in_seconds, streamed.transfer_in_seconds);
  EXPECT_EQ(closed.transfer_out_seconds, streamed.transfer_out_seconds);
  ASSERT_EQ(closed.batch_seconds.size(), streamed.batch_seconds.size());
  for (std::size_t b = 0; b < closed.batch_seconds.size(); ++b) {
    EXPECT_EQ(closed.batch_seconds[b], streamed.batch_seconds[b]);
  }

  for (std::size_t q = 0; q < nq; ++q) {
    ASSERT_TRUE(state.finished(static_cast<std::uint32_t>(q)));
    const auto got = state.take_results(static_cast<std::uint32_t>(q));
    ASSERT_EQ(got.size(), expected[q].size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[q][i].id);
      EXPECT_EQ(got[i].dist, expected[q][i].dist);
    }
  }
}

TEST_F(SearchBatchTest, PerBatchLatencyVectorMatchesTotals) {
  DrimEngineOptions o = default_options();
  o.batch_size = 12;
  DrimAnnEngine engine(*index_, data_->learn, o);
  DrimSearchStats st;
  engine.search(data_->queries, 10, 8, &st);
  ASSERT_EQ(st.batch_seconds.size(), st.batches);
  double sum = 0.0;
  for (double s : st.batch_seconds) {
    EXPECT_GT(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(sum, st.total_seconds, 1e-9);
}

// Satellite: an adversarially hot shard with the filter at zero slack defers
// tasks across step boundaries; the final flush must drain every carried
// task so no query starves or comes back short.
TEST_F(SearchBatchTest, FlushDrainsCarriedTasksWithoutStarvation) {
  DrimEngineOptions o = default_options();
  o.scheduler.enable_filter = true;
  o.scheduler.filter_slack = 0.0;  // defer from any DPU above the mean load
  DrimAnnEngine engine(*index_, data_->learn, o);

  // Every request is the same query: all tasks pile onto the replicas of one
  // hot probe set, the worst case for the load filter.
  FloatMatrix hot(32, data_->queries.dim());
  for (std::size_t q = 0; q < hot.count(); ++q) {
    const auto src = data_->queries.row(0);
    std::copy(src.begin(), src.end(), hot.row(q).begin());
  }

  SearchBatchState state;
  engine.enqueue_queries(state, hot, 10, 8);
  std::size_t total_deferred = 0;
  while (state.pending() > 0) {
    const auto step = engine.search_batch(state, 8, /*flush=*/false);
    total_deferred += step.deferred;
  }
  EXPECT_GT(total_deferred, 0u) << "hot shard at zero slack must defer tasks";

  // Unfinished queries exist exactly while tasks are carried.
  while (state.has_deferred()) {
    engine.search_batch(state, 0, /*flush=*/true);
  }
  EXPECT_FALSE(state.has_deferred());

  // The same query must produce the same full-length result everywhere:
  // nothing dropped, nothing starved across step boundaries.
  FloatMatrix one(1, data_->queries.dim());
  {
    const auto src = data_->queries.row(0);
    std::copy(src.begin(), src.end(), one.row(0).begin());
  }
  DrimAnnEngine reference(*index_, data_->learn, default_options());
  const auto expected = reference.search(one, 10, 8)[0];
  for (std::size_t q = 0; q < hot.count(); ++q) {
    ASSERT_TRUE(state.finished(static_cast<std::uint32_t>(q)));
    const auto got = state.take_results(static_cast<std::uint32_t>(q));
    ASSERT_EQ(got.size(), 10u) << "query " << q << " returned short results";
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id);
      EXPECT_EQ(got[i].dist, expected[i].dist);
    }
  }
}

TEST_F(SearchBatchTest, MixedDepthQueriesReturnPerQueryK) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  SearchBatchState state;
  const auto h0 = engine.enqueue_query(state, data_->queries.row(0), 5, 8);
  const auto h1 = engine.enqueue_query(state, data_->queries.row(1), 12, 4);
  engine.search_batch(state, 0, /*flush=*/true);

  ASSERT_TRUE(state.finished(h0));
  ASSERT_TRUE(state.finished(h1));
  const auto r0 = state.take_results(h0);
  const auto r1 = state.take_results(h1);
  ASSERT_EQ(r0.size(), 5u);
  ASSERT_EQ(r1.size(), 12u);

  // Each must match a dedicated closed-loop search at its own (k, nprobe).
  FloatMatrix one(1, data_->queries.dim());
  {
    const auto src = data_->queries.row(0);
    std::copy(src.begin(), src.end(), one.row(0).begin());
  }
  DrimAnnEngine ref(*index_, data_->learn, default_options());
  const auto e0 = ref.search(one, 5, 8)[0];
  ASSERT_EQ(e0.size(), r0.size());
  for (std::size_t i = 0; i < r0.size(); ++i) {
    EXPECT_EQ(r0[i].id, e0[i].id);
    EXPECT_EQ(r0[i].dist, e0[i].dist);
  }
}

TEST_F(SearchBatchTest, InfeasibleBatchSizeRejectedAtConstruction) {
  DrimEngineOptions ok = default_options();
  DrimAnnEngine probe(*index_, data_->learn, ok);
  const std::size_t cap = probe.max_staged_queries(1);
  ASSERT_GT(cap, 0u);

  DrimEngineOptions bad = default_options();
  bad.batch_size = cap + 1;
  try {
    DrimAnnEngine engine(*index_, data_->learn, bad);
    FAIL() << "construction must reject an unstageable batch_size";
  } catch (const std::invalid_argument& e) {
    // The error must name the actionable fix: the max feasible batch size.
    EXPECT_NE(std::string(e.what()).find("maximum feasible"), std::string::npos)
        << e.what();
  }
}

TEST_F(SearchBatchTest, OversizedKRejectedAtSearchEntry) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  // k so deep a single task's output block outgrows MRAM staging: rejected
  // before any work starts, not mid-batch from a worker thread.
  EXPECT_THROW(engine.search(data_->queries, 10'000'000, 8), std::invalid_argument);
}

}  // namespace
}  // namespace drim::serve
