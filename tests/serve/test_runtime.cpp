// Serving-runtime tests: trace replay completeness, latency decomposition
// consistency, determinism, overload shedding, and input validation.

#include <gtest/gtest.h>

#include <stdexcept>

#include "serve/runtime.hpp"
#include "serve_test_data.hpp"

namespace drim::serve {
namespace {

using RuntimeTest = ServeTest;

WorkloadParams trace_params(double qps, std::size_t n) {
  WorkloadParams wp;
  wp.offered_qps = qps;
  wp.num_requests = n;
  wp.k_choices = {10};
  wp.nprobe_choices = {8};
  return wp;
}

ServeParams serve_params(DrimAnnEngine& engine) {
  ServeParams sp;
  sp.batcher.max_batch = 16;
  const double est = engine.estimate_batch_seconds(16, 8, 10);
  sp.batcher.max_wait_s = 4.0 * est;
  sp.admission.slo_s = 20.0 * est;
  sp.flush_every = 2;
  return sp;
}

TEST_F(RuntimeTest, ServesEveryAdmittedRequestWithFullResults) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  ServeParams sp = serve_params(engine);
  sp.admission.enabled = false;
  ServingRuntime runtime(engine, data_->queries, sp);

  const auto trace =
      generate_workload(data_->queries.count(), trace_params(400.0, 128));
  const ServeResult res = runtime.run(trace);

  EXPECT_EQ(res.report.offered, 128u);
  EXPECT_EQ(res.report.served, 128u);
  EXPECT_EQ(res.report.shed, 0u);
  EXPECT_GT(res.batches, 0u);
  EXPECT_EQ(res.engine_stats.queries, 128u);
  EXPECT_EQ(res.engine_stats.batches, res.batches);

  double last_done = 0.0;
  for (const RequestRecord& r : res.records) {
    ASSERT_FALSE(r.shed);
    EXPECT_EQ(r.results, 10u);
    EXPECT_GE(r.done_s, r.request.arrival_s);
    EXPECT_NEAR(r.latency_s, r.done_s - r.request.arrival_s, 1e-12);
    EXPECT_GE(r.queue_wait_s, 0.0);
    // The wait is bounded by the deadline trigger plus the step that was
    // already running when the request arrived.
    EXPECT_GE(r.latency_s, r.queue_wait_s);
    EXPECT_GT(r.pim_s, 0.0);
    EXPECT_GE(r.schedule_s, 0.0);
    EXPECT_GE(r.merge_s, 0.0);
    last_done = std::max(last_done, r.done_s);
  }
  EXPECT_DOUBLE_EQ(res.makespan_s, last_done);
  EXPECT_GT(res.report.p99_ms, 0.0);
  EXPECT_GE(res.report.p99_ms, res.report.p50_ms);
}

TEST_F(RuntimeTest, DeterministicAcrossRuns) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  const ServeParams sp = serve_params(engine);
  const auto trace =
      generate_workload(data_->queries.count(), trace_params(600.0, 96));

  const ServeResult a = ServingRuntime(engine, data_->queries, sp).run(trace);
  const ServeResult b = ServingRuntime(engine, data_->queries, sp).run(trace);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].shed, b.records[i].shed);
    EXPECT_EQ(a.records[i].latency_s, b.records[i].latency_s);
    EXPECT_EQ(a.records[i].done_s, b.records[i].done_s);
  }
  EXPECT_EQ(a.report.p99_ms, b.report.p99_ms);
  EXPECT_EQ(a.batches, b.batches);
}

TEST_F(RuntimeTest, OverloadShedsAndBoundsTailLatency) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  ServeParams sp = serve_params(engine);
  // A tight SLO the 256-request burst can actually overrun: a few batches of
  // queue already blows the budget, so the controller must shed.
  sp.admission.slo_s = 5.0 * engine.estimate_batch_seconds(16, 8, 10);
  // Far past capacity: everything arrives in a burst the engine cannot keep
  // up with.
  const auto trace =
      generate_workload(data_->queries.count(), trace_params(50'000.0, 256));

  ServeParams off = sp;
  off.admission.enabled = false;
  const ServeResult no_ac = ServingRuntime(engine, data_->queries, off).run(trace);
  const ServeResult ac = ServingRuntime(engine, data_->queries, sp).run(trace);

  EXPECT_EQ(no_ac.report.shed, 0u);
  EXPECT_EQ(no_ac.report.served + no_ac.report.shed, no_ac.report.offered);
  EXPECT_EQ(ac.report.served + ac.report.shed, ac.report.offered);
  EXPECT_GT(ac.report.shed, 0u) << "overload must trigger load shedding";
  EXPECT_LT(ac.report.p99_ms, no_ac.report.p99_ms)
      << "shedding must shorten the tail";
  EXPECT_GE(ac.report.goodput_qps, no_ac.report.goodput_qps)
      << "shedding must not reduce goodput";
}

TEST_F(RuntimeTest, EmptyTraceYieldsEmptyReport) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  ServingRuntime runtime(engine, data_->queries, serve_params(engine));
  const ServeResult res = runtime.run({});
  EXPECT_EQ(res.report.offered, 0u);
  EXPECT_EQ(res.batches, 0u);
  EXPECT_EQ(res.makespan_s, 0.0);
}

TEST_F(RuntimeTest, RejectsMalformedTracesAndParams) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  ServeParams sp = serve_params(engine);
  ServingRuntime runtime(engine, data_->queries, sp);

  std::vector<Request> unsorted(2);
  unsorted[0].id = 0;
  unsorted[0].arrival_s = 1.0;
  unsorted[1].id = 1;
  unsorted[1].arrival_s = 0.5;
  EXPECT_THROW(runtime.run(unsorted), std::invalid_argument);

  std::vector<Request> bad_id(1);
  bad_id[0].id = 5;
  EXPECT_THROW(runtime.run(bad_id), std::invalid_argument);

  std::vector<Request> bad_query(1);
  bad_query[0].id = 0;
  bad_query[0].query = static_cast<std::uint32_t>(data_->queries.count());
  EXPECT_THROW(runtime.run(bad_query), std::invalid_argument);

  ServeParams zero_batch = sp;
  zero_batch.batcher.max_batch = 0;
  EXPECT_THROW(ServingRuntime(engine, data_->queries, zero_batch),
               std::invalid_argument);
}

TEST_F(RuntimeTest, SummarizeCountsSloViolations) {
  std::vector<RequestRecord> records(3);
  records[0].request.arrival_s = 0.0;
  records[0].latency_s = 5e-3;
  records[0].done_s = 5e-3;
  records[1].request.arrival_s = 1e-3;
  records[1].latency_s = 20e-3;
  records[1].done_s = 21e-3;
  records[2].request.arrival_s = 2e-3;
  records[2].shed = true;
  const ServeReport rep = summarize(records, 10e-3);
  EXPECT_EQ(rep.offered, 3u);
  EXPECT_EQ(rep.served, 2u);
  EXPECT_EQ(rep.shed, 1u);
  EXPECT_EQ(rep.slo_violations, 1u);
  EXPECT_NEAR(rep.timeout_rate, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(rep.shed_rate, 1.0 / 3.0, 1e-12);
  EXPECT_GT(rep.goodput_qps, 0.0);
  EXPECT_GT(rep.throughput_qps, rep.goodput_qps);
}

}  // namespace
}  // namespace drim::serve
