#pragma once
// Shared fixture for the serving-layer tests: one small SIFT-like corpus and
// trained IVF-PQ index per test binary, plus the engine options the tests
// default to. Kept deliberately tiny — these tests exercise serving logic,
// not recall.

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "drim/engine.hpp"

namespace drim::serve {

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 4000;
    spec.num_queries = 48;
    spec.num_learn = 2000;
    spec.num_components = 32;
    data_ = new SyntheticData(make_sift_like(spec));

    IvfPqParams p;
    p.nlist = 32;
    p.pq.m = 16;
    p.pq.cb_entries = 32;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete index_;
  }

  static DrimEngineOptions default_options(std::size_t dpus = 8) {
    DrimEngineOptions o;
    o.pim.num_dpus = dpus;
    o.layout.split_threshold = 128;
    o.heat_nprobe = 8;
    return o;
  }

  // Inline so every test TU aliasing this fixture shares one definition.
  // gtest pairs SetUpTestSuite/TearDownTestSuite per suite name, so each
  // aliased suite builds and frees its own corpus in sequence.
  static inline SyntheticData* data_ = nullptr;
  static inline IvfPqIndex* index_ = nullptr;
};

}  // namespace drim::serve
