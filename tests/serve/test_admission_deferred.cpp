// The admission predictor must count the backend's carried deferred-task
// backlog, not just the batcher queue: a backend that re-defers hot-shard
// work carries latency the queue depth alone cannot see. These tests drive
// the runtime with a fake backend whose deferred_count() is set directly,
// so the only difference between runs is the deferred buffer the predictor
// is supposed to fold in. Also pins the metrics snapshots that expose the
// same state.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "serve/runtime.hpp"

namespace drim::serve {
namespace {

/// Minimal deterministic backend: every step completes all fresh queries in
/// a fixed 1 ms, nothing is ever actually deferred — but deferred_count()
/// reports whatever the test configures, which is exactly what the
/// admission predictor reads.
class FakeBackend : public AnnBackend {
 public:
  explicit FakeBackend(std::size_t deferred_tasks)
      : deferred_tasks_(deferred_tasks) {}

  std::string name() const override { return "fake"; }
  std::vector<std::vector<Neighbor>> search(const FloatMatrix&, std::size_t,
                                            std::size_t) override {
    return {};
  }
  void reset_stream() override {
    pending_.clear();
    done_.clear();
    next_ = 0;
  }
  std::uint32_t enqueue(std::span<const float>, std::size_t, std::size_t) override {
    pending_.push_back(next_);
    return next_++;
  }
  BackendStepStats step(std::size_t max_queries, bool) override {
    BackendStepStats s;
    const std::size_t n = max_queries == 0 ? pending_.size()
                                           : std::min(pending_.size(), max_queries);
    for (std::size_t i = 0; i < n; ++i) done_.insert(pending_[i]);
    pending_.erase(pending_.begin(), pending_.begin() + static_cast<long>(n));
    s.fresh_queries = n;
    s.tasks = n * 8;
    s.exec_seconds = 1e-3;
    s.step_seconds = 1e-3;
    return s;
  }
  bool has_deferred() const override { return false; }
  std::size_t deferred_count() const override { return deferred_tasks_; }
  bool finished(std::uint32_t handle) const override { return done_.count(handle) > 0; }
  std::vector<Neighbor> take_results(std::uint32_t handle) override {
    done_.erase(handle);
    return std::vector<Neighbor>(10);
  }
  std::size_t stream_depth() const override { return pending_.size(); }
  double estimate_batch_seconds(std::size_t, std::size_t, std::size_t) const override {
    return 1e-3;
  }
  BackendStats stats() const override { return {}; }

 private:
  std::size_t deferred_tasks_;
  std::vector<std::uint32_t> pending_;
  std::set<std::uint32_t> done_;
  std::uint32_t next_ = 0;
};

std::vector<Request> burst_trace(std::size_t n) {
  std::vector<Request> trace(n);
  for (std::size_t i = 0; i < n; ++i) {
    trace[i].id = i;
    trace[i].arrival_s = 0.0;
    trace[i].query = static_cast<std::uint32_t>(i % 4);
    trace[i].k = 10;
    trace[i].nprobe = 8;
  }
  return trace;
}

ServeParams fake_params() {
  ServeParams sp;
  sp.batcher.max_batch = 16;
  sp.batcher.max_wait_s = 1e-4;
  sp.admission.slo_s = 10e-3;  // 10 EWMA batches of headroom
  sp.flush_every = 0;
  return sp;
}

TEST(AdmissionDeferred, EmptyDeferredBufferAdmitsTheWholeBurst) {
  FloatMatrix pool(4, 4);
  FakeBackend backend(/*deferred_tasks=*/0);
  ServingRuntime runtime(backend, pool, fake_params());
  const ServeResult res = runtime.run(burst_trace(8));
  EXPECT_EQ(res.report.shed, 0u);
  EXPECT_EQ(res.report.served, 8u);
}

TEST(AdmissionDeferred, NonemptyDeferredBufferRaisesPredictionsAndSheds) {
  // tasks-per-query is seeded at the trace's max nprobe (8), so 8000 carried
  // tasks read as ~1000 queued query-equivalents: the predicted wait jumps
  // from 1 batch (1 ms) to ~63 batches, far past the 10 ms SLO. The queue
  // itself is identical to the empty-buffer run — only deferred_count()
  // changed, so any shedding proves the predictor folds it in.
  FloatMatrix pool(4, 4);
  FakeBackend backend(/*deferred_tasks=*/8000);
  ServingRuntime runtime(backend, pool, fake_params());
  const ServeResult res = runtime.run(burst_trace(8));
  EXPECT_EQ(res.report.shed, 8u) << "every arrival sees the huge backlog";
  EXPECT_EQ(res.report.served, 0u);
}

TEST(AdmissionDeferred, ModerateDeferredBufferShedsOnlyTheTail) {
  // 192 carried tasks ~= 24 query-equivalents ~= 2 extra batches on top of
  // the queue: with a 2 ms SLO (2 EWMA batches) the burst's head still fits
  // (backlog 25..32 -> 2 batches) but the tail crosses into a 3rd batch and
  // sheds. The same trace with an empty buffer admits everything.
  FloatMatrix pool(4, 4);
  ServeParams sp = fake_params();
  sp.admission.slo_s = 2e-3;

  FakeBackend clean(/*deferred_tasks=*/0);
  const ServeResult all_in = ServingRuntime(clean, pool, sp).run(burst_trace(24));
  EXPECT_EQ(all_in.report.shed, 0u);

  FakeBackend backlogged(/*deferred_tasks=*/192);
  const ServeResult res = ServingRuntime(backlogged, pool, sp).run(burst_trace(24));
  EXPECT_GT(res.report.shed, 0u);
  EXPECT_GT(res.report.served, 0u);
}

TEST(AdmissionDeferred, SnapshotsExposeDeferredTasksAndShedRate) {
  FloatMatrix pool(4, 4);
  FakeBackend backend(/*deferred_tasks=*/8000);
  ServeParams sp = fake_params();
  sp.snapshot_period_s = 1e-4;
  ServingRuntime runtime(backend, pool, sp);
  const ServeResult res = runtime.run(burst_trace(8));
  ASSERT_FALSE(res.snapshots.empty());
  const MetricsSnapshot& last = res.snapshots.back();
  EXPECT_EQ(last.deferred_tasks, 8000u);
  EXPECT_EQ(last.shed, 8u);
  EXPECT_DOUBLE_EQ(last.shed_rate, 1.0);
}

}  // namespace
}  // namespace drim::serve
