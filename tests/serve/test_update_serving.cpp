// Update-serving tests (DESIGN.md §14): the generated insert/delete trace,
// the brute-force oracle that mirrors the writer, and the serving runtime's
// interleaving of update application + snapshot publishes with an open-loop
// search trace — deterministic, no serving pause, and the final published
// state bit-identical to a cold offline rebuild.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "core/mutable_index.hpp"
#include "serve/runtime.hpp"
#include "serve/update_workload.hpp"
#include "serve_test_data.hpp"

namespace drim::serve {
namespace {

using UpdateServingTest = ServeTest;

WorkloadParams trace_params(double qps, std::size_t n) {
  WorkloadParams wp;
  wp.offered_qps = qps;
  wp.num_requests = n;
  wp.k_choices = {10};
  wp.nprobe_choices = {8};
  return wp;
}

ServeParams serve_params(DrimAnnEngine& engine) {
  ServeParams sp;
  sp.batcher.max_batch = 16;
  const double est = engine.estimate_batch_seconds(16, 8, 10);
  sp.batcher.max_wait_s = 4.0 * est;
  sp.admission.enabled = false;  // nothing shed: every request must be served
  sp.flush_every = 2;
  return sp;
}

UpdateWorkloadParams update_params(double rate, double insert_fraction = 0.5) {
  UpdateWorkloadParams up;
  up.update_rate = rate;
  up.insert_fraction = insert_fraction;
  up.delete_skew = 0.8;
  return up;
}

TEST_F(UpdateServingTest, GeneratedTraceIsShapedAndDeterministic) {
  const auto searches = generate_workload(data_->queries.count(), trace_params(500.0, 200));
  const FloatMatrix pool = data_->base.to_float();
  const auto trace = generate_update_trace(searches, pool, index_->ntotal(),
                                           update_params(0.10));
  EXPECT_EQ(trace.ops.size(), 20u);  // round(0.10 * 200)

  std::size_t inserts = 0;
  double last = 0.0;
  for (const UpdateOp& op : trace.ops) {
    EXPECT_GE(op.arrival_s, last) << "ops must be sorted by arrival";
    EXPECT_LE(op.arrival_s, searches.back().arrival_s);
    last = op.arrival_s;
    if (op.kind == UpdateKind::kInsert) {
      // Insert targets index the payload matrix in issue order.
      EXPECT_EQ(op.target, inserts);
      ++inserts;
    } else {
      EXPECT_LT(op.target, index_->ntotal() + inserts);
    }
  }
  EXPECT_EQ(trace.insert_vectors.count(), inserts);
  EXPECT_GT(inserts, 0u);
  EXPECT_LT(inserts, trace.ops.size());

  // Same seed, same trace — bit for bit.
  const auto again = generate_update_trace(searches, pool, index_->ntotal(),
                                           update_params(0.10));
  ASSERT_EQ(again.ops.size(), trace.ops.size());
  for (std::size_t i = 0; i < trace.ops.size(); ++i) {
    EXPECT_EQ(again.ops[i].arrival_s, trace.ops[i].arrival_s);
    EXPECT_EQ(again.ops[i].kind, trace.ops[i].kind);
    EXPECT_EQ(again.ops[i].target, trace.ops[i].target);
  }

  EXPECT_THROW(generate_update_trace(searches, pool, index_->ntotal(),
                                     update_params(-0.1)),
               std::invalid_argument);
  EXPECT_THROW(generate_update_trace(searches, FloatMatrix(), index_->ntotal(),
                                     update_params(0.1, 1.0)),
               std::invalid_argument);
}

TEST_F(UpdateServingTest, OracleMirrorsTheWriter) {
  const auto searches = generate_workload(data_->queries.count(), trace_params(500.0, 300));
  const FloatMatrix pool = data_->base.to_float();
  const auto trace = generate_update_trace(searches, pool, index_->ntotal(),
                                           update_params(0.2));

  IndexWriter writer(*index_);
  UpdateOracle oracle(pool);
  ASSERT_EQ(oracle.live_count(), writer.live_count());
  for (const UpdateOp& op : trace.ops) {
    const std::uint32_t oracle_id = oracle.apply(op, trace.insert_vectors);
    if (op.kind == UpdateKind::kInsert) {
      const std::uint32_t writer_id =
          writer.insert(trace.insert_vectors.row(op.target));
      EXPECT_EQ(writer_id, oracle_id) << "id assignment diverged";
    } else {
      writer.erase(op.target);
      EXPECT_EQ(writer.alive(op.target), oracle.alive(op.target));
    }
    EXPECT_EQ(writer.live_count(), oracle.live_count());
  }
}

TEST_F(UpdateServingTest, RuntimeAppliesPublishesAndServesEverything) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  ServingRuntime runtime(engine, data_->queries, serve_params(engine));

  const auto searches = generate_workload(data_->queries.count(), trace_params(400.0, 160));
  const FloatMatrix pool = data_->base.to_float();
  const auto trace = generate_update_trace(searches, pool, index_->ntotal(),
                                           update_params(0.15));
  ASSERT_FALSE(trace.ops.empty());

  IndexWriter writer(*index_);
  UpdateStream updates;
  updates.trace = &trace;
  updates.writer = &writer;
  updates.publish_every_batches = 2;
  updates.relayout_every_batches = 6;
  runtime.set_update_stream(&updates);
  const ServeResult res = runtime.run(searches);

  // Every op on the trace was consumed, every search served in full.
  EXPECT_EQ(updates.applied, trace.ops.size());
  EXPECT_EQ(updates.inserts + updates.deletes, updates.applied);
  EXPECT_GT(updates.inserts, 0u);
  EXPECT_GT(updates.deletes, 0u);
  EXPECT_EQ(res.report.served, searches.size());
  EXPECT_EQ(res.report.shed, 0u);
  for (const RequestRecord& r : res.records) EXPECT_EQ(r.results, 10u);

  // Publishes happened between batches and were billed onto the timeline.
  EXPECT_GE(updates.publishes, 1u);
  EXPECT_GT(updates.publish_seconds, 0.0);
  EXPECT_GE(updates.relayouts, 1u);
  EXPECT_EQ(engine.snapshot().version, writer.version());
  EXPECT_GE(writer.version(), updates.publishes);
}

TEST_F(UpdateServingTest, UpdateServingIsDeterministic) {
  const auto searches = generate_workload(data_->queries.count(), trace_params(600.0, 128));
  const FloatMatrix pool = data_->base.to_float();
  const auto trace = generate_update_trace(searches, pool, index_->ntotal(),
                                           update_params(0.1));

  auto run_once = [&](ServeResult& out, std::uint64_t& version,
                      UpdateStream& updates) {
    DrimAnnEngine engine(*index_, data_->learn, default_options());
    ServingRuntime runtime(engine, data_->queries, serve_params(engine));
    IndexWriter writer(*index_);
    updates.trace = &trace;
    updates.writer = &writer;
    updates.publish_every_batches = 3;
    runtime.set_update_stream(&updates);
    out = runtime.run(searches);
    version = engine.snapshot().version;
  };

  ServeResult a, b;
  std::uint64_t va = 0, vb = 0;
  UpdateStream ua, ub;
  run_once(a, va, ua);
  run_once(b, vb, ub);

  EXPECT_EQ(va, vb);
  EXPECT_EQ(ua.applied, ub.applied);
  EXPECT_EQ(ua.publishes, ub.publishes);
  EXPECT_EQ(ua.publish_seconds, ub.publish_seconds);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].done_s, b.records[i].done_s);
    EXPECT_EQ(a.records[i].latency_s, b.records[i].latency_s);
  }
}

TEST_F(UpdateServingTest, FinalStateMatchesColdRebuildAndOracle) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  ServingRuntime runtime(engine, data_->queries, serve_params(engine));

  const auto searches = generate_workload(data_->queries.count(), trace_params(400.0, 160));
  const FloatMatrix pool = data_->base.to_float();
  const auto trace = generate_update_trace(searches, pool, index_->ntotal(),
                                           update_params(0.2, 0.6));

  IndexWriter writer(*index_);
  UpdateStream updates;
  updates.trace = &trace;
  updates.writer = &writer;
  updates.publish_every_batches = 2;
  runtime.set_update_stream(&updates);
  runtime.run(searches);
  ASSERT_EQ(updates.applied, trace.ops.size());

  // Fold any post-last-publish stragglers in, then pin the acceptance
  // contract: the served snapshot equals a cold offline build of the same
  // logical state, bit for bit.
  IndexSnapshot snap = writer.publish();
  const IvfPqIndex cold = writer.compacted_index();
  DrimAnnEngine live(snap, data_->learn, default_options());
  DrimAnnEngine rebuilt(cold, data_->learn, default_options());
  const auto live_res = live.search(data_->queries, 10, 8);
  const auto cold_res = rebuilt.search(data_->queries, 10, 8);
  ASSERT_EQ(live_res.size(), cold_res.size());
  for (std::size_t q = 0; q < live_res.size(); ++q) {
    ASSERT_EQ(live_res[q].size(), cold_res[q].size()) << "query " << q;
    for (std::size_t i = 0; i < live_res[q].size(); ++i) {
      EXPECT_EQ(live_res[q][i].id, cold_res[q][i].id) << "query " << q;
      EXPECT_EQ(live_res[q][i].dist, cold_res[q][i].dist) << "query " << q;
    }
  }

  // Quality floor against the brute-force oracle over the live set, at full
  // probe depth (PQ quantization is the only loss).
  UpdateOracle oracle(pool);
  for (const UpdateOp& op : trace.ops) oracle.apply(op, trace.insert_vectors);
  EXPECT_EQ(oracle.live_count(), writer.live_count());
  const auto full = live.search(data_->queries, 10, writer.nlist());
  double recall = 0.0;
  for (std::size_t q = 0; q < data_->queries.count(); ++q) {
    const auto truth = oracle.topk(data_->queries.row(q), 10);
    std::unordered_set<std::uint32_t> truth_ids;
    for (const Neighbor& n : truth) truth_ids.insert(n.id);
    std::size_t hit = 0;
    for (const Neighbor& n : full[q]) hit += truth_ids.count(n.id);
    // Deleted ids must never surface, even at full probe depth.
    for (const Neighbor& n : full[q]) EXPECT_TRUE(oracle.alive(n.id));
    recall += static_cast<double>(hit) / 10.0;
  }
  recall /= static_cast<double>(data_->queries.count());
  EXPECT_GE(recall, 0.5) << "mutated-index recall collapsed vs oracle";
}

TEST_F(UpdateServingTest, EmptyUpdateTraceIsBitIdenticalToNoStream) {
  const auto searches = generate_workload(data_->queries.count(), trace_params(500.0, 96));

  auto run_once = [&](UpdateStream* updates) {
    DrimAnnEngine engine(*index_, data_->learn, default_options());
    ServingRuntime runtime(engine, data_->queries, serve_params(engine));
    if (updates) runtime.set_update_stream(updates);
    return runtime.run(searches);
  };

  const ServeResult plain = run_once(nullptr);
  UpdateTrace empty_trace;  // zero ops: the stream must be a strict no-op
  IndexWriter writer(*index_);
  UpdateStream updates;
  updates.trace = &empty_trace;
  updates.writer = &writer;
  const ServeResult streamed = run_once(&updates);

  EXPECT_EQ(updates.applied, 0u);
  EXPECT_EQ(updates.publishes, 0u);
  EXPECT_EQ(updates.publish_seconds, 0.0);
  EXPECT_EQ(plain.batches, streamed.batches);
  EXPECT_EQ(plain.makespan_s, streamed.makespan_s);
  EXPECT_EQ(plain.engine_stats.total_seconds, streamed.engine_stats.total_seconds);
  ASSERT_EQ(plain.records.size(), streamed.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i) {
    EXPECT_EQ(plain.records[i].done_s, streamed.records[i].done_s);
    EXPECT_EQ(plain.records[i].latency_s, streamed.records[i].latency_s);
  }
}

TEST_F(UpdateServingTest, PipelinedRuntimePublishesBetweenSteps) {
  DrimEngineOptions o = default_options();
  o.pipeline_depth = 2;
  DrimAnnEngine engine(*index_, data_->learn, o);
  ServingRuntime runtime(engine, data_->queries, serve_params(engine));

  const auto searches = generate_workload(data_->queries.count(), trace_params(900.0, 160));
  const FloatMatrix pool = data_->base.to_float();
  const auto trace = generate_update_trace(searches, pool, index_->ntotal(),
                                           update_params(0.15));

  IndexWriter writer(*index_);
  UpdateStream updates;
  updates.trace = &trace;
  updates.writer = &writer;
  updates.publish_every_batches = 2;
  runtime.set_update_stream(&updates);
  const ServeResult res = runtime.run(searches);

  EXPECT_EQ(updates.applied, trace.ops.size());
  EXPECT_GE(updates.publishes, 1u);
  EXPECT_EQ(res.report.served, searches.size());
  for (const RequestRecord& r : res.records) {
    EXPECT_EQ(r.results, 10u);
    EXPECT_GE(r.done_s, r.request.arrival_s);
  }
  EXPECT_EQ(engine.snapshot().version, writer.version());
}

TEST_F(UpdateServingTest, RejectsBackendWithoutUpdateSupportAndNullTrace) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  ServingRuntime runtime(engine, data_->queries, serve_params(engine));
  const auto searches = generate_workload(data_->queries.count(), trace_params(400.0, 16));

  IndexWriter writer(*index_);
  UpdateStream updates;  // trace left null
  updates.writer = &writer;
  runtime.set_update_stream(&updates);
  EXPECT_THROW(runtime.run(searches), std::invalid_argument);
}

}  // namespace
}  // namespace drim::serve
