// Stream-state compaction tests: SearchBatchState's tables grow with every
// enqueued query, so the backends rebase handles onto a fresh state whenever
// the stream drains and every result has been taken. These tests pin the two
// guarantees that makes safe: handles stay monotonic (never reused, old ones
// keep answering finished()/take_results() correctly) and a long serving run
// keeps resident stream memory proportional to the in-flight window, not the
// trace length.

#include <gtest/gtest.h>

#include <stdexcept>

#include "backend/cpu_backend.hpp"
#include "backend/drim_backend.hpp"
#include "serve/runtime.hpp"
#include "serve_test_data.hpp"

namespace drim::serve {
namespace {

using CompactionTest = ServeTest;

/// Enqueue `n` pool queries, run them to completion, take every result.
/// Returns the handles in enqueue order.
std::vector<std::uint32_t> run_round(AnnBackend& backend, const FloatMatrix& pool,
                                     std::size_t n) {
  std::vector<std::uint32_t> handles;
  for (std::size_t q = 0; q < n; ++q) {
    handles.push_back(backend.enqueue(pool.row(q % pool.count()), 10, 8));
  }
  backend.step(0, /*flush=*/true);
  while (backend.has_deferred()) backend.step(0, /*flush=*/true);
  for (std::uint32_t h : handles) {
    EXPECT_TRUE(backend.finished(h));
    EXPECT_EQ(backend.take_results(h).size(), 10u);
  }
  return handles;
}

void expect_compaction_contract(AnnBackend& backend, const FloatMatrix& pool) {
  backend.reset_stream();
  const auto first = run_round(backend, pool, 8);
  EXPECT_EQ(backend.stream_depth(), 8u);  // drained but not yet compacted

  // The next enqueue triggers the rebase: depth resets to the new window,
  // and the fresh handle continues the sequence instead of reusing 0.
  const std::uint32_t next = backend.enqueue(pool.row(0), 10, 8);
  EXPECT_EQ(next, 8u);
  EXPECT_EQ(backend.stream_depth(), 1u);

  // Compacted-away handles still answer: finished, but not takeable twice.
  for (std::uint32_t h : first) {
    EXPECT_TRUE(backend.finished(h));
    EXPECT_THROW(backend.take_results(h), std::logic_error);
  }

  backend.step(0, /*flush=*/true);
  EXPECT_EQ(backend.take_results(next).size(), 10u);

  // A second drained round keeps handles monotonic across two rebases.
  const auto second = run_round(backend, pool, 4);
  for (std::uint32_t h : second) EXPECT_GT(h, first.back());
}

TEST_F(CompactionTest, DrimBackendRebasesHandlesAfterDrain) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  DrimBackend backend(engine);
  expect_compaction_contract(backend, data_->queries);
}

TEST_F(CompactionTest, CpuBackendRebasesHandlesAfterDrain) {
  CpuBackend backend(*index_);
  expect_compaction_contract(backend, data_->queries);
}

TEST_F(CompactionTest, NoCompactionWhileResultsAreLive) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  DrimBackend backend(engine);
  const std::uint32_t held = backend.enqueue(data_->queries.row(0), 10, 8);
  backend.step(0, /*flush=*/true);
  ASSERT_TRUE(backend.finished(held));
  // `held` has not been taken, so enqueues must NOT rebase past it.
  const std::uint32_t next = backend.enqueue(data_->queries.row(1), 10, 8);
  EXPECT_EQ(next, held + 1);
  EXPECT_EQ(backend.stream_depth(), 2u);
  backend.step(0, /*flush=*/true);
  EXPECT_EQ(backend.take_results(held).size(), 10u);
  EXPECT_EQ(backend.take_results(next).size(), 10u);
}

TEST_F(CompactionTest, LongTraceKeepsStreamMemoryBounded) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  DrimBackend backend(engine);

  ServeParams sp;
  sp.batcher.max_batch = 16;
  const double est = engine.estimate_batch_seconds(16, 8, 10);
  sp.batcher.max_wait_s = 4.0 * est;
  sp.admission.enabled = false;
  sp.admission.slo_s = 50.0 * est;
  sp.flush_every = 2;
  ServingRuntime runtime(backend, data_->queries, sp);

  WorkloadParams wp;
  wp.num_requests = 512;
  // Below capacity, so the stream drains repeatedly and compaction can fire.
  wp.offered_qps = 0.5 * 16.0 / est;
  wp.k_choices = {10};
  wp.nprobe_choices = {8};
  const ServeResult res = runtime.run(generate_workload(data_->queries.count(), wp));

  EXPECT_EQ(res.report.served, 512u);
  EXPECT_EQ(res.engine_stats.queries, 512u);
  // The state must have been compacted along the way: what's resident at the
  // end is the tail since the last rebase, far below the 512-query trace.
  EXPECT_LT(backend.stream_depth(), 128u)
      << "stream state grew with the trace; compaction never fired";
}

}  // namespace
}  // namespace drim::serve
