// Dynamic batcher trigger semantics and admission-controller accounting.

#include <gtest/gtest.h>

#include <limits>

#include "serve/admission.hpp"
#include "serve/batcher.hpp"

namespace drim::serve {
namespace {

Request req(std::uint64_t id) {
  Request r;
  r.id = id;
  return r;
}

TEST(Batcher, SizeTriggerFires) {
  BatcherParams p;
  p.max_batch = 4;
  p.max_wait_s = 1.0;  // deadline far away: only the size trigger can fire
  DynamicBatcher b(p);
  for (std::uint64_t i = 0; i < 3; ++i) {
    b.enqueue(req(i), 0.0);
    EXPECT_FALSE(b.ready(0.0));
  }
  b.enqueue(req(3), 0.0);
  EXPECT_TRUE(b.ready(0.0));
  EXPECT_EQ(b.depth(), 4u);
}

TEST(Batcher, DeadlineTriggerFires) {
  BatcherParams p;
  p.max_batch = 100;
  p.max_wait_s = 2e-3;
  DynamicBatcher b(p);
  EXPECT_FALSE(b.ready(0.0));
  EXPECT_EQ(b.deadline_s(), std::numeric_limits<double>::infinity());

  b.enqueue(req(0), 1.0);
  EXPECT_DOUBLE_EQ(b.deadline_s(), 1.002);
  EXPECT_FALSE(b.ready(1.0015));
  EXPECT_TRUE(b.ready(1.002));  // oldest request has waited max_wait_s

  // The deadline tracks the oldest queued request, not the newest.
  b.enqueue(req(1), 1.001);
  EXPECT_DOUBLE_EQ(b.deadline_s(), 1.002);
}

TEST(Batcher, TakeBatchIsFifoAndBounded) {
  BatcherParams p;
  p.max_batch = 3;
  DynamicBatcher b(p);
  for (std::uint64_t i = 0; i < 5; ++i) b.enqueue(req(i), 0.0);

  const auto first = b.take_batch();
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].id, 0u);
  EXPECT_EQ(first[1].id, 1u);
  EXPECT_EQ(first[2].id, 2u);
  EXPECT_EQ(b.depth(), 2u);

  const auto second = b.take_batch();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].id, 3u);
  EXPECT_EQ(second[1].id, 4u);
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.take_batch().empty());
}

TEST(Admission, ShedsAboveBudgetAndCounts) {
  AdmissionParams p;
  p.slo_s = 10e-3;
  p.headroom = 0.5;  // budget = 5 ms
  AdmissionController ac(p);

  EXPECT_TRUE(ac.admit(4e-3));
  EXPECT_TRUE(ac.admit(5e-3));   // exactly at budget: admitted
  EXPECT_FALSE(ac.admit(6e-3));
  EXPECT_FALSE(ac.admit(1.0));
  EXPECT_EQ(ac.admitted(), 2u);
  EXPECT_EQ(ac.shed(), 2u);
}

TEST(Admission, DisabledAdmitsEverything) {
  AdmissionParams p;
  p.enabled = false;
  p.slo_s = 1e-6;
  AdmissionController ac(p);
  EXPECT_TRUE(ac.admit(1e9));
  EXPECT_EQ(ac.admitted(), 1u);
  EXPECT_EQ(ac.shed(), 0u);
}

}  // namespace
}  // namespace drim::serve
