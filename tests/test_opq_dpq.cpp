// Tests for the OPQ and DPQ-style index variants.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/distances.hpp"
#include "core/dpq.hpp"
#include "core/opq.hpp"

namespace drim {
namespace {

/// Anisotropic data: a Gaussian with variance concentrated in a few latent
/// directions, spun by a random rotation so the variance is smeared across
/// all natural subspace boundaries — exactly the case where OPQ's learned
/// rotation beats plain PQ (Ge et al., Section 4).
FloatMatrix correlated_points(std::size_t n, std::size_t dim, Rng& rng) {
  Matrix g(dim, dim);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) g.at(r, c) = rng.gaussian();
  }
  const Matrix q = procrustes_rotation(g);  // random orthogonal spin

  FloatMatrix m(n, dim);
  std::vector<double> z(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      z[d] = rng.gaussian() * (d < dim / 4 ? 20.0 : 1.0);
    }
    auto row = m.row(i);
    for (std::size_t r = 0; r < dim; ++r) {
      double acc = 0.0;
      for (std::size_t c = 0; c < dim; ++c) acc += q.at(r, c) * z[c];
      row[r] = static_cast<float>(acc);
    }
  }
  return m;
}

TEST(OPQ, RotationIsOrthogonal) {
  Rng rng(1);
  const FloatMatrix pts = correlated_points(600, 16, rng);
  OPQParams p;
  p.pq.m = 4;
  p.pq.cb_entries = 16;
  p.outer_iters = 4;
  OptimizedProductQuantizer opq;
  opq.train(pts, p);
  EXPECT_LT(opq.rotation().orthogonality_error(), 1e-6);
}

TEST(OPQ, RotationPreservesNorm) {
  Rng rng(2);
  const FloatMatrix pts = correlated_points(400, 16, rng);
  OPQParams p;
  p.pq.m = 4;
  p.pq.cb_entries = 16;
  OptimizedProductQuantizer opq;
  opq.train(pts, p);

  std::vector<float> rotated(16);
  for (int i = 0; i < 10; ++i) {
    opq.rotate(pts.row(static_cast<std::size_t>(i)), rotated);
    const float in = dot(pts.row(static_cast<std::size_t>(i)),
                         pts.row(static_cast<std::size_t>(i)));
    const float out = dot(std::span<const float>(rotated), std::span<const float>(rotated));
    EXPECT_NEAR(in, out, 1e-1f * std::max(1.0f, in));
  }
}

TEST(OPQ, BeatsPlainPqOnCorrelatedData) {
  Rng rng(3);
  const FloatMatrix pts = correlated_points(1500, 16, rng);

  PQParams pq_params;
  pq_params.m = 4;
  pq_params.cb_entries = 16;
  ProductQuantizer pq;
  pq.train(pts, pq_params);
  const double pq_mse = pq.reconstruction_error(pts);

  OPQParams opq_params;
  opq_params.pq = pq_params;
  opq_params.outer_iters = 6;
  OptimizedProductQuantizer opq;
  opq.train(pts, opq_params);
  const double opq_mse = opq.reconstruction_error(pts);

  EXPECT_LT(opq_mse, pq_mse * 0.85) << "OPQ should reduce MSE on correlated data";
}

TEST(OPQ, EncodeUsesRotatedSpace) {
  Rng rng(4);
  const FloatMatrix pts = correlated_points(500, 8, rng);
  OPQParams p;
  p.pq.m = 2;
  p.pq.cb_entries = 8;
  OptimizedProductQuantizer opq;
  opq.train(pts, p);

  std::vector<std::uint8_t> via_encode(opq.pq().code_size());
  std::vector<std::uint8_t> manual(opq.pq().code_size());
  std::vector<float> rotated(8);
  opq.encode(pts.row(0), via_encode);
  opq.rotate(pts.row(0), rotated);
  opq.pq().encode(rotated, manual);
  EXPECT_EQ(via_encode, manual);
}

TEST(DPQ, RefinementDoesNotHurtMse) {
  Rng rng(5);
  const FloatMatrix pts = correlated_points(1200, 16, rng);
  PQParams p;
  p.m = 4;
  p.cb_entries = 16;
  ProductQuantizer pq;
  pq.train(pts, p);
  const double before = pq.reconstruction_error(pts);

  DPQParams dpq;
  dpq.iters = 8;
  const double after = dpq_refine(pq, pts, dpq);
  EXPECT_LE(after, before * 1.02) << "soft refinement should not blow up MSE";
}

TEST(DPQ, ReturnsFinalMse) {
  Rng rng(6);
  const FloatMatrix pts = correlated_points(400, 8, rng);
  PQParams p;
  p.m = 2;
  p.cb_entries = 8;
  ProductQuantizer pq;
  pq.train(pts, p);
  DPQParams dpq;
  dpq.iters = 2;
  const double returned = dpq_refine(pq, pts, dpq);
  EXPECT_NEAR(returned, pq.reconstruction_error(pts), 1e-9);
}

TEST(DPQ, TemperatureAnnealingConvergesTowardHardAssignment) {
  // With tiny temperature the refinement reduces to k-means-style moves and
  // must keep MSE non-increasing over epochs.
  Rng rng(7);
  const FloatMatrix pts = correlated_points(800, 8, rng);
  PQParams p;
  p.m = 2;
  p.cb_entries = 16;
  ProductQuantizer pq;
  pq.train(pts, p);
  DPQParams dpq;
  dpq.temperature = 0.05;
  dpq.temperature_decay = 0.5;
  dpq.iters = 4;
  dpq.learning_rate = 1.0;
  const double before = pq.reconstruction_error(pts);
  const double after = dpq_refine(pq, pts, dpq);
  EXPECT_LE(after, before * 1.001);
}

}  // namespace
}  // namespace drim
