// Full-stack property sweep: for a grid of (nlist, M, num_dpus, split
// threshold, duplication) configurations, the simulated-PIM engine must (a)
// return results whose recall tracks the float host reference within the
// int16 quantization tolerance, (b) produce sorted result lists, and (c)
// account time consistently (total >= max component). This is the "does the
// whole machine stay correct under any knob setting" net that individual
// unit tests cannot provide.

#include <gtest/gtest.h>

#include <tuple>

#include "core/flat_search.hpp"
#include "data/recall.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"

namespace drim {
namespace {

struct SharedWorld {
  SyntheticData data;
  std::vector<std::vector<Neighbor>> gt;

  SharedWorld() {
    SyntheticSpec spec;
    spec.num_base = 3000;
    spec.num_queries = 24;
    spec.num_learn = 1200;
    spec.num_components = 16;
    data = make_sift_like(spec);
    gt = flat_search_all(data.base, data.queries, 10);
  }
};

SharedWorld& world() {
  static SharedWorld w;
  return w;
}

using Config = std::tuple<int /*nlist*/, int /*m*/, int /*dpus*/, int /*split*/,
                          int /*dup_copies*/>;

class FullStackProperty : public ::testing::TestWithParam<Config> {};

TEST_P(FullStackProperty, EngineStaysCorrectAndConsistent) {
  const auto [nlist, m, dpus, split, dup] = GetParam();
  SharedWorld& w = world();

  IvfPqParams p;
  p.nlist = static_cast<std::size_t>(nlist);
  p.pq.m = static_cast<std::size_t>(m);
  p.pq.cb_entries = 32;
  IvfPqIndex index;
  index.train(w.data.learn, p);
  index.add(w.data.base);

  DrimEngineOptions o;
  o.pim.num_dpus = static_cast<std::size_t>(dpus);
  o.layout.split_threshold = static_cast<std::size_t>(split);
  o.layout.dup_copies = static_cast<std::size_t>(dup);
  o.layout.enable_duplicate = dup > 0;
  o.heat_nprobe = 8;
  DrimAnnEngine engine(index, w.data.learn, o);

  DrimSearchStats st;
  const auto drim = engine.search(w.data.queries, 10, 8, &st);

  // (a) recall parity with the float host reference.
  std::vector<std::vector<Neighbor>> host;
  for (std::size_t q = 0; q < w.data.queries.count(); ++q) {
    host.push_back(index.search(w.data.queries.row(q), 10, 8));
  }
  EXPECT_NEAR(mean_recall_at_k(drim, w.gt, 10), mean_recall_at_k(host, w.gt, 10), 0.06)
      << "config nlist=" << nlist << " m=" << m << " dpus=" << dpus
      << " split=" << split << " dup=" << dup;

  // (b) sorted, deduplicated result lists.
  for (const auto& r : drim) {
    for (std::size_t i = 1; i < r.size(); ++i) {
      EXPECT_LE(r[i - 1].dist, r[i].dist);
      EXPECT_NE(r[i - 1].id, r[i].id);
    }
  }

  // (c) time accounting: end-to-end covers the slowest DPU per batch; per-DPU
  // times are non-negative and some DPU did work.
  EXPECT_GE(st.total_seconds, st.dpu_busy_seconds - 1e-12);
  double busiest = 0.0;
  for (double t : st.per_dpu_seconds) {
    EXPECT_GE(t, 0.0);
    busiest = std::max(busiest, t);
  }
  EXPECT_GT(busiest, 0.0);
  EXPECT_GT(st.tasks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FullStackProperty,
    ::testing::Values(Config{8, 8, 2, 100000, 0},    // coarse, no balancing
                      Config{8, 16, 16, 64, 1},      // more DPUs than clusters
                      Config{16, 8, 4, 128, 0},      // split only
                      Config{16, 16, 8, 100000, 2},  // duplicate only
                      Config{32, 16, 8, 64, 1},      // full stack
                      Config{32, 8, 3, 37, 3}));     // odd sizes everywhere

}  // namespace
}  // namespace drim
