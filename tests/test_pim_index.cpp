// Tests for the integer-quantized PIM index representation.

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "drim/pim_index.hpp"

namespace drim {
namespace {

class PimIndexTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 3000;
    spec.num_queries = 20;
    spec.num_learn = 1200;
    spec.num_components = 24;
    data_ = new SyntheticData(make_sift_like(spec));
    IvfPqParams p;
    p.nlist = 24;
    p.pq.m = 8;
    p.pq.cb_entries = 16;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete index_;
  }
  static SyntheticData* data_;
  static IvfPqIndex* index_;
};

SyntheticData* PimIndexTest::data_ = nullptr;
IvfPqIndex* PimIndexTest::index_ = nullptr;

TEST_F(PimIndexTest, GeometryMirrorsSource) {
  const PimIndexData d(*index_);
  EXPECT_EQ(d.dim(), index_->dim());
  EXPECT_EQ(d.m(), index_->pq().m());
  EXPECT_EQ(d.cb_entries(), index_->pq().cb_entries());
  EXPECT_EQ(d.nlist(), index_->nlist());
  EXPECT_EQ(d.code_size(), index_->code_size());
}

TEST_F(PimIndexTest, CentroidsRoundedToNearestInt) {
  const PimIndexData d(*index_);
  for (std::size_t c = 0; c < d.nlist(); ++c) {
    auto qc = d.centroid(c);
    auto fc = index_->centroids().row(c);
    for (std::size_t i = 0; i < d.dim(); ++i) {
      EXPECT_LE(std::abs(qc[i] - fc[i]), 0.5f + 1e-4f);
    }
  }
}

TEST_F(PimIndexTest, CodewordsRoundedToNearestInt) {
  const PimIndexData d(*index_);
  for (std::size_t sub = 0; sub < d.m(); ++sub) {
    for (std::size_t e = 0; e < d.cb_entries(); ++e) {
      auto qw = d.codeword(sub, e);
      auto fw = index_->pq().codeword(sub, e);
      for (std::size_t i = 0; i < d.dsub(); ++i) {
        EXPECT_LE(std::abs(qw[i] - fw[i]), 0.5f + 1e-4f);
      }
    }
  }
}

TEST_F(PimIndexTest, ClusterContentsCopiedVerbatim) {
  const PimIndexData d(*index_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < d.nlist(); ++c) {
    const InvertedList& list = index_->list(c);
    EXPECT_EQ(d.cluster_size(c), list.size());
    EXPECT_TRUE(std::equal(d.cluster_ids(c).begin(), d.cluster_ids(c).end(),
                           list.ids.begin()));
    EXPECT_TRUE(std::equal(d.cluster_codes(c).begin(), d.cluster_codes(c).end(),
                           list.codes.begin()));
    total += list.size();
  }
  EXPECT_EQ(total, 3000u);
}

TEST_F(PimIndexTest, MaxOperandCoversCentroidsAndCodewords) {
  const PimIndexData d(*index_);
  std::int32_t seen = 0;
  for (std::size_t c = 0; c < d.nlist(); ++c) {
    for (std::int16_t v : d.centroid(c)) seen = std::max<std::int32_t>(seen, std::abs(v));
  }
  for (std::size_t sub = 0; sub < d.m(); ++sub) {
    for (std::size_t e = 0; e < d.cb_entries(); ++e) {
      for (std::int16_t v : d.codeword(sub, e)) {
        seen = std::max<std::int32_t>(seen, std::abs(v));
      }
    }
  }
  EXPECT_EQ(d.max_operand_abs(), seen);
}

TEST_F(PimIndexTest, QueryQuantizationRounds) {
  const std::vector<float> q = {1.4f, -2.6f, 0.0f, 255.0f};
  const auto out = PimIndexData::quantize_query(q);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], -3);
  EXPECT_EQ(out[2], 0);
  EXPECT_EQ(out[3], 255);
}

TEST_F(PimIndexTest, CodeAtHandlesNarrowCodes) {
  const PimIndexData d(*index_);
  const auto codes = d.cluster_codes(0);
  if (d.cluster_size(0) > 0) {
    for (std::size_t sub = 0; sub < d.m(); ++sub) {
      EXPECT_LT(d.code_at(codes, 0, sub), d.cb_entries());
    }
  }
}

}  // namespace
}  // namespace drim
