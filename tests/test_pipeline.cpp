// Tests for pipelined batch execution: the PipelineTimeline stage scheduler
// (half-duplex host link, exclusive DPU array, `depth` staging slots) and the
// engine-level invariants it must preserve — results bit-identical to the
// serial path at every depth on both platforms, transfer tallies unchanged
// (overlap moves stages in time, it never changes what is transferred), and
// the pipelined makespan bounded below by each resource's busy time and above
// by the serial stage sum. Also pins the halved ping/pong staging capacity at
// depth 2 and the determinism of the parallelized result merge.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "common/parallel.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"
#include "pim/pipeline.hpp"

namespace drim {
namespace {

// ---- PipelineTimeline unit tests ----

PipelineStageTimes stages(double in, double lo, double compute, double out,
                          double host = 0.0) {
  PipelineStageTimes st;
  st.transfer_in_seconds = in;
  st.launch_overhead_seconds = lo;
  st.compute_seconds = compute;
  st.transfer_out_seconds = out;
  st.host_seconds = host;
  return st;
}

PipelineSchedule run_one(PipelineTimeline& tl, double submit,
                         const PipelineStageTimes& st, double pre = 0.0) {
  tl.begin_batch(submit, pre);
  return tl.finish_batch(st);
}

TEST(PipelineTimeline, SingleBatchIsTheStageSum) {
  PipelineTimeline tl(2);
  const PipelineSchedule s = run_one(tl, 0.0, stages(1.0, 0.25, 4.0, 2.0));
  EXPECT_DOUBLE_EQ(s.in_start, 0.0);
  EXPECT_DOUBLE_EQ(s.compute_start, 1.0);
  EXPECT_DOUBLE_EQ(s.out_start, 1.0 + 0.25 + 4.0);
  EXPECT_DOUBLE_EQ(s.done_seconds, 1.0 + 0.25 + 4.0 + 2.0);
  EXPECT_DOUBLE_EQ(tl.last_done_seconds(), s.done_seconds);
  EXPECT_DOUBLE_EQ(tl.link_busy_seconds(), 3.0);
  EXPECT_DOUBLE_EQ(tl.dpu_busy_seconds(), 4.25);
}

TEST(PipelineTimeline, SecondBatchTransfersUnderFirstBatchCompute) {
  PipelineTimeline tl(2);
  const PipelineSchedule a = run_one(tl, 0.0, stages(1.0, 0.0, 10.0, 1.0));
  const PipelineSchedule b = run_one(tl, 0.0, stages(1.0, 0.0, 10.0, 1.0));
  // Double buffering: batch b's query push rides the idle link while batch
  // a's compute occupies the DPU array.
  EXPECT_DOUBLE_EQ(b.in_start, 1.0);
  EXPECT_LT(b.in_start, a.compute_end);
  // The DPU array is exclusive: b computes only after a releases it.
  EXPECT_DOUBLE_EQ(b.compute_start, a.compute_end);
  // Overlap shortens the makespan below the serial stage sum.
  EXPECT_LT(tl.last_done_seconds(), 2.0 * 12.0);
}

TEST(PipelineTimeline, LinkIsHalfDuplex) {
  PipelineTimeline tl(3);
  const PipelineSchedule a = run_one(tl, 0.0, stages(1.0, 0.0, 1.0, 5.0));
  const PipelineSchedule b = run_one(tl, 0.0, stages(4.0, 0.0, 1.0, 1.0));
  // b's push and a's result pull want the link at the same time; they must
  // not overlap (one shared half-duplex resource).
  const bool disjoint = b.in_end <= a.out_start ||
                        b.in_start >= a.out_end;
  EXPECT_TRUE(disjoint);
  // Everything the link carried is accounted.
  EXPECT_DOUBLE_EQ(tl.link_busy_seconds(), 1.0 + 5.0 + 4.0 + 1.0);
}

TEST(PipelineTimeline, MakespanAtLeastEachResourceBusyTime) {
  PipelineTimeline tl(2);
  for (int i = 0; i < 5; ++i) {
    run_one(tl, 0.0, stages(0.5 + 0.1 * i, 0.1, 2.0, 0.7), 0.2);
  }
  EXPECT_GE(tl.last_done_seconds(), tl.link_busy_seconds());
  EXPECT_GE(tl.last_done_seconds(), tl.dpu_busy_seconds());
}

TEST(PipelineTimeline, DepthTwoBlocksOnSlotReuse) {
  PipelineTimeline tl(2);
  const PipelineSchedule a = run_one(tl, 0.0, stages(1.0, 0.0, 10.0, 3.0));
  run_one(tl, 0.0, stages(1.0, 0.0, 10.0, 3.0));
  PipelineTimeline deep(3);
  const PipelineSchedule da = run_one(deep, 0.0, stages(1.0, 0.0, 10.0, 3.0));
  run_one(deep, 0.0, stages(1.0, 0.0, 10.0, 3.0));
  // Batch 2 reuses batch 0's staging slot at depth 2, so its push must wait
  // for batch 0's result pull to vacate the slot; at depth 3 it has its own
  // slot and only contends for the link.
  const PipelineSchedule c = run_one(tl, 0.0, stages(1.0, 0.0, 10.0, 3.0));
  const PipelineSchedule dc = run_one(deep, 0.0, stages(1.0, 0.0, 10.0, 3.0));
  EXPECT_GE(c.in_start, a.out_end);
  EXPECT_LT(dc.in_start, da.out_end);
}

TEST(PipelineTimeline, DoneTimesAreMonotone) {
  PipelineTimeline tl(4);
  double prev = 0.0;
  for (int i = 0; i < 8; ++i) {
    const PipelineSchedule s =
        run_one(tl, 0.1 * i, stages(0.3, 0.05, 1.0 / (i + 1), 0.2));
    EXPECT_GE(s.done_seconds, prev);
    prev = s.done_seconds;
  }
}

TEST(PipelineTimeline, DepthZeroClampsToOne) {
  PipelineTimeline tl(0);
  EXPECT_EQ(tl.depth(), 1u);
}

TEST(PipelineTimeline, RejectsNestedBeginBatch) {
  PipelineTimeline tl(2);
  tl.begin_batch(0.0, 0.0);
  EXPECT_THROW(tl.begin_batch(0.0, 0.0), std::logic_error);
}

// ---- engine-level invariants ----

/// Run `fn` with the OpenMP pool capped at `threads`, restoring after.
template <typename Fn>
auto with_threads(int threads, const Fn& fn) {
  const int saved = num_threads();
  set_num_threads(threads);
  auto result = fn();
  set_num_threads(saved);
  return result;
}

class PipelinedEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 6000;
    spec.num_queries = 48;
    spec.num_learn = 2500;
    spec.num_components = 48;
    data_ = new SyntheticData(make_sift_like(spec));

    IvfPqParams p;
    p.nlist = 48;
    p.pq.m = 16;
    p.pq.cb_entries = 32;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete index_;
  }

  static DrimEngineOptions options(PimPlatformKind platform, std::size_t depth) {
    DrimEngineOptions o;
    o.pim.num_dpus = 16;
    o.layout.split_threshold = 128;
    o.heat_nprobe = 8;
    o.batch_size = 12;  // several batches per search, filter carry-over active
    o.platform = platform;
    o.pipeline_depth = depth;
    return o;
  }

  struct Run {
    std::vector<std::vector<Neighbor>> results;
    DrimSearchStats stats;
  };

  static Run run(PimPlatformKind platform, std::size_t depth,
                 bool cl_on_pim = false) {
    DrimEngineOptions o = options(platform, depth);
    o.cl_on_pim = cl_on_pim;
    Run r;
    DrimAnnEngine engine(*index_, data_->learn, o);
    r.results = engine.search(data_->queries, 10, 8, &r.stats);
    return r;
  }

  static void expect_identical_results(const Run& a, const Run& b) {
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t q = 0; q < a.results.size(); ++q) {
      ASSERT_EQ(a.results[q].size(), b.results[q].size()) << "query " << q;
      for (std::size_t i = 0; i < a.results[q].size(); ++i) {
        EXPECT_EQ(a.results[q][i].id, b.results[q][i].id)
            << "query " << q << " rank " << i;
        EXPECT_EQ(a.results[q][i].dist, b.results[q][i].dist)
            << "query " << q << " rank " << i;
      }
    }
  }

  static inline SyntheticData* data_ = nullptr;
  static inline IvfPqIndex* index_ = nullptr;
};

TEST_F(PipelinedEngineTest, ResultsBitIdenticalAtEveryDepthOnBothPlatforms) {
  for (PimPlatformKind platform :
       {PimPlatformKind::kSim, PimPlatformKind::kAnalytic}) {
    SCOPED_TRACE(pim_platform_name(platform));
    const Run serial = run(platform, 1);
    for (std::size_t depth : {std::size_t{2}, std::size_t{3}}) {
      SCOPED_TRACE(depth);
      expect_identical_results(serial, run(platform, depth));
    }
  }
}

TEST_F(PipelinedEngineTest, TransferTalliesAreExactlyDepthInvariant) {
  for (PimPlatformKind platform :
       {PimPlatformKind::kSim, PimPlatformKind::kAnalytic}) {
    SCOPED_TRACE(pim_platform_name(platform));
    const Run serial = run(platform, 1);
    for (std::size_t depth : {std::size_t{2}, std::size_t{3}}) {
      SCOPED_TRACE(depth);
      const Run piped = run(platform, depth);
      // Overlap reschedules transfers; it must not change what crosses the
      // link or what the DPUs execute.
      EXPECT_DOUBLE_EQ(piped.stats.transfer_in_seconds,
                       serial.stats.transfer_in_seconds);
      EXPECT_DOUBLE_EQ(piped.stats.transfer_out_seconds,
                       serial.stats.transfer_out_seconds);
      EXPECT_DOUBLE_EQ(piped.stats.dpu_busy_seconds,
                       serial.stats.dpu_busy_seconds);
      EXPECT_EQ(piped.stats.tasks, serial.stats.tasks);
      EXPECT_EQ(piped.stats.batches, serial.stats.batches);
    }
  }
}

TEST_F(PipelinedEngineTest, PipelinedTotalBoundedBySerialAndByResourceBusyTimes) {
  for (PimPlatformKind platform :
       {PimPlatformKind::kSim, PimPlatformKind::kAnalytic}) {
    SCOPED_TRACE(pim_platform_name(platform));
    const Run serial = run(platform, 1);
    double prev_total = serial.stats.total_seconds;
    for (std::size_t depth : {std::size_t{2}, std::size_t{3}}) {
      SCOPED_TRACE(depth);
      const Run piped = run(platform, depth);
      // Overlap can only help, and a deeper pipe can only help further.
      EXPECT_LE(piped.stats.total_seconds, prev_total * (1.0 + 1e-12));
      // ... but no schedule beats either bottleneck resource's busy time.
      EXPECT_GE(piped.stats.total_seconds,
                piped.stats.transfer_in_seconds + piped.stats.transfer_out_seconds);
      EXPECT_GE(piped.stats.total_seconds, piped.stats.dpu_busy_seconds);
      prev_total = piped.stats.total_seconds;
    }
  }
}

TEST_F(PipelinedEngineTest, PlatformsAgreeExactlyOnThePipelinedTimeline) {
  for (std::size_t depth : {std::size_t{2}, std::size_t{3}}) {
    SCOPED_TRACE(depth);
    const Run sim = run(PimPlatformKind::kSim, depth);
    const Run analytic = run(PimPlatformKind::kAnalytic, depth);
    ASSERT_EQ(sim.stats.batch_seconds.size(), analytic.stats.batch_seconds.size());
    for (std::size_t b = 0; b < sim.stats.batch_seconds.size(); ++b) {
      EXPECT_DOUBLE_EQ(analytic.stats.batch_seconds[b], sim.stats.batch_seconds[b])
          << "batch " << b;
    }
    EXPECT_DOUBLE_EQ(analytic.stats.total_seconds, sim.stats.total_seconds);
  }
}

TEST_F(PipelinedEngineTest, ClOnPimResultsBitIdenticalAcrossDepths) {
  const Run serial = run(PimPlatformKind::kSim, 1, /*cl_on_pim=*/true);
  const Run piped = run(PimPlatformKind::kSim, 2, /*cl_on_pim=*/true);
  expect_identical_results(serial, piped);
  EXPECT_LE(piped.stats.total_seconds, serial.stats.total_seconds * (1.0 + 1e-12));
}

TEST_F(PipelinedEngineTest, BatchSecondsTelescopeToTheTotalAtDepthTwo) {
  const Run piped = run(PimPlatformKind::kSim, 2);
  double sum = 0.0;
  for (double s : piped.stats.batch_seconds) sum += s;
  EXPECT_NEAR(sum, piped.stats.total_seconds, 1e-9);
}

// ---- ping/pong staging capacity ----

TEST_F(PipelinedEngineTest, PingPongStagingHalvesTheFeasibleBatchAndSaysSo) {
  DrimEngineOptions small = options(PimPlatformKind::kSim, 1);
  small.pim.mram_bytes = 1 << 20;  // squeeze the staging region
  small.batch_size = 4;
  const DrimAnnEngine probe(*index_, data_->learn, small);
  const std::size_t cap_serial = probe.max_staged_queries(1);

  DrimEngineOptions piped = small;
  piped.pipeline_depth = 2;
  piped.batch_size = 4;
  const DrimAnnEngine probe2(*index_, data_->learn, piped);
  const std::size_t cap_piped = probe2.max_staged_queries(1);
  // Two in-flight slots split the staging region: roughly half the queries
  // fit per batch (the slot stride is 8-byte aligned, so at most half).
  ASSERT_GT(cap_serial, 1u);
  EXPECT_LE(cap_piped, cap_serial / 2);
  EXPECT_GE(cap_piped, 1u);

  // A batch size that fit serially but overflows a ping/pong slot is
  // rejected at construction, and the error names the feasible size.
  DrimEngineOptions bad = piped;
  bad.batch_size = cap_piped + 1;
  try {
    DrimAnnEngine broken(*index_, data_->learn, bad);
    FAIL() << "expected construction to reject batch_size " << bad.batch_size;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("maximum feasible"), std::string::npos)
        << e.what();
  }
}

// ---- merge determinism ----

TEST_F(PipelinedEngineTest, ParallelMergeIsBitIdenticalAcrossThreadCounts) {
  for (std::size_t depth : {std::size_t{1}, std::size_t{2}}) {
    SCOPED_TRACE(depth);
    const Run par =
        with_threads(4, [&] { return run(PimPlatformKind::kSim, depth); });
    const Run ser =
        with_threads(1, [&] { return run(PimPlatformKind::kSim, depth); });
    // The collect merge visits each query's (dpu, task) hits in a fixed
    // order regardless of which host thread replays it, so ids, distances,
    // and tie-breaks are identical.
    expect_identical_results(par, ser);
    EXPECT_DOUBLE_EQ(par.stats.total_seconds, ser.stats.total_seconds);
  }
}

}  // namespace
}  // namespace drim
