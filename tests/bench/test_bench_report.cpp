// Unit tests for the BenchReport JSON writer (bench/support/harness.cpp):
// the BENCH_*.json schema, including the git dirty/detached state fields
// that make artifacts from unclean trees distinguishable from clean-rev
// runs. Built as its own target (the main test glob links only the library,
// and the writer lives in the bench support sources).

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "support/harness.hpp"

namespace drim::bench {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(BenchReport, WritesGitStateFields) {
  BenchReport report("report_writer_test");
  report.set_config("knob", std::size_t{7});
  report.add_row("row0");
  report.add_metric("qps", 123.5);
  const std::string path = report.write(".");
  EXPECT_EQ(path, "./BENCH_report_writer_test.json");

  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(contains(json, "\"bench\": \"report_writer_test\""));
  EXPECT_TRUE(contains(json, "\"git_rev\": \""));
  // The new fields are unconditional booleans: present in every report, true
  // or false, never quoted strings.
  EXPECT_TRUE(contains(json, "\"git_dirty\": true") ||
              contains(json, "\"git_dirty\": false"));
  EXPECT_TRUE(contains(json, "\"git_detached\": true") ||
              contains(json, "\"git_detached\": false"));
  EXPECT_TRUE(contains(json, "\"knob\": 7"));
  EXPECT_TRUE(contains(json, "\"label\": \"row0\""));
  EXPECT_TRUE(contains(json, "\"qps\": 123.5"));
}

TEST(BenchReport, GitStateProbeIsSelfConsistent) {
  const GitState g = query_git_state();
  if (g.rev == "unknown") {
    // Outside a repository the probe must report a clean, attached default —
    // never "dirty" flags for a tree that does not exist.
    EXPECT_FALSE(g.dirty);
    EXPECT_FALSE(g.detached);
  } else {
    // Inside one, the rev is a full 40-hex-digit SHA.
    EXPECT_EQ(g.rev.size(), 40u);
    for (char c : g.rev) {
      EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c))) << g.rev;
    }
  }
}

TEST(BenchReport, WriteMatchesReportedJsonShape) {
  // inf/nan metrics serialize as null (JSON has no literals for them).
  BenchReport report("report_writer_nan_test");
  report.add_row("r");
  report.add_metric("bad", std::numeric_limits<double>::infinity());
  const std::string json = slurp(report.write("."));
  EXPECT_TRUE(contains(json, "\"bad\": null"));
}

}  // namespace
}  // namespace drim::bench
