// Tests for the IVF-PQ index: construction invariants, the five-phase host
// search, recall properties, and the OPQ/DPQ variants through the index API.

#include <gtest/gtest.h>

#include <numeric>

#include "baseline/cpu_ivfpq.hpp"
#include "core/flat_search.hpp"
#include "core/ivf.hpp"
#include "data/recall.hpp"
#include "data/synthetic.hpp"

namespace drim {
namespace {

/// Shared fixture: one synthetic dataset + trained index per variant.
class IvfTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 8000;
    spec.num_queries = 60;
    spec.num_learn = 3000;
    spec.num_components = 64;
    data_ = new SyntheticData(make_sift_like(spec));
    gt_ = new std::vector<std::vector<Neighbor>>(
        flat_search_all(data_->base, data_->queries, 10));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete gt_;
    data_ = nullptr;
    gt_ = nullptr;
  }

  static IvfPqIndex make_index(PQVariant variant, std::size_t m = 32,
                               std::size_t cb = 64) {
    IvfPqParams p;
    p.nlist = 32;
    p.pq.m = m;
    p.pq.cb_entries = cb;
    p.variant = variant;
    p.opq_iters = 3;
    IvfPqIndex index;
    index.train(data_->learn, p);
    index.add(data_->base);
    return index;
  }

  static SyntheticData* data_;
  static std::vector<std::vector<Neighbor>>* gt_;
};

SyntheticData* IvfTest::data_ = nullptr;
std::vector<std::vector<Neighbor>>* IvfTest::gt_ = nullptr;

TEST_F(IvfTest, ListsPartitionTheCorpus) {
  const IvfPqIndex index = make_index(PQVariant::kPQ);
  const auto sizes = index.list_sizes();
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}), 8000u);

  // Every id appears exactly once across all lists.
  std::vector<int> seen(8000, 0);
  for (std::size_t c = 0; c < index.nlist(); ++c) {
    for (std::uint32_t id : index.list(c).ids) ++seen[id];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST_F(IvfTest, CodesSizedConsistently) {
  const IvfPqIndex index = make_index(PQVariant::kPQ);
  for (std::size_t c = 0; c < index.nlist(); ++c) {
    EXPECT_EQ(index.list(c).codes.size(), index.list(c).ids.size() * index.code_size());
  }
}

TEST_F(IvfTest, RecallImprovesWithNprobe) {
  const IvfPqIndex index = make_index(PQVariant::kPQ);
  double prev = -1.0;
  for (std::size_t nprobe : {1, 4, 16, 32}) {
    std::vector<std::vector<Neighbor>> results;
    for (std::size_t q = 0; q < data_->queries.count(); ++q) {
      results.push_back(index.search(data_->queries.row(q), 10, nprobe));
    }
    const double r = mean_recall_at_k(results, *gt_, 10);
    EXPECT_GE(r, prev - 0.02) << "recall should be ~monotone in nprobe";
    prev = r;
  }
  EXPECT_GT(prev, 0.6);
}

TEST_F(IvfTest, FullProbeRecallIsHigh) {
  const IvfPqIndex index = make_index(PQVariant::kPQ);
  std::vector<std::vector<Neighbor>> results;
  for (std::size_t q = 0; q < data_->queries.count(); ++q) {
    results.push_back(index.search(data_->queries.row(q), 10, index.nlist()));
  }
  EXPECT_GT(mean_recall_at_k(results, *gt_, 10), 0.70);
}

TEST_F(IvfTest, SearchResultsSortedAscending) {
  const IvfPqIndex index = make_index(PQVariant::kPQ);
  const auto r = index.search(data_->queries.row(0), 10, 8);
  for (std::size_t i = 1; i < r.size(); ++i) {
    EXPECT_LE(r[i - 1].dist, r[i].dist);
  }
}

TEST_F(IvfTest, OpqVariantSearchesCorrectly) {
  const IvfPqIndex index = make_index(PQVariant::kOPQ);
  std::vector<std::vector<Neighbor>> results;
  for (std::size_t q = 0; q < data_->queries.count(); ++q) {
    results.push_back(index.search(data_->queries.row(q), 10, 16));
  }
  EXPECT_GT(mean_recall_at_k(results, *gt_, 10), 0.55);
}

TEST_F(IvfTest, DpqVariantSearchesCorrectly) {
  const IvfPqIndex index = make_index(PQVariant::kDPQ);
  std::vector<std::vector<Neighbor>> results;
  for (std::size_t q = 0; q < data_->queries.count(); ++q) {
    results.push_back(index.search(data_->queries.row(q), 10, 16));
  }
  EXPECT_GT(mean_recall_at_k(results, *gt_, 10), 0.55);
}

TEST_F(IvfTest, LocateClustersReturnsRequestedCount) {
  const IvfPqIndex index = make_index(PQVariant::kPQ);
  EXPECT_EQ(index.locate_clusters(data_->queries.row(0), 5).size(), 5u);
  EXPECT_EQ(index.locate_clusters(data_->queries.row(0), 200).size(), index.nlist());
}

TEST_F(IvfTest, QueryResidualSubtractsCentroid) {
  const IvfPqIndex index = make_index(PQVariant::kPQ);
  std::vector<float> residual(index.dim());
  index.query_residual(data_->queries.row(0), 3, residual);
  auto cen = index.centroids().row(3);
  auto q = data_->queries.row(0);
  for (std::size_t d = 0; d < index.dim(); ++d) {
    EXPECT_FLOAT_EQ(residual[d], q[d] - cen[d]);
  }
}

TEST_F(IvfTest, CpuBaselineMatchesReferenceSearch) {
  const IvfPqIndex index = make_index(PQVariant::kPQ);
  CpuIvfPq cpu(index);
  const auto batch = cpu.search_batch(data_->queries, 10, 16);
  for (std::size_t q = 0; q < data_->queries.count(); ++q) {
    const auto ref = index.search(data_->queries.row(q), 10, 16);
    ASSERT_EQ(batch[q].size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(batch[q][i].id, ref[i].id);
      EXPECT_FLOAT_EQ(batch[q][i].dist, ref[i].dist);
    }
  }
}

TEST_F(IvfTest, CpuBaselineStatsAccountPhases) {
  const IvfPqIndex index = make_index(PQVariant::kPQ);
  CpuIvfPq cpu(index);
  CpuSearchStats stats;
  cpu.search_batch(data_->queries, 10, 16, &stats, /*collect_phases=*/true);
  EXPECT_EQ(stats.queries, data_->queries.count());
  EXPECT_GT(stats.codes_scanned, 0u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.phase_total(), 0.0);
  EXPECT_GT(stats.scan_seconds, 0.0);
}

TEST_F(IvfTest, UntrainedIndexReportsNotTrained) {
  IvfPqIndex index;
  EXPECT_FALSE(index.trained());
}

}  // namespace
}  // namespace drim
