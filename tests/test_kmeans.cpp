// Tests for k-means (the coarse quantizer and PQ codebook trainer).

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "core/distances.hpp"
#include "core/kmeans.hpp"

namespace drim {
namespace {

/// Well-separated blobs: k-means must recover them exactly.
FloatMatrix make_blobs(std::size_t per_blob, std::size_t blobs, std::size_t dim,
                       Rng& rng, float separation = 100.0f, float spread = 1.0f) {
  FloatMatrix m(per_blob * blobs, dim);
  for (std::size_t b = 0; b < blobs; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      auto row = m.row(b * per_blob + i);
      for (std::size_t d = 0; d < dim; ++d) {
        row[d] = separation * static_cast<float>(b) +
                 static_cast<float>(rng.gaussian()) * spread;
      }
    }
  }
  return m;
}

TEST(KMeans, RecoversSeparatedBlobs) {
  Rng rng(1);
  const FloatMatrix pts = make_blobs(50, 4, 8, rng);
  KMeansParams p;
  p.k = 4;
  p.max_iters = 25;
  const KMeansResult r = kmeans(pts, p);

  // Every blob maps to exactly one centroid.
  for (std::size_t b = 0; b < 4; ++b) {
    std::set<std::uint32_t> assigned;
    for (std::size_t i = 0; i < 50; ++i) assigned.insert(r.assignment[b * 50 + i]);
    EXPECT_EQ(assigned.size(), 1u) << "blob " << b << " split across centroids";
  }
}

TEST(KMeans, AllCentroidsLive) {
  Rng rng(2);
  const FloatMatrix pts = make_blobs(30, 2, 4, rng);
  KMeansParams p;
  p.k = 8;  // more centroids than natural blobs: empty-cluster reseeding kicks in
  const KMeansResult r = kmeans(pts, p);
  std::set<std::uint32_t> used(r.assignment.begin(), r.assignment.end());
  // At least most centroids should attract points after reseeding.
  EXPECT_GE(used.size(), 6u);
}

TEST(KMeans, InertiaNotWorseThanSeeding) {
  Rng rng(3);
  const FloatMatrix pts = make_blobs(40, 5, 16, rng, 20.0f, 4.0f);
  KMeansParams one_iter;
  one_iter.k = 5;
  one_iter.max_iters = 1;
  KMeansParams many_iters = one_iter;
  many_iters.max_iters = 20;
  EXPECT_LE(kmeans(pts, many_iters).inertia, kmeans(pts, one_iter).inertia * 1.0001);
}

TEST(KMeans, DeterministicForFixedSeed) {
  Rng rng(4);
  const FloatMatrix pts = make_blobs(20, 3, 4, rng);
  KMeansParams p;
  p.k = 3;
  const KMeansResult a = kmeans(pts, p);
  const KMeansResult b = kmeans(pts, p);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, UniformSeedingAlsoWorks) {
  Rng rng(5);
  const FloatMatrix pts = make_blobs(30, 4, 8, rng);
  KMeansParams p;
  p.k = 4;
  p.use_kmeanspp = false;
  const KMeansResult r = kmeans(pts, p);
  EXPECT_GT(r.iters_run, 0u);
  EXPECT_EQ(r.centroids.count(), 4u);
}

TEST(NearestCentroid, PicksTrueNearest) {
  FloatMatrix cents(3, 2);
  cents.row(0)[0] = 0;  cents.row(0)[1] = 0;
  cents.row(1)[0] = 10; cents.row(1)[1] = 0;
  cents.row(2)[0] = 0;  cents.row(2)[1] = 10;
  const float q[2] = {9.0f, 1.0f};
  EXPECT_EQ(nearest_centroid(cents, q), 1u);
}

TEST(NearestCentroids, SortedAscendingByDistance) {
  FloatMatrix cents(4, 1);
  cents.row(0)[0] = 0;
  cents.row(1)[0] = 5;
  cents.row(2)[0] = 2;
  cents.row(3)[0] = 9;
  const float q[1] = {1.0f};
  const auto ids = nearest_centroids(cents, q, 3);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 2u);
  EXPECT_EQ(ids[2], 1u);
}

TEST(NearestCentroids, ClampsToAvailable) {
  FloatMatrix cents(2, 1);
  cents.row(0)[0] = 0;
  cents.row(1)[0] = 1;
  const float q[1] = {0.4f};
  EXPECT_EQ(nearest_centroids(cents, q, 10).size(), 2u);
}

}  // namespace
}  // namespace drim
