// ThreadSanitizer smoke for the parallel host simulation path. Built into
// every configuration and registered with the `tsan` ctest label; under the
// `tsan` preset (-DDRIM_SANITIZE=thread) the whole stack is instrumented, so
// `ctest -L tsan` exercises the parallel run_batch / staging / collection
// loops with race detection. The binary also cross-checks the parallel run
// against a single-threaded rerun and exits nonzero on any divergence, so in
// uninstrumented builds it doubles as a quick determinism smoke.

#include <cstdio>
#include <vector>

#include "common/parallel.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"

namespace {

struct Run {
  std::vector<std::vector<drim::Neighbor>> results;
  drim::DrimSearchStats stats;
};

Run run_search(const drim::IvfPqIndex& index, const drim::SyntheticData& data,
               bool cl_on_pim) {
  drim::DrimEngineOptions o;
  o.pim.num_dpus = 16;
  o.layout.split_threshold = 128;
  o.heat_nprobe = 6;
  o.batch_size = 12;  // several barrier batches with filter carry-over
  o.cl_on_pim = cl_on_pim;
  drim::DrimAnnEngine engine(index, data.learn, o);
  Run run;
  run.results = engine.search(data.queries, 10, 6, &run.stats);
  return run;
}

bool identical(const Run& a, const Run& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t q = 0; q < a.results.size(); ++q) {
    if (a.results[q].size() != b.results[q].size()) return false;
    for (std::size_t i = 0; i < a.results[q].size(); ++i) {
      if (a.results[q][i].id != b.results[q][i].id ||
          a.results[q][i].dist != b.results[q][i].dist) {
        return false;
      }
    }
  }
  return a.stats.total_seconds == b.stats.total_seconds &&
         a.stats.dpu_busy_seconds == b.stats.dpu_busy_seconds &&
         a.stats.transfer_in_seconds == b.stats.transfer_in_seconds &&
         a.stats.transfer_out_seconds == b.stats.transfer_out_seconds;
}

}  // namespace

int main() {
  drim::SyntheticSpec spec;
  spec.num_base = 4000;
  spec.num_queries = 40;
  spec.num_learn = 1500;
  spec.num_components = 24;
  const drim::SyntheticData data = drim::make_sift_like(spec);

  drim::IvfPqParams p;
  p.nlist = 24;
  p.pq.m = 8;
  p.pq.cb_entries = 16;
  drim::IvfPqIndex index;
  index.train(data.learn, p);
  index.add(data.base);

  for (const bool cl_on_pim : {false, true}) {
    const Run par = run_search(index, data, cl_on_pim);
    const int saved = drim::num_threads();
    drim::set_num_threads(1);
    const Run ser = run_search(index, data, cl_on_pim);
    drim::set_num_threads(saved);
    if (!identical(par, ser)) {
      std::fprintf(stderr, "FAIL: parallel run diverged from serial (cl_on_pim=%d)\n",
                   cl_on_pim);
      return 1;
    }
  }
  std::printf("ok: parallel batch path matches serial (threads=%d)\n",
              drim::num_threads());
  return 0;
}
