// ThreadSanitizer smoke for the mutable-index path: the parallel batch
// machinery (multithreaded staging / kernel / collection) interleaved with
// between-batch snapshot publishes and re-layouts, on BOTH platform presets.
// Registered with the `tsan` ctest label, so -DDRIM_SANITIZE=thread races
// the publish swap against the worker pool. Like the other smokes it also
// self-checks in uninstrumented builds: the streamed-and-published run must
// end bit-identical to a cold rebuild of the same logical state, and the
// two platforms must agree, or the binary exits nonzero.

#include <cstdio>
#include <vector>

#include "core/mutable_index.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"

namespace {

drim::DrimEngineOptions make_options(drim::PimPlatformKind kind) {
  drim::DrimEngineOptions o;
  o.pim.num_dpus = 16;
  o.layout.split_threshold = 128;
  o.heat_nprobe = 6;
  o.batch_size = 12;
  o.platform = kind;
  return o;
}

bool identical(const std::vector<std::vector<drim::Neighbor>>& a,
               const std::vector<std::vector<drim::Neighbor>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].id != b[q][i].id || a[q][i].dist != b[q][i].dist) return false;
    }
  }
  return true;
}

/// Stream batches through one engine while mutating + publishing between
/// them; returns the final-version closed-loop results.
std::vector<std::vector<drim::Neighbor>> run_streamed(
    const drim::IvfPqIndex& index, const drim::SyntheticData& data,
    const drim::FloatMatrix& base_float, drim::IndexWriter& writer,
    drim::PimPlatformKind kind) {
  drim::DrimAnnEngine engine(index, data.learn, make_options(kind));
  drim::SearchBatchState state;
  const std::size_t rounds = 4;
  for (std::size_t r = 0; r < rounds; ++r) {
    // One parallel batch of queries on the current version...
    engine.enqueue_queries(state, data.queries, 10, 6);
    while (!state.idle()) engine.search_batch(state, 0, /*flush=*/true);
    // ...then mutate and swap the version in between batches.
    for (std::size_t i = 0; i < 24; ++i) {
      writer.insert(base_float.row((r * 24 + i) % base_float.count()));
    }
    writer.erase(static_cast<std::uint32_t>(r * 13));
    drim::PublishDelta delta;
    const drim::IndexSnapshot snap = writer.publish(&delta);
    engine.apply_snapshot(snap, delta);
    if (r == rounds / 2) engine.replan_layout();
  }
  return engine.search(data.queries, 10, 6);
}

}  // namespace

int main() {
  drim::SyntheticSpec spec;
  spec.num_base = 4000;
  spec.num_queries = 40;
  spec.num_learn = 1500;
  spec.num_components = 24;
  const drim::SyntheticData data = drim::make_sift_like(spec);
  const drim::FloatMatrix base_float = data.base.to_float();

  drim::IvfPqParams p;
  p.nlist = 24;
  p.pq.m = 8;
  p.pq.cb_entries = 16;
  drim::IvfPqIndex index;
  index.train(data.learn, p);
  index.add(data.base);

  std::vector<std::vector<std::vector<drim::Neighbor>>> per_kind;
  for (const auto kind :
       {drim::PimPlatformKind::kSim, drim::PimPlatformKind::kAnalytic}) {
    drim::IndexWriter writer(index);
    const auto streamed = run_streamed(index, data, base_float, writer, kind);

    // The published stream must equal a cold rebuild of the final state.
    const drim::IvfPqIndex cold_index = writer.compacted_index();
    drim::DrimAnnEngine cold(cold_index, data.learn, make_options(kind));
    const auto rebuilt = cold.search(data.queries, 10, 6);
    if (!identical(streamed, rebuilt)) {
      std::fprintf(stderr,
                   "update tsan smoke: streamed run diverged from cold "
                   "rebuild (platform %d)\n",
                   static_cast<int>(kind));
      return 1;
    }
    per_kind.push_back(streamed);
  }

  if (!identical(per_kind[0], per_kind[1])) {
    std::fprintf(stderr, "update tsan smoke: sim and analytic disagree\n");
    return 1;
  }
  std::printf("update tsan smoke: %zu queries x 2 platforms OK\n",
              data.queries.count());
  return 0;
}
