// Torture tests for the persistent work-stealing executor and the
// parallel_for mode router: exactly-once index execution under stealing,
// nested loops, exception short-circuiting (including mid-steal), thread-cap
// semantics across every backend (the pre-PR-6 shim silently ignored the cap
// off OpenMP), and bit-identical fixed-order merges across repeated runs at
// several thread counts. This file is also built into the tsan-labeled
// drim_executor_tsan binary so `ctest -L tsan` races the pool under
// ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/executor.hpp"
#include "common/parallel.hpp"
#include "core/flat_search.hpp"
#include "data/synthetic.hpp"

namespace drim {
namespace {

struct ModeGuard {
  explicit ModeGuard(ParallelMode m) : saved(parallel_mode()) {
    set_parallel_mode(m);
  }
  ~ModeGuard() { set_parallel_mode(saved); }
  ParallelMode saved;
};

struct CapGuard {
  explicit CapGuard(int n) : saved(num_threads()) { set_num_threads(n); }
  ~CapGuard() { set_num_threads(saved); }
  int saved;
};

int hw_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

TEST(Executor, ExactlyOncePerIndexAcrossCaps) {
  const int hw = hw_threads();
  for (const int cap : {1, 2, 4, hw, hw + 3}) {
    CapGuard guard(cap);
    const std::size_t n = 10'000;
    std::vector<std::atomic<std::uint32_t>> hits(n);
    Executor::instance().parallel_for(0, n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i << " at cap " << cap;
    }
  }
}

TEST(Executor, UnevenWorkStillExactlyOnce) {
  // Skewed per-index cost forces lanes dry at very different times, so the
  // range is claimed through steals as well as owner pops.
  CapGuard guard(4);
  const std::size_t n = 1 << 14;
  std::vector<std::atomic<std::uint32_t>> hits(n);
  std::atomic<std::uint64_t> sink{0};
  Executor::instance().parallel_for(0, n, [&](std::size_t i) {
    std::uint64_t burn = 0;
    for (std::size_t r = 0; r < (i % 37) * 8; ++r) burn += r * i;
    sink.fetch_add(burn, std::memory_order_relaxed);
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1u);
}

TEST(Executor, NestedParallelForRunsInline) {
  CapGuard guard(4);
  std::atomic<std::size_t> count{0};
  parallel_for(0, 8, [&](std::size_t) {
    parallel_for(0, 64, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(count.load(), 8u * 64u);
}

TEST(Executor, ExceptionRethrownAndShortCircuits) {
  CapGuard guard(4);
  const std::size_t n = 1 << 16;
  std::atomic<std::size_t> executed{0};
  std::atomic<bool> thrown{false};
  EXPECT_THROW(
      {
        Executor::instance().parallel_for(0, n, [&](std::size_t i) {
          // Index 0 is the front of the caller's own block, so it runs
          // before the caller touches anything else; every other index
          // parks until the throw has happened and then burns a
          // millisecond, so the caller's catch sets the abort flag ages
          // before any lane could chew through a meaningful slice of the
          // range. The abort short-circuit is best-effort (a relaxed
          // flag), so the bound is generous, not exact.
          if (i == 0) {
            thrown.store(true, std::memory_order_release);
            throw std::runtime_error("boom");
          }
          while (!thrown.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      },
      std::runtime_error);
  EXPECT_LT(executed.load(), n / 2);

  // The pool is healthy after an aborted loop.
  std::atomic<std::size_t> after{0};
  Executor::instance().parallel_for(0, 1000, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 1000u);
}

TEST(Executor, ExceptionMidStealWithUnevenWork) {
  // The thrower sits at the end of the last lane's block, after skewed costs
  // have already triggered stealing; the first exception must still win and
  // the loop must still drain cleanly.
  CapGuard guard(4);
  const std::size_t n = 1 << 13;
  std::atomic<std::size_t> executed{0};
  std::atomic<std::uint64_t> sink{0};
  EXPECT_THROW(
      {
        Executor::instance().parallel_for(0, n, [&](std::size_t i) {
          executed.fetch_add(1, std::memory_order_relaxed);
          std::uint64_t burn = 0;
          for (std::size_t r = 0; r < (i % 53) * 4; ++r) burn += r;
          sink.fetch_add(burn, std::memory_order_relaxed);
          if (i + 1 == n) throw std::runtime_error("mid-steal");
        });
      },
      std::runtime_error);
  EXPECT_LE(executed.load(), n);
}

TEST(Executor, SerialInlineExceptionIsImmediate) {
  CapGuard guard(1);
  std::size_t executed = 0;
  EXPECT_THROW(
      {
        parallel_for(0, 1000, [&](std::size_t i) {
          ++executed;
          if (i == 5) throw std::runtime_error("stop");
        });
      },
      std::runtime_error);
  EXPECT_EQ(executed, 6u);
}

TEST(Executor, ConcurrentTopLevelLoopsSerialize) {
  CapGuard guard(4);
  std::atomic<std::size_t> total{0};
  auto run = [&] {
    Executor::instance().parallel_for(0, 5000, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  };
  std::thread a(run), b(run);
  run();
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 3u * 5000u);
}

TEST(Executor, CapAboveHardwareGrowsPool) {
  const int want = hw_threads() + 3;
  CapGuard guard(want);
  EXPECT_EQ(Executor::instance().effective_parallelism(), want);
  std::atomic<std::size_t> count{0};
  Executor::instance().parallel_for(0, 10'000, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 10'000u);
  // lanes = want, pool participants = lanes - 1 (caller is lane 0).
  EXPECT_GE(Executor::instance().pool_size(),
            static_cast<std::size_t>(want - 1));
}

// ---- satellite: set_num_threads must be honored by every backend ----

TEST(ParallelModes, ThreadCapHonoredOffOpenMP) {
  for (const ParallelMode mode :
       {ParallelMode::kPersistent, ParallelMode::kSpawn}) {
    ModeGuard m(mode);
    CapGuard guard(3);
    EXPECT_EQ(num_threads(), 3) << "mode " << static_cast<int>(mode);
  }
  ModeGuard m(ParallelMode::kSerial);
  CapGuard guard(3);
  EXPECT_EQ(num_threads(), 1);
}

TEST(ParallelModes, SpawnModeRunsAndAborts) {
  ModeGuard m(ParallelMode::kSpawn);
  CapGuard guard(4);
  std::vector<std::atomic<std::uint32_t>> hits(5000);
  parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) ASSERT_EQ(h.load(), 1u);

  // Same deterministic handshake as Executor.ExceptionRethrownAndShortCircuits:
  // indices other than the thrower park until the throw lands and then cost
  // a millisecond each, so the spawn path's abort flag cuts the range long
  // before half of it could execute.
  const std::size_t n = 1 << 16;
  std::atomic<std::size_t> executed{0};
  std::atomic<bool> thrown{false};
  EXPECT_THROW(
      {
        parallel_for(0, n, [&](std::size_t i) {
          if (i == 0) {
            thrown.store(true, std::memory_order_release);
            throw std::runtime_error("spawn boom");
          }
          while (!thrown.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      },
      std::runtime_error);
  EXPECT_LT(executed.load(), n / 2);
}

// satellite: the OpenMP path must short-circuit after an exception instead
// of invoking the body on every remaining index. With one thread the count
// is exact: one invocation, the rest skipped by the abort flag. (Under TSan
// or without OpenMP the router falls back to the persistent pool, where the
// same exact count holds serially inline.)
TEST(ParallelModes, OmpModeShortCircuitsAfterException) {
  ModeGuard m(ParallelMode::kOpenMP);
  CapGuard guard(1);
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      {
        parallel_for(0, 1000, [&](std::size_t i) {
          executed.fetch_add(1, std::memory_order_relaxed);
          if (i == 0) throw std::runtime_error("omp boom");
        });
      },
      std::runtime_error);
  EXPECT_EQ(executed.load(), 1u);
}

// ---- determinism of fixed-order merges ----

TEST(Executor, FixedOrderMergesDeterministicAcrossRunsAndCaps) {
  SyntheticSpec spec;
  spec.num_base = 3000;
  spec.num_queries = 12;
  spec.num_learn = 100;
  spec.dim = 32;
  spec.num_components = 16;
  const SyntheticData data = make_sift_like(spec);

  const auto reference = flat_search_all(data.base, data.queries, 10);
  const int hw = hw_threads();
  for (const int cap : {1, 4, hw}) {
    CapGuard guard(cap);
    for (int run = 0; run < 10; ++run) {
      const auto got = flat_search_all(data.base, data.queries, 10);
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t q = 0; q < got.size(); ++q) {
        ASSERT_EQ(got[q].size(), reference[q].size());
        for (std::size_t i = 0; i < got[q].size(); ++i) {
          ASSERT_EQ(got[q][i].id, reference[q][i].id);
          ASSERT_EQ(got[q][i].dist, reference[q][i].dist);
        }
      }
    }
  }
}

}  // namespace
}  // namespace drim
