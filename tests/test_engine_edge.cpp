// Edge-case and failure-injection tests for the DRIM engine and PIM
// substrate: degenerate topologies, wide PQ codes through the whole engine,
// oversubscribed k, MRAM exhaustion, and batch-size extremes.

#include <gtest/gtest.h>

#include "core/flat_search.hpp"
#include "data/recall.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"

namespace drim {
namespace {

SyntheticData small_data() {
  SyntheticSpec spec;
  spec.num_base = 2000;
  spec.num_queries = 24;
  spec.num_learn = 800;
  spec.num_components = 16;
  return make_sift_like(spec);
}

IvfPqIndex small_index(const SyntheticData& data, std::size_t nlist = 16,
                       std::size_t m = 16, std::size_t cb = 64) {
  IvfPqParams p;
  p.nlist = nlist;
  p.pq.m = m;
  p.pq.cb_entries = cb;
  IvfPqIndex index;
  index.train(data.learn, p);
  index.add(data.base);
  return index;
}

TEST(EngineEdge, SingleDpuWorks) {
  const SyntheticData data = small_data();
  const IvfPqIndex index = small_index(data);
  DrimEngineOptions o;
  o.pim.num_dpus = 1;
  DrimAnnEngine engine(index, data.learn, o);
  DrimSearchStats st;
  const auto results = engine.search(data.queries, 5, 4, &st);
  EXPECT_EQ(results.size(), data.queries.count());
  for (const auto& r : results) EXPECT_EQ(r.size(), 5u);
  // One DPU: its busy time IS the batch time.
  EXPECT_NEAR(st.per_dpu_seconds[0], st.dpu_busy_seconds, 1e-12);
}

TEST(EngineEdge, MoreDpusThanShards) {
  const SyntheticData data = small_data();
  const IvfPqIndex index = small_index(data, 8);
  DrimEngineOptions o;
  o.pim.num_dpus = 128;  // vastly more DPUs than shards
  o.layout.enable_split = false;
  o.layout.enable_duplicate = false;
  DrimAnnEngine engine(index, data.learn, o);
  const auto results = engine.search(data.queries, 5, 4);
  EXPECT_EQ(results.size(), data.queries.count());
}

TEST(EngineEdge, NprobeLargerThanNlistClamps) {
  const SyntheticData data = small_data();
  const IvfPqIndex index = small_index(data, 8);
  DrimEngineOptions o;
  o.pim.num_dpus = 4;
  DrimAnnEngine engine(index, data.learn, o);
  const auto gt = flat_search_all(data.base, data.queries, 5);
  const auto results = engine.search(data.queries, 5, 1000);  // > nlist
  // Full probe: recall should match a full scan through the quantizer.
  EXPECT_GT(mean_recall_at_k(results, gt, 5), 0.5);
}

TEST(EngineEdge, KLargerThanClusterContents) {
  const SyntheticData data = small_data();
  const IvfPqIndex index = small_index(data);
  DrimEngineOptions o;
  o.pim.num_dpus = 4;
  DrimAnnEngine engine(index, data.learn, o);
  // nprobe=1, k=400: the probed cluster may hold fewer than k points.
  const auto results = engine.search(data.queries, 400, 1);
  for (const auto& r : results) {
    EXPECT_LE(r.size(), 400u);
    EXPECT_GT(r.size(), 0u);
    for (std::size_t i = 1; i < r.size(); ++i) EXPECT_LE(r[i - 1].dist, r[i].dist);
  }
}

TEST(EngineEdge, WideCodesThroughWholeEngine) {
  const SyntheticData data = small_data();
  // CB = 300 > 256 forces 16-bit codes; M = 8 keeps the WRAM LUT small.
  const IvfPqIndex index = small_index(data, 16, 8, 300);
  ASSERT_TRUE(index.pq().wide_codes());
  DrimEngineOptions o;
  o.pim.num_dpus = 8;
  DrimAnnEngine engine(index, data.learn, o);

  const auto drim = engine.search(data.queries, 5, 8);
  std::vector<std::vector<Neighbor>> host;
  for (std::size_t q = 0; q < data.queries.count(); ++q) {
    host.push_back(index.search(data.queries.row(q), 5, 8));
  }
  const auto gt = flat_search_all(data.base, data.queries, 5);
  EXPECT_NEAR(mean_recall_at_k(drim, gt, 5), mean_recall_at_k(host, gt, 5), 0.1);
}

TEST(EngineEdge, BatchSizeOneMatchesSingleBatch) {
  const SyntheticData data = small_data();
  const IvfPqIndex index = small_index(data);
  DrimEngineOptions one;
  one.pim.num_dpus = 4;
  one.batch_size = 1;
  one.scheduler.enable_filter = false;  // per-query batches: nothing to defer
  DrimEngineOptions all;
  all.pim.num_dpus = 4;

  DrimAnnEngine e1(index, data.learn, one);
  DrimAnnEngine e2(index, data.learn, all);
  const auto r1 = e1.search(data.queries, 5, 4);
  const auto r2 = e2.search(data.queries, 5, 4);
  for (std::size_t q = 0; q < r1.size(); ++q) {
    ASSERT_EQ(r1[q].size(), r2[q].size());
    for (std::size_t i = 0; i < r1[q].size(); ++i) {
      EXPECT_EQ(r1[q][i].id, r2[q][i].id);
    }
  }
}

TEST(EngineEdge, MramExhaustionThrowsCleanly) {
  const SyntheticData data = small_data();
  const IvfPqIndex index = small_index(data);
  DrimEngineOptions o;
  o.pim.num_dpus = 2;
  o.pim.mram_bytes = 32 << 10;  // 32 KB: cannot hold codebooks + shards
  EXPECT_THROW(DrimAnnEngine(index, data.learn, o), std::runtime_error);
}

TEST(EngineEdge, ZeroQueriesIsEmptyResult) {
  const SyntheticData data = small_data();
  const IvfPqIndex index = small_index(data);
  DrimEngineOptions o;
  o.pim.num_dpus = 4;
  DrimAnnEngine engine(index, data.learn, o);
  FloatMatrix empty(0, index.dim());
  DrimSearchStats st;
  const auto results = engine.search(empty, 5, 4, &st);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(st.tasks, 0u);
}

TEST(EngineEdge, DpqVariantThroughEngine) {
  const SyntheticData data = small_data();
  IvfPqParams p;
  p.nlist = 16;
  p.pq.m = 16;
  p.pq.cb_entries = 64;
  p.variant = PQVariant::kDPQ;
  IvfPqIndex index;
  index.train(data.learn, p);
  index.add(data.base);

  DrimEngineOptions o;
  o.pim.num_dpus = 4;
  DrimAnnEngine engine(index, data.learn, o);
  const auto gt = flat_search_all(data.base, data.queries, 5);
  const auto results = engine.search(data.queries, 5, 8);
  EXPECT_GT(mean_recall_at_k(results, gt, 5), 0.4);
}

TEST(EngineEdge, FilterSlackZeroStillCompletesAllQueries) {
  const SyntheticData data = small_data();
  const IvfPqIndex index = small_index(data);
  DrimEngineOptions o;
  o.pim.num_dpus = 4;
  o.batch_size = 6;
  o.scheduler.enable_filter = true;
  o.scheduler.filter_slack = 0.0;  // maximally aggressive deferral
  DrimAnnEngine engine(index, data.learn, o);
  DrimSearchStats st;
  const auto results = engine.search(data.queries, 5, 4, &st);
  for (const auto& r : results) EXPECT_FALSE(r.empty());
  EXPECT_GE(st.batches, 4u);  // deferred work forces extra drain batches
}

}  // namespace
}  // namespace drim
