// Direct tests of the DPU search kernel against a hand-computed reference:
// exact integer ADC distances, sentinel padding, phase counter placement,
// and WRAM budget enforcement.

#include <gtest/gtest.h>

#include <cstring>

#include "drim/kernels.hpp"
#include "drim/square_lut.hpp"
#include "pim/pim_system.hpp"

namespace drim {
namespace {

/// A tiny hand-rolled index: dim=4, m=2, cb=4, one cluster with 3 points.
struct TinyWorld {
  PimConfig cfg;
  std::unique_ptr<Dpu> dpu;
  SearchKernelArgs args;
  std::vector<ShardRegion> shards;

  // Host-side copies for reference math.
  std::vector<std::int16_t> centroid = {10, 10, 20, 20};
  // codebooks[sub][entry][d]: 2 subs x 4 entries x 2 dims.
  std::vector<std::int16_t> codebooks = {
      // sub 0
      0, 0,  5, 5,  -5, -5,  10, 0,
      // sub 1
      0, 0,  3, -3,  8, 8,  -2, 6,
  };
  std::vector<std::uint8_t> codes = {0, 1, 3, 2, 1, 0};  // 3 points x 2 codes
  std::vector<std::uint32_t> ids = {100, 200, 300};
  std::vector<std::int16_t> query = {12, 9, 25, 18};

  TinyWorld() {
    cfg.num_dpus = 1;
    cfg.mram_bytes = 1 << 20;
    dpu = std::make_unique<Dpu>(cfg);

    const SquareLut lut(64);
    Mram& mram = dpu->mram();

    args.dim = 4;
    args.m = 2;
    args.cb = 4;
    args.code_size = 2;
    args.wide_codes = false;
    args.k = 10;
    args.sq_lut_max_abs = 64;
    args.use_square_lut = true;

    args.sq_lut_offset = mram.alloc(lut.size_bytes());
    mram.write(args.sq_lut_offset,
               {reinterpret_cast<const std::uint8_t*>(lut.raw().data()), lut.size_bytes()});
    args.codebooks_offset = mram.alloc(codebooks.size() * 2);
    mram.write(args.codebooks_offset,
               {reinterpret_cast<const std::uint8_t*>(codebooks.data()), codebooks.size() * 2});
    args.centroids_offset = mram.alloc(centroid.size() * 2);
    mram.write(args.centroids_offset,
               {reinterpret_cast<const std::uint8_t*>(centroid.data()), centroid.size() * 2});

    ShardRegion region;
    region.size = 3;
    region.cluster = 0;
    region.codes_offset = mram.alloc(codes.size());
    mram.write(region.codes_offset, codes);
    region.ids_offset = mram.alloc(ids.size() * 4);
    mram.write(region.ids_offset,
               {reinterpret_cast<const std::uint8_t*>(ids.data()), ids.size() * 4});
    shards.push_back(region);

    args.queries_offset = mram.alloc(query.size() * 2);
    mram.write(args.queries_offset,
               {reinterpret_cast<const std::uint8_t*>(query.data()), query.size() * 2});
    args.output_offset = mram.alloc(args.k * sizeof(KernelHit));
  }

  /// Reference integer ADC distance of point i.
  std::uint32_t reference_distance(std::size_t i) const {
    std::uint32_t total = 0;
    for (std::size_t sub = 0; sub < 2; ++sub) {
      const std::uint8_t e = codes[i * 2 + sub];
      for (std::size_t d = 0; d < 2; ++d) {
        const std::int32_t res = query[sub * 2 + d] - centroid[sub * 2 + d];
        const std::int32_t cw = codebooks[(sub * 4 + e) * 2 + d];
        const std::int32_t diff = res - cw;
        total += static_cast<std::uint32_t>(diff * diff);
      }
    }
    return total;
  }

  std::vector<KernelHit> run() {
    dpu->reset_counters();
    DpuContext ctx = dpu->context();
    const KernelTask task{0, 0};
    run_search_kernel(ctx, args, shards, {&task, 1});
    std::vector<KernelHit> hits(args.k);
    dpu->mram().read(args.output_offset,
                     {reinterpret_cast<std::uint8_t*>(hits.data()),
                      args.k * sizeof(KernelHit)});
    return hits;
  }
};

TEST(Kernel, DistancesMatchReferenceExactly) {
  TinyWorld world;
  const auto hits = world.run();

  // All three points returned (k=10 > 3), sorted ascending, exact distances.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> expect;  // (dist, id)
  for (std::size_t i = 0; i < 3; ++i) {
    expect.push_back({world.reference_distance(i), world.ids[i]});
  }
  std::sort(expect.begin(), expect.end());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hits[i].dist, expect[i].first) << "rank " << i;
    EXPECT_EQ(hits[i].id, expect[i].second) << "rank " << i;
  }
}

TEST(Kernel, PadsShortShardWithSentinels) {
  TinyWorld world;
  const auto hits = world.run();
  for (std::size_t i = 3; i < world.args.k; ++i) {
    EXPECT_EQ(hits[i].dist, 0xFFFFFFFFu);
    EXPECT_EQ(hits[i].id, 0xFFFFFFFFu);
  }
}

TEST(Kernel, ChargesPhasesSeparately) {
  TinyWorld world;
  world.run();
  const DpuCounters& c = world.dpu->counters();
  EXPECT_GT(c.at(Phase::RC).instr_cycles, 0u);
  EXPECT_GT(c.at(Phase::LC).instr_cycles, 0u);
  EXPECT_GT(c.at(Phase::DC).instr_cycles, 0u);
  EXPECT_GT(c.at(Phase::TS).instr_cycles, 0u);
  EXPECT_EQ(c.at(Phase::CL).instr_cycles, 0u);  // CL runs on the host
  EXPECT_GT(c.at(Phase::LC).mram_bytes_read, 0u);  // codebook DMA
  EXPECT_GT(c.at(Phase::DC).mram_bytes_read, 0u);  // code stream
}

TEST(Kernel, SquareLutEliminatesLcMultiplies) {
  TinyWorld world;
  world.run();
  EXPECT_EQ(world.dpu->counters().at(Phase::LC).mul_count, 0u);

  world.args.use_square_lut = false;
  world.run();
  // 2 subs x 4 entries x 2 dims squares, all multiplies now.
  EXPECT_EQ(world.dpu->counters().at(Phase::LC).mul_count, 16u);
}

TEST(Kernel, ChargingIsDataIndependent) {
  // The squaring charge policy is determined by the args, not the operand
  // values: shrinking the table does not change any counter (the broadcast
  // table is sized to cover the full operand range in real runs, and keeping
  // the charge stream deterministic is what makes sim == analytic exact).
  TinyWorld world;
  world.run();
  const DpuCounters full = world.dpu->counters();

  world.args.sq_lut_max_abs = 2;  // tiny table; arithmetic still exact
  const auto hits = world.run();
  const DpuCounters& tiny = world.dpu->counters();
  EXPECT_EQ(tiny.at(Phase::LC).mul_count, 0u);
  EXPECT_EQ(tiny.at(Phase::LC).instr_cycles, full.at(Phase::LC).instr_cycles);
  EXPECT_EQ(tiny.at(Phase::TS).instr_cycles, full.at(Phase::TS).instr_cycles);

  // Distances stay exact regardless of the charging policy.
  std::vector<std::uint32_t> dists;
  for (std::size_t i = 0; i < 3; ++i) dists.push_back(world.reference_distance(i));
  std::sort(dists.begin(), dists.end());
  EXPECT_EQ(hits[0].dist, dists[0]);
}

TEST(Kernel, AnalyticTwinChargesExactlyEqualCounters) {
  // charge_search_kernel must reproduce run_search_kernel's per-phase
  // counters bit-for-bit: instruction cycles, DMA cycles, MRAM bytes, muls.
  for (const bool use_lut : {true, false}) {
    TinyWorld world;
    world.args.use_square_lut = use_lut;
    world.run();  // functional counters in world.dpu

    Dpu twin(world.cfg);
    DpuContext ctx = twin.context();
    const KernelTask task{0, 0};
    charge_search_kernel(ctx, world.args, world.shards, {&task, 1});

    const DpuCounters& a = world.dpu->counters();
    const DpuCounters& b = twin.counters();
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      const auto ph = static_cast<Phase>(p);
      EXPECT_EQ(a.at(ph).instr_cycles, b.at(ph).instr_cycles) << phase_name(ph);
      EXPECT_EQ(a.at(ph).mul_count, b.at(ph).mul_count) << phase_name(ph);
      EXPECT_EQ(a.at(ph).mram_bytes_read, b.at(ph).mram_bytes_read) << phase_name(ph);
      EXPECT_EQ(a.at(ph).mram_bytes_written, b.at(ph).mram_bytes_written) << phase_name(ph);
      EXPECT_DOUBLE_EQ(a.at(ph).dma_cycles, b.at(ph).dma_cycles) << phase_name(ph);
    }
  }
}

TEST(Kernel, MultiplyPathCostsMoreCycles) {
  TinyWorld world;
  world.run();
  const std::uint64_t lut_cycles = world.dpu->counters().at(Phase::LC).instr_cycles;
  world.args.use_square_lut = false;
  world.run();
  const std::uint64_t mul_cycles = world.dpu->counters().at(Phase::LC).instr_cycles;
  EXPECT_GT(mul_cycles, lut_cycles);
}

TEST(Kernel, WramBudgetEnforced) {
  TinyWorld world;
  world.cfg.wram_bytes = 64;  // absurdly small
  Dpu tiny_dpu(world.cfg);
  DpuContext ctx = tiny_dpu.context();
  const KernelTask task{0, 0};
  EXPECT_THROW(run_search_kernel(ctx, world.args, world.shards, {&task, 1}),
               std::runtime_error);
}

TEST(Kernel, EmptyTaskListIsNoop) {
  TinyWorld world;
  DpuContext ctx = world.dpu->context();
  run_search_kernel(ctx, world.args, world.shards, {});
  EXPECT_EQ(world.dpu->counters().at(Phase::LC).instr_cycles, 0u);
}

}  // namespace
}  // namespace drim
