// Tests for the Gaussian process and the Bayesian-optimization DSE.

#include <gtest/gtest.h>

#include <cmath>

#include "model/dse.hpp"
#include "model/gp.hpp"

namespace drim {
namespace {

TEST(GaussianProcess, InterpolatesTrainingPoints) {
  GaussianProcess gp(1);
  const std::vector<double> x = {0.0, 0.5, 1.0};
  const std::vector<double> y = {0.0, 1.0, 0.0};
  gp.fit(x, y);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto p = gp.predict({x[i]});
    EXPECT_NEAR(p.mean, y[i], 0.05);
    EXPECT_LT(p.variance, 0.01);
  }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp(1);
  gp.fit({0.0, 0.1}, {1.0, 1.0});
  const auto near = gp.predict({0.05});
  const auto far = gp.predict({0.9});
  EXPECT_LT(near.variance, far.variance);
}

TEST(GaussianProcess, EmptyPriorIsSignalVariance) {
  GaussianProcess gp(2, 0.3, 1.5);
  const auto p = gp.predict({0.5, 0.5});
  EXPECT_DOUBLE_EQ(p.variance, 1.5);
}

TEST(GaussianProcess, SmoothFunctionRegression) {
  GaussianProcess gp(1, 0.25);
  std::vector<double> x, y;
  for (int i = 0; i <= 10; ++i) {
    x.push_back(i / 10.0);
    y.push_back(std::sin(i / 10.0 * 3.0));
  }
  gp.fit(x, y);
  const auto p = gp.predict({0.55});
  EXPECT_NEAR(p.mean, std::sin(0.55 * 3.0), 0.1);
}

TEST(Dse, DefaultSpaceCoversNlistRange) {
  const DseSpace space = make_default_space(1e8, 12, 16);
  ASSERT_EQ(space.C.size(), 5u);
  EXPECT_NEAR(space.C.front(), 1e8 / 65536.0, 1.0);
  EXPECT_NEAR(space.C.back(), 1e8 / 4096.0, 1.0);
  EXPECT_TRUE(std::is_sorted(space.C.begin(), space.C.end()));
}

/// Synthetic accuracy surface: recall rises with P, M, CB and falls with C.
double fake_accuracy(const DseCandidate& c) {
  const double score = 0.25 * std::log2(c.P) / 7.0 + 0.3 * std::log2(c.M) / 5.0 +
                       0.3 * std::log2(c.CB) / 9.0 + 0.15 * (1.0 - std::log2(c.C) / 15.0);
  return std::min(1.0, std::max(0.0, score * 1.4));
}

TEST(Dse, FindsFeasibleConfiguration) {
  const AnnWorkload w;
  const DseSpace space = make_default_space(w.N, 12, 16);
  std::size_t calls = 0;
  const DseResult r = run_dse(
      w, space, cpu_platform(), upmem_platform(), 0.8,
      [&](const DseCandidate& c) {
        ++calls;
        return fake_accuracy(c);
      },
      24);
  EXPECT_TRUE(r.found_feasible);
  EXPECT_GE(r.best_accuracy, 0.8);
  EXPECT_LE(calls, 24u);
  EXPECT_EQ(r.history.size(), calls);
}

TEST(Dse, BestIsFastestAmongMeasuredFeasible) {
  const AnnWorkload w;
  const DseSpace space = make_default_space(w.N, 13, 15);
  const DseResult r = run_dse(w, space, cpu_platform(), upmem_platform(), 0.8,
                              fake_accuracy, 20);
  ASSERT_TRUE(r.found_feasible);
  for (const DseObservation& obs : r.history) {
    if (obs.feasible) {
      EXPECT_LE(r.best_seconds, obs.model_seconds + 1e-12);
    }
  }
}

TEST(Dse, RespectsSmallBudget) {
  const AnnWorkload w;
  const DseSpace space = make_default_space(w.N, 12, 16);
  std::size_t calls = 0;
  run_dse(w, space, cpu_platform(), upmem_platform(), 0.8,
          [&](const DseCandidate& c) {
            ++calls;
            return fake_accuracy(c);
          },
          4);
  EXPECT_LE(calls, 4u);
}

TEST(Dse, ImpossibleConstraintReportsInfeasible) {
  const AnnWorkload w;
  const DseSpace space = make_default_space(w.N, 13, 14);
  const DseResult r = run_dse(w, space, cpu_platform(), upmem_platform(), 2.0,
                              fake_accuracy, 10);
  EXPECT_FALSE(r.found_feasible);
  EXPECT_FALSE(r.history.empty());
}

TEST(Dse, BeatsGreedyOnlyBaseline) {
  // With a reasonable budget, BO should find a config no slower than the
  // first feasible greedy hit (it keeps exploring cheaper candidates).
  const AnnWorkload w;
  const DseSpace space = make_default_space(w.N, 12, 16);
  const DseResult full = run_dse(w, space, cpu_platform(), upmem_platform(), 0.8,
                                 fake_accuracy, 24);
  ASSERT_TRUE(full.found_feasible);
  // First feasible observation = what greedy alone would return.
  double greedy_seconds = -1.0;
  for (const DseObservation& obs : full.history) {
    if (obs.feasible) {
      greedy_seconds = obs.model_seconds;
      break;
    }
  }
  ASSERT_GE(greedy_seconds, 0.0);
  EXPECT_LE(full.best_seconds, greedy_seconds + 1e-12);
}

}  // namespace
}  // namespace drim
