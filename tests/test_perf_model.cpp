// Tests for the Eq. (1)-(12) performance model and platform presets.

#include <gtest/gtest.h>

#include <cmath>

#include "model/perf_model.hpp"

namespace drim {
namespace {

AnnWorkload paper_workload() {
  AnnWorkload w;  // defaults mirror SIFT100M with nlist = 2^16
  return w;
}

TEST(PerfModel, PhaseCostsPositive) {
  const auto costs = phase_costs(paper_workload());
  for (const PhaseCost& c : costs) {
    EXPECT_GT(c.compute_ops, 0.0);
    EXPECT_GT(c.total_io_bytes(), 0.0);
  }
}

TEST(PerfModel, Eq1ClVerbatim) {
  AnnWorkload w = paper_workload();
  const auto costs = phase_costs(w);
  const double nlist = w.N / w.C;
  const double logP = std::log2(w.P);
  const double expect = w.Q * nlist * ((w.D * 3.0 - 1.0) + (logP - 1.0));
  EXPECT_DOUBLE_EQ(costs[static_cast<int>(AnnPhase::CL)].compute_ops, expect);
}

TEST(PerfModel, Eq3RcVerbatim) {
  AnnWorkload w = paper_workload();
  const auto costs = phase_costs(w);
  EXPECT_DOUBLE_EQ(costs[static_cast<int>(AnnPhase::RC)].compute_ops, w.Q * w.P * w.D);
  EXPECT_DOUBLE_EQ(costs[static_cast<int>(AnnPhase::RC)].io_bytes,
                   (w.Bc + w.Bq) * w.Q * w.P * w.D / 8.0);
}

TEST(PerfModel, Eq7DcVerbatim) {
  AnnWorkload w = paper_workload();
  const auto costs = phase_costs(w);
  EXPECT_DOUBLE_EQ(costs[static_cast<int>(AnnPhase::DC)].compute_ops,
                   w.Q * w.P * w.C * (w.M - 1.0));
  // Eq. (8) traffic is the cache-served LUT portion; the code stream itself
  // (a documented extension, M * Bp bits per point) is the memory portion.
  EXPECT_DOUBLE_EQ(costs[static_cast<int>(AnnPhase::DC)].cache_io_bytes,
                   w.Q * w.P * w.C * (w.M * (w.Ba + w.Bl) + w.Bl) / 8.0);
  EXPECT_DOUBLE_EQ(costs[static_cast<int>(AnnPhase::DC)].io_bytes,
                   w.Q * w.P * w.C * w.M * w.Bp / 8.0);
}

TEST(PerfModel, CacheModelingSpeedsUpCpuLc) {
  AnnWorkload w = paper_workload();
  PlatformParams cpu = cpu_platform();
  PlatformParams no_cache = cpu;
  no_cache.cache_bandwidth_Bps = 0.0;
  const auto costs = phase_costs(w);
  const auto lc = static_cast<int>(AnnPhase::LC);
  EXPECT_LT(phase_time(costs[lc], cpu), phase_time(costs[lc], no_cache));
}

TEST(PerfModel, MultiplierLessZeroesLcMultiplies) {
  AnnWorkload w = paper_workload();
  const auto converted = phase_costs(w, /*multiplier_less=*/true);
  const auto mult = phase_costs(w, /*multiplier_less=*/false);
  const auto lc = static_cast<int>(AnnPhase::LC);
  EXPECT_DOUBLE_EQ(converted[lc].mul_ops, 0.0);
  EXPECT_GT(mult[lc].mul_ops, 0.0);
  // Only LC changes; base op counts stay verbatim.
  for (int p = 0; p < static_cast<int>(kAnnPhases); ++p) {
    EXPECT_DOUBLE_EQ(mult[p].compute_ops, converted[p].compute_ops);
  }
}

TEST(PerfModel, MulPremiumHitsUpmemNotCpu) {
  AnnWorkload w = paper_workload();
  const auto lc = static_cast<int>(AnnPhase::LC);
  const auto converted = phase_costs(w, true)[lc];
  const auto mult = phase_costs(w, false)[lc];
  // UPMEM (no hardware multiplier): conversion is a big win.
  const PlatformParams pim = upmem_platform();
  EXPECT_GT(phase_time(mult, pim), phase_time(converted, pim) * 3.0);
  // CPU (hardware multiplier): conversion is a no-op for the model.
  const PlatformParams cpu = cpu_platform();
  EXPECT_DOUBLE_EQ(phase_time(mult, cpu), phase_time(converted, cpu));
}

TEST(PerfModel, C2ioDefinition) {
  PhaseCost c;
  c.compute_ops = 10;
  c.io_bytes = 5;
  EXPECT_DOUBLE_EQ(c.c2io(), 2.0);
}

TEST(PerfModel, Eq11TimeIsMaxOfComputeAndIo) {
  PhaseCost c;
  c.compute_ops = 1e9;
  c.io_bytes = 1.0;
  PlatformParams p;
  p.frequency_hz = 1e9;
  p.pe = 1;
  p.bandwidth_Bps = 1e9;
  EXPECT_DOUBLE_EQ(phase_time(c, p), 1.0);  // compute-bound

  c.compute_ops = 1.0;
  c.io_bytes = 2e9;
  EXPECT_DOUBLE_EQ(phase_time(c, p), 2.0);  // IO-bound
}

TEST(PerfModel, PipelineOverlapTakesMax) {
  const AnnWorkload w = paper_workload();
  const ModelEstimate est = estimate(w, cpu_platform(), upmem_platform());
  EXPECT_DOUBLE_EQ(est.total_seconds(), std::max(est.host_seconds, est.pim_seconds));
  EXPECT_GT(est.host_seconds, 0.0);
  EXPECT_GT(est.pim_seconds, 0.0);
}

TEST(PerfModel, DefaultPlacementPutsOnlyClOnHost) {
  const AnnWorkload w = paper_workload();
  const Placement placement;
  EXPECT_TRUE(placement.on_host[static_cast<int>(AnnPhase::CL)]);
  for (int p = 1; p < static_cast<int>(kAnnPhases); ++p) {
    EXPECT_FALSE(placement.on_host[p]);
  }
  const ModelEstimate est = estimate(w, cpu_platform(), upmem_platform(), placement);
  EXPECT_DOUBLE_EQ(est.host_seconds, est.phase_seconds[static_cast<int>(AnnPhase::CL)]);
}

TEST(PerfModel, UpmemComputeScaleShortensComputeBoundPhases) {
  AnnWorkload w = paper_workload();
  const double base =
      estimate(w, cpu_platform(), upmem_platform(1.0)).pim_seconds;
  const double fast =
      estimate(w, cpu_platform(), upmem_platform(5.0)).pim_seconds;
  EXPECT_LT(fast, base);
}

TEST(PerfModel, CpuIsMemoryBoundAtBalancedSettings) {
  // The Fig. 2 claim: practical Faiss-CPU settings sit in the memory-bound
  // region, i.e. arithmetic intensity below the machine balance point.
  AnnWorkload w = paper_workload();
  const PlatformParams cpu = cpu_platform();
  const double machine_balance =
      cpu.frequency_hz * cpu.pe / cpu.bandwidth_Bps;  // ops per byte at the ridge
  for (double c : {1526.0, 6103.0, 24414.0}) {   // nlist 2^16 .. 2^12
    w.C = c;
    EXPECT_LT(arithmetic_intensity(w, false), machine_balance)
        << "C=" << c << " should be memory-bound on CPU";
  }
}

TEST(PerfModel, GpuPlatformFasterThanCpu) {
  const AnnWorkload w = paper_workload();
  EXPECT_LT(estimate_single(w, gpu_platform()), estimate_single(w, cpu_platform()));
}

TEST(PerfModel, PhaseNames) {
  EXPECT_EQ(ann_phase_name(AnnPhase::CL), "CL");
  EXPECT_EQ(ann_phase_name(AnnPhase::TS), "TS");
}

class NprobeScalingTest : public ::testing::TestWithParam<double> {};

TEST_P(NprobeScalingTest, PimTimeGrowsWithNprobe) {
  AnnWorkload w = paper_workload();
  w.P = GetParam();
  const double t1 = estimate(w, cpu_platform(), upmem_platform()).pim_seconds;
  w.P = GetParam() * 2;
  const double t2 = estimate(w, cpu_platform(), upmem_platform()).pim_seconds;
  EXPECT_GT(t2, t1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NprobeScalingTest, ::testing::Values(16.0, 32.0, 64.0));

}  // namespace
}  // namespace drim
