// Cross-backend thread_local scratch audit (PR 6 satellite): under the
// persistent executor the same worker threads serve every backend in one
// process, so per-thread scratch sized by one backend (BoundedTopK heap
// buffers, the engine's stamped dedup maps) is reused by the next with a
// different k and staging shape. Running DrimBackend then CpuBackend then
// DrimBackend again on the same pool must keep every backend's results
// identical to a fresh single-backend run.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "backend/backend_factory.hpp"
#include "common/parallel.hpp"
#include "data/synthetic.hpp"

namespace drim {
namespace {

using Results = std::vector<std::vector<Neighbor>>;

void expect_identical(const Results& a, const Results& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t q = 0; q < a.size(); ++q) {
    ASSERT_EQ(a[q].size(), b[q].size()) << what << " q=" << q;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      ASSERT_EQ(a[q][i].id, b[q][i].id) << what << " q=" << q << " i=" << i;
      ASSERT_EQ(a[q][i].dist, b[q][i].dist) << what << " q=" << q << " i=" << i;
    }
  }
}

TEST(ScratchReuse, BackendsInterleaveOnTheSamePool) {
  SyntheticSpec spec;
  spec.num_base = 6000;
  spec.num_queries = 24;
  spec.num_learn = 2000;
  spec.dim = 32;
  spec.num_components = 24;
  const SyntheticData data = make_sift_like(spec);

  IvfPqParams p;
  p.nlist = 32;
  p.pq.m = 8;
  p.pq.cb_entries = 16;
  IvfPqIndex index;
  index.train(data.learn, p);
  index.add(data.base);

  DrimEngineOptions drim_opts;
  drim_opts.pim.num_dpus = 8;
  drim_opts.pim.mram_bytes = 1 << 20;
  drim_opts.batch_size = 8;

  // Deliberately different k per backend so scratch sized for one does not
  // fit the other by accident; run with a capped pool so the same few
  // threads serve everything.
  const int saved = num_threads();
  set_num_threads(4);

  auto drim_backend = make_backend(BackendKind::kDrim, index, data.learn, drim_opts);
  auto cpu_backend = make_backend(BackendKind::kCpu, index, data.learn, drim_opts);

  const Results drim_big = drim_backend->search(data.queries, 20, 8);
  const Results cpu_small = cpu_backend->search(data.queries, 3, 8);
  const Results drim_small = drim_backend->search(data.queries, 5, 8);
  const Results cpu_big = cpu_backend->search(data.queries, 20, 8);

  // Fresh backends, same pool: any stale-capacity contamination from the
  // interleaved sequence above would show up as a mismatch here.
  auto drim_fresh = make_backend(BackendKind::kDrim, index, data.learn, drim_opts);
  auto cpu_fresh = make_backend(BackendKind::kCpu, index, data.learn, drim_opts);
  expect_identical(drim_fresh->search(data.queries, 20, 8), drim_big, "drim k=20");
  expect_identical(drim_fresh->search(data.queries, 5, 8), drim_small, "drim k=5");
  expect_identical(cpu_fresh->search(data.queries, 3, 8), cpu_small, "cpu k=3");
  expect_identical(cpu_fresh->search(data.queries, 20, 8), cpu_big, "cpu k=20");

  set_num_threads(saved);
}

}  // namespace
}  // namespace drim
