// Tests for the parallel host simulation loop: run_batch fans DPU kernels
// out across host threads, staging/collection run concurrently, and the
// engine must nevertheless produce byte-identical results, cycle counters,
// and BatchResult timings at every thread count. Also covers the batch-time
// accounting fixes: one-time index-load transfer draining and per-k Eq. 15
// scheduler coefficients.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/parallel.hpp"
#include "data/synthetic.hpp"
#include "drim/engine.hpp"
#include "pim/pim_system.hpp"

namespace drim {
namespace {

PimConfig small_config(std::size_t dpus) {
  PimConfig cfg;
  cfg.num_dpus = dpus;
  cfg.mram_bytes = 1 << 20;
  return cfg;
}

/// Run `fn` with the OpenMP pool capped at `threads`, restoring after.
template <typename Fn>
auto with_threads(int threads, const Fn& fn) {
  const int saved = num_threads();
  set_num_threads(threads);
  auto result = fn();
  set_num_threads(saved);
  return result;
}

void expect_counters_equal(const DpuCounters& a, const DpuCounters& b) {
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    EXPECT_EQ(a.phases[p].instr_cycles, b.phases[p].instr_cycles);
    EXPECT_DOUBLE_EQ(a.phases[p].dma_cycles, b.phases[p].dma_cycles);
    EXPECT_EQ(a.phases[p].mram_bytes_read, b.phases[p].mram_bytes_read);
    EXPECT_EQ(a.phases[p].mram_bytes_written, b.phases[p].mram_bytes_written);
    EXPECT_EQ(a.phases[p].mul_count, b.phases[p].mul_count);
  }
}

// ---- PimSystem-level determinism ----

BatchResult run_mixed_batch(PimSystem& sys) {
  const std::size_t n = sys.num_dpus();
  std::vector<std::uint8_t> staged(64, 0x5A);
  for (std::size_t d = 0; d < n; ++d) sys.push(d, 0, staged);
  return sys.run_batch(
      [](std::size_t d, DpuContext& ctx) {
        ctx.set_phase(Phase::DC);
        ctx.charge_adds(100 * (d + 1));
        ctx.charge_muls(d);
        std::vector<std::uint8_t> buf(64);
        ctx.mram_read(0, buf);
        buf[0] = static_cast<std::uint8_t>(d);
        ctx.mram_write(128, buf);
      },
      [&]() {
        parallel_for(0, n, [&](std::size_t d) {
          std::vector<std::uint8_t> out(64);
          sys.pull(d, 128, out);
        });
      });
}

TEST(ParallelBatch, TimingsAndCountersMatchSerial) {
  PimSystem par(small_config(32)), ser(small_config(32));
  const BatchResult a = with_threads(4, [&] { return run_mixed_batch(par); });
  const BatchResult b = with_threads(1, [&] { return run_mixed_batch(ser); });

  ASSERT_EQ(a.per_dpu_seconds.size(), b.per_dpu_seconds.size());
  for (std::size_t d = 0; d < a.per_dpu_seconds.size(); ++d) {
    EXPECT_DOUBLE_EQ(a.per_dpu_seconds[d], b.per_dpu_seconds[d]);
  }
  EXPECT_DOUBLE_EQ(a.dpu_seconds, b.dpu_seconds);
  EXPECT_DOUBLE_EQ(a.transfer_in_seconds, b.transfer_in_seconds);
  EXPECT_DOUBLE_EQ(a.transfer_out_seconds, b.transfer_out_seconds);
  for (std::size_t d = 0; d < 32; ++d) {
    expect_counters_equal(par.dpu(d).counters(), ser.dpu(d).counters());
  }
}

TEST(ParallelBatch, MramContentsMatchSerial) {
  PimSystem par(small_config(16)), ser(small_config(16));
  with_threads(4, [&] { return run_mixed_batch(par); });
  with_threads(1, [&] { return run_mixed_batch(ser); });
  for (std::size_t d = 0; d < 16; ++d) {
    std::uint8_t a[64], b[64];
    par.dpu(d).mram().read(128, a);
    ser.dpu(d).mram().read(128, b);
    EXPECT_TRUE(std::equal(std::begin(a), std::end(a), std::begin(b)));
  }
}

TEST(ParallelBatch, KernelExceptionPropagates) {
  PimSystem sys(small_config(8));
  EXPECT_THROW(sys.run_batch([](std::size_t d, DpuContext&) {
                 if (d == 5) throw std::runtime_error("kernel failure");
               }),
               std::runtime_error);
}

// ---- transfer accounting ----

TEST(TransferAccounting, DrainBillsPendingBytesOutsideBatches) {
  PimConfig cfg = small_config(2);
  cfg.host_link_bytes_per_sec = 1000.0;
  PimSystem sys(cfg);
  const std::size_t off = sys.alloc_symmetric(512);
  std::vector<std::uint8_t> data(500);
  sys.push(0, off, data);
  EXPECT_NEAR(sys.drain_pending_transfer(), 0.5, 1e-12);
  // The drained bytes must not leak into the next batch.
  const BatchResult r = sys.run_batch([](std::size_t, DpuContext&) {});
  EXPECT_DOUBLE_EQ(r.transfer_in_seconds, 0.0);
  // An empty drain bills nothing.
  EXPECT_DOUBLE_EQ(sys.drain_pending_transfer(), 0.0);
}

class ParallelEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec;
    spec.num_base = 5000;
    spec.num_queries = 48;
    spec.num_learn = 2000;
    spec.num_components = 32;
    data_ = new SyntheticData(make_sift_like(spec));

    IvfPqParams p;
    p.nlist = 32;
    p.pq.m = 16;
    p.pq.cb_entries = 32;
    index_ = new IvfPqIndex();
    index_->train(data_->learn, p);
    index_->add(data_->base);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete index_;
  }

  static DrimEngineOptions default_options() {
    DrimEngineOptions o;
    o.pim.num_dpus = 16;
    o.layout.split_threshold = 128;
    o.heat_nprobe = 8;
    o.batch_size = 12;  // several batches, filter carry-over active
    return o;
  }

  static SyntheticData* data_;
  static IvfPqIndex* index_;
};

SyntheticData* ParallelEngineTest::data_ = nullptr;
IvfPqIndex* ParallelEngineTest::index_ = nullptr;

struct EngineRun {
  std::vector<std::vector<Neighbor>> results;
  DrimSearchStats stats;
};

EngineRun run_engine(const IvfPqIndex& index, const SyntheticData& data,
                     const DrimEngineOptions& options, std::size_t k,
                     std::size_t nprobe) {
  EngineRun run;
  DrimAnnEngine engine(index, data.learn, options);
  run.results = engine.search(data.queries, k, nprobe, &run.stats);
  return run;
}

void expect_runs_identical(const EngineRun& a, const EngineRun& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t q = 0; q < a.results.size(); ++q) {
    ASSERT_EQ(a.results[q].size(), b.results[q].size());
    for (std::size_t i = 0; i < a.results[q].size(); ++i) {
      EXPECT_EQ(a.results[q][i].id, b.results[q][i].id);
      EXPECT_EQ(a.results[q][i].dist, b.results[q][i].dist);
    }
  }
  EXPECT_DOUBLE_EQ(a.stats.total_seconds, b.stats.total_seconds);
  EXPECT_DOUBLE_EQ(a.stats.dpu_busy_seconds, b.stats.dpu_busy_seconds);
  EXPECT_DOUBLE_EQ(a.stats.transfer_in_seconds, b.stats.transfer_in_seconds);
  EXPECT_DOUBLE_EQ(a.stats.transfer_out_seconds, b.stats.transfer_out_seconds);
  EXPECT_DOUBLE_EQ(a.stats.index_load_seconds, b.stats.index_load_seconds);
  ASSERT_EQ(a.stats.per_dpu_seconds.size(), b.stats.per_dpu_seconds.size());
  for (std::size_t d = 0; d < a.stats.per_dpu_seconds.size(); ++d) {
    EXPECT_DOUBLE_EQ(a.stats.per_dpu_seconds[d], b.stats.per_dpu_seconds[d]);
  }
  expect_counters_equal(a.stats.counters, b.stats.counters);
  EXPECT_EQ(a.stats.tasks, b.stats.tasks);
  EXPECT_EQ(a.stats.batches, b.stats.batches);
}

TEST_F(ParallelEngineTest, SearchIsBitIdenticalAcrossThreadCounts) {
  const EngineRun par = with_threads(
      4, [&] { return run_engine(*index_, *data_, default_options(), 10, 8); });
  const EngineRun ser = with_threads(
      1, [&] { return run_engine(*index_, *data_, default_options(), 10, 8); });
  expect_runs_identical(par, ser);
}

TEST_F(ParallelEngineTest, ClOnPimIsBitIdenticalAcrossThreadCounts) {
  DrimEngineOptions o = default_options();
  o.cl_on_pim = true;
  const EngineRun par =
      with_threads(4, [&] { return run_engine(*index_, *data_, o, 10, 8); });
  const EngineRun ser =
      with_threads(1, [&] { return run_engine(*index_, *data_, o, 10, 8); });
  expect_runs_identical(par, ser);
}

// ---- regression: Eq. 15 coefficients follow the actual search k ----

TEST(SchedulerParamsK, TsTermGrowsWithK) {
  const PimConfig cfg;
  const SchedulerParams k10 = derive_scheduler_params(cfg, 128, 16, 32, 10, true);
  const SchedulerParams k1000 = derive_scheduler_params(cfg, 128, 16, 32, 1000, true);
  EXPECT_GT(k1000.l_sortu, k10.l_sortu);
  EXPECT_DOUBLE_EQ(k1000.l_lut, k10.l_lut);    // TS-only dependence on k
  EXPECT_DOUBLE_EQ(k1000.l_calu, k10.l_calu);
}

TEST_F(ParallelEngineTest, SchedulerParamsFollowSearchK) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  const auto& d = engine.data();
  const PimConfig& cfg = engine.options().pim;

  engine.search(data_->queries, 40, 8);
  const SchedulerParams k40 = derive_scheduler_params(
      cfg, d.dim(), d.m(), d.cb_entries(), 40, engine.options().use_square_lut);
  EXPECT_DOUBLE_EQ(engine.options().scheduler.l_sortu, k40.l_sortu);

  engine.search(data_->queries, 10, 8);
  const SchedulerParams k10 = derive_scheduler_params(
      cfg, d.dim(), d.m(), d.cb_entries(), 10, engine.options().use_square_lut);
  EXPECT_DOUBLE_EQ(engine.options().scheduler.l_sortu, k10.l_sortu);
  EXPECT_NE(k40.l_sortu, k10.l_sortu);
}

// ---- regression: static index upload is not billed to the first batch ----

TEST_F(ParallelEngineTest, FirstBatchNotBilledForIndexUpload) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  EXPECT_GT(engine.index_load_seconds(), 0.0);

  DrimSearchStats first, second;
  engine.search(data_->queries, 10, 8, &first);
  engine.search(data_->queries, 10, 8, &second);
  // Identical query batches stage identical bytes; before the fix the first
  // search additionally carried the whole static index transfer.
  EXPECT_DOUBLE_EQ(first.transfer_in_seconds, second.transfer_in_seconds);
  EXPECT_DOUBLE_EQ(first.total_seconds, second.total_seconds);
  EXPECT_DOUBLE_EQ(first.index_load_seconds, engine.index_load_seconds());
  EXPECT_DOUBLE_EQ(second.index_load_seconds, engine.index_load_seconds());
  // The reported load seconds are exactly the static bytes (square LUT,
  // codebooks, centroids, per-shard codes + ids) over the host link.
  const auto& d = engine.data();
  std::uint64_t static_bytes = engine.square_lut().size_bytes() +
                               d.codebooks().size() * 2 + d.centroids().size() * 2;
  for (const Shard& sh : engine.layout().shards()) {
    static_bytes += static_cast<std::uint64_t>(sh.size()) *
                    (d.code_size() + sizeof(std::uint32_t));
  }
  EXPECT_DOUBLE_EQ(
      first.index_load_seconds,
      static_cast<double>(static_bytes) / engine.options().pim.host_link_bytes_per_sec);
}

// ---- ranged scheduling matches the old whole-table semantics ----

TEST_F(ParallelEngineTest, RangedScheduleMatchesMaskedCopy) {
  DrimAnnEngine engine(*index_, data_->learn, default_options());
  const DataLayout& layout = engine.layout();
  RuntimeScheduler sched(layout, engine.options().scheduler);

  std::vector<std::vector<std::uint32_t>> probes(data_->queries.count());
  for (std::size_t q = 0; q < probes.size(); ++q) {
    probes[q] = index_->locate_clusters(data_->queries.row(q), 8);
  }
  const std::size_t begin = 10, end = 30;
  std::vector<std::vector<std::uint32_t>> masked(probes.size());
  for (std::size_t q = begin; q < end; ++q) masked[q] = probes[q];

  const Assignment ranged = sched.schedule(probes, begin, end, {}, true);
  const Assignment copied = sched.schedule(masked, {}, true);
  ASSERT_EQ(ranged.per_dpu.size(), copied.per_dpu.size());
  for (std::size_t d = 0; d < ranged.per_dpu.size(); ++d) {
    ASSERT_EQ(ranged.per_dpu[d].size(), copied.per_dpu[d].size());
    for (std::size_t t = 0; t < ranged.per_dpu[d].size(); ++t) {
      EXPECT_EQ(ranged.per_dpu[d][t].query, copied.per_dpu[d][t].query);
      EXPECT_EQ(ranged.per_dpu[d][t].shard, copied.per_dpu[d][t].shard);
    }
    EXPECT_DOUBLE_EQ(ranged.predicted_load[d], copied.predicted_load[d]);
  }
}

}  // namespace
}  // namespace drim
