#pragma once
// Faiss-CPU-style baseline: multithreaded IVF-PQ ADC search over the host's
// cores. This is the comparator the paper measures DRIM-ANN against (32-thread
// Faiss-CPU with AVX2; here the compiler vectorizes the scalar kernels and
// OpenMP provides the threading). Per-phase wall-clock accounting feeds the
// Fig. 2 roofline and the speedup comparisons.

#include <cstdint>
#include <vector>

#include "core/ivf.hpp"
#include "data/dataset.hpp"

namespace drim {

/// Aggregate timing/volume statistics for one batch search. DC and TS are
/// interleaved per code on the CPU (push directly follows the ADC sum), so
/// they are measured together as `scan_seconds`; the DPU-side breakdown in
/// Fig. 8 comes from the simulator's exact cycle counters instead.
struct CpuSearchStats {
  double cl_seconds = 0.0;   ///< cluster locating
  double rc_seconds = 0.0;   ///< residual calculation
  double lc_seconds = 0.0;   ///< LUT construction
  double scan_seconds = 0.0; ///< distance calculation + top-k (DC + TS)
  double wall_seconds = 0.0; ///< end-to-end batch wall time
  std::size_t codes_scanned = 0;  ///< total (query, point) ADC evaluations
  std::size_t queries = 0;

  double qps() const { return wall_seconds > 0 ? queries / wall_seconds : 0.0; }
  /// Sum of per-phase thread-time (>= wall when multithreaded).
  double phase_total() const {
    return cl_seconds + rc_seconds + lc_seconds + scan_seconds;
  }
};

/// Batch searcher over a trained index.
class CpuIvfPq {
 public:
  explicit CpuIvfPq(const IvfPqIndex& index) : index_(index) {}

  /// Search all queries with OpenMP parallelism over queries (Faiss's batch
  /// strategy). When `collect_phases` is set, per-phase times are accumulated
  /// (adds timer overhead, so benchmarks measuring pure throughput leave it
  /// off).
  std::vector<std::vector<Neighbor>> search_batch(const FloatMatrix& queries,
                                                  std::size_t k, std::size_t nprobe,
                                                  CpuSearchStats* stats = nullptr,
                                                  bool collect_phases = false) const;

 private:
  const IvfPqIndex& index_;
};

}  // namespace drim
