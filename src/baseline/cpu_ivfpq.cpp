#include "baseline/cpu_ivfpq.hpp"

#include <atomic>

#include "common/parallel.hpp"
#include "common/timer.hpp"

namespace drim {

std::vector<std::vector<Neighbor>> CpuIvfPq::search_batch(const FloatMatrix& queries,
                                                          std::size_t k, std::size_t nprobe,
                                                          CpuSearchStats* stats,
                                                          bool collect_phases) const {
  const std::size_t nq = queries.count();
  std::vector<std::vector<Neighbor>> results(nq);

  std::atomic<std::size_t> codes_scanned{0};
  // Phase accumulators in nanoseconds to keep atomic adds integral.
  std::atomic<std::uint64_t> cl_ns{0}, rc_ns{0}, lc_ns{0}, scan_ns{0};

  const IvfPqIndex& index = index_;
  const ProductQuantizer& pq = index.pq();

  WallTimer wall;
  parallel_for(0, nq, [&](std::size_t q) {
    std::vector<float> residual(index.dim());
    std::vector<float> lut(pq.m() * pq.cb_entries());
    std::vector<float> dists;
    TopK topk(k);
    std::size_t scanned = 0;
    WallTimer t;

    auto charge = [&](std::atomic<std::uint64_t>& acc) {
      if (collect_phases) {
        acc.fetch_add(static_cast<std::uint64_t>(t.seconds() * 1e9),
                      std::memory_order_relaxed);
        t.reset();
      }
    };

    t.reset();
    const std::vector<std::uint32_t> probes = index.locate_clusters(queries.row(q), nprobe);
    charge(cl_ns);

    for (std::uint32_t c : probes) {
      const InvertedList& list = index.list(c);
      if (list.size() == 0) continue;

      t.reset();
      index.query_residual(queries.row(q), c, residual);
      charge(rc_ns);

      pq.compute_adc_lut(residual, lut);
      charge(lc_ns);

      dists.resize(list.size());
      pq.adc_scan(lut, list.codes.data(), list.size(), dists.data());
      for (std::size_t i = 0; i < list.size(); ++i) {
        topk.push(dists[i], list.ids[i]);
      }
      charge(scan_ns);
      scanned += list.size();
    }
    results[q] = topk.take_sorted();
    codes_scanned.fetch_add(scanned, std::memory_order_relaxed);
  });

  if (stats != nullptr) {
    stats->wall_seconds = wall.seconds();
    stats->queries = nq;
    stats->codes_scanned = codes_scanned.load();
    stats->cl_seconds = cl_ns.load() * 1e-9;
    stats->rc_seconds = rc_ns.load() * 1e-9;
    stats->lc_seconds = lc_ns.load() * 1e-9;
    stats->scan_seconds = scan_ns.load() * 1e-9;
  }
  return results;
}

}  // namespace drim
