#include "serve/workload.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace drim::serve {

namespace {

/// Exponential inter-arrival draw at `rate` arrivals/sec.
double exp_interval(Rng& rng, double rate) {
  // 1 - u in (0, 1] so the log never sees zero.
  return -std::log(1.0 - rng.next_double()) / rate;
}

}  // namespace

std::vector<Request> generate_workload(std::size_t pool_size,
                                       const WorkloadParams& params) {
  if (pool_size == 0) throw std::invalid_argument("workload needs a non-empty query pool");
  if (params.offered_qps <= 0.0) throw std::invalid_argument("offered_qps must be > 0");
  if (params.k_choices.empty() || params.nprobe_choices.empty()) {
    throw std::invalid_argument("k_choices / nprobe_choices must be non-empty");
  }
  if (params.arrivals == ArrivalProcess::kOnOff &&
      (params.burst_on_fraction <= 0.0 || params.burst_on_fraction > 1.0 ||
       params.burst_period_s <= 0.0)) {
    throw std::invalid_argument("ON-OFF shape needs burst_on_fraction in (0,1] and a "
                                "positive burst_period_s");
  }

  Rng rng(params.seed);
  const ZipfSampler zipf(static_cast<std::uint32_t>(pool_size), params.query_skew);

  std::vector<Request> trace;
  trace.reserve(params.num_requests);

  // ON-OFF arrivals are Poisson on a compressed "ON-time" clock: cumulative
  // ON-seconds map back to wall time by re-inserting the OFF windows.
  const double on_len = params.burst_period_s * params.burst_on_fraction;
  const double on_rate = params.offered_qps / params.burst_on_fraction;
  double wall_s = 0.0;
  double on_s = 0.0;

  for (std::size_t i = 0; i < params.num_requests; ++i) {
    if (params.arrivals == ArrivalProcess::kPoisson) {
      wall_s += exp_interval(rng, params.offered_qps);
    } else {
      on_s += exp_interval(rng, on_rate);
      const double cycles = std::floor(on_s / on_len);
      wall_s = cycles * params.burst_period_s + (on_s - cycles * on_len);
    }
    Request r;
    r.id = i;
    r.arrival_s = wall_s;
    r.query = zipf(rng);
    r.k = params.k_choices[rng.next_below(params.k_choices.size())];
    r.nprobe = params.nprobe_choices[rng.next_below(params.nprobe_choices.size())];
    trace.push_back(r);
  }
  return trace;
}

}  // namespace drim::serve
