#pragma once
// Update-workload generation for the mutable-index serving path (DESIGN.md
// §14): a timestamped trace of insert/delete operations interleaved with a
// search trace on the same virtual clock, plus a brute-force oracle that
// tracks the evolving live set for recall / correctness checks. Everything
// is seeded, so an update run is reproducible bit-for-bit — the acceptance
// contract ("results after N update batches equal a cold offline build of
// the same logical state") only means anything on a deterministic trace.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/topk.hpp"
#include "data/dataset.hpp"
#include "serve/workload.hpp"

namespace drim::serve {

enum class UpdateKind : std::uint8_t { kInsert, kDelete };

/// One mutation as the serving layer sees it. For kInsert, `target` is the
/// row of UpdateTrace::insert_vectors to insert (the writer assigns the real
/// id); for kDelete, `target` is the id to tombstone (a miss — already
/// deleted or never existed — is a deterministic no-op, like a DELETE of an
/// absent key).
struct UpdateOp {
  double arrival_s = 0.0;
  UpdateKind kind = UpdateKind::kInsert;
  std::uint32_t target = 0;
};

/// A generated update stream: ops sorted by arrival, plus the payload
/// vectors the insert ops reference.
struct UpdateTrace {
  std::vector<UpdateOp> ops;
  FloatMatrix insert_vectors;  ///< row i backs the i-th insert op
};

struct UpdateWorkloadParams {
  /// Updates per search request (1% update rate = 0.01).
  double update_rate = 0.01;
  /// Fraction of updates that are inserts; the rest are deletes.
  double insert_fraction = 0.5;
  /// Zipf exponent over delete targets (0 = uniform): skewed deletes
  /// concentrate tombstones on low ids — the hot-cluster churn regime.
  double delete_skew = 0.0;
  std::uint64_t seed = 977;
};

/// Interleave `round(update_rate * searches.size())` mutations with a search
/// trace: arrival times are uniform draws over the search trace's span (then
/// sorted), each op is an insert with probability insert_fraction (payload
/// drawn uniformly from `insert_pool`) and otherwise a delete whose target
/// is Zipf-drawn from the id space [0, base_ntotal + inserts-so-far).
UpdateTrace generate_update_trace(const std::vector<Request>& searches,
                                  const FloatMatrix& insert_pool,
                                  std::size_t base_ntotal,
                                  const UpdateWorkloadParams& params);

/// Brute-force ground truth over the evolving live set. Apply the same ops
/// in the same order as the IndexWriter and ids line up exactly (inserts are
/// assigned sequentially from the base ntotal, matching the writer).
class UpdateOracle {
 public:
  /// The base corpus: ids 0..base.count()-1, all live.
  explicit UpdateOracle(const FloatMatrix& base);

  /// Apply one op; returns the id it affected (the assigned id for inserts).
  std::uint32_t apply(const UpdateOp& op, const FloatMatrix& insert_vectors);

  bool alive(std::uint32_t id) const { return id < dead_.size() && dead_[id] == 0; }
  std::size_t live_count() const { return live_count_; }

  /// Exact float-L2 top-k over the live set, ties broken toward lower id.
  std::vector<Neighbor> topk(std::span<const float> query, std::size_t k) const;

 private:
  FloatMatrix points_;               ///< id-indexed (base rows then inserts)
  std::vector<std::uint8_t> dead_;
  std::size_t live_count_ = 0;
};

}  // namespace drim::serve
