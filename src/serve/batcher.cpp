#include "serve/batcher.hpp"

#include <algorithm>

namespace drim::serve {

void DynamicBatcher::enqueue(const Request& request, double now_s) {
  queue_.push_back({request, now_s});
}

std::vector<Request> DynamicBatcher::take_batch() {
  const std::size_t n = std::min(queue_.size(), params_.max_batch);
  std::vector<Request> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(queue_.front().request);
    queue_.pop_front();
  }
  return batch;
}

}  // namespace drim::serve
