#pragma once
// Admission control for the serving runtime. At each arrival the runtime
// predicts the request's completion latency — current batch residual + the
// backlog's worth of batches, each priced by an EWMA of observed batch times
// seeded from the engine's Eq. 15 estimate — and the controller sheds the
// request when the prediction blows the SLO budget. Shedding early keeps the
// queue short, so admitted requests still finish inside the SLO and goodput
// holds near peak instead of collapsing past saturation.

#include <cstddef>

namespace drim::serve {

struct AdmissionParams {
  bool enabled = true;
  /// End-to-end latency budget. Predictions above slo_s * headroom shed.
  double slo_s = 10e-3;
  double headroom = 1.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionParams& params) : params_(params) {}

  const AdmissionParams& params() const { return params_; }

  /// Decide at arrival time. Counts the outcome either way.
  bool admit(double predicted_latency_s) {
    const bool ok =
        !params_.enabled || predicted_latency_s <= params_.slo_s * params_.headroom;
    if (ok) {
      ++admitted_;
    } else {
      ++shed_;
    }
    return ok;
  }

  std::size_t admitted() const { return admitted_; }
  std::size_t shed() const { return shed_; }

 private:
  AdmissionParams params_;
  std::size_t admitted_ = 0;
  std::size_t shed_ = 0;
};

}  // namespace drim::serve
