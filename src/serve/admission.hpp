#pragma once
// Admission control for the serving runtime. At each arrival the runtime
// predicts the request's completion latency — current batch residual + the
// backlog's worth of batches, each priced by an EWMA of observed batch times
// seeded from the engine's Eq. 15 estimate — and the controller sheds the
// request when the prediction blows the SLO budget. Shedding early keeps the
// queue short, so admitted requests still finish inside the SLO and goodput
// holds near peak instead of collapsing past saturation.
//
// With the precision ladder enabled (degrade_to_q4), shedding gains a middle
// rung: a request whose full-precision prediction blows the budget but whose
// cheap-rung prediction fits is admitted DEGRADED (served on the 4-bit PQ
// path at lower recall) instead of being rejected outright. Only requests
// that would miss the SLO even at the cheap rung shed.

#include <cstddef>

namespace drim::serve {

struct AdmissionParams {
  bool enabled = true;
  /// End-to-end latency budget. Predictions above slo_s * headroom shed.
  double slo_s = 10e-3;
  double headroom = 1.0;
  /// Degrade-before-shed: when the full-precision prediction blows the
  /// budget, re-test with the cheap-rung prediction and admit degraded if it
  /// fits. Requires a backend with the Q4 ladder built (otherwise the rung
  /// request is ignored downstream and degradation only mislabels records).
  bool degrade_to_q4 = false;
  /// Modeled cost of a cheap-rung batch relative to a full-precision one,
  /// used to scale the EWMA-priced backlog term of the prediction. The Q4
  /// rung halves the DC code stream and the LUT footprint; ~0.65 is
  /// conservative against the >= 1.5x modeled speedup the ladder targets.
  double degrade_cost_ratio = 0.65;
};

/// Outcome of one arrival-time decision.
enum class AdmissionDecision : unsigned char {
  kAdmit,    ///< full precision
  kDegrade,  ///< admitted on the cheap rung
  kShed,     ///< rejected
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionParams& params) : params_(params) {}

  const AdmissionParams& params() const { return params_; }

  /// Decide at arrival time. Counts the outcome either way.
  bool admit(double predicted_latency_s) {
    const bool ok =
        !params_.enabled || predicted_latency_s <= params_.slo_s * params_.headroom;
    if (ok) {
      ++admitted_;
    } else {
      ++shed_;
    }
    return ok;
  }

  /// Ladder-aware decision: admit on the full-rung prediction, else degrade
  /// on the cheap-rung prediction, else shed. With degrade_to_q4 off this is
  /// exactly admit() — predicted_degraded_s is never consulted — so existing
  /// shed-only configurations are bit-identical.
  AdmissionDecision decide(double predicted_s, double predicted_degraded_s) {
    if (!params_.enabled || predicted_s <= params_.slo_s * params_.headroom) {
      ++admitted_;
      return AdmissionDecision::kAdmit;
    }
    if (params_.degrade_to_q4 &&
        predicted_degraded_s <= params_.slo_s * params_.headroom) {
      ++admitted_;
      ++degraded_;
      return AdmissionDecision::kDegrade;
    }
    ++shed_;
    return AdmissionDecision::kShed;
  }

  std::size_t admitted() const { return admitted_; }
  std::size_t shed() const { return shed_; }
  std::size_t degraded() const { return degraded_; }

 private:
  AdmissionParams params_;
  std::size_t admitted_ = 0;
  std::size_t shed_ = 0;
  std::size_t degraded_ = 0;  ///< subset of admitted_ served on the cheap rung
};

}  // namespace drim::serve
