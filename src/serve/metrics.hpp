#pragma once
// Per-request latency accounting and SLO metrics for the serving runtime.
// Every request ends as a RequestRecord (served with a latency decomposition,
// or shed), and summarize() folds a trace's records into the serving numbers
// the paper family cares about: tail percentiles vs offered load, goodput
// (served inside the SLO), shed and timeout rates.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "backend/ann_backend.hpp"
#include "serve/workload.hpp"

namespace drim::serve {

/// Final disposition of one request.
struct RequestRecord {
  Request request;
  bool shed = false;          ///< rejected at admission; latency fields unset
  bool degraded = false;      ///< served on the cheap Q4 rung (degrade-before-shed)
  std::size_t results = 0;    ///< neighbors returned (k when served)
  double done_s = 0.0;        ///< completion on the virtual clock
  double latency_s = 0.0;     ///< done_s - arrival_s

  // Decomposition of the served path. queue_wait is the request's own
  // (arrival -> its batch launch); the remaining terms are its batch's
  // modeled phase times (the whole batch completes together). A request
  // whose tasks the filter deferred accrues the extra batches in latency_s.
  double queue_wait_s = 0.0;
  double host_cl_s = 0.0;   ///< host cluster locating (overlapped)
  double schedule_s = 0.0;  ///< Eq. 15 predict + greedy assign on the host
  double pim_s = 0.0;       ///< PIM batch: transfers + barrier + launch
  double merge_s = 0.0;     ///< host-side per-query top-k merge
};

/// Aggregate serving report for one run.
struct ServeReport {
  std::size_t offered = 0;  ///< requests in the trace
  std::size_t served = 0;
  std::size_t shed = 0;
  std::size_t degraded = 0;        ///< served on the cheap Q4 rung
  std::size_t slo_violations = 0;  ///< served but past the SLO

  double duration_s = 0.0;  ///< first arrival -> last completion
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double mean_queue_wait_ms = 0.0;

  double throughput_qps = 0.0;  ///< served / duration
  double goodput_qps = 0.0;     ///< served inside the SLO / duration
  double shed_rate = 0.0;       ///< shed / offered
  double timeout_rate = 0.0;    ///< slo_violations / offered
};

/// Fold a trace's records into the report; `slo_s` defines goodput/timeouts.
ServeReport summarize(const std::vector<RequestRecord>& records, double slo_s);

/// One periodic sample of the runtime's live state, taken on the virtual
/// clock every ServeParams::snapshot_period_s (sampled at event boundaries —
/// the clock only moves at arrivals, deadlines, and step completions).
struct MetricsSnapshot {
  double t_s = 0.0;                ///< virtual time of the sample
  std::size_t queue_depth = 0;     ///< requests waiting in the batcher
  std::size_t inflight = 0;        ///< launched, completion not yet observed
  std::size_t deferred_tasks = 0;  ///< backend's carried deferred work units
  double ewma_batch_s = 0.0;       ///< admission predictor's batch time
  std::size_t admitted = 0;        ///< cumulative admitted requests
  std::size_t shed = 0;            ///< cumulative shed requests
  std::size_t degraded = 0;        ///< cumulative degraded admissions (of admitted)
  double shed_rate = 0.0;          ///< shed / (admitted + shed) so far
  std::size_t batches = 0;         ///< cumulative backend steps
  /// Per-shard health when the backend is a cluster tier (src/cluster);
  /// empty for unsharded backends. The CSV writer emits one row per
  /// (sample, shard) with the base columns repeated; JSON nests a "shards"
  /// array per sample.
  std::vector<ShardHealth> shards;
};

/// Write snapshots as CSV (header + one row per sample).
void write_snapshots_csv(const std::vector<MetricsSnapshot>& snaps, std::ostream& out);
/// Write snapshots as a JSON array of objects (same fields as the CSV).
void write_snapshots_json(const std::vector<MetricsSnapshot>& snaps, std::ostream& out);
/// File variants; throw std::runtime_error if the file can't be opened. The
/// format follows the extension: ".csv" writes CSV, anything else JSON.
void write_snapshots_file(const std::vector<MetricsSnapshot>& snaps,
                          const std::string& path);

}  // namespace drim::serve
