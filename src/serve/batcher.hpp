#pragma once
// Dynamic batching for the serving runtime: admitted requests queue here and
// a PIM batch launches when either trigger fires — the queue reaches
// max_batch (size trigger) or the oldest request has waited max_wait_s
// (deadline trigger). These are the two knobs of inference serving stacks:
// max_batch bounds staging memory and per-batch work, max_wait_s bounds the
// queueing delay a lightly-loaded system adds to chase batching efficiency.

#include <cstddef>
#include <deque>
#include <limits>
#include <vector>

#include "serve/workload.hpp"

namespace drim::serve {

struct BatcherParams {
  std::size_t max_batch = 32;  ///< size trigger (also the pop bound)
  double max_wait_s = 2e-3;    ///< deadline trigger from the oldest enqueue
};

/// FIFO queue with the two launch triggers evaluated on the virtual clock.
class DynamicBatcher {
 public:
  explicit DynamicBatcher(const BatcherParams& params) : params_(params) {}

  const BatcherParams& params() const { return params_; }

  void enqueue(const Request& request, double now_s);

  std::size_t depth() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  /// Virtual time at which the deadline trigger fires for the current queue
  /// head (+inf when empty).
  double deadline_s() const {
    return queue_.empty() ? std::numeric_limits<double>::infinity()
                          : queue_.front().enqueue_s + params_.max_wait_s;
  }

  /// True when a batch should launch now: size trigger or deadline trigger.
  bool ready(double now_s) const {
    if (queue_.size() >= params_.max_batch) return true;
    return !queue_.empty() && now_s >= deadline_s();
  }

  /// Pop up to max_batch requests in FIFO order.
  std::vector<Request> take_batch();

 private:
  struct Entry {
    Request request;
    double enqueue_s = 0.0;
  };
  BatcherParams params_;
  std::deque<Entry> queue_;
};

}  // namespace drim::serve
