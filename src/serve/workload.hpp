#pragma once
// Open-loop workload generation for the serving runtime (src/serve). A
// workload is a trace of timestamped requests against a fixed query pool:
// arrivals follow a Poisson process or a bursty ON-OFF shape, query draws can
// be Zipf-skewed (hot topics), and each request carries its own (k, nprobe).
// Everything is seeded, so a trace is reproducible bit-for-bit — the serving
// experiments compare configurations on identical request streams.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/precision.hpp"

namespace drim::serve {

/// One search request as the serving layer sees it.
struct Request {
  std::uint64_t id = 0;       ///< dense trace index
  double arrival_s = 0.0;     ///< arrival on the virtual clock
  std::uint32_t query = 0;    ///< row in the serving query pool
  std::uint32_t k = 10;
  std::uint32_t nprobe = 16;
  /// Precision rung the request is served at. Traces are generated at kFull;
  /// admission control may lower it to kQ4 (degrade-before-shed) on the way
  /// into the batcher. Backends without a ladder ignore it.
  Precision precision = Precision::kFull;
};

/// Arrival process shapes.
enum class ArrivalProcess : std::uint8_t {
  kPoisson,  ///< memoryless open-loop stream at offered_qps
  kOnOff,    ///< bursty: all arrivals land in periodic ON windows
};

struct WorkloadParams {
  double offered_qps = 2000.0;      ///< long-run mean arrival rate
  std::size_t num_requests = 2048;
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  /// ON-OFF shape: each burst_period_s cycle starts with an ON window of
  /// burst_on_fraction * burst_period_s; arrivals are Poisson at
  /// offered_qps / burst_on_fraction inside ON and zero inside OFF, so the
  /// long-run mean rate stays offered_qps.
  double burst_period_s = 0.05;
  double burst_on_fraction = 0.25;
  /// Zipf exponent over the query pool (0 = uniform draws). Skewed draws
  /// concentrate probes on hot clusters — the load-imbalance regime the
  /// paper's layout and scheduler target.
  double query_skew = 0.0;
  /// Per-request knobs, drawn uniformly per request (single entry = fixed).
  std::vector<std::uint32_t> k_choices = {10};
  std::vector<std::uint32_t> nprobe_choices = {16};
  std::uint64_t seed = 42;
};

/// Generate `params.num_requests` timestamped requests over a pool of
/// `pool_size` queries. Arrival times are strictly ascending.
std::vector<Request> generate_workload(std::size_t pool_size,
                                       const WorkloadParams& params);

}  // namespace drim::serve
