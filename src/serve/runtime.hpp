#pragma once
// The online serving runtime: an open-loop discrete-event simulation that
// drives DrimAnnEngine's streaming step API (enqueue_query / search_batch)
// from a timestamped request trace on a virtual clock. Requests arrive, pass
// admission control (predicted queue delay vs the SLO budget), wait in the
// dynamic batcher until a size or deadline trigger fires, execute as one
// barrier-synchronized PIM step, and complete — possibly a step late when the
// inter-batch filter deferred some of their tasks. Each request leaves a
// RequestRecord with its full latency decomposition; run() returns them plus
// the aggregate ServeReport and the engine's accumulated search stats.

#include <cstddef>
#include <vector>

#include "drim/engine.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/metrics.hpp"
#include "serve/workload.hpp"

namespace drim::serve {

struct ServeParams {
  BatcherParams batcher;
  AdmissionParams admission;
  /// Host-side cost knobs for the two serving-only phases the closed-loop
  /// engine model folds into host overlap: greedy scheduling (per task) and
  /// top-k merging (per returned hit). Both overlap the PIM batch, like CL.
  double schedule_cost_per_task_s = 20e-9;
  double merge_cost_per_hit_s = 5e-9;
  /// EWMA weight of the newest observed batch time in the admission
  /// controller's queue-delay predictor (seeded from Eq. 15).
  double ewma_alpha = 0.25;
  /// Run every Nth PIM step with the inter-batch filter disabled (0 = never).
  /// The filter can re-defer a hot shard's tasks round after round, so
  /// without a periodic flush a request can starve until the trace drains;
  /// this bounds any request's deferral to < flush_every extra steps.
  std::size_t flush_every = 4;
};

/// Everything run() produces.
struct ServeResult {
  std::vector<RequestRecord> records;  ///< one per request, trace order
  ServeReport report;
  DrimSearchStats engine_stats;  ///< accumulated over every PIM step
  std::size_t batches = 0;       ///< PIM steps launched (incl. drain steps)
  double makespan_s = 0.0;       ///< virtual time of the last completion
  double ewma_batch_s = 0.0;     ///< final batch-time estimate
};

/// Binds an engine to a query pool (Request.query indexes its rows) and
/// replays traces against it. The engine and pool must outlive the runtime.
class ServingRuntime {
 public:
  ServingRuntime(DrimAnnEngine& engine, const FloatMatrix& query_pool,
                 const ServeParams& params);

  /// Replay one trace (must be sorted by arrival time, as generate_workload
  /// produces). Each call is an independent simulation: fresh virtual clock,
  /// fresh batcher/admission state, fresh engine stream state.
  ServeResult run(const std::vector<Request>& trace);

  const ServeParams& params() const { return params_; }

 private:
  DrimAnnEngine& engine_;
  const FloatMatrix& pool_;
  ServeParams params_;
};

}  // namespace drim::serve
