#pragma once
// The online serving runtime: an open-loop discrete-event simulation that
// drives an AnnBackend's streaming step API (enqueue / step) from a
// timestamped request trace on a virtual clock. Requests arrive, pass
// admission control (predicted queue delay vs the SLO budget), wait in the
// dynamic batcher until a size or deadline trigger fires, execute as one
// barrier-synchronized backend step, and complete — possibly a step late when
// the inter-batch filter deferred some of their tasks. Each request leaves a
// RequestRecord with its full latency decomposition; run() returns them plus
// the aggregate ServeReport and the backend's accumulated search stats.

#include <cstddef>
#include <memory>
#include <vector>

#include "backend/ann_backend.hpp"
#include "core/mutable_index.hpp"
#include "drim/engine.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/metrics.hpp"
#include "serve/update_workload.hpp"
#include "serve/workload.hpp"

namespace drim::serve {

struct ServeParams {
  BatcherParams batcher;
  AdmissionParams admission;
  /// Host-side cost knobs for the two serving-only phases the closed-loop
  /// engine model folds into host overlap: greedy scheduling (per task) and
  /// top-k merging (per returned hit). Both overlap the PIM batch, like CL.
  double schedule_cost_per_task_s = 20e-9;
  double merge_cost_per_hit_s = 5e-9;
  /// EWMA weight of the newest observed batch time in the admission
  /// controller's queue-delay predictor (seeded from Eq. 15).
  double ewma_alpha = 0.25;
  /// Run every Nth backend step with the inter-batch filter disabled
  /// (0 = never). The filter can re-defer a hot shard's tasks round after
  /// round, so without a periodic flush a request can starve until the trace
  /// drains; this bounds any request's deferral to < flush_every extra steps.
  std::size_t flush_every = 4;
  /// Sample a MetricsSnapshot (queue depth, EWMA, shed rate, ...) into
  /// ServeResult::snapshots every this many virtual seconds (0 = off).
  /// Samples land on event boundaries, so the spacing is >= the period.
  double snapshot_period_s = 0.0;
};

/// Binds the mutable-index write path into the serving loop (DESIGN.md §14).
/// run() applies each op to the writer when the virtual clock passes its
/// arrival, and every `publish_every_batches` backend steps it publishes the
/// writer's pending mutations and stages the snapshot onto the backend — in
/// between steps, so serving never pauses; the modeled install cost extends
/// the virtual timeline. Queries batched before a publish are answered by
/// the old version (the backends flush before installing), queries admitted
/// after see the new one. The counters are written back by run().
struct UpdateStream {
  const UpdateTrace* trace = nullptr;  ///< ops + insert payloads (not owned)
  IndexWriter* writer = nullptr;       ///< mutable state (not owned)
  std::size_t publish_every_batches = 8;
  /// Every this many backend steps, re-plan the backend's layout from its
  /// observed probe traffic (0 = never). Runs after any due publish.
  std::size_t relayout_every_batches = 0;

  // ---- written back by run() ----
  std::size_t applied = 0;   ///< ops consumed off the trace
  std::size_t inserts = 0;
  std::size_t deletes = 0;
  std::size_t publishes = 0;
  std::size_t relayouts = 0;
  double publish_seconds = 0.0;   ///< modeled install cost, summed
  double relayout_seconds = 0.0;  ///< modeled re-layout cost, summed
};

/// Everything run() produces.
struct ServeResult {
  std::vector<RequestRecord> records;  ///< one per request, trace order
  ServeReport report;
  BackendStats engine_stats;  ///< backend stats accumulated over every step
  std::size_t batches = 0;    ///< backend steps launched (incl. drain steps)
  double makespan_s = 0.0;    ///< virtual time of the last completion
  double ewma_batch_s = 0.0;  ///< final batch-time estimate
  /// Periodic state samples (empty unless snapshot_period_s > 0).
  std::vector<MetricsSnapshot> snapshots;
};

/// Binds a backend to a query pool (Request.query indexes its rows) and
/// replays traces against it. The backend and pool must outlive the runtime.
class ServingRuntime {
 public:
  ServingRuntime(AnnBackend& backend, const FloatMatrix& query_pool,
                 const ServeParams& params);
  /// Convenience: serve an existing DrimAnnEngine directly. Wraps it in an
  /// internally owned DrimBackend; the engine must outlive the runtime.
  ServingRuntime(DrimAnnEngine& engine, const FloatMatrix& query_pool,
                 const ServeParams& params);

  /// Replay one trace (must be sorted by arrival time, as generate_workload
  /// produces). Each call is an independent simulation: fresh virtual clock,
  /// fresh batcher/admission state, fresh backend stream state.
  ServeResult run(const std::vector<Request>& trace);

  const ServeParams& params() const { return params_; }
  AnnBackend& backend() { return backend_; }

  /// Attach (or detach, with nullptr) a trace recorder: run() emits serve-
  /// layer events (arrival/shed instants, per-step batch + schedule + merge
  /// spans, queue counters) and forwards the recorder to the backend so its
  /// device spans interleave on the same virtual clock. Not owned.
  void set_trace(obs::TraceRecorder* trace) {
    trace_ = trace;
    backend_.set_trace(trace);
  }

  /// Attach (or detach, with nullptr) an update stream: run() interleaves
  /// its ops and publishes with the search trace on the virtual clock. The
  /// stream (and its trace/writer) must outlive run(); requires a backend
  /// with supports_updates() when the stream has a writer.
  void set_update_stream(UpdateStream* updates) { updates_ = updates; }

 private:
  /// The serial event loop (backend pipeline_depth() == 1): one step in
  /// flight at a time, the clock jumping across each step's critical path.
  ServeResult run_serial(const std::vector<Request>& trace, ServeResult result,
                         std::uint32_t max_k, std::uint32_t max_nprobe);
  /// The pipelined event loop (depth >= 2): keeps up to `depth` steps in
  /// flight, launching while earlier steps' modeled completions are still in
  /// the future, so transfer stages overlap compute across steps.
  ServeResult run_pipelined(const std::vector<Request>& trace, ServeResult result,
                            std::uint32_t max_k, std::uint32_t max_nprobe);

  std::unique_ptr<AnnBackend> owned_backend_;  ///< compat-ctor wrapper only
  AnnBackend& backend_;
  const FloatMatrix& pool_;
  ServeParams params_;
  obs::TraceRecorder* trace_ = nullptr;      ///< not owned; may be null
  UpdateStream* updates_ = nullptr;          ///< not owned; may be null
};

}  // namespace drim::serve
