#include "serve/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "backend/drim_backend.hpp"

namespace drim::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void validate_params(const ServeParams& params) {
  if (params.batcher.max_batch == 0) {
    throw std::invalid_argument("ServeParams: batcher.max_batch must be > 0");
  }
  if (!(params.ewma_alpha > 0.0) || params.ewma_alpha > 1.0) {
    throw std::invalid_argument("ServeParams: ewma_alpha must be in (0, 1]");
  }
}

}  // namespace

ServingRuntime::ServingRuntime(AnnBackend& backend, const FloatMatrix& query_pool,
                               const ServeParams& params)
    : backend_(backend), pool_(query_pool), params_(params) {
  validate_params(params_);
}

ServingRuntime::ServingRuntime(DrimAnnEngine& engine, const FloatMatrix& query_pool,
                               const ServeParams& params)
    : owned_backend_(std::make_unique<DrimBackend>(engine)),
      backend_(*owned_backend_),
      pool_(query_pool),
      params_(params) {
  validate_params(params_);
}

ServeResult ServingRuntime::run(const std::vector<Request>& trace) {
  ServeResult result;
  result.records.resize(trace.size());

  std::uint32_t max_k = 1;
  std::uint32_t max_nprobe = 1;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Request& req = trace[i];
    if (i > 0 && req.arrival_s < trace[i - 1].arrival_s) {
      throw std::invalid_argument("ServingRuntime: trace must be sorted by arrival");
    }
    if (req.id != i) {
      throw std::invalid_argument(
          "ServingRuntime: request ids must be the trace positions 0..n-1");
    }
    if (req.query >= pool_.count()) {
      throw std::invalid_argument("ServingRuntime: request query id out of pool");
    }
    if (req.k == 0 || req.nprobe == 0) {
      throw std::invalid_argument("ServingRuntime: request k and nprobe must be > 0");
    }
    result.records[i].request = req;
    max_k = std::max(max_k, req.k);
    max_nprobe = std::max(max_nprobe, req.nprobe);
  }
  if (updates_ != nullptr && updates_->writer != nullptr) {
    if (!backend_.supports_updates()) {
      throw std::invalid_argument(
          "ServingRuntime: backend '" + backend_.name() +
          "' does not support index updates");
    }
    if (updates_->trace == nullptr) {
      throw std::invalid_argument("ServingRuntime: update stream has no trace");
    }
    // Each run() is an independent simulation; the write-back counters
    // restart with it.
    updates_->applied = 0;
    updates_->inserts = 0;
    updates_->deletes = 0;
    updates_->publishes = 0;
    updates_->relayouts = 0;
    updates_->publish_seconds = 0.0;
    updates_->relayout_seconds = 0.0;
  }

  if (trace.empty()) {
    result.report = summarize(result.records, params_.admission.slo_s);
    return result;
  }

  if (backend_.pipeline_depth() >= 2) {
    return run_pipelined(trace, std::move(result), max_k, max_nprobe);
  }
  return run_serial(trace, std::move(result), max_k, max_nprobe);
}

ServeResult ServingRuntime::run_serial(const std::vector<Request>& trace,
                                       ServeResult result, std::uint32_t max_k,
                                       std::uint32_t max_nprobe) {
  DynamicBatcher batcher(params_.batcher);
  AdmissionController admission(params_.admission);
  backend_.reset_stream();

  // Seed the batch-time predictor with the Eq. 15 open-loop estimate for a
  // full-size batch at the trace's deepest (k, nprobe); observed steps then
  // pull the EWMA toward the actual (skew-inflated) batch times.
  double ewma = backend_.estimate_batch_seconds(params_.batcher.max_batch, max_nprobe,
                                                max_k);

  double now = 0.0;
  double busy_until = 0.0;
  std::size_t next_arrival = 0;
  // Backend handle -> trace index, for the live (launched, maybe deferred)
  // requests whose completion we still have to observe.
  std::unordered_map<std::uint32_t, std::size_t> inflight;

  // Observed tasks-per-fresh-query ratio (EWMA), used to convert the
  // backend's deferred-task backlog into query-equivalents for admission.
  // Seeded at the trace's deepest nprobe: every fresh query spawns at least
  // nprobe tasks, so the seed under-counts and only tightens as steps land.
  double tasks_per_query = static_cast<double>(max_nprobe);

  const bool tracing = trace_ != nullptr;
  std::uint32_t req_lane = 0, batch_lane = 0, sched_lane = 0, merge_lane = 0;
  if (tracing) {
    req_lane = trace_->lane("serve/requests");
    batch_lane = trace_->lane("serve/batch");
    sched_lane = trace_->lane("host/schedule");
    merge_lane = trace_->lane("host/merge");
    trace_->set_now(0.0);
  }

  // ---- mutable-index hooks (no-ops without an update stream) ----
  std::size_t next_update = 0;
  // Apply every update op whose arrival the clock has passed. Writer-only:
  // the backend keeps serving its installed snapshot until a publish.
  auto apply_updates = [&](double upto) {
    if (updates_ == nullptr || updates_->writer == nullptr) return;
    const auto& ops = updates_->trace->ops;
    while (next_update < ops.size() && ops[next_update].arrival_s <= upto) {
      const UpdateOp& op = ops[next_update];
      if (op.kind == UpdateKind::kInsert) {
        updates_->writer->insert(updates_->trace->insert_vectors.row(op.target));
        ++updates_->inserts;
      } else {
        updates_->writer->erase(op.target);
        ++updates_->deletes;
      }
      ++updates_->applied;
      ++next_update;
    }
  };
  // Requests an install flushed to completion get their records closed at
  // the install instant (their decomposition fields stay as the last step
  // left them: the flush is maintenance, not a normal serving step).
  auto sweep_completions = [&](double at) {
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (!backend_.finished(it->first)) {
        ++it;
        continue;
      }
      RequestRecord& rec = result.records[it->second];
      rec.done_s = at;
      rec.latency_s = at - rec.request.arrival_s;
      rec.results = backend_.take_results(it->first).size();
      it = inflight.erase(it);
    }
  };
  // Between-batch maintenance: publish the writer's pending mutations and/or
  // re-plan the layout when their cadences come due. The modeled install
  // cost extends the virtual timeline; serving resumes immediately after.
  std::size_t last_maintenance_batches = 0;
  auto maybe_publish = [&] {
    if (updates_ == nullptr || updates_->writer == nullptr) return;
    if (result.batches == last_maintenance_batches) return;
    const bool pub_due = updates_->publish_every_batches > 0 &&
                         result.batches % updates_->publish_every_batches == 0;
    const bool rel_due = updates_->relayout_every_batches > 0 &&
                         result.batches % updates_->relayout_every_batches == 0;
    if (!pub_due && !rel_due) return;
    last_maintenance_batches = result.batches;
    bool staged = false;
    if (pub_due && updates_->writer->dirty()) {
      PublishDelta delta;
      const IndexSnapshot snap = updates_->writer->publish(&delta);
      const double cost = backend_.stage_snapshot(snap, delta);
      updates_->publish_seconds += cost;
      ++updates_->publishes;
      now += cost;
      staged = true;
    }
    if (rel_due) {
      const double cost = backend_.stage_relayout();
      updates_->relayout_seconds += cost;
      ++updates_->relayouts;
      now += cost;
      staged = true;
    }
    if (staged) {
      busy_until = now;
      if (tracing) trace_->set_now(now);
      sweep_completions(now);
    }
  };

  double next_snapshot = 0.0;
  auto maybe_snapshot = [&](bool force = false) {
    if (params_.snapshot_period_s <= 0.0) return;
    if (!force && now < next_snapshot) return;
    MetricsSnapshot s;
    s.t_s = now;
    s.queue_depth = batcher.depth();
    s.inflight = inflight.size();
    s.deferred_tasks = backend_.deferred_count();
    s.ewma_batch_s = ewma;
    s.admitted = admission.admitted();
    s.shed = admission.shed();
    s.degraded = admission.degraded();
    const std::size_t seen = s.admitted + s.shed;
    s.shed_rate = seen > 0 ? static_cast<double>(s.shed) / static_cast<double>(seen)
                           : 0.0;
    s.batches = result.batches;
    s.shards = backend_.shard_health();  // empty unless a cluster backend
    result.snapshots.push_back(s);
    if (tracing) {
      trace_->counter("serve/queue", now,
                      {{"depth", static_cast<double>(s.queue_depth)},
                       {"inflight", static_cast<double>(s.inflight)},
                       {"deferred_tasks", static_cast<double>(s.deferred_tasks)}});
      trace_->counter("serve/ewma_batch_ms", now, {{"ewma", ewma * 1e3}});
      trace_->counter("serve/shed_rate", now, {{"rate", s.shed_rate}});
      if (!s.shards.empty()) {
        std::vector<obs::TraceArg> queue_series, busy_series;
        for (const ShardHealth& h : s.shards) {
          const std::string key = "shard" + std::to_string(h.shard);
          queue_series.emplace_back(key, static_cast<double>(h.queue_tasks));
          busy_series.emplace_back(key, h.busy_seconds * 1e3);
        }
        trace_->counter("serve/shard_queue", now, std::move(queue_series));
        trace_->counter("serve/shard_busy_ms", now, std::move(busy_series));
      }
    }
    next_snapshot = now + params_.snapshot_period_s;
  };

  // Admission decision at the request's own arrival instant: residual of the
  // running step plus the backlog's worth of batches at the EWMA batch time.
  // The backlog counts the queued requests AND the backend's carried
  // deferred tasks (as query-equivalents at the observed tasks-per-query
  // ratio) — without the deferred term, hot-shard skew makes predictions
  // systematically optimistic and the SLO shed threshold fires too late.
  auto process_arrival = [&](const Request& req) {
    const double residual = std::max(0.0, busy_until - req.arrival_s);
    const std::size_t deferred_tasks = backend_.deferred_count();
    const std::size_t deferred_queries =
        deferred_tasks == 0
            ? 0
            : static_cast<std::size_t>(
                  std::ceil(static_cast<double>(deferred_tasks) / tasks_per_query));
    const std::size_t backlog = batcher.depth() + 1 + deferred_queries;
    const std::size_t backlog_batches =
        (backlog + params_.batcher.max_batch - 1) / params_.batcher.max_batch;
    const double predicted =
        residual + static_cast<double>(backlog_batches) * ewma;
    // Cheap-rung prediction: the residual (already-launched work) is sunk;
    // only the backlog's batches would run degraded.
    const double predicted_degraded =
        residual + static_cast<double>(backlog_batches) * ewma *
                       params_.admission.degrade_cost_ratio;
    const AdmissionDecision decision =
        admission.decide(predicted, predicted_degraded);
    if (decision != AdmissionDecision::kShed) {
      Request admitted = req;
      if (decision == AdmissionDecision::kDegrade) {
        admitted.precision = Precision::kQ4;
        result.records[req.id].degraded = true;
        result.records[req.id].request.precision = Precision::kQ4;
      }
      batcher.enqueue(admitted, req.arrival_s);
      if (tracing) {
        trace_->instant(
            req_lane,
            decision == AdmissionDecision::kDegrade ? "degrade" : "arrive",
            "serve", req.arrival_s,
            {{"id", static_cast<double>(req.id)},
             {"predicted_ms", predicted * 1e3}});
      }
    } else {
      result.records[req.id].shed = true;
      if (tracing) {
        trace_->instant(req_lane, "shed", "serve", req.arrival_s,
                        {{"id", static_cast<double>(req.id)},
                         {"predicted_ms", predicted * 1e3}});
      }
    }
  };

  // Run one backend step (a fresh batch or a pure deferred-task drain),
  // advance the virtual clock across it — admitting the arrivals that land
  // while it runs — and mark the requests it completed.
  auto run_step = [&](std::size_t fresh_count, bool flush) {
    if (params_.flush_every > 0 && (result.batches + 1) % params_.flush_every == 0) {
      flush = true;  // periodic flush bounds re-deferral starvation
    }
    if (tracing) trace_->set_now(now);  // backend spans start at step launch
    const BackendStepStats step = backend_.step(fresh_count, flush);

    // Bill the host merge by the k of the requests this step actually
    // completed: only completed requests return hit lists to merge. (Billing
    // the max k over ALL inflight let a single deep-k straggler — deferred
    // across steps — inflate merge time for every subsequent mixed-k batch.)
    std::uint64_t completed_k_sum = 0;
    std::size_t completed = 0;
    for (const auto& [handle, idx] : inflight) {
      if (!backend_.finished(handle)) continue;
      completed_k_sum += result.records[idx].request.k;
      ++completed;
    }
    const double mean_completed_k =
        completed > 0 ? static_cast<double>(completed_k_sum) /
                            static_cast<double>(completed)
                      : 0.0;
    const double schedule_s = params_.schedule_cost_per_task_s *
                              static_cast<double>(step.tasks);
    const double merge_s = params_.merge_cost_per_hit_s *
                           static_cast<double>(step.tasks) * mean_completed_k;
    // Same overlap model as the engine: the dedicated pre-step launch (CL on
    // PIM, if any) is serial, then host work (CL + schedule + merge) hides
    // under the batch execution — whichever is longer paces the step.
    const double host_s = step.host_seconds + schedule_s + merge_s;
    const double wall =
        step.pre_seconds + std::max(host_s, step.exec_seconds);
    busy_until = now + wall;
    ++result.batches;
    ewma += params_.ewma_alpha * (wall - ewma);
    if (step.fresh_queries > 0) {
      const double observed = static_cast<double>(step.tasks) /
                              static_cast<double>(step.fresh_queries);
      tasks_per_query += params_.ewma_alpha * (observed - tasks_per_query);
      if (tasks_per_query < 1.0) tasks_per_query = 1.0;
    }

    if (tracing) {
      trace_->span(batch_lane, "step", "serve", now, wall,
                   {{"fresh", static_cast<double>(step.fresh_queries)},
                    {"tasks", static_cast<double>(step.tasks)},
                    {"deferred", static_cast<double>(step.deferred)},
                    {"completed", static_cast<double>(completed)}});
      if (schedule_s > 0.0) {
        trace_->span(sched_lane, "schedule", "host", now + step.pre_seconds,
                     schedule_s, {{"tasks", static_cast<double>(step.tasks)}});
      }
      if (merge_s > 0.0) {
        trace_->span(merge_lane, "merge", "host", busy_until - merge_s, merge_s,
                     {{"mean_k", mean_completed_k}});
      }
      trace_->set_now(busy_until);
    }

    // Arrivals landing while this step runs decide admission at their own
    // instants (the queue-delay prediction sees the step's residual).
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival_s <= busy_until) {
      process_arrival(trace[next_arrival]);
      ++next_arrival;
    }
    now = busy_until;

    // Completions: every live request whose tasks have all executed.
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (!backend_.finished(it->first)) {
        ++it;
        continue;
      }
      RequestRecord& rec = result.records[it->second];
      rec.done_s = now;
      rec.latency_s = now - rec.request.arrival_s;
      rec.host_cl_s = step.host_seconds + step.pre_seconds;
      rec.schedule_s = schedule_s;
      rec.pim_s = step.exec_seconds;
      rec.merge_s = merge_s;
      rec.results = backend_.take_results(it->first).size();
      it = inflight.erase(it);
    }

    // Mutations the step's span covered land now; maintenance (publish /
    // re-layout) runs between steps, on its cadence.
    apply_updates(now);
    maybe_publish();
  };

  while (next_arrival < trace.size() || !batcher.empty() || !inflight.empty()) {
    maybe_snapshot();
    const bool no_more_arrivals = next_arrival >= trace.size();

    // Launch when a trigger fires — or unconditionally once the trace is
    // exhausted, since no further arrivals can top the batch up.
    if (batcher.ready(now) || (no_more_arrivals && !batcher.empty())) {
      std::vector<Request> batch = batcher.take_batch();
      for (const Request& req : batch) {
        const std::uint32_t handle =
            backend_.enqueue(pool_.row(req.query), req.k, req.nprobe, req.precision);
        inflight.emplace(handle, static_cast<std::size_t>(req.id));
        RequestRecord& rec = result.records[req.id];
        rec.queue_wait_s = now - req.arrival_s;
      }
      const bool flush = no_more_arrivals && batcher.empty();
      run_step(batch.size(), flush);
      continue;
    }

    // Idle with carried deferred tasks and nothing else to wait for: drain
    // them with a flush step so the stragglers complete.
    if (no_more_arrivals && batcher.empty() && backend_.has_deferred()) {
      run_step(0, /*flush=*/true);
      continue;
    }

    // Advance the virtual clock to the next event: an arrival or the
    // batcher's deadline trigger.
    double next_event = batcher.deadline_s();
    if (!no_more_arrivals) {
      next_event = std::min(next_event, trace[next_arrival].arrival_s);
    }
    if (next_event == kInf) break;  // only non-deferred inflight left (none)
    now = std::max(now, next_event);
    while (next_arrival < trace.size() && trace[next_arrival].arrival_s <= now) {
      process_arrival(trace[next_arrival]);
      ++next_arrival;
    }
    apply_updates(now);
  }

  maybe_snapshot(/*force=*/true);  // final state at the makespan
  result.makespan_s = now;
  result.ewma_batch_s = ewma;
  result.engine_stats = backend_.stats();
  result.report = summarize(result.records, params_.admission.slo_s);
  return result;
}

ServeResult ServingRuntime::run_pipelined(const std::vector<Request>& trace,
                                          ServeResult result, std::uint32_t max_k,
                                          std::uint32_t max_nprobe) {
  const std::size_t depth = backend_.pipeline_depth();
  DynamicBatcher batcher(params_.batcher);
  AdmissionController admission(params_.admission);
  backend_.reset_stream();

  // Seed the predictor with the pipelined Eq. 15 estimate (steady-state step
  // pace: the bottleneck stage, not the stage sum).
  double ewma = backend_.estimate_batch_seconds(params_.batcher.max_batch, max_nprobe,
                                                max_k);

  double now = 0.0;
  // Completion time of the newest launched step (monotone: the backend's
  // timeline never completes a later batch before an earlier one).
  double last_complete = 0.0;
  // Modeled completion times of launched steps still in the future; its size
  // (after dropping elapsed entries) is the in-flight count that gates
  // launches at `depth`.
  std::deque<double> inflight_steps;
  std::size_t next_arrival = 0;
  std::unordered_map<std::uint32_t, std::size_t> inflight;
  double tasks_per_query = static_cast<double>(max_nprobe);

  const bool tracing = trace_ != nullptr;
  std::uint32_t req_lane = 0, batch_lane = 0, sched_lane = 0, merge_lane = 0;
  if (tracing) {
    req_lane = trace_->lane("serve/requests");
    batch_lane = trace_->lane("serve/batch");
    sched_lane = trace_->lane("host/schedule");
    merge_lane = trace_->lane("host/merge");
    trace_->set_now(0.0);
  }

  // ---- mutable-index hooks (no-ops without an update stream); see the
  // serial loop for the semantics. An install drains the pipe (the backends
  // flush before swapping), so it lands at the newest in-flight completion
  // and the modeled cost extends the timeline from there.
  std::size_t next_update = 0;
  auto apply_updates = [&](double upto) {
    if (updates_ == nullptr || updates_->writer == nullptr) return;
    const auto& ops = updates_->trace->ops;
    while (next_update < ops.size() && ops[next_update].arrival_s <= upto) {
      const UpdateOp& op = ops[next_update];
      if (op.kind == UpdateKind::kInsert) {
        updates_->writer->insert(updates_->trace->insert_vectors.row(op.target));
        ++updates_->inserts;
      } else {
        updates_->writer->erase(op.target);
        ++updates_->deletes;
      }
      ++updates_->applied;
      ++next_update;
    }
  };
  auto sweep_completions = [&](double at) {
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (!backend_.finished(it->first)) {
        ++it;
        continue;
      }
      RequestRecord& rec = result.records[it->second];
      rec.done_s = at;
      rec.latency_s = at - rec.request.arrival_s;
      rec.results = backend_.take_results(it->first).size();
      it = inflight.erase(it);
    }
  };
  std::size_t last_maintenance_batches = 0;
  auto maybe_publish = [&] {
    if (updates_ == nullptr || updates_->writer == nullptr) return;
    if (result.batches == last_maintenance_batches) return;
    const bool pub_due = updates_->publish_every_batches > 0 &&
                         result.batches % updates_->publish_every_batches == 0;
    const bool rel_due = updates_->relayout_every_batches > 0 &&
                         result.batches % updates_->relayout_every_batches == 0;
    if (!pub_due && !rel_due) return;
    last_maintenance_batches = result.batches;
    bool staged = false;
    double at = std::max(now, last_complete);
    if (pub_due && updates_->writer->dirty()) {
      PublishDelta delta;
      const IndexSnapshot snap = updates_->writer->publish(&delta);
      const double cost = backend_.stage_snapshot(snap, delta);
      updates_->publish_seconds += cost;
      ++updates_->publishes;
      at += cost;
      staged = true;
    }
    if (rel_due) {
      const double cost = backend_.stage_relayout();
      updates_->relayout_seconds += cost;
      ++updates_->relayouts;
      at += cost;
      staged = true;
    }
    if (staged) {
      now = at;
      last_complete = at;
      inflight_steps.clear();  // the install's flush drained the pipe
      if (tracing) trace_->set_now(at);
      sweep_completions(at);
    }
  };

  double next_snapshot = 0.0;
  auto maybe_snapshot = [&](bool force = false) {
    if (params_.snapshot_period_s <= 0.0) return;
    if (!force && now < next_snapshot) return;
    MetricsSnapshot s;
    s.t_s = now;
    s.queue_depth = batcher.depth();
    s.inflight = inflight.size();
    s.deferred_tasks = backend_.deferred_count();
    s.ewma_batch_s = ewma;
    s.admitted = admission.admitted();
    s.shed = admission.shed();
    s.degraded = admission.degraded();
    const std::size_t seen = s.admitted + s.shed;
    s.shed_rate = seen > 0 ? static_cast<double>(s.shed) / static_cast<double>(seen)
                           : 0.0;
    s.batches = result.batches;
    s.shards = backend_.shard_health();  // empty unless a cluster backend
    result.snapshots.push_back(s);
    if (tracing) {
      trace_->counter("serve/queue", now,
                      {{"depth", static_cast<double>(s.queue_depth)},
                       {"inflight", static_cast<double>(s.inflight)},
                       {"deferred_tasks", static_cast<double>(s.deferred_tasks)}});
      trace_->counter("serve/ewma_batch_ms", now, {{"ewma", ewma * 1e3}});
      trace_->counter("serve/shed_rate", now, {{"rate", s.shed_rate}});
      if (!s.shards.empty()) {
        std::vector<obs::TraceArg> queue_series, busy_series;
        for (const ShardHealth& h : s.shards) {
          const std::string key = "shard" + std::to_string(h.shard);
          queue_series.emplace_back(key, static_cast<double>(h.queue_tasks));
          busy_series.emplace_back(key, h.busy_seconds * 1e3);
        }
        trace_->counter("serve/shard_queue", now, std::move(queue_series));
        trace_->counter("serve/shard_busy_ms", now, std::move(busy_series));
      }
    }
    next_snapshot = now + params_.snapshot_period_s;
  };

  // Admission at the request's arrival instant. The residual term is the
  // wait until the *newest* in-flight step completes — with the pipe full,
  // a new request's batch cannot complete before everything already in it.
  auto process_arrival = [&](const Request& req) {
    const double residual = std::max(0.0, last_complete - req.arrival_s);
    const std::size_t deferred_tasks = backend_.deferred_count();
    const std::size_t deferred_queries =
        deferred_tasks == 0
            ? 0
            : static_cast<std::size_t>(
                  std::ceil(static_cast<double>(deferred_tasks) / tasks_per_query));
    const std::size_t backlog = batcher.depth() + 1 + deferred_queries;
    const std::size_t backlog_batches =
        (backlog + params_.batcher.max_batch - 1) / params_.batcher.max_batch;
    const double predicted =
        residual + static_cast<double>(backlog_batches) * ewma;
    // Cheap-rung prediction: the residual (already-launched work) is sunk;
    // only the backlog's batches would run degraded.
    const double predicted_degraded =
        residual + static_cast<double>(backlog_batches) * ewma *
                       params_.admission.degrade_cost_ratio;
    const AdmissionDecision decision =
        admission.decide(predicted, predicted_degraded);
    if (decision != AdmissionDecision::kShed) {
      Request admitted = req;
      if (decision == AdmissionDecision::kDegrade) {
        admitted.precision = Precision::kQ4;
        result.records[req.id].degraded = true;
        result.records[req.id].request.precision = Precision::kQ4;
      }
      batcher.enqueue(admitted, req.arrival_s);
      if (tracing) {
        trace_->instant(
            req_lane,
            decision == AdmissionDecision::kDegrade ? "degrade" : "arrive",
            "serve", req.arrival_s,
            {{"id", static_cast<double>(req.id)},
             {"predicted_ms", predicted * 1e3}});
      }
    } else {
      result.records[req.id].shed = true;
      if (tracing) {
        trace_->instant(req_lane, "shed", "serve", req.arrival_s,
                        {{"id", static_cast<double>(req.id)},
                         {"predicted_ms", predicted * 1e3}});
      }
    }
  };

  // Launch one backend step at `now`. Execution is synchronous (results and
  // completion sets are final when step() returns) but the modeled
  // completion lands in the future on the backend's pipelined timeline; the
  // serve-layer host costs (schedule + merge, plus the overlapped host CL)
  // extend it, since host work is serial across steps.
  auto launch_step = [&](std::size_t fresh_count, bool flush) {
    if (params_.flush_every > 0 && (result.batches + 1) % params_.flush_every == 0) {
      flush = true;  // periodic flush bounds re-deferral starvation
    }
    if (tracing) trace_->set_now(now);
    backend_.set_step_start(now);
    const BackendStepStats step = backend_.step(fresh_count, flush);

    std::uint64_t completed_k_sum = 0;
    std::size_t completed = 0;
    for (const auto& [handle, idx] : inflight) {
      if (!backend_.finished(handle)) continue;
      completed_k_sum += result.records[idx].request.k;
      ++completed;
    }
    const double mean_completed_k =
        completed > 0 ? static_cast<double>(completed_k_sum) /
                            static_cast<double>(completed)
                      : 0.0;
    const double schedule_s = params_.schedule_cost_per_task_s *
                              static_cast<double>(step.tasks);
    const double merge_s = params_.merge_cost_per_hit_s *
                           static_cast<double>(step.tasks) * mean_completed_k;
    double complete = std::max(
        step.complete_seconds,
        now + step.pre_seconds + step.host_seconds + schedule_s + merge_s);
    complete = std::max(complete, last_complete);
    // Steady-state step interval: what this step added to the timeline.
    const double interval = complete - std::max(last_complete, now);
    last_complete = complete;
    inflight_steps.push_back(complete);
    ++result.batches;
    ewma += params_.ewma_alpha * (interval - ewma);
    if (step.fresh_queries > 0) {
      const double observed = static_cast<double>(step.tasks) /
                              static_cast<double>(step.fresh_queries);
      tasks_per_query += params_.ewma_alpha * (observed - tasks_per_query);
      if (tasks_per_query < 1.0) tasks_per_query = 1.0;
    }

    if (tracing) {
      trace_->span(batch_lane, "step", "serve", now, complete - now,
                   {{"fresh", static_cast<double>(step.fresh_queries)},
                    {"tasks", static_cast<double>(step.tasks)},
                    {"deferred", static_cast<double>(step.deferred)},
                    {"completed", static_cast<double>(completed)},
                    {"inflight_steps", static_cast<double>(inflight_steps.size())}});
      if (schedule_s > 0.0) {
        trace_->span(sched_lane, "schedule", "host", now + step.pre_seconds,
                     schedule_s, {{"tasks", static_cast<double>(step.tasks)}});
      }
      if (merge_s > 0.0) {
        trace_->span(merge_lane, "merge", "host", complete - merge_s, merge_s,
                     {{"mean_k", mean_completed_k}});
      }
    }

    // Completions: stamped with this step's modeled completion (the results
    // themselves are final now — only the timestamps are in the future).
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (!backend_.finished(it->first)) {
        ++it;
        continue;
      }
      RequestRecord& rec = result.records[it->second];
      rec.done_s = complete;
      rec.latency_s = complete - rec.request.arrival_s;
      rec.host_cl_s = step.host_seconds + step.pre_seconds;
      rec.schedule_s = schedule_s;
      rec.pim_s = step.exec_seconds;
      rec.merge_s = merge_s;
      rec.results = backend_.take_results(it->first).size();
      it = inflight.erase(it);
    }

    apply_updates(now);
    maybe_publish();
  };

  while (next_arrival < trace.size() || !batcher.empty() || !inflight.empty()) {
    maybe_snapshot();
    // Retire steps whose modeled completion has passed; what remains is the
    // in-flight window.
    while (!inflight_steps.empty() && inflight_steps.front() <= now) {
      inflight_steps.pop_front();
    }
    const bool no_more_arrivals = next_arrival >= trace.size();
    const bool can_launch = inflight_steps.size() < depth;

    if (can_launch &&
        (batcher.ready(now) || (no_more_arrivals && !batcher.empty()))) {
      std::vector<Request> batch = batcher.take_batch();
      for (const Request& req : batch) {
        const std::uint32_t handle =
            backend_.enqueue(pool_.row(req.query), req.k, req.nprobe, req.precision);
        inflight.emplace(handle, static_cast<std::size_t>(req.id));
        result.records[req.id].queue_wait_s = now - req.arrival_s;
      }
      const bool flush = no_more_arrivals && batcher.empty();
      launch_step(batch.size(), flush);
      continue;
    }

    // Idle with carried deferred tasks, room in the pipe, and nothing else
    // to wait for: drain them with a flush step.
    if (can_launch && no_more_arrivals && batcher.empty() &&
        backend_.has_deferred()) {
      launch_step(0, /*flush=*/true);
      continue;
    }

    // Advance to the next event: an arrival, the batcher's deadline (only
    // actionable while a pipeline slot is free — with the pipe full, an
    // already-expired deadline would pin the clock), or the oldest in-flight
    // step's completion (which frees a slot).
    double next_event = can_launch ? batcher.deadline_s() : kInf;
    if (!no_more_arrivals) {
      next_event = std::min(next_event, trace[next_arrival].arrival_s);
    }
    if (!inflight_steps.empty()) {
      next_event = std::min(next_event, inflight_steps.front());
    }
    if (next_event == kInf) break;
    now = std::max(now, next_event);
    while (next_arrival < trace.size() && trace[next_arrival].arrival_s <= now) {
      process_arrival(trace[next_arrival]);
      ++next_arrival;
    }
    apply_updates(now);
  }

  now = std::max(now, last_complete);  // drain the pipe's tail
  maybe_snapshot(/*force=*/true);
  result.makespan_s = now;
  result.ewma_batch_s = ewma;
  result.engine_stats = backend_.stats();
  result.report = summarize(result.records, params_.admission.slo_s);
  return result;
}

}  // namespace drim::serve
