#include "serve/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "backend/drim_backend.hpp"

namespace drim::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void validate_params(const ServeParams& params) {
  if (params.batcher.max_batch == 0) {
    throw std::invalid_argument("ServeParams: batcher.max_batch must be > 0");
  }
  if (!(params.ewma_alpha > 0.0) || params.ewma_alpha > 1.0) {
    throw std::invalid_argument("ServeParams: ewma_alpha must be in (0, 1]");
  }
}

}  // namespace

ServingRuntime::ServingRuntime(AnnBackend& backend, const FloatMatrix& query_pool,
                               const ServeParams& params)
    : backend_(backend), pool_(query_pool), params_(params) {
  validate_params(params_);
}

ServingRuntime::ServingRuntime(DrimAnnEngine& engine, const FloatMatrix& query_pool,
                               const ServeParams& params)
    : owned_backend_(std::make_unique<DrimBackend>(engine)),
      backend_(*owned_backend_),
      pool_(query_pool),
      params_(params) {
  validate_params(params_);
}

ServeResult ServingRuntime::run(const std::vector<Request>& trace) {
  ServeResult result;
  result.records.resize(trace.size());

  std::uint32_t max_k = 1;
  std::uint32_t max_nprobe = 1;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Request& req = trace[i];
    if (i > 0 && req.arrival_s < trace[i - 1].arrival_s) {
      throw std::invalid_argument("ServingRuntime: trace must be sorted by arrival");
    }
    if (req.id != i) {
      throw std::invalid_argument(
          "ServingRuntime: request ids must be the trace positions 0..n-1");
    }
    if (req.query >= pool_.count()) {
      throw std::invalid_argument("ServingRuntime: request query id out of pool");
    }
    if (req.k == 0 || req.nprobe == 0) {
      throw std::invalid_argument("ServingRuntime: request k and nprobe must be > 0");
    }
    result.records[i].request = req;
    max_k = std::max(max_k, req.k);
    max_nprobe = std::max(max_nprobe, req.nprobe);
  }
  if (trace.empty()) {
    result.report = summarize(result.records, params_.admission.slo_s);
    return result;
  }

  DynamicBatcher batcher(params_.batcher);
  AdmissionController admission(params_.admission);
  backend_.reset_stream();

  // Seed the batch-time predictor with the Eq. 15 open-loop estimate for a
  // full-size batch at the trace's deepest (k, nprobe); observed steps then
  // pull the EWMA toward the actual (skew-inflated) batch times.
  double ewma = backend_.estimate_batch_seconds(params_.batcher.max_batch, max_nprobe,
                                                max_k);

  double now = 0.0;
  double busy_until = 0.0;
  std::size_t next_arrival = 0;
  // Backend handle -> trace index, for the live (launched, maybe deferred)
  // requests whose completion we still have to observe.
  std::unordered_map<std::uint32_t, std::size_t> inflight;

  // Admission decision at the request's own arrival instant: residual of the
  // running step plus the backlog's worth of batches at the EWMA batch time.
  auto process_arrival = [&](const Request& req) {
    const double residual = std::max(0.0, busy_until - req.arrival_s);
    const std::size_t backlog_batches =
        (batcher.depth() + 1 + params_.batcher.max_batch - 1) /
        params_.batcher.max_batch;
    const double predicted =
        residual + static_cast<double>(backlog_batches) * ewma;
    if (admission.admit(predicted)) {
      batcher.enqueue(req, req.arrival_s);
    } else {
      result.records[req.id].shed = true;
    }
  };

  // Run one backend step (a fresh batch or a pure deferred-task drain),
  // advance the virtual clock across it — admitting the arrivals that land
  // while it runs — and mark the requests it completed.
  auto run_step = [&](std::size_t fresh_count, bool flush) {
    if (params_.flush_every > 0 && (result.batches + 1) % params_.flush_every == 0) {
      flush = true;  // periodic flush bounds re-deferral starvation
    }
    const BackendStepStats step = backend_.step(fresh_count, flush);
    std::uint32_t step_k = 1;
    for (const auto& [handle, idx] : inflight) {
      step_k = std::max(step_k, result.records[idx].request.k);
    }
    const double schedule_s = params_.schedule_cost_per_task_s *
                              static_cast<double>(step.tasks);
    const double merge_s = params_.merge_cost_per_hit_s *
                           static_cast<double>(step.tasks) *
                           static_cast<double>(step_k);
    // Same overlap model as the engine: the dedicated pre-step launch (CL on
    // PIM, if any) is serial, then host work (CL + schedule + merge) hides
    // under the batch execution — whichever is longer paces the step.
    const double host_s = step.host_seconds + schedule_s + merge_s;
    const double wall =
        step.pre_seconds + std::max(host_s, step.exec_seconds);
    busy_until = now + wall;
    ++result.batches;
    ewma += params_.ewma_alpha * (wall - ewma);

    // Arrivals landing while this step runs decide admission at their own
    // instants (the queue-delay prediction sees the step's residual).
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival_s <= busy_until) {
      process_arrival(trace[next_arrival]);
      ++next_arrival;
    }
    now = busy_until;

    // Completions: every live request whose tasks have all executed.
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (!backend_.finished(it->first)) {
        ++it;
        continue;
      }
      RequestRecord& rec = result.records[it->second];
      rec.done_s = now;
      rec.latency_s = now - rec.request.arrival_s;
      rec.host_cl_s = step.host_seconds + step.pre_seconds;
      rec.schedule_s = schedule_s;
      rec.pim_s = step.exec_seconds;
      rec.merge_s = merge_s;
      rec.results = backend_.take_results(it->first).size();
      it = inflight.erase(it);
    }
  };

  while (next_arrival < trace.size() || !batcher.empty() || !inflight.empty()) {
    const bool no_more_arrivals = next_arrival >= trace.size();

    // Launch when a trigger fires — or unconditionally once the trace is
    // exhausted, since no further arrivals can top the batch up.
    if (batcher.ready(now) || (no_more_arrivals && !batcher.empty())) {
      std::vector<Request> batch = batcher.take_batch();
      for (const Request& req : batch) {
        const std::uint32_t handle =
            backend_.enqueue(pool_.row(req.query), req.k, req.nprobe);
        inflight.emplace(handle, static_cast<std::size_t>(req.id));
        RequestRecord& rec = result.records[req.id];
        rec.queue_wait_s = now - req.arrival_s;
      }
      const bool flush = no_more_arrivals && batcher.empty();
      run_step(batch.size(), flush);
      continue;
    }

    // Idle with carried deferred tasks and nothing else to wait for: drain
    // them with a flush step so the stragglers complete.
    if (no_more_arrivals && batcher.empty() && backend_.has_deferred()) {
      run_step(0, /*flush=*/true);
      continue;
    }

    // Advance the virtual clock to the next event: an arrival or the
    // batcher's deadline trigger.
    double next_event = batcher.deadline_s();
    if (!no_more_arrivals) {
      next_event = std::min(next_event, trace[next_arrival].arrival_s);
    }
    if (next_event == kInf) break;  // only non-deferred inflight left (none)
    now = std::max(now, next_event);
    while (next_arrival < trace.size() && trace[next_arrival].arrival_s <= now) {
      process_arrival(trace[next_arrival]);
      ++next_arrival;
    }
  }

  result.makespan_s = now;
  result.ewma_batch_s = ewma;
  result.engine_stats = backend_.stats();
  result.report = summarize(result.records, params_.admission.slo_s);
  return result;
}

}  // namespace drim::serve
