#include "serve/metrics.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace drim::serve {

ServeReport summarize(const std::vector<RequestRecord>& records, double slo_s) {
  ServeReport rep;
  rep.offered = records.size();

  std::vector<double> latencies_ms;
  std::vector<double> waits_ms;
  double first_arrival = 0.0;
  double last_done = 0.0;
  bool any = false;
  for (const RequestRecord& r : records) {
    if (!any || r.request.arrival_s < first_arrival) first_arrival = r.request.arrival_s;
    any = true;
    if (r.shed) {
      ++rep.shed;
      continue;
    }
    ++rep.served;
    last_done = std::max(last_done, r.done_s);
    latencies_ms.push_back(r.latency_s * 1e3);
    waits_ms.push_back(r.queue_wait_s * 1e3);
    if (r.latency_s > slo_s) ++rep.slo_violations;
  }
  if (rep.served > 0) {
    rep.duration_s = last_done - first_arrival;
    rep.p50_ms = percentile(latencies_ms, 50);
    rep.p95_ms = percentile(latencies_ms, 95);
    rep.p99_ms = percentile(latencies_ms, 99);
    rep.mean_ms = mean(latencies_ms);
    rep.max_ms = *std::max_element(latencies_ms.begin(), latencies_ms.end());
    rep.mean_queue_wait_ms = mean(waits_ms);
    if (rep.duration_s > 0) {
      rep.throughput_qps = static_cast<double>(rep.served) / rep.duration_s;
      rep.goodput_qps =
          static_cast<double>(rep.served - rep.slo_violations) / rep.duration_s;
    }
  }
  if (rep.offered > 0) {
    rep.shed_rate = static_cast<double>(rep.shed) / static_cast<double>(rep.offered);
    rep.timeout_rate =
        static_cast<double>(rep.slo_violations) / static_cast<double>(rep.offered);
  }
  return rep;
}

}  // namespace drim::serve
