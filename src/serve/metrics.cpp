#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "common/stats.hpp"

namespace drim::serve {

ServeReport summarize(const std::vector<RequestRecord>& records, double slo_s) {
  ServeReport rep;
  rep.offered = records.size();

  std::vector<double> latencies_ms;
  std::vector<double> waits_ms;
  double first_arrival = 0.0;
  double last_done = 0.0;
  bool any = false;
  for (const RequestRecord& r : records) {
    if (!any || r.request.arrival_s < first_arrival) first_arrival = r.request.arrival_s;
    any = true;
    if (r.shed) {
      ++rep.shed;
      continue;
    }
    ++rep.served;
    if (r.degraded) ++rep.degraded;
    last_done = std::max(last_done, r.done_s);
    latencies_ms.push_back(r.latency_s * 1e3);
    waits_ms.push_back(r.queue_wait_s * 1e3);
    if (r.latency_s > slo_s) ++rep.slo_violations;
  }
  if (rep.served > 0) {
    rep.duration_s = last_done - first_arrival;
    rep.p50_ms = percentile(latencies_ms, 50);
    rep.p95_ms = percentile(latencies_ms, 95);
    rep.p99_ms = percentile(latencies_ms, 99);
    rep.mean_ms = mean(latencies_ms);
    rep.max_ms = *std::max_element(latencies_ms.begin(), latencies_ms.end());
    rep.mean_queue_wait_ms = mean(waits_ms);
    if (rep.duration_s > 0) {
      rep.throughput_qps = static_cast<double>(rep.served) / rep.duration_s;
      rep.goodput_qps =
          static_cast<double>(rep.served - rep.slo_violations) / rep.duration_s;
    }
  }
  if (rep.offered > 0) {
    rep.shed_rate = static_cast<double>(rep.shed) / static_cast<double>(rep.offered);
    rep.timeout_rate =
        static_cast<double>(rep.slo_violations) / static_cast<double>(rep.offered);
  }
  return rep;
}

namespace {

std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void write_snapshots_csv(const std::vector<MetricsSnapshot>& snaps,
                         std::ostream& out) {
  // Per-shard columns ride at the end so existing consumers of the base
  // prefix keep parsing; shard = -1 marks the single row of an unsharded
  // backend. Sharded samples repeat the base columns once per shard.
  out << "t_s,queue_depth,inflight,deferred_tasks,ewma_batch_s,admitted,shed,"
         "degraded,shed_rate,batches,shard,shard_draining,shard_queue_tasks,"
         "shard_queries,shard_tasks,shard_fallbacks,shard_busy_s\n";
  for (const MetricsSnapshot& s : snaps) {
    const std::size_t rows = s.shards.empty() ? 1 : s.shards.size();
    for (std::size_t i = 0; i < rows; ++i) {
      out << fmt_double(s.t_s) << ',' << s.queue_depth << ',' << s.inflight << ','
          << s.deferred_tasks << ',' << fmt_double(s.ewma_batch_s) << ','
          << s.admitted << ',' << s.shed << ',' << s.degraded << ','
          << fmt_double(s.shed_rate) << ',' << s.batches;
      if (s.shards.empty()) {
        out << ",-1,0,0,0,0,0,0\n";
      } else {
        const ShardHealth& h = s.shards[i];
        out << ',' << h.shard << ',' << (h.draining ? 1 : 0) << ','
            << h.queue_tasks << ',' << h.dispatched_queries << ','
            << h.dispatched_tasks << ',' << h.fallback_tasks << ','
            << fmt_double(h.busy_seconds) << '\n';
      }
    }
  }
}

void write_snapshots_json(const std::vector<MetricsSnapshot>& snaps,
                          std::ostream& out) {
  out << "[";
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const MetricsSnapshot& s = snaps[i];
    out << (i ? ",\n" : "\n");
    out << "{\"t_s\":" << fmt_double(s.t_s) << ",\"queue_depth\":" << s.queue_depth
        << ",\"inflight\":" << s.inflight
        << ",\"deferred_tasks\":" << s.deferred_tasks
        << ",\"ewma_batch_s\":" << fmt_double(s.ewma_batch_s)
        << ",\"admitted\":" << s.admitted << ",\"shed\":" << s.shed
        << ",\"degraded\":" << s.degraded
        << ",\"shed_rate\":" << fmt_double(s.shed_rate)
        << ",\"batches\":" << s.batches;
    if (!s.shards.empty()) {
      out << ",\"shards\":[";
      for (std::size_t j = 0; j < s.shards.size(); ++j) {
        const ShardHealth& h = s.shards[j];
        out << (j ? "," : "") << "{\"shard\":" << h.shard
            << ",\"draining\":" << (h.draining ? "true" : "false")
            << ",\"queue_tasks\":" << h.queue_tasks
            << ",\"queries\":" << h.dispatched_queries
            << ",\"tasks\":" << h.dispatched_tasks
            << ",\"fallbacks\":" << h.fallback_tasks
            << ",\"busy_s\":" << fmt_double(h.busy_seconds) << '}';
      }
      out << ']';
    }
    out << '}';
  }
  out << "\n]\n";
}

void write_snapshots_file(const std::vector<MetricsSnapshot>& snaps,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("metrics: cannot open " + path);
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    write_snapshots_csv(snaps, out);
  } else {
    write_snapshots_json(snaps, out);
  }
}

}  // namespace drim::serve
