#include "serve/update_workload.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/rng.hpp"

namespace drim::serve {

UpdateTrace generate_update_trace(const std::vector<Request>& searches,
                                  const FloatMatrix& insert_pool,
                                  std::size_t base_ntotal,
                                  const UpdateWorkloadParams& params) {
  if (params.update_rate < 0.0) {
    throw std::invalid_argument("update_rate must be >= 0");
  }
  if (params.insert_fraction < 0.0 || params.insert_fraction > 1.0) {
    throw std::invalid_argument("insert_fraction must be in [0, 1]");
  }
  const auto count = static_cast<std::size_t>(
      params.update_rate * static_cast<double>(searches.size()) + 0.5);
  UpdateTrace trace;
  if (count == 0) return trace;
  if (insert_pool.count() == 0 && params.insert_fraction > 0.0) {
    throw std::invalid_argument("insert_fraction > 0 needs a non-empty insert pool");
  }
  if (base_ntotal == 0 && params.insert_fraction < 1.0) {
    throw std::invalid_argument("deletes need a non-empty base id space");
  }

  Rng rng(params.seed);
  const double span_s = searches.empty() ? 1.0 : searches.back().arrival_s;

  // Draw the arrival instants first and sort them, so the op *sequence*
  // (what the writer and oracle consume) is independent of how the kinds and
  // targets are drawn below.
  std::vector<double> arrivals(count);
  for (double& a : arrivals) a = rng.next_double() * span_s;
  std::sort(arrivals.begin(), arrivals.end());

  trace.ops.reserve(count);
  std::size_t inserted = 0;
  // The delete sampler's cdf is O(id space) to build; rebuild it only when
  // an insert has grown the space since the last delete.
  std::unique_ptr<ZipfSampler> zipf;
  std::uint32_t zipf_space = 0;
  for (std::size_t i = 0; i < count; ++i) {
    UpdateOp op;
    op.arrival_s = arrivals[i];
    if (rng.next_double() < params.insert_fraction) {
      op.kind = UpdateKind::kInsert;
      const auto row = static_cast<std::uint32_t>(rng.next_below(insert_pool.count()));
      op.target = static_cast<std::uint32_t>(trace.insert_vectors.count());
      trace.insert_vectors.push_back(insert_pool.row(row));
      ++inserted;
    } else {
      op.kind = UpdateKind::kDelete;
      // Zipf over the id space that exists at this point of the sequence
      // (base ids plus the inserts already issued). Low ids are hottest, so
      // skew concentrates churn on the oldest — typically largest — lists.
      // A duplicate draw deletes an already-dead id: a deterministic no-op.
      const auto id_space = static_cast<std::uint32_t>(base_ntotal + inserted);
      if (!zipf || zipf_space != id_space) {
        zipf = std::make_unique<ZipfSampler>(id_space, params.delete_skew);
        zipf_space = id_space;
      }
      op.target = (*zipf)(rng);
    }
    trace.ops.push_back(op);
  }
  return trace;
}

UpdateOracle::UpdateOracle(const FloatMatrix& base)
    : points_(base), dead_(base.count(), 0), live_count_(base.count()) {}

std::uint32_t UpdateOracle::apply(const UpdateOp& op,
                                  const FloatMatrix& insert_vectors) {
  if (op.kind == UpdateKind::kInsert) {
    const auto id = static_cast<std::uint32_t>(points_.count());
    points_.push_back(insert_vectors.row(op.target));
    dead_.push_back(0);
    ++live_count_;
    return id;
  }
  if (op.target < dead_.size() && dead_[op.target] == 0) {
    dead_[op.target] = 1;
    --live_count_;
  }
  return op.target;
}

std::vector<Neighbor> UpdateOracle::topk(std::span<const float> query,
                                         std::size_t k) const {
  TopK heap(k);
  for (std::size_t id = 0; id < points_.count(); ++id) {
    if (dead_[id]) continue;
    const auto row = points_.row(id);
    float dist = 0.0f;
    for (std::size_t d = 0; d < row.size(); ++d) {
      const float diff = row[d] - query[d];
      dist += diff * diff;
    }
    heap.push(dist, static_cast<std::uint32_t>(id));
  }
  return heap.take_sorted();
}

}  // namespace drim::serve
