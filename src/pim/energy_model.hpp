#pragma once
// Energy accounting for the Fig. 9 comparison. The paper measures the CPU
// baseline via Intel RAPL and quotes 13.92 W per PIM-DIMM; without RAPL on
// the simulated platform we use power x modeled-time with the same published
// platform powers (DESIGN.md documents this substitution — the paper's
// energy result is time-dominated).

#include <cstddef>

#include "pim/pim_config.hpp"

namespace drim {

/// Platform power envelope.
struct EnergyModel {
  double watts_per_dimm = 13.92;     ///< paper-quoted UPMEM PIM-DIMM power
  double host_cpu_watts = 100.0;     ///< Xeon Silver 4216 TDP (UPMEM host)
  double baseline_cpu_watts = 125.0; ///< Xeon Gold 5218 TDP (CPU baseline)

  /// Number of DIMMs needed for `num_dpus` DPUs.
  std::size_t dimms(const PimConfig& cfg) const {
    return (cfg.num_dpus + cfg.dpus_per_dimm - 1) / cfg.dpus_per_dimm;
  }

  /// Total UPMEM-server power: PIM DIMMs plus the host CPU driving them.
  double pim_server_watts(const PimConfig& cfg) const {
    return static_cast<double>(dimms(cfg)) * watts_per_dimm + host_cpu_watts;
  }

  /// Joules for a DRIM-ANN batch of the given modeled duration.
  double pim_energy_joules(const PimConfig& cfg, double seconds) const {
    return pim_server_watts(cfg) * seconds;
  }

  /// Joules for the CPU baseline over the given duration.
  double cpu_energy_joules(double seconds) const {
    return baseline_cpu_watts * seconds;
  }
};

}  // namespace drim
