#pragma once
// Configuration of the simulated UPMEM-style DRAM-PIM platform. Values
// default to the published UPMEM DDR4-PIM characteristics the paper relies
// on (UPMEM SDK docs and the Gomez-Luna et al. characterization, ref [19]):
//   - DPU: 24-hw-thread ("tasklet") in-order RISC core @ 450 MHz, ~1
//     instruction/cycle when the 11-stage pipeline is saturated (>= 11
//     tasklets), no hardware multiplier (32-bit multiply ~= 32 cycles).
//   - Memory: 64 MB MRAM + 64 KB WRAM per DPU; MRAM is reachable only via
//     DMA whose cost is affine in the transfer size, peaking near 630 MB/s
//     (the paper quotes 63.3% of the nominal 1 GB/s).
//   - Host link: ~19.2 GB/s total across all DPUs (DDR4-2400 channel bound),
//     i.e. 0.75% of the aggregate internal PIM bandwidth.
//   - Launch semantics: the host synchronizes with ALL DPUs per batch, so
//     batch latency is governed by the slowest DPU.

#include <cstddef>
#include <cstdint>

namespace drim {

/// Per-instruction cycle costs on a DPU (UPMEM has no hardware mul/div; the
/// paper: "multiplication is approximately 32 times more expensive than
/// addition").
struct DpuInstructionCosts {
  std::uint32_t add = 1;       ///< integer add/sub
  std::uint32_t mul32 = 32;    ///< 32-bit multiply (software shift-add)
  std::uint32_t div32 = 64;    ///< 32-bit divide
  std::uint32_t cmp = 1;       ///< compare / branch
  std::uint32_t wram_access = 1;  ///< WRAM load or store
  std::uint32_t lut_lookup = 2;   ///< WRAM table lookup (address calc + load)
  /// One squaring via the broadcast square table (Section III-A): absolute
  /// value, bounds test, address arithmetic, and the load itself. Calibrated
  /// to the paper's measurement that the conversion speeds LC up by only
  /// ~1.93x over 32-cycle multiplies (random accesses into the square table
  /// miss the sequential-DMA sweet spot): (12 + 2 adds) vs (32 + 2 adds)
  /// per dimension ~= 2.4x.
  std::uint32_t sq_lut_lookup = 12;
};

/// Full platform description.
struct PimConfig {
  // --- topology ---
  std::size_t num_dpus = 64;        ///< simulated DPU count (paper HW: 2530)
  std::size_t dpus_per_dimm = 128;  ///< UPMEM PIM-DIMM organization
  std::size_t tasklets = 16;        ///< software threads per DPU (max 24)
  std::size_t pipeline_depth = 11;  ///< stages to fill for 1 instr/cycle

  // --- clocks & compute ---
  double frequency_hz = 450e6;
  double compute_scale = 1.0;  ///< Fig. 13 what-if: 2x / 5x faster compute
  DpuInstructionCosts costs;

  // --- per-DPU memories ---
  std::size_t mram_bytes = 64ull << 20;
  std::size_t wram_bytes = 64ull << 10;

  // --- MRAM DMA cost model: cycles = dma_fixed_cycles + size * cycles/byte.
  // 0.7 cycles/byte @450MHz ~= 643 MB/s streaming, matching the measured
  // ~63% of nominal bandwidth; small/random transfers pay the fixed cost.
  double dma_fixed_cycles = 24.0;
  double dma_cycles_per_byte = 0.7;

  // --- host link ---
  double host_link_bytes_per_sec = 19.2e9;  ///< shared by all DPUs
  double launch_overhead_sec = 20e-6;       ///< per batch-launch host cost

  /// Effective instructions-per-cycle given the tasklet count: the in-order
  /// pipeline issues one instruction per tasklet per `pipeline_depth` cycles
  /// until >= pipeline_depth tasklets keep it full.
  double effective_ipc() const {
    const double fill = static_cast<double>(tasklets) /
                        static_cast<double>(pipeline_depth);
    return fill < 1.0 ? fill : 1.0;
  }

  /// Seconds per (scaled) compute cycle.
  double seconds_per_cycle() const { return 1.0 / (frequency_hz * compute_scale); }

  /// Peak per-DPU MRAM streaming bandwidth implied by the DMA model (B/s).
  double mram_stream_bandwidth() const {
    return frequency_hz / dma_cycles_per_byte;
  }
};

}  // namespace drim
