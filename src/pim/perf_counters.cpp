#include "pim/perf_counters.hpp"

namespace drim {

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::CL: return "CL";
    case Phase::RC: return "RC";
    case Phase::LC: return "LC";
    case Phase::DC: return "DC";
    case Phase::TS: return "TS";
    case Phase::AUX: return "AUX";
    case Phase::kCount: break;
  }
  return "?";
}

std::uint64_t DpuCounters::total_instr_cycles() const {
  std::uint64_t s = 0;
  for (const auto& p : phases) s += p.instr_cycles;
  return s;
}

double DpuCounters::total_dma_cycles() const {
  double s = 0;
  for (const auto& p : phases) s += p.dma_cycles;
  return s;
}

std::uint64_t DpuCounters::total_mram_bytes() const {
  std::uint64_t s = 0;
  for (const auto& p : phases) s += p.mram_bytes_read + p.mram_bytes_written;
  return s;
}

}  // namespace drim
