#pragma once
// The whole PIM platform: an array of DPUs plus the host link. Models the
// UPMEM execution contract the paper's load-balancing work targets:
//   - the host launches a kernel on ALL DPUs and must wait for every one of
//     them (batch latency = slowest DPU),
//   - host<->DPU transfers share one ~19.2 GB/s channel (0.75% of aggregate
//     internal bandwidth), so per-batch data movement is accounted and
//     reported separately,
//   - DPUs cannot communicate with each other.
// Kernels run serially on the simulation host but are timed as if parallel.

#include <functional>
#include <memory>
#include <vector>

#include "pim/dpu.hpp"

namespace drim {

/// Timing of one barrier-synchronized batch launch.
struct BatchResult {
  std::vector<double> per_dpu_seconds;  ///< modeled execution time per DPU
  double dpu_seconds = 0.0;          ///< max over DPUs (the barrier)
  double transfer_in_seconds = 0.0;  ///< host -> DPUs before launch
  double transfer_out_seconds = 0.0; ///< DPUs -> host after completion
  double launch_overhead_seconds = 0.0;

  double total_seconds() const {
    return transfer_in_seconds + dpu_seconds + transfer_out_seconds +
           launch_overhead_seconds;
  }
};

/// A PIM platform instance.
class PimSystem {
 public:
  explicit PimSystem(const PimConfig& config);
  PimSystem(const PimSystem&) = delete;
  PimSystem& operator=(const PimSystem&) = delete;

  const PimConfig& config() const { return config_; }
  std::size_t num_dpus() const { return dpus_.size(); }
  Dpu& dpu(std::size_t i) { return *dpus_[i]; }
  const Dpu& dpu(std::size_t i) const { return *dpus_[i]; }

  // ---- host -> DPU data movement (accumulates into the next batch's
  //      transfer_in time) ----
  /// Copy bytes into one DPU's MRAM at `offset`.
  void push(std::size_t dpu_id, std::size_t offset, std::span<const std::uint8_t> data);
  /// Copy the same bytes into every DPU at per-DPU offset `offset`
  /// (hardware broadcast: transmitted once over the channel).
  void broadcast(std::size_t offset, std::span<const std::uint8_t> data);
  /// Allocate `bytes` at the same offset on every DPU; returns the offset.
  /// All DPUs stay allocation-synchronized (the usual UPMEM symmetric-heap
  /// pattern).
  std::size_t alloc_symmetric(std::size_t bytes);

  // ---- DPU -> host ----
  void pull(std::size_t dpu_id, std::size_t offset, std::span<std::uint8_t> out);

  /// Run `kernel(dpu_id, ctx)` on every DPU, modeling a barrier-synchronized
  /// launch. Counters are reset before the run; transfer bytes accumulated
  /// via push/broadcast since the previous batch are billed as transfer_in,
  /// and bytes pulled during `collect` (invoked after the barrier) as
  /// transfer_out.
  BatchResult run_batch(const std::function<void(std::size_t, DpuContext&)>& kernel,
                        const std::function<void()>& collect = nullptr);

  /// Aggregate counters over all DPUs (for energy / bandwidth reports).
  DpuCounters aggregate_counters() const;

 private:
  PimConfig config_;
  std::vector<std::unique_ptr<Dpu>> dpus_;
  std::uint64_t pending_in_bytes_ = 0;   // host->DPU since last batch
  std::uint64_t pending_out_bytes_ = 0;  // DPU->host during collect
  bool collecting_ = false;
};

}  // namespace drim
