#pragma once
// The whole PIM platform: an array of DPUs plus the host link. Models the
// UPMEM execution contract the paper's load-balancing work targets:
//   - the host launches a kernel on ALL DPUs and must wait for every one of
//     them (batch latency = slowest DPU),
//   - host<->DPU transfers share one ~19.2 GB/s channel (0.75% of aggregate
//     internal bandwidth), so per-batch data movement is accounted and
//     reported separately,
//   - DPUs cannot communicate with each other.
// Kernel runs are data-independent (each Dpu owns private MRAM + counters),
// so run_batch executes them across host threads with drim::parallel_for
// while timing them as if hardware-parallel. Simulated cycle counts, batch
// timings, and MRAM contents are bit-identical to a single-threaded run:
// transfer billing sums exact integer byte counts (atomics), and every other
// mutation is DPU-private. See DESIGN.md "Host threading model".

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "pim/dpu.hpp"

namespace drim {

/// Timing of one barrier-synchronized batch launch.
struct BatchResult {
  std::vector<double> per_dpu_seconds;  ///< modeled execution time per DPU
  double dpu_seconds = 0.0;          ///< max over DPUs (the barrier)
  double transfer_in_seconds = 0.0;  ///< host -> DPUs before launch
  double transfer_out_seconds = 0.0; ///< DPUs -> host after completion
  double launch_overhead_seconds = 0.0;

  double total_seconds() const {
    return transfer_in_seconds + dpu_seconds + transfer_out_seconds +
           launch_overhead_seconds;
  }
};

/// A PIM platform instance.
class PimSystem {
 public:
  explicit PimSystem(const PimConfig& config);
  PimSystem(const PimSystem&) = delete;
  PimSystem& operator=(const PimSystem&) = delete;

  const PimConfig& config() const { return config_; }
  std::size_t num_dpus() const { return dpus_.size(); }
  Dpu& dpu(std::size_t i) { return *dpus_[i]; }
  const Dpu& dpu(std::size_t i) const { return *dpus_[i]; }

  // ---- host -> DPU data movement (accumulates into the next batch's
  //      transfer_in time) ----
  /// Copy bytes into one DPU's MRAM at `offset`. Thread-safe for distinct
  /// DPUs (each Mram is private; the byte tally is atomic), so per-DPU
  /// staging loops may call it from parallel_for.
  void push(std::size_t dpu_id, std::size_t offset, std::span<const std::uint8_t> data);
  /// Copy the same bytes into every DPU at per-DPU offset `offset`
  /// (hardware broadcast: transmitted once over the channel). The per-DPU
  /// copies fan out across host threads internally.
  void broadcast(std::size_t offset, std::span<const std::uint8_t> data);
  /// Allocate `bytes` at the same offset on every DPU; returns the offset.
  /// All DPUs stay allocation-synchronized (the usual UPMEM symmetric-heap
  /// pattern).
  std::size_t alloc_symmetric(std::size_t bytes);

  // ---- DPU -> host ----
  /// Thread-safe for distinct DPUs, like push().
  void pull(std::size_t dpu_id, std::size_t offset, std::span<std::uint8_t> out);

  /// Bill all bytes pushed/broadcast since the last batch (or drain) NOW,
  /// outside any batch: returns the seconds they take on the host link and
  /// clears the pending tally. Used for one-time index loading so the first
  /// search batch is not charged for the static upload.
  double drain_pending_transfer();

  /// Run `kernel(dpu_id, ctx)` on every DPU, modeling a barrier-synchronized
  /// launch. Counters are reset before the run; transfer bytes accumulated
  /// via push/broadcast since the previous batch are billed as transfer_in,
  /// and bytes pulled during `collect` (invoked after the barrier) as
  /// transfer_out. Kernels execute concurrently across host threads; the
  /// kernel callable must not mutate state shared between DPUs.
  BatchResult run_batch(const std::function<void(std::size_t, DpuContext&)>& kernel,
                        const std::function<void()>& collect = nullptr);

  /// Aggregate counters over all DPUs (for energy / bandwidth reports).
  DpuCounters aggregate_counters() const;

 private:
  PimConfig config_;
  std::vector<std::unique_ptr<Dpu>> dpus_;
  // Exact integer byte tallies; atomic so parallel staging / collection
  // loops can push/pull concurrently. Summation order cannot change the
  // total, so billed seconds stay bit-identical to a serial run.
  std::atomic<std::uint64_t> pending_in_bytes_{0};   // host->DPU since last batch
  std::atomic<std::uint64_t> pending_out_bytes_{0};  // DPU->host during collect
  bool collecting_ = false;
};

}  // namespace drim
