#pragma once
// The functional PIM platform: an array of simulated DPUs plus the host
// link. Models the UPMEM execution contract the paper's load-balancing work
// targets:
//   - the host launches a kernel on ALL DPUs and must wait for every one of
//     them (batch latency = slowest DPU),
//   - host<->DPU transfers share one ~19.2 GB/s channel (0.75% of aggregate
//     internal bandwidth), so per-batch data movement is accounted and
//     reported separately,
//   - DPUs cannot communicate with each other.
// Kernel runs are data-independent (each Dpu owns private MRAM + counters),
// so run_batch executes them across host threads with drim::parallel_for
// while timing them as if hardware-parallel. Simulated cycle counts, batch
// timings, and MRAM contents are bit-identical to a single-threaded run:
// transfer billing sums exact integer byte counts (atomics), and every other
// mutation is DPU-private. See DESIGN.md "Host threading model".
//
// DpuArrayPlatform is the shared chassis (DPU array, byte tallies, batch
// loop); SimPimPlatform materializes transfers into simulated MRAM, while
// AnalyticPimPlatform (pim/analytic_platform.hpp) only bills them.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "pim/dpu.hpp"
#include "pim/pim_platform.hpp"

namespace drim {

/// Common PimPlatform machinery for platforms backed by an array of
/// simulated Dpu objects: allocation, counter aggregation, pending-transfer
/// tallies, and the parallel barrier-synchronized batch loop. Subclasses
/// decide whether push/broadcast/pull move real bytes.
class DpuArrayPlatform : public PimPlatform {
 public:
  explicit DpuArrayPlatform(const PimConfig& config);
  DpuArrayPlatform(const DpuArrayPlatform&) = delete;
  DpuArrayPlatform& operator=(const DpuArrayPlatform&) = delete;

  const PimConfig& config() const override { return config_; }
  std::size_t num_dpus() const override { return dpus_.size(); }

  /// Direct DPU access for tests and platform-aware tools (not part of the
  /// abstract interface — the engine never uses it).
  Dpu& dpu(std::size_t i) { return *dpus_[i]; }
  const Dpu& dpu(std::size_t i) const { return *dpus_[i]; }

  std::size_t alloc_symmetric(std::size_t bytes) override;
  std::size_t alloc_on(std::size_t dpu_id, std::size_t bytes) override;
  std::size_t mram_used(std::size_t dpu_id) const override;

  double drain_pending_transfer() override;
  /// Rewind every DPU's MRAM allocator (and zero backing where it exists) so
  /// a new index snapshot's static layout can be rebuilt from offset 0.
  void reset_memory() override {
    for (auto& d : dpus_) d->mram().reset();
  }
  BatchResult run_batch(const std::function<void(std::size_t, DpuContext&)>& kernel,
                        const std::function<void()>& collect = nullptr) override;
  DpuCounters aggregate_counters() const override;
  double dpu_phase_seconds(std::size_t dpu_id, Phase p) const override;

 protected:
  PimConfig config_;
  std::vector<std::unique_ptr<Dpu>> dpus_;
  // Exact integer byte tallies; atomic so parallel staging / collection
  // loops can push/pull concurrently. Summation order cannot change the
  // total, so billed seconds stay bit-identical to a serial run.
  std::atomic<std::uint64_t> pending_in_bytes_{0};   // host->DPU since last batch
  std::atomic<std::uint64_t> pending_out_bytes_{0};  // DPU->host during collect
  bool collecting_ = false;
};

/// The functional simulator platform: push/broadcast/pull move real bytes
/// through each DPU's simulated MRAM, so kernels compute bit-exact results.
class SimPimPlatform final : public DpuArrayPlatform {
 public:
  explicit SimPimPlatform(const PimConfig& config) : DpuArrayPlatform(config) {}

  std::string name() const override { return "sim"; }
  bool functional() const override { return true; }

  /// Thread-safe for distinct DPUs (each Mram is private; the byte tally is
  /// atomic), so per-DPU staging loops may call it from parallel_for.
  void push(std::size_t dpu_id, std::size_t offset,
            std::span<const std::uint8_t> data) override;
  /// Per-DPU copies fan out across host threads; transmitted once (rank-
  /// level broadcast) on the link.
  void broadcast(std::size_t offset, std::span<const std::uint8_t> data) override;
  void pull(std::size_t dpu_id, std::size_t offset, std::span<std::uint8_t> out) override;
};

/// Historical name of the functional platform; tests and tools that poke at
/// simulated MRAM directly keep using it.
using PimSystem = SimPimPlatform;

}  // namespace drim
