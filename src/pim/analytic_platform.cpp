#include "pim/analytic_platform.hpp"

#include <stdexcept>

namespace drim {

void AnalyticPimPlatform::push(std::size_t dpu_id, std::size_t offset,
                               std::span<const std::uint8_t> data) {
  if (offset + data.size() > dpus_.at(dpu_id)->mram().capacity()) {
    throw std::runtime_error("analytic push beyond MRAM capacity");
  }
  pending_in_bytes_.fetch_add(data.size(), std::memory_order_relaxed);
}

void AnalyticPimPlatform::broadcast(std::size_t offset,
                                    std::span<const std::uint8_t> data) {
  if (offset + data.size() > config_.mram_bytes) {
    throw std::runtime_error("analytic broadcast beyond MRAM capacity");
  }
  // Transmitted once (rank-level broadcast), like the functional platform.
  pending_in_bytes_.fetch_add(data.size(), std::memory_order_relaxed);
}

void AnalyticPimPlatform::pull(std::size_t dpu_id, std::size_t offset,
                               std::span<std::uint8_t> out) {
  (void)dpu_id;
  (void)offset;
  if (collecting_) pending_out_bytes_.fetch_add(out.size(), std::memory_order_relaxed);
}

std::unique_ptr<PimPlatform> make_pim_platform(PimPlatformKind kind,
                                               const PimConfig& config) {
  switch (kind) {
    case PimPlatformKind::kSim:
      return std::make_unique<SimPimPlatform>(config);
    case PimPlatformKind::kAnalytic:
      return std::make_unique<AnalyticPimPlatform>(config);
  }
  throw std::invalid_argument("unknown PimPlatformKind");
}

std::string pim_platform_name(PimPlatformKind kind) {
  return kind == PimPlatformKind::kSim ? "sim" : "analytic";
}

PimPlatformKind parse_pim_platform(const std::string& name) {
  if (name == "sim") return PimPlatformKind::kSim;
  if (name == "analytic") return PimPlatformKind::kAnalytic;
  throw std::invalid_argument("unknown platform '" + name + "' (want sim|analytic)");
}

}  // namespace drim
