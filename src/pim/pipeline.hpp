#pragma once
// Virtual-timeline pipeline simulator for cross-batch overlap (ISSUE 5).
//
// Models the three resources a batch step contends on:
//   * the host<->DPU link — half-duplex and shared, so every transfer
//     (query push, result pull, CL staging) occupies it exclusively; modeled
//     as a sorted list of busy intervals with earliest-gap placement, so a
//     short push can slot in between two pulls,
//   * the DPU array — barrier-synchronized launches make it exclusive per
//     batch, so a scalar free pointer suffices,
//   * the host CPU doing coarse clustering / merge — also a scalar.
//
// Plus `depth` MRAM staging slots (ping/pong for depth 2): batch i reuses
// slot i % depth and therefore cannot start transferring in before the
// previous occupant's results have been pulled out.
//
// The timeline only reorders *modeled timestamps*; the caller still executes
// batches strictly in order, so results are bit-identical to the serial path.

#include <cstddef>
#include <utility>
#include <vector>

namespace drim {

// Durations of one batch's stages, as reported by the platform.
struct PipelineStageTimes {
  double transfer_in_seconds = 0.0;
  double launch_overhead_seconds = 0.0;
  double compute_seconds = 0.0;  // max over DPUs (barrier launch)
  double transfer_out_seconds = 0.0;
  double host_seconds = 0.0;  // host-side CL/merge, overlaps device stages
};

// Absolute placement of one batch on the virtual timeline.
struct PipelineSchedule {
  double submit_seconds = 0.0;  // when the caller handed us the batch
  double pre_start = 0.0;       // CL-on-PIM pre-launch (0-length when unused)
  double pre_end = 0.0;
  double in_start = 0.0;  // query push on the host link
  double in_end = 0.0;
  double compute_start = 0.0;  // launch overhead + kernel on the DPU array
  double compute_end = 0.0;
  double out_start = 0.0;  // result pull on the host link
  double out_end = 0.0;
  double host_start = 0.0;  // host CL / serve-side work
  double host_end = 0.0;
  double done_seconds = 0.0;  // completion: max(out_end, host_end), monotone
};

class PipelineTimeline {
 public:
  explicit PipelineTimeline(std::size_t depth);

  std::size_t depth() const { return depth_; }

  // Opens batch `step_index` (slots assigned round-robin internally).
  // `pre_seconds` is an optional pre-launch occupying both the link and the
  // DPU array before the main stages (CL-on-PIM locate). Returns the
  // absolute start of that pre-launch (== the batch floor when pre is 0) so
  // the caller can trace it before running the main launch.
  double begin_batch(double submit_seconds, double pre_seconds);

  // Closes the batch opened by begin_batch, placing its stages. Must be
  // called exactly once per begin_batch, in order.
  PipelineSchedule finish_batch(const PipelineStageTimes& stages);

  // Completion time of the most recently finished batch (monotone).
  double last_done_seconds() const { return last_done_; }
  // Total time the host link / DPU array were held. The makespan can never
  // be smaller than either: both resources are exclusive.
  double link_busy_seconds() const { return link_busy_; }
  double dpu_busy_seconds() const { return dpu_busy_; }

  void reset();

 private:
  // Places `duration` on the link at the earliest gap starting at or after
  // `earliest`; returns the chosen start.
  double reserve_link(double earliest, double duration);
  void prune_link();

  std::size_t depth_;
  std::size_t next_index_ = 0;
  std::vector<double> slot_free_;  // per staging slot: prior occupant's out_end
  std::vector<std::pair<double, double>> link_;  // sorted busy intervals
  double dpu_free_ = 0.0;
  double host_free_ = 0.0;
  double last_done_ = 0.0;
  double link_busy_ = 0.0;
  double dpu_busy_ = 0.0;

  // In-flight batch between begin_batch and finish_batch.
  bool open_ = false;
  std::size_t slot_ = 0;
  double submit_ = 0.0;
  double pre_start_ = 0.0;
  double pre_end_ = 0.0;
};

}  // namespace drim
