#include "pim/dpu.hpp"

#include <algorithm>
#include <stdexcept>

namespace drim {

void Mram::ensure_backing(std::size_t end) {
  if (end > data_.size()) {
    // Grow geometrically to amortize, never past the logical capacity.
    data_.resize(std::min(capacity_, std::max(end, data_.size() * 2)));
  }
}

std::size_t Mram::alloc(std::size_t bytes) {
  const std::size_t aligned = (bytes + 7) & ~std::size_t{7};
  if (used_ + aligned > capacity_) {
    throw std::runtime_error("MRAM exhausted: need " + std::to_string(aligned) +
                             " bytes, free " + std::to_string(capacity_ - used_));
  }
  const std::size_t offset = used_;
  used_ += aligned;
  return offset;
}

void Mram::write(std::size_t offset, std::span<const std::uint8_t> src) {
  if (offset + src.size() > capacity_) {
    throw std::runtime_error("MRAM write out of range");
  }
  ensure_backing(offset + src.size());
  std::memcpy(data_.data() + offset, src.data(), src.size());
}

void Mram::read(std::size_t offset, std::span<std::uint8_t> dst) const {
  if (offset + dst.size() > capacity_) {
    throw std::runtime_error("MRAM read out of range");
  }
  if (offset + dst.size() > data_.size()) {
    // Untouched MRAM reads as zeros without forcing backing allocation.
    std::fill(dst.begin(), dst.end(), std::uint8_t{0});
    const std::size_t avail = offset < data_.size() ? data_.size() - offset : 0;
    if (avail > 0) std::memcpy(dst.data(), data_.data() + offset, std::min(avail, dst.size()));
    return;
  }
  std::memcpy(dst.data(), data_.data() + offset, dst.size());
}

void DpuContext::mram_read(std::size_t mram_offset, std::span<std::uint8_t> dst) {
  mram_.read(mram_offset, dst);
  PhaseCounters& c = cur();
  c.dma_cycles += dma_cost(dst.size());
  c.mram_bytes_read += dst.size();
}

void DpuContext::mram_write(std::size_t mram_offset, std::span<const std::uint8_t> src) {
  mram_.write(mram_offset, src);
  PhaseCounters& c = cur();
  c.dma_cycles += dma_cost(src.size());
  c.mram_bytes_written += src.size();
}

double Dpu::execution_seconds() const {
  const double compute =
      static_cast<double>(counters_.total_instr_cycles()) / cfg_.effective_ipc();
  const double dma = counters_.total_dma_cycles();
  // compute_scale accelerates the instruction stream only (Fig. 13 scales
  // "computational ability"); the DMA engine speed is a memory property.
  const double compute_sec = compute * cfg_.seconds_per_cycle();
  const double dma_sec = dma / cfg_.frequency_hz;
  return std::max(compute_sec, dma_sec);
}

double Dpu::phase_seconds(Phase p) const {
  const PhaseCounters& c = counters_.at(p);
  const double compute_sec =
      static_cast<double>(c.instr_cycles) / cfg_.effective_ipc() * cfg_.seconds_per_cycle();
  const double dma_sec = c.dma_cycles / cfg_.frequency_hz;
  return std::max(compute_sec, dma_sec);
}

void check_wram_budget(const PimConfig& config, std::size_t bytes) {
  if (bytes > config.wram_bytes) {
    throw std::runtime_error("WRAM budget exceeded: kernel needs " +
                             std::to_string(bytes) + " bytes, WRAM is " +
                             std::to_string(config.wram_bytes));
  }
}

}  // namespace drim
