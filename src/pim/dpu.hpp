#pragma once
// Functional-plus-cost model of a single UPMEM DPU. Kernels are real C++
// code that reads and writes simulated MRAM/WRAM byte arrays — results are
// bit-exact — while every arithmetic operation and DMA transfer charges
// cycles into per-phase counters (see DESIGN.md "Functional + cost-model
// simulation"). A kernel interacts with the DPU exclusively through
// DpuContext, mirroring the UPMEM SDK programming model (mram_read /
// mram_write DMA intrinsics + WRAM scratch).
//
// Threading contract: a Dpu is NOT internally synchronized. PimSystem's
// parallel run_batch assigns at most one host thread to each Dpu at a time
// (kernel run, staging push, or collection pull), which is sufficient
// because MRAM, WRAM budget, and counters are all per-DPU private state;
// cross-DPU shared state lives in PimSystem and is atomic there.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "pim/perf_counters.hpp"
#include "pim/pim_config.hpp"

namespace drim {

/// One DPU's private 64 MB MRAM. A bump allocator hands out regions; reads
/// and writes are plain memcpy (costs are charged by DpuContext, which is the
/// only path kernels may use).
class Mram {
 public:
  /// Capacity is logical; backing storage grows on first touch so simulating
  /// thousands of mostly-empty 64 MB DPUs stays cheap.
  explicit Mram(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }

  /// Reserve `bytes` (8-byte aligned, as UPMEM DMA requires). Throws
  /// std::bad_alloc-like runtime_error when MRAM is exhausted.
  std::size_t alloc(std::size_t bytes);

  /// Release every allocation and zero the backing store. The engine uses
  /// this when it installs a new index snapshot: the whole static layout
  /// (codes, ids, codebooks, centroids, staging) is rebuilt from scratch,
  /// which keeps the functional simulation bit-exact while the *billed*
  /// publish cost stays the modeled delta, not the physical reload.
  void reset() {
    used_ = 0;
    std::fill(data_.begin(), data_.end(), std::uint8_t{0});
  }

  /// Host-side (transfer) access — used by PimSystem, not by kernels.
  void write(std::size_t offset, std::span<const std::uint8_t> src);
  void read(std::size_t offset, std::span<std::uint8_t> dst) const;

  const std::uint8_t* raw(std::size_t offset) const { return data_.data() + offset; }
  std::uint8_t* raw(std::size_t offset) { return data_.data() + offset; }

 private:
  void ensure_backing(std::size_t end);

  std::size_t capacity_;
  std::vector<std::uint8_t> data_;  // grows lazily up to capacity_
  std::size_t used_ = 0;
};

/// Cycle-charging handle passed to kernels. All methods are cheap and
/// inlineable; kernels should batch charges (e.g. charge_adds(dsub) per
/// codeword) rather than per scalar to keep simulation fast — the counts are
/// identical either way.
class DpuContext {
 public:
  DpuContext(const PimConfig& config, Mram& mram, DpuCounters& counters)
      : cfg_(config), mram_(mram), counters_(counters) {}

  // ---- phase scoping ----
  void set_phase(Phase p) { phase_ = p; }
  Phase phase() const { return phase_; }

  // ---- compute charging ----
  void charge_adds(std::uint64_t n) { cur().instr_cycles += n * cfg_.costs.add; }
  void charge_muls(std::uint64_t n) {
    cur().instr_cycles += n * cfg_.costs.mul32;
    cur().mul_count += n;
  }
  void charge_divs(std::uint64_t n) { cur().instr_cycles += n * cfg_.costs.div32; }
  void charge_cmps(std::uint64_t n) { cur().instr_cycles += n * cfg_.costs.cmp; }
  void charge_wram(std::uint64_t n) { cur().instr_cycles += n * cfg_.costs.wram_access; }
  void charge_lut_lookups(std::uint64_t n) {
    cur().instr_cycles += n * cfg_.costs.lut_lookup;
  }
  void charge_sq_lut_lookups(std::uint64_t n) {
    cur().instr_cycles += n * cfg_.costs.sq_lut_lookup;
  }
  /// Raw cycles (e.g. loop/branch overhead estimated per iteration).
  void charge_cycles(std::uint64_t n) { cur().instr_cycles += n; }

  // ---- MRAM DMA (the only way kernels may touch MRAM, as on real UPMEM) ----
  /// DMA MRAM -> WRAM buffer.
  void mram_read(std::size_t mram_offset, std::span<std::uint8_t> dst);
  /// DMA WRAM buffer -> MRAM.
  void mram_write(std::size_t mram_offset, std::span<const std::uint8_t> src);

  /// Bill one MRAM->WRAM DMA transfer without moving bytes — the analytic
  /// kernels' path. Charges the same affine cost (fixed cycles + per-byte
  /// cycles) and byte counters as mram_read of the same size.
  void charge_mram_read(std::size_t bytes) {
    PhaseCounters& c = cur();
    c.dma_cycles += dma_cost(bytes);
    c.mram_bytes_read += bytes;
  }
  /// WRAM->MRAM billing twin of charge_mram_read.
  void charge_mram_write(std::size_t bytes) {
    PhaseCounters& c = cur();
    c.dma_cycles += dma_cost(bytes);
    c.mram_bytes_written += bytes;
  }

  /// Typed convenience readers.
  template <typename T>
  void mram_read_t(std::size_t mram_offset, std::span<T> dst) {
    mram_read(mram_offset,
              {reinterpret_cast<std::uint8_t*>(dst.data()), dst.size() * sizeof(T)});
  }
  template <typename T>
  void mram_write_t(std::size_t mram_offset, std::span<const T> src) {
    mram_write(mram_offset, {reinterpret_cast<const std::uint8_t*>(src.data()),
                             src.size() * sizeof(T)});
  }

  const PimConfig& config() const { return cfg_; }
  DpuCounters& counters() { return counters_; }

 private:
  PhaseCounters& cur() { return counters_.at(phase_); }
  double dma_cost(std::size_t bytes) const {
    return cfg_.dma_fixed_cycles + static_cast<double>(bytes) * cfg_.dma_cycles_per_byte;
  }

  const PimConfig& cfg_;
  Mram& mram_;
  DpuCounters& counters_;
  Phase phase_ = Phase::AUX;
};

/// One DPU: MRAM plus the counters of the most recent kernel run. WRAM is
/// modeled as a capacity budget checked by kernels (their working buffers
/// live on the simulation host's stack/heap for speed, but may not exceed
/// wram_bytes; kernels assert this via check_wram_budget).
class Dpu {
 public:
  explicit Dpu(const PimConfig& config)
      : cfg_(config), mram_(config.mram_bytes) {}

  Mram& mram() { return mram_; }
  const Mram& mram() const { return mram_; }

  DpuCounters& counters() { return counters_; }
  const DpuCounters& counters() const { return counters_; }
  void reset_counters() { counters_.reset(); }

  /// Make a kernel context bound to this DPU.
  DpuContext context() { return DpuContext(cfg_, mram_, counters_); }

  /// Seconds this DPU's last-accumulated counters take to execute: compute
  /// stream (scaled by pipeline IPC and the Fig. 13 compute_scale knob)
  /// overlapped with the DMA engine; the slower stream dominates, matching
  /// the paper's t = max(C / (F * PE), IO / BW) model shape.
  double execution_seconds() const;

  /// Seconds attributable to one phase (same overlap model, phase-local).
  double phase_seconds(Phase p) const;

 private:
  const PimConfig& cfg_;
  Mram mram_;
  DpuCounters counters_;
};

/// Throws std::runtime_error if a kernel's WRAM working set exceeds the
/// configured 64 KB budget. Call with the sum of all live WRAM buffers.
void check_wram_budget(const PimConfig& config, std::size_t bytes);

}  // namespace drim
