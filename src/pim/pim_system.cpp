#include "pim/pim_system.hpp"

#include <algorithm>
#include <stdexcept>

namespace drim {

PimSystem::PimSystem(const PimConfig& config) : config_(config) {
  if (config_.num_dpus == 0) throw std::runtime_error("PimSystem needs >= 1 DPU");
  dpus_.reserve(config_.num_dpus);
  for (std::size_t i = 0; i < config_.num_dpus; ++i) {
    dpus_.push_back(std::make_unique<Dpu>(config_));
  }
}

void PimSystem::push(std::size_t dpu_id, std::size_t offset,
                     std::span<const std::uint8_t> data) {
  dpus_.at(dpu_id)->mram().write(offset, data);
  pending_in_bytes_ += data.size();
}

void PimSystem::broadcast(std::size_t offset, std::span<const std::uint8_t> data) {
  for (auto& dpu : dpus_) dpu->mram().write(offset, data);
  pending_in_bytes_ += data.size();  // transmitted once (rank-level broadcast)
}

std::size_t PimSystem::alloc_symmetric(std::size_t bytes) {
  std::size_t offset = dpus_[0]->mram().alloc(bytes);
  for (std::size_t i = 1; i < dpus_.size(); ++i) {
    const std::size_t o = dpus_[i]->mram().alloc(bytes);
    if (o != offset) throw std::runtime_error("symmetric heap desynchronized");
  }
  return offset;
}

void PimSystem::pull(std::size_t dpu_id, std::size_t offset, std::span<std::uint8_t> out) {
  dpus_.at(dpu_id)->mram().read(offset, out);
  if (collecting_) pending_out_bytes_ += out.size();
}

BatchResult PimSystem::run_batch(
    const std::function<void(std::size_t, DpuContext&)>& kernel,
    const std::function<void()>& collect) {
  BatchResult result;
  result.launch_overhead_seconds = config_.launch_overhead_sec;
  result.transfer_in_seconds =
      static_cast<double>(pending_in_bytes_) / config_.host_link_bytes_per_sec;
  pending_in_bytes_ = 0;

  result.per_dpu_seconds.resize(dpus_.size());
  for (std::size_t i = 0; i < dpus_.size(); ++i) {
    dpus_[i]->reset_counters();
    DpuContext ctx = dpus_[i]->context();
    kernel(i, ctx);
    result.per_dpu_seconds[i] = dpus_[i]->execution_seconds();
  }
  result.dpu_seconds = result.per_dpu_seconds.empty()
                           ? 0.0
                           : *std::max_element(result.per_dpu_seconds.begin(),
                                               result.per_dpu_seconds.end());

  if (collect) {
    collecting_ = true;
    pending_out_bytes_ = 0;
    collect();
    collecting_ = false;
    result.transfer_out_seconds =
        static_cast<double>(pending_out_bytes_) / config_.host_link_bytes_per_sec;
    pending_out_bytes_ = 0;
  }
  return result;
}

DpuCounters PimSystem::aggregate_counters() const {
  DpuCounters total;
  for (const auto& dpu : dpus_) total.add(dpu->counters());
  return total;
}

}  // namespace drim
