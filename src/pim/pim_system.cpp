#include "pim/pim_system.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/parallel.hpp"

namespace drim {

DpuArrayPlatform::DpuArrayPlatform(const PimConfig& config) : config_(config) {
  if (config_.num_dpus == 0) throw std::runtime_error("PimPlatform needs >= 1 DPU");
  dpus_.reserve(config_.num_dpus);
  for (std::size_t i = 0; i < config_.num_dpus; ++i) {
    dpus_.push_back(std::make_unique<Dpu>(config_));
  }
}

std::size_t DpuArrayPlatform::alloc_symmetric(std::size_t bytes) {
  std::size_t offset = dpus_[0]->mram().alloc(bytes);
  for (std::size_t i = 1; i < dpus_.size(); ++i) {
    const std::size_t o = dpus_[i]->mram().alloc(bytes);
    if (o != offset) throw std::runtime_error("symmetric heap desynchronized");
  }
  return offset;
}

std::size_t DpuArrayPlatform::alloc_on(std::size_t dpu_id, std::size_t bytes) {
  return dpus_.at(dpu_id)->mram().alloc(bytes);
}

std::size_t DpuArrayPlatform::mram_used(std::size_t dpu_id) const {
  return dpus_.at(dpu_id)->mram().used();
}

double DpuArrayPlatform::drain_pending_transfer() {
  const std::uint64_t bytes = pending_in_bytes_.exchange(0, std::memory_order_relaxed);
  return static_cast<double>(bytes) / config_.host_link_bytes_per_sec;
}

BatchResult DpuArrayPlatform::run_batch(
    const std::function<void(std::size_t, DpuContext&)>& kernel,
    const std::function<void()>& collect) {
  BatchResult result;
  result.launch_overhead_seconds = config_.launch_overhead_sec;
  result.transfer_in_seconds = drain_pending_transfer();

  // Per-DPU kernel runs are data-independent: each Dpu owns its MRAM and
  // counters, and per_dpu_seconds slots are distinct. Cycle counts are
  // integer tallies private to each DPU, so the modeled timings below are
  // bit-identical no matter how the runs interleave.
  result.per_dpu_seconds.resize(dpus_.size());
  parallel_for(0, dpus_.size(), [&](std::size_t i) {
    dpus_[i]->reset_counters();
    DpuContext ctx = dpus_[i]->context();
    kernel(i, ctx);
    result.per_dpu_seconds[i] = dpus_[i]->execution_seconds();
  });
  result.dpu_seconds = result.per_dpu_seconds.empty()
                           ? 0.0
                           : *std::max_element(result.per_dpu_seconds.begin(),
                                               result.per_dpu_seconds.end());

  if (collect) {
    collecting_ = true;
    pending_out_bytes_.store(0, std::memory_order_relaxed);
    collect();
    collecting_ = false;
    result.transfer_out_seconds =
        static_cast<double>(pending_out_bytes_.load(std::memory_order_relaxed)) /
        config_.host_link_bytes_per_sec;
    pending_out_bytes_.store(0, std::memory_order_relaxed);
  }
  return result;
}

DpuCounters DpuArrayPlatform::aggregate_counters() const {
  DpuCounters total;
  for (const auto& dpu : dpus_) total.add(dpu->counters());
  return total;
}

double DpuArrayPlatform::dpu_phase_seconds(std::size_t dpu_id, Phase p) const {
  return dpus_.at(dpu_id)->phase_seconds(p);
}

void SimPimPlatform::push(std::size_t dpu_id, std::size_t offset,
                          std::span<const std::uint8_t> data) {
  dpus_.at(dpu_id)->mram().write(offset, data);
  pending_in_bytes_.fetch_add(data.size(), std::memory_order_relaxed);
}

void SimPimPlatform::broadcast(std::size_t offset, std::span<const std::uint8_t> data) {
  // Each DPU's Mram is private, so the per-DPU copies are independent.
  parallel_for(0, dpus_.size(),
               [&](std::size_t d) { dpus_[d]->mram().write(offset, data); });
  // Transmitted once (rank-level broadcast).
  pending_in_bytes_.fetch_add(data.size(), std::memory_order_relaxed);
}

void SimPimPlatform::pull(std::size_t dpu_id, std::size_t offset,
                          std::span<std::uint8_t> out) {
  dpus_.at(dpu_id)->mram().read(offset, out);
  if (collecting_) pending_out_bytes_.fetch_add(out.size(), std::memory_order_relaxed);
}

}  // namespace drim
