#include "pim/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace drim {

PipelineTimeline::PipelineTimeline(std::size_t depth)
    : depth_(depth == 0 ? 1 : depth), slot_free_(depth_, 0.0) {}

void PipelineTimeline::reset() {
  next_index_ = 0;
  std::fill(slot_free_.begin(), slot_free_.end(), 0.0);
  link_.clear();
  dpu_free_ = 0.0;
  host_free_ = 0.0;
  last_done_ = 0.0;
  link_busy_ = 0.0;
  dpu_busy_ = 0.0;
  open_ = false;
}

double PipelineTimeline::reserve_link(double earliest, double duration) {
  if (duration <= 0.0) return earliest;
  double t = earliest;
  std::size_t pos = 0;
  for (; pos < link_.size(); ++pos) {
    const auto& [s, e] = link_[pos];
    if (t + duration <= s) break;  // fits in the gap before this interval
    t = std::max(t, e);
  }
  link_.insert(link_.begin() + static_cast<std::ptrdiff_t>(pos), {t, t + duration});
  return t;
}

void PipelineTimeline::prune_link() {
  // Every future reservation starts at or after its batch floor, and the
  // next batch's floor is at least its slot's free time. Slots are assigned
  // round-robin and out_ends are monotone, so min(slot_free_) lower-bounds
  // every future `earliest`: intervals ending at or before it can never
  // matter again.
  const double low = *std::min_element(slot_free_.begin(), slot_free_.end());
  auto it = link_.begin();
  while (it != link_.end() && it->second <= low) ++it;
  link_.erase(link_.begin(), it);
}

double PipelineTimeline::begin_batch(double submit_seconds, double pre_seconds) {
  if (open_) throw std::logic_error("PipelineTimeline: begin_batch while a batch is open");
  open_ = true;
  slot_ = next_index_ % depth_;
  submit_ = submit_seconds;
  // The batch cannot start until its staging slot's previous occupant has
  // pulled its results out.
  const double floor = std::max(submit_seconds, slot_free_[slot_]);
  if (pre_seconds > 0.0) {
    // A CL-on-PIM pre-launch is itself a full transfer+launch+pull on the
    // shared link and the exclusive DPU array; model it as one opaque
    // reservation on both.
    pre_start_ = reserve_link(std::max(floor, dpu_free_), pre_seconds);
    pre_end_ = pre_start_ + pre_seconds;
    dpu_free_ = pre_end_;
    link_busy_ += pre_seconds;
    dpu_busy_ += pre_seconds;
  } else {
    pre_start_ = floor;
    pre_end_ = floor;
  }
  return pre_start_;
}

PipelineSchedule PipelineTimeline::finish_batch(const PipelineStageTimes& st) {
  if (!open_) throw std::logic_error("PipelineTimeline: finish_batch without begin_batch");
  open_ = false;

  PipelineSchedule s;
  s.submit_seconds = submit_;
  s.pre_start = pre_start_;
  s.pre_end = pre_end_;

  // Query push: earliest link gap after the batch floor / pre-launch.
  s.in_start = reserve_link(pre_end_, st.transfer_in_seconds);
  s.in_end = s.in_start + st.transfer_in_seconds;

  // Barrier launch: waits for the staged queries and for the array to free.
  const double exec = st.launch_overhead_seconds + st.compute_seconds;
  s.compute_start = std::max(s.in_end, dpu_free_);
  s.compute_end = s.compute_start + exec;
  dpu_free_ = s.compute_end;
  dpu_busy_ += exec;

  // Result pull: earliest link gap after the kernels finish.
  s.out_start = reserve_link(s.compute_end, st.transfer_out_seconds);
  s.out_end = s.out_start + st.transfer_out_seconds;
  link_busy_ += st.transfer_in_seconds + st.transfer_out_seconds;

  // Host-side CL/merge overlaps the device stages but host threads are one
  // serial resource across batches.
  s.host_start = std::max(pre_end_, host_free_);
  s.host_end = s.host_start + st.host_seconds;
  host_free_ = std::max(host_free_, s.host_end);

  s.done_seconds = std::max({s.out_end, s.host_end, last_done_});
  last_done_ = s.done_seconds;
  slot_free_[slot_] = s.out_end;
  ++next_index_;
  prune_link();
  return s;
}

}  // namespace drim
