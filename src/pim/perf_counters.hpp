#pragma once
// Per-DPU performance counters mirroring the UPMEM SDK's hardware counters
// the paper uses ("the cycle-accurate executing time and memory transfers
// are measured with the hardware performance counter within UPMEM SDK").
// Counters are kept per ANNS phase so Fig. 8's kernel-latency breakdown can
// be regenerated exactly.

#include <array>
#include <cstdint>
#include <string_view>

namespace drim {

/// The five cluster-based ANNS phases plus the auxiliary bucket the paper
/// calls out (address calculation / masking for MRAM).
enum class Phase : std::uint8_t { CL = 0, RC, LC, DC, TS, AUX, kCount };

constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);

/// Printable phase name.
std::string_view phase_name(Phase p);

/// Counters for one phase on one DPU.
struct PhaseCounters {
  std::uint64_t instr_cycles = 0;  ///< compute cycles (pre IPC scaling)
  double dma_cycles = 0;           ///< MRAM DMA engine cycles
  std::uint64_t mram_bytes_read = 0;
  std::uint64_t mram_bytes_written = 0;
  std::uint64_t mul_count = 0;     ///< multiplies issued (0 after LUT conversion)

  void add(const PhaseCounters& o) {
    instr_cycles += o.instr_cycles;
    dma_cycles += o.dma_cycles;
    mram_bytes_read += o.mram_bytes_read;
    mram_bytes_written += o.mram_bytes_written;
    mul_count += o.mul_count;
  }
};

/// All phases for one DPU.
struct DpuCounters {
  std::array<PhaseCounters, kNumPhases> phases{};

  PhaseCounters& at(Phase p) { return phases[static_cast<std::size_t>(p)]; }
  const PhaseCounters& at(Phase p) const { return phases[static_cast<std::size_t>(p)]; }

  std::uint64_t total_instr_cycles() const;
  double total_dma_cycles() const;
  std::uint64_t total_mram_bytes() const;

  void add(const DpuCounters& o) {
    for (std::size_t i = 0; i < kNumPhases; ++i) phases[i].add(o.phases[i]);
  }
  void reset() { phases.fill({}); }
};

}  // namespace drim
