#pragma once
// Timing-only PIM platform. Reuses the DpuArrayPlatform chassis (per-DPU
// counters, allocators, byte tallies, barrier batch loop) but never
// materializes MRAM bytes: push/broadcast/pull only tally host-link traffic,
// and the Mram bump allocators track offsets over lazily-backed storage that
// is never touched. Kernel launches are expected to charge cycles
// analytically (drim/kernels.hpp charge_* twins of the functional kernels),
// so a batch on 2530 DPUs costs microseconds of host time instead of a full
// byte-level simulation. Because pull() leaves the destination untouched,
// the engine computes results itself (host-side exact ADC scan) before
// billing the pulls — recall numbers stay real, only the cycle charges are
// schedule-aware estimates. See DESIGN.md "Platform and backend seams".

#include "pim/pim_system.hpp"

namespace drim {

class AnalyticPimPlatform final : public DpuArrayPlatform {
 public:
  explicit AnalyticPimPlatform(const PimConfig& config) : DpuArrayPlatform(config) {}

  std::string name() const override { return "analytic"; }
  bool functional() const override { return false; }

  void push(std::size_t dpu_id, std::size_t offset,
            std::span<const std::uint8_t> data) override;
  void broadcast(std::size_t offset, std::span<const std::uint8_t> data) override;
  /// Billing only: `out` is NOT written (there are no bytes to read back).
  void pull(std::size_t dpu_id, std::size_t offset, std::span<std::uint8_t> out) override;
};

}  // namespace drim
