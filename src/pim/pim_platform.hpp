#pragma once
// The backend seam of the engine: an abstract PIM platform the DRIM-ANN
// engine drives through push/pull/broadcast, a symmetric-heap allocator, and
// barrier-synchronized batch launches. Two implementations ship in-tree:
//   - SimPimPlatform (pim/pim_system.hpp): the functional + cost-model
//     simulator. Kernels are real C++ reading simulated MRAM; results are
//     bit-exact and every cycle/DMA charge is data-derived.
//   - AnalyticPimPlatform (pim/analytic_platform.hpp): timing-only. No MRAM
//     bytes move; kernels charge the same cost tables analytically and the
//     engine computes results with a host-side exact ADC scan. Orders of
//     magnitude faster, so paper-scale (2530-DPU) sweeps are feasible.
// A real UPMEM SDK backend would be a third implementation of this interface;
// DESIGN.md "Platform and backend seams" specifies what it must provide.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pim/perf_counters.hpp"
#include "pim/pim_config.hpp"

namespace drim {

class DpuContext;

/// Timing of one barrier-synchronized batch launch.
struct BatchResult {
  std::vector<double> per_dpu_seconds;  ///< modeled execution time per DPU
  double dpu_seconds = 0.0;          ///< max over DPUs (the barrier)
  double transfer_in_seconds = 0.0;  ///< host -> DPUs before launch
  double transfer_out_seconds = 0.0; ///< DPUs -> host after completion
  double launch_overhead_seconds = 0.0;

  double total_seconds() const {
    return transfer_in_seconds + dpu_seconds + transfer_out_seconds +
           launch_overhead_seconds;
  }
};

/// Which PimPlatform implementation an engine should instantiate.
enum class PimPlatformKind : std::uint8_t { kSim, kAnalytic };

/// Abstract PIM platform. The contract mirrors the UPMEM host API shape:
/// data moves only through push/broadcast/pull over a shared host link whose
/// bytes are tallied and billed per batch, MRAM is managed by bump
/// allocators (symmetric for broadcast regions, per-DPU for shard data), and
/// run_batch launches a kernel on every DPU behind one barrier.
class PimPlatform {
 public:
  virtual ~PimPlatform() = default;

  virtual const PimConfig& config() const = 0;
  virtual std::size_t num_dpus() const = 0;
  /// Stable identifier ("sim", "analytic") for logs and bench reports.
  virtual std::string name() const = 0;
  /// True when pushed bytes are materialized and kernels compute real
  /// results the host can pull back. Analytic platforms return false: the
  /// engine must then produce results itself (host-side exact scan) and use
  /// push/pull for transfer billing only.
  virtual bool functional() const = 0;

  // ---- host -> DPU data movement (accumulates into the next batch's
  //      transfer_in time) ----
  /// Copy (or, analytically, bill) bytes into one DPU's MRAM at `offset`.
  /// Thread-safe for distinct DPUs, so staging loops may run in parallel_for.
  virtual void push(std::size_t dpu_id, std::size_t offset,
                    std::span<const std::uint8_t> data) = 0;
  /// Same bytes to every DPU at one offset; transmitted once over the link.
  virtual void broadcast(std::size_t offset, std::span<const std::uint8_t> data) = 0;
  /// Allocate `bytes` at the same offset on every DPU; returns the offset.
  virtual std::size_t alloc_symmetric(std::size_t bytes) = 0;
  /// Allocate `bytes` on one DPU (per-DPU shard data); returns the offset.
  virtual std::size_t alloc_on(std::size_t dpu_id, std::size_t bytes) = 0;
  /// High-water mark of one DPU's MRAM allocator.
  virtual std::size_t mram_used(std::size_t dpu_id) const = 0;

  // ---- DPU -> host ----
  /// Copy bytes back from one DPU's MRAM. On a non-functional platform the
  /// destination buffer is left untouched (billing only) — callers must fill
  /// it themselves before relying on its contents. Thread-safe like push().
  virtual void pull(std::size_t dpu_id, std::size_t offset,
                    std::span<std::uint8_t> out) = 0;

  /// Bill all bytes pushed/broadcast since the last batch (or drain) NOW,
  /// outside any batch: returns the seconds they take on the host link and
  /// clears the pending tally (one-time index loading).
  virtual double drain_pending_transfer() = 0;

  /// Release every MRAM allocation on every DPU (allocator rewound, backing
  /// zeroed) so the engine can rebuild the static layout for a new index
  /// snapshot. The physical reload this enables is a simulation-fidelity
  /// device; callers bill the *modeled* publish delta and discard the
  /// reload's drain_pending_transfer() figure (see DESIGN.md §14).
  virtual void reset_memory() = 0;

  /// Run `kernel(dpu_id, ctx)` on every DPU behind one barrier. Counters are
  /// reset first; pending pushed bytes are billed as transfer_in and bytes
  /// pulled during `collect` as transfer_out. Kernels execute concurrently
  /// across host threads and must not share mutable state between DPUs.
  virtual BatchResult run_batch(
      const std::function<void(std::size_t, DpuContext&)>& kernel,
      const std::function<void()>& collect = nullptr) = 0;

  /// Aggregate counters over all DPUs (energy / bandwidth reports).
  virtual DpuCounters aggregate_counters() const = 0;
  /// Seconds of one DPU's last batch attributable to one phase.
  virtual double dpu_phase_seconds(std::size_t dpu_id, Phase p) const = 0;
};

/// Instantiate the platform implementation for `kind`.
std::unique_ptr<PimPlatform> make_pim_platform(PimPlatformKind kind,
                                               const PimConfig& config);

/// "sim" / "analytic" (matches the CLI/bench --platform values).
std::string pim_platform_name(PimPlatformKind kind);

/// Parse a --platform value; throws std::invalid_argument on anything else.
PimPlatformKind parse_pim_platform(const std::string& name);

}  // namespace drim
