#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace drim::obs {
namespace {

constexpr double kSecToUs = 1e6;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_args(std::ostream& out, const std::vector<TraceArg>& args) {
  out << "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out << ',';
    out << '"' << json_escape(args[i].first) << "\":" << json_number(args[i].second);
  }
  out << '}';
}

}  // namespace

std::uint32_t TraceRecorder::lane(const std::string& name) {
  const std::string full = lane_prefix_.empty() ? name : lane_prefix_ + name;
  for (std::size_t i = 0; i < lane_names_.size(); ++i) {
    if (lane_names_[i] == full) return static_cast<std::uint32_t>(i);
  }
  lane_names_.push_back(full);
  return static_cast<std::uint32_t>(lane_names_.size() - 1);
}

void TraceRecorder::span(std::uint32_t lane, std::string name, std::string cat,
                         double start_s, double duration_s,
                         std::vector<TraceArg> args) {
  Event e;
  e.ph = 'X';
  e.tid = lane;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ts_us = start_s * kSecToUs;
  e.dur_us = duration_s * kSecToUs;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::instant(std::uint32_t lane, std::string name, std::string cat,
                            double t_s, std::vector<TraceArg> args) {
  Event e;
  e.ph = 'i';
  e.tid = lane;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ts_us = t_s * kSecToUs;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::counter(std::string name, double t_s,
                            std::vector<TraceArg> series) {
  Event e;
  e.ph = 'C';
  e.tid = 0;
  e.name = std::move(name);
  e.cat = "metrics";
  e.ts_us = t_s * kSecToUs;
  e.args = std::move(series);
  events_.push_back(std::move(e));
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ',';
    first = false;
    out << "\n";
  };

  // Metadata: process name + one thread_name / thread_sort_index per lane.
  sep();
  out << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"drim-ann (virtual clock)\"}}";
  for (std::size_t i = 0; i < lane_names_.size(); ++i) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << i
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(lane_names_[i]) << "\"}}";
    sep();
    out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << i
        << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << i << "}}";
  }

  for (const Event& e : events_) {
    sep();
    out << "{\"ph\":\"" << e.ph << "\",\"pid\":0,\"tid\":" << e.tid << ",\"name\":\""
        << json_escape(e.name) << "\",\"cat\":\""
        << json_escape(e.cat.empty() ? std::string("default") : e.cat)
        << "\",\"ts\":" << json_number(e.ts_us);
    if (e.ph == 'X') out << ",\"dur\":" << json_number(e.dur_us);
    if (e.ph == 'i') out << ",\"s\":\"t\"";
    out << ',';
    write_args(out, e.args);
    out << '}';
  }
  out << "\n]}\n";
}

void TraceRecorder::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  write_chrome_trace(out);
}

}  // namespace drim::obs
