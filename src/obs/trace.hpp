#pragma once
// Phase-level tracing on the simulator's virtual clock. A TraceRecorder
// collects spans (phases with a duration), instants (point events), and
// counter samples, each stamped in virtual seconds and attached to a named
// lane (one lane per DPU, one per host phase, one per serve-layer stream).
// The recorder exports the Chrome-trace / Perfetto JSON event format, so a
// --trace file drops straight into ui.perfetto.dev or chrome://tracing.
//
// The recorder is a passive sink: producers (DrimAnnEngine, the backends,
// ServingRuntime) position the shared `now` cursor on their virtual clock
// and emit events at absolute times. Single-threaded by design — all span
// emission happens on the host thread after a batch completes, never inside
// the parallel kernel loops.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace drim::obs {

/// One (key, numeric value) annotation attached to an event.
using TraceArg = std::pair<std::string, double>;

class TraceRecorder {
 public:
  // ---- virtual-clock cursor ----
  // Producers stamp events at absolute virtual times; the cursor lets a
  // producer that only knows durations (e.g. the engine inside one serving
  // step) chain spans without threading a clock through every call.
  void set_now(double t_s) { now_s_ = t_s; }
  void advance(double dt_s) { now_s_ += dt_s; }
  double now() const { return now_s_; }

  // ---- lanes ----
  /// Get-or-create the lane (Chrome-trace tid) with this display name.
  /// Lanes keep their registration order in the exported sort index, so
  /// host lanes registered first stay above the per-DPU lanes.
  std::uint32_t lane(const std::string& name);

  /// Prefix prepended to every lane() lookup while set (e.g. "shard0/"):
  /// the cluster router brackets each shard's step with its prefix so one
  /// recorder renders per-shard lane groups without the producers knowing
  /// they are sharded. Empty (the default) leaves lane names untouched.
  void set_lane_prefix(std::string prefix) { lane_prefix_ = std::move(prefix); }
  const std::string& lane_prefix() const { return lane_prefix_; }

  // ---- events (times in absolute virtual seconds) ----
  void span(std::uint32_t lane, std::string name, std::string cat,
            double start_s, double duration_s, std::vector<TraceArg> args = {});
  void instant(std::uint32_t lane, std::string name, std::string cat,
               double t_s, std::vector<TraceArg> args = {});
  /// Counter sample: one stacked-area track per `name`, one series per arg.
  void counter(std::string name, double t_s, std::vector<TraceArg> series);

  std::size_t num_events() const { return events_.size(); }
  std::size_t num_lanes() const { return lane_names_.size(); }
  bool empty() const { return events_.empty(); }

  // ---- export ----
  /// Write the Chrome-trace JSON object ({"traceEvents": [...]}) with one
  /// metadata block naming the process and every lane.
  void write_chrome_trace(std::ostream& out) const;
  /// Same, to a file; throws std::runtime_error if the file can't be opened.
  void write_chrome_trace_file(const std::string& path) const;

 private:
  struct Event {
    char ph = 'X';        // X = span, i = instant, C = counter
    std::uint32_t tid = 0;
    std::string name;
    std::string cat;
    double ts_us = 0.0;
    double dur_us = 0.0;  // spans only
    std::vector<TraceArg> args;
  };

  std::vector<std::string> lane_names_;
  std::vector<Event> events_;
  double now_s_ = 0.0;
  std::string lane_prefix_;
};

}  // namespace drim::obs
