#include "backend/drim_backend.hpp"

#include <chrono>
#include <stdexcept>

namespace drim {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DrimBackend::DrimBackend(const IvfPqIndex& index, const FloatMatrix& sample_queries,
                         const DrimEngineOptions& options)
    : owned_(std::make_unique<DrimAnnEngine>(index, sample_queries, options)),
      engine_(owned_.get()) {}

DrimBackend::DrimBackend(IndexSnapshot snapshot, const FloatMatrix& sample_queries,
                         const DrimEngineOptions& options)
    : owned_(std::make_unique<DrimAnnEngine>(std::move(snapshot), sample_queries,
                                             options)),
      engine_(owned_.get()) {}

DrimBackend::DrimBackend(DrimAnnEngine& engine) : engine_(&engine) {}

std::string DrimBackend::name() const {
  return "drim-" + pim_platform_name(engine_->options().platform);
}

std::vector<std::vector<Neighbor>> DrimBackend::search(const FloatMatrix& queries,
                                                       std::size_t k,
                                                       std::size_t nprobe) {
  const double t0 = now_seconds();
  auto results = engine_->search(queries, k, nprobe, &stats_);  // resets stats_
  host_wall_seconds_ = now_seconds() - t0;
  return results;
}

void DrimBackend::reset_stream() {
  state_ = SearchBatchState{};
  stats_ = DrimSearchStats{};
  host_wall_seconds_ = 0.0;
  handle_base_ = 0;
  live_handles_ = 0;
}

void DrimBackend::maybe_compact() {
  if (live_handles_ == 0 && state_.idle() && !state_.quantized.empty()) {
    handle_base_ += static_cast<std::uint32_t>(state_.quantized.size());
    state_ = SearchBatchState{};
  }
}

std::uint32_t DrimBackend::enqueue(std::span<const float> query, std::size_t k,
                                   std::size_t nprobe) {
  return enqueue(query, k, nprobe, Precision::kFull);
}

std::uint32_t DrimBackend::enqueue(std::span<const float> query, std::size_t k,
                                   std::size_t nprobe, Precision precision) {
  maybe_compact();
  const std::uint32_t internal =
      engine_->enqueue_query(state_, query, k, nprobe, precision);
  ++live_handles_;
  return handle_base_ + internal;
}

std::uint32_t DrimBackend::enqueue_routed(std::span<const float> query, std::size_t k,
                                          std::span<const std::uint32_t> probes) {
  return enqueue_routed(query, k, probes, Precision::kFull);
}

std::uint32_t DrimBackend::enqueue_routed(std::span<const float> query, std::size_t k,
                                          std::span<const std::uint32_t> probes,
                                          Precision precision) {
  maybe_compact();
  const std::uint32_t internal =
      engine_->enqueue_query_routed(state_, query, k, probes, precision);
  ++live_handles_;
  return handle_base_ + internal;
}

BackendStepStats DrimBackend::step(std::size_t max_queries, bool flush) {
  const double t0 = now_seconds();
  const BatchStepStats s = engine_->search_batch(state_, max_queries, flush, &stats_);
  host_wall_seconds_ += now_seconds() - t0;
  BackendStepStats out;
  out.step_seconds = s.step_seconds;
  out.host_seconds = s.host_cl_seconds + s.host_rerank_seconds;
  out.pre_seconds = s.cl_pim_seconds;
  out.exec_seconds = s.pim_batch_seconds;
  out.fresh_queries = s.fresh_queries;
  out.tasks = s.tasks;
  out.deferred = s.deferred;
  out.submit_seconds = s.submit_seconds;
  out.complete_seconds = s.complete_seconds;
  return out;
}

void DrimBackend::flush_stream() {
  const double t0 = now_seconds();
  while (!state_.idle()) {
    engine_->search_batch(state_, 0, true, &stats_);
  }
  host_wall_seconds_ += now_seconds() - t0;
}

double DrimBackend::stage_snapshot(const IndexSnapshot& snapshot,
                                   const PublishDelta& delta) {
  flush_stream();
  return engine_->apply_snapshot(snapshot, delta);
}

double DrimBackend::stage_relayout() {
  flush_stream();
  return engine_->replan_layout();
}

bool DrimBackend::finished(std::uint32_t handle) const {
  if (handle < handle_base_) return true;  // compacted away: taken long ago
  return state_.finished(handle - handle_base_);
}

std::vector<Neighbor> DrimBackend::take_results(std::uint32_t handle) {
  if (handle < handle_base_) {
    throw std::logic_error("DrimBackend: results for this handle already taken");
  }
  if (live_handles_ > 0) --live_handles_;
  return state_.take_results(handle - handle_base_);
}

double DrimBackend::estimate_batch_seconds(std::size_t num_queries, std::size_t nprobe,
                                           std::size_t k) const {
  return engine_->estimate_batch_seconds(num_queries, nprobe, k);
}

BackendStats DrimBackend::stats() const {
  BackendStats out;
  out.total_seconds = stats_.total_seconds;
  out.host_wall_seconds = host_wall_seconds_;
  out.queries = stats_.queries;
  out.batches = stats_.batches;
  out.tasks = stats_.tasks;
  out.batch_seconds = stats_.batch_seconds;
  out.dc_bytes_saved = stats_.dc_bytes_saved;
  return out;
}

}  // namespace drim
