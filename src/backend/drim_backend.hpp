#pragma once
// AnnBackend over DrimAnnEngine: adapts the engine's streaming step API
// (enqueue_query / search_batch / SearchBatchState) to the backend seam and
// keeps long-running streams bounded. SearchBatchState's tables grow a few
// hundred bytes per enqueued query forever; the backend rebases external
// handles onto a fresh state whenever every handed-out handle has been taken
// back and the state is idle, so a serving run's resident stream memory
// stays proportional to the in-flight window, not the trace length
// (tests/serve/test_state_compaction.cpp pins this).

#include <memory>

#include "backend/ann_backend.hpp"
#include "drim/engine.hpp"

namespace drim {

class DrimBackend final : public AnnBackend {
 public:
  /// Construct and own an engine for `index` with `options`.
  DrimBackend(const IvfPqIndex& index, const FloatMatrix& sample_queries,
              const DrimEngineOptions& options);
  /// Deleted: a temporary would dangle behind the non-owning root snapshot.
  DrimBackend(IvfPqIndex&& index, const FloatMatrix& sample_queries,
              const DrimEngineOptions& options) = delete;
  /// Construct and own an engine serving `snapshot` (shared ownership, so
  /// the backend can outlive the writer that published it).
  DrimBackend(IndexSnapshot snapshot, const FloatMatrix& sample_queries,
              const DrimEngineOptions& options);
  /// Borrow an existing engine (must outlive the backend).
  explicit DrimBackend(DrimAnnEngine& engine);

  std::string name() const override;
  std::vector<std::vector<Neighbor>> search(const FloatMatrix& queries, std::size_t k,
                                            std::size_t nprobe) override;

  void reset_stream() override;
  std::uint32_t enqueue(std::span<const float> query, std::size_t k,
                        std::size_t nprobe) override;
  std::uint32_t enqueue(std::span<const float> query, std::size_t k,
                        std::size_t nprobe, Precision precision) override;
  bool supports_routed_enqueue() const override { return true; }
  std::uint32_t enqueue_routed(std::span<const float> query, std::size_t k,
                               std::span<const std::uint32_t> probes) override;
  std::uint32_t enqueue_routed(std::span<const float> query, std::size_t k,
                               std::span<const std::uint32_t> probes,
                               Precision precision) override;
  double locate_cost_seconds(std::size_t num_queries) const override {
    return engine_->host_cl_cost_seconds(num_queries);
  }
  BackendStepStats step(std::size_t max_queries, bool flush) override;
  std::size_t pipeline_depth() const override { return engine_->pipeline_depth(); }
  void set_step_start(double submit_seconds) override {
    state_.submit_hint_seconds = submit_seconds;
  }
  bool has_deferred() const override { return state_.has_deferred(); }
  std::size_t deferred_count() const override { return state_.carried.size(); }
  void set_trace(obs::TraceRecorder* trace) override { engine_->set_trace(trace); }
  bool finished(std::uint32_t handle) const override;
  std::vector<Neighbor> take_results(std::uint32_t handle) override;
  std::size_t stream_depth() const override { return state_.quantized.size(); }

  double estimate_batch_seconds(std::size_t num_queries, std::size_t nprobe,
                                std::size_t k) const override;
  BackendStats stats() const override;

  // ---- mutable-index support ----
  bool supports_updates() const override { return true; }
  /// Flush every in-flight and pending query through the CURRENT version
  /// (they arrived before the publish point, so they must be answered by the
  /// old index — this is what makes per-version results bit-identical to a
  /// cold rebuild), then swap the engine onto the new snapshot. Finished
  /// results not yet taken stay harvestable; only queries enqueued after
  /// this call see the new version.
  double stage_snapshot(const IndexSnapshot& snapshot,
                        const PublishDelta& delta) override;
  double stage_relayout() override;
  std::uint64_t snapshot_version() const override {
    return engine_->snapshot().version;
  }

  DrimAnnEngine& engine() { return *engine_; }
  const DrimAnnEngine& engine() const { return *engine_; }
  /// The engine-level stat detail behind stats() (phase times, counters...).
  const DrimSearchStats& engine_stats() const { return stats_; }

 private:
  /// Rebase handles and drop the state once it is drained and every result
  /// has been taken.
  void maybe_compact();
  /// Run flushing steps until the stream state is idle (the safe point for
  /// an index swap: carried tasks hold shard ids of the current layout).
  void flush_stream();

  std::unique_ptr<DrimAnnEngine> owned_;
  DrimAnnEngine* engine_;
  SearchBatchState state_;
  DrimSearchStats stats_;
  double host_wall_seconds_ = 0.0;
  std::uint32_t handle_base_ = 0;  ///< external handle of state_'s query 0
  std::size_t live_handles_ = 0;   ///< enqueued but not yet taken back
};

}  // namespace drim
