#pragma once
// One-stop backend construction for the CLI and benches: maps the
// (--backend, --platform) knob pair onto a concrete AnnBackend.

#include <memory>

#include "backend/cpu_backend.hpp"
#include "backend/drim_backend.hpp"

namespace drim {

/// Build a backend over `index`. kDrim constructs an owning DrimBackend
/// (engine_options.platform selects sim vs analytic; sample_queries feed its
/// heat estimation); kCpu constructs a CpuBackend with `cpu_options`.
std::unique_ptr<AnnBackend> make_backend(BackendKind kind, const IvfPqIndex& index,
                                         const FloatMatrix& sample_queries,
                                         const DrimEngineOptions& engine_options,
                                         const CpuBackendOptions& cpu_options = {});

}  // namespace drim
