#pragma once
// The search-stack seam above the engine: one interface over every way this
// repo can execute an ANN search — the DRIM-ANN engine on a functional or
// analytic PIM platform (DrimBackend) and the CPU IVF-PQ baseline
// (CpuBackend). The serving runtime, the bench harness, and the CLI depend
// only on this interface, so a load sweep or a serve trace runs unchanged
// over any backend, selected by --backend {drim,cpu} / --platform
// {sim,analytic}. See DESIGN.md "Platform and backend seams".

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ivf.hpp"
#include "core/mutable_index.hpp"
#include "core/precision.hpp"
#include "core/topk.hpp"
#include "data/dataset.hpp"
#include "obs/trace.hpp"

namespace drim {

/// Timing/accounting of one streaming step() call, in the engine's overlap
/// decomposition: step_seconds = pre + max(host, exec).
struct BackendStepStats {
  double step_seconds = 0.0;  ///< modeled critical path of the step
  double host_seconds = 0.0;  ///< host work overlapped with device execution
  double pre_seconds = 0.0;   ///< serial pre-step (e.g. a CL-on-PIM launch)
  double exec_seconds = 0.0;  ///< device batch incl. transfers and barrier
  std::size_t fresh_queries = 0;  ///< pending queries consumed by this step
  std::size_t tasks = 0;          ///< work units executed (backend-defined)
  std::size_t deferred = 0;       ///< tasks carried to a later step
  /// Absolute placement of the step on the backend's modeled timeline: the
  /// effective submit time and the completion time. With a pipelined backend
  /// (pipeline_depth() >= 2) `complete - submit` can be less than the step's
  /// stage sum because consecutive steps overlap; step_seconds is the
  /// timeline delta the step contributed. Backends without a timeline report
  /// submit = previous complete and complete = submit + step_seconds.
  double submit_seconds = 0.0;
  double complete_seconds = 0.0;
};

/// Cumulative backend statistics since the last reset_stream() (or since the
/// last closed-loop search(), which resets them).
struct BackendStats {
  double total_seconds = 0.0;  ///< modeled time across all steps
  double host_wall_seconds = 0.0;  ///< measured host time spent executing
  std::size_t queries = 0;
  std::size_t batches = 0;
  std::size_t tasks = 0;
  std::vector<double> batch_seconds;  ///< modeled latency per step, in order
  /// Code-stream bytes the cluster-major fusion stage avoided re-reading
  /// (DESIGN.md §16): MRAM DC re-streams amortized by fused kernel groups,
  /// plus host-side duplicate pulls the coalesced drain fallback skipped.
  /// 0 for backends without a fusion stage and at fuse_width 1.
  std::uint64_t dc_bytes_saved = 0;

  double qps() const { return total_seconds > 0 ? queries / total_seconds : 0.0; }
};

/// Health/load snapshot of one shard of a multi-shard cluster backend
/// (src/cluster). Unsharded backends report an empty vector.
struct ShardHealth {
  std::uint32_t shard = 0;            ///< shard id
  bool draining = false;              ///< no longer accepting new dispatches
  std::size_t queue_tasks = 0;        ///< deferred tasks still queued on it
  std::size_t dispatched_queries = 0; ///< queries routed to it (cumulative)
  std::size_t dispatched_tasks = 0;   ///< cluster visits routed to it
  std::size_t fallback_tasks = 0;     ///< host-exact fallbacks it caused
  double busy_seconds = 0.0;          ///< modeled execution time accumulated
};

/// An ANN search backend: closed-loop batch search plus the streaming
/// enqueue/step/take protocol the serving runtime drives. Implementations
/// own whatever device or model state they need; handles returned by
/// enqueue() are monotonically increasing across the stream's lifetime and
/// never reused, even when the backend compacts its internal tables.
class AnnBackend {
 public:
  virtual ~AnnBackend() = default;

  /// Stable identifier for logs and bench reports (e.g. "drim-sim", "cpu").
  virtual std::string name() const = 0;

  /// Closed-loop batch search: all queries at (k, nprobe), results ascending
  /// (distance, id). Resets the cumulative stats to this search's.
  virtual std::vector<std::vector<Neighbor>> search(const FloatMatrix& queries,
                                                    std::size_t k,
                                                    std::size_t nprobe) = 0;

  // ---- streaming (the serving runtime's entry points) ----
  /// Drop all stream state and cumulative stats.
  virtual void reset_stream() = 0;
  /// Admit one query; returns its completion handle.
  virtual std::uint32_t enqueue(std::span<const float> query, std::size_t k,
                                std::size_t nprobe) = 0;
  /// Admit one query at an explicit precision rung (DESIGN.md §15). The
  /// default ignores the rung and runs full precision — backends without a
  /// quantization ladder stay correct unchanged; DrimBackend honors it.
  virtual std::uint32_t enqueue(std::span<const float> query, std::size_t k,
                                std::size_t nprobe, Precision precision) {
    (void)precision;
    return enqueue(query, k, nprobe);
  }
  /// True when the backend can accept caller-routed probe lists (the cluster
  /// router's per-shard dispatch path). Default: no.
  virtual bool supports_routed_enqueue() const { return false; }
  /// Admit one query with a caller-supplied probe list; the backend must not
  /// re-bill cluster location for it (the router bills CL once up front).
  virtual std::uint32_t enqueue_routed(std::span<const float> query, std::size_t k,
                                       std::span<const std::uint32_t> probes) {
    (void)query; (void)k; (void)probes;
    throw std::logic_error(name() + " backend does not support routed enqueue");
  }
  /// Routed admit at an explicit precision rung; same default-ignore
  /// contract as the precision-taking enqueue().
  virtual std::uint32_t enqueue_routed(std::span<const float> query, std::size_t k,
                                       std::span<const std::uint32_t> probes,
                                       Precision precision) {
    (void)precision;
    return enqueue_routed(query, k, probes);
  }
  /// Modeled host cluster-location cost for n queries (what the router bills
  /// at the front-end instead of per shard). 0 for backends with no model.
  virtual double locate_cost_seconds(std::size_t num_queries) const {
    (void)num_queries;
    return 0.0;
  }
  /// Per-shard health of a cluster backend; empty for unsharded backends.
  virtual std::vector<ShardHealth> shard_health() const { return {}; }
  /// Run one batch step over up to `max_queries` pending queries (0 = all)
  /// plus any carried work; `flush` forbids deferring past this step.
  virtual BackendStepStats step(std::size_t max_queries, bool flush) = 0;
  /// In-flight steps the backend can overlap on its modeled timeline: 1 for
  /// strictly serial backends (the default), >= 2 when the device pipeline
  /// double-buffers transfers against compute. The serving runtime keeps up
  /// to this many steps in flight.
  virtual std::size_t pipeline_depth() const { return 1; }
  /// Tell the backend when (on the caller's clock) the next step() is being
  /// submitted, so a pipelined backend can anchor the step's timeline floor
  /// to real arrival/launch times instead of packing steps back-to-back.
  /// No-op for serial backends.
  virtual void set_step_start(double submit_seconds) { (void)submit_seconds; }
  /// Work deferred by previous steps still awaiting execution.
  virtual bool has_deferred() const = 0;
  /// Deferred work units still carried by the stream state (the serving
  /// admission predictor folds these into its backlog estimate — a backend
  /// with no deferral returns 0, the default).
  virtual std::size_t deferred_count() const { return 0; }
  /// Attach (or detach, with nullptr) a trace recorder: subsequent steps lay
  /// their device/host spans at the recorder's `now` cursor. Not owned; the
  /// default ignores it for backends with nothing to trace.
  virtual void set_trace(obs::TraceRecorder* trace) { (void)trace; }
  /// True once `handle`'s results are final.
  virtual bool finished(std::uint32_t handle) const = 0;
  /// Sorted final results; consumes them. Call once finished().
  virtual std::vector<Neighbor> take_results(std::uint32_t handle) = 0;
  /// Queries resident in the stream state right now — bounded on long runs
  /// by the backends' drained-state compaction (tests pin this).
  virtual std::size_t stream_depth() const = 0;

  /// Open-loop estimate of one batch's modeled service time (the admission
  /// controller's EWMA seed).
  virtual double estimate_batch_seconds(std::size_t num_queries, std::size_t nprobe,
                                        std::size_t k) const = 0;
  /// Cumulative stats since reset_stream() / the last search().
  virtual BackendStats stats() const = 0;

  // ---- mutable-index support (DESIGN.md §14) ----
  /// True when the backend can install writer-published index snapshots.
  virtual bool supports_updates() const { return false; }
  /// Stage a new index version for installation. The backend installs it at
  /// the next safe point (for batched devices: after in-flight work drains,
  /// before the next step consumes fresh queries) and returns the MODELED
  /// install cost in seconds — the writer's publish delta on the device
  /// link, not the physical reload the simulator performs. Queries admitted
  /// after this call see version `snapshot.version` once it lands; finished
  /// results harvested before the install keep their old-version answers.
  virtual double stage_snapshot(const IndexSnapshot& snapshot,
                                const PublishDelta& delta) {
    (void)snapshot; (void)delta;
    throw std::logic_error(name() + " backend does not support index updates");
  }
  /// Re-balance the device data layout from traffic observed since the last
  /// re-layout; returns the modeled cost of moving the re-placed bytes (0
  /// when nothing moved or the backend has no layout). Same safe-point rule
  /// as stage_snapshot().
  virtual double stage_relayout() { return 0.0; }
  /// Version of the index snapshot currently serving queries (0 for
  /// backends built directly on a raw index).
  virtual std::uint64_t snapshot_version() const { return 0; }
};

/// Which AnnBackend implementation to instantiate.
enum class BackendKind : std::uint8_t { kDrim, kCpu };

/// "drim" / "cpu" (matches the CLI/bench --backend values).
std::string backend_kind_name(BackendKind kind);

/// Parse a --backend value; throws std::invalid_argument on anything else.
BackendKind parse_backend_kind(const std::string& name);

}  // namespace drim
