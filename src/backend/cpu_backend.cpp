#include "backend/cpu_backend.hpp"

#include <chrono>
#include <map>
#include <stdexcept>
#include <utility>

namespace drim {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CpuBackend::CpuBackend(const IvfPqIndex& index, const CpuBackendOptions& options)
    : CpuBackend(make_root_snapshot(index), options) {}

CpuBackend::CpuBackend(IndexSnapshot snapshot, const CpuBackendOptions& options)
    : snapshot_(std::move(snapshot)), opts_(options) {
  adopt_snapshot();
}

void CpuBackend::adopt_snapshot() {
  if (snapshot_.tombstones && snapshot_.tombstones->any()) {
    live_ = std::make_shared<IvfPqIndex>(compact_snapshot(snapshot_));
  } else {
    live_ = snapshot_.index;
  }
}

double CpuBackend::stage_snapshot(const IndexSnapshot& snapshot,
                                  const PublishDelta& delta) {
  // Queries admitted before the publish point are answered by the old
  // version (bit-identity with a cold rebuild requires it).
  while (next_query_ < pending_.size()) step(0, true);
  snapshot_ = snapshot;
  adopt_snapshot();
  return static_cast<double>(delta.total_bytes()) / opts_.platform.bandwidth_Bps;
}

double CpuBackend::model_group_seconds(std::size_t num_queries, std::size_t nprobe,
                                       std::size_t k) const {
  AnnWorkload w;
  w.N = static_cast<double>(index().ntotal());
  w.Q = static_cast<double>(num_queries);
  w.D = static_cast<double>(index().dim());
  w.K = static_cast<double>(k);
  w.P = static_cast<double>(std::min(nprobe, index().nlist()));
  w.C = static_cast<double>(index().ntotal()) / static_cast<double>(index().nlist());
  w.M = static_cast<double>(index().pq().m());
  w.CB = static_cast<double>(index().pq().cb_entries());
  return estimate_single(w, opts_.platform, opts_.multiplier_less);
}

double CpuBackend::estimate_batch_seconds(std::size_t num_queries, std::size_t nprobe,
                                          std::size_t k) const {
  if (num_queries == 0) return 0.0;
  return model_group_seconds(num_queries, nprobe, k);
}

std::vector<std::vector<Neighbor>> CpuBackend::search(const FloatMatrix& queries,
                                                      std::size_t k,
                                                      std::size_t nprobe) {
  const double t0 = now_seconds();
  auto results = CpuIvfPq(index()).search_batch(queries, k, nprobe);
  stats_ = BackendStats{};
  stats_.host_wall_seconds = now_seconds() - t0;
  stats_.queries = queries.count();
  stats_.batches = 1;
  stats_.tasks = queries.count() * std::min(nprobe, index().nlist());
  stats_.total_seconds = model_group_seconds(queries.count(), nprobe, k);
  stats_.batch_seconds = {stats_.total_seconds};
  return results;
}

void CpuBackend::reset_stream() {
  pending_.clear();
  next_query_ = 0;
  handle_base_ = 0;
  live_handles_ = 0;
  stats_ = BackendStats{};
}

void CpuBackend::maybe_compact() {
  if (live_handles_ == 0 && next_query_ == pending_.size() && !pending_.empty()) {
    handle_base_ += static_cast<std::uint32_t>(pending_.size());
    pending_.clear();
    next_query_ = 0;
  }
}

std::uint32_t CpuBackend::enqueue(std::span<const float> query, std::size_t k,
                                  std::size_t nprobe) {
  maybe_compact();
  PendingQuery pq;
  pq.values.assign(query.begin(), query.end());
  pq.k = static_cast<std::uint32_t>(k);
  pq.nprobe = static_cast<std::uint32_t>(nprobe);
  pending_.push_back(std::move(pq));
  ++live_handles_;
  return handle_base_ + static_cast<std::uint32_t>(pending_.size() - 1);
}

BackendStepStats CpuBackend::step(std::size_t max_queries, bool flush) {
  (void)flush;  // nothing is ever deferred: every step runs to completion
  const double t0 = now_seconds();
  const std::size_t begin = next_query_;
  const std::size_t end = max_queries == 0
                              ? pending_.size()
                              : std::min(pending_.size(), begin + max_queries);
  next_query_ = end;

  BackendStepStats out;
  out.fresh_queries = end - begin;
  if (end == begin) return out;

  // Execute per (k, nprobe) group; the model prices each group's batch.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::size_t>> groups;
  for (std::size_t q = begin; q < end; ++q) {
    groups[{pending_[q].k, pending_[q].nprobe}].push_back(q);
  }
  for (const auto& [kp, members] : groups) {
    FloatMatrix batch(members.size(), index().dim());
    for (std::size_t i = 0; i < members.size(); ++i) {
      auto row = batch.row(i);
      const auto& src = pending_[members[i]].values;
      std::copy(src.begin(), src.end(), row.begin());
    }
    auto results = CpuIvfPq(index()).search_batch(batch, kp.first, kp.second);
    for (std::size_t i = 0; i < members.size(); ++i) {
      pending_[members[i]].results = std::move(results[i]);
      pending_[members[i]].done = true;
    }
    const double group_s = model_group_seconds(members.size(), kp.second, kp.first);
    if (trace_ != nullptr) {
      trace_->span(trace_->lane("cpu/exec"), "scan", "cpu",
                   trace_->now() + out.exec_seconds, group_s,
                   {{"queries", static_cast<double>(members.size())},
                    {"k", static_cast<double>(kp.first)},
                    {"nprobe", static_cast<double>(kp.second)}});
    }
    out.exec_seconds += group_s;
    out.tasks += members.size() * std::min<std::size_t>(kp.second, index().nlist());
  }
  out.step_seconds = out.exec_seconds;
  if (trace_ != nullptr) trace_->advance(out.step_seconds);

  // Serial timeline: steps pack back-to-back on the cumulative model clock.
  out.submit_seconds = stats_.total_seconds;
  out.complete_seconds = stats_.total_seconds + out.step_seconds;
  stats_.total_seconds += out.step_seconds;
  stats_.host_wall_seconds += now_seconds() - t0;
  stats_.queries += out.fresh_queries;
  stats_.tasks += out.tasks;
  ++stats_.batches;
  stats_.batch_seconds.push_back(out.step_seconds);
  return out;
}

bool CpuBackend::finished(std::uint32_t handle) const {
  if (handle < handle_base_) return true;  // compacted away: taken long ago
  return pending_.at(handle - handle_base_).done;
}

std::vector<Neighbor> CpuBackend::take_results(std::uint32_t handle) {
  if (handle < handle_base_) {
    throw std::logic_error("CpuBackend: results for this handle already taken");
  }
  PendingQuery& pq = pending_.at(handle - handle_base_);
  if (!pq.done || pq.taken) {
    throw std::logic_error("CpuBackend: results not available for this handle");
  }
  pq.taken = true;
  if (live_handles_ > 0) --live_handles_;
  return std::move(pq.results);
}

std::string backend_kind_name(BackendKind kind) {
  return kind == BackendKind::kDrim ? "drim" : "cpu";
}

BackendKind parse_backend_kind(const std::string& name) {
  if (name == "drim" || name == "pim") return BackendKind::kDrim;
  if (name == "cpu") return BackendKind::kCpu;
  throw std::invalid_argument("unknown backend '" + name + "' (want drim|cpu)");
}

}  // namespace drim
