#include "backend/backend_factory.hpp"

#include <stdexcept>

namespace drim {

std::unique_ptr<AnnBackend> make_backend(BackendKind kind, const IvfPqIndex& index,
                                         const FloatMatrix& sample_queries,
                                         const DrimEngineOptions& engine_options,
                                         const CpuBackendOptions& cpu_options) {
  switch (kind) {
    case BackendKind::kDrim:
      return std::make_unique<DrimBackend>(index, sample_queries, engine_options);
    case BackendKind::kCpu:
      return std::make_unique<CpuBackend>(index, cpu_options);
  }
  throw std::invalid_argument("unknown BackendKind");
}

}  // namespace drim
