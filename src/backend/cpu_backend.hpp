#pragma once
// AnnBackend over the CPU IVF-PQ baseline. Results come from the real
// multithreaded CpuIvfPq scan; modeled step times come from the Eq. (1)-(11)
// performance model evaluated on a configurable comparator platform (by
// default a 2530-DPU-equivalent slice of the paper's 32-thread Faiss-CPU
// box), so latency sweeps over the CPU backend are simulation-host
// independent, like the DRIM backends'. The streaming protocol is
// stateless-per-step: every step executes all consumed queries to completion
// (no cross-step deferral), grouped by their (k, nprobe) so mixed traces are
// modeled per group.

#include "backend/ann_backend.hpp"
#include "baseline/cpu_ivfpq.hpp"
#include "model/perf_model.hpp"

namespace drim {

struct CpuBackendOptions {
  /// Comparator platform for modeled step times.
  PlatformParams platform = cpu_platform();
  bool multiplier_less = false;  ///< CPU squares natively; kept for ablations
  /// Accepted for CLI parity with the DRIM backends' --pipeline-depth knob,
  /// but the CPU baseline has no separable transfer stage to overlap, so the
  /// backend always executes (and reports) serial steps: pipeline_depth()
  /// stays 1 regardless of this value.
  std::size_t pipeline_depth = 1;
};

class CpuBackend final : public AnnBackend {
 public:
  explicit CpuBackend(const IvfPqIndex& index, const CpuBackendOptions& options = {});
  /// Deleted: a temporary would dangle behind the non-owning root snapshot.
  explicit CpuBackend(IvfPqIndex&& index, const CpuBackendOptions& options = {}) = delete;
  /// Snapshot construction: the backend shares ownership of the snapshot's
  /// index; tombstoned snapshots are compacted up front (the CPU scan has no
  /// tombstone filter).
  explicit CpuBackend(IndexSnapshot snapshot, const CpuBackendOptions& options = {});

  std::string name() const override { return "cpu"; }
  std::vector<std::vector<Neighbor>> search(const FloatMatrix& queries, std::size_t k,
                                            std::size_t nprobe) override;

  void reset_stream() override;
  // Precision-taking enqueue stays visible (the CPU baseline has no ladder;
  // the seam's default ignores the rung and lands here).
  using AnnBackend::enqueue;
  std::uint32_t enqueue(std::span<const float> query, std::size_t k,
                        std::size_t nprobe) override;
  BackendStepStats step(std::size_t max_queries, bool flush) override;
  bool has_deferred() const override { return false; }
  void set_trace(obs::TraceRecorder* trace) override { trace_ = trace; }
  bool finished(std::uint32_t handle) const override;
  std::vector<Neighbor> take_results(std::uint32_t handle) override;
  std::size_t stream_depth() const override { return pending_.size(); }

  double estimate_batch_seconds(std::size_t num_queries, std::size_t nprobe,
                                std::size_t k) const override;
  BackendStats stats() const override { return stats_; }

  // ---- mutable-index support ----
  bool supports_updates() const override { return true; }
  /// Flush pending queries through the current version, then swap to the
  /// new snapshot (compacted when it carries tombstones). The install cost
  /// is the delta's bytes rewritten at the platform's memory bandwidth.
  double stage_snapshot(const IndexSnapshot& snapshot,
                        const PublishDelta& delta) override;
  std::uint64_t snapshot_version() const override { return snapshot_.version; }
  struct PendingQuery {
    std::vector<float> values;
    std::uint32_t k = 0;
    std::uint32_t nprobe = 0;
    std::vector<Neighbor> results;
    bool done = false;
    bool taken = false;
  };

  /// Eq. (1)-(11) seconds for one executed group.
  double model_group_seconds(std::size_t num_queries, std::size_t nprobe,
                             std::size_t k) const;
  void maybe_compact();
  /// Point live_ at the snapshot's index, compacting when it has tombstones.
  void adopt_snapshot();
  const IvfPqIndex& index() const { return *live_; }

  IndexSnapshot snapshot_;
  /// What the scan actually runs over: the snapshot's index, or its
  /// compacted live-only copy when the snapshot carries tombstones.
  std::shared_ptr<const IvfPqIndex> live_;
  CpuBackendOptions opts_;
  obs::TraceRecorder* trace_ = nullptr;  // not owned; may be null
  std::vector<PendingQuery> pending_;  ///< stream state, indexed by handle - base
  std::size_t next_query_ = 0;         ///< first pending query no step consumed
  std::uint32_t handle_base_ = 0;
  std::size_t live_handles_ = 0;
  BackendStats stats_;
};

}  // namespace drim
