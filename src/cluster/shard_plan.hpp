#pragma once
// Inter-shard index partitioning for the multi-shard cluster tier
// (DESIGN.md §13). This is the paper's Section IV-C heat-balancing greedy
// allocation lifted one level up: instead of placing cluster slices on DPUs
// inside one array, the plan places whole clusters on shard nodes (each a
// full PimPlatform behind an AnnBackend), replicating the hottest
// `replication_fraction` of clusters across several shards so the router can
// send a hot cluster's traffic to whichever owner is least loaded.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace drim::cluster {

/// Planning knobs (the inter-shard analogue of drim::LayoutParams).
struct ShardPlanParams {
  std::size_t num_shards = 1;
  /// Fraction of the hottest clusters replicated onto extra shards (the
  /// paper's dup_fraction at the inter-shard level).
  double replication_fraction = 0.10;
  /// Extra owners for each replicated cluster (clamped to num_shards - 1).
  std::size_t replica_copies = 1;
  /// Relative cost of one LUT build vs scanning one point, matching
  /// LayoutParams::lut_cost_points — a cluster visit costs lut + size.
  double lut_cost_points = 64.0;
};

/// The computed cluster -> shards assignment. Deterministic: ties in the
/// greedy placement break toward the lowest shard id, and the unit order is
/// a strict total order, so the plan is identical across runs and platforms.
class ShardPlan {
 public:
  /// Plan ownership of `cluster_sizes.size()` clusters across
  /// `params.num_shards` shards, balancing `heat[c] * (lut + size[c])`
  /// expected load. Throws std::invalid_argument on infeasible parameters;
  /// the num_shards > nlist error names the max feasible shard count.
  ShardPlan(const std::vector<std::size_t>& cluster_sizes,
            const std::vector<double>& cluster_heat, const ShardPlanParams& params);

  std::size_t num_shards() const { return params_.num_shards; }
  std::size_t nlist() const { return owners_.size(); }
  const ShardPlanParams& params() const { return params_; }

  /// Owning shards of one cluster, ascending; size 1 unless replicated.
  const std::vector<std::uint32_t>& owners(std::uint32_t cluster) const {
    return owners_[cluster];
  }
  /// Clusters owned by one shard, ascending cluster id.
  const std::vector<std::uint32_t>& shard_clusters(std::uint32_t shard) const {
    return shard_clusters_[shard];
  }
  /// nlist-sized 0/1 mask of one shard's clusters, in the form
  /// LayoutParams::owned_clusters consumes.
  std::vector<std::uint8_t> owned_mask(std::uint32_t shard) const;
  bool replicated(std::uint32_t cluster) const { return owners_[cluster].size() > 1; }

  /// Expected per-visit cost of a cluster (the dispatch policy's load unit).
  double cluster_cost(std::uint32_t cluster) const {
    return params_.lut_cost_points + static_cast<double>(sizes_[cluster]);
  }
  /// Mean per-visit cost over one shard's clusters (converts a shard's
  /// queued task count into comparable load units).
  double mean_cluster_cost(std::uint32_t shard) const;
  /// Heat-weighted load the planner assigned each shard (what it balanced).
  const std::vector<double>& planned_load() const { return planned_load_; }

  // ---- online mutation (recovery / snapshot publishes) ----
  /// Add `shard` as an owner of `cluster` (failure recovery re-replicates a
  /// drained shard's exclusive clusters this way). No-op when the shard
  /// already owns the cluster. The shard's planned load grows by the
  /// cluster's per-visit cost (heat is unknown post-hoc; cost is the proxy
  /// the dispatch policy already uses).
  void add_owner(std::uint32_t cluster, std::uint32_t shard);
  /// Extend the plan for one online cluster split: the child (whose id is
  /// nlist() before the call) inherits every owner of its parent, and both
  /// recorded sizes refresh so cluster_cost() stays meaningful for dispatch.
  void add_split_child(std::uint32_t parent, std::size_t parent_size,
                       std::size_t child_size);

 private:
  ShardPlanParams params_;
  std::vector<std::size_t> sizes_;
  std::vector<std::vector<std::uint32_t>> owners_;         // cluster -> shards
  std::vector<std::vector<std::uint32_t>> shard_clusters_; // shard -> clusters
  std::vector<double> planned_load_;
};

}  // namespace drim::cluster
