#pragma once
// The multi-shard cluster-serving tier (DESIGN.md §13): a ShardRouter
// front-end behind the AnnBackend seam, owning N shard backends (each an
// AnnBackend over its own PimPlatform). The IVF index is partitioned across
// shards by cluster (ShardPlan: the paper's heat-balancing greedy allocation
// at the inter-shard level, hottest replication_fraction of clusters
// replicated), each query is routed only to the shards owning its probed
// clusters, and partial top-k lists are merged at the router with
// deterministic fixed-order merges and replica dedup. Dispatch is
// load-aware: a replicated cluster is served by the least-loaded live owner
// (the Eq. 15 delay predictor extended with per-shard queue depth). Drained
// shards stop accepting dispatches; clusters with no live owner degrade to a
// host-side exact fallback (host_exact), so no query is ever dropped.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "backend/ann_backend.hpp"
#include "backend/cpu_backend.hpp"
#include "cluster/shard_plan.hpp"
#include "core/ivf.hpp"
#include "drim/engine.hpp"
#include "drim/pim_index.hpp"

namespace drim::cluster {

/// Router/cluster-tier knobs.
struct ClusterOptions {
  std::size_t num_shards = 1;
  /// Fraction of hottest clusters replicated across shards (ShardPlan).
  double replication_fraction = 0.10;
  /// Extra owners per replicated cluster (clamped to num_shards - 1).
  std::size_t replica_copies = 1;
  /// Dispatch replicated clusters to EVERY live owner instead of the least
  /// loaded one. Redundant work, but each owner returns the same (dist, id)
  /// hits, so the router's replica dedup collapses them — the knob exists to
  /// exercise (and test) dedup under real duplicate traffic.
  bool hedge_replicas = false;
  /// Queries consumed per router step in closed-loop search() (0 = all).
  std::size_t search_batch_size = 0;
  /// Modeled host memory bandwidth for the exact-scan fallback path
  /// (bytes/s over cluster codes + ids).
  double fallback_bytes_per_sec = 80e9;
};

/// ShardRouter behind the backend seam. With num_shards == 1 the router is a
/// strict passthrough to its single shard (bit-identical results AND modeled
/// times, at any pipeline depth); with more shards it runs the routed
/// protocol: locate clusters once at the front-end, enqueue_routed() the
/// owned subsets per shard, barrier-step the shards, merge on take.
class ClusterBackend final : public AnnBackend {
 public:
  /// Rebuilds one shard backend from the current snapshot and its (possibly
  /// extended) ownership mask — recovery re-homes clusters this way.
  using ShardFactory = std::function<std::unique_ptr<AnnBackend>(
      std::uint32_t shard, const IndexSnapshot& snapshot,
      const std::vector<std::uint8_t>& owned_mask)>;

  /// `index` must outlive the backend (cluster location + fallback scans);
  /// internally it is held as a non-owning root snapshot, replaced wholesale
  /// by stage_snapshot(). `shards.size()` must equal `plan.num_shards()`;
  /// every shard must support routed enqueue when there is more than one.
  ClusterBackend(const IvfPqIndex& index, ShardPlan plan,
                 std::vector<std::unique_ptr<AnnBackend>> shards,
                 const ClusterOptions& options);

  std::string name() const override;
  std::vector<std::vector<Neighbor>> search(const FloatMatrix& queries, std::size_t k,
                                            std::size_t nprobe) override;

  void reset_stream() override;
  std::uint32_t enqueue(std::span<const float> query, std::size_t k,
                        std::size_t nprobe) override;
  std::uint32_t enqueue(std::span<const float> query, std::size_t k,
                        std::size_t nprobe, Precision precision) override;
  BackendStepStats step(std::size_t max_queries, bool flush) override;
  std::size_t pipeline_depth() const override;
  void set_step_start(double submit_seconds) override;
  bool has_deferred() const override;
  std::size_t deferred_count() const override;
  void set_trace(obs::TraceRecorder* trace) override;
  bool finished(std::uint32_t handle) const override;
  std::vector<Neighbor> take_results(std::uint32_t handle) override;
  std::size_t stream_depth() const override;

  double estimate_batch_seconds(std::size_t num_queries, std::size_t nprobe,
                                std::size_t k) const override;
  BackendStats stats() const override;
  std::vector<ShardHealth> shard_health() const override;

  // ---- mutable-index support (DESIGN.md §14) ----
  bool supports_updates() const override;
  /// Flush every in-flight routed query through the CURRENT version (their
  /// answers must match a cold rebuild of the old logical state), extend the
  /// plan for the delta's splits (child inherits its parent's owners), then
  /// fan the install out to every shard. Returns the modeled install cost:
  /// shards install in parallel, so the max over shards.
  double stage_snapshot(const IndexSnapshot& snapshot,
                        const PublishDelta& delta) override;
  /// Flush, then let every shard re-plan its intra-array layout from its
  /// observed probe traffic. Parallel across shards: max cost.
  double stage_relayout() override;
  std::uint64_t snapshot_version() const override { return snapshot_.version; }

  // ---- cluster-tier control plane ----
  /// Drain (or undrain) one shard: a draining shard accepts no new
  /// dispatches but still executes work already queued on it, so in-flight
  /// queries complete normally. Clusters whose owners are all draining fall
  /// back to the host-side exact scan. Drain flags survive reset_stream()
  /// (they model node state, not stream state). Throws std::logic_error in
  /// single-shard passthrough mode.
  void set_shard_drained(std::uint32_t shard, bool drained);
  bool shard_drained(std::uint32_t shard) const { return drained_[shard] != 0; }

  /// What one recover_shard() call re-homed, with its modeled cost.
  struct RecoveryReport {
    std::size_t clusters_rehomed = 0;  ///< clusters that regained a live owner
    std::size_t rebuilt_shards = 0;    ///< survivors rebuilt with wider masks
    std::size_t moved_bytes = 0;       ///< re-homed cluster codes + ids
    double seconds = 0.0;              ///< moved_bytes at fallback bandwidth
  };

  /// Failure recovery for a drained shard: every cluster it owns that has no
  /// remaining live owner is re-replicated onto the least-loaded live
  /// survivor (lowest shard id on ties), and each affected survivor's
  /// backend is rebuilt from the current snapshot with its extended
  /// ownership mask (requires a shard factory — make_cluster_backend wires
  /// one). In-flight queries are flushed first and their finished partials
  /// stashed, so nothing is dropped. Fallback health counters reset to zero:
  /// the degraded path is closed once every cluster has a live owner again.
  /// Throws std::logic_error in passthrough mode, when the shard is not
  /// drained, or when no live survivor exists.
  RecoveryReport recover_shard(std::uint32_t failed);

  /// Install the factory recover_shard() uses to rebuild survivor backends.
  void set_shard_factory(ShardFactory factory) { shard_factory_ = std::move(factory); }

  const ShardPlan& plan() const { return plan_; }
  std::size_t num_shards() const { return shards_.size(); }
  AnnBackend& shard(std::uint32_t s) { return *shards_[s]; }

 private:
  struct RouterQuery {
    std::vector<float> values;
    std::uint32_t k = 0;
    std::uint32_t nprobe = 0;
    /// Requested precision rung, forwarded to every shard dispatch (shards
    /// without a ladder ignore it via the seam's default).
    Precision precision = Precision::kFull;
    /// (shard, shard-local handle) of each partial dispatched for this query.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> parts;
    /// Host-exact hits for probed clusters with no live owner.
    std::vector<Neighbor> fallback_hits;
    bool dispatched = false;
    bool taken = false;
  };

  bool passthrough() const { return shards_.size() == 1; }
  void maybe_compact();
  /// Step one shard with the trace cursor anchored at `now_s` under its
  /// per-shard lane prefix; returns the shard's step stats.
  BackendStepStats step_shard(std::uint32_t s, bool flush, double now_s);
  /// Exact-scan one whole cluster on the host for every query in `members`
  /// at search depth `k` (tombstone-aware: the snapshot's dead flags filter
  /// before the top-k, like the kernels), appending each member's hits to
  /// its q.fallback_hits. Coalesced like the kernels' cluster-major fusion
  /// (DESIGN.md §16): the cluster's code + id block is pulled ONCE per step
  /// instead of once per query, so the returned modeled seconds bill one
  /// stream regardless of member count; the avoided re-pulls are added to
  /// stats_.dc_bytes_saved.
  double fallback_scan_group(std::uint32_t cluster, std::uint32_t k,
                             std::span<RouterQuery*> members);
  /// Step every shard with flush until no routed work is deferred, so every
  /// dispatched partial is finished (install/recovery precondition).
  void flush_all();
  /// Take shard `s`'s finished partials into their queries' stashes — its
  /// handles are about to die with a backend rebuild. The merge sorts, so
  /// stash order does not affect results.
  void stash_partials(std::uint32_t s);

  const IvfPqIndex& index() const { return *snapshot_.index; }

  IndexSnapshot snapshot_;
  ShardPlan plan_;
  std::vector<std::unique_ptr<AnnBackend>> shards_;
  ClusterOptions opts_;

  std::vector<std::uint8_t> drained_;
  std::vector<ShardHealth> health_;

  // Routed-mode stream state (mirrors CpuBackend's handle compaction).
  std::vector<RouterQuery> queries_;
  std::size_t next_query_ = 0;     ///< first query no step has dispatched
  std::uint32_t handle_base_ = 0;  ///< external handle of queries_[0]
  std::size_t live_handles_ = 0;   ///< enqueued but not yet taken back

  BackendStats stats_;
  double submit_hint_seconds_ = 0.0;
  double last_complete_seconds_ = 0.0;
  obs::TraceRecorder* trace_ = nullptr;

  /// Quantized-index copy for the fallback exact scan, built on first use
  /// (only drain scenarios pay for it); invalidated by stage_snapshot().
  mutable std::unique_ptr<PimIndexData> fallback_data_;

  ShardFactory shard_factory_;  ///< rebuilds survivors during recovery
};

/// Construct a cluster backend over `index`: plans the shard assignment from
/// the sample-query heat estimate, builds one shard backend per shard (kDrim
/// with LayoutParams::owned_clusters masked to the shard's clusters; each
/// shard gets its own engine_options.pim.num_dpus DPUs), and wires them
/// behind a router. With cluster_options.num_shards == 1 the single shard
/// owns every cluster and the router is a passthrough. kCpu is only valid at
/// num_shards == 1 (the CPU baseline cannot restrict its probe set).
std::unique_ptr<AnnBackend> make_cluster_backend(
    BackendKind kind, const IvfPqIndex& index, const FloatMatrix& sample_queries,
    const DrimEngineOptions& engine_options, const ClusterOptions& cluster_options,
    const CpuBackendOptions& cpu_options = {});

}  // namespace drim::cluster
