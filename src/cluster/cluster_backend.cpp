#include "cluster/cluster_backend.hpp"

#include <algorithm>
#include <stdexcept>

#include "backend/drim_backend.hpp"
#include "drim/host_exact.hpp"
#include "drim/layout.hpp"

namespace drim::cluster {

ClusterBackend::ClusterBackend(const IvfPqIndex& index, ShardPlan plan,
                               std::vector<std::unique_ptr<AnnBackend>> shards,
                               const ClusterOptions& options)
    : snapshot_(make_root_snapshot(index)),
      plan_(std::move(plan)),
      shards_(std::move(shards)),
      opts_(options) {
  if (shards_.empty() || shards_.size() != plan_.num_shards()) {
    throw std::invalid_argument(
        "ClusterBackend: shard backend count must match the plan's num_shards");
  }
  if (shards_.size() > 1) {
    for (const auto& s : shards_) {
      if (!s->supports_routed_enqueue()) {
        throw std::invalid_argument(
            "ClusterBackend: shard backend '" + s->name() +
            "' does not support routed enqueue (required with > 1 shard)");
      }
    }
  }
  drained_.assign(shards_.size(), 0);
  health_.resize(shards_.size());
  for (std::uint32_t s = 0; s < shards_.size(); ++s) health_[s].shard = s;
}

std::string ClusterBackend::name() const {
  return "cluster" + std::to_string(shards_.size()) + "-" + shards_[0]->name();
}

std::size_t ClusterBackend::pipeline_depth() const {
  // Passthrough inherits the shard's depth so pipelined serving stays
  // bit-identical; routed steps are cross-shard barriers, depth 1 at the
  // router (shards still pipeline internally within one router step).
  return passthrough() ? shards_[0]->pipeline_depth() : 1;
}

void ClusterBackend::set_step_start(double submit_seconds) {
  if (passthrough()) {
    shards_[0]->set_step_start(submit_seconds);
    return;
  }
  submit_hint_seconds_ = submit_seconds;
}

bool ClusterBackend::has_deferred() const {
  for (const auto& s : shards_) {
    if (s->has_deferred()) return true;
  }
  return false;
}

std::size_t ClusterBackend::deferred_count() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->deferred_count();
  return total;
}

void ClusterBackend::set_trace(obs::TraceRecorder* trace) {
  trace_ = trace;
  if (passthrough()) {
    shards_[0]->set_trace(trace);
    return;
  }
  // Routed mode: shards get the recorder too, but the router brackets each
  // shard's step with its lane prefix (step_shard), so one recorder renders
  // one lane group per shard.
  for (auto& s : shards_) s->set_trace(trace);
}

void ClusterBackend::reset_stream() {
  for (auto& s : shards_) s->reset_stream();
  queries_.clear();
  next_query_ = 0;
  handle_base_ = 0;
  live_handles_ = 0;
  stats_ = BackendStats{};
  submit_hint_seconds_ = 0.0;
  last_complete_seconds_ = 0.0;
  // Drain flags survive: they model node state, not stream state. Health
  // counters restart with the stream, like BackendStats.
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    health_[s] = ShardHealth{};
    health_[s].shard = s;
    health_[s].draining = drained_[s] != 0;
  }
}

void ClusterBackend::maybe_compact() {
  bool idle = next_query_ == queries_.size();
  if (live_handles_ == 0 && idle && !queries_.empty() && !has_deferred()) {
    handle_base_ += static_cast<std::uint32_t>(queries_.size());
    queries_.clear();
    next_query_ = 0;
  }
}

std::uint32_t ClusterBackend::enqueue(std::span<const float> query, std::size_t k,
                                      std::size_t nprobe) {
  return enqueue(query, k, nprobe, Precision::kFull);
}

std::uint32_t ClusterBackend::enqueue(std::span<const float> query, std::size_t k,
                                      std::size_t nprobe, Precision precision) {
  if (passthrough()) return shards_[0]->enqueue(query, k, nprobe, precision);
  maybe_compact();
  RouterQuery q;
  q.values.assign(query.begin(), query.end());
  q.k = static_cast<std::uint32_t>(k);
  q.nprobe = static_cast<std::uint32_t>(nprobe);
  q.precision = precision;
  queries_.push_back(std::move(q));
  ++live_handles_;
  return handle_base_ + static_cast<std::uint32_t>(queries_.size() - 1);
}

double ClusterBackend::fallback_scan_group(std::uint32_t cluster, std::uint32_t k,
                                           std::span<RouterQuery*> members) {
  if (members.empty()) return 0.0;
  if (!fallback_data_) fallback_data_ = std::make_unique<PimIndexData>(index());
  const auto size = static_cast<std::uint32_t>(fallback_data_->cluster_size(cluster));
  if (size == 0) return 0.0;
  Shard whole;
  whole.cluster = cluster;
  whole.begin = 0;
  whole.end = size;
  std::vector<std::vector<std::int16_t>> q16(members.size());
  std::vector<std::vector<KernelHit>> rows(members.size());
  std::vector<HostFusedTask> tasks(members.size());
  for (std::size_t w = 0; w < members.size(); ++w) {
    q16[w] = PimIndexData::quantize_query(members[w]->values);
    rows[w].resize(k);
    tasks[w] = {q16[w].data(), rows[w].data()};
  }
  host_search_tasks_fused_into(*fallback_data_, tasks, whole, k, /*q4=*/false,
                               snapshot_.dead_flags(cluster));
  for (std::size_t w = 0; w < members.size(); ++w) {
    for (const KernelHit& h : rows[w]) {
      if (h.id == 0xFFFFFFFFu && h.dist == 0xFFFFFFFFu) continue;  // sentinel pad
      members[w]->fallback_hits.push_back({static_cast<float>(h.dist), h.id});
    }
  }
  // Streaming exact scan over the cluster's codes + ids at host bandwidth —
  // pulled ONCE for the whole group; the members past the first are the
  // duplicate pulls this path used to pay.
  const double bytes = static_cast<double>(size) *
                       (static_cast<double>(fallback_data_->code_size()) +
                        sizeof(std::uint32_t));
  stats_.dc_bytes_saved +=
      static_cast<std::uint64_t>(members.size() - 1) * static_cast<std::uint64_t>(bytes);
  return bytes / opts_.fallback_bytes_per_sec;
}

BackendStepStats ClusterBackend::step_shard(std::uint32_t s, bool flush, double now_s) {
  if (trace_ != nullptr) {
    trace_->set_lane_prefix("shard" + std::to_string(s) + "/");
    trace_->set_now(now_s);
  }
  const BackendStepStats st = shards_[s]->step(0, flush);
  if (trace_ != nullptr) trace_->set_lane_prefix({});
  return st;
}

BackendStepStats ClusterBackend::step(std::size_t max_queries, bool flush) {
  if (passthrough()) return shards_[0]->step(max_queries, flush);

  const std::size_t begin = next_query_;
  const std::size_t end = max_queries == 0
                              ? queries_.size()
                              : std::min(queries_.size(), begin + max_queries);
  next_query_ = end;

  BackendStepStats out;
  out.fresh_queries = end - begin;

  // ---- route fresh queries ----
  // Per-shard load on the dispatch horizon: the backlog already queued on
  // the shard (deferred tasks x its mean task cost — the Eq. 15 queue-depth
  // term) plus everything dispatched within this step.
  std::vector<double> load(shards_.size(), 0.0);
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    load[s] = static_cast<double>(shards_[s]->deferred_count()) *
              plan_.mean_cluster_cost(s);
  }
  std::vector<std::vector<std::uint32_t>> per_shard_probes(shards_.size());
  // Ownerless (query, cluster) visits collected during routing; scanned
  // AFTER the loop grouped by (cluster, k) so each dead cluster's block is
  // pulled once per step, not once per query.
  struct FallbackVisit {
    std::uint32_t cluster;
    std::uint32_t k;
    std::uint32_t query;  // index into queries_
  };
  std::vector<FallbackVisit> fallback_visits;
  double fallback_seconds = 0.0;
  std::size_t fallback_tasks = 0;
  for (std::size_t qi = begin; qi < end; ++qi) {
    RouterQuery& q = queries_[qi];
    const std::vector<std::uint32_t> probes =
        index().locate_clusters(q.values, q.nprobe);
    for (auto& list : per_shard_probes) list.clear();
    for (std::uint32_t c : probes) {
      const auto& owners = plan_.owners(c);
      if (opts_.hedge_replicas && owners.size() > 1) {
        // Hedge: every live owner serves the cluster; the merge's replica
        // dedup collapses the identical hits.
        bool any = false;
        for (std::uint32_t s : owners) {
          if (drained_[s]) continue;
          per_shard_probes[s].push_back(c);
          load[s] += plan_.cluster_cost(c);
          any = true;
        }
        if (any) continue;
      } else {
        // Load-aware dispatch: least-loaded live owner, lowest id on ties.
        std::uint32_t best = 0;
        double best_load = 1e300;
        bool found = false;
        for (std::uint32_t s : owners) {
          if (drained_[s]) continue;
          if (load[s] < best_load) {
            best_load = load[s];
            best = s;
            found = true;
          }
        }
        if (found) {
          per_shard_probes[best].push_back(c);
          load[best] += plan_.cluster_cost(c);
          continue;
        }
      }
      // No live owner: degrade to the host-side exact scan so the query
      // still completes with full recall. Attributed to the first (drained)
      // owner's health row; the scan itself runs coalesced after routing.
      fallback_visits.push_back({c, q.k, static_cast<std::uint32_t>(qi)});
      ++fallback_tasks;
      if (!owners.empty()) ++health_[owners.front()].fallback_tasks;
    }
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      if (per_shard_probes[s].empty()) continue;
      const std::uint32_t handle =
          shards_[s]->enqueue_routed(q.values, q.k, per_shard_probes[s], q.precision);
      q.parts.emplace_back(s, handle);
      ++health_[s].dispatched_queries;
      health_[s].dispatched_tasks += per_shard_probes[s].size();
      out.tasks += per_shard_probes[s].size();
    }
    q.dispatched = true;
  }

  // ---- coalesced drain fallback ----
  // Group the ownerless visits by (cluster, k) in discovery order (stable:
  // independent of thread count) and scan each group once. Merges sort and
  // dedup, so hit-append order never affects results.
  if (!fallback_visits.empty()) {
    std::stable_sort(fallback_visits.begin(), fallback_visits.end(),
                     [](const FallbackVisit& a, const FallbackVisit& b) {
                       if (a.cluster != b.cluster) return a.cluster < b.cluster;
                       return a.k < b.k;
                     });
    std::vector<RouterQuery*> members;
    for (std::size_t i = 0; i < fallback_visits.size();) {
      std::size_t j = i;
      members.clear();
      while (j < fallback_visits.size() &&
             fallback_visits[j].cluster == fallback_visits[i].cluster &&
             fallback_visits[j].k == fallback_visits[i].k) {
        members.push_back(&queries_[fallback_visits[j].query]);
        ++j;
      }
      fallback_seconds += fallback_scan_group(fallback_visits[i].cluster,
                                              fallback_visits[i].k, members);
      i = j;
    }
  }

  // ---- barrier-step the shards ----
  // Every shard with queued work steps, drained ones included: drain blocks
  // new dispatches, never work already accepted (zero dropped queries).
  const double step_start =
      std::max(last_complete_seconds_, submit_hint_seconds_);
  const double trace_now = trace_ != nullptr ? trace_->now() : 0.0;
  double exec_seconds = 0.0;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    const BackendStepStats st = step_shard(s, flush, trace_now);
    exec_seconds = std::max(exec_seconds, st.step_seconds);
    out.deferred += st.deferred;
    health_[s].busy_seconds += st.step_seconds;
    health_[s].queue_tasks = shards_[s]->deferred_count();
    health_[s].draining = drained_[s] != 0;
  }

  // Router host work (cluster location for the fresh queries, billed once
  // at the front-end, plus any fallback scans) overlaps shard execution.
  const double host_seconds =
      shards_[0]->locate_cost_seconds(end - begin) + fallback_seconds;
  out.host_seconds = host_seconds;
  out.exec_seconds = exec_seconds;
  out.step_seconds = std::max(host_seconds, exec_seconds);
  out.tasks += fallback_tasks;
  out.submit_seconds = step_start;
  out.complete_seconds = step_start + out.step_seconds;
  last_complete_seconds_ = out.complete_seconds;
  if (trace_ != nullptr) trace_->set_now(trace_now + out.step_seconds);

  stats_.total_seconds += out.step_seconds;
  stats_.queries += out.fresh_queries;
  stats_.tasks += out.tasks;
  ++stats_.batches;
  stats_.batch_seconds.push_back(out.step_seconds);
  return out;
}

bool ClusterBackend::finished(std::uint32_t handle) const {
  if (passthrough()) return shards_[0]->finished(handle);
  if (handle < handle_base_) return true;  // compacted away: taken long ago
  const RouterQuery& q = queries_[handle - handle_base_];
  if (!q.dispatched) return false;
  for (const auto& [s, h] : q.parts) {
    if (!shards_[s]->finished(h)) return false;
  }
  return true;
}

std::vector<Neighbor> ClusterBackend::take_results(std::uint32_t handle) {
  if (passthrough()) return shards_[0]->take_results(handle);
  if (handle < handle_base_) {
    throw std::logic_error("ClusterBackend: results for this handle already taken");
  }
  RouterQuery& q = queries_[handle - handle_base_];
  if (q.taken) {
    throw std::logic_error("ClusterBackend: results for this handle already taken");
  }
  // Deterministic merge: concatenate the partials in fixed (dispatch) order,
  // sort under the Neighbor total order, and collapse replica duplicates —
  // hedged owners scan identical cluster data, so a duplicate id always
  // carries an identical distance and lands adjacent after the sort. The
  // result is independent of shard enumeration order and thread count.
  std::vector<Neighbor> merged = std::move(q.fallback_hits);
  for (const auto& [s, h] : q.parts) {
    const std::vector<Neighbor> part = shards_[s]->take_results(h);
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end(),
                           [](const Neighbor& a, const Neighbor& b) {
                             return a.id == b.id && a.dist == b.dist;
                           }),
               merged.end());
  if (merged.size() > q.k) merged.resize(q.k);
  q.taken = true;
  q.values.clear();
  q.values.shrink_to_fit();
  q.parts.clear();
  if (live_handles_ > 0) --live_handles_;
  return merged;
}

std::size_t ClusterBackend::stream_depth() const {
  if (passthrough()) return shards_[0]->stream_depth();
  return queries_.size();
}

std::vector<std::vector<Neighbor>> ClusterBackend::search(const FloatMatrix& queries,
                                                          std::size_t k,
                                                          std::size_t nprobe) {
  if (passthrough()) return shards_[0]->search(queries, k, nprobe);
  reset_stream();
  std::vector<std::uint32_t> handles;
  handles.reserve(queries.count());
  for (std::size_t qi = 0; qi < queries.count(); ++qi) {
    handles.push_back(enqueue(queries.row(qi), k, nprobe));
  }
  const std::size_t chunk = opts_.search_batch_size;
  while (next_query_ < queries_.size()) {
    step(chunk, /*flush=*/false);
  }
  while (has_deferred()) step(0, /*flush=*/true);
  std::vector<std::vector<Neighbor>> results;
  results.reserve(handles.size());
  for (std::uint32_t h : handles) results.push_back(take_results(h));
  return results;
}

double ClusterBackend::estimate_batch_seconds(std::size_t num_queries,
                                              std::size_t nprobe, std::size_t k) const {
  if (passthrough()) {
    return shards_[0]->estimate_batch_seconds(num_queries, nprobe, k);
  }
  // Bottleneck shard: each per-shard estimate already scales by the shard's
  // ownership share (its layout only enumerates owned clusters), so the max
  // is the barrier step's expected critical path.
  double worst = 0.0;
  for (const auto& s : shards_) {
    worst = std::max(worst, s->estimate_batch_seconds(num_queries, nprobe, k));
  }
  return worst;
}

BackendStats ClusterBackend::stats() const {
  if (passthrough()) return shards_[0]->stats();
  BackendStats out = stats_;
  for (const auto& s : shards_) {
    const BackendStats ss = s->stats();
    out.host_wall_seconds += ss.host_wall_seconds;
    out.dc_bytes_saved += ss.dc_bytes_saved;
  }
  return out;
}

std::vector<ShardHealth> ClusterBackend::shard_health() const {
  if (passthrough()) return {};
  std::vector<ShardHealth> out = health_;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    out[s].draining = drained_[s] != 0;
    out[s].queue_tasks = shards_[s]->deferred_count();
  }
  return out;
}

bool ClusterBackend::supports_updates() const {
  for (const auto& s : shards_) {
    if (!s->supports_updates()) return false;
  }
  return true;
}

void ClusterBackend::flush_all() {
  const double trace_now = trace_ != nullptr ? trace_->now() : 0.0;
  bool again = true;
  while (again) {
    again = false;
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      if (!shards_[s]->has_deferred()) continue;
      step_shard(s, true, trace_now);
      again = true;
    }
  }
}

double ClusterBackend::stage_snapshot(const IndexSnapshot& snapshot,
                                      const PublishDelta& delta) {
  if (passthrough()) {
    const double cost = shards_[0]->stage_snapshot(snapshot, delta);
    snapshot_ = snapshot;
    fallback_data_.reset();
    return cost;
  }
  // Dispatched partials flush through the current version first: queries
  // admitted before the publish point keep old-version answers, exactly as
  // the single-node backends guarantee.
  flush_all();
  // Children of online splits inherit their parents' owners, so routing
  // reaches them without a full re-plan. The guard makes re-application of
  // an already-extended delta a no-op.
  for (const SplitRecord& sr : delta.splits) {
    if (sr.child == plan_.nlist()) {
      plan_.add_split_child(sr.parent, snapshot.index->list(sr.parent).size(),
                            snapshot.index->list(sr.child).size());
    }
  }
  double cost = 0.0;
  for (auto& s : shards_) cost = std::max(cost, s->stage_snapshot(snapshot, delta));
  snapshot_ = snapshot;
  fallback_data_.reset();
  return cost;
}

double ClusterBackend::stage_relayout() {
  if (passthrough()) return shards_[0]->stage_relayout();
  flush_all();
  double cost = 0.0;
  for (auto& s : shards_) cost = std::max(cost, s->stage_relayout());
  return cost;
}

void ClusterBackend::stash_partials(std::uint32_t s) {
  for (RouterQuery& q : queries_) {
    if (q.taken) continue;
    auto it = q.parts.begin();
    while (it != q.parts.end()) {
      if (it->first == s) {
        const std::vector<Neighbor> part = shards_[s]->take_results(it->second);
        q.fallback_hits.insert(q.fallback_hits.end(), part.begin(), part.end());
        it = q.parts.erase(it);
      } else {
        ++it;
      }
    }
  }
}

ClusterBackend::RecoveryReport ClusterBackend::recover_shard(std::uint32_t failed) {
  if (passthrough()) {
    throw std::logic_error(
        "ClusterBackend: recovery needs a multi-shard cluster");
  }
  if (failed >= shards_.size()) {
    throw std::invalid_argument("ClusterBackend: shard id out of range");
  }
  if (!drained_[failed]) {
    throw std::logic_error(
        "ClusterBackend: recover_shard requires the shard to be drained first");
  }
  if (!shard_factory_) {
    throw std::logic_error(
        "ClusterBackend: recovery needs a shard factory (set_shard_factory)");
  }
  bool any_live = false;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (!drained_[s]) {
      any_live = true;
      break;
    }
  }
  if (!any_live) {
    throw std::logic_error("ClusterBackend: no live shard to recover onto");
  }

  // Every dispatched partial must be final before a survivor rebuild kills
  // its shard-local handles.
  flush_all();

  RecoveryReport rep;
  std::vector<std::uint8_t> rebuild(shards_.size(), 0);
  const std::size_t bytes_per_point = index().code_size() + sizeof(std::uint32_t);
  // add_owner keeps planned_load() current, so successive re-homes spread
  // across survivors instead of piling onto one.
  const std::vector<double>& load = plan_.planned_load();
  for (std::uint32_t c = 0; c < plan_.nlist(); ++c) {
    const auto& owners = plan_.owners(c);
    if (std::find(owners.begin(), owners.end(), failed) == owners.end()) continue;
    bool has_live_owner = false;
    for (std::uint32_t s : owners) {
      if (!drained_[s]) {
        has_live_owner = true;
        break;
      }
    }
    if (has_live_owner) continue;
    // Least-loaded live survivor, lowest id on ties.
    std::uint32_t best = 0;
    double best_load = 1e300;
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      if (drained_[s]) continue;
      if (load[s] < best_load) {
        best_load = load[s];
        best = s;
      }
    }
    plan_.add_owner(c, best);
    rebuild[best] = 1;
    ++rep.clusters_rehomed;
    rep.moved_bytes += index().list(c).size() * bytes_per_point;
  }
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (!rebuild[s]) continue;
    stash_partials(s);
    shards_[s] = shard_factory_(s, snapshot_, plan_.owned_mask(s));
    if (trace_ != nullptr) shards_[s]->set_trace(trace_);
    ++rep.rebuilt_shards;
  }
  // The degraded path is closed — every cluster has a live owner again — so
  // the fallback counters return to zero.
  for (auto& h : health_) h.fallback_tasks = 0;
  rep.seconds =
      static_cast<double>(rep.moved_bytes) / opts_.fallback_bytes_per_sec;
  return rep;
}

void ClusterBackend::set_shard_drained(std::uint32_t shard, bool drained) {
  if (passthrough()) {
    throw std::logic_error(
        "ClusterBackend: cannot drain the only shard of a single-shard cluster");
  }
  if (shard >= shards_.size()) {
    throw std::invalid_argument("ClusterBackend: shard id out of range");
  }
  drained_[shard] = drained ? 1 : 0;
  health_[shard].draining = drained;
}

std::unique_ptr<AnnBackend> make_cluster_backend(
    BackendKind kind, const IvfPqIndex& index, const FloatMatrix& sample_queries,
    const DrimEngineOptions& engine_options, const ClusterOptions& cluster_options,
    const CpuBackendOptions& cpu_options) {
  const std::size_t S = cluster_options.num_shards;
  if (S == 0) {
    throw std::invalid_argument("make_cluster_backend: num_shards must be at least 1");
  }
  if (S > 1 && kind == BackendKind::kCpu) {
    throw std::invalid_argument(
        "make_cluster_backend: the cpu baseline cannot restrict its probe set "
        "to a shard's clusters; --shards > 1 requires --backend drim");
  }
  if (S > 1 && engine_options.cl_on_pim) {
    throw std::invalid_argument(
        "make_cluster_backend: cl_on_pim locates clusters on each shard's "
        "DPUs, but routing needs the probe list at the front-end; use host CL "
        "with --shards > 1");
  }

  ShardPlanParams pp;
  pp.num_shards = S;
  pp.replication_fraction = cluster_options.replication_fraction;
  pp.replica_copies = cluster_options.replica_copies;
  pp.lut_cost_points = engine_options.layout.lut_cost_points;
  ShardPlan plan(index.list_sizes(),
                 estimate_heat(index, sample_queries, engine_options.heat_nprobe), pp);

  std::vector<std::unique_ptr<AnnBackend>> shards;
  shards.reserve(S);
  for (std::uint32_t s = 0; s < S; ++s) {
    if (kind == BackendKind::kCpu) {
      shards.push_back(std::make_unique<CpuBackend>(index, cpu_options));
    } else {
      DrimEngineOptions per_shard = engine_options;
      // Each shard is a full PIM node with its own num_dpus-DPU array; its
      // intra-array layout only places the clusters the plan assigned it.
      if (S > 1) per_shard.layout.owned_clusters = plan.owned_mask(s);
      shards.push_back(
          std::make_unique<DrimBackend>(index, sample_queries, per_shard));
    }
  }
  auto backend = std::make_unique<ClusterBackend>(index, std::move(plan),
                                                  std::move(shards), cluster_options);
  if (S > 1 && kind == BackendKind::kDrim) {
    // Recovery rebuilds survivors through this factory. Captures own copies:
    // the factory can outlive the caller's sample_queries.
    const FloatMatrix samples = sample_queries;
    backend->set_shard_factory(
        [samples, engine_options](std::uint32_t, const IndexSnapshot& snap,
                                  const std::vector<std::uint8_t>& mask) {
          DrimEngineOptions per_shard = engine_options;
          per_shard.layout.owned_clusters = mask;
          return std::make_unique<DrimBackend>(snap, samples, per_shard);
        });
  }
  return backend;
}

}  // namespace drim::cluster
