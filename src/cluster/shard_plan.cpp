#include "cluster/shard_plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace drim::cluster {

ShardPlan::ShardPlan(const std::vector<std::size_t>& cluster_sizes,
                     const std::vector<double>& cluster_heat,
                     const ShardPlanParams& params)
    : params_(params), sizes_(cluster_sizes) {
  const std::size_t nlist = cluster_sizes.size();
  const std::size_t S = params.num_shards;
  if (S == 0) {
    throw std::invalid_argument("ShardPlan: num_shards must be at least 1");
  }
  if (S > nlist) {
    throw std::invalid_argument(
        "ShardPlan: " + std::to_string(S) + " shards cannot each own a cluster; "
        "maximum feasible shard count for this index is " + std::to_string(nlist) +
        " (one per IVF cluster)");
  }
  if (cluster_heat.size() != nlist) {
    throw std::invalid_argument(
        "ShardPlan: cluster_heat has " + std::to_string(cluster_heat.size()) +
        " entries for " + std::to_string(nlist) + " clusters");
  }
  if (!(params.replication_fraction >= 0.0 && params.replication_fraction <= 1.0)) {
    throw std::invalid_argument(
        "ShardPlan: replication_fraction must be in [0, 1]");
  }

  owners_.resize(nlist);
  shard_clusters_.resize(S);
  planned_load_.assign(S, 0.0);

  // Rank clusters by expected load (heat x per-visit cost), exactly as the
  // intra-array layout ranks duplication victims.
  auto expected_load = [&](std::uint32_t c) {
    return cluster_heat[c] * cluster_cost(c);
  };
  std::vector<std::uint32_t> by_load(nlist);
  for (std::uint32_t c = 0; c < nlist; ++c) by_load[c] = c;
  std::sort(by_load.begin(), by_load.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double la = expected_load(a), lb = expected_load(b);
    if (la != lb) return la > lb;
    return a < b;  // deterministic tie-break
  });
  const std::size_t num_hot =
      S > 1 ? static_cast<std::size_t>(static_cast<double>(nlist) *
                                       params.replication_fraction)
            : 0;
  std::vector<std::uint32_t> copies(nlist, 0);
  const std::size_t max_copies = std::min(params.replica_copies, S - 1);
  for (std::size_t i = 0; i < num_hot; ++i) {
    copies[by_load[i]] = static_cast<std::uint32_t>(max_copies);
  }

  // One placement unit per (cluster, replica); a replica splits the
  // cluster's expected traffic, mirroring DataLayout's visit_share.
  struct Unit {
    std::uint32_t cluster, replica;
    double load;
  };
  std::vector<Unit> units;
  units.reserve(nlist);
  for (std::uint32_t c = 0; c < nlist; ++c) {
    const double share = expected_load(c) / static_cast<double>(copies[c] + 1);
    for (std::uint32_t r = 0; r <= copies[c]; ++r) {
      units.push_back({c, r, share});
    }
  }
  std::sort(units.begin(), units.end(), [](const Unit& a, const Unit& b) {
    if (a.load != b.load) return a.load > b.load;
    if (a.cluster != b.cluster) return a.cluster < b.cluster;
    return a.replica < b.replica;
  });

  // Greedy: heaviest unit onto the least-loaded shard that does not already
  // own the cluster (two replicas on one shard would defeat replication).
  for (const Unit& u : units) {
    auto& taken = owners_[u.cluster];
    std::uint32_t best = 0;
    double best_load = 1e300;
    bool found = false;
    for (std::uint32_t s = 0; s < S; ++s) {
      if (std::find(taken.begin(), taken.end(), s) != taken.end()) continue;
      if (planned_load_[s] < best_load) {
        best_load = planned_load_[s];
        best = s;
        found = true;
      }
    }
    if (!found) continue;  // more replicas than shards (clamped above; safety)
    planned_load_[best] += u.load;
    taken.push_back(best);
    shard_clusters_[best].push_back(u.cluster);
  }
  for (auto& o : owners_) std::sort(o.begin(), o.end());
  for (auto& sc : shard_clusters_) std::sort(sc.begin(), sc.end());
}

std::vector<std::uint8_t> ShardPlan::owned_mask(std::uint32_t shard) const {
  std::vector<std::uint8_t> mask(nlist(), 0);
  for (std::uint32_t c : shard_clusters_[shard]) mask[c] = 1;
  return mask;
}

void ShardPlan::add_owner(std::uint32_t cluster, std::uint32_t shard) {
  if (cluster >= owners_.size()) {
    throw std::invalid_argument("ShardPlan::add_owner: cluster out of range");
  }
  if (shard >= params_.num_shards) {
    throw std::invalid_argument("ShardPlan::add_owner: shard out of range");
  }
  auto& owners = owners_[cluster];
  if (std::find(owners.begin(), owners.end(), shard) != owners.end()) return;
  owners.insert(std::upper_bound(owners.begin(), owners.end(), shard), shard);
  auto& clusters = shard_clusters_[shard];
  clusters.insert(std::upper_bound(clusters.begin(), clusters.end(), cluster),
                  cluster);
  planned_load_[shard] += cluster_cost(cluster);
}

void ShardPlan::add_split_child(std::uint32_t parent, std::size_t parent_size,
                                std::size_t child_size) {
  if (parent >= owners_.size()) {
    throw std::invalid_argument("ShardPlan::add_split_child: parent out of range");
  }
  const auto child = static_cast<std::uint32_t>(owners_.size());
  sizes_[parent] = parent_size;
  sizes_.push_back(child_size);
  owners_.push_back(owners_[parent]);
  for (std::uint32_t s : owners_[parent]) {
    shard_clusters_[s].push_back(child);  // child id == old nlist: stays sorted
    planned_load_[s] += cluster_cost(child);
  }
}

double ShardPlan::mean_cluster_cost(std::uint32_t shard) const {
  const auto& clusters = shard_clusters_[shard];
  if (clusters.empty()) return params_.lut_cost_points;
  double total = 0.0;
  for (std::uint32_t c : clusters) total += cluster_cost(c);
  return total / static_cast<double>(clusters.size());
}

}  // namespace drim::cluster
