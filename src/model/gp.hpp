#pragma once
// Small Gaussian-process regressor (RBF kernel, Cholesky solve) used by the
// design-space exploration of Section III-C: the paper applies Bayesian
// optimization [6] where the cheap analytic performance model scores
// candidates and the GP models the expensive black box — the accuracy
// mapping a(K, P, C, M, CB).

#include <cstddef>
#include <vector>

namespace drim {

/// GP over fixed-dimension inputs with an RBF kernel
/// k(x, y) = s2 * exp(-||x - y||^2 / (2 l^2)) + noise on the diagonal.
class GaussianProcess {
 public:
  /// `dim` — input dimensionality; hyperparameters are fixed (inputs are
  /// expected pre-normalized to ~[0, 1] per component).
  explicit GaussianProcess(std::size_t dim, double length_scale = 0.35,
                           double signal_var = 1.0, double noise_var = 1e-4);

  /// Fit on observations; x is row-major [n x dim].
  void fit(const std::vector<double>& x, const std::vector<double>& y);

  std::size_t observations() const { return n_; }

  /// Posterior mean and variance at a point.
  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
  };
  Prediction predict(const std::vector<double>& x) const;

 private:
  double kernel(const double* a, const double* b) const;

  std::size_t dim_;
  double l2_, s2_, noise_;
  std::size_t n_ = 0;
  std::vector<double> x_;      // training inputs
  std::vector<double> alpha_;  // K^-1 y
  std::vector<double> chol_;   // lower Cholesky factor of K
  double y_mean_ = 0.0;
};

}  // namespace drim
