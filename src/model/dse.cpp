#include "model/dse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "model/gp.hpp"

namespace drim {
namespace {

AnnWorkload apply(const AnnWorkload& base, const DseCandidate& c) {
  AnnWorkload w = base;
  w.K = c.K;
  w.P = c.P;
  w.C = c.C;
  w.M = c.M;
  w.CB = c.CB;
  return w;
}

double model_seconds(const AnnWorkload& base, const DseCandidate& c,
                     const PlatformParams& host, const PlatformParams& pim) {
  return estimate(apply(base, c), host, pim).total_seconds();
}

/// Normalize a candidate into [0,1]^5 using the space's axis extents (log
/// scale for the wide axes) so one GP length scale fits all dimensions.
std::vector<double> normalize(const DseSpace& space, const DseCandidate& c) {
  auto norm_log = [](const std::vector<double>& axis, double v) {
    if (axis.size() < 2) return 0.5;
    const double lo = std::log2(axis.front());
    const double hi = std::log2(axis.back());
    return hi > lo ? (std::log2(v) - lo) / (hi - lo) : 0.5;
  };
  return {norm_log(space.K, c.K), norm_log(space.P, c.P), norm_log(space.C, c.C),
          norm_log(space.M, c.M), norm_log(space.CB, c.CB)};
}

std::vector<DseCandidate> enumerate(const DseSpace& space) {
  std::vector<DseCandidate> all;
  for (double k : space.K)
    for (double p : space.P)
      for (double c : space.C)
        for (double m : space.M)
          for (double cb : space.CB) all.push_back({k, p, c, m, cb});
  return all;
}

}  // namespace

DseSpace make_default_space(double n_points, int min_log2_nlist, int max_log2_nlist) {
  DseSpace space;
  for (int l = max_log2_nlist; l >= min_log2_nlist; --l) {
    space.C.push_back(n_points / std::pow(2.0, l));  // ascending C
  }
  return space;
}

DseResult run_dse(const AnnWorkload& base, const DseSpace& space,
                  const PlatformParams& host, const PlatformParams& pim,
                  double accuracy_constraint,
                  const std::function<double(const DseCandidate&)>& accuracy_fn,
                  std::size_t budget, std::uint64_t seed) {
  DseResult result;
  result.best_seconds = std::numeric_limits<double>::max();

  std::vector<DseCandidate> candidates = enumerate(space);
  if (candidates.empty() || budget == 0) return result;

  // Sort by modeled time so the greedy phase probes fast candidates first
  // ("At the beginning, we find a group ... within the accuracy constraint
  // through greedy search").
  std::sort(candidates.begin(), candidates.end(),
            [&](const DseCandidate& a, const DseCandidate& b) {
              return model_seconds(base, a, host, pim) < model_seconds(base, b, host, pim);
            });

  std::vector<double> gp_x;
  std::vector<double> gp_y;
  GaussianProcess gp(5);
  Rng rng(seed);

  auto measure = [&](const DseCandidate& c) {
    DseObservation obs;
    obs.candidate = c;
    obs.accuracy = accuracy_fn(c);
    obs.model_seconds = model_seconds(base, c, host, pim);
    obs.feasible = obs.accuracy >= accuracy_constraint;
    result.history.push_back(obs);

    const auto x = normalize(space, c);
    gp_x.insert(gp_x.end(), x.begin(), x.end());
    gp_y.push_back(obs.accuracy);
    gp.fit(gp_x, gp_y);

    if (obs.feasible && obs.model_seconds < result.best_seconds) {
      result.best = c;
      result.best_seconds = obs.model_seconds;
      result.best_accuracy = obs.accuracy;
      result.found_feasible = true;
    }
    return obs;
  };

  // Greedy seeding: walk the time-sorted list until a feasible point is
  // found (plus one extra probe for GP contrast), spending at most half the
  // budget.
  std::size_t spent = 0;
  for (std::size_t i = 0; i < candidates.size() && spent < budget / 2; ++i) {
    const DseObservation obs = measure(candidates[i]);
    ++spent;
    if (obs.feasible && spent >= 2) break;
  }

  // Bayesian-optimization loop: among unmeasured candidates, pick the one
  // with the lowest modeled time whose GP lower-confidence accuracy clears
  // the constraint; if none qualifies, probe the most uncertain candidate.
  std::vector<bool> measured(candidates.size(), false);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (const DseObservation& o : result.history) {
      if (o.candidate.K == candidates[i].K && o.candidate.P == candidates[i].P &&
          o.candidate.C == candidates[i].C && o.candidate.M == candidates[i].M &&
          o.candidate.CB == candidates[i].CB) {
        measured[i] = true;
        break;
      }
    }
  }

  const double beta = 0.8;  // confidence width for the feasibility test
  while (spent < budget) {
    std::size_t pick = candidates.size();
    double best_uncertainty = -1.0;
    std::size_t most_uncertain = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (measured[i]) continue;
      const auto pred = gp.predict(normalize(space, candidates[i]));
      const double sigma = std::sqrt(pred.variance);
      if (pred.mean - beta * sigma >= accuracy_constraint) {
        pick = i;  // candidates are time-sorted: first qualifying is fastest
        break;
      }
      if (sigma > best_uncertainty) {
        best_uncertainty = sigma;
        most_uncertain = i;
      }
    }
    if (pick == candidates.size()) pick = most_uncertain;
    if (pick == candidates.size()) break;  // everything measured
    measured[pick] = true;
    measure(candidates[pick]);
    ++spent;
  }
  return result;
}

}  // namespace drim
