#include "model/gp.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace drim {

GaussianProcess::GaussianProcess(std::size_t dim, double length_scale, double signal_var,
                                 double noise_var)
    : dim_(dim), l2_(length_scale * length_scale), s2_(signal_var), noise_(noise_var) {}

double GaussianProcess::kernel(const double* a, const double* b) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return s2_ * std::exp(-d2 / (2.0 * l2_));
}

void GaussianProcess::fit(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size() * dim_);
  n_ = y.size();
  x_ = x;

  y_mean_ = 0.0;
  for (double v : y) y_mean_ += v;
  if (n_ > 0) y_mean_ /= static_cast<double>(n_);

  // K + noise I, then its Cholesky factor L.
  std::vector<double> k(n_ * n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = kernel(&x_[i * dim_], &x_[j * dim_]);
      k[i * n_ + j] = v;
      k[j * n_ + i] = v;
    }
    k[i * n_ + i] += noise_;
  }

  chol_.assign(n_ * n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = k[i * n_ + j];
      for (std::size_t p = 0; p < j; ++p) sum -= chol_[i * n_ + p] * chol_[j * n_ + p];
      if (i == j) {
        if (sum <= 0.0) throw std::runtime_error("GP covariance not positive definite");
        chol_[i * n_ + i] = std::sqrt(sum);
      } else {
        chol_[i * n_ + j] = sum / chol_[j * n_ + j];
      }
    }
  }

  // alpha = K^-1 (y - mean): forward then backward substitution.
  std::vector<double> z(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = y[i] - y_mean_;
    for (std::size_t p = 0; p < i; ++p) sum -= chol_[i * n_ + p] * z[p];
    z[i] = sum / chol_[i * n_ + i];
  }
  alpha_.assign(n_, 0.0);
  for (std::size_t ii = n_; ii-- > 0;) {
    double sum = z[ii];
    for (std::size_t p = ii + 1; p < n_; ++p) sum -= chol_[p * n_ + ii] * alpha_[p];
    alpha_[ii] = sum / chol_[ii * n_ + ii];
  }
}

GaussianProcess::Prediction GaussianProcess::predict(const std::vector<double>& x) const {
  assert(x.size() == dim_);
  Prediction out;
  if (n_ == 0) {
    out.mean = y_mean_;
    out.variance = s2_;
    return out;
  }
  std::vector<double> kstar(n_);
  for (std::size_t i = 0; i < n_; ++i) kstar[i] = kernel(&x_[i * dim_], x.data());

  out.mean = y_mean_;
  for (std::size_t i = 0; i < n_; ++i) out.mean += kstar[i] * alpha_[i];

  // v = L^-1 k*; variance = k(x,x) - v.v
  std::vector<double> v(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = kstar[i];
    for (std::size_t p = 0; p < i; ++p) sum -= chol_[i * n_ + p] * v[p];
    v[i] = sum / chol_[i * n_ + i];
  }
  double vv = 0.0;
  for (double u : v) vv += u * u;
  out.variance = s2_ + noise_ - vv;
  if (out.variance < 0.0) out.variance = 0.0;
  return out;
}

}  // namespace drim
