#pragma once
// Design-space exploration (Section III-C): find (K, P, C, M, CB) minimizing
// the modeled pipeline time (Eq. 13) under the accuracy constraint
// a(K, P, C, M, CB) >= accuracy_constraint. The analytic performance model
// prices every candidate for free; the accuracy mapping `a` is the expensive
// black box (a real recall measurement), so a Gaussian process models it and
// Bayesian optimization decides which candidates to actually measure,
// seeded by a greedy feasible start.

#include <functional>
#include <vector>

#include "model/perf_model.hpp"

namespace drim {

/// One point of the discrete design space.
struct DseCandidate {
  double K = 10;
  double P = 32;
  double C = 1526;   ///< average cluster size (nlist = N / C)
  double M = 16;
  double CB = 256;
};

/// Discrete axes to explore. K is usually pinned by the application.
struct DseSpace {
  std::vector<double> K = {10};
  std::vector<double> P = {8, 16, 32, 64, 96, 128};
  std::vector<double> C;   ///< filled from nlist choices by make_default_space
  std::vector<double> M = {8, 16, 32};
  std::vector<double> CB = {64, 128, 256, 512};
};

/// Build a space whose C axis matches nlist in {2^min_log2 .. 2^max_log2}.
DseSpace make_default_space(double n_points, int min_log2_nlist, int max_log2_nlist);

/// Result of one explored configuration.
struct DseObservation {
  DseCandidate candidate;
  double accuracy = 0.0;
  double model_seconds = 0.0;
  bool feasible = false;
};

struct DseResult {
  DseCandidate best;
  double best_seconds = 0.0;
  double best_accuracy = 0.0;
  bool found_feasible = false;
  std::vector<DseObservation> history;  ///< every accuracy measurement made
};

/// `accuracy_fn` measures (or looks up) recall for one candidate; each call
/// is treated as expensive. `budget` bounds the number of accuracy_fn calls.
DseResult run_dse(const AnnWorkload& base, const DseSpace& space,
                  const PlatformParams& host, const PlatformParams& pim,
                  double accuracy_constraint,
                  const std::function<double(const DseCandidate&)>& accuracy_fn,
                  std::size_t budget = 24, std::uint64_t seed = 99);

}  // namespace drim
