#include "model/perf_model.hpp"

#include <algorithm>
#include <cmath>

namespace drim {
namespace {

double log2c(double v) { return std::log2(std::max(v, 2.0)); }

}  // namespace

PlatformParams upmem_platform(double compute_scale, double num_dpus) {
  PlatformParams p;
  p.frequency_hz = 450e6 * compute_scale;
  p.pe = num_dpus;
  // Aggregate *achievable* MRAM bandwidth: ~633 MB/s per DPU (63.3% of the
  // nominal 1 GB/s, Section V-D) summed over DPUs.
  p.bandwidth_Bps = 633e6 * num_dpus;
  p.cycles_per_op = 1.0;  // 1 IPC with a saturated pipeline
  p.mul_premium = 31.0;   // no hardware multiplier: ~32 cycles per multiply
  return p;
}

PlatformParams cpu_platform(double threads) {
  PlatformParams p;
  p.frequency_hz = 2.3e9;  // Xeon Gold 5218
  // AVX2 gives ~16 scalar int/float ops per cycle per core; the model's PE
  // counts effective lanes so op counts stay scalar.
  p.pe = threads * 16.0;
  p.bandwidth_Bps = 80e9;  // the paper's "typically around 80 GB/s"
  p.cycles_per_op = 1.0;
  // Effective cached-gather bandwidth: the LC/DC cache traffic is 4-byte
  // random gathers into L1/L2-resident tables, which Skylake-class cores
  // sustain at ~1 element/cycle (~12 GB/s/core) — far below streaming L2
  // bandwidth but far above the shared DRAM stream.
  p.cache_bandwidth_Bps = threads * 12e9;
  return p;
}

PlatformParams gpu_platform() {
  PlatformParams p;
  p.frequency_hz = 2.5e9;            // RTX 4090 boost
  p.pe = 16384;                      // CUDA cores
  p.bandwidth_Bps = 1.008e12;        // GDDR6X
  p.cycles_per_op = 1.0;
  // Faiss-GPU stages ADC LUTs in shared memory / L2; aggregate on-chip
  // bandwidth is an order of magnitude above GDDR.
  p.cache_bandwidth_Bps = 8e12;
  return p;
}

PlatformParams hbm_pim_platform() {
  PlatformParams p;
  p.frequency_hz = 1.2e9;   // Aquabolt-XL PCU clock class
  p.pe = 512;               // two PCUs per pseudo-channel across a 16-die stack
  p.bandwidth_Bps = 1.2e12; // internal per-bank bandwidth, aggregated
  p.cycles_per_op = 1.0;    // real FP16 SIMD units: no multiply premium
  return p;
}

std::string ann_phase_name(AnnPhase p) {
  switch (p) {
    case AnnPhase::CL: return "CL";
    case AnnPhase::RC: return "RC";
    case AnnPhase::LC: return "LC";
    case AnnPhase::DC: return "DC";
    case AnnPhase::TS: return "TS";
    case AnnPhase::kCount: break;
  }
  return "?";
}

std::array<PhaseCost, kAnnPhases> phase_costs(const AnnWorkload& w, bool multiplier_less) {
  std::array<PhaseCost, kAnnPhases> costs{};
  const double nlist = w.nlist();
  const double logP = log2c(w.P);
  const double logK = log2c(w.K);
  // Bit widths enter the equations as written; bytes = bits / 8.
  const double to_bytes = 1.0 / 8.0;

  // Eq. (1)-(2): CL scans all centroids and maintains a P-sized partial sort.
  // One multiply (the square) per dimension per centroid.
  auto& cl = costs[static_cast<std::size_t>(AnnPhase::CL)];
  cl.compute_ops = w.Q * nlist * ((w.D * 3.0 - 1.0) + (logP - 1.0));
  cl.mul_ops = w.Q * nlist * w.D;
  cl.io_bytes = w.Q * nlist *
                ((w.Bc + w.Bq) * w.D + (w.Bq * 4.0 + w.Bq) * (logP + 1.0)) * to_bytes;

  // Eq. (3)-(4): residual per (query, cluster).
  auto& rc = costs[static_cast<std::size_t>(AnnPhase::RC)];
  rc.compute_ops = w.Q * w.P * w.D;
  rc.io_bytes = (w.Bc + w.Bq) * w.Q * w.P * w.D * to_bytes;

  // Eq. (5)-(6): LUT construction: one square per dimension per codebook
  // entry. The multiplier-less conversion (Section III-A) turns those
  // squares into table lookups, zeroing mul_ops — which is what removes the
  // UPMEM multiply premium while leaving hardware-multiplier platforms
  // untouched. All LC traffic (codebook slices, LUT writes) touches small
  // per-query structures, so it is classed as cache-served.
  auto& lc = costs[static_cast<std::size_t>(AnnPhase::LC)];
  lc.compute_ops = w.Q * w.P * w.CB * (w.M * 3.0 - 1.0) * (w.D / w.M);
  lc.mul_ops = multiplier_less ? 0.0 : w.Q * w.P * w.CB * w.D;
  lc.cache_io_bytes = w.Q * w.P * w.CB * (w.D * 2.0 * w.Bq + w.Bl * w.M) * to_bytes;

  // Eq. (7)-(8): ADC distance accumulation over cluster points. Eq. (8)
  // covers the per-point LUT lookups (address + entry) — cache-served — but
  // omits the PQ-code stream itself, which is the phase's true memory
  // stream: M codes of Bp bits per scanned point (documented extension).
  auto& dc = costs[static_cast<std::size_t>(AnnPhase::DC)];
  dc.compute_ops = w.Q * w.P * w.C * (w.M - 1.0);
  dc.cache_io_bytes = w.Q * w.P * w.C * (w.M * (w.Ba + w.Bl) + w.Bl) * to_bytes;
  dc.io_bytes = w.Q * w.P * w.C * w.M * w.Bp * to_bytes;

  // Eq. (9)-(10): top-k heap maintenance — the heap lives in cache.
  auto& ts = costs[static_cast<std::size_t>(AnnPhase::TS)];
  ts.compute_ops = w.Q * w.P * w.C * (logK - 1.0);
  ts.cache_io_bytes = w.Q * w.P * w.C * (logK + 1.0) * (w.Bl + w.Ba) * to_bytes;

  return costs;
}

double phase_time(const PhaseCost& cost, const PlatformParams& platform) {
  const double cycles =
      (cost.compute_ops + cost.mul_ops * platform.mul_premium) * platform.cycles_per_op;
  const double compute_sec = cycles / (platform.frequency_hz * platform.pe);
  double io_sec;
  if (platform.cache_bandwidth_Bps > 0.0) {
    io_sec = cost.io_bytes / platform.bandwidth_Bps +
             cost.cache_io_bytes / platform.cache_bandwidth_Bps;
  } else {
    io_sec = cost.total_io_bytes() / platform.bandwidth_Bps;
  }
  return std::max(compute_sec, io_sec);  // Eq. (11)
}

ModelEstimate estimate(const AnnWorkload& w, const PlatformParams& host,
                       const PlatformParams& pim, const Placement& placement,
                       bool multiplier_less) {
  const auto costs = phase_costs(w, multiplier_less);
  ModelEstimate est;
  for (std::size_t i = 0; i < kAnnPhases; ++i) {
    const PlatformParams& target = placement.on_host[i] ? host : pim;
    est.phase_seconds[i] = phase_time(costs[i], target);
    (placement.on_host[i] ? est.host_seconds : est.pim_seconds) += est.phase_seconds[i];
  }
  return est;
}

double estimate_single(const AnnWorkload& w, const PlatformParams& platform,
                       bool multiplier_less) {
  const auto costs = phase_costs(w, multiplier_less);
  double total = 0.0;
  for (const PhaseCost& c : costs) total += phase_time(c, platform);
  return total;
}

double arithmetic_intensity(const AnnWorkload& w, bool multiplier_less) {
  const auto costs = phase_costs(w, multiplier_less);
  double ops = 0.0, bytes = 0.0;
  for (const PhaseCost& c : costs) {
    ops += c.compute_ops;
    bytes += c.total_io_bytes();
  }
  return bytes > 0 ? ops / bytes : 0.0;
}

}  // namespace drim
