#pragma once
// The PIM-aware ANNS performance model of Section III-B, Equations (1)-(12),
// reproduced exactly with the paper's notation (Table I):
//   N  total points per PU's corpus slice   Q  queries per PU
//   D  point dimension                      K  neighbors per query
//   P  located clusters per query on a PU   C  average cluster size
//   M  subvectors per point                 CB codebook entries
//   B_x bit widths, BW_x phase bandwidths, PE processing elements, F_x clocks
// Each phase's time is t_x = max(C_x / (F_x * PE_x), IO_x / BW_x) (Eq. 11);
// the engine's DSE minimizes max(sum of host phases, sum of PIM phases)
// subject to the accuracy constraint (Eq. 13).

#include <array>
#include <cstdint>
#include <string>

namespace drim {

/// Index / workload parameters — the DSE search space (K, P, C, M, CB) plus
/// the dataset shape (N, Q, D) and bit widths.
struct AnnWorkload {
  double N = 100e6;  ///< corpus points
  double Q = 10'000; ///< batch queries
  double D = 128;    ///< dimension
  double K = 10;     ///< top-k
  double P = 32;     ///< nprobe (located clusters per query)
  double C = 1526;   ///< average cluster size (N / nlist)
  double M = 16;     ///< subvectors
  double CB = 256;   ///< codebook entries

  // Bit widths (bits): centroid, query, point, codebook, LUT entry, address.
  double Bc = 8, Bq = 8, Bp = 8, Bcb = 8, Bl = 32, Ba = 32;

  double nlist() const { return N / C; }
};

/// Hardware-side parameters for one execution target (host or PIM).
struct PlatformParams {
  double frequency_hz = 450e6;   ///< F_x
  double pe = 2530;              ///< PE: DPUs or host threads
  double bandwidth_Bps = 1.6e12; ///< BW_x: aggregate memory bandwidth
  /// Multiplier applied to compute cycles (e.g. 32x-cost multiplies on DPUs
  /// are already in the phase formulas via ops; this models IPC < 1 etc.).
  double cycles_per_op = 1.0;
  /// Aggregate on-chip cache bandwidth; 0 disables cache modeling and every
  /// byte is priced at bandwidth_Bps (the paper's uniform-IO treatment).
  /// CPUs keep small hot structures (PQ codebooks, per-query ADC LUTs, heaps)
  /// in L1/L2 — pricing those at DRAM bandwidth makes the CPU baseline
  /// unrealistically slow on LC-heavy workloads and inverts the paper's
  /// SIFT-vs-DEEP ordering, so the CPU preset enables this.
  double cache_bandwidth_Bps = 0.0;
  /// Extra cycles per multiplication beyond a 1-cycle op. UPMEM DPUs lack a
  /// hardware multiplier ("multiplication is approximately 32 times more
  /// expensive than addition"), so the UPMEM preset uses 31; CPUs and GPUs
  /// multiply at full rate and use 0.
  double mul_premium = 0.0;
};

/// Canonical targets matching the paper's evaluation platforms.
PlatformParams upmem_platform(double compute_scale = 1.0, double num_dpus = 2530);
PlatformParams cpu_platform(double threads = 32);
PlatformParams gpu_platform();  ///< RTX 4090-class (Section V-D comparison)
/// Samsung HBM-PIM (Aquabolt-XL)-class platform: fewer processing units than
/// UPMEM but each sits on a logic die with real FPUs and far higher per-unit
/// bandwidth. The paper's Section II-B positions it as the other commercial
/// DRAM-PIM family (simulator-only for now); this preset supports the
/// what-if study in bench/fig13.
PlatformParams hbm_pim_platform();

/// The five phases.
enum class AnnPhase : std::uint8_t { CL = 0, RC, LC, DC, TS, kCount };
constexpr std::size_t kAnnPhases = static_cast<std::size_t>(AnnPhase::kCount);
std::string ann_phase_name(AnnPhase p);

/// Compute (ops) and IO (bytes) of each phase per Eq. (1)-(10). IO is split
/// into a memory stream and a cache-served portion: on platforms without
/// cache modeling both are priced at memory bandwidth (the paper's uniform
/// treatment); on the CPU the cache portion (codebook/LUT/heap traffic) is
/// priced at cache bandwidth. One documented extension to the verbatim
/// equations: Eq. (8) omits the PQ-code stream itself, which is added to the
/// DC memory bytes (M * Bp bits per scanned point).
struct PhaseCost {
  double compute_ops = 0.0;
  /// How many of compute_ops are multiplications: these cost an extra
  /// platform.mul_premium cycles each on multiplier-less hardware. The
  /// multiplier-less conversion (Section III-A) zeroes LC's mul_ops by
  /// replacing squares with table lookups.
  double mul_ops = 0.0;
  double io_bytes = 0.0;        ///< memory-stream bytes
  double cache_io_bytes = 0.0;  ///< bytes served from cache when modeled
  double total_io_bytes() const { return io_bytes + cache_io_bytes; }
  /// C2IO (Eq. 12).
  double c2io() const {
    const double total = total_io_bytes();
    return total > 0 ? compute_ops / total : 0.0;
  }
};

/// Evaluate Eq. (1)-(10) for a workload. `multiplier_less` replaces the LC
/// multiplications with LUT accesses: compute shrinks by the 32x multiply
/// premium while IO grows by the square-LUT traffic.
std::array<PhaseCost, kAnnPhases> phase_costs(const AnnWorkload& w,
                                              bool multiplier_less = true);

/// Eq. (11): seconds for one phase on one platform.
double phase_time(const PhaseCost& cost, const PlatformParams& platform);

/// Phase placement: which phases run on the host vs the PIM. DRIM-ANN keeps
/// CL on the host (highest C2IO after conversion) and RC/LC/DC/TS on DPUs.
struct Placement {
  std::array<bool, kAnnPhases> on_host = {true, false, false, false, false};
};

/// Eq. (13) objective: max(host pipeline, PIM pipeline) seconds; host and
/// PIM run overlapped.
struct ModelEstimate {
  std::array<double, kAnnPhases> phase_seconds{};
  double host_seconds = 0.0;
  double pim_seconds = 0.0;
  double total_seconds() const { return host_seconds > pim_seconds ? host_seconds : pim_seconds; }
  double qps(double queries) const {
    const double t = total_seconds();
    return t > 0 ? queries / t : 0.0;
  }
};

ModelEstimate estimate(const AnnWorkload& w, const PlatformParams& host,
                       const PlatformParams& pim, const Placement& placement = {},
                       bool multiplier_less = true);

/// Single-platform estimate (e.g. the pure-CPU baseline): all phases on one
/// target, summed.
double estimate_single(const AnnWorkload& w, const PlatformParams& platform,
                       bool multiplier_less = false);

/// Arithmetic intensity (flops/byte) of the whole pipeline — the x-axis of
/// the Fig. 2 roofline.
double arithmetic_intensity(const AnnWorkload& w, bool multiplier_less = false);

}  // namespace drim
