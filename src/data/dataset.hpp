#pragma once
// Vector dataset containers. The paper's base corpora (SIFT100M, DEEP100M
// quantized to uint8) store points as 8-bit unsigned components; training and
// centroid math happens in float. Both views are flat row-major arrays.

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace drim {

/// Row-major matrix of float vectors (used for queries, centroids, learn sets).
class FloatMatrix {
 public:
  FloatMatrix() = default;
  FloatMatrix(std::size_t count, std::size_t dim)
      : count_(count), dim_(dim), data_(count * dim, 0.0f) {}

  std::size_t count() const { return count_; }
  std::size_t dim() const { return dim_; }

  std::span<float> row(std::size_t i) {
    assert(i < count_);
    return {data_.data() + i * dim_, dim_};
  }
  std::span<const float> row(std::size_t i) const {
    assert(i < count_);
    return {data_.data() + i * dim_, dim_};
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Append one vector (must match dim; first append fixes dim if unset).
  void push_back(std::span<const float> v);

 private:
  std::size_t count_ = 0;
  std::size_t dim_ = 0;
  std::vector<float> data_;
};

/// Row-major matrix of uint8 vectors — the on-disk / in-MRAM base points.
class ByteDataset {
 public:
  ByteDataset() = default;
  ByteDataset(std::size_t count, std::size_t dim)
      : count_(count), dim_(dim), data_(count * dim, 0) {}

  std::size_t count() const { return count_; }
  std::size_t dim() const { return dim_; }

  std::span<std::uint8_t> row(std::size_t i) {
    assert(i < count_);
    return {data_.data() + i * dim_, dim_};
  }
  std::span<const std::uint8_t> row(std::size_t i) const {
    assert(i < count_);
    return {data_.data() + i * dim_, dim_};
  }

  std::uint8_t* data() { return data_.data(); }
  const std::uint8_t* data() const { return data_.data(); }

  /// Widen one row to float (for training / exact distance computation).
  void row_as_float(std::size_t i, std::span<float> out) const;

  /// Widen the whole dataset (or a subset of rows) to float.
  FloatMatrix to_float() const;
  FloatMatrix to_float(std::span<const std::uint32_t> rows) const;

 private:
  std::size_t count_ = 0;
  std::size_t dim_ = 0;
  std::vector<std::uint8_t> data_;
};

/// Quantize a float matrix to uint8 by affine mapping [lo, hi] -> [0, 255],
/// clamping outliers. This mirrors the paper's "DEEP100M is quantified to
/// uint8 to keep in coincidence with SIFT100M".
ByteDataset quantize_to_u8(const FloatMatrix& m, float lo, float hi);

}  // namespace drim
