#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>

namespace drim {

void FloatMatrix::push_back(std::span<const float> v) {
  if (count_ == 0 && dim_ == 0) dim_ = v.size();
  assert(v.size() == dim_);
  data_.insert(data_.end(), v.begin(), v.end());
  ++count_;
}

void ByteDataset::row_as_float(std::size_t i, std::span<float> out) const {
  assert(out.size() == dim_);
  const std::uint8_t* src = data_.data() + i * dim_;
  for (std::size_t d = 0; d < dim_; ++d) out[d] = static_cast<float>(src[d]);
}

FloatMatrix ByteDataset::to_float() const {
  FloatMatrix out(count_, dim_);
  for (std::size_t i = 0; i < count_; ++i) row_as_float(i, out.row(i));
  return out;
}

FloatMatrix ByteDataset::to_float(std::span<const std::uint32_t> rows) const {
  FloatMatrix out(rows.size(), dim_);
  for (std::size_t i = 0; i < rows.size(); ++i) row_as_float(rows[i], out.row(i));
  return out;
}

ByteDataset quantize_to_u8(const FloatMatrix& m, float lo, float hi) {
  assert(hi > lo);
  ByteDataset out(m.count(), m.dim());
  const float scale = 255.0f / (hi - lo);
  for (std::size_t i = 0; i < m.count(); ++i) {
    auto src = m.row(i);
    auto dst = out.row(i);
    for (std::size_t d = 0; d < m.dim(); ++d) {
      const float q = std::round((src[d] - lo) * scale);
      dst[d] = static_cast<std::uint8_t>(std::clamp(q, 0.0f, 255.0f));
    }
  }
  return out;
}

}  // namespace drim
