#pragma once
// Recall metrics. The paper's single accuracy constraint is recall@10 >= 0.8;
// the DSE (Section III-C) treats the parameter->accuracy mapping `a` as a
// lookup it must satisfy, which we realize by measuring recall directly.

#include <vector>

#include "core/topk.hpp"

namespace drim {

/// recall@k of one result list against one ground-truth list: fraction of the
/// first k ground-truth ids present among the first k returned ids.
double recall_at_k(const std::vector<Neighbor>& result,
                   const std::vector<Neighbor>& ground_truth, std::size_t k);

/// Mean recall@k across a query set.
double mean_recall_at_k(const std::vector<std::vector<Neighbor>>& results,
                        const std::vector<std::vector<Neighbor>>& ground_truth,
                        std::size_t k);

}  // namespace drim
