#pragma once
// Synthetic dataset generators standing in for SIFT100M / DEEP100M (the paper
// evaluates on 100M-point slices of SIFT1B and DEEP1B; see DESIGN.md for the
// substitution rationale). Both generators draw points from a Gaussian
// mixture whose component sizes follow a power law, reproducing the two
// structural properties the paper's load-balancing work depends on:
//   - uneven cluster sizes (Observation 1), and
//   - skewed query popularity across clusters (Observations 2-3), because
//     queries are drawn near mixture components with a Zipfian component
//     choice.

#include <cstdint>

#include "data/dataset.hpp"

namespace drim {

/// Parameters for the clustered synthetic generator.
struct SyntheticSpec {
  std::size_t num_base = 200'000;  ///< base corpus size (paper: 100M)
  std::size_t num_queries = 1'000; ///< query set size (paper: 10K)
  std::size_t num_learn = 20'000;  ///< training subsample size
  std::size_t dim = 128;           ///< SIFT: 128, DEEP: 96
  std::size_t num_components = 512;///< latent mixture components
  std::size_t intrinsic_dim = 12;  ///< latent factors per component (real
                                   ///< descriptors live on low-dim manifolds;
                                   ///< iid Gaussians would make NN meaningless
                                   ///< at D=128 due to distance concentration)
  double size_skew = 0.7;          ///< Zipf exponent for component sizes
  double query_skew = 0.9;         ///< Zipf exponent for query popularity
  float component_spread = 14.0f;  ///< stddev along the latent factors
  float noise_spread = 2.0f;       ///< iid residual noise stddev
  float query_spread = 14.0f;      ///< latent stddev for queries
  std::uint64_t seed = 42;
};

/// A generated workload: uint8 base points, float queries, a learn subset.
struct SyntheticData {
  ByteDataset base;
  FloatMatrix queries;
  FloatMatrix learn;
};

/// SIFT-like data: D=128, components in [0, 255] with SIFT's characteristic
/// sparse, low-magnitude histogram-of-gradients value profile.
SyntheticData make_sift_like(const SyntheticSpec& spec);

/// DEEP-like data: D=96 (default), originally L2-normalized floats, quantized
/// to uint8 exactly as the paper does for DEEP100M.
SyntheticData make_deep_like(SyntheticSpec spec);

}  // namespace drim
