#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace drim {
namespace {

/// Mixture components: each has a mean plus a low-rank factor basis, so the
/// generated points live on a low-dimensional manifold around the mean — the
/// structure that makes nearest-neighbor search meaningful at D ~ 100 (and
/// that PQ exploits on real descriptors).
struct Mixture {
  FloatMatrix means;                 // num_components x dim
  std::vector<FloatMatrix> bases;    // per component: intrinsic_dim x dim
  ZipfSampler size_sampler;
  ZipfSampler query_sampler;
};

Mixture make_mixture(const SyntheticSpec& spec, Rng& rng, float mean_lo, float mean_hi) {
  Mixture mix{FloatMatrix(spec.num_components, spec.dim),
              {},
              ZipfSampler(static_cast<std::uint32_t>(spec.num_components), spec.size_skew),
              ZipfSampler(static_cast<std::uint32_t>(spec.num_components), spec.query_skew)};
  mix.bases.reserve(spec.num_components);
  const float basis_scale = 1.0f / std::sqrt(static_cast<float>(spec.intrinsic_dim));
  for (std::size_t c = 0; c < spec.num_components; ++c) {
    auto m = mix.means.row(c);
    for (auto& x : m) x = rng.uniform(mean_lo, mean_hi);
    FloatMatrix basis(spec.intrinsic_dim, spec.dim);
    for (std::size_t r = 0; r < spec.intrinsic_dim; ++r) {
      for (auto& x : basis.row(r)) {
        x = static_cast<float>(rng.gaussian()) * basis_scale;
      }
    }
    mix.bases.push_back(std::move(basis));
  }
  return mix;
}

/// x = mean + spread * B^T z + noise, z ~ N(0, I_r).
void sample_around(const Mixture& mix, std::uint32_t c, float spread, float noise,
                   Rng& rng, std::span<float> out) {
  const FloatMatrix& basis = mix.bases[c];
  auto mean = mix.means.row(c);
  for (std::size_t d = 0; d < out.size(); ++d) out[d] = mean[d];
  for (std::size_t r = 0; r < basis.count(); ++r) {
    const float z = static_cast<float>(rng.gaussian()) * spread;
    auto b = basis.row(r);
    for (std::size_t d = 0; d < out.size(); ++d) out[d] += z * b[d];
  }
  if (noise > 0.0f) {
    for (auto& x : out) x += static_cast<float>(rng.gaussian()) * noise;
  }
}

}  // namespace

SyntheticData make_sift_like(const SyntheticSpec& spec) {
  Rng rng(spec.seed);
  // SIFT components are non-negative gradient-histogram counts, mostly small
  // with occasional large bins; component means in [20, 160] with clamping to
  // [0, 255] reproduce that profile well enough for ANNS behaviour.
  Mixture mix = make_mixture(spec, rng, 20.0f, 160.0f);

  SyntheticData out;
  out.base = ByteDataset(spec.num_base, spec.dim);
  std::vector<float> buf(spec.dim);
  for (std::size_t i = 0; i < spec.num_base; ++i) {
    const std::uint32_t c = mix.size_sampler(rng);
    sample_around(mix, c, spec.component_spread, spec.noise_spread, rng, buf);
    auto dst = out.base.row(i);
    for (std::size_t d = 0; d < spec.dim; ++d) {
      dst[d] = static_cast<std::uint8_t>(std::clamp(std::round(buf[d]), 0.0f, 255.0f));
    }
  }

  out.queries = FloatMatrix(spec.num_queries, spec.dim);
  for (std::size_t i = 0; i < spec.num_queries; ++i) {
    const std::uint32_t c = mix.query_sampler(rng);
    sample_around(mix, c, spec.query_spread, spec.noise_spread, rng, out.queries.row(i));
    for (auto& x : out.queries.row(i)) x = std::clamp(std::round(x), 0.0f, 255.0f);
  }

  out.learn = FloatMatrix(spec.num_learn, spec.dim);
  for (std::size_t i = 0; i < spec.num_learn; ++i) {
    const std::uint32_t c = mix.size_sampler(rng);
    sample_around(mix, c, spec.component_spread, spec.noise_spread, rng, out.learn.row(i));
    for (auto& x : out.learn.row(i)) x = std::clamp(std::round(x), 0.0f, 255.0f);
  }
  return out;
}

SyntheticData make_deep_like(SyntheticSpec spec) {
  if (spec.dim == 128) spec.dim = 96;  // DEEP's native dimensionality
  Rng rng(spec.seed + 1);
  // DEEP vectors are L2-normalized CNN descriptors: zero-centered, small
  // magnitude. Generate on the low-rank manifold in float, normalize, then
  // quantize to uint8 exactly as the paper does for DEEP100M.
  Mixture mix = make_mixture(spec, rng, -1.0f, 1.0f);
  const float spread = spec.component_spread / 60.0f;   // scale into float regime
  const float qspread = spec.query_spread / 60.0f;
  const float noise = spec.noise_spread / 60.0f;

  auto normalize = [](std::span<float> v) {
    double n = 0.0;
    for (float x : v) n += static_cast<double>(x) * x;
    n = std::sqrt(std::max(n, 1e-12));
    for (auto& x : v) x = static_cast<float>(x / n);
  };

  FloatMatrix base_f(spec.num_base, spec.dim);
  for (std::size_t i = 0; i < spec.num_base; ++i) {
    const std::uint32_t c = mix.size_sampler(rng);
    sample_around(mix, c, spread, noise, rng, base_f.row(i));
    normalize(base_f.row(i));
  }

  SyntheticData out;
  out.base = quantize_to_u8(base_f, -1.0f, 1.0f);

  // Queries and learn set are quantized through the same affine map so the
  // whole pipeline operates in the common uint8 domain, as in the paper.
  auto quantize_rows = [&](FloatMatrix& m) {
    for (std::size_t i = 0; i < m.count(); ++i) {
      for (auto& x : m.row(i)) {
        x = std::round((std::clamp(x, -1.0f, 1.0f) + 1.0f) * 255.0f / 2.0f);
      }
    }
  };

  out.queries = FloatMatrix(spec.num_queries, spec.dim);
  for (std::size_t i = 0; i < spec.num_queries; ++i) {
    const std::uint32_t c = mix.query_sampler(rng);
    sample_around(mix, c, qspread, noise, rng, out.queries.row(i));
    normalize(out.queries.row(i));
  }
  quantize_rows(out.queries);

  out.learn = FloatMatrix(spec.num_learn, spec.dim);
  for (std::size_t i = 0; i < spec.num_learn; ++i) {
    const std::uint32_t c = mix.size_sampler(rng);
    sample_around(mix, c, spread, noise, rng, out.learn.row(i));
    normalize(out.learn.row(i));
  }
  quantize_rows(out.learn);
  return out;
}

}  // namespace drim
