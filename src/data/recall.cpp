#include "data/recall.hpp"

#include <algorithm>
#include <cassert>

namespace drim {

double recall_at_k(const std::vector<Neighbor>& result,
                   const std::vector<Neighbor>& ground_truth, std::size_t k) {
  assert(k > 0);
  const std::size_t gk = std::min(k, ground_truth.size());
  if (gk == 0) return 0.0;
  const std::size_t rk = std::min(k, result.size());
  std::size_t hits = 0;
  for (std::size_t g = 0; g < gk; ++g) {
    for (std::size_t r = 0; r < rk; ++r) {
      if (result[r].id == ground_truth[g].id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(gk);
}

double mean_recall_at_k(const std::vector<std::vector<Neighbor>>& results,
                        const std::vector<std::vector<Neighbor>>& ground_truth,
                        std::size_t k) {
  assert(results.size() == ground_truth.size());
  if (results.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t q = 0; q < results.size(); ++q) {
    sum += recall_at_k(results[q], ground_truth[q], k);
  }
  return sum / static_cast<double>(results.size());
}

}  // namespace drim
