#pragma once
// The DPU-side search kernel of DRIM-ANN. One launch processes a DPU's task
// list for the batch; each task runs the cluster-searching pipeline on one
// shard: RC (residual), LC (ADC LUT build, multiplier-less via the square
// LUT), DC (code scan), TS (top-k). The kernel only touches MRAM through the
// DpuContext DMA API (2 KB max per transfer, as on real UPMEM) and keeps its
// working set within the 64 KB WRAM budget; every operation charges cycles
// into the per-phase counters that drive batch timing and Fig. 8.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "pim/dpu.hpp"

namespace drim {

/// Maximum bytes per single MRAM DMA transfer (UPMEM hardware limit).
inline constexpr std::size_t kMaxDmaBytes = 2048;

/// The DC phase's MRAM transfer schedule over a shard's packed codes: whole
/// codes per <= kMaxDmaBytes block. Calls fn(block_offset, block_bytes) for
/// every block, in stream order. This is the SINGLE source of truth for the
/// code-block loop — the functional kernels, their analytic charge twins,
/// and the fused variants all iterate through it, so the two sides can never
/// drift apart in transfer count or sizes (pinned by tests/test_kernels.cpp).
template <typename Fn>
inline void for_each_code_block(std::size_t codes_bytes, std::size_t code_size,
                                Fn&& fn) {
  const std::size_t codes_per_block = kMaxDmaBytes / code_size;
  std::size_t streamed = 0;
  while (streamed < codes_bytes) {
    const std::size_t block_bytes =
        std::min(codes_per_block * code_size, codes_bytes - streamed);
    fn(streamed, block_bytes);
    streamed += block_bytes;
  }
}

/// Where one shard's data lives in this DPU's MRAM, plus the shard's
/// tombstone view for the current index snapshot. `dead` (host-side flags
/// for the whole cluster, indexed by `begin + local point`) is null when the
/// cluster has no tombstones — the common case, in which the kernel bills
/// zero liveness cost, keeping read-only runs bit-identical in both results
/// and cycle counters. With tombstones, dead entries are skipped BEFORE the
/// bounded top-k so they can never evict live candidates, and both the
/// functional kernel and its analytic twin bill the same flag-stream DMA and
/// per-point compare.
struct ShardRegion {
  std::size_t codes_offset = 0;
  std::size_t ids_offset = 0;
  std::uint32_t size = 0;      ///< points physically in the shard
  std::uint32_t cluster = 0;   ///< original cluster id (selects the centroid)
  std::uint32_t begin = 0;     ///< shard's first position in the cluster list
  std::uint32_t live = 0;      ///< live points (== size when dead is null)
  const std::uint8_t* dead = nullptr;  ///< cluster tombstone flags, or null

  // Quantization-ladder fields (valid only when SearchKernelArgs::has_q4):
  // where the shard's packed 4-bit codes live, and the cluster's residual
  // scalar-quantization shift. Host-side catalog state, never byte-billed.
  std::size_t q4_codes_offset = 0;
  std::uint32_t q4_shift = 0;
};

/// Points of a shard that can surface in results.
inline std::uint32_t shard_live_points(const ShardRegion& s) {
  return s.dead ? s.live : s.size;
}

/// One task in the per-DPU task list: scan shard `shard_slot` for the query
/// staged at `query_slot`. The top bit of query_slot carries the task's
/// precision rung (set = 4-bit path), keeping sizeof(KernelTask) == 8 so the
/// task-list DMA charge — and with it the full-rung batch timing — is
/// bit-identical whether or not the ladder is compiled into the launch.
struct KernelTask {
  std::uint32_t query_slot = 0;
  std::uint32_t shard_slot = 0;
};

/// Rung flag inside KernelTask::query_slot.
inline constexpr std::uint32_t kTaskQ4Bit = 0x80000000u;

/// Staged query slot with the rung bit stripped.
inline std::uint32_t task_query_slot(const KernelTask& t) {
  return t.query_slot & ~kTaskQ4Bit;
}
/// True when the task runs on the packed 4-bit rung.
inline bool task_is_q4(const KernelTask& t) {
  return (t.query_slot & kTaskQ4Bit) != 0;
}

/// Result entry written back to MRAM: (distance, base-point id).
struct KernelHit {
  std::uint32_t dist = 0xFFFFFFFFu;
  std::uint32_t id = 0xFFFFFFFFu;
};

/// Static geometry + offsets shared by all tasks of a launch.
struct SearchKernelArgs {
  // Index geometry.
  std::uint32_t dim = 0;
  std::uint32_t m = 0;
  std::uint32_t cb = 0;
  std::uint32_t code_size = 0;
  bool wide_codes = false;
  std::uint32_t k = 10;  ///< hits kept per task

  // Broadcast regions.
  std::size_t sq_lut_offset = 0;     ///< uint32[sq_lut_entries]
  std::uint32_t sq_lut_max_abs = 0;  ///< table covers |x| <= max_abs
  std::size_t codebooks_offset = 0;  ///< int16[m * cb * dsub]
  std::size_t centroids_offset = 0;  ///< int16[nlist * dim]

  // Per-batch staging regions (per DPU).
  std::size_t queries_offset = 0;  ///< int16[num_query_slots * dim]
  std::size_t output_offset = 0;   ///< KernelHit[num_tasks * k]

  // Toggle for the Fig. 10a ablation: with the conversion off, LC squares
  // via 32-cycle multiplies instead of square-LUT lookups.
  bool use_square_lut = true;

  // ---- quantization ladder (4-bit rung; DESIGN.md §15) ----
  // With has_q4 set, tasks flagged kTaskQ4Bit scan the packed 4-bit codes:
  // LC builds cb4-entry sub-LUTs from the coarse codebooks, folds them into
  // a per-pair 256-entry byte LUT (one lookup scores two subquantizers),
  // and DC streams code_size_q4-byte codes — half the MRAM traffic, twice
  // the codes per DMA. Q4 result rows carry LOCAL shard indices (no
  // per-winner id resolution on the DPU); the host reranks them exactly.
  bool has_q4 = false;
  std::uint32_t cb4 = 0;                ///< coarse entries per subquantizer
  std::uint32_t code_size_q4 = 0;       ///< packed bytes per point
  std::size_t codebooks_q4_offset = 0;  ///< int16[m * cb4 * dsub]
};

/// Execute the search kernel for `tasks` against the shard catalog. Results
/// for task t land at output_offset + t * k * sizeof(KernelHit), sorted
/// ascending, padded with sentinel (0xFFFFFFFF) entries when a shard has
/// fewer than k points.
void run_search_kernel(DpuContext& ctx, const SearchKernelArgs& args,
                       std::span<const ShardRegion> shards,
                       std::span<const KernelTask> tasks);

// ---- cluster-major task fusion (DESIGN.md §16) ----
// Under Zipf-skewed batches the hottest clusters are probed by many queries
// of the same launch, and the per-task kernel re-streams the cluster's codes
// from MRAM once per probing query. Fusion groups a DPU's tasks by
// (shard, rung) into groups of up to fuse_width members; the fused kernel
// builds every member's LUT, then streams the shard's codes ONCE, scoring
// each code block against all member LUTs before advancing. Each member
// keeps its own LUT, its own bounded top-k, and its own k-hit output row at
// the task's original index, so results are bit-identical to the per-task
// kernel at any width — only the DMA charges shrink.

/// One fused group: tasks (indices into the launch's task list) that scan
/// the same shard on the same precision rung.
struct FusedTaskGroup {
  std::uint32_t shard_slot = 0;
  bool q4 = false;
  std::vector<std::uint32_t> tasks;
};

/// Group a launch's task list into fused groups of up to `fuse_width`
/// members by (shard_slot, rung). Deterministic: tasks are scanned in list
/// order, each joining the open group for its key (a full group closes and a
/// new one opens), and groups are emitted in creation order — independent of
/// host thread count. fuse_width < 1 is treated as 1.
std::vector<FusedTaskGroup> plan_task_fusion(std::span<const KernelTask> tasks,
                                             std::size_t fuse_width);

/// WRAM working-set bytes of a fused search launch whose widest full-rung
/// group has `full_width` members and widest q4 group `q4_width` (0 = no
/// group on that rung): shared scratch + one LUT slab row per full member,
/// one pair-LUT row per q4 member, one code block, and one k-entry heap per
/// member of the widest group. At (1, 0) this equals the per-task kernel's
/// accounting exactly. Shared by both fused kernels and the engine's
/// up-front fuse_width feasibility check so they can never disagree.
std::size_t fused_search_wram_bytes(const SearchKernelArgs& args,
                                    std::size_t full_width, std::size_t q4_width);

/// Execute the fused search kernel: `groups` must partition [0, tasks.size())
/// (as produced by plan_task_fusion over the same task list). Results for
/// task t still land at output_offset + t * k * sizeof(KernelHit), so the
/// caller's collect/merge path is unchanged from run_search_kernel.
void run_fused_search_kernel(DpuContext& ctx, const SearchKernelArgs& args,
                             std::span<const ShardRegion> shards,
                             std::span<const KernelTask> tasks,
                             std::span<const FusedTaskGroup> groups);

/// Arguments for the optional cluster-locating kernel (CL on the PIM instead
/// of the host — the placement alternative of Section III-B). Each DPU owns
/// a contiguous range of centroids and reports, per query, its local top-P
/// candidates; the host merges the per-DPU lists. DRIM-ANN defaults to
/// host-side CL because this path pays P * num_dpus result traffic over the
/// thin host link per query — the ablation makes that trade measurable.
struct ClKernelArgs {
  std::uint32_t dim = 0;
  std::uint32_t nprobe = 0;         ///< candidates kept per query (P)
  std::uint32_t centroid_begin = 0; ///< first centroid this DPU owns
  std::uint32_t centroid_count = 0; ///< how many it owns
  std::size_t centroids_offset = 0; ///< int16[nlist * dim] (broadcast region)
  std::size_t queries_offset = 0;   ///< int16[num_queries * dim]
  std::uint32_t num_queries = 0;
  std::size_t output_offset = 0;    ///< KernelHit[num_queries * nprobe]

  std::size_t sq_lut_offset = 0;
  std::uint32_t sq_lut_max_abs = 0;
  bool use_square_lut = true;
};

/// Run cluster locating on one DPU: L2 distance from every staged query to
/// every owned centroid, keeping the top-nprobe (global centroid ids) per
/// query. Output rows are sentinel-padded like the search kernel's.
void run_cl_kernel(DpuContext& ctx, const ClKernelArgs& args);

// ---- analytic twins (AnalyticPimPlatform launches) ----
// Charge exactly the schedule/layout-determined costs of the functional
// kernels — same WRAM budget check, same DMA transfer sizes and chunking,
// same instruction tallies — without reading a byte of MRAM. Both sides
// bill instructions through the same deterministic policy helpers:
//   - LC squaring bills one square-LUT lookup per dimension (the broadcast
//     table is sized to cover the full operand range), or one multiply per
//     dimension in the Fig. 10a ablation with the table off;
//   - TS heap maintenance bills the Eq. 15 amortized shape (one threshold
//     compare per point plus 0.25 * log2(k) sift compares/WRAM swaps),
//     not the data-dependent accept sequence.
// As a result every per-phase counter — instruction cycles, DMA cycles,
// MRAM bytes, multiply count — is EXACTLY equal between the functional and
// analytic platforms for the same schedule, which is what lets the tracing
// layer (src/obs) treat either platform's counters as ground truth. Pinned
// by tests/test_platforms.cpp.

/// Analytic twin of run_search_kernel.
void charge_search_kernel(DpuContext& ctx, const SearchKernelArgs& args,
                          std::span<const ShardRegion> shards,
                          std::span<const KernelTask> tasks);

/// Analytic twin of run_fused_search_kernel: same WRAM budget check, same
/// fused DMA schedule (one code stream per group), same instruction tallies.
void charge_fused_search_kernel(DpuContext& ctx, const SearchKernelArgs& args,
                                std::span<const ShardRegion> shards,
                                std::span<const KernelTask> tasks,
                                std::span<const FusedTaskGroup> groups);

/// Analytic twin of run_cl_kernel.
void charge_cl_kernel(DpuContext& ctx, const ClKernelArgs& args);

}  // namespace drim
