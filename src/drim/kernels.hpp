#pragma once
// The DPU-side search kernel of DRIM-ANN. One launch processes a DPU's task
// list for the batch; each task runs the cluster-searching pipeline on one
// shard: RC (residual), LC (ADC LUT build, multiplier-less via the square
// LUT), DC (code scan), TS (top-k). The kernel only touches MRAM through the
// DpuContext DMA API (2 KB max per transfer, as on real UPMEM) and keeps its
// working set within the 64 KB WRAM budget; every operation charges cycles
// into the per-phase counters that drive batch timing and Fig. 8.

#include <cstdint>
#include <span>
#include <vector>

#include "pim/dpu.hpp"

namespace drim {

/// Maximum bytes per single MRAM DMA transfer (UPMEM hardware limit).
inline constexpr std::size_t kMaxDmaBytes = 2048;

/// Where one shard's data lives in this DPU's MRAM, plus the shard's
/// tombstone view for the current index snapshot. `dead` (host-side flags
/// for the whole cluster, indexed by `begin + local point`) is null when the
/// cluster has no tombstones — the common case, in which the kernel bills
/// zero liveness cost, keeping read-only runs bit-identical in both results
/// and cycle counters. With tombstones, dead entries are skipped BEFORE the
/// bounded top-k so they can never evict live candidates, and both the
/// functional kernel and its analytic twin bill the same flag-stream DMA and
/// per-point compare.
struct ShardRegion {
  std::size_t codes_offset = 0;
  std::size_t ids_offset = 0;
  std::uint32_t size = 0;      ///< points physically in the shard
  std::uint32_t cluster = 0;   ///< original cluster id (selects the centroid)
  std::uint32_t begin = 0;     ///< shard's first position in the cluster list
  std::uint32_t live = 0;      ///< live points (== size when dead is null)
  const std::uint8_t* dead = nullptr;  ///< cluster tombstone flags, or null
};

/// Points of a shard that can surface in results.
inline std::uint32_t shard_live_points(const ShardRegion& s) {
  return s.dead ? s.live : s.size;
}

/// One task in the per-DPU task list: scan shard `shard_slot` for the query
/// staged at `query_slot`.
struct KernelTask {
  std::uint32_t query_slot = 0;
  std::uint32_t shard_slot = 0;
};

/// Result entry written back to MRAM: (distance, base-point id).
struct KernelHit {
  std::uint32_t dist = 0xFFFFFFFFu;
  std::uint32_t id = 0xFFFFFFFFu;
};

/// Static geometry + offsets shared by all tasks of a launch.
struct SearchKernelArgs {
  // Index geometry.
  std::uint32_t dim = 0;
  std::uint32_t m = 0;
  std::uint32_t cb = 0;
  std::uint32_t code_size = 0;
  bool wide_codes = false;
  std::uint32_t k = 10;  ///< hits kept per task

  // Broadcast regions.
  std::size_t sq_lut_offset = 0;     ///< uint32[sq_lut_entries]
  std::uint32_t sq_lut_max_abs = 0;  ///< table covers |x| <= max_abs
  std::size_t codebooks_offset = 0;  ///< int16[m * cb * dsub]
  std::size_t centroids_offset = 0;  ///< int16[nlist * dim]

  // Per-batch staging regions (per DPU).
  std::size_t queries_offset = 0;  ///< int16[num_query_slots * dim]
  std::size_t output_offset = 0;   ///< KernelHit[num_tasks * k]

  // Toggle for the Fig. 10a ablation: with the conversion off, LC squares
  // via 32-cycle multiplies instead of square-LUT lookups.
  bool use_square_lut = true;
};

/// Execute the search kernel for `tasks` against the shard catalog. Results
/// for task t land at output_offset + t * k * sizeof(KernelHit), sorted
/// ascending, padded with sentinel (0xFFFFFFFF) entries when a shard has
/// fewer than k points.
void run_search_kernel(DpuContext& ctx, const SearchKernelArgs& args,
                       std::span<const ShardRegion> shards,
                       std::span<const KernelTask> tasks);

/// Arguments for the optional cluster-locating kernel (CL on the PIM instead
/// of the host — the placement alternative of Section III-B). Each DPU owns
/// a contiguous range of centroids and reports, per query, its local top-P
/// candidates; the host merges the per-DPU lists. DRIM-ANN defaults to
/// host-side CL because this path pays P * num_dpus result traffic over the
/// thin host link per query — the ablation makes that trade measurable.
struct ClKernelArgs {
  std::uint32_t dim = 0;
  std::uint32_t nprobe = 0;         ///< candidates kept per query (P)
  std::uint32_t centroid_begin = 0; ///< first centroid this DPU owns
  std::uint32_t centroid_count = 0; ///< how many it owns
  std::size_t centroids_offset = 0; ///< int16[nlist * dim] (broadcast region)
  std::size_t queries_offset = 0;   ///< int16[num_queries * dim]
  std::uint32_t num_queries = 0;
  std::size_t output_offset = 0;    ///< KernelHit[num_queries * nprobe]

  std::size_t sq_lut_offset = 0;
  std::uint32_t sq_lut_max_abs = 0;
  bool use_square_lut = true;
};

/// Run cluster locating on one DPU: L2 distance from every staged query to
/// every owned centroid, keeping the top-nprobe (global centroid ids) per
/// query. Output rows are sentinel-padded like the search kernel's.
void run_cl_kernel(DpuContext& ctx, const ClKernelArgs& args);

// ---- analytic twins (AnalyticPimPlatform launches) ----
// Charge exactly the schedule/layout-determined costs of the functional
// kernels — same WRAM budget check, same DMA transfer sizes and chunking,
// same instruction tallies — without reading a byte of MRAM. Both sides
// bill instructions through the same deterministic policy helpers:
//   - LC squaring bills one square-LUT lookup per dimension (the broadcast
//     table is sized to cover the full operand range), or one multiply per
//     dimension in the Fig. 10a ablation with the table off;
//   - TS heap maintenance bills the Eq. 15 amortized shape (one threshold
//     compare per point plus 0.25 * log2(k) sift compares/WRAM swaps),
//     not the data-dependent accept sequence.
// As a result every per-phase counter — instruction cycles, DMA cycles,
// MRAM bytes, multiply count — is EXACTLY equal between the functional and
// analytic platforms for the same schedule, which is what lets the tracing
// layer (src/obs) treat either platform's counters as ground truth. Pinned
// by tests/test_platforms.cpp.

/// Analytic twin of run_search_kernel.
void charge_search_kernel(DpuContext& ctx, const SearchKernelArgs& args,
                          std::span<const ShardRegion> shards,
                          std::span<const KernelTask> tasks);

/// Analytic twin of run_cl_kernel.
void charge_cl_kernel(DpuContext& ctx, const ClKernelArgs& args);

}  // namespace drim
