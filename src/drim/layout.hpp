#pragma once
// Offline data-layout generation (Section IV-C). Three mechanisms, each tied
// to one of the paper's load-imbalance observations:
//   - Data Partition (Obs. 1, uneven cluster sizes): clusters larger than a
//     threshold are split into shards placed on different DPUs.
//   - Data Duplication (Obs. 2, many queries hitting one cluster per batch):
//     hot clusters are replicated so concurrent queries fan out.
//   - Data Allocation (Obs. 3, hot clusters colliding on one DPU): shards are
//     assigned greedily to the DPU with the lowest accumulated "heat", where
//     heat is estimated from a sample query set.
// The generator also provides the paper's baseline ("clusters allocated to
// DPUs in ID order, no split, no duplication") for the Fig. 11 comparisons.

#include <cstdint>
#include <vector>

#include "drim/pim_index.hpp"

namespace drim {

/// One placed unit: a contiguous range of one original cluster's points, one
/// replica of it.
struct Shard {
  std::uint32_t cluster = 0;   ///< original cluster id
  std::uint32_t begin = 0;     ///< first point index within the cluster
  std::uint32_t end = 0;       ///< one past the last point
  std::uint32_t replica = 0;   ///< replica number (0 = primary)
  std::uint32_t dpu = 0;       ///< owning DPU
  std::uint32_t id = 0;        ///< global shard id (dense)

  std::uint32_t size() const { return end - begin; }
};

/// Layout policy knobs.
struct LayoutParams {
  bool enable_split = true;
  bool enable_duplicate = true;
  bool heat_allocation = true;   ///< false = ID-order round-robin placement
  std::size_t split_threshold = 512;  ///< max points per shard (Fig. 12a knob)
  std::size_t dup_copies = 1;    ///< extra replicas for hot clusters (Fig. 12b)
  double dup_fraction = 0.10;    ///< fraction of hottest clusters duplicated
  /// Relative cost of building one LUT vs scanning one point, used when
  /// balancing heat (a shard costs lut_cost + size per expected visit).
  double lut_cost_points = 64.0;
  /// Cluster-ownership mask for multi-shard serving (src/cluster): when
  /// non-empty (size must equal nlist), only clusters with a nonzero entry
  /// are enumerated and placed; the rest get empty slice_groups. An empty
  /// mask means "own everything" and reproduces the single-node layout
  /// bit-for-bit.
  std::vector<std::uint8_t> owned_clusters;
};

/// Per-cluster access-frequency estimate from a sample query set
/// ("The accessing frequency of each cluster is estimated by a sample query
/// set", Section IV-A).
std::vector<double> estimate_heat(const IvfPqIndex& index, const FloatMatrix& sample_queries,
                                  std::size_t nprobe);

/// The generated layout.
class DataLayout {
 public:
  /// Generate a layout for `num_dpus` DPUs.
  DataLayout(const PimIndexData& data, std::size_t num_dpus,
             const std::vector<double>& cluster_heat, const LayoutParams& params);

  std::size_t num_dpus() const { return num_dpus_; }
  const LayoutParams& params() const { return params_; }

  const std::vector<Shard>& shards() const { return shards_; }
  /// Shard ids hosted by one DPU.
  const std::vector<std::uint32_t>& dpu_shards(std::size_t dpu) const {
    return dpu_shards_[dpu];
  }
  /// All replicas covering one (cluster, slice): grouped by slice so a task
  /// for cluster c = one shard chosen per slice group.
  /// slice_groups(c)[s] lists the shard ids of replicas of slice s.
  const std::vector<std::vector<std::uint32_t>>& slice_groups(std::uint32_t cluster) const {
    return cluster_slices_[cluster];
  }

  const Shard& shard(std::uint32_t id) const { return shards_[id]; }

  /// Total extra MRAM bytes per DPU introduced by duplication (Fig. 12b
  /// reports the memory cost of replication).
  double duplication_bytes_per_dpu(const PimIndexData& data) const;

  /// Sum of shard heats per DPU (what the greedy allocator balanced).
  std::vector<double> dpu_heat() const;

 private:
  std::size_t num_dpus_;
  LayoutParams params_;
  std::vector<Shard> shards_;
  std::vector<std::vector<std::uint32_t>> dpu_shards_;
  // cluster -> slice -> replica shard ids
  std::vector<std::vector<std::vector<std::uint32_t>>> cluster_slices_;
  std::vector<double> shard_heat_;
};

}  // namespace drim
