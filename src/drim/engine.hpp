#pragma once
// DrimAnnEngine — the end-to-end DRIM-ANN system (Fig. 4): offline it
// quantizes a trained IVF-PQ index, generates the load-balanced data layout,
// and loads every DPU's MRAM; online it runs host-side cluster locating,
// schedules (q, c) tasks across DPU replicas, launches the search kernel in
// barrier-synchronized batches, and merges per-task top-k hits into final
// results. Timing follows the paper's pipeline model: host execution and
// host<->DPU transfer overlap DPU execution, so each batch costs
// max(host work, PIM batch time).

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/ivf.hpp"
#include "core/mutable_index.hpp"
#include "core/precision.hpp"
#include "core/topk.hpp"
#include "drim/kernels.hpp"
#include "drim/layout.hpp"
#include "drim/pim_index.hpp"
#include "drim/scheduler.hpp"
#include "drim/square_lut.hpp"
#include "obs/trace.hpp"
#include "pim/energy_model.hpp"
#include "pim/pim_platform.hpp"
#include "pim/pipeline.hpp"

namespace drim {

/// Analytic model of the host CPU driving the PIM server (Xeon Silver class).
/// Used to cost the CL phase, which DRIM-ANN keeps on the host because its
/// post-conversion compute-to-IO ratio is the highest of the five phases.
struct HostModelParams {
  double flops_per_sec = 150e9;  ///< sustained multi-thread AVX2 throughput
  double bytes_per_sec = 80e9;   ///< sustained DDR4 bandwidth (paper cites ~80 GB/s)
};

/// Everything configurable about an engine instance.
struct DrimEngineOptions {
  PimConfig pim;
  LayoutParams layout;
  SchedulerParams scheduler;  ///< l_* fields are recalibrated from the index
  HostModelParams host;
  EnergyModel energy;
  bool use_square_lut = true;   ///< Fig. 10a ablation toggle
  std::size_t heat_nprobe = 32; ///< nprobe used when estimating cluster heat
  std::size_t batch_size = 0;   ///< queries per PIM batch; 0 = all at once
  /// Run cluster locating on the DPUs instead of the host (the Section III-B
  /// placement alternative): centroids are range-partitioned across DPUs and
  /// the host merges per-DPU candidate lists. Costs an extra barrier launch
  /// plus P * num_dpus hits of host-link traffic per query — measurably worse
  /// than host CL on UPMEM-like links, which is the point of exposing it.
  bool cl_on_pim = false;
  /// Which PimPlatform backs the engine: kSim byte-simulates every kernel
  /// (bit-exact, slow), kAnalytic charges the same cost tables analytically
  /// with results from a host-side exact scan (identical results, schedule-
  /// aware approximate times, paper-scale num_dpus feasible).
  PimPlatformKind platform = PimPlatformKind::kSim;
  /// In-flight batch depth of the pipelined executor (DESIGN.md §12): the
  /// MRAM staging region is split into this many ping/pong slots and
  /// consecutive steps overlap on the virtual timeline (batch i's DPU
  /// compute overlaps batch i-1's result pull and batch i+1's query push).
  /// 1 = the serial path (each step pays transfer_in + max(dpu) +
  /// transfer_out end-to-end); 2 = double buffering (default). Results are
  /// bit-identical at every depth — only modeled timestamps change. Not to
  /// be confused with PimConfig::pipeline_depth, the DPU's *instruction*
  /// pipeline depth.
  std::size_t pipeline_depth = 2;
  /// Upload the quantization ladder's 4-bit rung tables (coarse codebooks +
  /// packed codes) to MRAM so queries may run at Precision::kQ4. OFF by
  /// default: with the ladder off the static MRAM image — and therefore the
  /// staging geometry and every modeled time — is byte-identical to the
  /// pre-ladder engine. With it ON, full-rung queries still charge the
  /// identical per-batch streams (offsets shift, byte counts don't).
  /// Ignored (with a clamp to full precision at enqueue) when the index has
  /// no q4 tables (wide codes).
  bool enable_q4 = false;
  /// Cluster-major task fusion width (DESIGN.md §16): after scheduling, each
  /// DPU's tasks are grouped by (cluster, rung) into fused groups of up to
  /// this many queries; the kernel streams the cluster's packed codes from
  /// MRAM once per group, scoring every member's LUT against each code block
  /// before advancing. 1 (default) keeps the literal per-task kernels —
  /// results AND modeled times reproduce bit-for-bit. Widths > 1 leave
  /// results bit-identical (each member keeps its own LUT, heap, and output
  /// row) and only amortize the DC DMA stream. Bounded by the 64 KB WRAM
  /// budget: G LUTs + one code block + G top-k heaps must fit; infeasible
  /// widths throw naming the maximum feasible width.
  std::size_t fuse_width = 1;
};

/// Timing/energy/traffic report for one search() call.
struct DrimSearchStats {
  double total_seconds = 0.0;       ///< modeled end-to-end latency
  double host_cl_seconds = 0.0;     ///< host CL time (overlapped)
  /// Host-side exact rerank of q4 result rows (overlapped with the PIM
  /// batch, like host CL). Exactly 0 when no query ran on the 4-bit rung.
  double host_rerank_seconds = 0.0;
  /// One-time static index upload (codebooks, centroids, shards) billed at
  /// construction, NOT included in total_seconds or any batch's
  /// transfer_in_seconds — the engine drains the load bytes before the first
  /// search so first-batch latency reflects only per-batch traffic.
  double index_load_seconds = 0.0;
  double transfer_in_seconds = 0.0;
  double transfer_out_seconds = 0.0;
  double dpu_busy_seconds = 0.0;    ///< sum over batches of max-DPU time
  std::array<double, kNumPhases> phase_dpu_seconds{};  ///< total DPU-seconds per phase
  std::vector<double> per_dpu_seconds;  ///< per-DPU busy time, all batches
  std::size_t batches = 0;
  std::size_t tasks = 0;
  std::size_t queries = 0;
  /// Modeled latency of each PIM batch in order (CL-on-PIM launch + the
  /// host/PIM overlap), so benches and the serving layer can report tail
  /// percentiles without re-deriving per-batch times from the totals.
  std::vector<double> batch_seconds;
  DpuCounters counters;             ///< aggregate over DPUs and batches
  double energy_joules = 0.0;
  /// MRAM code-stream bytes the cluster-major fusion stage avoided re-reading
  /// (DESIGN.md §16): for each fused group, (width - 1) x the cluster's
  /// packed-code bytes (plus tombstone-flag bytes on deleted-from shards).
  /// Exactly 0 at fuse_width 1.
  std::uint64_t dc_bytes_saved = 0;

  double qps() const { return total_seconds > 0 ? queries / total_seconds : 0.0; }
};

/// Timing/accounting of ONE search_batch() step.
struct BatchStepStats {
  /// Modeled critical path of this step: cl_pim + max(host CL, PIM batch).
  double step_seconds = 0.0;
  double host_cl_seconds = 0.0;      ///< host CL (overlapped with the PIM batch)
  double host_rerank_seconds = 0.0;  ///< q4 exact-rerank host cost (overlapped)
  double cl_pim_seconds = 0.0;       ///< dedicated CL launch (cl_on_pim only)
  double pim_batch_seconds = 0.0;    ///< search launch: transfers + barrier + overhead
  double transfer_in_seconds = 0.0;  ///< search launch only (CL launch billed in cl_pim)
  double transfer_out_seconds = 0.0;
  double dpu_seconds = 0.0;          ///< slowest DPU of the search launch
  std::size_t fresh_queries = 0;     ///< pending queries consumed by this step
  std::size_t tasks = 0;             ///< tasks executed (fresh + carried)
  std::size_t deferred = 0;          ///< tasks the filter carried to the next step
  /// Absolute placement of this step on the state's virtual timeline: the
  /// effective submit time (max of the caller's submit hint and, at depth 1,
  /// the previous completion) and this step's completion. At pipeline depth
  /// >= 2 `complete - submit` can be much less than the step's own stage sum
  /// because stages overlap earlier in-flight batches; step_seconds is the
  /// timeline delta `complete - max(previous complete, submit)`, so summing
  /// step_seconds over a closed-loop run still yields the makespan.
  double submit_seconds = 0.0;
  double complete_seconds = 0.0;
};

/// Caller-owned state of a streaming search: quantized query payloads, CL
/// probe lists, per-query result heaps, and the scheduler's deferred-task
/// buffer, all carried across search_batch() calls. One state = one logical
/// query stream; handles returned by enqueue_query() index these tables and
/// are the global ids Task.query refers to. The tables grow with the stream
/// (a few hundred bytes per query), so very long serving runs should start a
/// fresh state periodically once it drains.
struct SearchBatchState {
  std::vector<std::vector<std::int16_t>> quantized;  ///< per-query PIM payload
  std::vector<std::vector<std::uint32_t>> probes;    ///< per-query cluster list
  std::vector<std::uint32_t> query_k;
  std::vector<std::uint32_t> query_nprobe;
  /// Nonzero for queries whose cluster location was done by the caller
  /// (enqueue_query_routed): the step skips billing host CL for them.
  std::vector<std::uint8_t> cl_external;
  /// Per-query precision rung (0 = full, 1 = q4), set at enqueue time after
  /// clamping to what the engine can execute (see DrimAnnEngine::q4_ready).
  std::vector<std::uint8_t> query_precision;
  std::vector<TopK> accum;                 ///< per-query result accumulation
  std::vector<Task> carried;               ///< inter-batch filter buffer
  std::vector<std::uint32_t> deferred_per_query;  ///< outstanding carried tasks
  std::size_t next_query = 0;  ///< first enqueued query no step has consumed

  // ---- pipelined execution (pipeline_depth >= 2; DESIGN.md §12) ----
  /// Virtual timeline the steps of this stream are scheduled on; created
  /// lazily by search_batch(). Null at depth 1 (serial accounting).
  std::unique_ptr<PipelineTimeline> pipeline;
  /// Serve-layer submit time of the next step on the timeline's clock (the
  /// serving runtime sets this before each step; closed-loop search leaves
  /// it 0 so steps pack back-to-back).
  double submit_hint_seconds = 0.0;
  double last_complete_seconds = 0.0;  ///< completion time of the latest step
  std::size_t step_index = 0;  ///< steps run (MRAM slot = step_index % depth)

  /// Queries enqueued but not yet consumed by a step.
  std::size_t pending() const { return quantized.size() - next_query; }
  bool has_deferred() const { return !carried.empty(); }
  /// Nothing left to run: no pending queries and no carried tasks.
  bool idle() const { return pending() == 0 && carried.empty(); }
  /// True once every task of query `handle` has executed (results final).
  bool finished(std::uint32_t handle) const {
    return handle < next_query && deferred_per_query[handle] == 0;
  }
  /// Sorted final results; consumes the heap. Call once finished().
  std::vector<Neighbor> take_results(std::uint32_t handle) {
    return accum[handle].take_sorted();
  }
};

/// Derive Eq. 15 predictor coefficients (in DPU cycles) from the index
/// geometry and the platform cost table, matching the kernel's charges.
/// `cb4`, when nonzero, also derives the 4-bit rung's l_lut_q4/l_calu_q4
/// from the q4 kernel's charges; at 0 the q4 coefficients mirror the
/// full-precision ones (no ladder).
SchedulerParams derive_scheduler_params(const PimConfig& cfg, std::size_t dim,
                                        std::size_t m, std::size_t cb, std::size_t k,
                                        bool use_square_lut, std::size_t cb4 = 0);

/// The engine. Consumes the index through a versioned IndexSnapshot — the
/// read-only view (centroids, codebooks, cluster codes/ids, tombstones) is
/// resolved per batch, and a writer can swap in a new version between
/// batches via apply_snapshot() without pausing the stream.
class DrimAnnEngine {
 public:
  /// Read-only construction: wraps the caller-owned index in a version-0
  /// snapshot (non-owning). Behavior is bit-identical — results AND modeled
  /// times — to the pre-snapshot engine.
  DrimAnnEngine(const IvfPqIndex& index, const FloatMatrix& sample_queries,
                const DrimEngineOptions& options);
  /// A temporary index would dangle behind the non-owning root snapshot
  /// (e.g. `DrimAnnEngine(writer.compacted_index(), ...)`) — bind it to a
  /// local, or publish() and use the owning snapshot constructor.
  DrimAnnEngine(IvfPqIndex&& index, const FloatMatrix& sample_queries,
                const DrimEngineOptions& options) = delete;

  /// Snapshot construction: the engine shares ownership of the snapshot's
  /// index, so a writer-published version outlives its writer.
  DrimAnnEngine(IndexSnapshot snapshot, const FloatMatrix& sample_queries,
                const DrimEngineOptions& options);

  /// Batch search. Results are ascending (distance, id); distances are the
  /// integer ADC values from the quantized PIM domain, widened to float.
  /// Implemented as enqueue_queries() + a search_batch() loop over
  /// opts().batch_size chunks. `precision` selects the rung every query of
  /// the call runs at (kQ4 requires opts().enable_q4 and an index with q4
  /// tables; otherwise it clamps to full).
  std::vector<std::vector<Neighbor>> search(const FloatMatrix& queries, std::size_t k,
                                            std::size_t nprobe,
                                            DrimSearchStats* stats = nullptr,
                                            Precision precision = Precision::kFull);

  // ---- streaming step API (the serving runtime's entry point) ----

  /// Admit one query into a streaming state: quantizes the payload and (in
  /// host-CL mode) locates its clusters. Returns the query's dense handle.
  /// `precision` is the requested rung; it clamps to full unless q4_ready().
  std::uint32_t enqueue_query(SearchBatchState& state, std::span<const float> query,
                              std::size_t k, std::size_t nprobe,
                              Precision precision = Precision::kFull);

  /// Bulk admit, fanning the per-query quantization and CL across host
  /// threads. Handles are assigned in row order starting at state.pending
  /// end; search() uses this path.
  void enqueue_queries(SearchBatchState& state, const FloatMatrix& queries,
                       std::size_t k, std::size_t nprobe,
                       Precision precision = Precision::kFull);

  /// Admit one query with a caller-supplied probe list (the cluster-tier
  /// router locates clusters once and hands each shard only the clusters it
  /// owns). Host CL is NOT billed for routed queries — the router accounts
  /// for it via host_cl_cost_seconds(). Incompatible with cl_on_pim (the
  /// probe list would be recomputed on the PIM side); throws
  /// std::invalid_argument in that mode.
  std::uint32_t enqueue_query_routed(SearchBatchState& state,
                                     std::span<const float> query, std::size_t k,
                                     std::span<const std::uint32_t> probes,
                                     Precision precision = Precision::kFull);

  /// True when Precision::kQ4 requests actually execute on the 4-bit rung:
  /// the ladder option is on AND the index built q4 tables (narrow codes).
  /// When false, kQ4 enqueues clamp to full precision.
  bool q4_ready() const { return opts_.enable_q4 && data_.has_q4(); }

  /// Modeled host cluster-location cost for `num_queries` queries (the same
  /// Eq. 1 centroid-scan model search_batch bills per step). Public so the
  /// cluster router can bill CL once at the front-end.
  double host_cl_cost_seconds(std::size_t num_queries) const {
    return model_host_cl_seconds(num_queries);
  }

  /// Run ONE barrier-synchronized PIM step: consumes up to `max_queries`
  /// pending queries (0 = all of them) plus every carried deferred task,
  /// schedules them (Eq. 15 + filter), launches the search kernel, and
  /// merges hits into the per-query heaps. `flush` disables the inter-batch
  /// filter so nothing is deferred past this step. When `stats` is given the
  /// step is also accumulated into it (totals, per-batch vector, counters).
  BatchStepStats search_batch(SearchBatchState& state, std::size_t max_queries,
                              bool flush, DrimSearchStats* stats = nullptr);

  /// Eq. 15 open-loop estimate of one batch's modeled service time for
  /// `num_queries` queries at (k, nprobe), assuming the scheduler spreads
  /// tasks perfectly across DPUs. The serving layer's admission controller
  /// seeds its queue-delay predictor with this.
  double estimate_batch_seconds(std::size_t num_queries, std::size_t nprobe,
                                std::size_t k) const;

  /// Upper bound on how many staged queries can ever fit the per-DPU MRAM
  /// staging region at depth k (each staged query needs its payload plus at
  /// least one task's k-hit output block). The exact per-step footprint
  /// depends on the schedule and is re-validated by search_batch().
  std::size_t max_staged_queries(std::size_t k) const;

  /// Largest cluster-major fusion width whose WRAM working set (G LUTs + one
  /// code block + G bounded top-k heaps; q4 pair-LUT rows when the ladder is
  /// on) fits the 64 KB budget at search depth `k` (DESIGN.md §16). 0 means
  /// even the unfused per-task working set does not fit. search_batch() and
  /// the constructor validate opts().fuse_width against this bound.
  std::size_t max_feasible_fuse_width(std::size_t k) const;

  /// Attach (or detach, with nullptr) a trace recorder. Every subsequent
  /// search_batch() lays its launches on the recorder's virtual clock: a
  /// CL-on-PIM launch first, then transfer-in / launch overhead / per-DPU
  /// phase spans / transfer-out, with the overlapped host CL span alongside;
  /// the cursor advances by each step's modeled seconds. The recorder must
  /// outlive the engine or be detached first; the engine never owns it.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }
  obs::TraceRecorder* trace() const { return trace_; }

  // ---- mutable-index support (DESIGN.md §14) ----

  /// The snapshot currently being served.
  const IndexSnapshot& snapshot() const { return snapshot_; }

  /// Install a new index version between batches: rebuild the quantized
  /// view, the heat-balanced layout (heat is carried over, with split
  /// children inheriting their parent's heat proportionally), the scheduler,
  /// and every DPU's MRAM image. The caller must have flushed its stream
  /// state first — carried tasks hold shard ids that dangle across layout
  /// swaps. Returns the MODELED publish cost in seconds: the writer's delta
  /// (shadow-slot appends + tombstone metadata + split-moved bytes) on the
  /// host link — the physical full reload the simulator performs for
  /// bit-exactness is drained and discarded, never billed.
  double apply_snapshot(const IndexSnapshot& snapshot, const PublishDelta& delta);

  /// Background re-layout: recompute the heat-balanced allocation from the
  /// cluster-visit counts observed since the last re-layout (same smoothing
  /// as the construction-time estimate) and swap it in. Billed as the bytes
  /// of shards whose DPU placement actually changed, on the host link.
  /// No-op (returns 0) when no traffic has been observed. Same flush
  /// precondition as apply_snapshot().
  double replan_layout();

  const DrimEngineOptions& options() const { return opts_; }
  /// Sanitized in-flight depth of the pipelined executor (0 is clamped to 1).
  std::size_t pipeline_depth() const {
    return opts_.pipeline_depth == 0 ? 1 : opts_.pipeline_depth;
  }
  const PimIndexData& data() const { return data_; }
  /// Seconds the one-time static index upload takes on the host link
  /// (reported in every DrimSearchStats, never billed to a batch).
  double index_load_seconds() const { return index_load_seconds_; }
  const DataLayout& layout() const { return *layout_; }
  const PimPlatform& platform() const { return *pim_; }
  const SquareLut& square_lut() const { return sq_lut_; }

 private:
  void load_static_data();
  /// Tear down and rebuild everything derived from snapshot_: quantized
  /// data, square LUT, layout (from heat_), scheduler, MRAM image. The
  /// physical reload's host-link tally is drained and discarded.
  void rebuild_from_snapshot();
  double model_host_cl_seconds(std::size_t num_queries) const;

  /// Throw if even a single query at depth `k` cannot be staged (satellite
  /// of the up-front batch_size validation; called at search entry).
  void validate_staging(std::size_t k) const;

  /// Throw std::invalid_argument naming the maximum feasible fusion width
  /// when opts_.fuse_width's WRAM working set cannot fit at depth `k`.
  /// No-op at fuse_width <= 1 (the per-task kernels do their own check).
  void validate_fuse_width(std::size_t k) const;

  /// (Re)derive the Eq. 15 predictor coefficients for search depth `k`,
  /// preserving the caller's filter/policy settings. Cached per k: search()
  /// calls this with its actual k so the TS term is never priced for the
  /// wrong depth.
  void ensure_scheduler_params(std::size_t k);

  /// Absolute stage starts of one launch's trace spans. The serial path
  /// derives them by summing stage durations from start_s; the pipelined
  /// path takes them straight from the PipelineSchedule, so overlapping
  /// launches render truthfully on the shared host-link/dpu lanes.
  struct LaunchLayout {
    double in_start = 0.0;
    double launch_start = 0.0;
    double launch_seconds = 0.0;
    double kern_start = 0.0;
    double out_start = 0.0;
  };
  static LaunchLayout serial_launch_layout(double start_s, const BatchResult& batch);

  /// Lay one kernel launch on the trace: transfer-in, launch overhead, one
  /// lane per busy DPU with its phase spans (scaled to the DPU's busy time,
  /// raw per-phase seconds in the args), transfer-out. Reads the platform's
  /// per-DPU phase counters, so call it right after run_batch() returns and
  /// before the next launch resets them. No-op when no trace is attached.
  void trace_launch_spans(const LaunchLayout& layout, const BatchResult& batch,
                          const char* kind,
                          const std::vector<std::size_t>& tasks_per_dpu);
  /// Serial-layout convenience wrapper around trace_launch_spans().
  void trace_launch(double start_s, const BatchResult& batch, const char* kind,
                    const std::vector<std::size_t>& tasks_per_dpu);

  /// A CL-on-PIM launch whose tracing was deferred by the pipelined path:
  /// its timeline placement is only known once the step's begin_batch() has
  /// run, which needs the launch's modeled seconds first.
  struct ClLaunchTrace {
    BatchResult batch;
    std::size_t active_dpus = 0;
    std::size_t num_queries = 0;
    bool valid = false;
  };

  /// CL-on-PIM path: locate clusters for queries [begin, end) with a
  /// dedicated kernel launch staged in the MRAM slot at `slot_base`; fills
  /// probes[] and accumulates stats. Returns the batch's modeled seconds.
  /// When `deferred_trace` is non-null the launch is not traced here; its
  /// trace inputs are captured for the caller to place on the timeline.
  double locate_on_pim(const std::vector<std::vector<std::int16_t>>& quantized,
                       std::size_t begin, std::size_t end, std::size_t nprobe,
                       std::vector<std::vector<std::uint32_t>>& probes,
                       DrimSearchStats& stats, std::size_t slot_base,
                       ClLaunchTrace* deferred_trace);

  /// Base MRAM offset of the staging slot step `step_index` uses (slots are
  /// assigned round-robin; one slot of staging_stride_ bytes per in-flight
  /// batch, a single full-region slot at depth 1).
  std::size_t staging_slot_base(std::size_t step_index) const {
    return staging_base_ + (step_index % pipeline_depth()) * staging_stride_;
  }

  const IvfPqIndex& index() const { return *snapshot_.index; }

  IndexSnapshot snapshot_;
  DrimEngineOptions opts_;
  PimIndexData data_;
  SquareLut sq_lut_;
  std::unique_ptr<DataLayout> layout_;
  std::unique_ptr<PimPlatform> pim_;
  std::unique_ptr<RuntimeScheduler> scheduler_;
  /// Per-cluster heat driving the layout. Seeded from sample queries at
  /// construction; extended deterministically on splits (child inherits
  /// parent * child_fraction); replaced by observed traffic in
  /// replan_layout().
  std::vector<double> heat_;
  /// Cluster-visit counts observed by search_batch since the last re-layout.
  std::vector<std::uint64_t> probe_counts_;
  obs::TraceRecorder* trace_ = nullptr;  // not owned; may be null
  std::size_t sched_params_k_ = 0;     // k the Eq. 15 coefficients are derived for
  double index_load_seconds_ = 0.0;    // one-time static upload cost

  // MRAM geometry.
  std::size_t sq_lut_off_ = 0;
  std::size_t codebooks_off_ = 0;
  std::size_t codebooks_q4_off_ = 0;  // coarse q4 books (enable_q4 only)
  std::size_t centroids_off_ = 0;
  std::size_t staging_base_ = 0;  // identical on every DPU
  // Bytes of one staging slot: the whole region above staging_base_ at depth
  // 1 (the serial path's exact capacity math), the region split depth ways
  // and 8-byte aligned at depth >= 2 (ping/pong slots).
  std::size_t staging_stride_ = 0;
  // Per DPU: shard slots in kernel order; slot i of dpu d describes shard
  // dpu_shard_ids_[d][i].
  std::vector<std::vector<ShardRegion>> dpu_shard_regions_;
  std::vector<std::vector<std::uint32_t>> dpu_shard_ids_;
  std::vector<std::uint32_t> shard_slot_;  // global shard id -> slot on its DPU
};

}  // namespace drim
