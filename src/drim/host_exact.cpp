#include "drim/host_exact.hpp"

#include <algorithm>
#include <deque>

#include "core/distances.hpp"

namespace drim {
namespace {

/// Bounded max-heap over (dist, idx) with the kernel's ascending total
/// order — the WramTopK selection without the cycle charges. Backed by a
/// per-thread scratch buffer so the collect hot loop (one instance per
/// scheduled task) never allocates.
///
/// The scratch is process-lifetime under the persistent executor: the same
/// worker threads now serve every backend in turn, so the buffer guards
/// against cross-backend staleness — an in-use flag (a nested instance on
/// one thread falls back to owned storage instead of aliasing the scratch)
/// and a capacity clamp (one backend's large k must not pin memory for the
/// rest of the process).
class BoundedTopK {
 public:
  explicit BoundedTopK(std::uint32_t k) : k_(k) {
    Scratch& s = scratch();
    if (!s.in_use) {
      s.in_use = true;
      owner_ = &s;
      heap_ = &s.buf;
    } else {
      heap_ = &own_;
    }
    heap_->clear();
    const std::size_t cap_limit = std::max<std::size_t>(64, std::size_t{k} * 8);
    if (heap_->capacity() > cap_limit) {
      heap_->shrink_to_fit();
    }
    if (heap_->capacity() < k) heap_->reserve(k);
  }

  ~BoundedTopK() {
    if (owner_ != nullptr) owner_->in_use = false;
  }
  BoundedTopK(const BoundedTopK&) = delete;
  BoundedTopK& operator=(const BoundedTopK&) = delete;

  void push(std::uint32_t dist, std::uint32_t idx) {
    std::vector<KernelHit>& heap = *heap_;
    if (heap.size() >= k_) {
      const KernelHit& worst = heap.front();
      if (dist > worst.dist || (dist == worst.dist && idx >= worst.id)) return;
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = {dist, idx};
    } else {
      heap.push_back({dist, idx});
    }
    std::push_heap(heap.begin(), heap.end(), cmp);
  }

  /// Ascending (dist, idx) into `out`, sentinel-padding the tail; consumes
  /// the heap. `out` may be any size — extra entries become sentinels.
  void sorted_into(std::span<KernelHit> out) {
    std::vector<KernelHit>& heap = *heap_;
    std::sort_heap(heap.begin(), heap.end(), cmp);
    const std::size_t n = std::min(heap.size(), out.size());
    std::copy(heap.begin(), heap.begin() + static_cast<std::ptrdiff_t>(n), out.begin());
    std::fill(out.begin() + static_cast<std::ptrdiff_t>(n), out.end(), KernelHit{});
  }

 private:
  struct Scratch {
    std::vector<KernelHit> buf;
    bool in_use = false;
  };
  static Scratch& scratch() {
    thread_local Scratch s;
    return s;
  }
  static bool cmp(const KernelHit& a, const KernelHit& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
  std::uint32_t k_;
  Scratch* owner_ = nullptr;
  std::vector<KernelHit>* heap_ = nullptr;
  std::vector<KernelHit> own_;
};

}  // namespace

void host_search_task_into(const PimIndexData& data,
                           std::span<const std::int16_t> query, const Shard& shard,
                           std::uint32_t k, std::span<KernelHit> out,
                           const std::uint8_t* dead) {
  const std::size_t m = data.m();
  const std::size_t cb = data.cb_entries();

  // RC + LC: the ADC table in exact uint32 arithmetic (wraparound included).
  std::vector<std::uint32_t> lut(m * cb);
  host_build_adc_lut(data, query, shard.cluster, lut);

  // DC + TS over the shard's slice of the cluster.
  const auto codes = data.cluster_codes(shard.cluster);
  const auto ids = data.cluster_ids(shard.cluster);
  const std::uint32_t size = static_cast<std::uint32_t>(shard.size());
  const std::uint32_t kk = std::min<std::uint32_t>(k, std::max<std::uint32_t>(size, 1));
  BoundedTopK topk(kk);
  std::vector<std::uint32_t> dists(size);
  kernels().adc_scan_u32(lut.data(), cb, m,
                         codes.data() + shard.begin * data.code_size(),
                         data.code_size(), data.wide_codes(), size,
                         dists.data());
  for (std::uint32_t i = 0; i < size; ++i) {
    // Tombstoned positions never enter the bounded top-k (see header note).
    if (dead && dead[shard.begin + i]) continue;
    topk.push(dists[i], i);
  }

  topk.sorted_into(out);  // sentinel-pads short shards
  for (KernelHit& h : out) {
    if (h.id == 0xFFFFFFFFu && h.dist == 0xFFFFFFFFu) break;
    h.id = ids[shard.begin + h.id];
  }
}

std::vector<KernelHit> host_search_task(const PimIndexData& data,
                                        std::span<const std::int16_t> query,
                                        const Shard& shard, std::uint32_t k,
                                        const std::uint8_t* dead) {
  std::vector<KernelHit> hits(k);
  host_search_task_into(data, query, shard, k, hits, dead);
  return hits;
}

void host_search_tasks_fused_into(const PimIndexData& data,
                                  std::span<const HostFusedTask> tasks,
                                  const Shard& shard, std::uint32_t k, bool q4,
                                  const std::uint8_t* dead) {
  if (tasks.empty()) return;
  const std::size_t width = tasks.size();
  const std::size_t dim = data.dim();
  const std::size_t m = data.m();
  const std::uint32_t size = static_cast<std::uint32_t>(shard.size());
  const std::uint32_t kk =
      std::min<std::uint32_t>(k, std::max<std::uint32_t>(size, 1));
  // Codes are walked in tiles small enough to stay cache-resident while they
  // are scored against every member — the coalescing win. Tiling never
  // changes a member's per-point distances or its ascending push order, so
  // rows match the single-task replay byte-for-byte.
  constexpr std::uint32_t kTile = 2048;

  // Per-member heaps: BoundedTopK's thread-local scratch serves one live
  // instance per thread, extra members fall back to owned storage (a deque
  // because the type is intentionally pinned in place).
  std::deque<BoundedTopK> topk;
  for (std::size_t w = 0; w < width; ++w) topk.emplace_back(kk);

  if (!q4) {
    const std::size_t cb = data.cb_entries();
    std::vector<std::uint32_t> luts(width * m * cb);
    for (std::size_t w = 0; w < width; ++w) {
      host_build_adc_lut(data, std::span<const std::int16_t>(tasks[w].query, dim),
                         shard.cluster,
                         std::span<std::uint32_t>(luts.data() + w * m * cb, m * cb));
    }
    const auto codes = data.cluster_codes(shard.cluster);
    const auto ids = data.cluster_ids(shard.cluster);
    std::vector<std::uint32_t> dists(std::min(size, kTile));
    for (std::uint32_t t0 = 0; t0 < size; t0 += kTile) {
      const std::uint32_t n = std::min(kTile, size - t0);
      const std::uint8_t* tile =
          codes.data() + (shard.begin + t0) * data.code_size();
      for (std::size_t w = 0; w < width; ++w) {
        kernels().adc_scan_u32(luts.data() + w * m * cb, cb, m, tile,
                               data.code_size(), data.wide_codes(), n,
                               dists.data());
        BoundedTopK& tk = topk[w];
        for (std::uint32_t i = 0; i < n; ++i) {
          if (dead && dead[shard.begin + t0 + i]) continue;
          tk.push(dists[i], t0 + i);
        }
      }
    }
    for (std::size_t w = 0; w < width; ++w) {
      const std::span<KernelHit> out(tasks[w].out, k);
      topk[w].sorted_into(out);
      for (KernelHit& h : out) {
        if (h.id == 0xFFFFFFFFu && h.dist == 0xFFFFFFFFu) break;
        h.id = ids[shard.begin + h.id];
      }
    }
    return;
  }

  // 4-bit rung: per-member coarse LUTs (shifted residuals, exactly
  // host_search_task_q4_into's), then one pass over the packed codes.
  const std::size_t dsub = data.dsub();
  const std::size_t cb4 = data.cb4();
  const std::size_t cs4 = data.code_size_q4();
  const std::uint32_t shift = data.cluster_shift(shard.cluster);
  const auto centroid = data.centroid(shard.cluster);
  const auto books = data.codebooks_q4();
  std::vector<std::uint32_t> luts(width * m * cb4);
  std::vector<std::int32_t> residual(dim);
  for (std::size_t w = 0; w < width; ++w) {
    for (std::size_t d = 0; d < dim; ++d) {
      residual[d] =
          (static_cast<std::int32_t>(tasks[w].query[d]) - centroid[d]) >> shift;
    }
    std::uint32_t* lut4 = luts.data() + w * m * cb4;
    for (std::size_t sub = 0; sub < m; ++sub) {
      const std::int32_t* res = residual.data() + sub * dsub;
      for (std::size_t g = 0; g < cb4; ++g) {
        const std::int16_t* cw = books.data() + (sub * cb4 + g) * dsub;
        std::uint32_t acc = 0;
        for (std::size_t d = 0; d < dsub; ++d) {
          const std::int32_t diff = res[d] - (cw[d] >> shift);
          const auto a = static_cast<std::uint32_t>(diff < 0 ? -diff : diff);
          acc += a * a;
        }
        lut4[sub * cb4 + g] = acc;
      }
    }
  }
  const auto codes = data.cluster_codes_q4(shard.cluster);
  for (std::uint32_t t0 = 0; t0 < size; t0 += kTile) {
    const std::uint32_t n = std::min(kTile, size - t0);
    for (std::size_t w = 0; w < width; ++w) {
      const std::uint32_t* lut4 = luts.data() + w * m * cb4;
      BoundedTopK& tk = topk[w];
      for (std::uint32_t i = 0; i < n; ++i) {
        if (dead && dead[shard.begin + t0 + i]) continue;
        const std::uint8_t* code =
            codes.data() + (shard.begin + t0 + i) * cs4;
        std::uint32_t dist = 0;
        for (std::size_t sub = 0; sub < m; ++sub) {
          const std::uint32_t g = (code[sub / 2] >> ((sub % 2) * 4)) & 0xF;
          dist += lut4[sub * cb4 + g];
        }
        tk.push(dist, t0 + i);
      }
    }
  }
  // Rows keep LOCAL indices; the rerank tail resolves ids.
  for (std::size_t w = 0; w < width; ++w) {
    topk[w].sorted_into(std::span<KernelHit>(tasks[w].out, k));
  }
}

void host_build_adc_lut(const PimIndexData& data,
                        std::span<const std::int16_t> query,
                        std::uint32_t cluster, std::span<std::uint32_t> lut) {
  const std::size_t dim = data.dim();
  const std::size_t m = data.m();
  const std::size_t dsub = data.dsub();
  const std::size_t cb = data.cb_entries();

  const auto centroid = data.centroid(cluster);
  std::vector<std::int32_t> residual(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    residual[d] = static_cast<std::int32_t>(query[d]) - centroid[d];
  }
  for (std::size_t sub = 0; sub < m; ++sub) {
    const std::int32_t* res = residual.data() + sub * dsub;
    for (std::size_t e = 0; e < cb; ++e) {
      const auto cw = data.codeword(sub, e);
      std::uint32_t acc = 0;
      for (std::size_t d = 0; d < dsub; ++d) {
        const std::int32_t diff = res[d] - cw[d];
        const auto a = static_cast<std::uint32_t>(diff < 0 ? -diff : diff);
        acc += a * a;
      }
      lut[sub * cb + e] = acc;
    }
  }
}

void host_search_task_q4_into(const PimIndexData& data,
                              std::span<const std::int16_t> query,
                              const Shard& shard, std::uint32_t k,
                              std::span<KernelHit> out,
                              const std::uint8_t* dead) {
  const std::size_t dim = data.dim();
  const std::size_t m = data.m();
  const std::size_t dsub = data.dsub();
  const std::size_t cb4 = data.cb4();
  const std::size_t cs4 = data.code_size_q4();
  const std::uint32_t shift = data.cluster_shift(shard.cluster);

  // RC with the cluster's residual scalar-quantization shift (arithmetic
  // right shift, exactly the kernel's).
  const auto centroid = data.centroid(shard.cluster);
  std::vector<std::int32_t> residual(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    residual[d] =
        (static_cast<std::int32_t>(query[d]) - centroid[d]) >> shift;
  }

  // LC: cb4-entry coarse sub-LUTs, codeword components shifted to match.
  const auto books = data.codebooks_q4();
  std::vector<std::uint32_t> lut4(m * cb4);
  for (std::size_t sub = 0; sub < m; ++sub) {
    const std::int32_t* res = residual.data() + sub * dsub;
    for (std::size_t g = 0; g < cb4; ++g) {
      const std::int16_t* cw = books.data() + (sub * cb4 + g) * dsub;
      std::uint32_t acc = 0;
      for (std::size_t d = 0; d < dsub; ++d) {
        const std::int32_t diff = res[d] - (cw[d] >> shift);
        const auto a = static_cast<std::uint32_t>(diff < 0 ? -diff : diff);
        acc += a * a;
      }
      lut4[sub * cb4 + g] = acc;
    }
  }

  // DC + TS over the packed codes (low nibble = even subquantizer). Hits
  // keep LOCAL indices; the rerank tail resolves ids.
  const auto codes = data.cluster_codes_q4(shard.cluster);
  const std::uint32_t size = static_cast<std::uint32_t>(shard.size());
  const std::uint32_t kk = std::min<std::uint32_t>(k, std::max<std::uint32_t>(size, 1));
  BoundedTopK topk(kk);
  for (std::uint32_t i = 0; i < size; ++i) {
    if (dead && dead[shard.begin + i]) continue;
    const std::uint8_t* code = codes.data() + (shard.begin + i) * cs4;
    std::uint32_t dist = 0;
    for (std::size_t sub = 0; sub < m; ++sub) {
      const std::uint32_t g = (code[sub / 2] >> ((sub % 2) * 4)) & 0xF;
      dist += lut4[sub * cb4 + g];
    }
    topk.push(dist, i);
  }
  topk.sorted_into(out);  // sentinel-pads short shards
}

void host_rerank_q4_row(const PimIndexData& data,
                        std::span<const std::int16_t> query, const Shard& shard,
                        std::span<KernelHit> row) {
  std::vector<std::uint32_t> lut(data.m() * data.cb_entries());
  host_build_adc_lut(data, query, shard.cluster, lut);
  host_rerank_q4_row_with_lut(data, lut, shard, row);
}

void host_rerank_q4_row_with_lut(const PimIndexData& data,
                                 std::span<const std::uint32_t> lut,
                                 const Shard& shard, std::span<KernelHit> row) {
  const std::size_t m = data.m();
  const std::size_t cb = data.cb_entries();
  const auto codes = data.cluster_codes(shard.cluster);
  const auto ids = data.cluster_ids(shard.cluster);
  std::size_t n = 0;
  for (KernelHit& h : row) {
    if (h.id == 0xFFFFFFFFu && h.dist == 0xFFFFFFFFu) break;
    const std::size_t pos = shard.begin + h.id;
    std::uint32_t dist = 0;
    for (std::size_t sub = 0; sub < m; ++sub) {
      dist += lut[sub * cb + data.code_at(codes, pos, sub)];
    }
    h = {dist, ids[pos]};
    ++n;
  }
  std::sort(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(n),
            [](const KernelHit& a, const KernelHit& b) {
              if (a.dist != b.dist) return a.dist < b.dist;
              return a.id < b.id;
            });
}

void host_cl_candidates_into(const PimIndexData& data,
                             std::span<const std::int16_t> query,
                             std::uint32_t centroid_begin,
                             std::uint32_t centroid_count, std::uint32_t keep,
                             std::span<KernelHit> out) {
  const std::size_t dim = data.dim();
  BoundedTopK topk(keep);
  for (std::uint32_t c = 0; c < centroid_count; ++c) {
    const std::uint32_t global = centroid_begin + c;
    const auto centroid = data.centroid(global);
    std::uint32_t dist = 0;
    for (std::size_t d = 0; d < dim; ++d) {
      const std::int32_t diff = static_cast<std::int32_t>(query[d]) - centroid[d];
      const auto a = static_cast<std::uint32_t>(diff < 0 ? -diff : diff);
      dist += a * a;
    }
    topk.push(dist, global);
  }
  topk.sorted_into(out);
}

std::vector<KernelHit> host_cl_candidates(const PimIndexData& data,
                                          std::span<const std::int16_t> query,
                                          std::uint32_t centroid_begin,
                                          std::uint32_t centroid_count,
                                          std::uint32_t keep) {
  std::vector<KernelHit> hits(keep);
  host_cl_candidates_into(data, query, centroid_begin, centroid_count, keep, hits);
  return hits;
}

}  // namespace drim
