#include "drim/pim_index.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace drim {
namespace {

std::int16_t to_i16(float v) {
  const float r = std::round(v);
  assert(r >= -32768.0f && r <= 32767.0f);
  return static_cast<std::int16_t>(r);
}

}  // namespace

PimIndexData::PimIndexData(const IvfPqIndex& index) {
  assert(index.trained());
  dim_ = index.dim();
  const ProductQuantizer& pq = index.pq();
  m_ = pq.m();
  cb_ = pq.cb_entries();
  nlist_ = index.nlist();
  code_size_ = pq.code_size();
  wide_codes_ = pq.wide_codes();

  centroids_.resize(nlist_ * dim_);
  for (std::size_t c = 0; c < nlist_; ++c) {
    auto src = index.centroids().row(c);
    for (std::size_t d = 0; d < dim_; ++d) {
      const std::int16_t q = to_i16(src[d]);
      centroids_[c * dim_ + d] = q;
      max_operand_abs_ = std::max<std::int32_t>(max_operand_abs_, std::abs(q));
    }
  }

  const std::size_t dsub = dim_ / m_;
  codebooks_.resize(m_ * cb_ * dsub);
  for (std::size_t sub = 0; sub < m_; ++sub) {
    for (std::size_t e = 0; e < cb_; ++e) {
      auto cw = pq.codeword(sub, e);
      for (std::size_t d = 0; d < dsub; ++d) {
        const std::int16_t q = to_i16(cw[d]);
        codebooks_[(sub * cb_ + e) * dsub + d] = q;
        max_operand_abs_ = std::max<std::int32_t>(max_operand_abs_, std::abs(q));
      }
    }
  }

  lists_codes_.resize(nlist_);
  lists_ids_.resize(nlist_);
  for (std::size_t c = 0; c < nlist_; ++c) {
    const InvertedList& list = index.list(c);
    lists_ids_[c] = list.ids;
    lists_codes_[c] = list.codes;
  }

  build_q4_tables();
}

void PimIndexData::build_q4_tables() {
  if (wide_codes_) return;  // cb > 256: no 4-bit rung for wide-code indexes
  cb4_ = std::min<std::size_t>(cb_, 16);
  const std::size_t dsub = dim_ / m_;

  // Coarse codebook: per-subquantizer k-means over the full codebook's
  // codewords (Lloyd's with norm-quantile seeding, a fixed iteration count,
  // and lowest-index tie-breaks — fully deterministic, no RNG). Codeword ids
  // carry no geometric order, so any formulaic id-range grouping would
  // average unrelated codewords into near-global-mean entries and destroy
  // the rung's recall.
  codebooks_q4_.assign(m_ * cb4_ * dsub, 0);
  q4_map_.assign(m_ * cb_, 0);
  for (std::size_t sub = 0; sub < m_; ++sub) {
    const std::int16_t* book = codebooks_.data() + sub * cb_ * dsub;

    // Seed centers at norm quantiles so they span the codeword cloud.
    std::vector<std::int64_t> norms(cb_, 0);
    for (std::size_t e = 0; e < cb_; ++e) {
      for (std::size_t d = 0; d < dsub; ++d) {
        const std::int64_t v = book[e * dsub + d];
        norms[e] += v * v;
      }
    }
    std::vector<std::size_t> order(cb_);
    for (std::size_t e = 0; e < cb_; ++e) order[e] = e;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return norms[a] != norms[b] ? norms[a] < norms[b] : a < b;
                     });
    std::vector<double> centers(cb4_ * dsub);
    for (std::size_t g = 0; g < cb4_; ++g) {
      const std::size_t pick = order[(2 * g + 1) * cb_ / (2 * cb4_)];
      for (std::size_t d = 0; d < dsub; ++d) {
        centers[g * dsub + d] = book[pick * dsub + d];
      }
    }

    std::vector<std::uint8_t> assign(cb_, 0);
    auto assign_all = [&] {
      for (std::size_t e = 0; e < cb_; ++e) {
        double best = 0.0;
        std::size_t best_g = 0;
        for (std::size_t g = 0; g < cb4_; ++g) {
          double dist = 0.0;
          for (std::size_t d = 0; d < dsub; ++d) {
            const double diff =
                static_cast<double>(book[e * dsub + d]) - centers[g * dsub + d];
            dist += diff * diff;
          }
          if (g == 0 || dist < best) {
            best = dist;
            best_g = g;
          }
        }
        assign[e] = static_cast<std::uint8_t>(best_g);
      }
    };
    for (int iter = 0; iter < 10; ++iter) {
      assign_all();
      std::vector<double> acc(cb4_ * dsub, 0.0);
      std::vector<std::size_t> counts(cb4_, 0);
      for (std::size_t e = 0; e < cb_; ++e) {
        for (std::size_t d = 0; d < dsub; ++d) {
          acc[assign[e] * dsub + d] += book[e * dsub + d];
        }
        ++counts[assign[e]];
      }
      for (std::size_t g = 0; g < cb4_; ++g) {
        if (counts[g] == 0) continue;  // empty group keeps its center
        for (std::size_t d = 0; d < dsub; ++d) {
          centers[g * dsub + d] = acc[g * dsub + d] / static_cast<double>(counts[g]);
        }
      }
    }
    assign_all();  // final map against the final centers

    for (std::size_t e = 0; e < cb_; ++e) q4_map_[sub * cb_ + e] = assign[e];
    std::int16_t* out = codebooks_q4_.data() + sub * cb4_ * dsub;
    for (std::size_t g = 0; g < cb4_; ++g) {
      for (std::size_t d = 0; d < dsub; ++d) {
        out[g * dsub + d] =
            static_cast<std::int16_t>(std::lround(centers[g * dsub + d]));
      }
    }
  }

  // Per-cluster residual shift: keep |residual| roughly 8-bit. The residual
  // magnitude is bounded by max|centroid| + max|query component|, and the
  // data domain is uint8-rooted, so the centroid magnitude is the driver.
  cluster_shifts_.assign(nlist_, 0);
  for (std::size_t c = 0; c < nlist_; ++c) {
    std::int32_t max_abs = 0;
    for (std::size_t d = 0; d < dim_; ++d) {
      max_abs = std::max<std::int32_t>(max_abs, std::abs(centroids_[c * dim_ + d]));
    }
    std::uint32_t shift = 0;
    for (std::int32_t bound = max_abs + 255; (bound >> shift) > 255;) ++shift;
    cluster_shifts_[c] = shift;
  }

  // Pack two 4-bit codes per byte (low nibble = even subquantizer).
  const std::size_t cs4 = code_size_q4();
  lists_codes_q4_.resize(nlist_);
  for (std::size_t c = 0; c < nlist_; ++c) {
    const std::size_t n = lists_ids_[c].size();
    std::vector<std::uint8_t>& packed = lists_codes_q4_[c];
    packed.assign(n * cs4, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t sub = 0; sub < m_; ++sub) {
        const std::uint32_t g = q4_entry(sub, code_at(lists_codes_[c], i, sub));
        std::uint8_t& byte = packed[i * cs4 + sub / 2];
        byte |= static_cast<std::uint8_t>((g & 0xF) << ((sub % 2) * 4));
      }
    }
  }
}

std::uint32_t PimIndexData::code_at(std::span<const std::uint8_t> codes, std::size_t i,
                                    std::size_t sub) const {
  const std::uint8_t* p = codes.data() + i * code_size_;
  if (wide_codes_) {
    std::uint16_t v = 0;
    std::memcpy(&v, p + sub * 2, 2);
    return v;
  }
  return p[sub];
}

std::vector<std::int16_t> PimIndexData::quantize_query(std::span<const float> q) {
  std::vector<std::int16_t> out(q.size());
  for (std::size_t d = 0; d < q.size(); ++d) out[d] = to_i16(q[d]);
  return out;
}

}  // namespace drim
