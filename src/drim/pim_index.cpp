#include "drim/pim_index.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

namespace drim {
namespace {

std::int16_t to_i16(float v) {
  const float r = std::round(v);
  assert(r >= -32768.0f && r <= 32767.0f);
  return static_cast<std::int16_t>(r);
}

}  // namespace

PimIndexData::PimIndexData(const IvfPqIndex& index) {
  assert(index.trained());
  dim_ = index.dim();
  const ProductQuantizer& pq = index.pq();
  m_ = pq.m();
  cb_ = pq.cb_entries();
  nlist_ = index.nlist();
  code_size_ = pq.code_size();
  wide_codes_ = pq.wide_codes();

  centroids_.resize(nlist_ * dim_);
  for (std::size_t c = 0; c < nlist_; ++c) {
    auto src = index.centroids().row(c);
    for (std::size_t d = 0; d < dim_; ++d) {
      const std::int16_t q = to_i16(src[d]);
      centroids_[c * dim_ + d] = q;
      max_operand_abs_ = std::max<std::int32_t>(max_operand_abs_, std::abs(q));
    }
  }

  const std::size_t dsub = dim_ / m_;
  codebooks_.resize(m_ * cb_ * dsub);
  for (std::size_t sub = 0; sub < m_; ++sub) {
    for (std::size_t e = 0; e < cb_; ++e) {
      auto cw = pq.codeword(sub, e);
      for (std::size_t d = 0; d < dsub; ++d) {
        const std::int16_t q = to_i16(cw[d]);
        codebooks_[(sub * cb_ + e) * dsub + d] = q;
        max_operand_abs_ = std::max<std::int32_t>(max_operand_abs_, std::abs(q));
      }
    }
  }

  lists_codes_.resize(nlist_);
  lists_ids_.resize(nlist_);
  for (std::size_t c = 0; c < nlist_; ++c) {
    const InvertedList& list = index.list(c);
    lists_ids_[c] = list.ids;
    lists_codes_[c] = list.codes;
  }
}

std::uint32_t PimIndexData::code_at(std::span<const std::uint8_t> codes, std::size_t i,
                                    std::size_t sub) const {
  const std::uint8_t* p = codes.data() + i * code_size_;
  if (wide_codes_) {
    std::uint16_t v = 0;
    std::memcpy(&v, p + sub * 2, 2);
    return v;
  }
  return p[sub];
}

std::vector<std::int16_t> PimIndexData::quantize_query(std::span<const float> q) {
  std::vector<std::int16_t> out(q.size());
  for (std::size_t d = 0; d < q.size(); ++d) out[d] = to_i16(q[d]);
  return out;
}

}  // namespace drim
