#include "drim/kernels.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace drim {
namespace {

/// DMA a region in <= kMaxDmaBytes chunks (UPMEM transfers are bounded).
void mram_read_chunked(DpuContext& ctx, std::size_t offset, std::span<std::uint8_t> dst) {
  std::size_t done = 0;
  while (done < dst.size()) {
    const std::size_t n = std::min(kMaxDmaBytes, dst.size() - done);
    ctx.mram_read(offset + done, dst.subspan(done, n));
    done += n;
  }
}

/// Bill the DMA of a region fetched in <= kMaxDmaBytes chunks (charge-only
/// twin of mram_read_chunked: same transfer count and sizes).
void charge_read_chunked(DpuContext& ctx, std::size_t bytes) {
  std::size_t done = 0;
  while (done < bytes) {
    const std::size_t n = std::min(kMaxDmaBytes, bytes - done);
    ctx.charge_mram_read(n);
    done += n;
  }
}

// ---- shared instruction-charging policy ----
// The functional kernels and their analytic twins bill instruction cycles
// through the SAME deterministic helpers below, so per-phase cycle counters
// are exactly equal between SimPimPlatform and AnalyticPimPlatform (pinned
// by tests/test_platforms.cpp). The policy is schedule/layout-determined:
//   - squaring bills one square-LUT lookup per dimension when the square
//     table is enabled (the broadcast table is sized to cover the full
//     operand range, so this is the real cost), or a 32-cycle multiply per
//     dimension with the table off (the Fig. 10a ablation);
//   - TS heap maintenance bills the Eq. 15 amortized l_sortu shape instead
//     of the data-dependent accept sequence.
// The arithmetic itself stays exact and data-dependent; only the charges
// follow the policy.

/// Squaring cost for `total` (residual - codeword) differences.
void charge_square_stream(DpuContext& ctx, bool use_lut, std::uint64_t total) {
  if (use_lut) {
    ctx.charge_sq_lut_lookups(total);
  } else {
    ctx.charge_muls(total);
  }
}

/// Amortized TS heap-maintenance cycles for `points` pushes into a k-deep
/// heap: the Eq. 15 l_sortu shape (threshold compare always; 0.25 * log2(k)
/// of the sift's compare + two WRAM accesses on the amortized accept path).
std::uint64_t amortized_topk_cycles(const DpuInstructionCosts& c, std::uint64_t points,
                                    std::uint32_t k) {
  double log2k = 1.0;
  for (std::uint32_t v = k; v > 1; v >>= 1) log2k += 1.0;
  const double sift = 0.25 * log2k * (static_cast<double>(c.cmp) + 2.0 * c.wram_access);
  return points * c.cmp +
         static_cast<std::uint64_t>(static_cast<double>(points) * sift + 0.5);
}

/// Fixed-capacity WRAM top-k (binary max-heap on distance, ties by id).
/// Maintenance cycles are billed in bulk via amortized_topk_cycles, not per
/// push, so the charge stream is identical to the analytic twin's.
class WramTopK {
 public:
  explicit WramTopK(std::uint32_t k) : k_(k) { heap_.reserve(k); }

  void push(std::uint32_t dist, std::uint32_t local_idx) {
    if (heap_.size() >= k_ && !less(dist, local_idx, heap_.front())) return;
    if (heap_.size() < k_) {
      heap_.push_back({dist, local_idx});
      std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
    } else {
      std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
      heap_.back() = {dist, local_idx};
      std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
    }
  }

  /// Ascending (distance, local index) pairs.
  std::vector<KernelHit> sorted() {
    std::sort_heap(heap_.begin(), heap_.end(), heap_cmp);
    return heap_;
  }

 private:
  static bool heap_cmp(const KernelHit& a, const KernelHit& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
  bool less(std::uint32_t dist, std::uint32_t idx, const KernelHit& h) const {
    if (dist != h.dist) return dist < h.dist;
    return idx < h.id;
  }

  std::uint32_t k_;
  std::vector<KernelHit> heap_;  // .id holds the local point index until ids
                                 // are resolved at task end
};

}  // namespace

void run_cl_kernel(DpuContext& ctx, const ClKernelArgs& args) {
  const std::size_t dim = args.dim;
  if (args.num_queries == 0 || args.centroid_count == 0) return;

  std::vector<std::int16_t> query(dim);
  std::vector<std::int16_t> centroid(dim);
  const std::size_t wram =
      query.size() * 2 + centroid.size() * 2 + args.nprobe * sizeof(KernelHit) +
      (args.use_square_lut ? (args.sq_lut_max_abs + 1) * sizeof(std::uint32_t) : 0);
  check_wram_budget(ctx.config(), wram);

  ctx.set_phase(Phase::CL);
  const std::uint64_t cnt = args.centroid_count;
  for (std::uint32_t q = 0; q < args.num_queries; ++q) {
    ctx.mram_read_t<std::int16_t>(args.queries_offset + q * dim * 2,
                                  std::span<std::int16_t>(query));
    WramTopK topk(args.nprobe);
    for (std::uint32_t c = 0; c < args.centroid_count; ++c) {
      const std::uint32_t global = args.centroid_begin + c;
      ctx.mram_read_t<std::int16_t>(args.centroids_offset + global * dim * 2,
                                    std::span<std::int16_t>(centroid));
      std::uint32_t dist = 0;
      for (std::size_t d = 0; d < dim; ++d) {
        const std::int32_t diff = static_cast<std::int32_t>(query[d]) - centroid[d];
        const auto a = static_cast<std::uint32_t>(diff < 0 ? -diff : diff);
        dist += a * a;
      }
      topk.push(dist, global);
    }
    // Per dim of each centroid: subtract + square + accumulate (the Eq. 1
    // "3D - 1" shape), then the amortized top-nprobe maintenance.
    charge_square_stream(ctx, args.use_square_lut, cnt * dim);
    ctx.charge_adds(cnt * 2 * dim);
    ctx.charge_cycles(amortized_topk_cycles(ctx.config().costs, cnt, args.nprobe));
    std::vector<KernelHit> hits = topk.sorted();
    hits.resize(args.nprobe, KernelHit{});
    ctx.mram_write(args.output_offset + q * args.nprobe * sizeof(KernelHit),
                   {reinterpret_cast<const std::uint8_t*>(hits.data()),
                    args.nprobe * sizeof(KernelHit)});
  }
}

void run_search_kernel(DpuContext& ctx, const SearchKernelArgs& args,
                       std::span<const ShardRegion> shards,
                       std::span<const KernelTask> tasks) {
  const std::size_t dim = args.dim;
  const std::size_t m = args.m;
  const std::size_t cb = args.cb;
  const std::size_t dsub = dim / m;

  // ---- WRAM working set (checked against the 64 KB budget) ----
  std::vector<std::int16_t> query(dim);
  std::vector<std::int16_t> centroid(dim);
  std::vector<std::int32_t> residual(dim);
  std::vector<std::uint32_t> lut(m * cb);              // ADC lookup table
  std::vector<std::int16_t> cb_slice(cb * dsub);       // one subquantizer's book
  std::vector<std::uint8_t> code_block(kMaxDmaBytes);  // streamed PQ codes
  std::vector<std::uint8_t> id_buf(sizeof(std::uint32_t));
  const std::size_t sq_lut_bytes =
      args.use_square_lut ? (args.sq_lut_max_abs + 1) * sizeof(std::uint32_t) : 0;
  const std::size_t wram_bytes =
      query.size() * 2 + centroid.size() * 2 + residual.size() * 4 + lut.size() * 4 +
      std::min(cb_slice.size() * 2, kMaxDmaBytes * 2) + code_block.size() +
      sq_lut_bytes + args.k * sizeof(KernelHit);
  check_wram_budget(ctx.config(), wram_bytes);

  // Task list itself is fetched from MRAM by the real kernel; charge its DMA.
  ctx.set_phase(Phase::AUX);
  ctx.charge_cycles(tasks.size() * 4);  // task decode / loop control
  ctx.charge_mram_read(tasks.size() * sizeof(KernelTask));

  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const KernelTask& task = tasks[t];
    const ShardRegion& shard = shards[task.shard_slot];

    // ---- RC: residual = query - centroid ----
    ctx.set_phase(Phase::RC);
    ctx.mram_read_t<std::int16_t>(args.queries_offset + task.query_slot * dim * 2,
                                  std::span<std::int16_t>(query));
    ctx.mram_read_t<std::int16_t>(args.centroids_offset + shard.cluster * dim * 2,
                                  std::span<std::int16_t>(centroid));
    for (std::size_t d = 0; d < dim; ++d) {
      residual[d] = static_cast<std::int32_t>(query[d]) - centroid[d];
    }
    ctx.charge_adds(dim);
    ctx.charge_wram(dim * 3);  // two loads + one store per component

    // ---- LC: lut[sub][e] = sum_d (residual - codeword)^2 ----
    ctx.set_phase(Phase::LC);
    for (std::size_t sub = 0; sub < m; ++sub) {
      mram_read_chunked(
          ctx, args.codebooks_offset + sub * cb * dsub * 2,
          {reinterpret_cast<std::uint8_t*>(cb_slice.data()), cb * dsub * 2});
      const std::int32_t* res = residual.data() + sub * dsub;
      std::uint32_t* lrow = lut.data() + sub * cb;
      for (std::size_t e = 0; e < cb; ++e) {
        const std::int16_t* cw = cb_slice.data() + e * dsub;
        std::uint32_t acc = 0;
        for (std::size_t d = 0; d < dsub; ++d) {
          const std::int32_t diff = res[d] - cw[d];
          const auto a = static_cast<std::uint32_t>(diff < 0 ? -diff : diff);
          acc += a * a;
        }
        lrow[e] = acc;
      }
      // Cost per dimension of each entry: one subtract, one square (square-
      // table lookup, or multiply in the ablation), one accumulate — the
      // paper's "M x 3 - 1 per subvector" accounting — plus one WRAM store
      // per finished entry.
      charge_square_stream(ctx, args.use_square_lut, cb * dsub);
      ctx.charge_adds(cb * 2 * dsub);
      ctx.charge_wram(cb);
    }

    // ---- DC + TS: stream codes, accumulate LUT entries, keep top-k ----
    WramTopK topk(std::min<std::uint32_t>(args.k, std::max<std::uint32_t>(shard.size, 1)));
    const std::size_t codes_bytes = static_cast<std::size_t>(shard.size) * args.code_size;
    std::size_t streamed = 0;
    std::uint32_t point = 0;
    while (streamed < codes_bytes) {
      ctx.set_phase(Phase::DC);
      // Stream whole codes per block.
      const std::size_t codes_per_block = kMaxDmaBytes / args.code_size;
      const std::size_t block_bytes =
          std::min(codes_per_block * args.code_size, codes_bytes - streamed);
      ctx.mram_read(shard.codes_offset + streamed,
                    {code_block.data(), block_bytes});
      const std::size_t points_in_block = block_bytes / args.code_size;

      for (std::size_t i = 0; i < points_in_block; ++i, ++point) {
        // Tombstoned entries are skipped before the top-k push: a dead point
        // can never evict a live candidate, so the surviving (dist, id)
        // stream equals a cold rebuild of the live set.
        if (shard.dead && shard.dead[shard.begin + point]) continue;
        const std::uint8_t* code = code_block.data() + i * args.code_size;
        std::uint32_t dist = 0;
        for (std::size_t sub = 0; sub < m; ++sub) {
          std::uint32_t entry;
          if (args.wide_codes) {
            std::uint16_t v = 0;
            std::memcpy(&v, code + sub * 2, 2);
            entry = v;
          } else {
            entry = code[sub];
          }
          dist += lut[sub * cb + entry];
        }
        topk.push(dist, point);
      }
      // Per point: m LUT loads (address calc + load) + (m-1) adds.
      ctx.charge_lut_lookups(points_in_block * m);
      ctx.charge_adds(points_in_block * (m - 1));
      streamed += block_bytes;
    }
    if (shard.dead) {
      // Liveness flags stream alongside the codes (one byte per point) and
      // cost one compare each. Billed only when the cluster actually has
      // tombstones, so read-only runs charge nothing extra.
      ctx.set_phase(Phase::DC);
      charge_read_chunked(ctx, shard.size);
      ctx.charge_cmps(shard.size);
    }
    // TS: amortized heap maintenance at this task's effective depth.
    ctx.set_phase(Phase::TS);
    ctx.charge_cycles(amortized_topk_cycles(ctx.config().costs, point,
                                            std::min<std::uint32_t>(
                                                args.k, std::max<std::uint32_t>(shard.size, 1))));

    // Resolve winners' base-point ids from the shard's id table, then write
    // the task result row to MRAM.
    ctx.set_phase(Phase::AUX);
    std::vector<KernelHit> hits = topk.sorted();
    for (KernelHit& h : hits) {
      ctx.mram_read(shard.ids_offset + h.id * sizeof(std::uint32_t),
                    {id_buf.data(), sizeof(std::uint32_t)});
      std::uint32_t global_id = 0;
      std::memcpy(&global_id, id_buf.data(), sizeof(global_id));
      h.id = global_id;
    }
    hits.resize(args.k, KernelHit{});  // sentinel-pad short shards
    ctx.mram_write(args.output_offset + t * args.k * sizeof(KernelHit),
                   {reinterpret_cast<const std::uint8_t*>(hits.data()),
                    args.k * sizeof(KernelHit)});
  }
}

void charge_search_kernel(DpuContext& ctx, const SearchKernelArgs& args,
                          std::span<const ShardRegion> shards,
                          std::span<const KernelTask> tasks) {
  const std::size_t dim = args.dim;
  const std::size_t m = args.m;
  const std::size_t cb = args.cb;
  const std::size_t dsub = dim / m;
  const DpuInstructionCosts& c = ctx.config().costs;

  // Same WRAM working-set accounting as run_search_kernel.
  const std::size_t sq_lut_bytes =
      args.use_square_lut ? (args.sq_lut_max_abs + 1) * sizeof(std::uint32_t) : 0;
  const std::size_t wram_bytes =
      dim * 2 + dim * 2 + dim * 4 + m * cb * 4 +
      std::min(cb * dsub * 2, kMaxDmaBytes * 2) + kMaxDmaBytes + sq_lut_bytes +
      args.k * sizeof(KernelHit);
  check_wram_budget(ctx.config(), wram_bytes);

  ctx.set_phase(Phase::AUX);
  ctx.charge_cycles(tasks.size() * 4);  // task decode / loop control
  ctx.charge_mram_read(tasks.size() * sizeof(KernelTask));

  for (const KernelTask& task : tasks) {
    const ShardRegion& shard = shards[task.shard_slot];
    const std::uint64_t points = shard.size;

    // RC: query + centroid reads, residual arithmetic.
    ctx.set_phase(Phase::RC);
    ctx.charge_mram_read(dim * 2);
    ctx.charge_mram_read(dim * 2);
    ctx.charge_adds(dim);
    ctx.charge_wram(dim * 3);

    // LC: per subquantizer, one chunked codebook-slice fetch plus the
    // per-entry square/accumulate/store stream (same shared policy helpers
    // as run_search_kernel — see the header note).
    ctx.set_phase(Phase::LC);
    for (std::size_t sub = 0; sub < m; ++sub) {
      charge_read_chunked(ctx, cb * dsub * 2);
      charge_square_stream(ctx, args.use_square_lut, cb * dsub);
      ctx.charge_adds(cb * 2 * dsub);
      ctx.charge_wram(cb);
    }

    // DC: stream whole codes per block, ADC-sum each point.
    ctx.set_phase(Phase::DC);
    const std::size_t codes_bytes = static_cast<std::size_t>(points) * args.code_size;
    const std::size_t codes_per_block = kMaxDmaBytes / args.code_size;
    std::size_t streamed = 0;
    while (streamed < codes_bytes) {
      const std::size_t block_bytes =
          std::min(codes_per_block * args.code_size, codes_bytes - streamed);
      ctx.charge_mram_read(block_bytes);
      streamed += block_bytes;
    }
    ctx.charge_lut_lookups(points * m);
    ctx.charge_adds(points * (m - 1));
    if (shard.dead) {
      // Same liveness flag-stream DMA + per-point compare as the functional
      // kernel bills under tombstones.
      charge_read_chunked(ctx, shard.size);
      ctx.charge_cmps(shard.size);
    }

    // TS: amortized heap maintenance at this task's effective depth.
    ctx.set_phase(Phase::TS);
    const std::uint32_t kk =
        std::min<std::uint32_t>(args.k, std::max<std::uint32_t>(shard.size, 1));
    ctx.charge_cycles(amortized_topk_cycles(c, points, kk));

    // AUX: resolve winners' ids (one 4-byte read each), write the padded row.
    // Only live points can win, so the winner count follows the live total.
    ctx.set_phase(Phase::AUX);
    const std::uint64_t hits = std::min<std::uint64_t>(args.k, shard_live_points(shard));
    for (std::uint64_t h = 0; h < hits; ++h) {
      ctx.charge_mram_read(sizeof(std::uint32_t));
    }
    ctx.charge_mram_write(args.k * sizeof(KernelHit));
  }
}

void charge_cl_kernel(DpuContext& ctx, const ClKernelArgs& args) {
  const std::size_t dim = args.dim;
  if (args.num_queries == 0 || args.centroid_count == 0) return;
  const DpuInstructionCosts& c = ctx.config().costs;

  const std::size_t wram =
      dim * 2 + dim * 2 + args.nprobe * sizeof(KernelHit) +
      (args.use_square_lut ? (args.sq_lut_max_abs + 1) * sizeof(std::uint32_t) : 0);
  check_wram_budget(ctx.config(), wram);

  ctx.set_phase(Phase::CL);
  const std::uint64_t nq = args.num_queries;
  const std::uint64_t cnt = args.centroid_count;
  for (std::uint64_t q = 0; q < nq; ++q) {
    ctx.charge_mram_read(dim * 2);
    for (std::uint64_t i = 0; i < cnt; ++i) ctx.charge_mram_read(dim * 2);
    charge_square_stream(ctx, args.use_square_lut, cnt * dim);
    ctx.charge_adds(cnt * 2 * dim);
    ctx.charge_cycles(amortized_topk_cycles(c, cnt, args.nprobe));
    ctx.charge_mram_write(args.nprobe * sizeof(KernelHit));
  }
}

}  // namespace drim
