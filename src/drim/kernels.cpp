#include "drim/kernels.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_map>

namespace drim {
namespace {

/// DMA a region in <= kMaxDmaBytes chunks (UPMEM transfers are bounded).
void mram_read_chunked(DpuContext& ctx, std::size_t offset, std::span<std::uint8_t> dst) {
  std::size_t done = 0;
  while (done < dst.size()) {
    const std::size_t n = std::min(kMaxDmaBytes, dst.size() - done);
    ctx.mram_read(offset + done, dst.subspan(done, n));
    done += n;
  }
}

/// Bill the DMA of a region fetched in <= kMaxDmaBytes chunks (charge-only
/// twin of mram_read_chunked: same transfer count and sizes).
void charge_read_chunked(DpuContext& ctx, std::size_t bytes) {
  std::size_t done = 0;
  while (done < bytes) {
    const std::size_t n = std::min(kMaxDmaBytes, bytes - done);
    ctx.charge_mram_read(n);
    done += n;
  }
}

// ---- shared instruction-charging policy ----
// The functional kernels and their analytic twins bill instruction cycles
// through the SAME deterministic helpers below, so per-phase cycle counters
// are exactly equal between SimPimPlatform and AnalyticPimPlatform (pinned
// by tests/test_platforms.cpp). The policy is schedule/layout-determined:
//   - squaring bills one square-LUT lookup per dimension when the square
//     table is enabled (the broadcast table is sized to cover the full
//     operand range, so this is the real cost), or a 32-cycle multiply per
//     dimension with the table off (the Fig. 10a ablation);
//   - TS heap maintenance bills the Eq. 15 amortized l_sortu shape instead
//     of the data-dependent accept sequence.
// The arithmetic itself stays exact and data-dependent; only the charges
// follow the policy.

/// Squaring cost for `total` (residual - codeword) differences.
void charge_square_stream(DpuContext& ctx, bool use_lut, std::uint64_t total) {
  if (use_lut) {
    ctx.charge_sq_lut_lookups(total);
  } else {
    ctx.charge_muls(total);
  }
}

/// Amortized TS heap-maintenance cycles for `points` pushes into a k-deep
/// heap: the Eq. 15 l_sortu shape (threshold compare always; 0.25 * log2(k)
/// of the sift's compare + two WRAM accesses on the amortized accept path).
std::uint64_t amortized_topk_cycles(const DpuInstructionCosts& c, std::uint64_t points,
                                    std::uint32_t k) {
  double log2k = 1.0;
  for (std::uint32_t v = k; v > 1; v >>= 1) log2k += 1.0;
  const double sift = 0.25 * log2k * (static_cast<double>(c.cmp) + 2.0 * c.wram_access);
  return points * c.cmp +
         static_cast<std::uint64_t>(static_cast<double>(points) * sift + 0.5);
}

/// Fixed-capacity WRAM top-k (binary max-heap on distance, ties by id).
/// Maintenance cycles are billed in bulk via amortized_topk_cycles, not per
/// push, so the charge stream is identical to the analytic twin's.
class WramTopK {
 public:
  explicit WramTopK(std::uint32_t k) : k_(k) { heap_.reserve(k); }

  void push(std::uint32_t dist, std::uint32_t local_idx) {
    if (heap_.size() >= k_ && !less(dist, local_idx, heap_.front())) return;
    if (heap_.size() < k_) {
      heap_.push_back({dist, local_idx});
      std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
    } else {
      std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
      heap_.back() = {dist, local_idx};
      std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
    }
  }

  /// Ascending (distance, local index) pairs.
  std::vector<KernelHit> sorted() {
    std::sort_heap(heap_.begin(), heap_.end(), heap_cmp);
    return heap_;
  }

 private:
  static bool heap_cmp(const KernelHit& a, const KernelHit& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
  bool less(std::uint32_t dist, std::uint32_t idx, const KernelHit& h) const {
    if (dist != h.dist) return dist < h.dist;
    return idx < h.id;
  }

  std::uint32_t k_;
  std::vector<KernelHit> heap_;  // .id holds the local point index until ids
                                 // are resolved at task end
};

}  // namespace

void run_cl_kernel(DpuContext& ctx, const ClKernelArgs& args) {
  const std::size_t dim = args.dim;
  if (args.num_queries == 0 || args.centroid_count == 0) return;

  std::vector<std::int16_t> query(dim);
  std::vector<std::int16_t> centroid(dim);
  const std::size_t wram =
      query.size() * 2 + centroid.size() * 2 + args.nprobe * sizeof(KernelHit) +
      (args.use_square_lut ? (args.sq_lut_max_abs + 1) * sizeof(std::uint32_t) : 0);
  check_wram_budget(ctx.config(), wram);

  ctx.set_phase(Phase::CL);
  const std::uint64_t cnt = args.centroid_count;
  for (std::uint32_t q = 0; q < args.num_queries; ++q) {
    ctx.mram_read_t<std::int16_t>(args.queries_offset + q * dim * 2,
                                  std::span<std::int16_t>(query));
    WramTopK topk(args.nprobe);
    for (std::uint32_t c = 0; c < args.centroid_count; ++c) {
      const std::uint32_t global = args.centroid_begin + c;
      ctx.mram_read_t<std::int16_t>(args.centroids_offset + global * dim * 2,
                                    std::span<std::int16_t>(centroid));
      std::uint32_t dist = 0;
      for (std::size_t d = 0; d < dim; ++d) {
        const std::int32_t diff = static_cast<std::int32_t>(query[d]) - centroid[d];
        const auto a = static_cast<std::uint32_t>(diff < 0 ? -diff : diff);
        dist += a * a;
      }
      topk.push(dist, global);
    }
    // Per dim of each centroid: subtract + square + accumulate (the Eq. 1
    // "3D - 1" shape), then the amortized top-nprobe maintenance.
    charge_square_stream(ctx, args.use_square_lut, cnt * dim);
    ctx.charge_adds(cnt * 2 * dim);
    ctx.charge_cycles(amortized_topk_cycles(ctx.config().costs, cnt, args.nprobe));
    std::vector<KernelHit> hits = topk.sorted();
    hits.resize(args.nprobe, KernelHit{});
    ctx.mram_write(args.output_offset + q * args.nprobe * sizeof(KernelHit),
                   {reinterpret_cast<const std::uint8_t*>(hits.data()),
                    args.nprobe * sizeof(KernelHit)});
  }
}

void run_search_kernel(DpuContext& ctx, const SearchKernelArgs& args,
                       std::span<const ShardRegion> shards,
                       std::span<const KernelTask> tasks) {
  const std::size_t dim = args.dim;
  const std::size_t m = args.m;
  const std::size_t cb = args.cb;
  const std::size_t dsub = dim / m;

  // Quantization-ladder geometry; q4 buffers join the working set only when
  // this launch actually carries a 4-bit task, so full-rung launches keep
  // the exact pre-ladder WRAM accounting.
  const std::size_t cb4 = args.cb4;
  const std::size_t pairs = args.has_q4 ? (m + 1) / 2 : 0;
  bool any_q4 = false;
  if (args.has_q4) {
    for (const KernelTask& t : tasks) any_q4 = any_q4 || task_is_q4(t);
  }

  // ---- WRAM working set (checked against the 64 KB budget) ----
  std::vector<std::int16_t> query(dim);
  std::vector<std::int16_t> centroid(dim);
  std::vector<std::int32_t> residual(dim);
  std::vector<std::uint32_t> lut(m * cb);              // ADC lookup table
  std::vector<std::int16_t> cb_slice(cb * dsub);       // one subquantizer's book
  std::vector<std::uint8_t> code_block(kMaxDmaBytes);  // streamed PQ codes
  std::vector<std::uint8_t> id_buf(sizeof(std::uint32_t));
  std::vector<std::uint32_t> lut4(any_q4 ? m * cb4 : 0);  // coarse sub-LUTs
  std::vector<std::uint32_t> pair_lut(any_q4 ? pairs * 256 : 0);
  const std::size_t sq_lut_bytes =
      args.use_square_lut ? (args.sq_lut_max_abs + 1) * sizeof(std::uint32_t) : 0;
  const std::size_t wram_bytes =
      query.size() * 2 + centroid.size() * 2 + residual.size() * 4 + lut.size() * 4 +
      std::min(cb_slice.size() * 2, kMaxDmaBytes * 2) + code_block.size() +
      sq_lut_bytes + args.k * sizeof(KernelHit) +
      lut4.size() * 4 + pair_lut.size() * 4;
  check_wram_budget(ctx.config(), wram_bytes);

  // Task list itself is fetched from MRAM by the real kernel; charge its DMA.
  ctx.set_phase(Phase::AUX);
  ctx.charge_cycles(tasks.size() * 4);  // task decode / loop control
  ctx.charge_mram_read(tasks.size() * sizeof(KernelTask));

  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const KernelTask& task = tasks[t];
    const ShardRegion& shard = shards[task.shard_slot];
    const bool q4 = args.has_q4 && task_is_q4(task);
    const std::uint32_t shift = q4 ? shard.q4_shift : 0;

    // ---- RC: residual = query - centroid ----
    ctx.set_phase(Phase::RC);
    ctx.mram_read_t<std::int16_t>(args.queries_offset + task_query_slot(task) * dim * 2,
                                  std::span<std::int16_t>(query));
    ctx.mram_read_t<std::int16_t>(args.centroids_offset + shard.cluster * dim * 2,
                                  std::span<std::int16_t>(centroid));
    for (std::size_t d = 0; d < dim; ++d) {
      residual[d] = static_cast<std::int32_t>(query[d]) - centroid[d];
    }
    ctx.charge_adds(dim);
    ctx.charge_wram(dim * 3);  // two loads + one store per component
    if (q4) {
      // Per-cluster residual scalar quantization: arithmetic shift, one
      // cycle per component (billed even at shift 0 so the q4 charge
      // stream is schedule-determined, not data-determined).
      for (std::size_t d = 0; d < dim; ++d) residual[d] >>= shift;
      ctx.charge_cycles(dim);
    }

    ctx.set_phase(Phase::LC);
    if (!q4) {
      // ---- LC: lut[sub][e] = sum_d (residual - codeword)^2 ----
      for (std::size_t sub = 0; sub < m; ++sub) {
        mram_read_chunked(
            ctx, args.codebooks_offset + sub * cb * dsub * 2,
            {reinterpret_cast<std::uint8_t*>(cb_slice.data()), cb * dsub * 2});
        const std::int32_t* res = residual.data() + sub * dsub;
        std::uint32_t* lrow = lut.data() + sub * cb;
        for (std::size_t e = 0; e < cb; ++e) {
          const std::int16_t* cw = cb_slice.data() + e * dsub;
          std::uint32_t acc = 0;
          for (std::size_t d = 0; d < dsub; ++d) {
            const std::int32_t diff = res[d] - cw[d];
            const auto a = static_cast<std::uint32_t>(diff < 0 ? -diff : diff);
            acc += a * a;
          }
          lrow[e] = acc;
        }
        // Cost per dimension of each entry: one subtract, one square (square-
        // table lookup, or multiply in the ablation), one accumulate — the
        // paper's "M x 3 - 1 per subvector" accounting — plus one WRAM store
        // per finished entry.
        charge_square_stream(ctx, args.use_square_lut, cb * dsub);
        ctx.charge_adds(cb * 2 * dsub);
        ctx.charge_wram(cb);
      }
    } else {
      // ---- LC (q4): coarse sub-LUTs, folded into per-pair byte LUTs ----
      // Each subquantizer scores against its cb4-entry coarse codebook
      // (shifted into the cluster's residual scale), then pairs of sub-LUTs
      // fold into one 256-entry table so DC scores two subquantizers per
      // byte lookup.
      for (std::size_t sub = 0; sub < m; ++sub) {
        mram_read_chunked(
            ctx, args.codebooks_q4_offset + sub * cb4 * dsub * 2,
            {reinterpret_cast<std::uint8_t*>(cb_slice.data()), cb4 * dsub * 2});
        const std::int32_t* res = residual.data() + sub * dsub;
        std::uint32_t* lrow = lut4.data() + sub * cb4;
        for (std::size_t g = 0; g < cb4; ++g) {
          const std::int16_t* cw = cb_slice.data() + g * dsub;
          std::uint32_t acc = 0;
          for (std::size_t d = 0; d < dsub; ++d) {
            const std::int32_t diff = res[d] - (cw[d] >> shift);
            const auto a = static_cast<std::uint32_t>(diff < 0 ? -diff : diff);
            acc += a * a;
          }
          lrow[g] = acc;
        }
        ctx.charge_cycles(cb4 * dsub);  // per-component codeword shift
        charge_square_stream(ctx, args.use_square_lut, cb4 * dsub);
        ctx.charge_adds(cb4 * 2 * dsub);
        ctx.charge_wram(cb4);
      }
      for (std::size_t p = 0; p < pairs; ++p) {
        std::uint32_t* prow = pair_lut.data() + p * 256;
        const std::uint32_t* lo_row = lut4.data() + (2 * p) * cb4;
        const std::uint32_t* hi_row =
            2 * p + 1 < m ? lut4.data() + (2 * p + 1) * cb4 : nullptr;
        for (std::size_t b = 0; b < 256; ++b) {
          const std::size_t lo = b & 0xF;
          const std::size_t hi = b >> 4;
          std::uint32_t v = lo < cb4 ? lo_row[lo] : 0;
          if (hi_row && hi < cb4) v += hi_row[hi];
          prow[b] = v;
        }
        ctx.charge_adds(256);
        ctx.charge_wram(256);
      }
    }

    // ---- DC + TS: stream codes, accumulate LUT entries, keep top-k ----
    // Block schedule comes from the shared for_each_code_block helper (whole
    // codes per block; packed q4 codes fit twice as many), the same iterator
    // the charge twin bills through.
    const std::size_t code_size = q4 ? args.code_size_q4 : args.code_size;
    const std::size_t codes_base = q4 ? shard.q4_codes_offset : shard.codes_offset;
    WramTopK topk(std::min<std::uint32_t>(args.k, std::max<std::uint32_t>(shard.size, 1)));
    const std::size_t codes_bytes = static_cast<std::size_t>(shard.size) * code_size;
    const std::size_t lookups = q4 ? pairs : m;
    std::uint32_t point = 0;
    for_each_code_block(codes_bytes, code_size, [&](std::size_t block_off,
                                                    std::size_t block_bytes) {
      ctx.set_phase(Phase::DC);
      ctx.mram_read(codes_base + block_off, {code_block.data(), block_bytes});
      const std::size_t points_in_block = block_bytes / code_size;

      for (std::size_t i = 0; i < points_in_block; ++i, ++point) {
        // Tombstoned entries are skipped before the top-k push: a dead point
        // can never evict a live candidate, so the surviving (dist, id)
        // stream equals a cold rebuild of the live set.
        if (shard.dead && shard.dead[shard.begin + point]) continue;
        const std::uint8_t* code = code_block.data() + i * code_size;
        std::uint32_t dist = 0;
        if (q4) {
          for (std::size_t p = 0; p < pairs; ++p) {
            dist += pair_lut[p * 256 + code[p]];
          }
        } else {
          for (std::size_t sub = 0; sub < m; ++sub) {
            std::uint32_t entry;
            if (args.wide_codes) {
              std::uint16_t v = 0;
              std::memcpy(&v, code + sub * 2, 2);
              entry = v;
            } else {
              entry = code[sub];
            }
            dist += lut[sub * cb + entry];
          }
        }
        topk.push(dist, point);
      }
      // Per point: one LUT load per (paired) lookup + the accumulate adds.
      ctx.charge_lut_lookups(points_in_block * lookups);
      ctx.charge_adds(points_in_block * (lookups - 1));
    });
    if (shard.dead) {
      // Liveness flags stream alongside the codes (one byte per point) and
      // cost one compare each. Billed only when the cluster actually has
      // tombstones, so read-only runs charge nothing extra.
      ctx.set_phase(Phase::DC);
      charge_read_chunked(ctx, shard.size);
      ctx.charge_cmps(shard.size);
    }
    // TS: amortized heap maintenance at this task's effective depth.
    ctx.set_phase(Phase::TS);
    ctx.charge_cycles(amortized_topk_cycles(ctx.config().costs, point,
                                            std::min<std::uint32_t>(
                                                args.k, std::max<std::uint32_t>(shard.size, 1))));

    // Resolve winners' base-point ids from the shard's id table, then write
    // the task result row to MRAM. Q4 tasks skip the per-winner id reads and
    // emit LOCAL shard indices — the host rerank resolves ids while it
    // re-scores the candidates exactly.
    ctx.set_phase(Phase::AUX);
    std::vector<KernelHit> hits = topk.sorted();
    if (!q4) {
      for (KernelHit& h : hits) {
        ctx.mram_read(shard.ids_offset + h.id * sizeof(std::uint32_t),
                      {id_buf.data(), sizeof(std::uint32_t)});
        std::uint32_t global_id = 0;
        std::memcpy(&global_id, id_buf.data(), sizeof(global_id));
        h.id = global_id;
      }
    }
    hits.resize(args.k, KernelHit{});  // sentinel-pad short shards
    ctx.mram_write(args.output_offset + t * args.k * sizeof(KernelHit),
                   {reinterpret_cast<const std::uint8_t*>(hits.data()),
                    args.k * sizeof(KernelHit)});
  }
}

void charge_search_kernel(DpuContext& ctx, const SearchKernelArgs& args,
                          std::span<const ShardRegion> shards,
                          std::span<const KernelTask> tasks) {
  const std::size_t dim = args.dim;
  const std::size_t m = args.m;
  const std::size_t cb = args.cb;
  const std::size_t dsub = dim / m;
  const DpuInstructionCosts& c = ctx.config().costs;

  // Quantization-ladder geometry (same launch-level condition as the
  // functional kernel: q4 buffers count only when a q4 task is present).
  const std::size_t cb4 = args.cb4;
  const std::size_t pairs = args.has_q4 ? (m + 1) / 2 : 0;
  bool any_q4 = false;
  if (args.has_q4) {
    for (const KernelTask& t : tasks) any_q4 = any_q4 || task_is_q4(t);
  }

  // Same WRAM working-set accounting as run_search_kernel.
  const std::size_t sq_lut_bytes =
      args.use_square_lut ? (args.sq_lut_max_abs + 1) * sizeof(std::uint32_t) : 0;
  const std::size_t wram_bytes =
      dim * 2 + dim * 2 + dim * 4 + m * cb * 4 +
      std::min(cb * dsub * 2, kMaxDmaBytes * 2) + kMaxDmaBytes + sq_lut_bytes +
      args.k * sizeof(KernelHit) +
      (any_q4 ? m * cb4 * 4 + pairs * 256 * 4 : 0);
  check_wram_budget(ctx.config(), wram_bytes);

  ctx.set_phase(Phase::AUX);
  ctx.charge_cycles(tasks.size() * 4);  // task decode / loop control
  ctx.charge_mram_read(tasks.size() * sizeof(KernelTask));

  for (const KernelTask& task : tasks) {
    const ShardRegion& shard = shards[task.shard_slot];
    const std::uint64_t points = shard.size;
    const bool q4 = args.has_q4 && task_is_q4(task);

    // RC: query + centroid reads, residual arithmetic (+ the q4 rung's
    // per-component residual shift).
    ctx.set_phase(Phase::RC);
    ctx.charge_mram_read(dim * 2);
    ctx.charge_mram_read(dim * 2);
    ctx.charge_adds(dim);
    ctx.charge_wram(dim * 3);
    if (q4) ctx.charge_cycles(dim);

    // LC: per subquantizer, one chunked codebook-slice fetch plus the
    // per-entry square/accumulate/store stream (same shared policy helpers
    // as run_search_kernel — see the header note). The q4 rung fetches the
    // cb4-entry coarse books, shifts each codeword component, then folds
    // sub-LUT pairs into 256-entry byte LUTs.
    ctx.set_phase(Phase::LC);
    if (!q4) {
      for (std::size_t sub = 0; sub < m; ++sub) {
        charge_read_chunked(ctx, cb * dsub * 2);
        charge_square_stream(ctx, args.use_square_lut, cb * dsub);
        ctx.charge_adds(cb * 2 * dsub);
        ctx.charge_wram(cb);
      }
    } else {
      for (std::size_t sub = 0; sub < m; ++sub) {
        charge_read_chunked(ctx, cb4 * dsub * 2);
        ctx.charge_cycles(cb4 * dsub);  // per-component codeword shift
        charge_square_stream(ctx, args.use_square_lut, cb4 * dsub);
        ctx.charge_adds(cb4 * 2 * dsub);
        ctx.charge_wram(cb4);
      }
      for (std::size_t p = 0; p < pairs; ++p) {
        ctx.charge_adds(256);
        ctx.charge_wram(256);
      }
    }

    // DC: stream whole codes per block, ADC-sum each point. The q4 rung
    // streams the packed codes — half the bytes, twice the codes per DMA —
    // and pays one paired lookup per code byte. The block schedule is the
    // shared for_each_code_block iterator, so transfer count and sizes are
    // the functional kernel's by construction.
    ctx.set_phase(Phase::DC);
    const std::size_t code_size = q4 ? args.code_size_q4 : args.code_size;
    const std::size_t codes_bytes = static_cast<std::size_t>(points) * code_size;
    const std::size_t lookups = q4 ? pairs : m;
    for_each_code_block(codes_bytes, code_size, [&](std::size_t,
                                                    std::size_t block_bytes) {
      ctx.charge_mram_read(block_bytes);
      const std::size_t points_in_block = block_bytes / code_size;
      ctx.charge_lut_lookups(points_in_block * lookups);
      ctx.charge_adds(points_in_block * (lookups - 1));
    });
    if (shard.dead) {
      // Same liveness flag-stream DMA + per-point compare as the functional
      // kernel bills under tombstones.
      charge_read_chunked(ctx, shard.size);
      ctx.charge_cmps(shard.size);
    }

    // TS: amortized heap maintenance at this task's effective depth.
    ctx.set_phase(Phase::TS);
    const std::uint32_t kk =
        std::min<std::uint32_t>(args.k, std::max<std::uint32_t>(shard.size, 1));
    ctx.charge_cycles(amortized_topk_cycles(c, points, kk));

    // AUX: resolve winners' ids (one 4-byte read each — skipped on the q4
    // rung, which emits local indices for the host rerank), write the
    // padded row. Only live points can win, so the winner count follows
    // the live total.
    ctx.set_phase(Phase::AUX);
    if (!q4) {
      const std::uint64_t hits = std::min<std::uint64_t>(args.k, shard_live_points(shard));
      for (std::uint64_t h = 0; h < hits; ++h) {
        ctx.charge_mram_read(sizeof(std::uint32_t));
      }
    }
    ctx.charge_mram_write(args.k * sizeof(KernelHit));
  }
}

std::vector<FusedTaskGroup> plan_task_fusion(std::span<const KernelTask> tasks,
                                             std::size_t fuse_width) {
  const std::size_t width = std::max<std::size_t>(fuse_width, 1);
  std::vector<FusedTaskGroup> groups;
  // Open group per (shard_slot, rung); the map is only ever point-queried, so
  // its iteration order never influences the (deterministic) group order.
  std::unordered_map<std::uint64_t, std::size_t> open;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const bool q4 = task_is_q4(tasks[t]);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(tasks[t].shard_slot) << 1) | (q4 ? 1u : 0u);
    const auto it = open.find(key);
    if (it != open.end() && groups[it->second].tasks.size() < width) {
      groups[it->second].tasks.push_back(static_cast<std::uint32_t>(t));
      continue;
    }
    if (it != open.end()) it->second = groups.size();
    else open.emplace(key, groups.size());
    FusedTaskGroup g;
    g.shard_slot = tasks[t].shard_slot;
    g.q4 = q4;
    g.tasks.push_back(static_cast<std::uint32_t>(t));
    groups.push_back(std::move(g));
  }
  return groups;
}

std::size_t fused_search_wram_bytes(const SearchKernelArgs& args,
                                    std::size_t full_width, std::size_t q4_width) {
  const std::size_t dim = args.dim;
  const std::size_t m = args.m;
  const std::size_t cb = args.cb;
  const std::size_t dsub = m > 0 ? dim / m : 0;
  const std::size_t pairs = (m + 1) / 2;
  const std::size_t sq_lut_bytes =
      args.use_square_lut ? (args.sq_lut_max_abs + 1) * sizeof(std::uint32_t) : 0;
  // One LUT slab row per full-rung member (the slab keeps the per-task
  // kernel's single row even in an all-q4 launch, mirroring its accounting),
  // one shared lut4 scratch plus a pair-LUT row per q4 member, and one
  // k-entry heap per member of the widest group. Everything else — query /
  // centroid / residual scratch, one codebook slice, ONE code block, the
  // square table — is group-shared.
  const std::size_t heap_width =
      std::max<std::size_t>(std::max(full_width, q4_width), 1);
  std::size_t bytes = dim * 2 + dim * 2 + dim * 4 +
                      std::max<std::size_t>(full_width, 1) * m * cb * 4 +
                      std::min(cb * dsub * 2, kMaxDmaBytes * 2) + kMaxDmaBytes +
                      sq_lut_bytes + heap_width * args.k * sizeof(KernelHit);
  if (q4_width > 0) bytes += m * args.cb4 * 4 + q4_width * pairs * 256 * 4;
  return bytes;
}

void run_fused_search_kernel(DpuContext& ctx, const SearchKernelArgs& args,
                             std::span<const ShardRegion> shards,
                             std::span<const KernelTask> tasks,
                             std::span<const FusedTaskGroup> groups) {
  const std::size_t dim = args.dim;
  const std::size_t m = args.m;
  const std::size_t cb = args.cb;
  const std::size_t dsub = dim / m;
  const std::size_t cb4 = args.cb4;
  const std::size_t pairs = args.has_q4 ? (m + 1) / 2 : 0;

  std::size_t full_width = 0;
  std::size_t q4_width = 0;
  for (const FusedTaskGroup& g : groups) {
    if (g.q4 && args.has_q4) q4_width = std::max(q4_width, g.tasks.size());
    else full_width = std::max(full_width, g.tasks.size());
  }

  // ---- WRAM working set (checked against the 64 KB budget) ----
  check_wram_budget(ctx.config(), fused_search_wram_bytes(args, full_width, q4_width));
  std::vector<std::int16_t> query(dim);
  std::vector<std::int16_t> centroid(dim);
  std::vector<std::int32_t> residual(dim);
  std::vector<std::uint32_t> lut(std::max<std::size_t>(full_width, 1) * m * cb);
  std::vector<std::int16_t> cb_slice(cb * dsub);
  std::vector<std::uint8_t> code_block(kMaxDmaBytes);
  std::vector<std::uint8_t> id_buf(sizeof(std::uint32_t));
  std::vector<std::uint32_t> lut4(q4_width > 0 ? m * cb4 : 0);
  std::vector<std::uint32_t> pair_lut(q4_width > 0 ? q4_width * pairs * 256 : 0);

  // Task list AND the fused-group descriptor table both arrive by DMA (the
  // host ships the plan; the kernel never re-derives it).
  ctx.set_phase(Phase::AUX);
  ctx.charge_cycles(tasks.size() * 4);  // task decode / loop control
  ctx.charge_mram_read(tasks.size() * sizeof(KernelTask));
  ctx.charge_cycles(groups.size() * 4);  // group decode / loop control
  ctx.charge_mram_read(groups.size() * sizeof(KernelTask));

  for (const FusedTaskGroup& group : groups) {
    const ShardRegion& shard = shards[group.shard_slot];
    const bool q4 = args.has_q4 && group.q4;
    const std::uint32_t shift = q4 ? shard.q4_shift : 0;
    const std::size_t width = group.tasks.size();

    // ---- RC + LC per member: the centroid is group-shared (read once);
    // each member reads its own query, forms its residual, and builds its
    // own LUT slab row with exactly the per-task kernel's charges. ----
    ctx.set_phase(Phase::RC);
    ctx.mram_read_t<std::int16_t>(args.centroids_offset + shard.cluster * dim * 2,
                                  std::span<std::int16_t>(centroid));
    for (std::size_t g = 0; g < width; ++g) {
      const KernelTask& task = tasks[group.tasks[g]];
      ctx.set_phase(Phase::RC);
      ctx.mram_read_t<std::int16_t>(
          args.queries_offset + task_query_slot(task) * dim * 2,
          std::span<std::int16_t>(query));
      for (std::size_t d = 0; d < dim; ++d) {
        residual[d] = static_cast<std::int32_t>(query[d]) - centroid[d];
      }
      ctx.charge_adds(dim);
      ctx.charge_wram(dim * 3);
      if (q4) {
        for (std::size_t d = 0; d < dim; ++d) residual[d] >>= shift;
        ctx.charge_cycles(dim);
      }

      ctx.set_phase(Phase::LC);
      if (!q4) {
        std::uint32_t* lut_g = lut.data() + g * m * cb;
        for (std::size_t sub = 0; sub < m; ++sub) {
          mram_read_chunked(
              ctx, args.codebooks_offset + sub * cb * dsub * 2,
              {reinterpret_cast<std::uint8_t*>(cb_slice.data()), cb * dsub * 2});
          const std::int32_t* res = residual.data() + sub * dsub;
          std::uint32_t* lrow = lut_g + sub * cb;
          for (std::size_t e = 0; e < cb; ++e) {
            const std::int16_t* cw = cb_slice.data() + e * dsub;
            std::uint32_t acc = 0;
            for (std::size_t d = 0; d < dsub; ++d) {
              const std::int32_t diff = res[d] - cw[d];
              const auto a = static_cast<std::uint32_t>(diff < 0 ? -diff : diff);
              acc += a * a;
            }
            lrow[e] = acc;
          }
          charge_square_stream(ctx, args.use_square_lut, cb * dsub);
          ctx.charge_adds(cb * 2 * dsub);
          ctx.charge_wram(cb);
        }
      } else {
        // Coarse sub-LUTs into the shared lut4 scratch, folded into this
        // member's 256-entry pair-LUT slab row.
        for (std::size_t sub = 0; sub < m; ++sub) {
          mram_read_chunked(
              ctx, args.codebooks_q4_offset + sub * cb4 * dsub * 2,
              {reinterpret_cast<std::uint8_t*>(cb_slice.data()), cb4 * dsub * 2});
          const std::int32_t* res = residual.data() + sub * dsub;
          std::uint32_t* lrow = lut4.data() + sub * cb4;
          for (std::size_t e = 0; e < cb4; ++e) {
            const std::int16_t* cw = cb_slice.data() + e * dsub;
            std::uint32_t acc = 0;
            for (std::size_t d = 0; d < dsub; ++d) {
              const std::int32_t diff = res[d] - (cw[d] >> shift);
              const auto a = static_cast<std::uint32_t>(diff < 0 ? -diff : diff);
              acc += a * a;
            }
            lrow[e] = acc;
          }
          ctx.charge_cycles(cb4 * dsub);  // per-component codeword shift
          charge_square_stream(ctx, args.use_square_lut, cb4 * dsub);
          ctx.charge_adds(cb4 * 2 * dsub);
          ctx.charge_wram(cb4);
        }
        std::uint32_t* pair_g = pair_lut.data() + g * pairs * 256;
        for (std::size_t p = 0; p < pairs; ++p) {
          std::uint32_t* prow = pair_g + p * 256;
          const std::uint32_t* lo_row = lut4.data() + (2 * p) * cb4;
          const std::uint32_t* hi_row =
              2 * p + 1 < m ? lut4.data() + (2 * p + 1) * cb4 : nullptr;
          for (std::size_t b = 0; b < 256; ++b) {
            const std::size_t lo = b & 0xF;
            const std::size_t hi = b >> 4;
            std::uint32_t v = lo < cb4 ? lo_row[lo] : 0;
            if (hi_row && hi < cb4) v += hi_row[hi];
            prow[b] = v;
          }
          ctx.charge_adds(256);
          ctx.charge_wram(256);
        }
      }
    }

    // ---- DC: stream the shard's codes ONCE, scoring every member's LUT
    // against each block before advancing. Per-point compute (lookups +
    // accumulate adds) is billed per member — only the DMA is amortized. ----
    const std::size_t code_size = q4 ? args.code_size_q4 : args.code_size;
    const std::size_t codes_base = q4 ? shard.q4_codes_offset : shard.codes_offset;
    const std::uint32_t kk =
        std::min<std::uint32_t>(args.k, std::max<std::uint32_t>(shard.size, 1));
    std::vector<WramTopK> heaps;
    heaps.reserve(width);
    for (std::size_t g = 0; g < width; ++g) heaps.emplace_back(kk);
    const std::size_t codes_bytes = static_cast<std::size_t>(shard.size) * code_size;
    const std::size_t lookups = q4 ? pairs : m;
    std::uint32_t point = 0;
    for_each_code_block(codes_bytes, code_size, [&](std::size_t block_off,
                                                    std::size_t block_bytes) {
      ctx.set_phase(Phase::DC);
      ctx.mram_read(codes_base + block_off, {code_block.data(), block_bytes});
      const std::size_t points_in_block = block_bytes / code_size;
      for (std::size_t i = 0; i < points_in_block; ++i, ++point) {
        // The liveness skip is group-shared: one check covers all members.
        if (shard.dead && shard.dead[shard.begin + point]) continue;
        const std::uint8_t* code = code_block.data() + i * code_size;
        for (std::size_t g = 0; g < width; ++g) {
          std::uint32_t dist = 0;
          if (q4) {
            const std::uint32_t* pair_g = pair_lut.data() + g * pairs * 256;
            for (std::size_t p = 0; p < pairs; ++p) {
              dist += pair_g[p * 256 + code[p]];
            }
          } else {
            const std::uint32_t* lut_g = lut.data() + g * m * cb;
            for (std::size_t sub = 0; sub < m; ++sub) {
              std::uint32_t entry;
              if (args.wide_codes) {
                std::uint16_t v = 0;
                std::memcpy(&v, code + sub * 2, 2);
                entry = v;
              } else {
                entry = code[sub];
              }
              dist += lut_g[sub * cb + entry];
            }
          }
          heaps[g].push(dist, point);
        }
      }
      ctx.charge_lut_lookups(points_in_block * lookups * width);
      ctx.charge_adds(points_in_block * (lookups - 1) * width);
    });
    if (shard.dead) {
      // Flags stream once per GROUP (the skip decision is shared), so fusion
      // amortizes the tombstone stream and its per-point compare too.
      ctx.set_phase(Phase::DC);
      charge_read_chunked(ctx, shard.size);
      ctx.charge_cmps(shard.size);
    }

    // ---- TS + AUX per member, each at its task's ORIGINAL output row ----
    for (std::size_t g = 0; g < width; ++g) {
      ctx.set_phase(Phase::TS);
      ctx.charge_cycles(amortized_topk_cycles(ctx.config().costs, point, kk));

      ctx.set_phase(Phase::AUX);
      std::vector<KernelHit> hits = heaps[g].sorted();
      if (!q4) {
        for (KernelHit& h : hits) {
          ctx.mram_read(shard.ids_offset + h.id * sizeof(std::uint32_t),
                        {id_buf.data(), sizeof(std::uint32_t)});
          std::uint32_t global_id = 0;
          std::memcpy(&global_id, id_buf.data(), sizeof(global_id));
          h.id = global_id;
        }
      }
      hits.resize(args.k, KernelHit{});  // sentinel-pad short shards
      ctx.mram_write(
          args.output_offset + group.tasks[g] * args.k * sizeof(KernelHit),
          {reinterpret_cast<const std::uint8_t*>(hits.data()),
           args.k * sizeof(KernelHit)});
    }
  }
}

void charge_fused_search_kernel(DpuContext& ctx, const SearchKernelArgs& args,
                                std::span<const ShardRegion> shards,
                                std::span<const KernelTask> tasks,
                                std::span<const FusedTaskGroup> groups) {
  const std::size_t dim = args.dim;
  const std::size_t m = args.m;
  const std::size_t cb = args.cb;
  const std::size_t dsub = dim / m;
  const std::size_t cb4 = args.cb4;
  const std::size_t pairs = args.has_q4 ? (m + 1) / 2 : 0;
  const DpuInstructionCosts& c = ctx.config().costs;

  std::size_t full_width = 0;
  std::size_t q4_width = 0;
  for (const FusedTaskGroup& g : groups) {
    if (g.q4 && args.has_q4) q4_width = std::max(q4_width, g.tasks.size());
    else full_width = std::max(full_width, g.tasks.size());
  }

  // Same WRAM working-set accounting as run_fused_search_kernel (the shared
  // helper IS the accounting on both sides).
  check_wram_budget(ctx.config(), fused_search_wram_bytes(args, full_width, q4_width));

  ctx.set_phase(Phase::AUX);
  ctx.charge_cycles(tasks.size() * 4);  // task decode / loop control
  ctx.charge_mram_read(tasks.size() * sizeof(KernelTask));
  ctx.charge_cycles(groups.size() * 4);  // group decode / loop control
  ctx.charge_mram_read(groups.size() * sizeof(KernelTask));

  for (const FusedTaskGroup& group : groups) {
    const ShardRegion& shard = shards[group.shard_slot];
    const bool q4 = args.has_q4 && group.q4;
    const std::size_t width = group.tasks.size();
    const std::uint64_t points = shard.size;

    // RC + LC per member; the centroid read is group-shared.
    ctx.set_phase(Phase::RC);
    ctx.charge_mram_read(dim * 2);  // centroid, once per group
    for (std::size_t g = 0; g < width; ++g) {
      ctx.set_phase(Phase::RC);
      ctx.charge_mram_read(dim * 2);  // member query
      ctx.charge_adds(dim);
      ctx.charge_wram(dim * 3);
      if (q4) ctx.charge_cycles(dim);

      ctx.set_phase(Phase::LC);
      if (!q4) {
        for (std::size_t sub = 0; sub < m; ++sub) {
          charge_read_chunked(ctx, cb * dsub * 2);
          charge_square_stream(ctx, args.use_square_lut, cb * dsub);
          ctx.charge_adds(cb * 2 * dsub);
          ctx.charge_wram(cb);
        }
      } else {
        for (std::size_t sub = 0; sub < m; ++sub) {
          charge_read_chunked(ctx, cb4 * dsub * 2);
          ctx.charge_cycles(cb4 * dsub);  // per-component codeword shift
          charge_square_stream(ctx, args.use_square_lut, cb4 * dsub);
          ctx.charge_adds(cb4 * 2 * dsub);
          ctx.charge_wram(cb4);
        }
        for (std::size_t p = 0; p < pairs; ++p) {
          ctx.charge_adds(256);
          ctx.charge_wram(256);
        }
      }
    }

    // DC: ONE code stream per group; per-point compute billed per member.
    ctx.set_phase(Phase::DC);
    const std::size_t code_size = q4 ? args.code_size_q4 : args.code_size;
    const std::size_t codes_bytes = static_cast<std::size_t>(points) * code_size;
    const std::size_t lookups = q4 ? pairs : m;
    for_each_code_block(codes_bytes, code_size, [&](std::size_t,
                                                    std::size_t block_bytes) {
      ctx.charge_mram_read(block_bytes);
      const std::size_t points_in_block = block_bytes / code_size;
      ctx.charge_lut_lookups(points_in_block * lookups * width);
      ctx.charge_adds(points_in_block * (lookups - 1) * width);
    });
    if (shard.dead) {
      charge_read_chunked(ctx, shard.size);
      ctx.charge_cmps(shard.size);
    }

    // TS + AUX per member.
    const std::uint32_t kk =
        std::min<std::uint32_t>(args.k, std::max<std::uint32_t>(shard.size, 1));
    for (std::size_t g = 0; g < width; ++g) {
      ctx.set_phase(Phase::TS);
      ctx.charge_cycles(amortized_topk_cycles(c, points, kk));

      ctx.set_phase(Phase::AUX);
      if (!q4) {
        const std::uint64_t hits =
            std::min<std::uint64_t>(args.k, shard_live_points(shard));
        for (std::uint64_t h = 0; h < hits; ++h) {
          ctx.charge_mram_read(sizeof(std::uint32_t));
        }
      }
      ctx.charge_mram_write(args.k * sizeof(KernelHit));
    }
  }
}

void charge_cl_kernel(DpuContext& ctx, const ClKernelArgs& args) {
  const std::size_t dim = args.dim;
  if (args.num_queries == 0 || args.centroid_count == 0) return;
  const DpuInstructionCosts& c = ctx.config().costs;

  const std::size_t wram =
      dim * 2 + dim * 2 + args.nprobe * sizeof(KernelHit) +
      (args.use_square_lut ? (args.sq_lut_max_abs + 1) * sizeof(std::uint32_t) : 0);
  check_wram_budget(ctx.config(), wram);

  ctx.set_phase(Phase::CL);
  const std::uint64_t nq = args.num_queries;
  const std::uint64_t cnt = args.centroid_count;
  for (std::uint64_t q = 0; q < nq; ++q) {
    ctx.charge_mram_read(dim * 2);
    for (std::uint64_t i = 0; i < cnt; ++i) ctx.charge_mram_read(dim * 2);
    charge_square_stream(ctx, args.use_square_lut, cnt * dim);
    ctx.charge_adds(cnt * 2 * dim);
    ctx.charge_cycles(amortized_topk_cycles(c, cnt, args.nprobe));
    ctx.charge_mram_write(args.nprobe * sizeof(KernelHit));
  }
}

}  // namespace drim
