#include "drim/layout.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace drim {

std::vector<double> estimate_heat(const IvfPqIndex& index, const FloatMatrix& sample_queries,
                                  std::size_t nprobe) {
  std::vector<double> heat(index.nlist(), 0.0);
  for (std::size_t q = 0; q < sample_queries.count(); ++q) {
    for (std::uint32_t c : index.locate_clusters(sample_queries.row(q), nprobe)) {
      heat[c] += 1.0;
    }
  }
  // Laplace smoothing: unseen clusters still carry their size-proportional
  // base cost so the allocator does not pile them all on one DPU.
  for (auto& h : heat) h += 0.5;
  return heat;
}

DataLayout::DataLayout(const PimIndexData& data, std::size_t num_dpus,
                       const std::vector<double>& cluster_heat, const LayoutParams& params)
    : num_dpus_(num_dpus), params_(params) {
  assert(num_dpus > 0);
  assert(cluster_heat.size() == data.nlist());
  const std::size_t nlist = data.nlist();
  if (!params.owned_clusters.empty() && params.owned_clusters.size() != nlist) {
    throw std::invalid_argument(
        "LayoutParams::owned_clusters must be empty or have one entry per "
        "cluster (nlist = " + std::to_string(nlist) + ", mask has " +
        std::to_string(params.owned_clusters.size()) + ")");
  }
  auto owned = [&](std::uint32_t c) {
    return params.owned_clusters.empty() || params.owned_clusters[c] != 0;
  };
  cluster_slices_.resize(nlist);

  struct PendingShard {
    std::uint32_t cluster, begin, end, replica, slice;
    double heat;  // expected per-batch cost contribution
  };
  std::vector<PendingShard> pending;

  // Rank duplication victims by expected load — heat x per-visit cost — not
  // raw heat: a rarely-duplicated giant cluster otherwise pins its DPU even
  // when mid-sized clusters are accessed more often. (The paper ranks by
  // access frequency and notes size correlates with it; expected load is
  // the quantity both signals proxy.)
  auto expected_load = [&](std::uint32_t c) {
    return cluster_heat[c] *
           (params.lut_cost_points + static_cast<double>(data.cluster_size(c)));
  };
  std::vector<std::uint32_t> by_heat;
  by_heat.reserve(nlist);
  for (std::uint32_t c = 0; c < nlist; ++c) {
    if (owned(c)) by_heat.push_back(c);
  }
  std::sort(by_heat.begin(), by_heat.end(), [&](std::uint32_t a, std::uint32_t b) {
    return expected_load(a) > expected_load(b);
  });
  const std::size_t num_hot = params.enable_duplicate
      ? static_cast<std::size_t>(static_cast<double>(by_heat.size()) * params.dup_fraction)
      : 0;
  std::vector<std::uint8_t> is_hot(nlist, 0);
  for (std::size_t i = 0; i < num_hot; ++i) is_hot[by_heat[i]] = 1;

  // ---- Data Partition + Data Duplication: enumerate shards ----
  for (std::uint32_t c = 0; c < nlist; ++c) {
    if (!owned(c)) continue;  // unowned clusters keep empty slice_groups
    const auto size = static_cast<std::uint32_t>(data.cluster_size(c));
    const std::uint32_t threshold =
        params.enable_split ? static_cast<std::uint32_t>(params.split_threshold)
                            : std::max<std::uint32_t>(size, 1);
    const std::uint32_t num_slices =
        size == 0 ? 0 : (size + threshold - 1) / threshold;
    cluster_slices_[c].resize(num_slices);

    const std::uint32_t replicas =
        1 + (is_hot[c] ? static_cast<std::uint32_t>(params.dup_copies) : 0);
    for (std::uint32_t s = 0; s < num_slices; ++s) {
      const std::uint32_t begin = s * threshold;
      const std::uint32_t end = std::min(size, begin + threshold);
      for (std::uint32_t r = 0; r < replicas; ++r) {
        // A replica splits the cluster's expected traffic; a slice carries a
        // size-proportional share of scan cost plus one full LUT build.
        const double visit_share = cluster_heat[c] / static_cast<double>(replicas);
        const double cost =
            visit_share * (params.lut_cost_points + static_cast<double>(end - begin));
        pending.push_back({c, begin, end, r, s, cost});
      }
    }
  }

  dpu_shards_.resize(num_dpus);
  shards_.reserve(pending.size());
  shard_heat_.reserve(pending.size());

  auto place = [&](const PendingShard& p, std::uint32_t dpu) {
    Shard sh;
    sh.cluster = p.cluster;
    sh.begin = p.begin;
    sh.end = p.end;
    sh.replica = p.replica;
    sh.dpu = dpu;
    sh.id = static_cast<std::uint32_t>(shards_.size());
    cluster_slices_[p.cluster][p.slice].push_back(sh.id);
    dpu_shards_[dpu].push_back(sh.id);
    shards_.push_back(sh);
    shard_heat_.push_back(p.heat);
  };

  // ---- Data Allocation ----
  if (params.heat_allocation) {
    // Greedy: heaviest shard first onto the coolest DPU, never co-locating
    // two replicas of the same slice (that would defeat duplication).
    std::vector<std::size_t> order(pending.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return pending[a].heat > pending[b].heat;
    });
    std::vector<double> load(num_dpus, 0.0);
    // (cluster, slice) -> DPUs already holding a replica of that slice.
    std::vector<std::vector<std::vector<std::uint32_t>>> placed(nlist);
    for (std::uint32_t c = 0; c < nlist; ++c) {
      placed[c].resize(cluster_slices_[c].size());
    }
    for (std::size_t idx : order) {
      const PendingShard& p = pending[idx];
      auto& taken = placed[p.cluster][p.slice];
      std::uint32_t best = num_dpus_ > taken.size() ? 0 : taken.front();
      double best_load = 1e300;
      for (std::uint32_t dpu = 0; dpu < num_dpus; ++dpu) {
        const bool conflict =
            num_dpus > taken.size() &&
            std::find(taken.begin(), taken.end(), dpu) != taken.end();
        if (conflict) continue;
        if (load[dpu] < best_load) {
          best_load = load[dpu];
          best = dpu;
        }
      }
      load[best] += p.heat;
      taken.push_back(best);
      place(p, best);
    }
  } else {
    // Paper baseline: place shards in cluster-ID order, filling DPUs evenly
    // by shard count.
    std::size_t next = 0;
    for (const PendingShard& p : pending) {
      place(p, static_cast<std::uint32_t>(next % num_dpus));
      ++next;
    }
  }
}

double DataLayout::duplication_bytes_per_dpu(const PimIndexData& data) const {
  double extra = 0.0;
  for (const Shard& sh : shards_) {
    if (sh.replica == 0) continue;
    extra += static_cast<double>(sh.size()) *
             (static_cast<double>(data.code_size()) + sizeof(std::uint32_t));
  }
  return extra / static_cast<double>(num_dpus_);
}

std::vector<double> DataLayout::dpu_heat() const {
  std::vector<double> heat(num_dpus_, 0.0);
  for (const Shard& sh : shards_) heat[sh.dpu] += shard_heat_[sh.id];
  return heat;
}

}  // namespace drim
