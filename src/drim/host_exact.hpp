#pragma once
// Host-side bit-exact replay of the DPU kernels' integer pipeline. The
// analytic platform never materializes MRAM, so it cannot run the functional
// kernels; instead the engine computes each scheduled task's results here —
// same int16 operands, same uint32 wraparound arithmetic, same (distance,
// local index) tie-breaking — and uses the platform only for cycle/transfer
// billing. Results are therefore identical to the functional simulator's
// (pinned by tests/test_platforms.cpp) while recall stays real at paper
// scale.

#include <cstdint>
#include <span>
#include <vector>

#include "drim/kernels.hpp"
#include "drim/layout.hpp"
#include "drim/pim_index.hpp"

namespace drim {

/// Exact hits of one search task (query x shard): ascending (distance, local
/// index) under the kernel's total order, winners' global base-point ids
/// resolved, sentinel-padded to k entries — byte-for-byte what
/// run_search_kernel writes for the task. Writes straight into the caller's
/// k-entry output row (the engine's collect path hands each task its slice
/// of the pulled block, so the hot loop allocates nothing per task).
/// `dead`, when non-null, holds the cluster's positional tombstone flags
/// (indexed by shard.begin + local point, exactly the kernel's ShardRegion
/// view): dead entries are skipped before the bounded top-k, so they never
/// surface and never evict live candidates — the replay stays byte-for-byte
/// equal to the functional kernel under the same snapshot.
void host_search_task_into(const PimIndexData& data,
                           std::span<const std::int16_t> query, const Shard& shard,
                           std::uint32_t k, std::span<KernelHit> out,
                           const std::uint8_t* dead = nullptr);

/// Allocating convenience wrapper around host_search_task_into().
std::vector<KernelHit> host_search_task(const PimIndexData& data,
                                        std::span<const std::int16_t> query,
                                        const Shard& shard, std::uint32_t k,
                                        const std::uint8_t* dead = nullptr);

/// One member of a coalesced (cluster-major) host scan: a quantized query
/// (dim int16 values) paired with its k-entry output row.
struct HostFusedTask {
  const std::int16_t* query = nullptr;
  KernelHit* out = nullptr;
};

/// Coalesced replay of `tasks.size()` search tasks that all scan the SAME
/// shard: builds every member's LUT, then walks the shard's codes in
/// cache-sized tiles, scoring each tile against all members before
/// advancing — the shard's code block is pulled once per batch instead of
/// once per query (DESIGN.md §16). Each member keeps its own LUT, bounded
/// top-k, and ascending point order, so every output row is byte-identical
/// to the corresponding single-task host_search_task_into /
/// host_search_task_q4_into call. `q4` selects the rung for ALL members
/// (callers group by (shard, rung)); q4 rows keep LOCAL indices, exactly
/// like the single-task q4 replay.
void host_search_tasks_fused_into(const PimIndexData& data,
                                  std::span<const HostFusedTask> tasks,
                                  const Shard& shard, std::uint32_t k, bool q4,
                                  const std::uint8_t* dead = nullptr);

/// Build the full-precision exact ADC table for (query, cluster): the RC +
/// LC front end of host_search_task_into, factored out so the q4 rerank tail
/// prices candidates with the identical integer pipeline. `lut` must hold
/// m * cb_entries uint32 values.
void host_build_adc_lut(const PimIndexData& data,
                        std::span<const std::int16_t> query,
                        std::uint32_t cluster, std::span<std::uint32_t> lut);

/// Bit-exact replay of the 4-bit rung of run_search_kernel for one task:
/// shifted residual, coarse cb4-entry sub-LUTs, packed dual-nibble code
/// scan. Output rows carry LOCAL shard indices (the kernel skips id
/// resolution on this rung); host_rerank_q4_row turns them into final
/// (exact distance, global id) rows. Requires data.has_q4().
void host_search_task_q4_into(const PimIndexData& data,
                              std::span<const std::int16_t> query,
                              const Shard& shard, std::uint32_t k,
                              std::span<KernelHit> out,
                              const std::uint8_t* dead = nullptr);

/// The q4 rung's exact-rerank tail: re-score a q4 result row's local-index
/// candidates with the full-precision ADC table, resolve global base-point
/// ids, and rewrite the row ascending by (exact distance, id), sentinel-
/// padded. The row becomes directly mergeable with full-rung rows.
void host_rerank_q4_row(const PimIndexData& data,
                        std::span<const std::int16_t> query, const Shard& shard,
                        std::span<KernelHit> row);

/// host_rerank_q4_row with a caller-provided full-precision ADC table for
/// (query, shard.cluster) — `lut` must be host_build_adc_lut's output for
/// that pair. Lets batch collect paths rebuild the table once per
/// (query, cluster) instead of once per row; rows are rescored
/// independently, so results are byte-identical to the rebuilding variant.
void host_rerank_q4_row_with_lut(const PimIndexData& data,
                                 std::span<const std::uint32_t> lut,
                                 const Shard& shard, std::span<KernelHit> row);

/// Exact per-DPU CL candidates of one query over the centroid range
/// [centroid_begin, centroid_begin + centroid_count): top-`keep` by
/// (distance, global centroid id), sentinel-padded to keep — what
/// run_cl_kernel writes for the query's output row. Writes into the caller's
/// keep-entry output row.
void host_cl_candidates_into(const PimIndexData& data,
                             std::span<const std::int16_t> query,
                             std::uint32_t centroid_begin,
                             std::uint32_t centroid_count, std::uint32_t keep,
                             std::span<KernelHit> out);

/// Allocating convenience wrapper around host_cl_candidates_into().
std::vector<KernelHit> host_cl_candidates(const PimIndexData& data,
                                          std::span<const std::int16_t> query,
                                          std::uint32_t centroid_begin,
                                          std::uint32_t centroid_count,
                                          std::uint32_t keep);

}  // namespace drim
