#include "drim/scheduler.hpp"

#include <algorithm>
#include <numeric>

namespace drim {

Assignment RuntimeScheduler::schedule(const std::vector<std::vector<std::uint32_t>>& probes,
                                      std::size_t begin, std::size_t end,
                                      const std::vector<Task>& carried,
                                      bool final_batch,
                                      const std::vector<std::uint8_t>* precision) const {
  const std::size_t num_dpus = layout_.num_dpus();
  Assignment out;
  out.per_dpu.resize(num_dpus);
  out.predicted_load.assign(num_dpus, 0.0);

  // Rung of a global query id (nonzero = the cheap 4-bit rung).
  const auto is_q4 = [&](std::uint32_t q) {
    return precision != nullptr && q < precision->size() && (*precision)[q] != 0;
  };

  // Expand (q, c) pairs into slice tasks; carried tasks are already
  // shard-resolved but still re-pick their replica this batch.
  struct Candidate {
    std::uint32_t query;
    const std::vector<std::uint32_t>* replicas;  // shard ids to choose among
    double cost;
  };
  std::vector<Candidate> candidates;

  std::vector<std::vector<std::uint32_t>> carried_groups;  // stable storage
  carried_groups.reserve(carried.size());
  for (const Task& t : carried) {
    const Shard& sh = layout_.shard(t.shard);
    // Re-offer every replica of the deferred slice.
    std::uint32_t slice_idx = 0;
    const auto& groups = layout_.slice_groups(sh.cluster);
    for (std::uint32_t s = 0; s < groups.size(); ++s) {
      if (std::find(groups[s].begin(), groups[s].end(), t.shard) != groups[s].end()) {
        slice_idx = s;
        break;
      }
    }
    candidates.push_back({t.query, &groups[slice_idx], task_cost(sh, is_q4(t.query))});
  }

  for (std::size_t q = begin; q < end; ++q) {
    const bool q4 = is_q4(static_cast<std::uint32_t>(q));
    for (std::uint32_t c : probes[q]) {
      for (const auto& group : layout_.slice_groups(c)) {
        if (group.empty()) continue;
        candidates.push_back({static_cast<std::uint32_t>(q), &group,
                              task_cost(layout_.shard(group.front()), q4)});
      }
    }
  }

  if (params_.policy == SchedulePolicy::kGreedy) {
    // Greedy longest-processing-time: heaviest task first, least-loaded DPU
    // among the replicas holding it.
    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return candidates[a].cost > candidates[b].cost;
    });

    for (std::size_t idx : order) {
      const Candidate& cand = candidates[idx];
      std::uint32_t best_shard = cand.replicas->front();
      double best_load = out.predicted_load[layout_.shard(best_shard).dpu];
      for (std::uint32_t shard_id : *cand.replicas) {
        const double load = out.predicted_load[layout_.shard(shard_id).dpu];
        if (load < best_load) {
          best_load = load;
          best_shard = shard_id;
        }
      }
      const std::uint32_t dpu = layout_.shard(best_shard).dpu;
      out.per_dpu[dpu].push_back({cand.query, best_shard});
      out.predicted_load[dpu] += cand.cost;
    }
  } else {
    // Ablation baseline: rotate through each slice's replicas in arrival
    // order, blind to predicted load.
    std::size_t rr = 0;
    for (const Candidate& cand : candidates) {
      const std::uint32_t shard_id = (*cand.replicas)[rr++ % cand.replicas->size()];
      const std::uint32_t dpu = layout_.shard(shard_id).dpu;
      out.per_dpu[dpu].push_back({cand.query, shard_id});
      out.predicted_load[dpu] += cand.cost;
    }
  }

  // Filter: predicted-slow DPUs hand their cheapest tasks to the next batch
  // ("a DPU that had a long execution time in the previous batch may not
  // necessarily have a long execution time in the next batch").
  if (params_.enable_filter && !final_batch && !candidates.empty()) {
    const double mean_load =
        std::accumulate(out.predicted_load.begin(), out.predicted_load.end(), 0.0) /
        static_cast<double>(num_dpus);
    const double cap = (1.0 + params_.filter_slack) * mean_load;
    for (std::size_t dpu = 0; dpu < num_dpus; ++dpu) {
      auto& tasks = out.per_dpu[dpu];
      // Cheapest tasks leave first so the DPU keeps its big, cache-resident
      // work and the deferral costs the next batch as little as possible.
      std::stable_sort(tasks.begin(), tasks.end(), [&](const Task& a, const Task& b) {
        return task_cost(layout_.shard(a.shard), is_q4(a.query)) >
               task_cost(layout_.shard(b.shard), is_q4(b.query));
      });
      while (out.predicted_load[dpu] > cap && !tasks.empty()) {
        const Task t = tasks.back();
        tasks.pop_back();
        out.predicted_load[dpu] -= task_cost(layout_.shard(t.shard), is_q4(t.query));
        out.deferred.push_back(t);
      }
    }
  }
  return out;
}

}  // namespace drim
