#include "drim/square_lut.hpp"

#include <cassert>
#include <cstdlib>

namespace drim {

SquareLut::SquareLut(std::int32_t max_abs) : max_abs_(max_abs) {
  assert(max_abs >= 0);
  table_.resize(static_cast<std::size_t>(max_abs) + 1);
  for (std::int32_t x = 0; x <= max_abs; ++x) {
    table_[static_cast<std::size_t>(x)] =
        static_cast<std::uint32_t>(x) * static_cast<std::uint32_t>(x);
  }
}

std::uint32_t SquareLut::square(std::int32_t x) const {
  const std::int32_t a = std::abs(x);
  assert(a <= max_abs_);
  return table_[static_cast<std::size_t>(a)];
}

}  // namespace drim
