#pragma once
// Integer-quantized view of a trained IvfPqIndex, ready to be laid out in DPU
// MRAM. DPUs have no floating point worth using (every FP op is emulated), so
// DRIM-ANN fixes the whole cluster-searching pipeline in int16/uint32:
//   - coarse centroids and PQ codewords are rounded to int16 (the data domain
//     is uint8, so rounding error is < 0.5 per component — measured recall
//     impact is below the ADC approximation noise; tests pin this),
//   - queries are quantized to int16 on the host before transfer,
//   - LUT entries and distances are exact uint32 integer arithmetic, which is
//     what makes the square-LUT conversion lossless.

#include <cstdint>
#include <vector>

#include "core/ivf.hpp"

namespace drim {

/// Quantized index contents shared by all DPUs (centroids + codebooks) plus
/// per-cluster code storage, produced once offline from a trained index.
class PimIndexData {
 public:
  /// Quantize `index` (must be trained and populated).
  explicit PimIndexData(const IvfPqIndex& index);

  std::size_t dim() const { return dim_; }
  std::size_t m() const { return m_; }
  std::size_t dsub() const { return dim_ / m_; }
  std::size_t cb_entries() const { return cb_; }
  std::size_t nlist() const { return nlist_; }
  std::size_t code_size() const { return code_size_; }
  bool wide_codes() const { return wide_codes_; }

  // ---- quantization ladder: packed 4-bit rung (DESIGN.md §15) ----
  // The q4 tables coarsen each subquantizer's codebook to cb4() entries
  // (8-bit code e maps to coarse entry e * cb4 / cb) and pack two 4-bit
  // codes per byte, halving the MRAM code stream. They are derived, never
  // authoritative: the full-precision codes stay the source of truth and
  // the q4 rung reranks its survivors exactly on the host. Wide-code
  // indexes (cb > 256) have no 4-bit rung — has_q4() is false there.

  /// True when the 4-bit rung's tables were built for this index.
  bool has_q4() const { return !codebooks_q4_.empty(); }
  /// Coarse codebook entries per subquantizer (min(cb, 16)).
  std::size_t cb4() const { return cb4_; }
  /// Packed bytes per point on the q4 rung: two codes per byte.
  std::size_t code_size_q4() const { return (m_ + 1) / 2; }
  /// Coarse entry subquantizer `sub`'s full-precision code value `e` maps
  /// to (per-subquantizer k-means assignment built by build_q4_tables —
  /// codeword ids carry no geometric order, so a formulaic id-range mapping
  /// would coarsen unrelated codewords together).
  std::uint32_t q4_entry(std::size_t sub, std::uint32_t e) const {
    return q4_map_[sub * cb_ + e];
  }
  /// All coarse codebooks as one flat blob: int16[m * cb4 * dsub].
  std::span<const std::int16_t> codebooks_q4() const { return codebooks_q4_; }
  /// Packed 4-bit codes of cluster c (low nibble = even subquantizer).
  std::span<const std::uint8_t> cluster_codes_q4(std::size_t c) const {
    return lists_codes_q4_[c];
  }
  /// Per-cluster residual scalar-quantization shift: residual and coarse
  /// codeword components are arithmetic-shifted right by this many bits
  /// before the q4 LUT squaring, keeping big-magnitude clusters' operands
  /// in ~8-bit range. Deterministic from the quantized centroid alone, so
  /// the host replay and the functional kernel agree bit-for-bit.
  std::uint32_t cluster_shift(std::size_t c) const { return cluster_shifts_[c]; }

  /// Centroid of cluster c: dim() int16 values.
  std::span<const std::int16_t> centroid(std::size_t c) const {
    return {centroids_.data() + c * dim_, dim_};
  }
  /// Codeword e of subquantizer sub: dsub() int16 values.
  std::span<const std::int16_t> codeword(std::size_t sub, std::size_t e) const {
    return {codebooks_.data() + (sub * cb_ + e) * dsub(), dsub()};
  }
  /// All codebooks as one flat blob (broadcast payload).
  std::span<const std::int16_t> codebooks() const { return codebooks_; }
  /// All centroids as one flat blob (broadcast payload).
  std::span<const std::int16_t> centroids() const { return centroids_; }

  /// PQ codes / ids of cluster c (same layout as the source InvertedList).
  std::span<const std::uint8_t> cluster_codes(std::size_t c) const {
    return lists_codes_[c];
  }
  std::span<const std::uint32_t> cluster_ids(std::size_t c) const {
    return lists_ids_[c];
  }
  std::size_t cluster_size(std::size_t c) const { return lists_ids_[c].size(); }

  /// Largest |value| across centroids and codewords — determines the square
  /// LUT range needed for losslessness.
  std::int32_t max_operand_abs() const { return max_operand_abs_; }

  /// Read code value `sub` of the i-th point in a raw code blob.
  std::uint32_t code_at(std::span<const std::uint8_t> codes, std::size_t i,
                        std::size_t sub) const;

  /// Quantize a float query to the int16 transfer format.
  static std::vector<std::int16_t> quantize_query(std::span<const float> q);

 private:
  void build_q4_tables();

  std::size_t dim_ = 0, m_ = 0, cb_ = 0, nlist_ = 0, code_size_ = 0;
  bool wide_codes_ = false;
  std::int32_t max_operand_abs_ = 0;
  std::vector<std::int16_t> centroids_;  // nlist * dim
  std::vector<std::int16_t> codebooks_;  // m * cb * dsub
  std::vector<std::vector<std::uint8_t>> lists_codes_;
  std::vector<std::vector<std::uint32_t>> lists_ids_;

  // 4-bit rung tables (empty when wide_codes_).
  std::size_t cb4_ = 0;
  std::vector<std::int16_t> codebooks_q4_;  // m * cb4 * dsub
  std::vector<std::uint8_t> q4_map_;        // m * cb: code -> coarse entry
  std::vector<std::vector<std::uint8_t>> lists_codes_q4_;
  std::vector<std::uint32_t> cluster_shifts_;  // nlist
};

}  // namespace drim
