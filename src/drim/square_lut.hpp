#pragma once
// Multiplier-less ANNS conversion (Section III-A). L2 distance needs only
// squares of differences, and after the index is quantized to integers the
// set of possible operands is small — so all squares are precomputed into a
// lossless lookup table that is broadcast to every DPU. On UPMEM a 32-bit
// multiply costs ~32 cycles while a WRAM table lookup costs ~2, so LC trades
// compute for (abundant) memory accesses.

#include <cstdint>
#include <span>
#include <vector>

namespace drim {

/// Lossless square table over |x| <= max_abs.
class SquareLut {
 public:
  /// Build the table host-side. max_abs must cover every difference the
  /// kernels will square: with uint8 data and int16-quantized centroids /
  /// codewords, residual and codeword entries lie in [-255, 255] and their
  /// difference in [-510, 510], so 510 is the tight default for the paper's
  /// datasets ("we construct an LUT that only stores the square results of
  /// small values").
  explicit SquareLut(std::int32_t max_abs = 510);

  /// Exact square; |x| must be <= max_abs (checked by assert).
  std::uint32_t square(std::int32_t x) const;

  std::int32_t max_abs() const { return max_abs_; }
  std::size_t size_bytes() const { return table_.size() * sizeof(std::uint32_t); }

  /// Raw table for broadcasting into DPU memory (index = |x|).
  std::span<const std::uint32_t> raw() const { return table_; }

 private:
  std::int32_t max_abs_;
  std::vector<std::uint32_t> table_;  // table_[|x|] == x*x
};

}  // namespace drim
