#include "drim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "common/parallel.hpp"
#include "drim/host_exact.hpp"

namespace drim {

namespace {
// Reusable query-id-stamped flat maps for the per-DPU staging dedup: an
// array indexed by global query id whose entry is valid only when its stamp
// matches the current (step, dpu) epoch, so threads never clear it between
// steps and never hash. Epochs are drawn from one global counter, making
// every (step, dpu) pair's stamp unique across all engines and streams.
std::atomic<std::uint64_t> g_dedup_epoch{1};
thread_local std::vector<std::uint64_t> tl_dedup_stamp;
thread_local std::vector<std::uint32_t> tl_dedup_slot;

// Size the stamped maps for this step's id space. Under the persistent
// executor these thread_locals outlive any one engine, so grossly oversized
// maps from a past engine's larger batches are shrunk instead of pinned for
// the rest of the process. Dropping old entries is safe: validity is carried
// by the global epoch stamp, never by leftover buffer contents.
void dedup_reserve(std::size_t id_space) {
  if (tl_dedup_stamp.size() > std::max<std::size_t>(4096, id_space * 4)) {
    tl_dedup_stamp.assign(id_space, 0);
    tl_dedup_slot.assign(id_space, 0);
    tl_dedup_stamp.shrink_to_fit();
    tl_dedup_slot.shrink_to_fit();
  }
  if (tl_dedup_stamp.size() < id_space) {
    tl_dedup_stamp.resize(id_space, 0);
    tl_dedup_slot.resize(id_space, 0);
  }
}
}  // namespace

SchedulerParams derive_scheduler_params(const PimConfig& cfg, std::size_t dim,
                                        std::size_t m, std::size_t cb, std::size_t k,
                                        bool use_square_lut, std::size_t cb4) {
  const std::size_t dsub = dim / m;
  const DpuInstructionCosts& c = cfg.costs;
  SchedulerParams p;
  // LC dominates the per-task fixed cost: per LUT entry, dsub squares (LUT or
  // mul) + 2*dsub adds + WRAM traffic; plus RC and the codebook DMA.
  const double square_cost = use_square_lut ? c.sq_lut_lookup : c.mul32;
  const double per_entry = static_cast<double>(dsub) * square_cost +
                           2.0 * static_cast<double>(dsub) * c.add + c.wram_access;
  const double rc = static_cast<double>(dim) * (c.add + 3.0 * c.wram_access);
  const double lc_dma = static_cast<double>(m * cb * dsub * 2) * cfg.dma_cycles_per_byte;
  p.l_lut = static_cast<double>(m * cb) * per_entry + rc + lc_dma;
  // DC per point: m LUT loads + (m-1) adds + streamed code bytes. The DMA
  // share is also recorded separately (l_dc_dma) so the fusion stage's
  // amortized pricing can subtract exactly the term fusion removes.
  p.l_dc_dma = static_cast<double>(m) * cfg.dma_cycles_per_byte;
  p.l_calu = static_cast<double>(m) * c.lut_lookup +
             static_cast<double>(m - 1) * c.add + p.l_dc_dma;
  // TS per point: threshold compare plus amortized heap maintenance.
  double log2k = 1.0;
  for (std::size_t v = k; v > 1; v >>= 1) log2k += 1.0;
  p.l_sortu = c.cmp + 0.25 * log2k * (c.cmp + 2.0 * c.wram_access);

  // 4-bit rung coefficients, matching the q4 kernel's charges: cb4-entry
  // coarse LUTs with per-component shifts, a 256-entry pair fold per LUT
  // pair, and a packed (m+1)/2-byte code stream.
  if (cb4 > 0) {
    const std::size_t pairs = (m + 1) / 2;
    const double per_entry_q4 = per_entry + static_cast<double>(dsub);  // + shift
    const double lc_dma_q4 =
        static_cast<double>(m * cb4 * dsub * 2) * cfg.dma_cycles_per_byte;
    const double pair_fold =
        static_cast<double>(pairs) * 256.0 * (c.add + c.wram_access);
    p.l_lut_q4 = static_cast<double>(m * cb4) * per_entry_q4 + rc +
                 static_cast<double>(dim) + lc_dma_q4 + pair_fold;
    p.l_dc_dma_q4 = static_cast<double>(pairs) * cfg.dma_cycles_per_byte;
    p.l_calu_q4 = static_cast<double>(pairs) * c.lut_lookup +
                  static_cast<double>(pairs - 1) * c.add + p.l_dc_dma_q4;
  } else {
    p.l_lut_q4 = p.l_lut;
    p.l_calu_q4 = p.l_calu;
    p.l_dc_dma_q4 = p.l_dc_dma;
  }
  return p;
}

DrimAnnEngine::DrimAnnEngine(const IvfPqIndex& index, const FloatMatrix& sample_queries,
                             const DrimEngineOptions& options)
    : DrimAnnEngine(make_root_snapshot(index), sample_queries, options) {}

DrimAnnEngine::DrimAnnEngine(IndexSnapshot snapshot, const FloatMatrix& sample_queries,
                             const DrimEngineOptions& options)
    : snapshot_(std::move(snapshot)),
      opts_(options),
      data_(*snapshot_.index),
      // Cover |residual| + |codeword|; OPQ rotations can widen residual
      // components, so leave generous headroom (misses fall back to the
      // multiply path, results stay exact either way).
      sq_lut_(std::min<std::int32_t>(8192, 2 * (255 + data_.max_operand_abs()))) {
  // Heat estimation from the sample query set (Section IV-A). Kept as a
  // member so apply_snapshot() can extend it over split children.
  heat_ = estimate_heat(index(), sample_queries, opts_.heat_nprobe);
  probe_counts_.assign(index().nlist(), 0);
  layout_ = std::make_unique<DataLayout>(data_, opts_.pim.num_dpus, heat_, opts_.layout);

  // Exact Eq. 15 coefficients for this index geometry at a placeholder depth;
  // search() re-derives them for its actual k before scheduling.
  ensure_scheduler_params(10);
  scheduler_ = std::make_unique<RuntimeScheduler>(*layout_, opts_.scheduler);

  pim_ = make_pim_platform(opts_.platform, opts_.pim);
  load_static_data();
  // Bill the static upload once, here, so the first search batch's
  // transfer_in reflects only that batch's staged queries.
  index_load_seconds_ = pim_->drain_pending_transfer();

  // Up-front batch_size feasibility: the staged query payloads alone must fit
  // the per-DPU staging region even in the worst case where every query of a
  // batch lands on one DPU. The k-dependent output footprint is re-validated
  // exactly per step by search_batch().
  if (opts_.batch_size > 0) {
    const std::size_t cap = max_staged_queries(1);
    if (opts_.batch_size > cap) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "batch_size %zu cannot be staged in MRAM; maximum feasible "
                    "batch_size is %zu",
                    opts_.batch_size, cap);
      throw std::invalid_argument(msg);
    }
  }

  // Up-front fuse_width feasibility at a minimal depth (k = 1); search entry
  // re-validates with the caller's actual k, whose heaps only grow the
  // working set.
  validate_fuse_width(1);
}

std::size_t DrimAnnEngine::max_staged_queries(std::size_t k) const {
  if (staging_base_ >= opts_.pim.mram_bytes) return 0;
  // One batch must fit a single staging slot (at depth >= 2 the region is
  // split into pipeline_depth ping/pong slots so in-flight batches coexist).
  const std::size_t capacity = staging_stride_;
  // Per staged query: its int16 payload plus at least one task's k-hit
  // output block (alignment padding ignored — this is an upper bound).
  const std::size_t per_query = data_.dim() * 2 + k * sizeof(KernelHit);
  return capacity / per_query;
}

std::size_t DrimAnnEngine::max_feasible_fuse_width(std::size_t k) const {
  SearchKernelArgs args;
  args.dim = static_cast<std::uint32_t>(data_.dim());
  args.m = static_cast<std::uint32_t>(data_.m());
  args.cb = static_cast<std::uint32_t>(data_.cb_entries());
  args.k = static_cast<std::uint32_t>(std::max<std::size_t>(k, 1));
  args.use_square_lut = opts_.use_square_lut;
  args.sq_lut_max_abs = static_cast<std::uint32_t>(sq_lut_.max_abs());
  const bool ladder = q4_ready();
  if (ladder) {
    args.has_q4 = true;
    args.cb4 = static_cast<std::uint32_t>(data_.cb4());
  }
  std::size_t feasible = 0;
  for (std::size_t w = 1;; ++w) {
    // With the ladder on, full and q4 groups can coexist in one launch, so
    // the bound must hold with BOTH rungs at width w (worst case).
    const std::size_t need = fused_search_wram_bytes(args, w, ladder ? w : 0);
    if (need > opts_.pim.wram_bytes) break;
    feasible = w;
  }
  return feasible;
}

void DrimAnnEngine::validate_fuse_width(std::size_t k) const {
  const std::size_t width = opts_.fuse_width == 0 ? 1 : opts_.fuse_width;
  if (width <= 1) return;
  const std::size_t feasible = max_feasible_fuse_width(k);
  if (width <= feasible) return;
  char msg[192];
  std::snprintf(msg, sizeof(msg),
                "fuse_width %zu exceeds the WRAM budget at k %zu (G LUTs + one "
                "code block + G top-k heaps must fit); maximum feasible "
                "fuse_width is %zu",
                width, k, feasible);
  throw std::invalid_argument(msg);
}

void DrimAnnEngine::validate_staging(std::size_t k) const {
  const std::size_t need = ((data_.dim() * 2 + 7) & ~std::size_t{7}) + k * sizeof(KernelHit);
  if (need > staging_stride_) {
    throw std::invalid_argument(
        "MRAM staging region cannot hold even one query at this k; reduce "
        "dataset, k, pipeline_depth, or add DPUs");
  }
}

void DrimAnnEngine::ensure_scheduler_params(std::size_t k) {
  if (k == sched_params_k_) return;
  // Preserve any filter and policy choices the caller configured.
  const bool filter = opts_.scheduler.enable_filter;
  const double slack = opts_.scheduler.filter_slack;
  const SchedulePolicy policy = opts_.scheduler.policy;
  opts_.scheduler = derive_scheduler_params(opts_.pim, data_.dim(), data_.m(),
                                            data_.cb_entries(), k, opts_.use_square_lut,
                                            q4_ready() ? data_.cb4() : 0);
  opts_.scheduler.enable_filter = filter;
  opts_.scheduler.filter_slack = slack;
  opts_.scheduler.policy = policy;
  // Eq. 15 prices tasks at the width the kernels will actually fuse at, so
  // dispatch and the filter see the amortized DC DMA cost (DESIGN.md §16).
  opts_.scheduler.fuse_width = opts_.fuse_width == 0 ? 1 : opts_.fuse_width;
  sched_params_k_ = k;
  if (scheduler_) scheduler_->params() = opts_.scheduler;
}

void DrimAnnEngine::load_static_data() {
  // ---- broadcast regions (same offset on every DPU) ----
  sq_lut_off_ = pim_->alloc_symmetric(sq_lut_.size_bytes());
  pim_->broadcast(sq_lut_off_,
                  {reinterpret_cast<const std::uint8_t*>(sq_lut_.raw().data()),
                   sq_lut_.size_bytes()});

  const auto books = data_.codebooks();
  codebooks_off_ = pim_->alloc_symmetric(books.size() * 2);
  pim_->broadcast(codebooks_off_,
                  {reinterpret_cast<const std::uint8_t*>(books.data()), books.size() * 2});

  const auto cents = data_.centroids();
  centroids_off_ = pim_->alloc_symmetric(cents.size() * 2);
  pim_->broadcast(centroids_off_,
                  {reinterpret_cast<const std::uint8_t*>(cents.data()), cents.size() * 2});

  // Quantization-ladder statics (DESIGN.md §15), only when the ladder is on:
  // with enable_q4 off the MRAM image stays byte-identical to the pre-ladder
  // engine, so staging geometry and modeled times are unchanged.
  const bool ladder = opts_.enable_q4 && data_.has_q4();
  if (ladder) {
    const auto books_q4 = data_.codebooks_q4();
    codebooks_q4_off_ = pim_->alloc_symmetric(books_q4.size() * 2);
    pim_->broadcast(codebooks_q4_off_,
                    {reinterpret_cast<const std::uint8_t*>(books_q4.data()),
                     books_q4.size() * 2});
  }

  // ---- per-DPU shard data ----
  const std::size_t num_dpus = pim_->num_dpus();
  dpu_shard_regions_.resize(num_dpus);
  dpu_shard_ids_.resize(num_dpus);
  shard_slot_.assign(layout_->shards().size(), 0);

  // Per-DPU uploads are independent (private MRAM allocators, disjoint
  // shard_slot_ entries — every shard lives on exactly one DPU), so the
  // whole index load fans out across host threads.
  parallel_for(0, num_dpus, [&](std::size_t d) {
    for (std::uint32_t shard_id : layout_->dpu_shards(d)) {
      const Shard& sh = layout_->shard(shard_id);
      const auto codes = data_.cluster_codes(sh.cluster);
      const auto ids = data_.cluster_ids(sh.cluster);
      const std::size_t cs = data_.code_size();

      ShardRegion region;
      region.size = sh.size();
      region.cluster = sh.cluster;
      region.begin = sh.begin;
      region.dead = snapshot_.dead_flags(sh.cluster);
      region.live = region.size;
      if (region.dead != nullptr) {
        std::uint32_t live = 0;
        for (std::uint32_t i = 0; i < region.size; ++i) {
          if (region.dead[region.begin + i] == 0) ++live;
        }
        region.live = live;
      }
      region.codes_offset = pim_->alloc_on(d, region.size * cs);
      region.ids_offset = pim_->alloc_on(d, region.size * sizeof(std::uint32_t));
      pim_->push(d, region.codes_offset,
                 codes.subspan(sh.begin * cs, static_cast<std::size_t>(region.size) * cs));
      pim_->push(d, region.ids_offset,
                 {reinterpret_cast<const std::uint8_t*>(ids.data() + sh.begin),
                  static_cast<std::size_t>(region.size) * sizeof(std::uint32_t)});
      if (ladder) {
        const auto codes_q4 = data_.cluster_codes_q4(sh.cluster);
        const std::size_t cs4 = data_.code_size_q4();
        region.q4_codes_offset = pim_->alloc_on(d, region.size * cs4);
        region.q4_shift = data_.cluster_shift(sh.cluster);
        pim_->push(d, region.q4_codes_offset,
                   codes_q4.subspan(sh.begin * cs4,
                                    static_cast<std::size_t>(region.size) * cs4));
      }

      shard_slot_[shard_id] = static_cast<std::uint32_t>(dpu_shard_regions_[d].size());
      dpu_shard_regions_[d].push_back(region);
      dpu_shard_ids_[d].push_back(shard_id);
    }
  });
  std::size_t max_used = 0;
  for (std::size_t d = 0; d < num_dpus; ++d) {
    max_used = std::max(max_used, pim_->mram_used(d));
  }
  // Staging region starts above the highest static allocation on any DPU so
  // kernel args can use one offset for all DPUs.
  staging_base_ = (max_used + 7) & ~std::size_t{7};

  // One warm-up style sanity check: staging must have room for something.
  if (staging_base_ >= opts_.pim.mram_bytes) {
    throw std::runtime_error("MRAM exhausted by static data; reduce dataset or add DPUs");
  }

  // Slot geometry of the pipelined executor. Depth 1 keeps the serial
  // path's exact capacity arithmetic (one unaligned full-region slot);
  // deeper pipelines split the region into equal 8-byte-aligned slots.
  const std::size_t staging_total = opts_.pim.mram_bytes - staging_base_;
  const std::size_t depth = pipeline_depth();
  staging_stride_ =
      depth <= 1 ? staging_total : (staging_total / depth) & ~std::size_t{7};
  if (staging_stride_ == 0) {
    throw std::runtime_error(
        "MRAM staging region too small for pipeline_depth slots; reduce "
        "pipeline_depth, dataset, or add DPUs");
  }
}

void DrimAnnEngine::rebuild_from_snapshot() {
  data_ = PimIndexData(index());
  sq_lut_ = SquareLut(std::min<std::int32_t>(8192, 2 * (255 + data_.max_operand_abs())));
  layout_ = std::make_unique<DataLayout>(data_, opts_.pim.num_dpus, heat_, opts_.layout);
  scheduler_ = std::make_unique<RuntimeScheduler>(*layout_, opts_.scheduler);
  pim_->reset_memory();
  // resize() would keep stale entries from the previous layout; start clean.
  dpu_shard_regions_.assign(pim_->num_dpus(), {});
  dpu_shard_ids_.assign(pim_->num_dpus(), {});
  shard_slot_.clear();
  load_static_data();
  // The physical reload exists only for functional bit-exactness; its
  // host-link tally must not leak into the next batch's transfer_in (callers
  // bill the modeled delta instead).
  pim_->drain_pending_transfer();
}

double DrimAnnEngine::apply_snapshot(const IndexSnapshot& snapshot,
                                     const PublishDelta& delta) {
  // Deterministic heat extension over split children: the child takes its
  // observed fraction of the parent's heat, the parent keeps the rest. Split
  // records are replayed in order, so chained splits (a child splitting
  // again) resolve correctly.
  for (const SplitRecord& s : delta.splits) {
    if (s.child >= heat_.size()) heat_.resize(s.child + 1, 0.0);
    const double parent_heat = s.parent < heat_.size() ? heat_[s.parent] : 0.0;
    const double child_heat = parent_heat * s.child_fraction;
    heat_[s.parent] = parent_heat - child_heat;
    heat_[s.child] = child_heat;
    // Cluster-tier ownership: a split child stays on the shard that owned
    // (and physically holds) its parent's points.
    if (!opts_.layout.owned_clusters.empty()) {
      if (s.child >= opts_.layout.owned_clusters.size()) {
        opts_.layout.owned_clusters.resize(s.child + 1, 0);
      }
      opts_.layout.owned_clusters[s.child] =
          s.parent < opts_.layout.owned_clusters.size()
              ? opts_.layout.owned_clusters[s.parent]
              : std::uint8_t{0};
    }
  }
  snapshot_ = snapshot;
  const std::size_t nlist = index().nlist();
  if (heat_.size() < nlist) heat_.resize(nlist, 0.5);  // smoothing floor
  if (!opts_.layout.owned_clusters.empty() &&
      opts_.layout.owned_clusters.size() < nlist) {
    opts_.layout.owned_clusters.resize(nlist, 0);
  }
  probe_counts_.assign(nlist, 0);
  rebuild_from_snapshot();
  return static_cast<double>(delta.total_bytes()) /
         opts_.pim.host_link_bytes_per_sec;
}

double DrimAnnEngine::replan_layout() {
  std::uint64_t total = 0;
  for (const std::uint64_t c : probe_counts_) total += c;
  if (total == 0) return 0.0;

  // Same Laplace smoothing as the construction-time estimate: unseen
  // clusters still carry their size-proportional base cost.
  heat_.assign(probe_counts_.size(), 0.0);
  for (std::size_t c = 0; c < probe_counts_.size(); ++c) {
    heat_[c] = static_cast<double>(probe_counts_[c]) + 0.5;
  }

  // Remember where every (cluster, slice, replica) lived so only shards
  // whose DPU placement actually changed are billed.
  struct SliceKey {
    std::uint64_t hi, lo;
    bool operator<(const SliceKey& o) const {
      return hi != o.hi ? hi < o.hi : lo < o.lo;
    }
  };
  std::map<SliceKey, std::uint32_t> old_home;
  for (const Shard& sh : layout_->shards()) {
    old_home[{(static_cast<std::uint64_t>(sh.cluster) << 32) | sh.begin,
              (static_cast<std::uint64_t>(sh.end) << 32) | sh.replica}] = sh.dpu;
  }

  probe_counts_.assign(probe_counts_.size(), 0);
  rebuild_from_snapshot();

  const std::size_t cs = data_.code_size();
  std::uint64_t moved_bytes = 0;
  for (const Shard& sh : layout_->shards()) {
    const auto it = old_home.find(
        {(static_cast<std::uint64_t>(sh.cluster) << 32) | sh.begin,
         (static_cast<std::uint64_t>(sh.end) << 32) | sh.replica});
    if (it != old_home.end() && it->second == sh.dpu) continue;  // stayed put
    moved_bytes += static_cast<std::uint64_t>(sh.size()) *
                   (cs + sizeof(std::uint32_t));
  }
  return static_cast<double>(moved_bytes) / opts_.pim.host_link_bytes_per_sec;
}

double DrimAnnEngine::model_host_cl_seconds(std::size_t num_queries) const {
  // CL = exhaustive centroid scan + partial selection on the host.
  const double flops = static_cast<double>(num_queries) *
                       static_cast<double>(index().nlist()) *
                       (3.0 * static_cast<double>(data_.dim()));
  const double bytes = static_cast<double>(num_queries) *
                       static_cast<double>(index().nlist()) *
                       (static_cast<double>(data_.dim()) * 4.0);
  return std::max(flops / opts_.host.flops_per_sec, bytes / opts_.host.bytes_per_sec);
}

DrimAnnEngine::LaunchLayout DrimAnnEngine::serial_launch_layout(
    double start_s, const BatchResult& batch) {
  LaunchLayout layout;
  layout.in_start = start_s;
  layout.launch_start = start_s + batch.transfer_in_seconds;
  layout.launch_seconds = batch.total_seconds() - batch.transfer_in_seconds -
                          batch.transfer_out_seconds - batch.dpu_seconds;
  layout.kern_start = layout.launch_start + std::max(layout.launch_seconds, 0.0);
  layout.out_start = layout.kern_start + batch.dpu_seconds;
  return layout;
}

void DrimAnnEngine::trace_launch(double start_s, const BatchResult& batch,
                                 const char* kind,
                                 const std::vector<std::size_t>& tasks_per_dpu) {
  trace_launch_spans(serial_launch_layout(start_s, batch), batch, kind, tasks_per_dpu);
}

void DrimAnnEngine::trace_launch_spans(const LaunchLayout& layout,
                                       const BatchResult& batch, const char* kind,
                                       const std::vector<std::size_t>& tasks_per_dpu) {
  if (trace_ == nullptr) return;
  obs::TraceRecorder& tr = *trace_;
  const std::uint32_t xfer_lane = tr.lane("host/transfer");
  const std::uint32_t launch_lane = tr.lane("host/launch");

  if (batch.transfer_in_seconds > 0.0) {
    tr.span(xfer_lane, "transfer-in", kind, layout.in_start, batch.transfer_in_seconds);
  }
  if (layout.launch_seconds > 0.0) {
    tr.span(launch_lane, "launch", kind, layout.launch_start, layout.launch_seconds);
  }
  const double kern0 = layout.kern_start;

  char lane_name[32];
  for (std::size_t d = 0; d < batch.per_dpu_seconds.size(); ++d) {
    const double busy = batch.per_dpu_seconds[d];
    if (busy <= 0.0) continue;
    std::snprintf(lane_name, sizeof(lane_name), "dpu %zu", d);
    const std::uint32_t lane = tr.lane(lane_name);
    const double tasks =
        d < tasks_per_dpu.size() ? static_cast<double>(tasks_per_dpu[d]) : 0.0;
    tr.span(lane, kind, kind, kern0, busy, {{"tasks", tasks}});
    // Phase sub-spans, laid sequentially and scaled so they tile the DPU's
    // busy window exactly (each phase's max(compute, dma) overlaps the
    // others', so raw per-phase times over-cover the window; the raw value
    // rides along in the args).
    double phase_sum = 0.0;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      phase_sum += pim_->dpu_phase_seconds(d, static_cast<Phase>(p));
    }
    if (phase_sum <= 0.0) continue;
    const double scale = busy / phase_sum;
    double pt = kern0;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      const double raw = pim_->dpu_phase_seconds(d, static_cast<Phase>(p));
      if (raw <= 0.0) continue;
      tr.span(lane, std::string(phase_name(static_cast<Phase>(p))), "phase", pt,
              raw * scale, {{"dpu_seconds", raw}});
      pt += raw * scale;
    }
  }

  if (batch.transfer_out_seconds > 0.0) {
    tr.span(xfer_lane, "transfer-out", kind, layout.out_start,
            batch.transfer_out_seconds);
  }
}

double DrimAnnEngine::locate_on_pim(
    const std::vector<std::vector<std::int16_t>>& quantized, std::size_t begin,
    std::size_t end, std::size_t nprobe,
    std::vector<std::vector<std::uint32_t>>& probes, DrimSearchStats& stats,
    std::size_t slot_base, ClLaunchTrace* deferred_trace) {
  const std::size_t dim = data_.dim();
  const std::size_t num_dpus = pim_->num_dpus();
  const std::size_t nq = end - begin;
  const std::size_t nlist = data_.nlist();
  const std::size_t per_dpu = (nlist + num_dpus - 1) / num_dpus;
  const std::size_t keep = std::min(nprobe, nlist);

  // Stage the chunk's queries on every DPU (broadcast region of this step's
  // staging slot), outputs right after.
  const std::size_t queries_bytes = nq * dim * 2;
  const std::size_t output_off = slot_base + ((queries_bytes + 7) & ~std::size_t{7});
  const std::size_t output_bytes = nq * keep * sizeof(KernelHit);
  if (output_off + output_bytes > slot_base + staging_stride_) {
    throw std::runtime_error("CL staging exceeds MRAM; lower batch_size");
  }
  // Assemble the chunk's queries into one contiguous block and broadcast it
  // in a single transfer (transmitted once, resident on every DPU; the
  // per-DPU copies fan out across threads inside broadcast()).
  std::vector<std::int16_t> staged(nq * dim);
  parallel_for(0, nq, [&](std::size_t q) {
    std::copy(quantized[begin + q].begin(), quantized[begin + q].end(),
              staged.begin() + q * dim);
  });
  pim_->broadcast(slot_base, {reinterpret_cast<const std::uint8_t*>(staged.data()),
                              staged.size() * 2});

  const std::size_t active_dpus =
      std::min(num_dpus, (nlist + per_dpu - 1) / per_dpu);
  const bool functional = pim_->functional();
  std::vector<std::vector<KernelHit>> dpu_hits(active_dpus);
  std::vector<TopK> merged(nq, TopK(keep));
  const BatchResult batch = pim_->run_batch(
      [&](std::size_t d, DpuContext& ctx) {
        ClKernelArgs args;
        args.dim = static_cast<std::uint32_t>(dim);
        args.nprobe = static_cast<std::uint32_t>(keep);
        args.centroid_begin = static_cast<std::uint32_t>(std::min(d * per_dpu, nlist));
        args.centroid_count = static_cast<std::uint32_t>(
            std::min(per_dpu, nlist - args.centroid_begin));
        args.centroids_offset = centroids_off_;
        args.queries_offset = slot_base;
        args.num_queries = static_cast<std::uint32_t>(nq);
        args.output_offset = output_off;
        args.sq_lut_offset = sq_lut_off_;
        args.sq_lut_max_abs = static_cast<std::uint32_t>(sq_lut_.max_abs());
        args.use_square_lut = opts_.use_square_lut;
        if (functional) {
          run_cl_kernel(ctx, args);
        } else {
          charge_cl_kernel(ctx, args);
        }
      },
      [&]() {
        // Pull each active DPU's whole candidate block concurrently (same
        // bytes billed as per-query pulls), then merge serially in fixed
        // (dpu, query) order so heap contents match the serial path exactly.
        // On a non-functional platform the candidate rows are computed with
        // the host-side exact scan first; pull() then only bills the bytes.
        parallel_for(0, active_dpus, [&](std::size_t d) {
          dpu_hits[d].resize(nq * keep);
          if (!functional) {
            const std::uint32_t cbegin =
                static_cast<std::uint32_t>(std::min(d * per_dpu, nlist));
            const std::uint32_t ccount =
                static_cast<std::uint32_t>(std::min(per_dpu, nlist - cbegin));
            for (std::size_t q = 0; q < nq; ++q) {
              host_cl_candidates_into(
                  data_, quantized[begin + q], cbegin, ccount,
                  static_cast<std::uint32_t>(keep),
                  std::span<KernelHit>(dpu_hits[d].data() + q * keep, keep));
            }
          }
          pim_->pull(d, output_off,
                     {reinterpret_cast<std::uint8_t*>(dpu_hits[d].data()),
                      nq * keep * sizeof(KernelHit)});
        });
        // Merge in parallel across queries; each query replays its fixed
        // d-then-i visit order, so heap contents (and tie-breaking) match
        // the serial path exactly.
        parallel_for(0, nq, [&](std::size_t q) {
          for (std::size_t d = 0; d < active_dpus; ++d) {
            for (std::size_t i = 0; i < keep; ++i) {
              const KernelHit& h = dpu_hits[d][q * keep + i];
              if (h.id == 0xFFFFFFFFu && h.dist == 0xFFFFFFFFu) break;
              merged[q].push(static_cast<float>(h.dist), h.id);
            }
          }
        });
      });

  for (std::size_t q = 0; q < nq; ++q) {
    probes[begin + q].clear();
    for (const Neighbor& n : merged[q].take_sorted()) {
      probes[begin + q].push_back(n.id);
    }
  }

  stats.transfer_in_seconds += batch.transfer_in_seconds;
  stats.transfer_out_seconds += batch.transfer_out_seconds;
  stats.dpu_busy_seconds += batch.dpu_seconds;
  for (std::size_t d = 0; d < num_dpus; ++d) {
    stats.per_dpu_seconds[d] += batch.per_dpu_seconds[d];
    stats.phase_dpu_seconds[static_cast<std::size_t>(Phase::CL)] +=
        pim_->dpu_phase_seconds(d, Phase::CL);
  }
  stats.counters.add(pim_->aggregate_counters());
  if (deferred_trace != nullptr) {
    // The pipelined caller places this launch on the timeline itself, once
    // begin_batch() has computed where the pre-launch lands.
    deferred_trace->batch = batch;
    deferred_trace->active_dpus = active_dpus;
    deferred_trace->num_queries = nq;
    deferred_trace->valid = true;
  } else if (trace_ != nullptr) {
    trace_launch(trace_->now(), batch, "cl-pim",
                 std::vector<std::size_t>(active_dpus, nq));
    trace_->advance(batch.total_seconds());
  }
  return batch.total_seconds();
}

std::uint32_t DrimAnnEngine::enqueue_query(SearchBatchState& state,
                                           std::span<const float> query, std::size_t k,
                                           std::size_t nprobe, Precision precision) {
  const std::uint32_t handle = static_cast<std::uint32_t>(state.quantized.size());
  state.quantized.push_back(PimIndexData::quantize_query(query));
  state.probes.emplace_back();
  if (!opts_.cl_on_pim) state.probes.back() = index().locate_clusters(query, nprobe);
  state.query_k.push_back(static_cast<std::uint32_t>(k));
  state.query_nprobe.push_back(static_cast<std::uint32_t>(nprobe));
  state.cl_external.push_back(0);
  state.query_precision.push_back(
      precision == Precision::kQ4 && q4_ready() ? 1 : 0);
  state.accum.emplace_back(k);
  state.deferred_per_query.push_back(0);
  return handle;
}

std::uint32_t DrimAnnEngine::enqueue_query_routed(SearchBatchState& state,
                                                  std::span<const float> query,
                                                  std::size_t k,
                                                  std::span<const std::uint32_t> probes,
                                                  Precision precision) {
  if (opts_.cl_on_pim) {
    throw std::invalid_argument(
        "enqueue_query_routed: caller-supplied probe lists are incompatible "
        "with cl_on_pim (the PIM CL launch would recompute them)");
  }
  const std::uint32_t handle = static_cast<std::uint32_t>(state.quantized.size());
  state.quantized.push_back(PimIndexData::quantize_query(query));
  state.probes.emplace_back(probes.begin(), probes.end());
  state.query_k.push_back(static_cast<std::uint32_t>(k));
  state.query_nprobe.push_back(
      static_cast<std::uint32_t>(std::max<std::size_t>(probes.size(), 1)));
  state.cl_external.push_back(1);
  state.query_precision.push_back(
      precision == Precision::kQ4 && q4_ready() ? 1 : 0);
  state.accum.emplace_back(k);
  state.deferred_per_query.push_back(0);
  return handle;
}

void DrimAnnEngine::enqueue_queries(SearchBatchState& state, const FloatMatrix& queries,
                                    std::size_t k, std::size_t nprobe,
                                    Precision precision) {
  const std::size_t base = state.quantized.size();
  const std::size_t nq = queries.count();
  const std::uint8_t rung = precision == Precision::kQ4 && q4_ready() ? 1 : 0;
  state.quantized.resize(base + nq);
  state.probes.resize(base + nq);
  state.query_k.resize(base + nq, static_cast<std::uint32_t>(k));
  state.query_nprobe.resize(base + nq, static_cast<std::uint32_t>(nprobe));
  state.cl_external.resize(base + nq, 0);
  state.query_precision.resize(base + nq, rung);
  state.accum.reserve(base + nq);
  for (std::size_t q = 0; q < nq; ++q) state.accum.emplace_back(k);
  state.deferred_per_query.resize(base + nq, 0);

  // Quantized query payloads (independent per query).
  parallel_for(0, nq, [&](std::size_t q) {
    state.quantized[base + q] = PimIndexData::quantize_query(queries.row(q));
  });
  // CL: on the host by default (overlapped with PIM per batch); cl_on_pim
  // fills probes lazily inside each step instead.
  if (!opts_.cl_on_pim) {
    parallel_for(0, nq, [&](std::size_t q) {
      state.probes[base + q] = index().locate_clusters(queries.row(q), nprobe);
    });
  }
}

BatchStepStats DrimAnnEngine::search_batch(SearchBatchState& state,
                                           std::size_t max_queries, bool flush,
                                           DrimSearchStats* stats) {
  const std::size_t dim = data_.dim();
  const std::size_t num_dpus = pim_->num_dpus();

  DrimSearchStats local;
  DrimSearchStats& st = stats != nullptr ? *stats : local;
  if (st.per_dpu_seconds.size() != num_dpus) st.per_dpu_seconds.assign(num_dpus, 0.0);
  st.index_load_seconds = index_load_seconds_;

  const std::size_t begin = state.next_query;
  const std::size_t end = max_queries == 0
                              ? state.quantized.size()
                              : std::min(state.quantized.size(), begin + max_queries);
  state.next_query = end;

  BatchStepStats step;
  step.fresh_queries = end - begin;
  st.queries += end - begin;
  if (end == begin && state.carried.empty()) return step;  // nothing to run

  // Pipelined executor setup: each step stages into its round-robin MRAM
  // slot; at depth >= 2 the step's stages are placed on the state's virtual
  // timeline so they overlap neighboring in-flight steps.
  const std::size_t depth = pipeline_depth();
  const std::size_t slot_base = staging_slot_base(state.step_index);
  if (depth >= 2 && (!state.pipeline || state.pipeline->depth() != depth)) {
    state.pipeline = std::make_unique<PipelineTimeline>(depth);
  }

  // Kernel depth for this step: the widest k among the fresh queries and the
  // carried tasks' queries. Per-query heaps still truncate to their own k.
  std::size_t k = 0;
  for (std::size_t q = begin; q < end; ++q) {
    k = std::max<std::size_t>(k, state.query_k[q]);
  }
  for (const Task& t : state.carried) {
    k = std::max<std::size_t>(k, state.query_k[t.query]);
  }
  // Price the Eq. 15 TS term for this step's actual search depth, and check
  // the fusion width's WRAM working set against it (the heaps scale with k).
  ensure_scheduler_params(k);
  validate_fuse_width(k);

  // CL-on-PIM: a dedicated barrier launch precedes the search launch (it
  // cannot overlap — the search needs its output). The launch keeps the
  // chunk's widest nprobe; narrower queries truncate their candidate list.
  ClLaunchTrace cl_trace;
  if (opts_.cl_on_pim && end > begin) {
    std::size_t pmax = 0;
    for (std::size_t q = begin; q < end; ++q) {
      pmax = std::max<std::size_t>(pmax, state.query_nprobe[q]);
    }
    step.cl_pim_seconds =
        locate_on_pim(state.quantized, begin, end, pmax, state.probes, st, slot_base,
                      depth >= 2 ? &cl_trace : nullptr);
    for (std::size_t q = begin; q < end; ++q) {
      if (state.probes[q].size() > state.query_nprobe[q]) {
        state.probes[q].resize(state.query_nprobe[q]);
      }
    }
  }

  // Open this step on the timeline (reserving the CL pre-launch on the link
  // and DPU array) and trace the CL launch at its scheduled start — the
  // phase counters it reads are reset by the search run_batch below.
  if (depth >= 2) {
    const double pre_start =
        state.pipeline->begin_batch(state.submit_hint_seconds, step.cl_pim_seconds);
    if (trace_ != nullptr && cl_trace.valid) {
      trace_launch(pre_start, cl_trace.batch, "cl-pim",
                   std::vector<std::size_t>(cl_trace.active_dpus, cl_trace.num_queries));
    }
  }

  // Observed cluster traffic feeds replan_layout()'s heat estimate.
  for (std::size_t q = begin; q < end; ++q) {
    for (const std::uint32_t c : state.probes[q]) {
      if (c < probe_counts_.size()) ++probe_counts_[c];
    }
  }

  // The scheduler walks only this chunk's range of the probe table
  // (Task.query indexes the whole state).
  const Assignment assignment = scheduler_->schedule(
      state.probes, begin, end, state.carried, flush, &state.query_precision);
  state.carried = assignment.deferred;
  std::fill(state.deferred_per_query.begin(), state.deferred_per_query.end(), 0u);
  for (const Task& t : state.carried) ++state.deferred_per_query[t.query];

  // ---- stage per-DPU inputs ----
  std::vector<std::vector<KernelTask>> dpu_tasks(num_dpus);
  std::vector<std::vector<std::uint32_t>> dpu_task_query(num_dpus);  // global q ids
  std::vector<std::vector<std::uint32_t>> dpu_slot_query(num_dpus);  // slot -> global q
  std::vector<std::size_t> dpu_output_off(num_dpus, 0);
  std::vector<std::size_t> dpu_need(num_dpus, 0);

  // Per-DPU dedup is independent (private task lists), so it fans out across
  // host threads; nothing is pushed yet so an oversized batch can still be
  // rejected cleanly below. Dedup uses the reusable stamped flat maps: a
  // fresh stamp per (step, dpu) makes stale entries invisible without
  // clearing, and first-occurrence slot order matches the old hashed path.
  const std::uint64_t epoch_base =
      g_dedup_epoch.fetch_add(num_dpus, std::memory_order_relaxed);
  const std::size_t id_space = state.quantized.size();
  const bool ladder = q4_ready();
  parallel_for(0, num_dpus, [&](std::size_t d) {
    const auto& tasks = assignment.per_dpu[d];
    if (tasks.empty()) return;
    dedup_reserve(id_space);
    const std::uint64_t stamp = epoch_base + d;
    auto& slot_query = dpu_slot_query[d];
    for (const Task& t : tasks) {
      if (tl_dedup_stamp[t.query] != stamp) {
        tl_dedup_stamp[t.query] = stamp;
        tl_dedup_slot[t.query] = static_cast<std::uint32_t>(slot_query.size());
        slot_query.push_back(t.query);
      }
      // The task's precision rung rides in the slot word's top bit; the
      // staged query payload is rung-independent, so dedup stays by query.
      const std::uint32_t rung_bit =
          ladder && t.query < state.query_precision.size() &&
                  state.query_precision[t.query] != 0
              ? kTaskQ4Bit
              : 0u;
      dpu_tasks[d].push_back({tl_dedup_slot[t.query] | rung_bit, shard_slot_[t.shard]});
      dpu_task_query[d].push_back(t.query);
    }
    // Staging layout: [queries][outputs], within this step's slot.
    const std::size_t queries_bytes = slot_query.size() * dim * 2;
    const std::size_t output_bytes = tasks.size() * k * sizeof(KernelHit);
    dpu_output_off[d] = slot_base + ((queries_bytes + 7) & ~std::size_t{7});
    dpu_need[d] = dpu_output_off[d] + output_bytes;
  });

  // Capacity check, serially and before any bytes move (throwing from inside
  // a worker lambda mid-staging left the byte tallies half-updated). The
  // error reports the batch size that would have fit this step's schedule.
  for (std::size_t d = 0; d < num_dpus; ++d) {
    if (dpu_need[d] <= slot_base + staging_stride_) continue;
    const std::size_t need = dpu_need[d] - slot_base;
    const std::size_t capacity = staging_stride_;
    const std::size_t fresh = end - begin;
    const std::size_t feasible =
        fresh > 0 ? std::max<std::size_t>(1, fresh * capacity / need) : 0;
    char msg[192];
    std::snprintf(msg, sizeof(msg),
                  "per-batch staging exceeds MRAM on DPU %zu (%zu bytes needed, "
                  "%zu available); maximum feasible batch_size for this "
                  "workload is about %zu",
                  d, need, capacity, feasible);
    throw std::runtime_error(msg);
  }

  // Query pushes fan out per DPU (private MRAM; the byte tally is atomic).
  parallel_for(0, num_dpus, [&](std::size_t d) {
    const auto& slot_query = dpu_slot_query[d];
    for (std::size_t s = 0; s < slot_query.size(); ++s) {
      const auto& qv = state.quantized[slot_query[s]];
      pim_->push(d, slot_base + s * dim * 2,
                 {reinterpret_cast<const std::uint8_t*>(qv.data()), dim * 2});
    }
  });

  // ---- cluster-major fusion plan (DESIGN.md §16) ----
  // Group each DPU's tasks by (cluster, rung) so the kernel streams every
  // fused group's codes from MRAM once. Planned host-side (the kernel is
  // shipped the plan, and the charge twin must see the identical grouping);
  // the saved re-stream bytes are tallied here from the plan alone.
  const std::size_t fuse_width = opts_.fuse_width == 0 ? 1 : opts_.fuse_width;
  std::vector<std::vector<FusedTaskGroup>> dpu_groups;
  std::uint64_t dc_bytes_saved = 0;
  std::size_t fused_groups = 0;
  std::size_t fused_tasks = 0;
  if (fuse_width > 1) {
    dpu_groups.resize(num_dpus);
    parallel_for(0, num_dpus, [&](std::size_t d) {
      if (!dpu_tasks[d].empty()) {
        dpu_groups[d] = plan_task_fusion(dpu_tasks[d], fuse_width);
      }
    });
    for (std::size_t d = 0; d < num_dpus; ++d) {
      fused_groups += dpu_groups[d].size();
      for (const FusedTaskGroup& g : dpu_groups[d]) {
        if (g.tasks.size() <= 1) continue;
        fused_tasks += g.tasks.size();
        const ShardRegion& sh = dpu_shard_regions_[d][g.shard_slot];
        const std::size_t code_size =
            ladder && g.q4 ? data_.code_size_q4() : data_.code_size();
        std::uint64_t bytes = static_cast<std::uint64_t>(sh.size) * code_size;
        // The tombstone-flag stream is also shared by the group.
        if (sh.dead != nullptr) bytes += sh.size;
        dc_bytes_saved += (g.tasks.size() - 1) * bytes;
      }
    }
  }

  // ---- launch ----
  SearchKernelArgs args;
  args.dim = static_cast<std::uint32_t>(dim);
  args.m = static_cast<std::uint32_t>(data_.m());
  args.cb = static_cast<std::uint32_t>(data_.cb_entries());
  args.code_size = static_cast<std::uint32_t>(data_.code_size());
  args.wide_codes = data_.wide_codes();
  args.k = static_cast<std::uint32_t>(k);
  args.sq_lut_offset = sq_lut_off_;
  args.sq_lut_max_abs = static_cast<std::uint32_t>(sq_lut_.max_abs());
  args.codebooks_offset = codebooks_off_;
  args.centroids_offset = centroids_off_;
  args.queries_offset = slot_base;
  args.use_square_lut = opts_.use_square_lut;
  if (ladder) {
    args.has_q4 = true;
    args.cb4 = static_cast<std::uint32_t>(data_.cb4());
    args.code_size_q4 = static_cast<std::uint32_t>(data_.code_size_q4());
    args.codebooks_q4_offset = codebooks_q4_off_;
  }

  const bool functional = pim_->functional();
  BatchResult batch = pim_->run_batch(
      [&](std::size_t d, DpuContext& ctx) {
        if (dpu_tasks[d].empty()) return;
        SearchKernelArgs a = args;
        a.output_offset = dpu_output_off[d];
        // fuse_width 1 keeps the LITERAL per-task kernels so results and
        // modeled times reproduce the pre-fusion engine bit-for-bit.
        if (functional) {
          if (fuse_width > 1) {
            run_fused_search_kernel(ctx, a, dpu_shard_regions_[d], dpu_tasks[d],
                                    dpu_groups[d]);
          } else {
            run_search_kernel(ctx, a, dpu_shard_regions_[d], dpu_tasks[d]);
          }
        } else {
          if (fuse_width > 1) {
            charge_fused_search_kernel(ctx, a, dpu_shard_regions_[d], dpu_tasks[d],
                                       dpu_groups[d]);
          } else {
            charge_search_kernel(ctx, a, dpu_shard_regions_[d], dpu_tasks[d]);
          }
        }
      },
      [&]() {
        // Collect: pull each DPU's whole output block concurrently (same
        // bytes billed as per-task pulls), then merge into the per-query
        // heaps serially in fixed (dpu, task) order — accum[] heaps are
        // shared across DPUs, and a fixed merge order keeps tie-breaking
        // bit-identical to the serial path. On a non-functional platform the
        // output rows are computed by the host-side exact scan over the same
        // (query, shard) task list; pull() then only bills the bytes.
        std::vector<std::vector<KernelHit>> dpu_hits(num_dpus);
        parallel_for(0, num_dpus, [&](std::size_t d) {
          if (dpu_tasks[d].empty()) return;
          dpu_hits[d].resize(dpu_tasks[d].size() * k);
          if (!functional) {
            // Coalesced exact replay: group this DPU's tasks by (shard, rung)
            // and pull each shard's code block ONCE per batch, scoring it
            // against every member query before advancing. Per-task
            // arithmetic and push order are unchanged, so rows stay
            // byte-identical to the per-task replay (and to the functional
            // kernel); this is a host wall-clock fix, billed times are
            // untouched. Replays the rung the kernel would have run: q4 task
            // rows hold (coarse dist, LOCAL index) pairs, full rows global
            // ids.
            const auto replay_groups =
                plan_task_fusion(dpu_tasks[d], dpu_tasks[d].size());
            std::vector<HostFusedTask> members;
            for (const FusedTaskGroup& g : replay_groups) {
              const Shard& sh =
                  layout_->shard(dpu_shard_ids_[d][g.shard_slot]);
              members.clear();
              for (const std::uint32_t t : g.tasks) {
                members.push_back({state.quantized[dpu_task_query[d][t]].data(),
                                   dpu_hits[d].data() + t * k});
              }
              host_search_tasks_fused_into(data_, members, sh,
                                           static_cast<std::uint32_t>(k),
                                           ladder && g.q4,
                                           snapshot_.dead_flags(sh.cluster));
            }
          }
          pim_->pull(d, dpu_output_off[d],
                     {reinterpret_cast<std::uint8_t*>(dpu_hits[d].data()),
                      dpu_hits[d].size() * sizeof(KernelHit)});
          // Exact-rerank tail (both platforms): each q4 row's candidates are
          // re-scored with the full-precision ADC LUT on the host and their
          // global ids resolved, so what enters the merge heaps is exact.
          if (ladder) {
            // Rows sharing (query, cluster) — e.g. slices of one cluster —
            // rebuild the full-precision ADC table once. Rows are rescored
            // independently, so visiting them in (query, cluster) order
            // leaves every row byte-identical to the per-row path.
            std::vector<std::uint32_t> rows;
            for (std::size_t t = 0; t < dpu_tasks[d].size(); ++t) {
              if (task_is_q4(dpu_tasks[d][t])) {
                rows.push_back(static_cast<std::uint32_t>(t));
              }
            }
            const auto row_cluster = [&](std::uint32_t t) {
              return layout_->shard(dpu_shard_ids_[d][dpu_tasks[d][t].shard_slot])
                  .cluster;
            };
            std::stable_sort(rows.begin(), rows.end(),
                             [&](std::uint32_t a, std::uint32_t b) {
                               if (dpu_task_query[d][a] != dpu_task_query[d][b]) {
                                 return dpu_task_query[d][a] < dpu_task_query[d][b];
                               }
                               return row_cluster(a) < row_cluster(b);
                             });
            std::vector<std::uint32_t> lut(data_.m() * data_.cb_entries());
            bool lut_valid = false;
            std::uint64_t lut_key = 0;
            for (const std::uint32_t t : rows) {
              const Shard& sh =
                  layout_->shard(dpu_shard_ids_[d][dpu_tasks[d][t].shard_slot]);
              const std::uint64_t key =
                  (static_cast<std::uint64_t>(dpu_task_query[d][t]) << 32) |
                  sh.cluster;
              if (!lut_valid || key != lut_key) {
                host_build_adc_lut(data_, state.quantized[dpu_task_query[d][t]],
                                   sh.cluster, lut);
                lut_valid = true;
                lut_key = key;
              }
              host_rerank_q4_row_with_lut(
                  data_, lut, sh,
                  std::span<KernelHit>(dpu_hits[d].data() + t * k, k));
            }
          }
        });
        // Merge into the shared per-query heaps in parallel across queries:
        // first index every (dpu, task) visit per query in the fixed global
        // (dpu, task) order, then each host thread replays only its own
        // queries' visits in that order — the same heap pushes in the same
        // sequence as the serial merge, so tie-breaking is bit-identical,
        // and no heap is touched by two threads.
        const std::size_t id_space = state.accum.size();
        std::vector<std::uint32_t> visit_off(id_space + 1, 0);
        for (std::size_t d = 0; d < num_dpus; ++d) {
          for (const std::uint32_t q : dpu_task_query[d]) ++visit_off[q + 1];
        }
        for (std::size_t q = 0; q < id_space; ++q) visit_off[q + 1] += visit_off[q];
        struct Visit {
          std::uint32_t dpu;
          std::uint32_t task;
        };
        std::vector<Visit> visits(visit_off[id_space]);
        std::vector<std::uint32_t> cursor(visit_off.begin(), visit_off.end() - 1);
        for (std::size_t d = 0; d < num_dpus; ++d) {
          for (std::size_t t = 0; t < dpu_task_query[d].size(); ++t) {
            visits[cursor[dpu_task_query[d][t]]++] = {static_cast<std::uint32_t>(d),
                                                      static_cast<std::uint32_t>(t)};
          }
        }
        parallel_for(0, id_space, [&](std::size_t q) {
          for (std::uint32_t v = visit_off[q]; v < visit_off[q + 1]; ++v) {
            const Visit vis = visits[v];
            for (std::size_t i = 0; i < k; ++i) {
              const KernelHit& h = dpu_hits[vis.dpu][vis.task * k + i];
              if (h.id == 0xFFFFFFFFu && h.dist == 0xFFFFFFFFu) break;  // pad
              state.accum[q].push(static_cast<float>(h.dist), h.id);
            }
          }
        });
      });

  // ---- accounting. Depth 1 (serial): host work overlaps the PIM batch and
  // a CL-on-PIM launch serializes before it, each step paying its full
  // critical path back-to-back. Depth >= 2: the timeline places this step's
  // stages around the other in-flight steps; step_seconds becomes the
  // timeline delta it contributed, so the deltas still sum to the makespan.
  // Routed queries (cl_external) were located by the caller — the cluster
  // router bills their CL once at the front-end, so the shard step must not
  // bill it again.
  std::size_t cl_queries = 0;
  for (std::size_t q = begin; q < end; ++q) {
    if (q >= state.cl_external.size() || state.cl_external[q] == 0) ++cl_queries;
  }
  const double host_cl = opts_.cl_on_pim ? 0.0 : model_host_cl_seconds(cl_queries);
  step.host_cl_seconds = host_cl;
  // Exact-rerank host cost: per q4 task, one full ADC LUT build plus <= k
  // candidate re-scores. Exactly 0 (preserving pre-ladder times) when the
  // step carried no q4 task. Overlapped with the PIM batch like host CL.
  std::size_t q4_tasks = 0;
  for (std::size_t d = 0; d < num_dpus; ++d) {
    for (const KernelTask& kt : dpu_tasks[d]) {
      if (ladder && task_is_q4(kt)) ++q4_tasks;
    }
  }
  const double host_rerank =
      q4_tasks == 0
          ? 0.0
          : static_cast<double>(q4_tasks) *
                (static_cast<double>(data_.m() * data_.cb_entries() * data_.dsub()) * 3.0 +
                 static_cast<double>(k * data_.m())) /
                opts_.host.flops_per_sec;
  step.host_rerank_seconds = host_rerank;
  const double host_side = host_cl + host_rerank;
  step.pim_batch_seconds = batch.total_seconds();
  step.transfer_in_seconds = batch.transfer_in_seconds;
  step.transfer_out_seconds = batch.transfer_out_seconds;
  step.dpu_seconds = batch.dpu_seconds;
  step.deferred = state.carried.size();

  PipelineSchedule sched;
  if (depth == 1) {
    step.step_seconds = step.cl_pim_seconds + std::max(host_side, batch.total_seconds());
    const double base = std::max(state.last_complete_seconds, state.submit_hint_seconds);
    step.submit_seconds = base;
    step.complete_seconds = base + step.step_seconds;
  } else {
    PipelineStageTimes stages;
    stages.transfer_in_seconds = batch.transfer_in_seconds;
    stages.launch_overhead_seconds = batch.launch_overhead_seconds;
    stages.compute_seconds = batch.dpu_seconds;
    stages.transfer_out_seconds = batch.transfer_out_seconds;
    stages.host_seconds = host_side;
    sched = state.pipeline->finish_batch(stages);
    const double base = std::max(state.last_complete_seconds, sched.submit_seconds);
    step.submit_seconds = base;
    step.complete_seconds = sched.done_seconds;
    step.step_seconds = sched.done_seconds - base;
  }
  state.last_complete_seconds = step.complete_seconds;
  ++state.step_index;

  st.total_seconds += step.step_seconds;
  st.host_cl_seconds += host_cl;
  st.host_rerank_seconds += host_rerank;
  st.transfer_in_seconds += batch.transfer_in_seconds;
  st.transfer_out_seconds += batch.transfer_out_seconds;
  st.dpu_busy_seconds += batch.dpu_seconds;
  for (std::size_t d = 0; d < num_dpus; ++d) {
    st.per_dpu_seconds[d] += batch.per_dpu_seconds[d];
    step.tasks += dpu_tasks[d].size();
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      st.phase_dpu_seconds[p] += pim_->dpu_phase_seconds(d, static_cast<Phase>(p));
    }
  }
  st.tasks += step.tasks;
  st.dc_bytes_saved += dc_bytes_saved;
  st.counters.add(pim_->aggregate_counters());
  ++st.batches;
  st.batch_seconds.push_back(step.step_seconds);
  // Restamp from the cumulative total so streaming clients (CLI q4 path,
  // cluster shards, serving) see energy without a batch-mode search() wrap.
  st.energy_joules = opts_.energy.pim_energy_joules(opts_.pim, st.total_seconds);

  if (trace_ != nullptr) {
    std::vector<std::size_t> tasks_per_dpu(num_dpus);
    for (std::size_t d = 0; d < num_dpus; ++d) tasks_per_dpu[d] = dpu_tasks[d].size();
    // Fused-group span alongside the search launch's DPU compute, plus the
    // running saved-bytes counter (DESIGN.md §16).
    const auto trace_fusion = [&](double compute_start) {
      if (fuse_width <= 1 || fused_groups == 0) return;
      trace_->span(trace_->lane("pim/fusion"), "fused-groups", "pim",
                   compute_start, batch.dpu_seconds,
                   {{"groups", static_cast<double>(fused_groups)},
                    {"fused_tasks", static_cast<double>(fused_tasks)},
                    {"dc_bytes_saved", static_cast<double>(dc_bytes_saved)}});
      trace_->counter("dc_bytes_saved", step.complete_seconds,
                      {{"bytes", static_cast<double>(st.dc_bytes_saved)}});
    };
    if (depth == 1) {
      // locate_on_pim already advanced the cursor past the CL launch, so the
      // search launch and the overlapped host CL both start at now().
      const double exec0 = trace_->now();
      if (host_cl > 0.0) {
        trace_->span(trace_->lane("host/cl"), "host-cl", "host", exec0, host_cl,
                     {{"queries", static_cast<double>(cl_queries)}});
      }
      if (host_rerank > 0.0) {
        trace_->span(trace_->lane("host/rerank"), "host-rerank", "host",
                     exec0 + host_cl, host_rerank,
                     {{"q4_tasks", static_cast<double>(q4_tasks)}});
      }
      trace_launch(exec0, batch, "search", tasks_per_dpu);
      trace_fusion(exec0 + batch.transfer_in_seconds + batch.launch_overhead_seconds);
      trace_->set_now(exec0 + std::max(host_side, batch.total_seconds()));
    } else {
      // Pipelined: every span sits at its scheduled absolute time, so
      // overlapping steps render as overlapping host-link/dpu spans.
      if (host_cl > 0.0) {
        trace_->span(trace_->lane("host/cl"), "host-cl", "host", sched.host_start,
                     host_cl, {{"queries", static_cast<double>(cl_queries)}});
      }
      if (host_rerank > 0.0) {
        trace_->span(trace_->lane("host/rerank"), "host-rerank", "host",
                     sched.host_start + host_cl, host_rerank,
                     {{"q4_tasks", static_cast<double>(q4_tasks)}});
      }
      LaunchLayout layout;
      layout.in_start = sched.in_start;
      layout.launch_start = sched.compute_start;
      layout.launch_seconds = batch.launch_overhead_seconds;
      layout.kern_start = sched.compute_start + batch.launch_overhead_seconds;
      layout.out_start = sched.out_start;
      trace_launch_spans(layout, batch, "search", tasks_per_dpu);
      trace_fusion(layout.kern_start);
      trace_->set_now(state.last_complete_seconds);
    }
  }
  return step;
}

double DrimAnnEngine::estimate_batch_seconds(std::size_t num_queries, std::size_t nprobe,
                                             std::size_t k) const {
  if (num_queries == 0) return 0.0;
  const SchedulerParams p = derive_scheduler_params(
      opts_.pim, data_.dim(), data_.m(), data_.cb_entries(), k, opts_.use_square_lut);
  // Layout means: a (query, cluster) visit costs one task per slice group.
  const std::size_t nlist = data_.nlist();
  double total_slices = 0.0;
  double total_points = 0.0;
  for (std::uint32_t c = 0; c < nlist; ++c) {
    const auto& groups = layout_->slice_groups(c);
    total_slices += static_cast<double>(groups.size());
    for (const auto& g : groups) {
      if (!g.empty()) total_points += layout_->shard(g.front()).size();
    }
  }
  const double mean_slices = nlist > 0 ? total_slices / static_cast<double>(nlist) : 0.0;
  const double mean_points = total_slices > 0 ? total_points / total_slices : 0.0;
  const double tasks = static_cast<double>(num_queries) *
                       static_cast<double>(std::min<std::size_t>(nprobe, nlist)) *
                       mean_slices;
  // Cluster-major fusion amortizes the per-point DC DMA share: the effective
  // width is bounded both by the configured fuse_width and by how many
  // co-cluster tasks a batch statistically offers (num_queries * nprobe
  // visits spread over nlist clusters). At fuse_width 1 the subtrahend is
  // exactly 0.0, so the estimate reproduces the unfused arithmetic
  // bit-for-bit.
  const double fuse_width =
      static_cast<double>(opts_.fuse_width == 0 ? 1 : opts_.fuse_width);
  const double eff = std::min(
      fuse_width,
      std::max(1.0, static_cast<double>(num_queries) *
                        static_cast<double>(std::min<std::size_t>(nprobe, nlist)) /
                        std::max(1.0, static_cast<double>(nlist))));
  const double cycles =
      tasks * (p.l_lut + mean_points * (p.l_calu + p.l_sortu) -
               (1.0 - 1.0 / eff) * mean_points * p.l_dc_dma);
  const PimConfig& cfg = opts_.pim;
  const double dpu_s = cycles / static_cast<double>(cfg.num_dpus) /
                       cfg.effective_ipc() * cfg.seconds_per_cycle();
  const double in_bytes = static_cast<double>(num_queries * data_.dim() * 2);
  const double out_bytes = tasks * static_cast<double>(k * sizeof(KernelHit));
  const double xfer_s = (in_bytes + out_bytes) / cfg.host_link_bytes_per_sec;
  if (pipeline_depth() <= 1) return cfg.launch_overhead_sec + dpu_s + xfer_s;
  // Steady state of a depth >= 2 pipeline: consecutive batches overlap their
  // stages, so each step is paced by the bottleneck resource — the DPU array
  // (barrier overhead + slowest DPU) or the shared half-duplex host link —
  // not by the sum of stages (updated Eq. 15).
  return std::max(cfg.launch_overhead_sec + dpu_s, xfer_s);
}

std::vector<std::vector<Neighbor>> DrimAnnEngine::search(const FloatMatrix& queries,
                                                         std::size_t k, std::size_t nprobe,
                                                         DrimSearchStats* stats,
                                                         Precision precision) {
  const std::size_t nq = queries.count();

  DrimSearchStats local;
  DrimSearchStats& st = stats != nullptr ? *stats : local;
  st = DrimSearchStats{};
  st.per_dpu_seconds.assign(pim_->num_dpus(), 0.0);
  st.index_load_seconds = index_load_seconds_;
  validate_staging(k);

  SearchBatchState state;
  enqueue_queries(state, queries, k, nprobe, precision);

  const std::size_t batch_queries = opts_.batch_size == 0 ? nq : opts_.batch_size;
  while (state.next_query < nq || state.has_deferred()) {
    // The final chunk flushes the filter so nothing is left behind.
    const bool flush = state.next_query + batch_queries >= nq;
    search_batch(state, batch_queries, flush, &st);
  }

  st.energy_joules = opts_.energy.pim_energy_joules(opts_.pim, st.total_seconds);

  std::vector<std::vector<Neighbor>> results(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    results[q] = state.take_results(static_cast<std::uint32_t>(q));
  }
  return results;
}

}  // namespace drim
