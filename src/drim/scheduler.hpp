#pragma once
// Runtime query scheduling (Section IV-D). After the host locates clusters
// for a batch of queries, every (query, cluster) pair is mapped to shard
// tasks (q, n_c). The *predictor* estimates each task's DPU latency with the
// paper's Eq. 15, latency = l_LUT + x * l_calu + x * l_sortu (x = shard
// size), and a greedy pass assigns every task to the least-loaded DPU among
// the replicas that hold its shard. The *filter* then defers some tasks from
// predicted-overloaded DPUs into a buffer for the next batch.

#include <cstdint>
#include <vector>

#include "drim/layout.hpp"

namespace drim {

/// Replica-choice policy; kRoundRobin exists for the scheduler ablation
/// (bench/ablation_scheduler) and ignores the Eq. 15 predictor.
enum class SchedulePolicy : std::uint8_t { kGreedy, kRoundRobin };

/// Eq. 15 coefficients plus filter policy.
struct SchedulerParams {
  /// Latency units are DPU cycles; defaults are derived from the kernel cost
  /// model (M * CB codeword partial distances for one LUT; per-point ADC sum
  /// and heap push). The engine overrides them with exact per-index values.
  double l_lut = 8000.0;   ///< LUT construction latency per task
  double l_calu = 40.0;    ///< distance calculation per point
  double l_sortu = 12.0;   ///< top-k update per point
  /// Eq. 15 coefficients of the 4-bit rung (DESIGN.md §15): a q4 task builds
  /// cb4-entry coarse LUTs (plus the pair fold) and scans packed codes, so
  /// both its fixed and per-point terms are cheaper. l_sortu is rung-
  /// independent (TS sees the same point stream either way).
  double l_lut_q4 = 4000.0;
  double l_calu_q4 = 20.0;
  /// Per-point DC DMA share of l_calu (cycles/point spent streaming codes
  /// from MRAM). When `fuse_width` > 1 the kernel streams each cluster's
  /// codes once per fused group, so all members past the first skip this
  /// term; Eq. 15 amortizes it by the configured width. Zero keeps the
  /// original pricing.
  double l_dc_dma = 0.0;
  double l_dc_dma_q4 = 0.0;
  /// Cluster-major fusion width the engine will run with (DESIGN.md §16).
  /// 1 = per-task kernels, no amortization.
  std::size_t fuse_width = 1;
  bool enable_filter = true;
  double filter_slack = 0.30;  ///< defer work above (1+slack)*mean load
  SchedulePolicy policy = SchedulePolicy::kGreedy;
};

/// One schedulable unit: query q must scan shard `shard`.
struct Task {
  std::uint32_t query = 0;
  std::uint32_t shard = 0;
};

/// Result of scheduling one batch.
struct Assignment {
  std::vector<std::vector<Task>> per_dpu;  ///< tasks to run now, by DPU
  std::vector<Task> deferred;              ///< filter buffer for next batch
  std::vector<double> predicted_load;      ///< per-DPU Eq. 15 load estimate
};

/// Greedy replica-aware scheduler over a fixed layout.
class RuntimeScheduler {
 public:
  RuntimeScheduler(const DataLayout& layout, const SchedulerParams& params)
      : layout_(layout), params_(params) {}

  /// Predicted latency of one task on its shard (Eq. 15), priced for the
  /// task's precision rung.
  double task_cost(const Shard& shard, bool q4) const {
    const double x = static_cast<double>(shard.size());
    double cost = q4 ? params_.l_lut_q4 + x * params_.l_calu_q4 + x * params_.l_sortu
                     : params_.l_lut + x * params_.l_calu + x * params_.l_sortu;
    if (params_.fuse_width > 1) {
      // Cluster-major fusion streams each shard's codes once per fused group,
      // so on average a task pays only 1/fuse_width of the DC DMA share.
      const double dma = q4 ? params_.l_dc_dma_q4 : params_.l_dc_dma;
      cost -= (1.0 - 1.0 / static_cast<double>(params_.fuse_width)) * x * dma;
    }
    return cost;
  }
  /// Full-precision convenience overload.
  double task_cost(const Shard& shard) const { return task_cost(shard, false); }

  /// Build the batch assignment for queries [begin, end) of `probes`.
  /// `probes[q]` lists the clusters query q must visit (Task.query keeps the
  /// global index q, not q - begin); `carried` holds tasks the filter
  /// deferred from the previous batch (scheduled first). When `final_batch`
  /// is true the filter is disabled so nothing is left behind. Taking a
  /// range keeps per-chunk scheduling O(chunk), not O(nq): callers hand over
  /// the full probe table once instead of rebuilding an nq-sized copy per
  /// chunk. `precision`, when given, maps global query id -> rung (nonzero
  /// = q4) so Eq. 15 prices each task at its actual rung; null prices
  /// everything full-precision.
  Assignment schedule(const std::vector<std::vector<std::uint32_t>>& probes,
                      std::size_t begin, std::size_t end,
                      const std::vector<Task>& carried, bool final_batch,
                      const std::vector<std::uint8_t>* precision = nullptr) const;

  /// Whole-table convenience overload: schedule(probes, 0, probes.size(), ...).
  Assignment schedule(const std::vector<std::vector<std::uint32_t>>& probes,
                      const std::vector<Task>& carried, bool final_batch,
                      const std::vector<std::uint8_t>* precision = nullptr) const {
    return schedule(probes, 0, probes.size(), carried, final_batch, precision);
  }

  const SchedulerParams& params() const { return params_; }
  SchedulerParams& params() { return params_; }

 private:
  const DataLayout& layout_;
  SchedulerParams params_;
};

}  // namespace drim
