#pragma once
// Persistent work-stealing executor for the host-side loops: a fixed worker
// pool started once per process, so every `parallel_for` reuses warm threads
// instead of paying pthread_create/join per call (the pre-PR-6 spawn path;
// still available for comparison via common/parallel.hpp's mode knob).
//
// Scheduling: each loop splits [begin, end) into one contiguous block per
// participating lane (the calling thread is lane 0). A lane pops small
// chunks off the front of its own block; a lane that runs dry steals the
// upper half of a victim's remaining block, parks the surplus in its own
// slot, and continues. Blocks are packed (lo, hi) in one 64-bit atomic, so
// pops and steals are single CAS operations and every index is claimed
// exactly once no matter how pops and steals interleave.
//
// Contracts preserved from the legacy shim (see common/parallel.hpp):
//  - body(i) runs at most once per index; after the first captured
//    exception an abort flag short-circuits the remaining indices, and the
//    first exception is rethrown on the calling thread once the loop drains.
//  - All body effects happen-before parallel_for returns: the final
//    pending-counter decrement is acq_rel and completion is handed to the
//    caller under a mutex + condvar, so the edge is visible to TSan
//    (std::thread / std::atomic / std::mutex are all instrumented, unlike
//    libgomp's implicit barriers).
//  - Deterministic results are the *callers'* responsibility (fixed-order
//    merges); the executor only guarantees exactly-once index execution.
//
// Nested parallel_for calls (from inside a worker body) run serially inline
// on the calling worker: the pool is flat, and inline nesting cannot
// deadlock or oversubscribe.
//
// The thread cap (set_thread_cap / drim::set_num_threads) bounds the lanes
// of every subsequent loop. Caps above hardware_concurrency are honored by
// growing the pool — oversubscription is how the 1-core CI container still
// exercises real interleavings.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace drim {

class Executor {
 public:
  /// The process-wide pool. Workers are spawned lazily on first parallel
  /// use and joined at static destruction.
  static Executor& instance();

  /// Effective lane count for loops: the cap if set, else hardware
  /// concurrency (>= 1).
  int effective_parallelism() const;

  /// Cap the lanes used by subsequent loops (0 = leave unchanged). Returns
  /// the effective count. Caps above hardware concurrency grow the pool on
  /// demand.
  int set_thread_cap(int n);

  /// True on a pool worker thread (used to run nested loops inline).
  static bool on_worker_thread();

  /// Number of OS threads currently in the pool (test/introspection only).
  std::size_t pool_size() const;

  /// Parallel for over [begin, end): body(i) exactly once per index, safe to
  /// run concurrently for distinct indices. First exception rethrown on the
  /// calling thread after the loop drains; later indices short-circuit.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, const Body& body) {
    if (end <= begin) return;
    // Ranges are packed (lo, hi) as two 32-bit halves; loops whose indices
    // do not fit run as rebased windows so slot values stay 32-bit.
    if (end > (std::size_t{1} << 32) - 1) {
      constexpr std::size_t kWindow = std::size_t{1} << 31;
      for (std::size_t w = begin; w < end; w += kWindow) {
        const std::size_t len = std::min(end - w, kWindow);
        const auto shifted = [&body, w](std::size_t i) { body(w + i); };
        parallel_windowed(0, len, &invoke_thunk<decltype(shifted)>, &shifted);
      }
      return;
    }
    parallel_windowed(begin, end, &invoke_thunk<Body>, &body);
  }

  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

 private:
  using InvokeFn = void (*)(const void*, std::size_t, std::size_t,
                            const std::atomic<bool>&);

  /// Control block of one loop, owned by the calling thread's stack frame.
  /// Workers hold a pointer only between check-in and check-out, and the
  /// caller does not return before every participant has checked out.
  struct Loop {
    InvokeFn invoke = nullptr;
    const void* body = nullptr;
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;  // packed (lo, hi)
    std::size_t lanes = 0;
    std::size_t grain = 1;
    std::atomic<std::size_t> pending{0};  // indices not yet executed/skipped
    std::atomic<bool> abort{false};
    std::exception_ptr error;
    std::mutex sync_mu;  // guards error, work_done, workers_in_flight
    std::condition_variable sync_cv;
    bool work_done = false;
    std::size_t workers_in_flight = 0;
  };

  template <typename Body>
  static void invoke_thunk(const void* body, std::size_t b, std::size_t e,
                           const std::atomic<bool>& abort) {
    const Body& fn = *static_cast<const Body*>(body);
    for (std::size_t i = b; i < e; ++i) {
      if (abort.load(std::memory_order_relaxed)) return;
      fn(i);
    }
  }

  Executor();
  void parallel_windowed(std::size_t begin, std::size_t end, InvokeFn invoke,
                         const void* body);
  void run_loop(Loop& loop, std::size_t begin, std::size_t end,
                std::size_t lanes);
  void participate(Loop& loop, std::size_t lane);
  static bool pop_chunk(Loop& loop, std::size_t lane, std::size_t& b,
                        std::size_t& e);
  static bool steal_chunk(Loop& loop, std::size_t lane, std::size_t& b,
                          std::size_t& e);
  void worker_main(std::size_t index);
  void ensure_workers_locked(std::size_t count);

  mutable std::mutex pool_mu_;  // worker list + current-loop publication
  std::condition_variable pool_cv_;
  std::vector<std::thread> workers_;
  Loop* current_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::size_t wanted_workers_ = 0;  // pool participants of the current loop
  bool shutdown_ = false;

  std::mutex submit_mu_;  // one loop drives the pool at a time
  std::atomic<int> cap_{0};
};

}  // namespace drim
