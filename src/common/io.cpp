#include "common/io.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace drim {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("cannot open " + path);
  return f;
}

template <typename T>
VecFile<T> read_vecs(const std::string& path, std::size_t max_count) {
  auto f = open_or_throw(path, "rb");
  VecFile<T> out;
  while (max_count == 0 || out.count < max_count) {
    std::int32_t dim = 0;
    if (std::fread(&dim, sizeof(dim), 1, f.get()) != 1) break;  // EOF
    if (dim <= 0) throw std::runtime_error("bad record dimension in " + path);
    if (out.dim == 0) {
      out.dim = static_cast<std::size_t>(dim);
    } else if (out.dim != static_cast<std::size_t>(dim)) {
      throw std::runtime_error("inconsistent dimensions in " + path);
    }
    const std::size_t off = out.data.size();
    out.data.resize(off + out.dim);
    if (std::fread(out.data.data() + off, sizeof(T), out.dim, f.get()) != out.dim) {
      throw std::runtime_error("truncated record in " + path);
    }
    ++out.count;
  }
  return out;
}

template <typename T>
void write_vecs(const std::string& path, const VecFile<T>& v) {
  auto f = open_or_throw(path, "wb");
  const std::int32_t dim = static_cast<std::int32_t>(v.dim);
  for (std::size_t i = 0; i < v.count; ++i) {
    if (std::fwrite(&dim, sizeof(dim), 1, f.get()) != 1 ||
        std::fwrite(v.row(i), sizeof(T), v.dim, f.get()) != v.dim) {
      throw std::runtime_error("write failure for " + path);
    }
  }
}

}  // namespace

VecFile<float> read_fvecs(const std::string& path, std::size_t max_count) {
  return read_vecs<float>(path, max_count);
}
VecFile<std::uint8_t> read_bvecs(const std::string& path, std::size_t max_count) {
  return read_vecs<std::uint8_t>(path, max_count);
}
VecFile<std::int32_t> read_ivecs(const std::string& path, std::size_t max_count) {
  return read_vecs<std::int32_t>(path, max_count);
}

void write_fvecs(const std::string& path, const VecFile<float>& v) { write_vecs(path, v); }
void write_bvecs(const std::string& path, const VecFile<std::uint8_t>& v) { write_vecs(path, v); }
void write_ivecs(const std::string& path, const VecFile<std::int32_t>& v) { write_vecs(path, v); }

}  // namespace drim
