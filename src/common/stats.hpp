#pragma once
// Small statistics helpers shared by the load-balance analyses and the
// benchmark reports (geomean speedups, tail ratios, imbalance factors).

#include <cstddef>
#include <vector>

namespace drim {

/// Arithmetic mean; returns 0 for an empty input.
double mean(const std::vector<double>& v);

/// Geometric mean; returns 0 for an empty input. Throws
/// std::invalid_argument on any input <= 0 (checked in all build modes).
double geomean(const std::vector<double>& v);

/// Population standard deviation.
double stddev(const std::vector<double>& v);

/// p-th percentile with linear interpolation; input need not be sorted.
/// p is clamped into [0, 100]; returns 0 for an empty input.
double percentile(std::vector<double> v, double p);

/// Tail percentiles of a latency sample, the summary the serving layer and
/// the per-batch bench columns report.
struct TailSummary {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// Percentile/mean/max summary of `v` (all-zero for an empty input).
TailSummary tail_summary(const std::vector<double>& v);

/// max / mean ratio — the load-imbalance factor of a set of per-DPU latencies.
/// The paper reports the slowest DPU running up to 5x longer than the fastest
/// under a trivial layout; this is the metric the layout optimizer minimizes.
double imbalance_factor(const std::vector<double>& v);

/// max / min ratio (the paper's "slowest vs fastest DPU" phrasing).
double max_min_ratio(const std::vector<double>& v);

/// Simple fixed-width histogram over [lo, hi) with `bins` buckets; values
/// outside the range are clamped into the edge buckets. Throws
/// std::invalid_argument when bins == 0 or hi <= lo (checked in all build
/// modes).
std::vector<std::size_t> histogram(const std::vector<double>& v, double lo, double hi,
                                   std::size_t bins);

}  // namespace drim
