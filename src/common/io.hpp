#pragma once
// Readers/writers for the TEXMEX vector file formats used by SIFT1B / DEEP1B
// (http://corpus-texmex.irisa.fr/): .fvecs (float32), .bvecs (uint8), .ivecs
// (int32). Each record is a 4-byte little-endian dimension followed by that
// many elements. These let DRIM-ANN run on the paper's real datasets when the
// files are available; the benchmarks default to synthetic data otherwise.

#include <cstdint>
#include <string>
#include <vector>

namespace drim {

/// A flat row-major matrix of `count` vectors with `dim` components each.
template <typename T>
struct VecFile {
  std::size_t count = 0;
  std::size_t dim = 0;
  std::vector<T> data;  // count * dim elements

  const T* row(std::size_t i) const { return data.data() + i * dim; }
};

/// Read up to `max_count` vectors from an .fvecs file (0 = all).
/// Throws std::runtime_error on malformed input or IO failure.
VecFile<float> read_fvecs(const std::string& path, std::size_t max_count = 0);

/// Read up to `max_count` vectors from a .bvecs file (0 = all).
VecFile<std::uint8_t> read_bvecs(const std::string& path, std::size_t max_count = 0);

/// Read up to `max_count` vectors from an .ivecs file (0 = all); used for
/// ground-truth neighbor lists.
VecFile<std::int32_t> read_ivecs(const std::string& path, std::size_t max_count = 0);

/// Write vectors in the corresponding format (round-trips with the readers).
void write_fvecs(const std::string& path, const VecFile<float>& v);
void write_bvecs(const std::string& path, const VecFile<std::uint8_t>& v);
void write_ivecs(const std::string& path, const VecFile<std::int32_t>& v);

}  // namespace drim
