#include "common/executor.hpp"

#include <algorithm>

namespace drim {

namespace {

// Set for the lifetime of a pool worker thread; nested loops from worker
// bodies run inline instead of re-entering the pool.
thread_local bool tl_on_worker = false;
// Set on the calling thread while it participates in its own loop, so a
// nested call from a caller-executed body also runs inline.
thread_local bool tl_in_loop = false;

constexpr std::uint64_t pack(std::size_t lo, std::size_t hi) {
  return (static_cast<std::uint64_t>(lo) << 32) | static_cast<std::uint64_t>(hi);
}
constexpr std::size_t unpack_lo(std::uint64_t r) {
  return static_cast<std::size_t>(r >> 32);
}
constexpr std::size_t unpack_hi(std::uint64_t r) {
  return static_cast<std::size_t>(r & 0xFFFFFFFFu);
}

std::size_t default_parallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

// Owner-pop granularity: small enough that a steal can rebalance the tail,
// large enough that light bodies (a kmeans point assignment) amortize the
// CAS. Mirrors the old OpenMP schedule(dynamic, 16) regime.
std::size_t grain_for(std::size_t n, std::size_t lanes) {
  const std::size_t g = n / (lanes * 8);
  return std::clamp<std::size_t>(g, 1, 64);
}

}  // namespace

Executor& Executor::instance() {
  static Executor exec;
  return exec;
}

Executor::Executor() = default;

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    shutdown_ = true;
    pool_cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

int Executor::effective_parallelism() const {
  const int cap = cap_.load(std::memory_order_relaxed);
  return cap > 0 ? cap : static_cast<int>(default_parallelism());
}

int Executor::set_thread_cap(int n) {
  if (n > 0) cap_.store(n, std::memory_order_relaxed);
  return effective_parallelism();
}

bool Executor::on_worker_thread() { return tl_on_worker; }

std::size_t Executor::pool_size() const {
  std::lock_guard<std::mutex> lk(pool_mu_);
  return workers_.size();
}

void Executor::ensure_workers_locked(std::size_t count) {
  while (workers_.size() < count) {
    const std::size_t index = workers_.size();
    workers_.emplace_back([this, index] { worker_main(index); });
  }
}

void Executor::parallel_windowed(std::size_t begin, std::size_t end,
                                 InvokeFn invoke, const void* body) {
  const std::size_t n = end - begin;
  const std::size_t lanes = std::min<std::size_t>(
      n, static_cast<std::size_t>(effective_parallelism()));
  // Serial inline: single lane, or a nested call from inside a loop body.
  // Inline exceptions propagate directly — same "first error, later indices
  // short-circuit" contract, trivially.
  if (lanes <= 1 || tl_on_worker || tl_in_loop) {
    static const std::atomic<bool> never_abort{false};
    invoke(body, begin, end, never_abort);
    return;
  }
  Loop loop;
  loop.invoke = invoke;
  loop.body = body;
  run_loop(loop, begin, end, lanes);
}

void Executor::run_loop(Loop& loop, std::size_t begin, std::size_t end,
                        std::size_t lanes) {
  // One loop drives the pool at a time; concurrent top-level callers
  // serialize here (worker bodies never reach this — they run inline).
  std::lock_guard<std::mutex> submit(submit_mu_);
  const std::size_t n = end - begin;
  loop.lanes = lanes;
  loop.grain = grain_for(n, lanes);
  loop.pending.store(n, std::memory_order_relaxed);
  loop.slots = std::make_unique<std::atomic<std::uint64_t>[]>(lanes);
  for (std::size_t j = 0; j < lanes; ++j) {
    const std::size_t lo = begin + n * j / lanes;
    const std::size_t hi = begin + n * (j + 1) / lanes;
    loop.slots[j].store(pack(lo, hi), std::memory_order_relaxed);
  }
  const std::size_t pool_workers = lanes - 1;  // caller is lane 0
  loop.workers_in_flight = pool_workers;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    ensure_workers_locked(pool_workers);
    current_ = &loop;
    wanted_workers_ = pool_workers;
    ++epoch_;
    pool_cv_.notify_all();
  }

  tl_in_loop = true;
  participate(loop, 0);
  tl_in_loop = false;

  // The loop lives on this stack frame: wait until every index has executed
  // AND every pool participant has checked out, so no worker still holds a
  // pointer into `loop` when it is destroyed.
  {
    std::unique_lock<std::mutex> lk(loop.sync_mu);
    loop.sync_cv.wait(
        lk, [&] { return loop.work_done && loop.workers_in_flight == 0; });
  }
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    current_ = nullptr;
  }
  if (loop.error) std::rethrow_exception(loop.error);
}

void Executor::worker_main(std::size_t index) {
  tl_on_worker = true;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(pool_mu_);
  for (;;) {
    pool_cv_.wait(lk, [&] { return shutdown_ || epoch_ != seen; });
    if (shutdown_) return;
    seen = epoch_;
    Loop* loop = current_;
    // A worker spawned mid-loop (pool growth) has index >= wanted_workers_
    // for the loop that spawned its predecessors; only participants whose
    // check-in was counted may touch the loop.
    if (loop == nullptr || index >= wanted_workers_) continue;
    lk.unlock();
    participate(*loop, index + 1);
    {
      // Check out: once the last participant leaves, the caller may destroy
      // the loop object.
      std::lock_guard<std::mutex> slk(loop->sync_mu);
      --loop->workers_in_flight;
      loop->sync_cv.notify_all();
    }
    lk.lock();
  }
}

void Executor::participate(Loop& loop, std::size_t lane) {
  for (;;) {
    std::size_t b = 0, e = 0;
    if (!pop_chunk(loop, lane, b, e) && !steal_chunk(loop, lane, b, e)) break;
    if (!loop.abort.load(std::memory_order_relaxed)) {
      try {
        loop.invoke(loop.body, b, e, loop.abort);
      } catch (...) {
        std::lock_guard<std::mutex> lk(loop.sync_mu);
        if (!loop.error) loop.error = std::current_exception();
        loop.abort.store(true, std::memory_order_relaxed);
      }
    }
    // Claimed indices count as drained whether executed, skipped after
    // abort, or cut short by the exception just captured.
    const std::size_t done = e - b;
    if (loop.pending.fetch_sub(done, std::memory_order_acq_rel) == done) {
      std::lock_guard<std::mutex> lk(loop.sync_mu);
      loop.work_done = true;
      loop.sync_cv.notify_all();
    }
  }
}

bool Executor::pop_chunk(Loop& loop, std::size_t lane, std::size_t& b,
                         std::size_t& e) {
  std::atomic<std::uint64_t>& slot = loop.slots[lane];
  std::uint64_t cur = slot.load(std::memory_order_acquire);
  for (;;) {
    const std::size_t lo = unpack_lo(cur);
    const std::size_t hi = unpack_hi(cur);
    if (lo >= hi) return false;
    const std::size_t take = std::min(loop.grain, hi - lo);
    if (slot.compare_exchange_weak(cur, pack(lo + take, hi),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      b = lo;
      e = lo + take;
      return true;
    }
  }
}

bool Executor::steal_chunk(Loop& loop, std::size_t lane, std::size_t& b,
                           std::size_t& e) {
  const std::size_t lanes = loop.lanes;
  for (;;) {
    bool saw_work = false;
    for (std::size_t d = 1; d < lanes; ++d) {
      const std::size_t v = (lane + d) % lanes;
      std::atomic<std::uint64_t>& slot = loop.slots[v];
      std::uint64_t cur = slot.load(std::memory_order_acquire);
      for (;;) {
        const std::size_t lo = unpack_lo(cur);
        const std::size_t hi = unpack_hi(cur);
        if (lo >= hi) break;
        saw_work = true;
        // Steal the upper half; the victim keeps popping its lower half
        // undisturbed. ABA is structurally impossible: a packed (lo, hi)
        // value can only exist while [lo, hi) is unclaimed, and claimed
        // indices never re-enter any slot.
        const std::size_t mid = lo + (hi - lo + 1) / 2;
        if (slot.compare_exchange_weak(cur, pack(lo, mid),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
          const std::size_t take = std::min(loop.grain, hi - mid);
          if (hi - mid > take) {
            // Park the surplus in our own (empty) slot for later pops —
            // and for other thieves.
            loop.slots[lane].store(pack(mid + take, hi),
                                   std::memory_order_release);
          }
          b = mid;
          e = mid + take;
          return true;
        }
      }
    }
    if (!saw_work) return false;  // a full scan found every slot empty
  }
}

}  // namespace drim
