#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace drim {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) {
    // An explicit throw, not an assert: release builds compile asserts out
    // and log(x <= 0) would silently turn the whole result into NaN/-inf.
    if (!(x > 0.0)) {
      throw std::invalid_argument("geomean: inputs must be > 0");
    }
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(v.size()));
}

double stddev(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

namespace {

/// Percentile of an already-sorted (ascending) sample.
double sorted_percentile(const std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = (p / 100.0) * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace

double percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  return sorted_percentile(v, p);
}

TailSummary tail_summary(const std::vector<double>& v) {
  TailSummary t;
  if (v.empty()) return t;
  // Sort one copy and derive every statistic from it, instead of letting
  // percentile() copy and re-sort the full sample per call.
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  t.p50 = sorted_percentile(sorted, 50);
  t.p95 = sorted_percentile(sorted, 95);
  t.p99 = sorted_percentile(sorted, 99);
  // Mean over the ORIGINAL order: fp addition is not associative, so summing
  // the sorted copy would drift the mean by ulps from mean(v).
  t.mean = mean(v);
  t.max = sorted.back();
  return t;
}

double imbalance_factor(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double m = mean(v);
  if (m == 0.0) return 0.0;
  return *std::max_element(v.begin(), v.end()) / m;
}

double max_min_ratio(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
  if (*mn == 0.0) return 0.0;
  return *mx / *mn;
}

std::vector<std::size_t> histogram(const std::vector<double>& v, double lo, double hi,
                                   std::size_t bins) {
  // Explicit guards (not asserts): with NDEBUG a zero bin count or an empty
  // range would divide by zero and feed NaN/inf through the cast below.
  if (bins == 0) throw std::invalid_argument("histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("histogram: need hi > lo");
  std::vector<std::size_t> h(bins, 0);
  const double w = (hi - lo) / static_cast<double>(bins);
  for (double x : v) {
    auto idx = static_cast<long>((x - lo) / w);
    idx = std::clamp<long>(idx, 0, static_cast<long>(bins) - 1);
    ++h[static_cast<std::size_t>(idx)];
  }
  return h;
}

}  // namespace drim
