#pragma once
// OpenMP-backed parallel loop helper with a serial fallback, so the library
// builds and behaves identically when OpenMP is unavailable. The CPU baseline
// (Faiss-style) uses this to parallelize ADC scans the way the paper's
// 32-thread comparator does.

#include <cstddef>
#include <cstdint>

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace drim {

/// Number of worker threads the host runtime will use.
inline int num_threads() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Parallel for over [begin, end) with a dynamic schedule. `body` is invoked
/// as body(i) for every index exactly once; it must be safe to run
/// concurrently for distinct indices.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body) {
#if defined(_OPENMP)
#pragma omp parallel for schedule(dynamic, 16)
  for (std::int64_t i = static_cast<std::int64_t>(begin);
       i < static_cast<std::int64_t>(end); ++i) {
    body(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = begin; i < end; ++i) body(i);
#endif
}

}  // namespace drim
