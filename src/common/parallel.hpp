#pragma once
// OpenMP-backed parallel loop helper with a serial fallback, so the library
// builds and behaves identically when OpenMP is unavailable. Used by the CPU
// baseline (Faiss-style ADC scans) and by the PIM simulator's host loops:
// per-DPU kernel execution, input staging, and result collection all fan out
// across host threads (see DESIGN.md "Host threading model").
//
// Under ThreadSanitizer the loop dispatches over std::thread instead of
// OpenMP: GCC's libgomp is not TSan-instrumented, so the implicit join
// barrier's happens-before edge is invisible and every write-in-worker /
// read-after-join pair shows up as a false race. pthread create/join IS
// instrumented, so the std::thread path gives TSan an accurate
// happens-before graph while still exercising real concurrency.

#include <cstddef>
#include <cstdint>
#include <exception>

#if defined(__SANITIZE_THREAD__)
#define DRIM_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DRIM_TSAN_ACTIVE 1
#endif
#endif
#ifndef DRIM_TSAN_ACTIVE
#define DRIM_TSAN_ACTIVE 0
#endif

#if defined(_OPENMP)
#include <omp.h>
#endif

#if DRIM_TSAN_ACTIVE
#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>
#endif

namespace drim {

/// Number of worker threads the host runtime will use.
inline int num_threads() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#elif DRIM_TSAN_ACTIVE
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
#else
  return 1;
#endif
}

/// Cap the worker-thread pool (0 = leave unchanged). Returns the effective
/// count. Serial builds always report 1.
inline int set_num_threads(int n) {
#if defined(_OPENMP)
  if (n > 0) omp_set_num_threads(n);
  return omp_get_max_threads();
#else
  (void)n;
  return 1;
#endif
}

/// Parallel for over [begin, end) with a dynamic schedule. `body` is invoked
/// as body(i) for every index exactly once; it must be safe to run
/// concurrently for distinct indices. If any invocation throws, the first
/// captured exception is rethrown on the calling thread after the loop
/// drains (OpenMP would otherwise terminate on an escaping exception).
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body) {
#if DRIM_TSAN_ACTIVE
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t workers =
      std::min<std::size_t>(n, static_cast<std::size_t>(num_threads()));
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  std::exception_ptr error = nullptr;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) break;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
#elif defined(_OPENMP)
  std::exception_ptr error = nullptr;
#pragma omp parallel for schedule(dynamic, 16)
  for (std::int64_t i = static_cast<std::int64_t>(begin);
       i < static_cast<std::int64_t>(end); ++i) {
    try {
      body(static_cast<std::size_t>(i));
    } catch (...) {
#pragma omp critical(drim_parallel_for_error)
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
#else
  for (std::size_t i = begin; i < end; ++i) body(i);
#endif
}

}  // namespace drim
