#pragma once
// Parallel loop helper for the host path. Since PR 6 the default backend is
// the persistent work-stealing executor (common/executor.hpp): a fixed
// worker pool started once per process, per-lane ranges with stealing. Two
// legacy backends remain selectable for comparison and for the
// spawn-vs-persistent bench columns:
//
//   persistent  Executor pool (default). TSan-clean: std::thread/std::atomic/
//               std::mutex are instrumented, so the happens-before edges are
//               visible (unlike libgomp's implicit barriers).
//   spawn       std::thread-per-call — the pre-PR-6 TSan path, kept as the
//               bench baseline for pool amortization.
//   omp         `#pragma omp parallel for` when compiled with OpenMP. Routed
//               to `persistent` under TSan (libgomp is uninstrumented) or
//               when OpenMP is absent.
//   serial      plain loop on the calling thread.
//
// Select with DRIM_PARALLEL=<mode> (read once at first use) or
// set_parallel_mode(). All modes share the loop contract: body(i) runs at
// most once per index; after the first captured exception remaining indices
// short-circuit via a relaxed abort flag, and the first exception is
// rethrown on the calling thread after the loop drains. All modes honor the
// set_num_threads cap.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/executor.hpp"

#if defined(__SANITIZE_THREAD__)
#define DRIM_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DRIM_TSAN_ACTIVE 1
#endif
#endif
#ifndef DRIM_TSAN_ACTIVE
#define DRIM_TSAN_ACTIVE 0
#endif

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace drim {

enum class ParallelMode : int {
  kPersistent = 0,
  kSpawn = 1,
  kOpenMP = 2,
  kSerial = 3,
};

namespace detail {

/// Thread cap shared by every backend. 0 = unset (hardware concurrency).
inline std::atomic<int>& thread_cap() {
  static std::atomic<int> cap{0};
  return cap;
}

inline ParallelMode mode_from_env() {
  const char* env = std::getenv("DRIM_PARALLEL");
  if (env != nullptr) {
    if (std::strcmp(env, "spawn") == 0) return ParallelMode::kSpawn;
    if (std::strcmp(env, "omp") == 0) return ParallelMode::kOpenMP;
    if (std::strcmp(env, "serial") == 0) return ParallelMode::kSerial;
    if (std::strcmp(env, "persistent") == 0) return ParallelMode::kPersistent;
  }
  return ParallelMode::kPersistent;
}

inline std::atomic<int>& mode_store() {
  static std::atomic<int> mode{static_cast<int>(mode_from_env())};
  return mode;
}

}  // namespace detail

inline ParallelMode parallel_mode() {
  ParallelMode m = static_cast<ParallelMode>(
      detail::mode_store().load(std::memory_order_relaxed));
#if DRIM_TSAN_ACTIVE
  // libgomp barriers are invisible to TSan; every loop would be a false race.
  if (m == ParallelMode::kOpenMP) m = ParallelMode::kPersistent;
#elif !defined(_OPENMP)
  if (m == ParallelMode::kOpenMP) m = ParallelMode::kPersistent;
#endif
  return m;
}

inline void set_parallel_mode(ParallelMode m) {
  detail::mode_store().store(static_cast<int>(m), std::memory_order_relaxed);
}

/// Number of worker threads the host runtime will use.
inline int num_threads() {
  if (parallel_mode() == ParallelMode::kSerial) return 1;
  const int cap = detail::thread_cap().load(std::memory_order_relaxed);
  if (cap > 0) return cap;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Cap the worker-thread pool (0 = leave unchanged). Returns the effective
/// count. The cap is honored by every backend, including the std::thread
/// paths — pre-PR-6 it silently no-oped on non-OpenMP builds while the TSan
/// pool sized itself from hardware_concurrency().
inline int set_num_threads(int n) {
  if (n > 0) {
    detail::thread_cap().store(n, std::memory_order_relaxed);
    Executor::instance().set_thread_cap(n);
#if defined(_OPENMP)
    omp_set_num_threads(n);
#endif
  }
  return num_threads();
}

namespace detail {

/// std::thread-per-call loop (mode `spawn`): the pre-PR-6 dispatch, kept as
/// the baseline the persistent executor is benchmarked against.
template <typename Body>
void parallel_for_spawn(std::size_t begin, std::size_t end, const Body& body) {
  const std::size_t n = end - begin;
  const std::size_t workers =
      std::min<std::size_t>(n, static_cast<std::size_t>(num_threads()));
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  std::atomic<bool> abort{false};
  std::exception_ptr error = nullptr;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) break;
      if (abort.load(std::memory_order_relaxed)) continue;  // drain the range
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

#if defined(_OPENMP)
template <typename Body>
void parallel_for_omp(std::size_t begin, std::size_t end, const Body& body) {
  std::exception_ptr error = nullptr;
  std::atomic<bool> abort{false};
#pragma omp parallel for schedule(dynamic, 16)
  for (std::int64_t i = static_cast<std::int64_t>(begin);
       i < static_cast<std::int64_t>(end); ++i) {
    // OpenMP cannot break out of the worksharing loop, so after the first
    // captured exception the remaining iterations short-circuit here instead
    // of keeping the body running (the pre-PR-6 behavior).
    if (abort.load(std::memory_order_relaxed)) continue;
    try {
      body(static_cast<std::size_t>(i));
    } catch (...) {
#pragma omp critical(drim_parallel_for_error)
      if (!error) error = std::current_exception();
      abort.store(true, std::memory_order_relaxed);
    }
  }
  if (error) std::rethrow_exception(error);
}
#endif

}  // namespace detail

/// Parallel for over [begin, end) with a dynamic schedule. `body` is invoked
/// as body(i) at most once per index (exactly once if no invocation throws);
/// it must be safe to run concurrently for distinct indices. If any
/// invocation throws, later indices short-circuit and the first captured
/// exception is rethrown on the calling thread after the loop drains.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body) {
  if (end <= begin) return;
  switch (parallel_mode()) {
    case ParallelMode::kSpawn:
      detail::parallel_for_spawn(begin, end, body);
      return;
    case ParallelMode::kOpenMP:
#if defined(_OPENMP) && !DRIM_TSAN_ACTIVE
      detail::parallel_for_omp(begin, end, body);
      return;
#else
      break;  // parallel_mode() already routed this away; defensive
#endif
    case ParallelMode::kSerial:
      for (std::size_t i = begin; i < end; ++i) body(i);
      return;
    case ParallelMode::kPersistent:
      break;
  }
  Executor::instance().parallel_for(begin, end, body);
}

}  // namespace drim
