#include "common/rng.hpp"

#include <cassert>

namespace drim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  has_cached_gaussian_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method would be overkill; modulo bias is
  // negligible for bound << 2^64 as used here.
  return next_u64() % bound;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform(float lo, float hi) {
  return lo + static_cast<float>(next_double()) * (hi - lo);
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n, std::uint32_t k) {
  assert(k <= n);
  std::vector<std::uint32_t> out;
  out.reserve(k);
  // Selection sampling (Knuth 3.4.2 algorithm S): O(n), stable ascending order.
  std::uint32_t remaining = k;
  for (std::uint32_t i = 0; i < n && remaining > 0; ++i) {
    const std::uint64_t left = n - i;
    if (next_below(left) < remaining) {
      out.push_back(i);
      --remaining;
    }
  }
  return out;
}

ZipfSampler::ZipfSampler(std::uint32_t n, double s) : n_(n), cdf_(n) {
  assert(n > 0);
  double total = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::uint32_t ZipfSampler::operator()(Rng& rng) const {
  const double u = rng.next_double();
  // Binary search for the first cdf entry >= u.
  std::uint32_t lo = 0, hi = n_ - 1;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace drim
