#pragma once
// Wall-clock timing helpers used by the CPU baseline and the benchmark
// harnesses. Simulated-PIM latencies come from the cycle model in src/pim, not
// from these timers.

#include <chrono>

namespace drim {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace drim
