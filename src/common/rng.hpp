#pragma once
// Deterministic, fast random number generation for dataset synthesis and
// randomized algorithms. All DRIM-ANN components take explicit seeds so that
// every experiment in the repository is reproducible bit-for-bit.

#include <cstdint>
#include <cmath>
#include <vector>

namespace drim {

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high-quality, and seedable via
/// SplitMix64 so that nearby seeds yield independent streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialize the generator state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Standard normal via Box-Muller (cached pair).
  double gaussian();

  /// Normal with the given mean / stddev.
  double gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (reservoir sampling, stable order).
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n, std::uint32_t k);

 private:
  std::uint64_t s_[4] = {};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Zipf-distributed integer sampler over [0, n). Used to model the skewed
/// query-to-cluster popularity that drives the paper's load-imbalance
/// observations (Section IV-B, Observation 3).
class ZipfSampler {
 public:
  /// exponent s >= 0; s == 0 degenerates to uniform.
  ZipfSampler(std::uint32_t n, double s);

  /// Draw one sample using the provided generator.
  std::uint32_t operator()(Rng& rng) const;

  std::uint32_t size() const { return n_; }

 private:
  std::uint32_t n_;
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1
};

}  // namespace drim
