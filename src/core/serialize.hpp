#pragma once
// Binary serialization for trained indices. A production ANNS deployment
// trains once and serves many times (the paper's offline/online split), so
// the trained coarse quantizer, PQ codebooks, OPQ rotation, and inverted
// lists round-trip through a single versioned file.
//
// Format: little-endian, magic "DRIM" + version, then length-prefixed
// sections. Not intended to be portable across endianness.

#include <string>

#include "core/ivf.hpp"

namespace drim {

/// Current on-disk format version.
inline constexpr std::uint32_t kIndexFormatVersion = 1;

/// Write a trained (and optionally populated) index to `path`.
/// Throws std::runtime_error on IO failure or an untrained index.
void save_index(const IvfPqIndex& index, const std::string& path);

/// Load an index written by save_index. Throws std::runtime_error on IO
/// failure, bad magic, or an unsupported version.
IvfPqIndex load_index(const std::string& path);

}  // namespace drim
