#pragma once
// Exact re-ranking: refine an ADC candidate list with true L2 distances
// against the raw base vectors. A standard IVF-PQ accuracy extension (used
// by several of the paper's baselines, e.g. Quick-ADC and Faiss's
// refine-index): search with k' > k candidates, then re-rank the k' down to
// k exactly. On the DRIM-ANN system this runs on the host after the PIM
// merge, trading a little host compute + DRAM traffic for recall — letting
// the DSE pick a cheaper (M, CB) at the same accuracy constraint.

#include <vector>

#include "core/topk.hpp"
#include "data/dataset.hpp"

namespace drim {

/// Re-rank `candidates` for one query against the raw corpus, returning the
/// k exact-nearest among them (ascending by true distance).
std::vector<Neighbor> rerank_exact(const ByteDataset& base, std::span<const float> query,
                                   const std::vector<Neighbor>& candidates, std::size_t k);

/// Batch form over a whole result set.
std::vector<std::vector<Neighbor>> rerank_exact_all(
    const ByteDataset& base, const FloatMatrix& queries,
    const std::vector<std::vector<Neighbor>>& candidates, std::size_t k);

}  // namespace drim
