#include "core/opq.hpp"

#include <cassert>
#include <vector>

#include "core/distances.hpp"

namespace drim {
namespace {

FloatMatrix apply_rotation(const Matrix& r, const FloatMatrix& points) {
  const std::size_t dim = points.dim();
  FloatMatrix out(points.count(), dim);
  for (std::size_t i = 0; i < points.count(); ++i) {
    auto src = points.row(i);
    auto dst = out.row(i);
    for (std::size_t row = 0; row < dim; ++row) {
      double acc = 0.0;
      for (std::size_t col = 0; col < dim; ++col) acc += r.at(row, col) * src[col];
      dst[row] = static_cast<float>(acc);
    }
  }
  return out;
}

}  // namespace

void OptimizedProductQuantizer::train(const FloatMatrix& points, const OPQParams& params) {
  const std::size_t dim = points.dim();
  rotation_ = Matrix::identity(dim);

  std::vector<std::uint8_t> code;
  std::vector<float> recon(dim);

  for (std::size_t it = 0; it < params.outer_iters; ++it) {
    // (1) Train PQ in the current rotated space.
    const FloatMatrix rotated = apply_rotation(rotation_, points);
    PQParams pq_params = params.pq;
    pq_params.seed = params.pq.seed + it;
    pq_.train(rotated, pq_params);

    if (it + 1 == params.outer_iters) break;

    // (2) Procrustes: R = polar(X^T X_hat), where X_hat is the reconstruction
    // mapped back through the identity (reconstructions live in rotated
    // space, originals in input space). Accumulate M = sum_i x_i * xhat_i^T.
    code.resize(pq_.code_size());
    Matrix m(dim, dim);
    for (std::size_t i = 0; i < points.count(); ++i) {
      pq_.encode(rotated.row(i), code);
      pq_.decode(code, recon);
      auto x = points.row(i);
      for (std::size_t r = 0; r < dim; ++r) {
        const double xr = x[r];
        if (xr == 0.0) continue;
        for (std::size_t c = 0; c < dim; ++c) m.at(c, r) += recon[c] * xr;
      }
    }
    // min_R ||R X - Xhat||_F over orthogonal R has solution R = U V^T where
    // Xhat X^T = U S V^T; `m` above is exactly Xhat X^T.
    rotation_ = procrustes_rotation(m);
  }
}

void OptimizedProductQuantizer::rotate(std::span<const float> v, std::span<float> out) const {
  const std::size_t dim = rotation_.rows();
  assert(v.size() == dim && out.size() == dim);
  for (std::size_t row = 0; row < dim; ++row) {
    double acc = 0.0;
    for (std::size_t col = 0; col < dim; ++col) acc += rotation_.at(row, col) * v[col];
    out[row] = static_cast<float>(acc);
  }
}

void OptimizedProductQuantizer::encode(std::span<const float> v,
                                       std::span<std::uint8_t> code) const {
  std::vector<float> rotated(v.size());
  rotate(v, rotated);
  pq_.encode(rotated, code);
}

double OptimizedProductQuantizer::reconstruction_error(const FloatMatrix& points) const {
  std::vector<std::uint8_t> code(pq_.code_size());
  std::vector<float> rotated(points.dim());
  std::vector<float> recon(points.dim());
  double total = 0.0;
  for (std::size_t i = 0; i < points.count(); ++i) {
    rotate(points.row(i), rotated);
    pq_.encode(rotated, code);
    pq_.decode(code, recon);
    total += l2_sq(std::span<const float>(rotated), std::span<const float>(recon));
  }
  return points.count() > 0 ? total / static_cast<double>(points.count()) : 0.0;
}

}  // namespace drim
