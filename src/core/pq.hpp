#pragma once
// Product quantization (Jégou et al., TPAMI'11): split D-dimensional vectors
// into M subvectors, k-means each subspace into CB codewords, store points as
// M small codes. Search uses asymmetric distance computation (ADC): per query
// a [M x CB] lookup table of partial squared distances is built once, after
// which each point's distance is M table loads + (M-1) additions — exactly
// the computation DRIM-ANN maps onto DPUs.
//
// CB may exceed 256 ("DRIM-ANN supports more codebook entries"); codes are
// stored as uint8 when CB <= 256 and uint16 otherwise.

#include <cstdint>
#include <vector>

#include "core/kmeans.hpp"
#include "data/dataset.hpp"

namespace drim {

/// PQ training configuration.
struct PQParams {
  std::size_t m = 16;           ///< number of subquantizers (must divide dim)
  std::size_t cb_entries = 256; ///< codewords per subquantizer (CB), <= 65536
  std::size_t train_iters = 15;
  std::uint64_t seed = 7;
};

/// A trained product quantizer.
class ProductQuantizer {
 public:
  ProductQuantizer() = default;

  /// Train per-subspace codebooks on float training rows (typically IVF
  /// residuals). points.dim() must be divisible by params.m.
  void train(const FloatMatrix& points, const PQParams& params);

  std::size_t dim() const { return dim_; }
  std::size_t m() const { return m_; }
  std::size_t cb_entries() const { return cb_; }
  std::size_t dsub() const { return dim_ / m_; }
  /// Bytes per encoded point.
  std::size_t code_size() const { return m_ * (cb_ > 256 ? 2 : 1); }
  bool wide_codes() const { return cb_ > 256; }

  /// Codeword `e` of subquantizer `sub` (dsub floats).
  std::span<const float> codeword(std::size_t sub, std::size_t e) const;

  /// Encode one vector into code_size() bytes (nearest codeword per subspace).
  void encode(std::span<const float> v, std::span<std::uint8_t> code) const;

  /// Decode a code back to its reconstruction.
  void decode(std::span<const std::uint8_t> code, std::span<float> out) const;

  /// Read the sub-th code value regardless of width.
  std::uint32_t code_at(std::span<const std::uint8_t> code, std::size_t sub) const;

  /// Build the ADC lookup table for a (residual) query: lut[sub * CB + e] =
  /// squared L2 distance between query subvector `sub` and codeword `e`.
  void compute_adc_lut(std::span<const float> query, std::span<float> lut) const;

  /// ADC distance of an encoded point given a precomputed LUT.
  float adc_distance(std::span<const float> lut, std::span<const std::uint8_t> code) const;

  /// ADC distances of `n` consecutively packed codes (the inverted-list
  /// layout): out[i] = adc_distance(lut, code i). Routes through the
  /// SIMD-dispatched kernel table; bit-identical to calling adc_distance in
  /// a loop.
  void adc_scan(std::span<const float> lut, const std::uint8_t* codes,
                std::size_t n, float* out) const;

  /// Symmetric distance (SDC) between two codes; provided for completeness
  /// (the paper adopts ADC because it is more accurate at equal cost).
  float sdc_distance(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) const;

  /// Mean squared reconstruction error over a set of rows.
  double reconstruction_error(const FloatMatrix& points) const;

  /// Raw codebooks: m() matrices of [CB x dsub] floats (mutable for DPQ-style
  /// refinement).
  FloatMatrix& codebook(std::size_t sub) { return codebooks_[sub]; }
  const FloatMatrix& codebook(std::size_t sub) const { return codebooks_[sub]; }

  /// Rebuild a quantizer from serialized state (see core/serialize.hpp).
  /// codebooks must hold m matrices of [cb x (dim/m)] each.
  void restore(std::size_t dim, std::size_t m, std::size_t cb,
               std::vector<FloatMatrix> codebooks);

 private:
  std::size_t dim_ = 0, m_ = 0, cb_ = 0;
  std::vector<FloatMatrix> codebooks_;  // one [CB x dsub] matrix per subspace
};

}  // namespace drim
