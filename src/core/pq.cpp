#include "core/pq.hpp"

#include <cassert>
#include <cstring>
#include <limits>

#include "core/distances.hpp"

namespace drim {

void ProductQuantizer::train(const FloatMatrix& points, const PQParams& params) {
  assert(params.m > 0 && points.dim() % params.m == 0);
  assert(params.cb_entries >= 2 && params.cb_entries <= 65536);
  dim_ = points.dim();
  m_ = params.m;
  cb_ = params.cb_entries;
  const std::size_t dsub = dim_ / m_;

  codebooks_.clear();
  codebooks_.reserve(m_);
  for (std::size_t sub = 0; sub < m_; ++sub) {
    // Slice out this subspace from every training row.
    FloatMatrix slice(points.count(), dsub);
    for (std::size_t i = 0; i < points.count(); ++i) {
      auto src = points.row(i);
      auto dst = slice.row(i);
      for (std::size_t d = 0; d < dsub; ++d) dst[d] = src[sub * dsub + d];
    }
    KMeansParams km;
    km.k = cb_;
    km.max_iters = params.train_iters;
    km.seed = params.seed + sub;  // independent stream per subspace
    codebooks_.push_back(kmeans(slice, km).centroids);
  }
}

void ProductQuantizer::restore(std::size_t dim, std::size_t m, std::size_t cb,
                               std::vector<FloatMatrix> codebooks) {
  assert(m > 0 && dim % m == 0 && codebooks.size() == m);
  for (const FloatMatrix& book : codebooks) {
    assert(book.count() == cb && book.dim() == dim / m);
    (void)book;
  }
  dim_ = dim;
  m_ = m;
  cb_ = cb;
  codebooks_ = std::move(codebooks);
}

std::span<const float> ProductQuantizer::codeword(std::size_t sub, std::size_t e) const {
  return codebooks_[sub].row(e);
}

void ProductQuantizer::encode(std::span<const float> v, std::span<std::uint8_t> code) const {
  assert(v.size() == dim_ && code.size() >= code_size());
  const std::size_t dsub = this->dsub();
  for (std::size_t sub = 0; sub < m_; ++sub) {
    const std::span<const float> sv = v.subspan(sub * dsub, dsub);
    const std::uint32_t best = nearest_centroid(codebooks_[sub], sv);
    if (wide_codes()) {
      const auto v16 = static_cast<std::uint16_t>(best);
      std::memcpy(code.data() + sub * 2, &v16, 2);
    } else {
      code[sub] = static_cast<std::uint8_t>(best);
    }
  }
}

void ProductQuantizer::decode(std::span<const std::uint8_t> code, std::span<float> out) const {
  assert(out.size() == dim_);
  const std::size_t dsub = this->dsub();
  for (std::size_t sub = 0; sub < m_; ++sub) {
    const std::uint32_t e = code_at(code, sub);
    auto cw = codeword(sub, e);
    for (std::size_t d = 0; d < dsub; ++d) out[sub * dsub + d] = cw[d];
  }
}

std::uint32_t ProductQuantizer::code_at(std::span<const std::uint8_t> code,
                                        std::size_t sub) const {
  if (wide_codes()) {
    std::uint16_t v = 0;
    std::memcpy(&v, code.data() + sub * 2, 2);
    return v;
  }
  return code[sub];
}

void ProductQuantizer::compute_adc_lut(std::span<const float> query,
                                       std::span<float> lut) const {
  assert(query.size() == dim_ && lut.size() >= m_ * cb_);
  const std::size_t dsub = this->dsub();
  const DistanceKernels& kern = kernels();
  for (std::size_t sub = 0; sub < m_; ++sub) {
    // Codebooks are row-major [cb x dsub], so one kernel call fills the row;
    // per-entry accumulation order matches the old per-codeword l2_sq loop.
    kern.adc_lut_row(query.data() + sub * dsub, codebooks_[sub].data(), dsub,
                     cb_, lut.data() + sub * cb_);
  }
}

void ProductQuantizer::adc_scan(std::span<const float> lut,
                                const std::uint8_t* codes, std::size_t n,
                                float* out) const {
  assert(lut.size() >= m_ * cb_);
  kernels().adc_scan_f32(lut.data(), cb_, m_, codes, code_size(), wide_codes(),
                         n, out);
}

float ProductQuantizer::adc_distance(std::span<const float> lut,
                                     std::span<const std::uint8_t> code) const {
  float acc = 0.0f;
  for (std::size_t sub = 0; sub < m_; ++sub) {
    acc += lut[sub * cb_ + code_at(code, sub)];
  }
  return acc;
}

float ProductQuantizer::sdc_distance(std::span<const std::uint8_t> a,
                                     std::span<const std::uint8_t> b) const {
  float acc = 0.0f;
  for (std::size_t sub = 0; sub < m_; ++sub) {
    acc += l2_sq(codeword(sub, code_at(a, sub)), codeword(sub, code_at(b, sub)));
  }
  return acc;
}

double ProductQuantizer::reconstruction_error(const FloatMatrix& points) const {
  std::vector<std::uint8_t> code(code_size());
  std::vector<float> recon(dim_);
  double total = 0.0;
  for (std::size_t i = 0; i < points.count(); ++i) {
    encode(points.row(i), code);
    decode(code, recon);
    total += l2_sq(points.row(i), recon);
  }
  return points.count() > 0 ? total / static_cast<double>(points.count()) : 0.0;
}

}  // namespace drim
