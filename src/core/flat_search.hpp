#pragma once
// Exact brute-force k-NN over a uint8 corpus. This is the ground-truth oracle
// for every recall measurement in the repository (the paper's accuracy
// constraint is recall@10 >= 0.8 against exact neighbors).

#include <cstdint>
#include <vector>

#include "core/topk.hpp"
#include "data/dataset.hpp"

namespace drim {

/// Exact top-k neighbors of a single float query against a uint8 corpus.
std::vector<Neighbor> flat_search(const ByteDataset& base, std::span<const float> query,
                                  std::size_t k);

/// Exact top-k for every query, parallelized over queries on the host.
/// Result: queries.count() rows, each with k ascending-sorted neighbors.
std::vector<std::vector<Neighbor>> flat_search_all(const ByteDataset& base,
                                                   const FloatMatrix& queries, std::size_t k);

}  // namespace drim
