#pragma once
// Bounded max-heap for top-k smallest-distance selection — the TS (top-k
// sorting) phase of cluster-based ANNS. Both the CPU baseline and the DPU
// top-k kernel use this structure; the DPU kernel additionally charges cycles
// per heap operation through its context.

#include <cstdint>
#include <limits>
#include <vector>

namespace drim {

/// Candidate neighbor: (distance, id). Ordered by distance, ties by id so
/// results are deterministic across schedules.
struct Neighbor {
  float dist = std::numeric_limits<float>::infinity();
  std::uint32_t id = 0;

  friend bool operator<(const Neighbor& a, const Neighbor& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  }
};

/// Fixed-capacity top-k tracker keeping the k smallest-distance candidates.
/// push() is O(log k) when the candidate is admitted, O(1) when rejected.
class TopK {
 public:
  explicit TopK(std::size_t k);

  /// Offer a candidate; returns true if it entered the current top-k.
  bool push(float dist, std::uint32_t id);

  /// Current admission threshold (distance of the worst kept candidate, or
  /// +inf while the heap is not yet full).
  float threshold() const;

  std::size_t size() const { return heap_.size(); }
  std::size_t capacity() const { return k_; }

  /// Extract results sorted ascending by (distance, id). The heap is consumed.
  std::vector<Neighbor> take_sorted();

  /// Merge another tracker's contents into this one.
  void merge(const TopK& other);

  /// Read-only view of the unsorted heap contents.
  const std::vector<Neighbor>& raw() const { return heap_; }

 private:
  std::size_t k_;
  std::vector<Neighbor> heap_;  // max-heap on (dist, id)
};

}  // namespace drim
