#pragma once
// Optimized Product Quantization (Ge et al., CVPR'13), non-parametric
// variant: learn an orthogonal rotation R that minimizes PQ reconstruction
// error by alternating (1) PQ training/encoding in the rotated space and
// (2) solving the orthogonal Procrustes problem for R. DRIM-ANN's engine
// accepts OPQ as a drop-in IVF-PQ variant (Section I lists OPQ support).

#include "core/matrix.hpp"
#include "core/pq.hpp"

namespace drim {

/// OPQ training configuration.
struct OPQParams {
  PQParams pq;              ///< inner product quantizer parameters
  std::size_t outer_iters = 8;  ///< rotation/codebook alternations
  std::uint64_t seed = 11;
};

/// Rotation + product quantizer trained jointly.
class OptimizedProductQuantizer {
 public:
  /// Train on float rows (typically IVF residuals).
  void train(const FloatMatrix& points, const OPQParams& params);

  /// Rotate a vector into the PQ space: out = R * v.
  void rotate(std::span<const float> v, std::span<float> out) const;

  /// Encode a vector (rotation then PQ encode).
  void encode(std::span<const float> v, std::span<std::uint8_t> code) const;

  /// The underlying PQ operating in rotated space. ADC LUTs must be built
  /// from *rotated* query residuals.
  const ProductQuantizer& pq() const { return pq_; }

  /// Learned rotation (row-major D x D, orthogonal).
  const Matrix& rotation() const { return rotation_; }

  /// Reconstruction MSE in the *original* space (rotation is orthogonal, so
  /// it equals the rotated-space MSE; used by tests to show OPQ <= PQ).
  double reconstruction_error(const FloatMatrix& points) const;

  /// Rebuild from serialized state (see core/serialize.hpp).
  void restore(Matrix rotation, ProductQuantizer pq) {
    rotation_ = std::move(rotation);
    pq_ = std::move(pq);
  }

 private:
  ProductQuantizer pq_;
  Matrix rotation_;  // R, applied as out = R v
};

}  // namespace drim
