#pragma once
// Scalar L2 / inner-product kernels. The CPU baseline relies on the compiler
// auto-vectorizing these tight loops (the paper's comparator is AVX2 Faiss);
// the DPU kernels in src/drim deliberately do NOT use them — they go through
// the cycle-charging DpuContext instead.

#include <cstdint>
#include <span>

namespace drim {

/// Squared Euclidean distance between two float vectors.
float l2_sq(std::span<const float> a, std::span<const float> b);

/// Squared Euclidean distance between a float query and a uint8 base point.
float l2_sq_u8(std::span<const float> a, std::span<const std::uint8_t> b);

/// Squared Euclidean distance between two uint8 vectors (exact, in int64).
std::int64_t l2_sq_u8u8(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

/// Inner product of two float vectors.
float dot(std::span<const float> a, std::span<const float> b);

}  // namespace drim
