#pragma once
// Scalar L2 / inner-product kernels plus a runtime-dispatched SIMD seam for
// the host hot paths. The free functions below are the seed scalar kernels
// (strictly sequential accumulation); the DPU kernels in src/drim
// deliberately do NOT use them — they go through the cycle-charging
// DpuContext instead.
//
// The `DistanceKernels` table is the AVX2 seam: the CPU baseline's ADC scan,
// the LUT build, host_exact's integer scan, and flat-search/rerank route
// through `kernels()`, which points at either the scalar reference or the
// AVX2 implementations (src/core/distances_avx2.cpp) picked at startup.
// Both implementations of every table entry produce bit-identical results:
//  - adc_* kernels vectorize ACROSS points/entries and keep each output's
//    own accumulation order sequential, so each float result rounds exactly
//    like the seed scalar loop;
//  - the l2_sq_* entries use a canonical 8-lane blocked order (lane
//    accumulators, pairwise reduction, sequential tail) mirrored exactly in
//    the scalar reference.
// Both TUs are compiled with -ffp-contract=off so FMA contraction cannot
// break the equality (tests/simd_equality_test.cpp pins it).

#include <cstddef>
#include <cstdint>
#include <span>

namespace drim {

/// Squared Euclidean distance between two float vectors.
float l2_sq(std::span<const float> a, std::span<const float> b);

/// Squared Euclidean distance between a float query and a uint8 base point.
float l2_sq_u8(std::span<const float> a, std::span<const std::uint8_t> b);

/// Squared Euclidean distance between two uint8 vectors (exact, in int64).
std::int64_t l2_sq_u8u8(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

/// Inner product of two float vectors.
float dot(std::span<const float> a, std::span<const float> b);

/// SIMD implementation level of the kernel table.
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// Hot-loop kernel table. All pointers are non-null; scalar and AVX2 entries
/// are bit-identical (see header comment).
struct DistanceKernels {
  const char* name;

  /// ADC LUT row for one subquantizer: row[e] = l2_sq(sv, codebook + e*dsub)
  /// for e in [0, cb), each entry accumulated sequentially over dsub.
  void (*adc_lut_row)(const float* sv, const float* codebook, std::size_t dsub,
                      std::size_t cb, float* row);

  /// ADC scan over n packed codes: out[i] = sum over sub of
  /// lut[sub*cb + code(i, sub)], each point accumulated sequentially over
  /// sub. `codes` is the first point's code; points are `stride` bytes
  /// apart; `wide` selects uint16 code entries (cb > 256).
  void (*adc_scan_f32)(const float* lut, std::size_t cb, std::size_t m,
                       const std::uint8_t* codes, std::size_t stride, bool wide,
                       std::size_t n, float* out);

  /// Integer ADC scan (host_exact's uint32 pipeline, wraparound included).
  void (*adc_scan_u32)(const std::uint32_t* lut, std::size_t cb, std::size_t m,
                       const std::uint8_t* codes, std::size_t stride, bool wide,
                       std::size_t n, std::uint32_t* out);

  /// Blocked-order float L2 (canonical 8-lane order; NOT the same rounding
  /// as the sequential l2_sq above).
  float (*l2_sq_f32)(const float* a, const float* b, std::size_t n);

  /// Blocked-order float-vs-u8 L2 (flat search / exact rerank inner loop).
  float (*l2_sq_u8)(const float* a, const std::uint8_t* b, std::size_t n);
};

/// True when the AVX2 kernels are compiled in AND the CPU reports AVX2.
bool avx2_available();

/// Current dispatch level.
SimdLevel simd_level();

/// Force a dispatch level; kAvx2 is ignored when unavailable. Returns the
/// effective level. The DRIM_SIMD env var ("scalar"/"avx2") sets the initial
/// level; default is AVX2 when available.
SimdLevel set_simd_level(SimdLevel level);

/// The active kernel table (per the current SimdLevel).
const DistanceKernels& kernels();

/// The two tables by level, for direct A/B comparison in tests and benches.
/// avx2 returns nullptr when unavailable.
const DistanceKernels& scalar_kernels();
const DistanceKernels* avx2_kernels();

}  // namespace drim
