#include "core/rerank.hpp"

#include "common/parallel.hpp"
#include "core/distances.hpp"

namespace drim {

std::vector<Neighbor> rerank_exact(const ByteDataset& base, std::span<const float> query,
                                   const std::vector<Neighbor>& candidates,
                                   std::size_t k) {
  TopK topk(k);
  const DistanceKernels& kern = kernels();
  const std::size_t dim = base.dim();
  for (const Neighbor& c : candidates) {
    topk.push(kern.l2_sq_u8(query.data(), base.row(c.id).data(), dim), c.id);
  }
  return topk.take_sorted();
}

std::vector<std::vector<Neighbor>> rerank_exact_all(
    const ByteDataset& base, const FloatMatrix& queries,
    const std::vector<std::vector<Neighbor>>& candidates, std::size_t k) {
  std::vector<std::vector<Neighbor>> out(candidates.size());
  parallel_for(0, candidates.size(), [&](std::size_t q) {
    out[q] = rerank_exact(base, queries.row(q), candidates[q], k);
  });
  return out;
}

}  // namespace drim
