#include "core/rerank.hpp"

#include "common/parallel.hpp"
#include "core/distances.hpp"

namespace drim {

std::vector<Neighbor> rerank_exact(const ByteDataset& base, std::span<const float> query,
                                   const std::vector<Neighbor>& candidates,
                                   std::size_t k) {
  TopK topk(k);
  for (const Neighbor& c : candidates) {
    topk.push(l2_sq_u8(query, base.row(c.id)), c.id);
  }
  return topk.take_sorted();
}

std::vector<std::vector<Neighbor>> rerank_exact_all(
    const ByteDataset& base, const FloatMatrix& queries,
    const std::vector<std::vector<Neighbor>>& candidates, std::size_t k) {
  std::vector<std::vector<Neighbor>> out(candidates.size());
  parallel_for(0, candidates.size(), [&](std::size_t q) {
    out[q] = rerank_exact(base, queries.row(q), candidates[q], k);
  });
  return out;
}

}  // namespace drim
