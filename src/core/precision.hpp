#pragma once
// The quantization ladder's rung type (DESIGN.md §15). A request executes at
// exactly one rung: kFull runs the standard 8/16-bit PQ pipeline, kQ4 runs
// the packed 4-bit code path (coarsened codebooks, dual-nibble LUT lookups,
// half the MRAM code traffic) followed by an exact host-side rerank of the
// surviving candidates. The rung travels with the query through every layer
// — backend enqueue, cluster routing, scheduling, kernel launch — so mixed
// batches are first-class.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace drim {

/// One rung of the precision ladder, ordered cheap-to-precise from the top.
enum class Precision : std::uint8_t {
  kFull = 0,  ///< full-precision PQ scan (the default path)
  kQ4 = 1,    ///< packed 4-bit scan + exact host rerank of the top-k
};

/// "full" / "q4" (matches the CLI --precision values).
inline std::string precision_name(Precision p) {
  return p == Precision::kQ4 ? "q4" : "full";
}

/// Parse a --precision value; throws std::invalid_argument on anything else.
inline Precision parse_precision(const std::string& name) {
  if (name == "full") return Precision::kFull;
  if (name == "q4") return Precision::kQ4;
  throw std::invalid_argument("unknown precision '" + name +
                              "' (expected full or q4)");
}

}  // namespace drim
