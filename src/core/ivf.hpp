#pragma once
// Cluster-based (IVF) index with PQ-compressed residuals — the index family
// DRIM-ANN targets (Section II-A). Train learns nlist coarse centroids plus a
// product quantizer over residuals; add() assigns base points to clusters and
// stores their PQ codes; search() is the reference host implementation of the
// five-phase pipeline (CL -> RC -> LC -> DC -> TS). The DRIM engine reuses
// the trained index but executes RC/LC/DC/TS on simulated DPUs.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dpq.hpp"
#include "core/opq.hpp"
#include "core/pq.hpp"
#include "core/topk.hpp"
#include "data/dataset.hpp"

namespace drim {

/// Which PQ variant encodes residuals.
enum class PQVariant : std::uint8_t { kPQ, kOPQ, kDPQ };

/// Index construction parameters (the paper's K/P/C/M/CB map to: K = search k,
/// P = nprobe, C = N/nlist, M = pq.m, CB = pq.cb_entries).
struct IvfPqParams {
  std::size_t nlist = 256;    ///< number of coarse clusters
  PQParams pq;                ///< residual quantizer shape (M, CB)
  PQVariant variant = PQVariant::kPQ;
  std::size_t opq_iters = 6;  ///< OPQ alternations (variant == kOPQ)
  DPQParams dpq;              ///< refinement knobs (variant == kDPQ)
  std::size_t coarse_iters = 15;
  std::uint64_t seed = 2024;
};

/// One inverted list: ids plus contiguous PQ codes.
struct InvertedList {
  std::vector<std::uint32_t> ids;
  std::vector<std::uint8_t> codes;  ///< ids.size() * code_size bytes

  std::size_t size() const { return ids.size(); }
  std::span<const std::uint8_t> code(std::size_t i, std::size_t code_size) const {
    return {codes.data() + i * code_size, code_size};
  }
};

/// Trained, populated IVF-PQ index.
class IvfPqIndex {
 public:
  /// Learn coarse centroids and the residual quantizer from float rows.
  void train(const FloatMatrix& learn, const IvfPqParams& params);

  /// Assign base points to clusters, encode residuals, append to inverted
  /// lists. May be called repeatedly after train(); ids are assigned
  /// sequentially across calls (first batch gets 0..n-1, the next continues
  /// from ntotal()).
  void add(const ByteDataset& base);

  bool trained() const { return trained_; }
  std::size_t nlist() const { return params_.nlist; }
  std::size_t dim() const { return centroids_.dim(); }
  std::size_t ntotal() const { return ntotal_; }
  std::size_t code_size() const { return pq_.code_size(); }
  const IvfPqParams& params() const { return params_; }

  const FloatMatrix& centroids() const { return centroids_; }
  const ProductQuantizer& pq() const { return pq_; }
  const InvertedList& list(std::size_t c) const { return lists_[c]; }
  PQVariant variant() const { return params_.variant; }
  /// The OPQ rotation owner, or nullptr for non-OPQ variants.
  const OptimizedProductQuantizer* opq() const { return opq_.get(); }

  /// Rebuild a trained index from serialized state (see core/serialize.hpp).
  /// `opq` must be non-null iff params.variant == kOPQ.
  void restore(const IvfPqParams& params, FloatMatrix centroids, ProductQuantizer pq,
               std::unique_ptr<OptimizedProductQuantizer> opq,
               std::vector<InvertedList> lists, std::size_t ntotal);

  /// Sizes of all inverted lists (the paper's uneven-cluster observation).
  std::vector<std::size_t> list_sizes() const;

  /// CL phase: ids of the nprobe closest centroids, ascending by distance.
  std::vector<std::uint32_t> locate_clusters(std::span<const float> query,
                                             std::size_t nprobe) const;

  /// RC phase for one (query, cluster) pair, including the OPQ rotation when
  /// applicable: out = R * (query - centroid). out.size() == dim().
  void query_residual(std::span<const float> query, std::uint32_t cluster,
                      std::span<float> out) const;

  /// Reference host search for one query: exact five-phase ADC pipeline.
  std::vector<Neighbor> search(std::span<const float> query, std::size_t k,
                               std::size_t nprobe) const;

 private:
  /// Residual of a raw base/learn vector against a centroid, rotated when the
  /// variant uses OPQ.
  void encode_residual(std::span<const float> v, std::uint32_t cluster,
                       std::span<std::uint8_t> code) const;

  IvfPqParams params_;
  bool trained_ = false;
  std::size_t ntotal_ = 0;
  FloatMatrix centroids_;
  ProductQuantizer pq_;              // operates in (possibly rotated) space
  std::unique_ptr<OptimizedProductQuantizer> opq_;  // rotation owner when kOPQ
  std::vector<InvertedList> lists_;
};

}  // namespace drim
