#pragma once
// Cluster-based (IVF) index with PQ-compressed residuals — the index family
// DRIM-ANN targets (Section II-A). Train learns nlist coarse centroids plus a
// product quantizer over residuals; add() assigns base points to clusters and
// stores their PQ codes; search() is the reference host implementation of the
// five-phase pipeline (CL -> RC -> LC -> DC -> TS). The DRIM engine reuses
// the trained index but executes RC/LC/DC/TS on simulated DPUs.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dpq.hpp"
#include "core/opq.hpp"
#include "core/pq.hpp"
#include "core/topk.hpp"
#include "data/dataset.hpp"

namespace drim {

class IvfPqIndex;

/// Per-cluster positional tombstone flags for a mutable index (see
/// core/mutable_index.hpp). `dead[c][i]` is nonzero when position i of
/// cluster c's inverted list is deleted. The search path consults these at
/// scan time — before the bounded top-k — so a dead entry can never evict a
/// live one and results stay bit-identical to a cold rebuild of the live set.
struct Tombstones {
  std::vector<std::vector<std::uint8_t>> dead;  ///< [cluster][position] flags
  std::size_t count = 0;                        ///< total dead positions

  bool any() const { return count > 0; }
  /// Flags for one cluster, or nullptr when the cluster has no tombstones
  /// (callers skip the per-point liveness test entirely in that case).
  const std::uint8_t* cluster_flags(std::size_t c) const {
    if (c >= dead.size() || dead[c].empty()) return nullptr;
    return dead[c].data();
  }
};

/// An immutable, refcounted view of one version of the index — what the
/// search path consumes. Every layer (engine, platforms, backends, serving
/// runtime, cluster router) resolves a snapshot per batch instead of holding
/// raw index references, so a writer can publish a new version between
/// batches without pausing serving. `tombstones` may be null (no deletes).
struct IndexSnapshot {
  std::uint64_t version = 0;
  std::shared_ptr<const IvfPqIndex> index;
  std::shared_ptr<const Tombstones> tombstones;

  const IvfPqIndex& operator*() const { return *index; }
  const IvfPqIndex* operator->() const { return index.get(); }
  /// Tombstone flags for cluster c, or nullptr when none.
  const std::uint8_t* dead_flags(std::size_t c) const {
    return tombstones ? tombstones->cluster_flags(c) : nullptr;
  }
};

/// Wrap a caller-owned index into a version-0 snapshot without taking
/// ownership (aliasing shared_ptr with a no-op deleter). This is how the
/// read-only construction paths — tests, benches, the CLI search command —
/// enter the snapshot world unchanged.
IndexSnapshot make_root_snapshot(const IvfPqIndex& index);

/// Which PQ variant encodes residuals.
enum class PQVariant : std::uint8_t { kPQ, kOPQ, kDPQ };

/// Index construction parameters (the paper's K/P/C/M/CB map to: K = search k,
/// P = nprobe, C = N/nlist, M = pq.m, CB = pq.cb_entries).
struct IvfPqParams {
  std::size_t nlist = 256;    ///< number of coarse clusters
  PQParams pq;                ///< residual quantizer shape (M, CB)
  PQVariant variant = PQVariant::kPQ;
  std::size_t opq_iters = 6;  ///< OPQ alternations (variant == kOPQ)
  DPQParams dpq;              ///< refinement knobs (variant == kDPQ)
  std::size_t coarse_iters = 15;
  std::uint64_t seed = 2024;
};

/// One inverted list: ids plus contiguous PQ codes.
struct InvertedList {
  std::vector<std::uint32_t> ids;
  std::vector<std::uint8_t> codes;  ///< ids.size() * code_size bytes

  std::size_t size() const { return ids.size(); }
  std::span<const std::uint8_t> code(std::size_t i, std::size_t code_size) const {
    return {codes.data() + i * code_size, code_size};
  }
};

/// Trained, populated IVF-PQ index.
class IvfPqIndex {
 public:
  /// Learn coarse centroids and the residual quantizer from float rows.
  void train(const FloatMatrix& learn, const IvfPqParams& params);

  /// Assign base points to clusters, encode residuals, append to inverted
  /// lists. May be called repeatedly after train(); ids are assigned
  /// sequentially across calls (first batch gets 0..n-1, the next continues
  /// from ntotal()).
  void add(const ByteDataset& base);

  bool trained() const { return trained_; }
  std::size_t nlist() const { return params_.nlist; }
  std::size_t dim() const { return centroids_.dim(); }
  std::size_t ntotal() const { return ntotal_; }
  std::size_t code_size() const { return pq_.code_size(); }
  const IvfPqParams& params() const { return params_; }

  const FloatMatrix& centroids() const { return centroids_; }
  const ProductQuantizer& pq() const { return pq_; }
  const InvertedList& list(std::size_t c) const { return lists_[c]; }
  PQVariant variant() const { return params_.variant; }
  /// The OPQ rotation owner, or nullptr for non-OPQ variants.
  const OptimizedProductQuantizer* opq() const { return opq_.get(); }

  /// Rebuild a trained index from serialized state (see core/serialize.hpp).
  /// `opq` must be non-null iff params.variant == kOPQ.
  void restore(const IvfPqParams& params, FloatMatrix centroids, ProductQuantizer pq,
               std::unique_ptr<OptimizedProductQuantizer> opq,
               std::vector<InvertedList> lists, std::size_t ntotal);

  /// Sizes of all inverted lists (the paper's uneven-cluster observation).
  std::vector<std::size_t> list_sizes() const;

  /// Deep copy (duplicates the OPQ rotation owner when present). The mutable
  /// index writer clones the base index once, then materializes immutable
  /// per-version snapshots via restore().
  IvfPqIndex clone() const;

  /// Encode a raw (original-space) vector against `cluster`: residual,
  /// OPQ rotation when applicable, PQ encode. Public so the mutable-index
  /// writer can encode streamed inserts and re-encode points moved by an
  /// online cluster split.
  void encode_residual(std::span<const float> v, std::uint32_t cluster,
                       std::span<std::uint8_t> code) const;

  /// Reconstruct position `i` of cluster `c` back into the original vector
  /// space: decode the PQ code, undo the OPQ rotation when applicable, add
  /// the centroid. Deterministic; the online splitter re-clusters on these.
  void reconstruct(std::uint32_t cluster, std::size_t i, std::span<float> out) const;

  /// CL phase: ids of the nprobe closest centroids, ascending by distance.
  std::vector<std::uint32_t> locate_clusters(std::span<const float> query,
                                             std::size_t nprobe) const;

  /// RC phase for one (query, cluster) pair, including the OPQ rotation when
  /// applicable: out = R * (query - centroid). out.size() == dim().
  void query_residual(std::span<const float> query, std::uint32_t cluster,
                      std::span<float> out) const;

  /// Reference host search for one query: exact five-phase ADC pipeline.
  std::vector<Neighbor> search(std::span<const float> query, std::size_t k,
                               std::size_t nprobe) const;

 private:
  IvfPqParams params_;
  bool trained_ = false;
  std::size_t ntotal_ = 0;
  FloatMatrix centroids_;
  ProductQuantizer pq_;              // operates in (possibly rotated) space
  std::unique_ptr<OptimizedProductQuantizer> opq_;  // rotation owner when kOPQ
  std::vector<InvertedList> lists_;
};

}  // namespace drim
