#pragma once
// Minimal dense linear algebra for OPQ's orthogonal Procrustes step: square
// row-major matrices, multiplication, transpose, and an SVD built on the
// two-sided Jacobi eigenvalue iteration. Dimensions here are the vector
// dimensionality D (<= a few hundred), so O(D^3) routines are fine.

#include <cstddef>
#include <span>
#include <vector>

namespace drim {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  Matrix transposed() const;

  /// Frobenius norm of (this - other).
  double frobenius_distance(const Matrix& other) const;

  /// Max |A^T A - I| entry — orthogonality residual, used by tests.
  double orthogonality_error() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// Symmetric eigendecomposition A = V diag(w) V^T by cyclic Jacobi rotations.
/// `a` must be symmetric. Eigenvalues are returned descending with matching
/// eigenvector columns in V.
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;  // columns are eigenvectors
};
EigenResult jacobi_eigen(const Matrix& a, std::size_t max_sweeps = 64);

/// Thin SVD of a square matrix A = U diag(s) V^T via eigendecomposition of
/// A^T A and A A^T. Accurate enough for the Procrustes polar factor used by
/// OPQ training.
struct SvdResult {
  Matrix u;
  std::vector<double> s;
  Matrix v;  // NOT transposed: A = U diag(s) V^T
};
SvdResult svd_square(const Matrix& a);

/// Nearest orthogonal matrix to A (polar factor U V^T from the SVD) — the
/// closed-form solution of the orthogonal Procrustes problem min ||R A - B||.
Matrix procrustes_rotation(const Matrix& a);

}  // namespace drim
