#include "core/topk.hpp"

#include <algorithm>
#include <cassert>

namespace drim {
namespace {

// Max-heap comparator: the root is the *worst* (largest) kept candidate.
bool heap_less(const Neighbor& a, const Neighbor& b) { return a < b; }

}  // namespace

TopK::TopK(std::size_t k) : k_(k) {
  assert(k > 0);
  heap_.reserve(k);
}

bool TopK::push(float dist, std::uint32_t id) {
  if (heap_.size() < k_) {
    heap_.push_back({dist, id});
    std::push_heap(heap_.begin(), heap_.end(), heap_less);
    return true;
  }
  const Neighbor cand{dist, id};
  if (!(cand < heap_.front())) return false;
  std::pop_heap(heap_.begin(), heap_.end(), heap_less);
  heap_.back() = cand;
  std::push_heap(heap_.begin(), heap_.end(), heap_less);
  return true;
}

float TopK::threshold() const {
  if (heap_.size() < k_) return std::numeric_limits<float>::infinity();
  return heap_.front().dist;
}

std::vector<Neighbor> TopK::take_sorted() {
  std::sort_heap(heap_.begin(), heap_.end(), heap_less);
  return std::move(heap_);
}

void TopK::merge(const TopK& other) {
  for (const Neighbor& n : other.heap_) push(n.dist, n.id);
}

}  // namespace drim
