#include "core/dpq.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "core/distances.hpp"

namespace drim {

double dpq_refine(ProductQuantizer& pq, const FloatMatrix& points, const DPQParams& params) {
  const std::size_t dsub = pq.dsub();
  const std::size_t m = pq.m();
  const std::size_t cb = pq.cb_entries();
  assert(points.dim() == pq.dim());

  std::vector<double> weights(cb);
  std::vector<double> weight_sums(cb);
  std::vector<double> weighted_means(cb * dsub);

  double temperature = params.temperature;
  for (std::size_t epoch = 0; epoch < params.iters; ++epoch) {
    for (std::size_t sub = 0; sub < m; ++sub) {
      FloatMatrix& book = pq.codebook(sub);
      std::fill(weight_sums.begin(), weight_sums.end(), 0.0);
      std::fill(weighted_means.begin(), weighted_means.end(), 0.0);

      for (std::size_t i = 0; i < points.count(); ++i) {
        const std::span<const float> sv = points.row(i).subspan(sub * dsub, dsub);
        // Softmin over codeword distances (numerically stabilized).
        double min_d = 1e300;
        for (std::size_t e = 0; e < cb; ++e) {
          weights[e] = l2_sq(sv, book.row(e));
          min_d = std::min(min_d, weights[e]);
        }
        double z = 0.0;
        for (std::size_t e = 0; e < cb; ++e) {
          weights[e] = std::exp(-(weights[e] - min_d) / std::max(temperature, 1e-9));
          z += weights[e];
        }
        for (std::size_t e = 0; e < cb; ++e) {
          const double w = weights[e] / z;
          if (w < 1e-12) continue;
          weight_sums[e] += w;
          double* acc = weighted_means.data() + e * dsub;
          for (std::size_t d = 0; d < dsub; ++d) acc[d] += w * sv[d];
        }
      }

      // Move each codeword toward its soft mean.
      for (std::size_t e = 0; e < cb; ++e) {
        if (weight_sums[e] < 1e-9) continue;  // dead codeword: leave as-is
        auto cw = book.row(e);
        const double* acc = weighted_means.data() + e * dsub;
        for (std::size_t d = 0; d < dsub; ++d) {
          const double target = acc[d] / weight_sums[e];
          cw[d] = static_cast<float>(cw[d] + params.learning_rate * (target - cw[d]));
        }
      }
    }
    temperature *= params.temperature_decay;
  }
  return pq.reconstruction_error(points);
}

}  // namespace drim
