#pragma once
// Mutable-index writer over the versioned IndexSnapshot (ISSUE 8). The
// search layers consume immutable snapshots; this writer owns the mutable
// state — centroids, quantizer copies, inverted lists, tombstone bitmaps —
// and materializes a new immutable snapshot on publish(). The discipline
// follows PIM-tree's batched push/pull updates: mutations accumulate on the
// host, then one publish swaps the version in between search batches, so
// serving never pauses and the whole run stays deterministic given the
// arrival trace.
//
// Mutations:
//  - insert(v): assign to the nearest coarse centroid, PQ-encode the
//    residual, append to the cluster (an MRAM shadow-slot append, billed on
//    the host link as code_size + 4 id bytes).
//  - erase(id): tombstone. The entry stays in place physically; the search
//    path consults the positional bitmap at scan time, so the id never
//    surfaces but relative order / distances of live points are unchanged —
//    which is what makes per-version results bit-identical to a cold
//    rebuild of the same live set.
//  - online split: when a cluster's live size outgrows its MRAM slot
//    (params.split_threshold), the writer re-clusters the live members with
//    the same 2-means machinery the offline builder uses (fixed seed), adds
//    a new cluster id = nlist, re-encodes both halves against their new
//    centroids, and drops tombstones for that cluster (splits compact).

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/ivf.hpp"

namespace drim {

/// Writer knobs (surfaced on `drim serve` as --update-* / writer flags).
struct WriterParams {
  /// Live cluster size above which an online split triggers; 0 disables
  /// splitting (clusters may then outgrow their planned MRAM slot).
  std::size_t split_threshold = 0;
  std::size_t split_iters = 10;  ///< 2-means refinement iterations per split
  std::uint64_t seed = 2024;     ///< split seeding (deterministic)
};

/// One online split: `child` (== nlist before the split) took
/// `child_fraction` of the parent's live members. Layers that keep
/// per-cluster state (e.g. the engine's heat table) use these records to
/// extend deterministically.
struct SplitRecord {
  std::uint32_t parent = 0;
  std::uint32_t child = 0;
  double child_fraction = 0.0;
};

/// What one publish shipped, in modeled host-link bytes. The engine bills
/// publish time from these deltas — NOT from the physical MRAM reload the
/// simulator performs for bit-exactness — so an append costs an append even
/// though the functional platform rewrites its arrays.
struct PublishDelta {
  std::uint64_t version = 0;
  std::size_t inserts = 0;
  std::size_t deletes = 0;
  std::size_t appended_bytes = 0;   ///< shadow-slot appends (codes + ids)
  std::size_t tombstone_bytes = 0;  ///< tombstone metadata shipped
  std::size_t moved_bytes = 0;      ///< bytes rewritten by splits/re-layout
  std::vector<SplitRecord> splits;

  std::size_t total_bytes() const {
    return appended_bytes + tombstone_bytes + moved_bytes;
  }
  bool empty() const { return inserts == 0 && deletes == 0 && splits.empty(); }
};

/// Streaming insert / tombstone delete / online split over a cloned index,
/// publishing immutable versioned snapshots.
class IndexWriter {
 public:
  explicit IndexWriter(const IvfPqIndex& base, WriterParams params = {});

  /// Insert one original-space vector; returns its assigned id (sequential
  /// from the base index's ntotal). May trigger an online split.
  std::uint32_t insert(std::span<const float> v);

  /// Tombstone an id. Returns false when the id is unknown or already dead.
  bool erase(std::uint32_t id);

  bool alive(std::uint32_t id) const;
  std::size_t live_count() const { return live_count_; }
  std::size_t nlist() const { return params_.nlist; }
  std::uint64_t version() const { return version_; }
  /// Mutations accumulated since the last publish().
  bool dirty() const { return !pending_.empty(); }
  const PublishDelta& pending_delta() const { return pending_; }

  /// Materialize the current state as an immutable snapshot (version + 1).
  /// When `delta_out` is non-null it receives the accumulated delta, which
  /// is then reset. publish() with no pending mutations is valid (e.g. a
  /// pure re-layout publish) and yields an empty delta.
  IndexSnapshot publish(PublishDelta* delta_out = nullptr);

  /// Cold-rebuild oracle: an index holding exactly the live entries, in
  /// list order, with their original ids — what an offline build of the
  /// current logical state looks like. Search over this (no tombstones)
  /// must be bit-identical to search over publish()'s snapshot.
  IvfPqIndex compacted_index() const;

 private:
  void split_cluster(std::uint32_t c);
  std::size_t live_size(std::uint32_t c) const;

  WriterParams writer_params_;
  IvfPqParams params_;
  FloatMatrix centroids_;
  ProductQuantizer pq_;
  std::unique_ptr<OptimizedProductQuantizer> opq_;
  std::vector<InvertedList> lists_;
  std::vector<std::vector<std::uint8_t>> dead_;  ///< positional tombstones
  std::vector<std::size_t> dead_count_;          ///< per cluster
  std::size_t ntotal_ = 0;
  std::size_t live_count_ = 0;
  std::uint64_t version_ = 0;
  std::size_t total_splits_ = 0;
  PublishDelta pending_;
  /// id -> (cluster, position); positions move only on split.
  std::unordered_map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>> where_;

  /// Rebuild an IvfPqIndex from the writer's current raw state.
  IvfPqIndex materialize(std::vector<InvertedList> lists) const;
};

/// Live-only deep copy of a snapshot: tombstoned entries dropped, relative
/// order preserved. Searchers with no tombstone filter (the CPU baseline)
/// install this instead of the raw snapshot index; by construction it equals
/// a cold offline build of the snapshot's live set.
IvfPqIndex compact_snapshot(const IndexSnapshot& snapshot);

}  // namespace drim
