#include "core/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace drim {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

double Matrix::frobenius_distance(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double s = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double Matrix::orthogonality_error() const {
  assert(rows_ == cols_);
  const Matrix gram = matmul(transposed(), *this);
  double err = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const double target = (r == c) ? 1.0 : 0.0;
      err = std::max(err, std::abs(gram.at(r, c) - target));
    }
  }
  return err;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

EigenResult jacobi_eigen(const Matrix& input, std::size_t max_sweeps) {
  assert(input.rows() == input.cols());
  const std::size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::identity(n);

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a.at(p, q) * a.at(p, q);
    }
    if (off < 1e-22) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/columns p and q of A.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        // Accumulate the rotation into V.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenResult res;
  res.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) res.values[i] = a.at(i, i);

  // Sort descending by eigenvalue, permuting eigenvector columns to match.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return res.values[x] > res.values[y]; });
  EigenResult sorted;
  sorted.values.resize(n);
  sorted.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted.values[j] = res.values[order[j]];
    for (std::size_t i = 0; i < n; ++i) sorted.vectors.at(i, j) = v.at(i, order[j]);
  }
  return sorted;
}

SvdResult svd_square(const Matrix& a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  // A^T A = V s^2 V^T gives V and singular values; U = A V / s, with a
  // Gram-Schmidt fallback for (near-)zero singular values.
  const EigenResult eig = jacobi_eigen(matmul(a.transposed(), a));

  SvdResult res;
  res.s.resize(n);
  res.v = eig.vectors;
  res.u = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    res.s[j] = std::sqrt(std::max(eig.values[j], 0.0));
  }
  const Matrix av = matmul(a, res.v);
  for (std::size_t j = 0; j < n; ++j) {
    if (res.s[j] > 1e-10) {
      for (std::size_t i = 0; i < n; ++i) res.u.at(i, j) = av.at(i, j) / res.s[j];
    } else {
      // Null-space column: pick any unit vector orthogonal to previous U cols.
      std::vector<double> cand(n, 0.0);
      for (std::size_t seed = 0; seed < n; ++seed) {
        std::fill(cand.begin(), cand.end(), 0.0);
        cand[seed] = 1.0;
        for (std::size_t p = 0; p < j; ++p) {
          double proj = 0.0;
          for (std::size_t i = 0; i < n; ++i) proj += cand[i] * res.u.at(i, p);
          for (std::size_t i = 0; i < n; ++i) cand[i] -= proj * res.u.at(i, p);
        }
        double norm = 0.0;
        for (double x : cand) norm += x * x;
        if (norm > 1e-8) {
          norm = std::sqrt(norm);
          for (std::size_t i = 0; i < n; ++i) res.u.at(i, j) = cand[i] / norm;
          break;
        }
      }
    }
  }
  return res;
}

Matrix procrustes_rotation(const Matrix& a) {
  const SvdResult svd = svd_square(a);
  return matmul(svd.u, svd.v.transposed());
}

}  // namespace drim
