#include "core/mutable_index.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "core/kmeans.hpp"

namespace drim {

IndexWriter::IndexWriter(const IvfPqIndex& base, WriterParams params)
    : writer_params_(params),
      params_(base.params()),
      centroids_(base.centroids()),
      pq_(base.pq()),
      ntotal_(base.ntotal()),
      live_count_(base.ntotal()) {
  if (!base.trained()) throw std::invalid_argument("IndexWriter: base index not trained");
  if (base.opq()) opq_ = std::make_unique<OptimizedProductQuantizer>(*base.opq());
  lists_.reserve(params_.nlist);
  dead_.resize(params_.nlist);
  dead_count_.assign(params_.nlist, 0);
  for (std::size_t c = 0; c < params_.nlist; ++c) {
    lists_.push_back(base.list(c));
    dead_[c].assign(lists_[c].size(), 0);
    for (std::size_t i = 0; i < lists_[c].size(); ++i) {
      where_[lists_[c].ids[i]] = {static_cast<std::uint32_t>(c),
                                  static_cast<std::uint32_t>(i)};
    }
  }
}

std::size_t IndexWriter::live_size(std::uint32_t c) const {
  return lists_[c].size() - dead_count_[c];
}

bool IndexWriter::alive(std::uint32_t id) const {
  auto it = where_.find(id);
  if (it == where_.end()) return false;
  return dead_[it->second.first][it->second.second] == 0;
}

std::uint32_t IndexWriter::insert(std::span<const float> v) {
  assert(v.size() == centroids_.dim());
  const std::uint32_t c = nearest_centroid(centroids_, v);
  const std::size_t cs = pq_.code_size();
  std::vector<std::uint8_t> code(cs);
  // Residual against the assigned centroid, rotated when the variant is OPQ.
  std::vector<float> residual(v.size());
  auto cen = centroids_.row(c);
  for (std::size_t d = 0; d < v.size(); ++d) residual[d] = v[d] - cen[d];
  if (opq_) {
    std::vector<float> rotated(v.size());
    opq_->rotate(residual, rotated);
    pq_.encode(rotated, code);
  } else {
    pq_.encode(residual, code);
  }

  const auto id = static_cast<std::uint32_t>(ntotal_++);
  where_[id] = {c, static_cast<std::uint32_t>(lists_[c].size())};
  lists_[c].ids.push_back(id);
  lists_[c].codes.insert(lists_[c].codes.end(), code.begin(), code.end());
  dead_[c].push_back(0);
  ++live_count_;
  ++pending_.inserts;
  pending_.appended_bytes += cs + sizeof(std::uint32_t);

  if (writer_params_.split_threshold > 0 &&
      live_size(c) > writer_params_.split_threshold) {
    split_cluster(c);
  }
  return id;
}

bool IndexWriter::erase(std::uint32_t id) {
  auto it = where_.find(id);
  if (it == where_.end()) return false;
  auto [c, pos] = it->second;
  if (dead_[c][pos]) return false;
  dead_[c][pos] = 1;
  ++dead_count_[c];
  --live_count_;
  ++pending_.deletes;
  pending_.tombstone_bytes += sizeof(std::uint32_t);
  return true;
}

void IndexWriter::split_cluster(std::uint32_t c) {
  const std::size_t cs = pq_.code_size();
  const std::size_t dim = centroids_.dim();

  // Gather the live members (splits compact: tombstoned entries are dropped
  // for good) and reconstruct them into the original vector space.
  std::vector<std::uint32_t> live_pos;
  live_pos.reserve(live_size(c));
  for (std::size_t i = 0; i < lists_[c].size(); ++i) {
    if (!dead_[c][i]) live_pos.push_back(static_cast<std::uint32_t>(i));
  }
  FloatMatrix points(live_pos.size(), dim);
  std::vector<float> decoded(dim);
  for (std::size_t r = 0; r < live_pos.size(); ++r) {
    pq_.decode(lists_[c].code(live_pos[r], cs), decoded);
    auto out = points.row(r);
    auto cen = centroids_.row(c);
    if (opq_) {
      const Matrix& rot = opq_->rotation();
      for (std::size_t a = 0; a < dim; ++a) {
        double acc = 0.0;
        for (std::size_t b = 0; b < dim; ++b) acc += rot.at(b, a) * decoded[b];
        out[a] = static_cast<float>(acc) + cen[a];
      }
    } else {
      for (std::size_t a = 0; a < dim; ++a) out[a] = decoded[a] + cen[a];
    }
  }

  // The same 2-means machinery the offline coarse quantizer uses, seeded
  // deterministically from the writer seed, the split ordinal, and the
  // cluster id — a given arrival trace always produces the same split.
  KMeansParams km_params;
  km_params.k = 2;
  km_params.max_iters = writer_params_.split_iters;
  km_params.seed = writer_params_.seed + 7919 * (total_splits_ + 1) + c;
  KMeansResult km = kmeans(points, km_params);

  const auto child = static_cast<std::uint32_t>(params_.nlist);
  for (std::size_t d = 0; d < dim; ++d) centroids_.row(c)[d] = km.centroids.row(0)[d];
  centroids_.push_back(km.centroids.row(1));
  params_.nlist += 1;

  // Rebuild both halves in original relative order, re-encoding every member
  // against its new centroid (codes are residual codes; the centroid moved).
  InvertedList parent_list, child_list;
  std::vector<std::uint8_t> code(cs);
  std::vector<float> residual(dim), rotated(dim);
  for (std::size_t r = 0; r < live_pos.size(); ++r) {
    const std::uint32_t target = km.assignment[r] == 0 ? c : child;
    auto cen = centroids_.row(target);
    auto src = points.row(r);
    for (std::size_t d = 0; d < dim; ++d) residual[d] = src[d] - cen[d];
    if (opq_) {
      opq_->rotate(residual, rotated);
      pq_.encode(rotated, code);
    } else {
      pq_.encode(residual, code);
    }
    InvertedList& dst = km.assignment[r] == 0 ? parent_list : child_list;
    const std::uint32_t id = lists_[c].ids[live_pos[r]];
    where_[id] = {target, static_cast<std::uint32_t>(dst.ids.size())};
    dst.ids.push_back(id);
    dst.codes.insert(dst.codes.end(), code.begin(), code.end());
  }
  // Dropped tombstoned ids are gone for good; erase their locations.
  for (std::size_t i = 0; i < lists_[c].size(); ++i) {
    if (dead_[c][i]) where_.erase(lists_[c].ids[i]);
  }

  pending_.moved_bytes += parent_list.codes.size() + child_list.codes.size() +
                          sizeof(std::uint32_t) * (parent_list.ids.size() +
                                                   child_list.ids.size());
  pending_.splits.push_back(
      {c, child,
       live_pos.empty() ? 0.0
                        : static_cast<double>(child_list.ids.size()) /
                              static_cast<double>(live_pos.size())});
  ++total_splits_;

  lists_[c] = std::move(parent_list);
  lists_.push_back(std::move(child_list));
  dead_[c].assign(lists_[c].size(), 0);
  dead_.emplace_back(lists_[child].size(), 0);
  dead_count_[c] = 0;
  dead_count_.push_back(0);
}

IvfPqIndex IndexWriter::materialize(std::vector<InvertedList> lists) const {
  IvfPqIndex idx;
  std::unique_ptr<OptimizedProductQuantizer> opq;
  if (opq_) opq = std::make_unique<OptimizedProductQuantizer>(*opq_);
  idx.restore(params_, centroids_, pq_, std::move(opq), std::move(lists), ntotal_);
  return idx;
}

IndexSnapshot IndexWriter::publish(PublishDelta* delta_out) {
  ++version_;
  pending_.version = version_;
  IndexSnapshot snap;
  snap.version = version_;
  auto idx = std::make_shared<IvfPqIndex>(materialize(lists_));
  snap.index = std::move(idx);
  std::size_t dead_total = 0;
  for (std::size_t c = 0; c < params_.nlist; ++c) dead_total += dead_count_[c];
  if (dead_total > 0) {
    auto tomb = std::make_shared<Tombstones>();
    tomb->dead = dead_;
    // A cluster with no tombstones exposes a null flag pointer, so the
    // kernels skip the liveness test (and its charge) entirely for it.
    for (std::size_t c = 0; c < tomb->dead.size(); ++c) {
      if (dead_count_[c] == 0) tomb->dead[c].clear();
    }
    tomb->count = dead_total;
    snap.tombstones = std::move(tomb);
  }
  if (delta_out) *delta_out = std::move(pending_);
  pending_ = PublishDelta{};
  return snap;
}

IvfPqIndex IndexWriter::compacted_index() const {
  std::vector<InvertedList> lists(params_.nlist);
  const std::size_t cs = pq_.code_size();
  for (std::size_t c = 0; c < params_.nlist; ++c) {
    InvertedList& out = lists[c];
    out.ids.reserve(live_size(static_cast<std::uint32_t>(c)));
    for (std::size_t i = 0; i < lists_[c].size(); ++i) {
      if (dead_[c][i]) continue;
      out.ids.push_back(lists_[c].ids[i]);
      auto code = lists_[c].code(i, cs);
      out.codes.insert(out.codes.end(), code.begin(), code.end());
    }
  }
  return materialize(std::move(lists));
}

IvfPqIndex compact_snapshot(const IndexSnapshot& snapshot) {
  const IvfPqIndex& src = *snapshot.index;
  const std::size_t cs = src.code_size();
  std::vector<InvertedList> lists(src.nlist());
  for (std::size_t c = 0; c < src.nlist(); ++c) {
    const InvertedList& in = src.list(c);
    const std::uint8_t* dead = snapshot.dead_flags(c);
    InvertedList& out = lists[c];
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (dead != nullptr && dead[i]) continue;
      out.ids.push_back(in.ids[i]);
      const auto code = in.code(i, cs);
      out.codes.insert(out.codes.end(), code.begin(), code.end());
    }
  }
  IvfPqIndex idx;
  std::unique_ptr<OptimizedProductQuantizer> opq;
  if (src.opq()) opq = std::make_unique<OptimizedProductQuantizer>(*src.opq());
  // ntotal stays the id-space high-water mark (not the live count) so a
  // later add() cannot reuse a live id.
  idx.restore(src.params(), src.centroids(), src.pq(), std::move(opq),
              std::move(lists), src.ntotal());
  return idx;
}

}  // namespace drim
