#include "core/kmeans.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/distances.hpp"
#include "core/topk.hpp"

namespace drim {
namespace {

FloatMatrix seed_kmeanspp(const FloatMatrix& points, std::size_t k, Rng& rng) {
  const std::size_t n = points.count();
  FloatMatrix centroids(k, points.dim());

  std::vector<float> min_dist(n, std::numeric_limits<float>::max());
  std::size_t first = static_cast<std::size_t>(rng.next_below(n));
  std::copy_n(points.row(first).data(), points.dim(), centroids.row(0).data());

  for (std::size_t c = 1; c < k; ++c) {
    // Update min distance to the most recent centroid, then D^2-sample.
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float d = l2_sq(points.row(i), centroids.row(c - 1));
      min_dist[i] = std::min(min_dist[i], d);
      total += min_dist[i];
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.next_double() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= min_dist[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<std::size_t>(rng.next_below(n));
    }
    std::copy_n(points.row(chosen).data(), points.dim(), centroids.row(c).data());
  }
  return centroids;
}

FloatMatrix seed_uniform(const FloatMatrix& points, std::size_t k, Rng& rng) {
  FloatMatrix centroids(k, points.dim());
  const auto picks =
      rng.sample_without_replacement(static_cast<std::uint32_t>(points.count()),
                                     static_cast<std::uint32_t>(k));
  for (std::size_t c = 0; c < k; ++c) {
    std::copy_n(points.row(picks[c]).data(), points.dim(), centroids.row(c).data());
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(const FloatMatrix& points, const KMeansParams& params) {
  const std::size_t n = points.count();
  const std::size_t dim = points.dim();
  const std::size_t k = params.k;
  assert(n >= k && k > 0);

  Rng rng(params.seed);
  KMeansResult res;
  res.centroids = params.use_kmeanspp ? seed_kmeanspp(points, k, rng)
                                      : seed_uniform(points, k, rng);
  res.assignment.assign(n, 0);

  std::vector<double> sums(k * dim);
  std::vector<std::size_t> counts(k);
  std::vector<float> point_dist(n);

  double prev_inertia = std::numeric_limits<double>::max();
  for (std::size_t iter = 0; iter < params.max_iters; ++iter) {
    res.iters_run = iter + 1;

    // Assignment step (parallel over points).
    parallel_for(0, n, [&](std::size_t i) {
      const std::uint32_t c = nearest_centroid(res.centroids, points.row(i));
      res.assignment[i] = c;
      point_dist[i] = l2_sq(points.row(i), res.centroids.row(c));
    });

    res.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) res.inertia += point_dist[i];

    // Update step.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = res.assignment[i];
      auto p = points.row(i);
      double* s = sums.data() + static_cast<std::size_t>(c) * dim;
      for (std::size_t d = 0; d < dim; ++d) s[d] += p[d];
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at the farthest outlier.
        const std::size_t worst =
            static_cast<std::size_t>(std::max_element(point_dist.begin(), point_dist.end()) -
                                     point_dist.begin());
        std::copy_n(points.row(worst).data(), dim, res.centroids.row(c).data());
        point_dist[worst] = 0.0f;
        continue;
      }
      auto cen = res.centroids.row(c);
      const double* s = sums.data() + c * dim;
      for (std::size_t d = 0; d < dim; ++d) {
        cen[d] = static_cast<float>(s[d] / static_cast<double>(counts[c]));
      }
    }

    if (prev_inertia < std::numeric_limits<double>::max() &&
        std::abs(prev_inertia - res.inertia) <= params.tol * prev_inertia) {
      break;
    }
    prev_inertia = res.inertia;
  }

  // Final assignment against the converged centroids.
  parallel_for(0, n, [&](std::size_t i) {
    res.assignment[i] = nearest_centroid(res.centroids, points.row(i));
  });
  return res;
}

std::uint32_t nearest_centroid(const FloatMatrix& centroids, std::span<const float> v) {
  std::uint32_t best = 0;
  float best_d = std::numeric_limits<float>::max();
  for (std::size_t c = 0; c < centroids.count(); ++c) {
    const float d = l2_sq(centroids.row(c), v);
    if (d < best_d) {
      best_d = d;
      best = static_cast<std::uint32_t>(c);
    }
  }
  return best;
}

std::vector<std::uint32_t> nearest_centroids(const FloatMatrix& centroids,
                                             std::span<const float> v, std::size_t n) {
  TopK topk(std::min(n, centroids.count()));
  for (std::size_t c = 0; c < centroids.count(); ++c) {
    topk.push(l2_sq(centroids.row(c), v), static_cast<std::uint32_t>(c));
  }
  std::vector<std::uint32_t> out;
  for (const Neighbor& nb : topk.take_sorted()) out.push_back(nb.id);
  return out;
}

}  // namespace drim
