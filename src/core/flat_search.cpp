#include "core/flat_search.hpp"

#include "common/parallel.hpp"
#include "core/distances.hpp"

namespace drim {

std::vector<Neighbor> flat_search(const ByteDataset& base, std::span<const float> query,
                                  std::size_t k) {
  TopK topk(k);
  const DistanceKernels& kern = kernels();
  const std::size_t dim = base.dim();
  for (std::size_t i = 0; i < base.count(); ++i) {
    const float d = kern.l2_sq_u8(query.data(), base.row(i).data(), dim);
    topk.push(d, static_cast<std::uint32_t>(i));
  }
  return topk.take_sorted();
}

std::vector<std::vector<Neighbor>> flat_search_all(const ByteDataset& base,
                                                   const FloatMatrix& queries, std::size_t k) {
  std::vector<std::vector<Neighbor>> out(queries.count());
  parallel_for(0, queries.count(), [&](std::size_t q) {
    out[q] = flat_search(base, queries.row(q), k);
  });
  return out;
}

}  // namespace drim
