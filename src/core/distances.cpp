#include "core/distances.hpp"

#include <cassert>

namespace drim {

float l2_sq(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float l2_sq_u8(std::span<const float> a, std::span<const std::uint8_t> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - static_cast<float>(b[i]);
    acc += d * d;
  }
  return acc;
}

std::int64_t l2_sq_u8u8(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  assert(a.size() == b.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::int64_t d = static_cast<std::int64_t>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace drim
