#include "core/distances.hpp"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

namespace drim {

float l2_sq(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float l2_sq_u8(std::span<const float> a, std::span<const std::uint8_t> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - static_cast<float>(b[i]);
    acc += d * d;
  }
  return acc;
}

std::int64_t l2_sq_u8u8(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  assert(a.size() == b.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::int64_t d = static_cast<std::int64_t>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

namespace {

inline std::uint32_t code_value(const std::uint8_t* point, std::size_t sub,
                                bool wide) {
  if (wide) {
    std::uint16_t v = 0;
    std::memcpy(&v, point + sub * 2, 2);
    return v;
  }
  return point[sub];
}

// ---- Scalar reference kernels -------------------------------------------
// The adc_* kernels accumulate each output strictly sequentially — the same
// rounding as the seed loops in pq.cpp / host_exact.cpp. The l2_sq_* kernels
// use the canonical 8-lane blocked order the AVX2 side mirrors:
// 8 lane accumulators over i%8, reduced pairwise exactly like
// vextractf128/movehl/shufps would, then a sequential tail.

void scalar_adc_lut_row(const float* sv, const float* codebook,
                        std::size_t dsub, std::size_t cb, float* row) {
  for (std::size_t e = 0; e < cb; ++e) {
    const float* cw = codebook + e * dsub;
    float acc = 0.0f;
    for (std::size_t d = 0; d < dsub; ++d) {
      const float diff = sv[d] - cw[d];
      acc += diff * diff;
    }
    row[e] = acc;
  }
}

void scalar_adc_scan_f32(const float* lut, std::size_t cb, std::size_t m,
                         const std::uint8_t* codes, std::size_t stride,
                         bool wide, std::size_t n, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t* point = codes + i * stride;
    float acc = 0.0f;
    for (std::size_t sub = 0; sub < m; ++sub) {
      acc += lut[sub * cb + code_value(point, sub, wide)];
    }
    out[i] = acc;
  }
}

void scalar_adc_scan_u32(const std::uint32_t* lut, std::size_t cb, std::size_t m,
                         const std::uint8_t* codes, std::size_t stride,
                         bool wide, std::size_t n, std::uint32_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t* point = codes + i * stride;
    std::uint32_t acc = 0;
    for (std::size_t sub = 0; sub < m; ++sub) {
      acc += lut[sub * cb + code_value(point, sub, wide)];
    }
    out[i] = acc;
  }
}

// Pairwise reduction of 8 lane accumulators in the exact AVX2 order:
// vextractf128+addps -> (a0+a4 .. a3+a7); movehl+addps -> two pairs;
// shufps+addss -> total.
inline float reduce8(const float* a) {
  const float r0 = a[0] + a[4];
  const float r1 = a[1] + a[5];
  const float r2 = a[2] + a[6];
  const float r3 = a[3] + a[7];
  const float s0 = r0 + r2;
  const float s1 = r1 + r3;
  return s0 + s1;
}

float scalar_l2_sq_f32(const float* a, const float* b, std::size_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t l = 0; l < 8; ++l) {
      const float d = a[i + l] - b[i + l];
      lanes[l] += d * d;
    }
  }
  float acc = reduce8(lanes);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float scalar_l2_sq_u8(const float* a, const std::uint8_t* b, std::size_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t l = 0; l < 8; ++l) {
      const float d = a[i + l] - static_cast<float>(b[i + l]);
      lanes[l] += d * d;
    }
  }
  float acc = reduce8(lanes);
  for (; i < n; ++i) {
    const float d = a[i] - static_cast<float>(b[i]);
    acc += d * d;
  }
  return acc;
}

constexpr DistanceKernels kScalarKernels = {
    "scalar",         scalar_adc_lut_row, scalar_adc_scan_f32,
    scalar_adc_scan_u32, scalar_l2_sq_f32, scalar_l2_sq_u8,
};

// ---- Dispatch ------------------------------------------------------------

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

std::atomic<const DistanceKernels*>& active_table() {
  struct Init {
    const DistanceKernels* table;
    Init() {
      table = &kScalarKernels;
      const DistanceKernels* avx2 = avx2_kernels();
      const char* env = std::getenv("DRIM_SIMD");
      const bool force_scalar = env != nullptr && std::strcmp(env, "scalar") == 0;
      if (avx2 != nullptr && !force_scalar) table = avx2;
    }
  };
  static Init init;
  static std::atomic<const DistanceKernels*> active{init.table};
  return active;
}

}  // namespace

// Defined in distances_avx2.cpp; returns nullptr when the TU was compiled
// without AVX2 support (non-x86 target or unsupported flag).
const DistanceKernels* detail_avx2_kernels_impl();

const DistanceKernels& scalar_kernels() { return kScalarKernels; }

const DistanceKernels* avx2_kernels() {
  static const DistanceKernels* table =
      cpu_has_avx2() ? detail_avx2_kernels_impl() : nullptr;
  return table;
}

bool avx2_available() { return avx2_kernels() != nullptr; }

const DistanceKernels& kernels() {
  return *active_table().load(std::memory_order_relaxed);
}

SimdLevel simd_level() {
  return &kernels() == &kScalarKernels ? SimdLevel::kScalar : SimdLevel::kAvx2;
}

SimdLevel set_simd_level(SimdLevel level) {
  const DistanceKernels* table = &kScalarKernels;
  if (level == SimdLevel::kAvx2 && avx2_available()) table = avx2_kernels();
  active_table().store(table, std::memory_order_relaxed);
  return simd_level();
}

}  // namespace drim
