#pragma once
// DPQ-style codebook refinement. The paper lists DPQ (Klein & Wolf, CVPR'19,
// "End-to-end supervised product quantization") among the supported IVF-PQ
// variants. The original DPQ learns codebooks by gradient descent through a
// soft-assignment relaxation; here we implement its unsupervised core — the
// differentiable codebook update with softmin assignments and temperature
// annealing — as a post-training refinement pass over a k-means-initialized
// ProductQuantizer. This reproduces DPQ's effect on the search engine (a
// different, typically lower-MSE codebook feeding the identical ADC search
// path) without the supervised labels the paper's corpora do not provide.

#include "core/pq.hpp"

namespace drim {

/// Refinement hyperparameters.
struct DPQParams {
  std::size_t iters = 10;        ///< refinement epochs over the training set
  double temperature = 8.0;      ///< initial softmin temperature
  double temperature_decay = 0.7;///< per-epoch multiplicative annealing
  double learning_rate = 0.3;    ///< codeword update step toward soft means
};

/// Refine `pq`'s codebooks in place using soft assignments over `points`
/// (same rows the PQ was trained on). Returns the final reconstruction MSE.
double dpq_refine(ProductQuantizer& pq, const FloatMatrix& points, const DPQParams& params);

}  // namespace drim
