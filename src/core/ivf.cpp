#include "core/ivf.hpp"

#include <cassert>
#include <vector>

#include "common/parallel.hpp"
#include "core/distances.hpp"

namespace drim {

void IvfPqIndex::train(const FloatMatrix& learn, const IvfPqParams& params) {
  assert(learn.count() >= params.nlist);
  params_ = params;

  // Coarse quantizer over the raw learn vectors.
  KMeansParams coarse;
  coarse.k = params.nlist;
  coarse.max_iters = params.coarse_iters;
  coarse.seed = params.seed;
  KMeansResult km = kmeans(learn, coarse);
  centroids_ = std::move(km.centroids);

  // Residuals of every learn vector against its assigned centroid — the
  // training distribution for the product quantizer (ADC operates on
  // residuals in cluster searching, Fig. 1).
  FloatMatrix residuals(learn.count(), learn.dim());
  parallel_for(0, learn.count(), [&](std::size_t i) {
    auto src = learn.row(i);
    auto cen = centroids_.row(km.assignment[i]);
    auto dst = residuals.row(i);
    for (std::size_t d = 0; d < learn.dim(); ++d) dst[d] = src[d] - cen[d];
  });

  switch (params.variant) {
    case PQVariant::kPQ: {
      PQParams pq = params.pq;
      pq.seed = params.seed + 1;
      pq_.train(residuals, pq);
      break;
    }
    case PQVariant::kOPQ: {
      OPQParams opq;
      opq.pq = params.pq;
      opq.pq.seed = params.seed + 1;
      opq.outer_iters = params.opq_iters;
      opq_ = std::make_unique<OptimizedProductQuantizer>();
      opq_->train(residuals, opq);
      pq_ = opq_->pq();
      break;
    }
    case PQVariant::kDPQ: {
      PQParams pq = params.pq;
      pq.seed = params.seed + 1;
      pq_.train(residuals, pq);
      dpq_refine(pq_, residuals, params.dpq);
      break;
    }
  }

  lists_.assign(params.nlist, {});
  ntotal_ = 0;
  trained_ = true;
}

void IvfPqIndex::restore(const IvfPqParams& params, FloatMatrix centroids,
                         ProductQuantizer pq,
                         std::unique_ptr<OptimizedProductQuantizer> opq,
                         std::vector<InvertedList> lists, std::size_t ntotal) {
  assert(centroids.count() == params.nlist);
  assert(lists.size() == params.nlist);
  assert((params.variant == PQVariant::kOPQ) == (opq != nullptr));
  params_ = params;
  centroids_ = std::move(centroids);
  pq_ = std::move(pq);
  opq_ = std::move(opq);
  lists_ = std::move(lists);
  ntotal_ = ntotal;
  trained_ = true;
}

IndexSnapshot make_root_snapshot(const IvfPqIndex& index) {
  IndexSnapshot snap;
  snap.version = 0;
  // Aliasing, non-owning: the caller keeps ownership, exactly as it did when
  // the layers below held a raw `const IvfPqIndex&`.
  snap.index = std::shared_ptr<const IvfPqIndex>(&index, [](const IvfPqIndex*) {});
  return snap;
}

IvfPqIndex IvfPqIndex::clone() const {
  IvfPqIndex copy;
  copy.params_ = params_;
  copy.trained_ = trained_;
  copy.ntotal_ = ntotal_;
  copy.centroids_ = centroids_;
  copy.pq_ = pq_;
  if (opq_) copy.opq_ = std::make_unique<OptimizedProductQuantizer>(*opq_);
  copy.lists_ = lists_;
  return copy;
}

void IvfPqIndex::reconstruct(std::uint32_t cluster, std::size_t i,
                             std::span<float> out) const {
  const std::size_t d = dim();
  assert(out.size() == d);
  std::vector<float> decoded(d);
  pq_.decode(lists_[cluster].code(i, code_size()), decoded);
  auto cen = centroids_.row(cluster);
  if (opq_) {
    // decode() yields the rotated residual r = R (v - c); undo with R^T.
    const Matrix& r = opq_->rotation();
    for (std::size_t a = 0; a < d; ++a) {
      double acc = 0.0;
      for (std::size_t b = 0; b < d; ++b) acc += r.at(b, a) * decoded[b];
      out[a] = static_cast<float>(acc) + cen[a];
    }
  } else {
    for (std::size_t a = 0; a < d; ++a) out[a] = decoded[a] + cen[a];
  }
}

void IvfPqIndex::encode_residual(std::span<const float> v, std::uint32_t cluster,
                                 std::span<std::uint8_t> code) const {
  const std::size_t dim = centroids_.dim();
  std::vector<float> residual(dim);
  auto cen = centroids_.row(cluster);
  for (std::size_t d = 0; d < dim; ++d) residual[d] = v[d] - cen[d];
  if (opq_) {
    std::vector<float> rotated(dim);
    opq_->rotate(residual, rotated);
    pq_.encode(rotated, code);
  } else {
    pq_.encode(residual, code);
  }
}

void IvfPqIndex::add(const ByteDataset& base) {
  assert(trained_);
  assert(base.dim() == dim());
  const std::size_t n = base.count();
  const std::size_t cs = code_size();

  // Assign points to clusters in parallel, then fill lists serially (cheap).
  std::vector<std::uint32_t> assign(n);
  parallel_for(0, n, [&](std::size_t i) {
    std::vector<float> v(dim());
    base.row_as_float(i, v);
    assign[i] = nearest_centroid(centroids_, v);
  });

  std::vector<std::size_t> counts(params_.nlist, 0);
  for (std::size_t i = 0; i < n; ++i) ++counts[assign[i]];
  for (std::size_t c = 0; c < params_.nlist; ++c) {
    lists_[c].ids.reserve(lists_[c].ids.size() + counts[c]);
    lists_[c].codes.reserve(lists_[c].codes.size() + counts[c] * cs);
  }
  const auto id_base = static_cast<std::uint32_t>(ntotal_);
  std::vector<float> v(dim());
  std::vector<std::uint8_t> code(cs);
  for (std::size_t i = 0; i < n; ++i) {
    base.row_as_float(i, v);
    encode_residual(v, assign[i], code);
    InvertedList& list = lists_[assign[i]];
    list.ids.push_back(id_base + static_cast<std::uint32_t>(i));
    list.codes.insert(list.codes.end(), code.begin(), code.end());
  }
  ntotal_ += n;
}

std::vector<std::size_t> IvfPqIndex::list_sizes() const {
  std::vector<std::size_t> sizes(lists_.size());
  for (std::size_t c = 0; c < lists_.size(); ++c) sizes[c] = lists_[c].size();
  return sizes;
}

std::vector<std::uint32_t> IvfPqIndex::locate_clusters(std::span<const float> query,
                                                       std::size_t nprobe) const {
  return nearest_centroids(centroids_, query, nprobe);
}

void IvfPqIndex::query_residual(std::span<const float> query, std::uint32_t cluster,
                                std::span<float> out) const {
  const std::size_t d = dim();
  assert(query.size() == d && out.size() == d);
  auto cen = centroids_.row(cluster);
  if (opq_) {
    std::vector<float> residual(d);
    for (std::size_t i = 0; i < d; ++i) residual[i] = query[i] - cen[i];
    opq_->rotate(residual, out);
  } else {
    for (std::size_t i = 0; i < d; ++i) out[i] = query[i] - cen[i];
  }
}

std::vector<Neighbor> IvfPqIndex::search(std::span<const float> query, std::size_t k,
                                         std::size_t nprobe) const {
  assert(trained_);
  TopK topk(k);
  std::vector<float> residual(dim());
  std::vector<float> lut(pq_.m() * pq_.cb_entries());
  std::vector<float> dists;

  // CL phase.
  const std::vector<std::uint32_t> probes = locate_clusters(query, nprobe);
  for (std::uint32_t c : probes) {
    const InvertedList& list = lists_[c];
    if (list.size() == 0) continue;
    // RC + LC phases.
    query_residual(query, c, residual);
    pq_.compute_adc_lut(residual, lut);
    // DC + TS phases.
    dists.resize(list.size());
    pq_.adc_scan(lut, list.codes.data(), list.size(), dists.data());
    for (std::size_t i = 0; i < list.size(); ++i) {
      topk.push(dists[i], list.ids[i]);
    }
  }
  return topk.take_sorted();
}

}  // namespace drim
