#pragma once
// Lloyd's k-means with k-means++ seeding. Used for (a) the IVF coarse
// quantizer (nlist centroids over the learn set) and (b) per-subspace PQ
// codebook training. Host-side, OpenMP-parallel.

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace drim {

/// Configuration for one k-means run.
struct KMeansParams {
  std::size_t k = 16;
  std::size_t max_iters = 20;
  double tol = 1e-4;           ///< relative centroid-shift convergence bound
  std::uint64_t seed = 123;
  bool use_kmeanspp = true;    ///< k-means++ seeding (else uniform sampling)
};

/// Result: centroids (k x dim) plus the final point assignment.
struct KMeansResult {
  FloatMatrix centroids;
  std::vector<std::uint32_t> assignment;  ///< one centroid id per input row
  double inertia = 0.0;                   ///< sum of squared distances
  std::size_t iters_run = 0;
};

/// Run k-means over float training rows. Empty clusters are re-seeded from
/// the point currently farthest from its centroid, so all k centroids remain
/// live (Faiss does the same).
KMeansResult kmeans(const FloatMatrix& points, const KMeansParams& params);

/// Index of the nearest centroid to `v` (L2).
std::uint32_t nearest_centroid(const FloatMatrix& centroids, std::span<const float> v);

/// Indices of the `n` nearest centroids, ascending by distance.
std::vector<std::uint32_t> nearest_centroids(const FloatMatrix& centroids,
                                             std::span<const float> v, std::size_t n);

}  // namespace drim
