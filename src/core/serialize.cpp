#include "core/serialize.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace drim {
namespace {

constexpr char kMagic[4] = {'D', 'R', 'I', 'M'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// ---- primitive writers/readers (little-endian host assumed) ----

void write_bytes(std::FILE* f, const void* p, std::size_t n) {
  if (std::fwrite(p, 1, n, f) != n) throw std::runtime_error("index write failure");
}

void read_bytes(std::FILE* f, void* p, std::size_t n) {
  if (std::fread(p, 1, n, f) != n) throw std::runtime_error("index read failure");
}

template <typename T>
void write_pod(std::FILE* f, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_bytes(f, &v, sizeof(T));
}

template <typename T>
T read_pod(std::FILE* f) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  read_bytes(f, &v, sizeof(T));
  return v;
}

template <typename T>
void write_vec(std::FILE* f, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod<std::uint64_t>(f, v.size());
  write_bytes(f, v.data(), v.size() * sizeof(T));
}

template <typename T>
std::vector<T> read_vec(std::FILE* f) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = read_pod<std::uint64_t>(f);
  std::vector<T> v(n);
  read_bytes(f, v.data(), n * sizeof(T));
  return v;
}

void write_float_matrix(std::FILE* f, const FloatMatrix& m) {
  write_pod<std::uint64_t>(f, m.count());
  write_pod<std::uint64_t>(f, m.dim());
  write_bytes(f, m.data(), m.count() * m.dim() * sizeof(float));
}

FloatMatrix read_float_matrix(std::FILE* f) {
  const auto count = read_pod<std::uint64_t>(f);
  const auto dim = read_pod<std::uint64_t>(f);
  FloatMatrix m(count, dim);
  read_bytes(f, m.data(), count * dim * sizeof(float));
  return m;
}

void write_pq(std::FILE* f, const ProductQuantizer& pq) {
  write_pod<std::uint64_t>(f, pq.dim());
  write_pod<std::uint64_t>(f, pq.m());
  write_pod<std::uint64_t>(f, pq.cb_entries());
  for (std::size_t sub = 0; sub < pq.m(); ++sub) {
    write_float_matrix(f, pq.codebook(sub));
  }
}

ProductQuantizer read_pq(std::FILE* f) {
  const auto dim = read_pod<std::uint64_t>(f);
  const auto m = read_pod<std::uint64_t>(f);
  const auto cb = read_pod<std::uint64_t>(f);
  std::vector<FloatMatrix> books;
  books.reserve(m);
  for (std::size_t sub = 0; sub < m; ++sub) books.push_back(read_float_matrix(f));
  ProductQuantizer pq;
  pq.restore(dim, m, cb, std::move(books));
  return pq;
}

void write_matrix(std::FILE* f, const Matrix& m) {
  write_pod<std::uint64_t>(f, m.rows());
  write_pod<std::uint64_t>(f, m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    write_bytes(f, m.row(r).data(), m.cols() * sizeof(double));
  }
}

Matrix read_matrix(std::FILE* f) {
  const auto rows = read_pod<std::uint64_t>(f);
  const auto cols = read_pod<std::uint64_t>(f);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    read_bytes(f, m.row(r).data(), cols * sizeof(double));
  }
  return m;
}

}  // namespace

void save_index(const IvfPqIndex& index, const std::string& path) {
  if (!index.trained()) throw std::runtime_error("cannot save an untrained index");
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");

  write_bytes(f.get(), kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(f.get(), kIndexFormatVersion);

  const IvfPqParams& p = index.params();
  write_pod<std::uint64_t>(f.get(), p.nlist);
  write_pod<std::uint64_t>(f.get(), p.pq.m);
  write_pod<std::uint64_t>(f.get(), p.pq.cb_entries);
  write_pod<std::uint8_t>(f.get(), static_cast<std::uint8_t>(p.variant));
  write_pod<std::uint64_t>(f.get(), index.ntotal());

  write_float_matrix(f.get(), index.centroids());
  write_pq(f.get(), index.pq());
  if (p.variant == PQVariant::kOPQ) {
    write_matrix(f.get(), index.opq()->rotation());
  }
  for (std::size_t c = 0; c < index.nlist(); ++c) {
    write_vec(f.get(), index.list(c).ids);
    write_vec(f.get(), index.list(c).codes);
  }
}

IvfPqIndex load_index(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open " + path);

  char magic[4];
  read_bytes(f.get(), magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error(path + " is not a DRIM index file");
  }
  const auto version = read_pod<std::uint32_t>(f.get());
  if (version != kIndexFormatVersion) {
    throw std::runtime_error("unsupported index format version " +
                             std::to_string(version));
  }

  IvfPqParams p;
  p.nlist = read_pod<std::uint64_t>(f.get());
  p.pq.m = read_pod<std::uint64_t>(f.get());
  p.pq.cb_entries = read_pod<std::uint64_t>(f.get());
  p.variant = static_cast<PQVariant>(read_pod<std::uint8_t>(f.get()));
  const auto ntotal = read_pod<std::uint64_t>(f.get());

  FloatMatrix centroids = read_float_matrix(f.get());
  ProductQuantizer pq = read_pq(f.get());
  std::unique_ptr<OptimizedProductQuantizer> opq;
  if (p.variant == PQVariant::kOPQ) {
    opq = std::make_unique<OptimizedProductQuantizer>();
    Matrix rotation = read_matrix(f.get());
    ProductQuantizer inner = pq;  // the OPQ's quantizer is the index's
    opq->restore(std::move(rotation), std::move(inner));
  }

  std::vector<InvertedList> lists(p.nlist);
  for (std::size_t c = 0; c < p.nlist; ++c) {
    lists[c].ids = read_vec<std::uint32_t>(f.get());
    lists[c].codes = read_vec<std::uint8_t>(f.get());
  }

  IvfPqIndex index;
  index.restore(p, std::move(centroids), std::move(pq), std::move(opq),
                std::move(lists), ntotal);
  return index;
}

}  // namespace drim
