// AVX2 implementations of the DistanceKernels table. Compiled with -mavx2
// and -ffp-contract=off (see src/CMakeLists.txt); only ever executed after a
// runtime __builtin_cpu_supports("avx2") check in distances.cpp.
//
// Bit-equality with the scalar reference is a hard contract here
// (tests/simd_equality_test.cpp):
//  - adc_lut_row / adc_scan_* vectorize ACROSS entries/points: lane j owns
//    output j and accumulates over d/sub in the same sequential order as the
//    scalar loop, so each lane's float rounding is identical.
//  - l2_sq_* vectorize WITHIN a vector using 8 lane accumulators; the
//    horizontal reduction (vextractf128+addps, movehl+addps, shufps+addss)
//    is mirrored step for step by the scalar reference's reduce8.

#include "core/distances.hpp"

#if defined(DRIM_AVX2_BUILD) && defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace drim {
namespace {

inline std::uint32_t code_value(const std::uint8_t* point, std::size_t sub,
                                bool wide) {
  if (wide) {
    std::uint16_t v = 0;
    std::memcpy(&v, point + sub * 2, 2);
    return v;
  }
  return point[sub];
}

/// 8x8 float transpose: rows r0..r7 in, columns c0..c7 out. Standard
/// unpack/shuffle/permute2f128 ladder — no gathers (VPGATHER is microcoded
/// and slow on many parts; contiguous loads + shuffles beat it handily).
inline void transpose8x8(__m256 r0, __m256 r1, __m256 r2, __m256 r3, __m256 r4,
                         __m256 r5, __m256 r6, __m256 r7, __m256* c) {
  const __m256 t0 = _mm256_unpacklo_ps(r0, r1);
  const __m256 t1 = _mm256_unpackhi_ps(r0, r1);
  const __m256 t2 = _mm256_unpacklo_ps(r2, r3);
  const __m256 t3 = _mm256_unpackhi_ps(r2, r3);
  const __m256 t4 = _mm256_unpacklo_ps(r4, r5);
  const __m256 t5 = _mm256_unpackhi_ps(r4, r5);
  const __m256 t6 = _mm256_unpacklo_ps(r6, r7);
  const __m256 t7 = _mm256_unpackhi_ps(r6, r7);
  const __m256 u0 = _mm256_shuffle_ps(t0, t2, 0x44);
  const __m256 u1 = _mm256_shuffle_ps(t0, t2, 0xEE);
  const __m256 u2 = _mm256_shuffle_ps(t1, t3, 0x44);
  const __m256 u3 = _mm256_shuffle_ps(t1, t3, 0xEE);
  const __m256 u4 = _mm256_shuffle_ps(t4, t6, 0x44);
  const __m256 u5 = _mm256_shuffle_ps(t4, t6, 0xEE);
  const __m256 u6 = _mm256_shuffle_ps(t5, t7, 0x44);
  const __m256 u7 = _mm256_shuffle_ps(t5, t7, 0xEE);
  c[0] = _mm256_permute2f128_ps(u0, u4, 0x20);
  c[1] = _mm256_permute2f128_ps(u1, u5, 0x20);
  c[2] = _mm256_permute2f128_ps(u2, u6, 0x20);
  c[3] = _mm256_permute2f128_ps(u3, u7, 0x20);
  c[4] = _mm256_permute2f128_ps(u0, u4, 0x31);
  c[5] = _mm256_permute2f128_ps(u1, u5, 0x31);
  c[6] = _mm256_permute2f128_ps(u2, u6, 0x31);
  c[7] = _mm256_permute2f128_ps(u3, u7, 0x31);
}

void avx2_adc_lut_row(const float* sv, const float* codebook, std::size_t dsub,
                      std::size_t cb, float* row) {
  std::size_t e = 0;
  if (dsub == 8) {
    // Paper-config fast path (dim 128 / m 16): each codeword is exactly one
    // 8-float row, so 8 contiguous loads + a transpose put component d of
    // entries e..e+7 into one vector. Lane j accumulates entry e+j over
    // d = 0..7 in the same order as the scalar loop — bit-identical.
    __m256 svd[8];
    for (std::size_t d = 0; d < 8; ++d) svd[d] = _mm256_set1_ps(sv[d]);
    for (; e + 8 <= cb; e += 8) {
      const float* base = codebook + e * 8;
      __m256 c[8];
      transpose8x8(_mm256_loadu_ps(base + 0), _mm256_loadu_ps(base + 8),
                   _mm256_loadu_ps(base + 16), _mm256_loadu_ps(base + 24),
                   _mm256_loadu_ps(base + 32), _mm256_loadu_ps(base + 40),
                   _mm256_loadu_ps(base + 48), _mm256_loadu_ps(base + 56), c);
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t d = 0; d < 8; ++d) {
        const __m256 diff = _mm256_sub_ps(svd[d], c[d]);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(diff, diff));
      }
      _mm256_storeu_ps(row + e, acc);
    }
  } else {
    // General shape: lane j of the gather reads entry (e+j)'s component d
    // (codewords are row-major [cb x dsub], entries `dsub` floats apart).
    const auto stride = static_cast<int>(dsub);
    const __m256i entry_off = _mm256_mullo_epi32(
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7), _mm256_set1_epi32(stride));
    for (; e + 8 <= cb; e += 8) {
      const float* base = codebook + e * dsub;
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t d = 0; d < dsub; ++d) {
        const __m256 cw = _mm256_i32gather_ps(base + d, entry_off, 4);
        const __m256 diff = _mm256_sub_ps(_mm256_set1_ps(sv[d]), cw);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(diff, diff));
      }
      _mm256_storeu_ps(row + e, acc);
    }
  }
  for (; e < cb; ++e) {
    const float* cw = codebook + e * dsub;
    float acc = 0.0f;
    for (std::size_t d = 0; d < dsub; ++d) {
      const float diff = sv[d] - cw[d];
      acc += diff * diff;
    }
    row[e] = acc;
  }
}

// The ADC scan is LUT-lookup bound: m data-dependent loads per point, each
// accumulated sequentially (the bit-equality contract). A VPGATHER version
// measured ~3x SLOWER than the plain loop here (microcoded gathers + scalar
// index assembly), so the "avx2" scan is the scalar algorithm with four
// independent accumulator chains interleaved — same per-point rounding
// order, but the OoO core overlaps four L1 LUT-load chains instead of one.

void avx2_adc_scan_f32(const float* lut, std::size_t cb, std::size_t m,
                       const std::uint8_t* codes, std::size_t stride, bool wide,
                       std::size_t n, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint8_t* p0 = codes + (i + 0) * stride;
    const std::uint8_t* p1 = codes + (i + 1) * stride;
    const std::uint8_t* p2 = codes + (i + 2) * stride;
    const std::uint8_t* p3 = codes + (i + 3) * stride;
    float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
    for (std::size_t sub = 0; sub < m; ++sub) {
      const float* lrow = lut + sub * cb;
      a0 += lrow[code_value(p0, sub, wide)];
      a1 += lrow[code_value(p1, sub, wide)];
      a2 += lrow[code_value(p2, sub, wide)];
      a3 += lrow[code_value(p3, sub, wide)];
    }
    out[i + 0] = a0;
    out[i + 1] = a1;
    out[i + 2] = a2;
    out[i + 3] = a3;
  }
  for (; i < n; ++i) {
    const std::uint8_t* point = codes + i * stride;
    float acc = 0.0f;
    for (std::size_t sub = 0; sub < m; ++sub) {
      acc += lut[sub * cb + code_value(point, sub, wide)];
    }
    out[i] = acc;
  }
}

void avx2_adc_scan_u32(const std::uint32_t* lut, std::size_t cb, std::size_t m,
                       const std::uint8_t* codes, std::size_t stride, bool wide,
                       std::size_t n, std::uint32_t* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint8_t* p0 = codes + (i + 0) * stride;
    const std::uint8_t* p1 = codes + (i + 1) * stride;
    const std::uint8_t* p2 = codes + (i + 2) * stride;
    const std::uint8_t* p3 = codes + (i + 3) * stride;
    std::uint32_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
    for (std::size_t sub = 0; sub < m; ++sub) {
      const std::uint32_t* lrow = lut + sub * cb;
      a0 += lrow[code_value(p0, sub, wide)];
      a1 += lrow[code_value(p1, sub, wide)];
      a2 += lrow[code_value(p2, sub, wide)];
      a3 += lrow[code_value(p3, sub, wide)];
    }
    out[i + 0] = a0;
    out[i + 1] = a1;
    out[i + 2] = a2;
    out[i + 3] = a3;
  }
  for (; i < n; ++i) {
    const std::uint8_t* point = codes + i * stride;
    std::uint32_t acc = 0;
    for (std::size_t sub = 0; sub < m; ++sub) {
      acc += lut[sub * cb + code_value(point, sub, wide)];
    }
    out[i] = acc;
  }
}

// Horizontal sum matching scalar reduce8: (a0+a4, a1+a5, a2+a6, a3+a7) ->
// (r0+r2, r1+r3) -> s0+s1.
inline float reduce8_avx(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  const __m128 r = _mm_add_ps(lo, hi);              // r0 r1 r2 r3
  const __m128 s = _mm_add_ps(r, _mm_movehl_ps(r, r));  // s0 s1 . .
  const __m128 t = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(t);
}

float avx2_l2_sq_f32(const float* a, const float* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, _mm256_mul_ps(diff, diff));
  }
  float total = reduce8_avx(acc);
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

float avx2_l2_sq_u8(const float* a, const std::uint8_t* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + i));
    const __m256 bf = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
    const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(a + i), bf);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(diff, diff));
  }
  float total = reduce8_avx(acc);
  for (; i < n; ++i) {
    const float d = a[i] - static_cast<float>(b[i]);
    total += d * d;
  }
  return total;
}

constexpr DistanceKernels kAvx2Kernels = {
    "avx2",           avx2_adc_lut_row, avx2_adc_scan_f32,
    avx2_adc_scan_u32, avx2_l2_sq_f32,   avx2_l2_sq_u8,
};

}  // namespace

const DistanceKernels* detail_avx2_kernels_impl() { return &kAvx2Kernels; }

}  // namespace drim

#else  // !DRIM_AVX2_BUILD

namespace drim {
const DistanceKernels* detail_avx2_kernels_impl() { return nullptr; }
}  // namespace drim

#endif
