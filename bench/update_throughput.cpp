// Update-throughput benchmark for the mutable-index serving path (DESIGN.md
// §14): goodput and tail latency under a mixed search + insert/delete stream.
//
// Builds the SIFT-like index, fixes an offered search load comfortably below
// the backend's service capacity, then replays the same Poisson search trace
// with interleaved update streams at increasing rates (0 = read-only
// baseline, then 1% / 2% / 5% / 10% updates per search). Each run applies
// its ops to an IndexWriter on the virtual clock and publishes a snapshot
// onto the engine every few batches — the serving loop never pauses; the
// modeled install cost (the writer's delta bytes on the host link, not the
// simulator's physical reload) extends the timeline and shows up as the
// goodput gap vs the read-only row.
//
// `--smoke` shrinks corpus and trace so the run finishes in seconds and
// self-checks the acceptance floor: goodput at a 1% update rate stays within
// 15% of the read-only baseline, every request is served, every op applied.
// Writes BENCH_update_throughput.json either way.

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/mutable_index.hpp"
#include "serve/runtime.hpp"
#include "serve/update_workload.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;
using namespace drim::serve;

namespace {

struct UpdateRun {
  ServeReport report;
  std::size_t batches = 0;
  double makespan_s = 0.0;
  std::size_t applied = 0;
  std::size_t publishes = 0;
  double publish_ms = 0.0;
  std::uint64_t version = 0;
  std::size_t live = 0;
  std::size_t nlist = 0;
};

/// Replay `searches` with an update stream at `rate` updates per search
/// (rate 0 = read-only baseline: no stream attached at all, pinning the
/// empty-trace no-op contract into the measurement itself).
UpdateRun run_at_rate(const BenchData& bench, const IvfPqIndex& index,
                      const DrimEngineOptions& options,
                      const std::vector<Request>& searches, double rate,
                      std::size_t split_threshold) {
  DrimAnnEngine engine(index, bench.data.learn, options);

  ServeParams sp;
  sp.batcher.max_batch = options.batch_size;
  const double est = engine.estimate_batch_seconds(options.batch_size, 16, 10);
  sp.batcher.max_wait_s = 4.0 * est;
  sp.admission.enabled = false;   // sub-saturation load: serve everything
  sp.admission.slo_s = 50.0 * est;  // generous: goodput measures throughput
  ServingRuntime runtime(engine, bench.data.queries, sp);

  WriterParams wp;
  wp.split_threshold = split_threshold;
  IndexWriter writer(index, wp);
  UpdateWorkloadParams up;
  up.update_rate = rate;
  up.insert_fraction = 0.5;
  up.delete_skew = 0.8;
  // Learn vectors as insert payloads: same distribution as the base corpus
  // without duplicating resident ids.
  const UpdateTrace trace = rate > 0.0
      ? generate_update_trace(searches, bench.data.learn, index.ntotal(), up)
      : UpdateTrace{};
  UpdateStream updates;
  updates.trace = &trace;
  updates.writer = &writer;
  updates.publish_every_batches = 4;
  if (rate > 0.0) runtime.set_update_stream(&updates);

  const ServeResult res = runtime.run(searches);
  UpdateRun out;
  out.report = res.report;
  out.batches = res.batches;
  out.makespan_s = res.makespan_s;
  out.applied = updates.applied;
  out.publishes = updates.publishes;
  out.publish_ms = 1e3 * updates.publish_seconds;
  out.version = engine.snapshot().version;
  out.live = writer.live_count();
  out.nlist = writer.nlist();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  BenchScale scale;
  if (smoke) {
    scale.num_base = 20'000;
    scale.num_queries = 64;
    scale.num_learn = 4'000;
    scale.num_components = 32;
    scale.num_dpus = 16;
  }
  const std::size_t threads = configure_host_threads(scale.threads);
  const BenchData bench = make_sift_bench(scale);
  const std::size_t nlist = smoke ? 64 : 256;
  const IvfPqIndex index =
      build_index(bench, nlist, smoke ? 16 : 32, smoke ? 32 : 256);
  DrimEngineOptions options = default_engine_options(scale, 16);
  options.batch_size = smoke ? 16 : 32;
  // Split when a cluster outgrows 4x its average build size.
  const std::size_t split_threshold = 4 * index.ntotal() / nlist;

  // A fixed sub-saturation search trace shared by every rate, so the goodput
  // delta isolates the update overhead.
  DrimAnnEngine probe(index, bench.data.learn, options);
  const double capacity_qps =
      options.batch_size / probe.estimate_batch_seconds(options.batch_size, 16, 10);
  WorkloadParams wp;
  wp.offered_qps = 0.6 * capacity_qps;
  wp.num_requests = smoke ? 384 : 4096;
  wp.k_choices = {10};
  wp.nprobe_choices = {16};
  wp.query_skew = 0.8;
  const auto searches = generate_workload(bench.data.queries.count(), wp);

  print_title("update throughput: mixed search + insert/delete serving (" +
              std::string(smoke ? "smoke" : "full") + ")");
  std::printf("corpus %zu, nlist %zu, %zu dpus, offered %.0f qps, %zu requests, "
              "%zu threads\n\n",
              index.ntotal(), nlist, scale.num_dpus, wp.offered_qps,
              wp.num_requests, threads);
  std::printf("%7s | %6s %6s | %8s %8s | %9s | %5s %8s | %7s %5s\n", "rate",
              "served", "ops", "p50 ms", "p99 ms", "goodput", "pubs", "pub ms",
              "live", "nlist");
  print_rule(92);

  BenchReport report("update_throughput");
  report.set_config("mode", smoke ? std::string("smoke") : std::string("full"));
  report.set_config("num_base", index.ntotal());
  report.set_config("nlist", nlist);
  report.set_config("num_dpus", scale.num_dpus);
  report.set_config("offered_qps", wp.offered_qps);
  report.set_config("requests", wp.num_requests);
  report.set_config("split_threshold", split_threshold);

  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.01, 0.05}
            : std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.10};
  std::vector<UpdateRun> runs;
  for (const double rate : rates) {
    runs.push_back(
        run_at_rate(bench, index, options, searches, rate, split_threshold));
    const UpdateRun& r = runs.back();
    std::printf("%6.1f%% | %6zu %6zu | %8.3f %8.3f | %9.0f | %5zu %8.3f | %7zu %5zu\n",
                100.0 * rate, r.report.served, r.applied, r.report.p50_ms,
                r.report.p99_ms, r.report.goodput_qps, r.publishes, r.publish_ms,
                r.live, r.nlist);
    char label[32];
    std::snprintf(label, sizeof label, "rate_%.2f", rate);
    report.add_row(label);
    report.add_metric("update_rate", rate);
    report.add_metric("served", static_cast<double>(r.report.served));
    report.add_metric("ops_applied", static_cast<double>(r.applied));
    report.add_metric("p50_ms", r.report.p50_ms);
    report.add_metric("p99_ms", r.report.p99_ms);
    report.add_metric("goodput_qps", r.report.goodput_qps);
    report.add_metric("publishes", static_cast<double>(r.publishes));
    report.add_metric("publish_ms", r.publish_ms);
    report.add_metric("snapshot_version", static_cast<double>(r.version));
    report.add_metric("live_count", static_cast<double>(r.live));
    report.add_metric("nlist_final", static_cast<double>(r.nlist));
  }
  print_rule(92);
  const double baseline = runs.front().report.goodput_qps;
  const double at_1pct = runs[1].report.goodput_qps;
  std::printf("goodput at 1%% updates: %.1f%% of read-only baseline\n",
              100.0 * at_1pct / baseline);
  report.add_row("summary");
  report.add_metric("goodput_ratio_1pct", at_1pct / baseline);
  std::printf("\nwrote %s\n", report.write().c_str());

  // Self-checks (the smoke's exit code is the assertion; they hold for full
  // runs too and cost nothing).
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (runs[i].report.served != searches.size()) {
      std::fprintf(stderr, "FAIL: rate %.2f served %zu of %zu requests\n",
                   rates[i], runs[i].report.served, searches.size());
      return 1;
    }
    if (rates[i] > 0.0 && runs[i].publishes == 0) {
      std::fprintf(stderr, "FAIL: rate %.2f published nothing\n", rates[i]);
      return 1;
    }
    if (rates[i] > 0.0 && runs[i].version != runs[i].publishes) {
      std::fprintf(stderr, "FAIL: rate %.2f version %llu != publishes %zu\n",
                   rates[i],
                   static_cast<unsigned long long>(runs[i].version),
                   runs[i].publishes);
      return 1;
    }
  }
  if (runs.front().applied != 0 || runs.front().publishes != 0) {
    std::fprintf(stderr, "FAIL: read-only baseline ran updates\n");
    return 1;
  }
  if (at_1pct < 0.85 * baseline) {
    std::fprintf(stderr,
                 "FAIL: goodput at 1%% updates dropped to %.1f%% of the "
                 "read-only baseline (floor: 85%%)\n",
                 100.0 * at_1pct / baseline);
    return 1;
  }
  return 0;
}
