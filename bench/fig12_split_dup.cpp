// Figure 12 reproduction: layout-knob sensitivity.
//  (a) Minimum split size sweep with allocation+splitting: too-large
//      thresholds leave imbalance, too-small ones multiply LUT builds.
//  (b) Duplication copies sweep with allocation+duplication: a large jump at
//      the first copy (2x-3x in the paper), then saturation, at a per-DPU
//      memory cost of a few MB.

#include <cstdio>

#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

int main() {
  BenchScale scale;
  const BenchData bench = make_sift_bench(scale);
  const std::size_t nprobe = 16;
  const std::size_t nlist = 64;  // C ~= 3000: large clusters stress splitting
  const IvfPqIndex index = build_index(bench, nlist);

  // Baseline for both subfigures: ID-order layout, nothing enabled.
  DrimEngineOptions baseline = default_engine_options(scale, nprobe);
  baseline.layout.enable_split = false;
  baseline.layout.enable_duplicate = false;
  baseline.layout.heat_allocation = false;
  baseline.scheduler.enable_filter = false;
  const DrimRun base = run_drim(bench, index, baseline, scale.k, nprobe);

  print_title("Fig. 12(a): allocation + splitting, sweep of the min split size");
  std::printf("%10s | %11s | %8s | %8s\n", "split size", "busy (s)", "speedup",
              "#tasks");
  print_rule();
  for (std::size_t threshold : {256, 512, 1024, 2048, 4096, 8192, 100000}) {
    DrimEngineOptions o = default_engine_options(scale, nprobe);
    o.layout.enable_duplicate = false;
    o.scheduler.enable_filter = false;
    o.layout.split_threshold = threshold;
    const DrimRun run = run_drim(bench, index, o, scale.k, nprobe);
    std::printf("%10zu | %11.5f | %7.2fx | %8zu\n", threshold,
                run.stats.dpu_busy_seconds,
                base.stats.dpu_busy_seconds / run.stats.dpu_busy_seconds,
                run.stats.tasks);
  }
  std::printf("expected: a sweet spot in the middle — small thresholds inflate the "
              "task count (extra LUT builds), large ones restore imbalance\n");

  print_title("Fig. 12(b): allocation + duplication, sweep of the copy count");
  std::printf("%7s | %11s | %8s | %12s\n", "copies", "busy (s)", "speedup",
              "MB per DPU");
  print_rule();
  for (std::size_t copies : {0, 1, 2, 3, 4}) {
    DrimEngineOptions o = default_engine_options(scale, nprobe);
    o.layout.enable_split = false;
    o.scheduler.enable_filter = false;
    o.layout.dup_copies = copies;
    o.layout.enable_duplicate = copies > 0;
    o.layout.dup_fraction = 0.15;

    DrimAnnEngine engine(index, bench.data.learn, o);
    DrimSearchStats stats;
    engine.search(bench.data.queries, scale.k, nprobe, &stats);
    const double mb =
        engine.layout().duplication_bytes_per_dpu(engine.data()) / (1024.0 * 1024.0);
    std::printf("%7zu | %11.5f | %7.2fx | %12.4f\n", copies, stats.dpu_busy_seconds,
                base.stats.dpu_busy_seconds / stats.dpu_busy_seconds, mb);
  }
  std::printf("expected: big jump at the first copy, then saturation; per-DPU memory "
              "cost stays negligible vs 64 MB MRAM (paper: ~3.84 MB first copy)\n");
  return 0;
}
