// Figure 9 reproduction: end-to-end energy efficiency vs the CPU baseline on
// the SIFT-like corpus. The paper measures 1.63x-2.42x higher efficiency
// (geomean 1.97x) via Intel RAPL.
//
// Energy here is power x modeled time (DESIGN.md substitution). Two power
// accountings are reported:
//  - TDP-stacked: nameplate powers (13.92 W/DIMM x DIMM count + host TDP vs
//    baseline Xeon TDP). This overstates the UPMEM server draw relative to
//    what RAPL sees (RAPL reads package+DRAM domains, not nameplate).
//  - RAPL-calibrated: the paper's own numbers imply a measured platform
//    power ratio P_pim / P_cpu ~= 1.48 (speedup 2.92x and efficiency 1.97x
//    cannot otherwise coexist); this column uses that ratio.
// Both columns use the same modeled times as Fig. 6.

#include <cstdio>

#include "common/stats.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

int main() {
  BenchScale scale;
  std::printf("Fig. 9 — energy efficiency (queries per joule), SIFT-like\n");

  const BenchData bench = make_sift_bench(scale);

  // Platform-fraction scaling, matching the Fig. 6 comparator.
  const double ratio = static_cast<double>(scale.num_dpus) / 2530.0;
  const double cpu_watts = 125.0 * ratio;          // Xeon Gold 5218 TDP share
  const double pim_tdp_watts = (20.0 * 13.92 + 100.0) * ratio;  // 20 DIMMs + host
  const double pim_rapl_watts = cpu_watts * 1.48;  // paper-implied ratio

  print_title("sweep nlist, nprobe = 16");
  std::printf("%6s | %9s | %10s %10s | %11s %11s\n", "nlist", "speedup", "eff (TDP)",
              "eff (RAPL)", "CPU q/J", "DRIM q/J*");
  print_rule();

  std::vector<double> gains_tdp, gains_rapl;
  for (std::size_t nlist : {32, 64, 128, 256}) {
    const IvfPqIndex index = build_index(bench, nlist);
    const CpuRun cpu = run_cpu(bench, index, scale.k, 16, scale.num_dpus);
    const DrimRun drim =
        run_drim(bench, index, default_engine_options(scale, 16), scale.k, 16);

    const double q = static_cast<double>(scale.num_queries);
    const double cpu_joules = cpu_watts * cpu.modeled_seconds;
    const double drim_tdp_joules = pim_tdp_watts * drim.modeled_seconds;
    const double drim_rapl_joules = pim_rapl_watts * drim.modeled_seconds;
    const double speedup = cpu.modeled_seconds / drim.modeled_seconds;
    const double eff_tdp = cpu_joules / drim_tdp_joules;
    const double eff_rapl = cpu_joules / drim_rapl_joules;
    gains_tdp.push_back(eff_tdp);
    gains_rapl.push_back(eff_rapl);
    std::printf("%6zu | %8.2fx | %9.2fx %9.2fx | %11.1f %11.1f\n", nlist, speedup,
                eff_tdp, eff_rapl, q / cpu_joules, q / drim_rapl_joules);
  }
  print_rule();
  std::printf("geomean efficiency gain: TDP-stacked %.2fx, RAPL-calibrated %.2fx\n",
              geomean(gains_tdp), geomean(gains_rapl));
  std::printf("(paper: 1.97x geomean, 1.63x-2.42x range, RAPL-measured)\n");
  return 0;
}
