// Figure 10 reproduction: architecture-aware algorithm tuning results.
//  (a) Multiplier-less ANNS conversion: the paper reports ~1.93x speedup on
//      the LC kernel (bounded by random LUT access, not the full 32x multiply
//      premium) and 1.40x end-to-end at nlist=2^16 / 1.17x at nlist=2^14.
//  (b) Gap between the ideal Eq. (13) performance model and the real engine
//      WITHOUT load-balance optimization: 3.32x-6.48x (geomean 5.23x),
//      shrinking at small nlist with large nprobe.

#include <cstdio>

#include "common/stats.hpp"
#include "support/harness.hpp"

using namespace drim;
using namespace drim::bench;

int main() {
  BenchScale scale;
  const BenchData bench = make_sift_bench(scale);

  // ---------------- Fig. 10(a): multiplier-less conversion ----------------
  print_title("Fig. 10(a): multiplier-less conversion speedup (LC and end-to-end)");
  std::printf("%6s %7s | %10s %10s | %9s | %9s\n", "nlist", "nprobe", "LC mul(s)",
              "LC lut(s)", "LC spdup", "e2e spdup");
  print_rule();

  std::vector<double> lc_speedups, e2e_speedups;
  for (std::size_t nlist : {128, 256}) {
    const IvfPqIndex index = build_index(bench, nlist);
    for (std::size_t nprobe : {8, 16, 32}) {
      DrimEngineOptions with_lut = default_engine_options(scale, nprobe);
      DrimEngineOptions without_lut = with_lut;
      without_lut.use_square_lut = false;

      const DrimRun lut = run_drim(bench, index, with_lut, scale.k, nprobe);
      const DrimRun mul = run_drim(bench, index, without_lut, scale.k, nprobe);

      const double lc_lut = lut.stats.phase_dpu_seconds[static_cast<int>(Phase::LC)];
      const double lc_mul = mul.stats.phase_dpu_seconds[static_cast<int>(Phase::LC)];
      const double lc_speedup = lc_lut > 0 ? lc_mul / lc_lut : 0.0;
      const double e2e_speedup = lut.stats.dpu_busy_seconds > 0
                                     ? mul.stats.dpu_busy_seconds / lut.stats.dpu_busy_seconds
                                     : 0.0;
      lc_speedups.push_back(lc_speedup);
      e2e_speedups.push_back(e2e_speedup);
      std::printf("%6zu %7zu | %10.4f %10.4f | %8.2fx | %8.2fx\n", nlist, nprobe,
                  lc_mul, lc_lut, lc_speedup, e2e_speedup);
    }
  }
  print_rule();
  std::printf("geomean: LC %.2fx (paper ~1.93x), end-to-end %.2fx "
              "(paper 1.17x-1.40x depending on nlist)\n",
              geomean(lc_speedups), geomean(e2e_speedups));

  // ---------------- Fig. 10(b): ideal-model vs imbalanced engine ----------
  print_title("Fig. 10(b): ideal performance model vs DRIM-ANN without load balance");
  std::printf("%6s %7s | %11s %11s | %8s\n", "nlist", "nprobe", "model (s)",
              "real (s)", "gap");
  print_rule();

  std::vector<double> gaps;
  for (std::size_t nlist : {64, 128, 256}) {
    const IvfPqIndex index = build_index(bench, nlist);
    for (std::size_t nprobe : {8, 16, 32}) {
      // Imbalanced engine: trivial ID-order layout, no split/dup/filter.
      DrimEngineOptions imbalanced = default_engine_options(scale, nprobe);
      imbalanced.layout.enable_split = false;
      imbalanced.layout.enable_duplicate = false;
      imbalanced.layout.heat_allocation = false;
      imbalanced.scheduler.enable_filter = false;
      const DrimRun real = run_drim(bench, index, imbalanced, scale.k, nprobe);

      // Ideal Eq. (13) estimate with the same multiplier-less conversion.
      const AnnWorkload w = workload_for(index, scale.num_base, scale.num_queries,
                                         scale.k, nprobe);
      const double model_seconds =
          estimate(w, scaled_cpu_platform(scale.num_dpus),
                   upmem_platform(1.0, static_cast<double>(scale.num_dpus)))
              .total_seconds();
      const double gap = real.modeled_seconds / model_seconds;
      gaps.push_back(gap);
      std::printf("%6zu %7zu | %11.5f %11.5f | %7.2fx\n", nlist, nprobe, model_seconds,
                  real.modeled_seconds, gap);
    }
  }
  print_rule();
  std::printf("geomean gap: %.2fx (paper: 5.23x geomean, 3.32x-6.48x; the gap is "
              "the headroom the load-balance optimization recovers)\n",
              geomean(gaps));
  return 0;
}
